// Benchmarks regenerating the paper's evaluation (one per table and
// figure, plus ablations of DESIGN.md's design choices). Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics carry the evaluation quantities: api/s for the Fig. 10
// and Fig. 11 throughput rows, pathconds for the Sec. IV pruning
// experiment, cycles and deadlocks for the diagnosis funnels.
package weseer_test

import (
	"testing"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/smt"
	"weseer/internal/solver"
	"weseer/internal/trace"
	"weseer/internal/workload"
)

// ---------------------------------------------------------------------------
// Table I / Table II: trace collection and diagnosis

// BenchmarkTable1_TraceCollection measures collecting the Table I unit
// tests' traces under full concolic execution.
func BenchmarkTable1_TraceCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
		traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
		if err != nil {
			b.Fatal(err)
		}
		if len(traces) != 7 {
			b.Fatalf("traces = %d", len(traces))
		}
	}
}

func collectOnce(b *testing.B, app string) []*trace.Trace {
	b.Helper()
	var tests []appkit.UnitTest
	switch app {
	case "broadleaf":
		tests = broadleaf.New(broadleaf.Fixes{}, minidb.Config{}).UnitTests()
	case "shopizer":
		tests = shopizer.New(shopizer.Fixes{}, minidb.Config{}).UnitTests()
	}
	traces, err := appkit.Collect(tests, concolic.ModeConcolic)
	if err != nil {
		b.Fatal(err)
	}
	return traces
}

// BenchmarkTable2_Diagnosis measures the full three-phase diagnosis over
// both applications, reporting how many Table II entries were found.
func BenchmarkTable2_Diagnosis(b *testing.B) {
	bl := collectOnce(b, "broadleaf")
	sh := collectOnce(b, "shopizer")
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		blRes := core.New(broadleaf.Schema(), core.Options{}).Analyze(bl)
		shRes := core.New(shopizer.Schema(), core.Options{}).Analyze(sh)
		ids := map[string]bool{}
		for _, d := range blRes.Deadlocks {
			ids[broadleaf.Classify(d)] = true
		}
		for _, d := range shRes.Deadlocks {
			ids[shopizer.Classify(d)] = true
		}
		found = 0
		for _, exp := range append(broadleaf.Expectations(), shopizer.Expectations()...) {
			if ids[exp.ID] {
				found++
			}
		}
	}
	b.ReportMetric(float64(found), "deadlocks_found")
	if found != 18 {
		b.Fatalf("found %d of 18 cataloged deadlocks", found)
	}
}

// ---------------------------------------------------------------------------
// Table III: engine-mode overhead

func benchMode(b *testing.B, mode concolic.Mode) {
	for i := 0; i < b.N; i++ {
		app := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
		for _, ut := range app.UnitTests() {
			e := concolic.New(mode)
			e.StartConcolic(ut.Name)
			if err := ut.Run(e); err != nil {
				b.Fatal(err)
			}
			e.EndConcolic()
		}
	}
}

// BenchmarkTable3_Original is native execution (no tracking).
func BenchmarkTable3_Original(b *testing.B) { benchMode(b, concolic.ModeOff) }

// BenchmarkTable3_Interpretive records statements without symbolic state.
func BenchmarkTable3_Interpretive(b *testing.B) { benchMode(b, concolic.ModeInterpret) }

// BenchmarkTable3_InterpretiveConcolic is full concolic execution.
func BenchmarkTable3_InterpretiveConcolic(b *testing.B) { benchMode(b, concolic.ModeConcolic) }

// ---------------------------------------------------------------------------
// Fig. 10 / Fig. 11: runtime throughput

func benchWorkload(b *testing.B, mk func() (*minidb.DB, workload.Flow)) {
	var totalAPIs, totalDeadlocks int64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		db, flow := mk()
		res := workload.Run(workload.Config{
			Clients:      32,
			Duration:     200 * time.Millisecond,
			RetryBackoff: time.Millisecond,
			Seed:         42,
		}, db, flow)
		totalAPIs += res.APICalls
		totalDeadlocks += res.Deadlocks
		elapsed += res.Duration
	}
	b.ReportMetric(float64(totalAPIs)/elapsed.Seconds(), "api/s")
	b.ReportMetric(float64(totalDeadlocks)/float64(b.N), "deadlocks/run")
}

func benchDBCfg() minidb.Config {
	return minidb.Config{StatementDelay: 100 * time.Microsecond, LockWaitTimeout: 100 * time.Millisecond}
}

// BenchmarkFig10_EnableAll: Broadleaf with every fix applied.
func BenchmarkFig10_EnableAll(b *testing.B) {
	benchWorkload(b, func() (*minidb.DB, workload.Flow) {
		app := broadleaf.New(broadleaf.AllFixes(), benchDBCfg())
		return app.DB, app.Flow()
	})
}

// BenchmarkFig10_DisableAll: Broadleaf with deadlocks left to the
// database's detect-and-recover handling.
func BenchmarkFig10_DisableAll(b *testing.B) {
	benchWorkload(b, func() (*minidb.DB, workload.Flow) {
		app := broadleaf.New(broadleaf.Fixes{}, benchDBCfg())
		return app.DB, app.Flow()
	})
}

// BenchmarkFig10_DisableF2: the paper's most damaging single ablation.
func BenchmarkFig10_DisableF2(b *testing.B) {
	benchWorkload(b, func() (*minidb.DB, workload.Flow) {
		app := broadleaf.New(broadleaf.AllFixes().Disable("f2"), benchDBCfg())
		return app.DB, app.Flow()
	})
}

// BenchmarkFig11_EnableAll: Shopizer with every fix applied.
func BenchmarkFig11_EnableAll(b *testing.B) {
	benchWorkload(b, func() (*minidb.DB, workload.Flow) {
		app := shopizer.New(shopizer.AllFixes(), benchDBCfg())
		return app.DB, app.Flow()
	})
}

// BenchmarkFig11_DisableAll: unfixed Shopizer.
func BenchmarkFig11_DisableAll(b *testing.B) {
	benchWorkload(b, func() (*minidb.DB, workload.Flow) {
		app := shopizer.New(shopizer.Fixes{}, benchDBCfg())
		return app.DB, app.Flow()
	})
}

// ---------------------------------------------------------------------------
// Sec. IV: path-condition pruning

func benchPruning(b *testing.B, opts ...concolic.Option) {
	var conds int
	for i := 0; i < b.N; i++ {
		app := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
		traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic, opts...)
		if err != nil {
			b.Fatal(err)
		}
		conds = 0
		for _, tr := range traces {
			conds += tr.Stats.PathConds
		}
	}
	b.ReportMetric(float64(conds), "pathconds")
}

// BenchmarkPruning_WithPruning: driver/built-in/container functions run
// concretely (the Sec. IV simplification).
func BenchmarkPruning_WithPruning(b *testing.B) { benchPruning(b) }

// BenchmarkPruning_WithoutPruning: every library branch becomes a path
// condition (the paper's 656K-condition regime).
func BenchmarkPruning_WithoutPruning(b *testing.B) {
	benchPruning(b, concolic.WithoutPruning())
}

// ---------------------------------------------------------------------------
// Sec. VII-B: coarse baseline and phase ablations

// BenchmarkBaseline_CoarseOnly: STEPDAD/REDACT-style coarse analysis —
// orders of magnitude more cycles than confirmed deadlocks.
func BenchmarkBaseline_CoarseOnly(b *testing.B) {
	traces := collectOnce(b, "broadleaf")
	b.ResetTimer()
	var cycles int
	for i := 0; i < b.N; i++ {
		res := core.New(broadleaf.Schema(), core.Options{CoarseOnly: true}).Analyze(traces)
		cycles = res.Stats.CoarseCycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkAblation_ThreePhase: the full funnel (DESIGN.md choice 1).
func BenchmarkAblation_ThreePhase(b *testing.B) {
	traces := collectOnce(b, "broadleaf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.New(broadleaf.Schema(), core.Options{}).Analyze(traces)
	}
}

// BenchmarkAblation_NoPhase1 disables the transaction-level filter: every
// transaction pair reaches cycle enumeration.
func BenchmarkAblation_NoPhase1(b *testing.B) {
	traces := collectOnce(b, "broadleaf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.New(broadleaf.Schema(), core.Options{SkipPhase1: true}).Analyze(traces)
	}
}

// BenchmarkAblation_NoLockFilter disables the quick lock-collision test:
// every deduplicated coarse cycle goes to the SMT solver.
func BenchmarkAblation_NoLockFilter(b *testing.B) {
	traces := collectOnce(b, "broadleaf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.New(broadleaf.Schema(), core.Options{SkipLockFilter: true}).Analyze(traces)
	}
}

// ---------------------------------------------------------------------------
// Solver microbenchmarks

// BenchmarkSolver_Fig9Formula solves a Fig. 9-shaped deadlock formula:
// two conflict conditions plus path conditions.
func BenchmarkSolver_Fig9Formula(b *testing.B) {
	a1 := smt.NewVar("A1.order_id", smt.SortInt)
	a2 := smt.NewVar("A2.order_id", smt.SortInt)
	p1 := smt.NewVar("A1.res4.row0.p.ID", smt.SortInt)
	p2 := smt.NewVar("A2.res4.row0.p.ID", smt.SortInt)
	q1 := smt.NewVar("A1.res4.row0.p.QTY", smt.SortInt)
	q2 := smt.NewVar("A2.res4.row0.p.QTY", smt.SortInt)
	f := smt.And(
		smt.Ne(a1, smt.Int(-1)), smt.Ne(a2, smt.Int(-1)),
		smt.Ge(q1, smt.Int(1)), smt.Ge(q2, smt.Int(1)),
		smt.Eq(smt.NewVar("r1.p.ID", smt.SortInt), p1),
		smt.Eq(smt.NewVar("r1.p.ID", smt.SortInt), p2),
		smt.Eq(smt.NewVar("r2.p.ID", smt.SortInt), p2),
		smt.Eq(smt.NewVar("r2.p.ID", smt.SortInt), p1),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := solver.Solve(f); res.Status != solver.SAT {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkMinidb_PointSelect measures the database substrate's hot path.
func BenchmarkMinidb_PointSelect(b *testing.B) {
	app := broadleaf.New(broadleaf.AllFixes(), minidb.Config{})
	e := concolic.New(concolic.ModeOff)
	conn := concolic.NewConn(e, app.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Begin()
		if _, err := conn.Exec(`SELECT * FROM Product p WHERE p.ID = ?`,
			[]concolic.Value{concolic.Int(int64(i%32 + 1))}, trace.CodeLoc{}); err != nil {
			b.Fatal(err)
		}
		conn.Commit()
	}
}

// BenchmarkAblation_ConcretePlans runs the analyzer with lock modeling
// restricted to recorded execution plans (the paper's Sec. V-D
// future-work refinement), reporting the resulting report-group count.
func BenchmarkAblation_ConcretePlans(b *testing.B) {
	traces := collectOnce(b, "broadleaf")
	b.ResetTimer()
	var groups int
	for i := 0; i < b.N; i++ {
		res := core.New(broadleaf.Schema(), core.Options{UseConcretePlans: true}).Analyze(traces)
		groups = len(res.Deadlocks)
	}
	b.ReportMetric(float64(groups), "reports")
}
