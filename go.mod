module weseer

go 1.22
