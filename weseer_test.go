package weseer_test

import (
	"strings"
	"testing"

	"weseer"
)

// TestFacadeEndToEnd drives the public API exactly as README's quickstart
// does: schema → database → ORM → concolic unit test → diagnosis.
func TestFacadeEndToEnd(t *testing.T) {
	scm := weseer.NewSchema()
	scm.AddTable("Device").
		Col("ID", weseer.Int).
		Col("NAME", weseer.Varchar).
		PrimaryKey("ID")
	db := weseer.OpenDB(scm, weseer.DBConfig{})
	mapping := weseer.NewMapping(scm)

	registerDevice := func(e *weseer.Engine, id, name weseer.Value) error {
		s := weseer.NewSession(mapping, weseer.NewConn(e, db))
		return s.Transactional(func() error {
			d := s.NewEntity("Device")
			s.Set(d, "ID", id)
			s.Set(d, "NAME", name)
			s.Merge(d)
			return nil
		})
	}
	tests := []weseer.UnitTest{{
		Name: "RegisterDevice",
		Run: func(e *weseer.Engine) error {
			return registerDevice(e,
				e.MakeSymbolic("device_id", weseer.IntValue(7)),
				e.MakeSymbolic("device_name", weseer.StrValue("sensor-7")))
		},
	}}
	traces, err := weseer.Collect(tests, weseer.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Stats.Statements != 2 {
		t.Fatalf("trace shape: %d traces, %d stmts", len(traces), traces[0].Stats.Statements)
	}
	res := weseer.Analyze(scm, traces, weseer.AnalyzerOptions{})
	if len(res.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %d, want the merge gap-lock cycle", len(res.Deadlocks))
	}
	report := res.Render()
	for _, want := range []string{"RegisterDevice", "INSERT INTO Device", "SELECT * FROM Device"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The fix (Persist) removes the report.
	db2 := weseer.OpenDB(scm, weseer.DBConfig{})
	fixedTests := []weseer.UnitTest{{
		Name: "RegisterDevice",
		Run: func(e *weseer.Engine) error {
			s := weseer.NewSession(mapping, weseer.NewConn(e, db2))
			return s.Transactional(func() error {
				d := s.NewEntity("Device")
				s.Set(d, "ID", e.MakeSymbolic("device_id", weseer.IntValue(7)))
				s.Set(d, "NAME", weseer.StrValue("x"))
				s.Persist(d)
				return nil
			})
		},
	}}
	fixedTraces, err := weseer.Collect(fixedTests, weseer.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	fixed := weseer.Analyze(scm, fixedTraces, weseer.AnalyzerOptions{})
	if len(fixed.Deadlocks) != 0 {
		t.Fatalf("persist variant still reports %d deadlocks", len(fixed.Deadlocks))
	}
}

// TestFacadeStats checks the database counters surface through the facade.
func TestFacadeStats(t *testing.T) {
	scm := weseer.NewSchema()
	scm.AddTable("T").Col("ID", weseer.Int).PrimaryKey("ID")
	db := weseer.OpenDB(scm, weseer.DBConfig{})
	e := weseer.NewEngine(weseer.ModeOff)
	s := weseer.NewSession(weseer.NewMapping(scm), weseer.NewConn(e, db))
	if err := s.Transactional(func() error {
		en := s.NewEntity("T")
		s.Set(en, "ID", weseer.IntValue(1))
		s.Persist(en)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := db.StatsSnapshot()
	if st.Commits == 0 || st.Statements == 0 {
		t.Errorf("stats = %+v", st)
	}
}
