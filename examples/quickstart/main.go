// Quickstart: diagnose a deadlock in a 40-line application.
//
// The app's RegisterDevice API uses the ORM's merge operation, which
// issues a SELECT for a (usually absent) key followed by an INSERT. Under
// row-level locking the empty SELECT takes a range lock, so two
// concurrent registrations block each other's INSERT: the classic d1
// deadlock of the WeSEER paper. WeSEER finds it from a single unit test.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"weseer"
)

func main() {
	// 1. Declare the schema and open the embedded database.
	scm := weseer.NewSchema()
	scm.AddTable("Device").
		Col("ID", weseer.Int).
		Col("NAME", weseer.Varchar).
		PrimaryKey("ID")
	db := weseer.OpenDB(scm, weseer.DBConfig{})
	mapping := weseer.NewMapping(scm)

	// 2. The application API, written against the ORM.
	registerDevice := func(e *weseer.Engine, id, name weseer.Value) error {
		s := weseer.NewSession(mapping, weseer.NewConn(e, db))
		return s.Transactional(func() error {
			d := s.NewEntity("Device")
			s.Set(d, "ID", id)
			s.Set(d, "NAME", name)
			s.Merge(d) // SELECT + INSERT: deadlock-prone (use Persist instead)
			return nil
		})
	}

	// 3. One unit test with symbolic inputs.
	tests := []weseer.UnitTest{{
		Name: "RegisterDevice",
		Run: func(e *weseer.Engine) error {
			id := e.MakeSymbolic("device_id", weseer.IntValue(7))
			name := e.MakeSymbolic("device_name", weseer.StrValue("sensor-7"))
			return registerDevice(e, id, name)
		},
	}}

	// 4. Collect traces under concolic execution and diagnose.
	traces, err := weseer.Collect(tests, weseer.ModeConcolic)
	if err != nil {
		panic(err)
	}
	res := weseer.Analyze(scm, traces, weseer.AnalyzerOptions{})

	// 5. Report.
	fmt.Println(res.Render())
	if len(res.Deadlocks) > 0 {
		fmt.Println("fix: replace Merge with Persist (the paper's fix f1) and re-run — the report disappears.")
	}
}
