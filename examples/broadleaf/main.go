// Broadleaf end-to-end walkthrough: WeSEER's full pipeline over the
// bundled Broadleaf model — collect the Table I unit-test traces under
// concolic execution, run the three-phase diagnosis, map the reports onto
// the Table II catalog (d1–d13), and then demonstrate at runtime that
// applying the fixes f1–f8 removes the deadlocks and restores throughput
// (the Fig. 10 result).
//
//	go run ./examples/broadleaf
package main

import (
	"fmt"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/workload"
)

func main() {
	// --- Diagnosis on the unfixed application -------------------------
	app := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		panic(err)
	}
	fmt.Println("collected traces:")
	for _, tr := range traces {
		fmt.Printf("  %-10s %2d statements, %3d path conditions\n",
			tr.API, tr.Stats.Statements, tr.Stats.PathConds)
	}

	res := core.New(broadleaf.Schema(), core.Options{}).Analyze(traces)
	fmt.Println("\n" + res.Stats.Render())

	found := map[string][]*core.Deadlock{}
	for _, d := range res.Deadlocks {
		id := broadleaf.Classify(d)
		found[id] = append(found[id], d)
	}
	fmt.Println("\nTable II (Broadleaf rows):")
	for _, exp := range broadleaf.Expectations() {
		mark := "MISSING"
		if n := len(found[exp.ID]); n > 0 {
			mark = fmt.Sprintf("found (%d reports)", n)
		}
		fmt.Printf("  %-4s %-42s %-12s %s\n", exp.ID, exp.Desc, mark, exp.Fix)
	}

	// Show one full report with triggering code, as a developer would
	// read it.
	if ds := found["d1"]; len(ds) > 0 {
		fmt.Println("\nexample report (d1):")
		fmt.Print(ds[0].Render())
	}

	// --- Runtime validation (Fig. 10 in miniature) --------------------
	fmt.Println("\nruntime impact, 32 clients, 300ms (Fig. 10 in miniature):")
	for _, cfg := range []struct {
		label string
		fixes broadleaf.Fixes
	}{
		{"disable all", broadleaf.Fixes{}},
		{"enable all ", broadleaf.AllFixes()},
	} {
		rt := broadleaf.New(cfg.fixes, minidb.Config{
			StatementDelay:  100 * time.Microsecond,
			LockWaitTimeout: 100 * time.Millisecond,
		})
		w := workload.Run(workload.Config{
			Clients: 32, Duration: 300 * time.Millisecond,
			RetryBackoff: time.Millisecond, Seed: 1,
		}, rt.DB, rt.Flow())
		fmt.Printf("  %s  %7.0f API/s, %5d deadlocks, %7.0f aborts/s\n",
			cfg.label, w.Throughput, w.Deadlocks, w.AbortsPS)
	}
}
