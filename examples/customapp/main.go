// Custom application walkthrough: how to wire your own application into
// WeSEER. A small ticketing service exposes Reserve(eventID, user): it
// checks remaining capacity with a locking SELECT, inserts a reservation,
// and buffers a counter update — a read-modify-write whose exclusive
// upgrade at commit deadlocks against a concurrent reservation of the
// same event. WeSEER diagnoses the Reserve–Reserve cycle statically from
// one unit test, and the example then reproduces it at runtime. Applying
// a fix is left as an exercise (the Broadleaf and Shopizer examples
// demonstrate the fixed variants).
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"sync"
	"time"

	"weseer"
)

// Ticketing is the example application.
type Ticketing struct {
	db      *weseer.DB
	mapping *weseer.Mapping
}

// NewTicketing builds the schema, opens the database, and seeds events.
func NewTicketing() *Ticketing {
	scm := weseer.NewSchema()
	scm.AddTable("Event").
		Col("ID", weseer.Int).
		Col("CAPACITY", weseer.Int).
		Col("RESERVED", weseer.Int).
		PrimaryKey("ID")
	scm.AddTable("Reservation").
		Col("ID", weseer.Int).
		Col("EVENT_ID", weseer.Int).
		Col("USERNAME", weseer.Varchar).
		PrimaryKey("ID").
		Index("idx_res_event", "EVENT_ID")
	t := &Ticketing{db: weseer.OpenDB(scm, weseer.DBConfig{
		StatementDelay: 50 * time.Microsecond, // simulated network round trip
	}), mapping: weseer.NewMapping(scm)}

	e := weseer.NewEngine(weseer.ModeOff)
	s := weseer.NewSession(t.mapping, weseer.NewConn(e, t.db))
	err := s.Transactional(func() error {
		for i := int64(1); i <= 4; i++ {
			ev := s.NewEntity("Event")
			s.Set(ev, "ID", weseer.IntValue(i))
			s.Set(ev, "CAPACITY", weseer.IntValue(100000))
			s.Set(ev, "RESERVED", weseer.IntValue(0))
			s.Persist(ev)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return t
}

// Schema rebuilds the schema for the analyzer (it is cheap and pure).
func (t *Ticketing) Schema() *weseer.Schema { return t.mapping.Schema() }

// Reserve books one seat: a read-modify-write on the shared event row.
func (t *Ticketing) Reserve(e *weseer.Engine, eventID, user weseer.Value) error {
	s := weseer.NewSession(t.mapping, weseer.NewConn(e, t.db))
	return s.Transactional(func() error {
		ev := s.Find("Event", eventID) // locking SELECT: shared lock
		if ev == nil {
			return fmt.Errorf("no such event")
		}
		reserved, capacity := ev.Get("RESERVED"), ev.Get("CAPACITY")
		if e.If(e.Ge(reserved, capacity)) {
			return fmt.Errorf("sold out")
		}
		r := s.NewEntity("Reservation")
		s.Set(r, "ID", weseer.IntValue(t.db.NextID("Reservation")))
		s.Set(r, "EVENT_ID", eventID)
		s.Set(r, "USERNAME", user)
		s.Persist(r)
		// Buffered counter update: flushed at commit as an exclusive
		// lock upgrade on the row read above.
		s.Set(ev, "RESERVED", e.Add(reserved, weseer.IntValue(1)))
		return nil
	})
}

func main() {
	t := NewTicketing()

	// --- Static diagnosis ---------------------------------------------
	tests := []weseer.UnitTest{{
		Name: "Reserve",
		Run: func(e *weseer.Engine) error {
			return t.Reserve(e,
				e.MakeSymbolic("event_id", weseer.IntValue(1)),
				e.MakeSymbolic("user", weseer.StrValue("alice")))
		},
	}}
	traces, err := weseer.Collect(tests, weseer.ModeConcolic)
	if err != nil {
		panic(err)
	}
	res := weseer.Analyze(t.Schema(), traces, weseer.AnalyzerOptions{})
	fmt.Println(res.Render())

	// --- Runtime reproduction ------------------------------------------
	// Two goroutines reserve seats for the same event concurrently; the
	// shared-lock read followed by the buffered exclusive upgrade is the
	// d14-class deadlock WeSEER just reported.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := weseer.NewEngine(weseer.ModeOff)
			for i := 0; i < 40; i++ {
				t.Reserve(e, weseer.IntValue(1), weseer.StrValue(fmt.Sprintf("u%d-%d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	st := t.db.StatsSnapshot()
	fmt.Printf("runtime reproduction: %d deadlocks, %d aborts out of %d commits\n",
		st.Deadlocks, st.Aborts, st.Commits)
	fmt.Println("\nfix options, per the paper's catalog: serialize with an application-level")
	fmt.Println("lock per event (f9), or replace the read-modify-write with a single UPDATE.")
}
