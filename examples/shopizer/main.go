// Shopizer end-to-end walkthrough: diagnosis of the five Product-table
// deadlocks (d14–d18) and the Fig. 11 runtime comparison. All Shopizer
// deadlocks come from read-modify-write and inconsistent-order accesses
// to shared product rows; the fixes are application-level locks (f9) and
// consistent lock ordering (f10/f11).
//
//	go run ./examples/shopizer
package main

import (
	"fmt"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/shopizer"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/workload"
)

func main() {
	app := shopizer.New(shopizer.Fixes{}, minidb.Config{})
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		panic(err)
	}
	res := core.New(shopizer.Schema(), core.Options{}).Analyze(traces)
	fmt.Println(res.Stats.Render())

	found := map[string]int{}
	for _, d := range res.Deadlocks {
		found[shopizer.Classify(d)]++
	}
	fmt.Println("\nTable II (Shopizer rows — all on the Product table):")
	for _, exp := range shopizer.Expectations() {
		mark := "MISSING"
		if n := found[exp.ID]; n > 0 {
			mark = fmt.Sprintf("found (%d reports)", n)
		}
		fmt.Printf("  %-4s %-36s %-12s %s\n", exp.ID, exp.Desc, mark, exp.Fix)
	}

	fmt.Println("\nruntime impact, 32 clients, 300ms (Fig. 11 in miniature):")
	for _, cfg := range []struct {
		label string
		fixes shopizer.Fixes
	}{
		{"disable all", shopizer.Fixes{}},
		{"enable all ", shopizer.AllFixes()},
	} {
		rt := shopizer.New(cfg.fixes, minidb.Config{
			StatementDelay:  100 * time.Microsecond,
			LockWaitTimeout: 100 * time.Millisecond,
		})
		w := workload.Run(workload.Config{
			Clients: 32, Duration: 300 * time.Millisecond,
			RetryBackoff: time.Millisecond, Seed: 1,
		}, rt.DB, rt.Flow())
		fmt.Printf("  %s  %7.0f API/s, %5d deadlocks, %7.0f aborts/s\n",
			cfg.label, w.Throughput, w.Deadlocks, w.AbortsPS)
	}
}
