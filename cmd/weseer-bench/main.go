// Command weseer-bench regenerates every table and figure of the paper's
// evaluation (Sec. VII) against the bundled model applications, plus a
// scale sweep over synthetic generated corpora. Run -exp list for the
// experiment table; -exp all runs everything in sequence.
//
// Absolute numbers depend on this machine; the paper's claims are about
// shape (who wins, by what order of magnitude, where the crossover sits).
//
// table2 additionally benchmarks the parallel memoized pipeline: the
// same diagnosis at Parallelism=1 and at -parallel N, verifying the two
// reports are byte-identical and measuring wall time, solver calls, and
// memo hits. -out FILE (e.g. -out BENCH_table2.json) writes those
// numbers as versioned JSON, and -solverout FILE (e.g. -out
// BENCH_solver.json) writes the solver-engine breakdown — per-phase
// times plus CDCL counters (decisions, conflicts, propagations, learned
// clauses, backjumps, theory calls) — against the recorded pre-CDCL
// baseline. Both writes are gated on the serial and parallel reports
// being byte-identical; a mismatch exits non-zero instead.
//
// scale generates synthetic corpora (internal/appgen, opened through the
// application registry as gen:<seed>,templates=N,...) at increasing
// template counts, runs the full diagnosis serially and at -parallel N,
// verifies byte-identical reports, and writes the speedup curve — with
// the generator seed and full configuration embedded — to -scaleout
// (default BENCH_scale.json).
//
// -traceout FILE and -metricsout FILE re-run the table2 parallel
// diagnosis once more with an observer attached — after the identity
// check, so instrumentation cannot skew the timed comparison — and
// write the spans as Chrome trace_event JSON and the metrics in
// Prometheus text format next to the BENCH files.
//
// -cpuprofile FILE and -memprofile FILE capture pprof profiles of
// whatever experiments run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"weseer/internal/apps"
	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/obs"
	"weseer/internal/trace"
	"weseer/internal/workload"
)

var (
	duration   = flag.Duration("duration", 500*time.Millisecond, "per-configuration workload duration (fig10/fig11)")
	clientsF   = flag.String("clients", "8,64,128", "client counts for fig10/fig11")
	parallelF  = flag.Int("parallel", 4, "worker count for the parallel-pipeline comparisons (table2, scale)")
	outF       = flag.String("out", "", "write the table2 pipeline benchmark as versioned JSON to this file")
	solverOutF = flag.String("solverout", "", "write the table2 solver-engine breakdown as versioned JSON to this file")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	traceOutF  = flag.String("traceout", "", "write a Chrome trace_event JSON of an observed table2 parallel run")
	metricsF   = flag.String("metricsout", "", "write the observed table2 run's metrics in Prometheus text format")
)

// experiment is one entry in the self-registering experiment table.
// Experiments register themselves from init functions; adding one never
// touches main.
type experiment struct {
	seq  int    // position in the -exp all order
	name string // -exp selector
	desc string // one line for -exp list and the usage header
	run  func()
}

var experiments []experiment

// registerExp adds an experiment to the table. seq orders the -exp all
// run (and the listing); names must be unique.
func registerExp(seq int, name, desc string, run func()) {
	for _, e := range experiments {
		if e.name == name {
			panic("weseer-bench: duplicate experiment " + name)
		}
	}
	experiments = append(experiments, experiment{seq: seq, name: name, desc: desc, run: run})
}

func init() {
	registerExp(1, "table1", "Table I: target APIs and invocation counts", table1)
	registerExp(2, "table2", "Table II: the 18 deadlocks, fixes, and the parallel pipeline bench", table2)
	registerExp(3, "table3", "Table III: unit-test runtime per engine mode", table3)
	registerExp(4, "fig10", "Fig. 10: Broadleaf throughput across fix ablations", fig10)
	registerExp(5, "fig11", "Fig. 11: Shopizer throughput across fix ablations", fig11)
	registerExp(6, "pruning", "Sec. IV: path-condition pruning (656K -> 2.7K analog)", pruning)
	registerExp(7, "baseline", "Sec. VII-B: coarse-only cycle explosion (18,384 analog)", baseline)
}

// sortedExperiments returns the experiment table in seq order.
func sortedExperiments() []experiment {
	out := make([]experiment, len(experiments))
	copy(out, experiments)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func listExperiments(w *os.File) {
	fmt.Fprintln(w, "experiments (-exp NAME, or -exp all):")
	for _, e := range sortedExperiments() {
		fmt.Fprintf(w, "  %-10s %s\n", e.name, e.desc)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: weseer-bench [flags] -exp NAME|list|all")
	fmt.Fprintln(os.Stderr)
	listExperiments(os.Stderr)
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, "flags:")
	flag.PrintDefaults()
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -exp list)")
	flag.Usage = usage
	flag.Parse()
	if *exp == "list" {
		listExperiments(os.Stdout)
		return
	}
	var selected []experiment
	if *exp == "all" {
		selected = sortedExperiments()
	} else {
		for _, e := range sortedExperiments() {
			if e.name == *exp {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "weseer-bench: unknown experiment %q\n\n", *exp)
			usage()
			os.Exit(2)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	for _, e := range selected {
		e.run()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

// openApp resolves a workload through the application registry; bench
// experiments share the model apps' default configuration.
func openApp(spec string) apps.App {
	app, err := apps.Open(spec, apps.Options{})
	check(err)
	return app
}

func clientCounts() []int {
	var out []int
	var n int
	rest := *clientsF
	for len(rest) > 0 {
		k, err := fmt.Sscanf(rest, "%d", &n)
		if k == 0 || err != nil {
			break
		}
		out = append(out, n)
		for len(rest) > 0 && rest[0] != ',' {
			rest = rest[1:]
		}
		if len(rest) > 0 {
			rest = rest[1:]
		}
	}
	if len(out) == 0 {
		out = []int{8, 64, 128}
	}
	return out
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

// ---------------------------------------------------------------------------
// Table I

func table1() {
	header("Table I: target APIs")
	fmt.Printf("%-9s %-38s %-10s %-10s\n", "API", "Input description", "Broadleaf", "Shopizer")
	rows := []struct{ api, input, bl, sh string }{
		{"Register", "username, email, password, confirm", "1", "1"},
		{"Add", "userId, productId", "3", "3"},
		{"Ship", "userId, shipment address, phone", "1", "1"},
		{"Payment", "userId, payment address, phone", "1", "-"},
		{"Checkout", "userId", "1", "1"},
	}
	for _, r := range rows {
		fmt.Printf("%-9s %-38s %-10s %-10s\n", r.api, r.input, r.bl, r.sh)
	}
	blApp := openApp("broadleaf")
	shApp := openApp("shopizer")
	fmt.Printf("\nunit tests bundled: Broadleaf %d, Shopizer %d (Add invoked three times; "+
		"each invocation runs a different code path)\n",
		len(blApp.UnitTests()), len(shApp.UnitTests()))
}

// ---------------------------------------------------------------------------
// Table II

func table2() {
	header("Table II: deadlocks found by WeSEER")
	blApp := openApp("broadleaf")
	shApp := openApp("shopizer")

	blTraces, err := appkit.Collect(blApp.UnitTests(), concolic.ModeConcolic)
	check(err)
	shTraces, err := appkit.Collect(shApp.UnitTests(), concolic.ModeConcolic)
	check(err)

	blRes := core.New(blApp.Schema(), core.Options{}).Analyze(blTraces)
	shRes := core.New(shApp.Schema(), core.Options{}).Analyze(shTraces)

	blFound := map[string]int{}
	for _, d := range blRes.Deadlocks {
		blFound[blApp.Classify(d)]++
	}
	shFound := map[string]int{}
	for _, d := range shRes.Deadlocks {
		shFound[shApp.Classify(d)]++
	}

	fmt.Printf("%-9s %-4s %-38s %-50s %s\n", "App", "Id", "Deadlock APIs", "Fix", "Found")
	catalog := 0
	found := 0
	for _, exp := range append(broadleaf.Expectations(), shopizer.Expectations()...) {
		catalog++
		n := blFound[exp.ID] + shFound[exp.ID]
		status := "NO"
		if n > 0 {
			status = fmt.Sprintf("yes (%d reports)", n)
			found++
		}
		fmt.Printf("%-9s %-4s %-38s %-50s %s\n", exp.Apps, exp.ID, exp.APIs, exp.Fix, status)
	}
	fmt.Printf("\n%d of %d cataloged deadlocks reported (paper: 18/18)\n", found, catalog)
	fmt.Printf("additional reports: %d app-lock-protected false positives (Sec. V-D), %d extra\n",
		blFound["fp-checkout-applock"], blFound["extra"]+shFound["extra"]+blFound[""]+shFound[""])
	fmt.Println("\nBroadleaf:", blRes.Stats.Render())
	fmt.Println("Shopizer: ", shRes.Stats.Render())

	// Phase-0 static prescreen: same diagnosis, fewer solver calls.
	blPre := core.New(blApp.Schema(), core.Options{StaticPrescreen: true}).Analyze(blTraces)
	shPre := core.New(shApp.Schema(), core.Options{StaticPrescreen: true}).Analyze(shTraces)
	fmt.Println("\nwith -exp table2 static prescreen (weseer vet Phase-0):")
	fmt.Println("Broadleaf:", blPre.Stats.Render())
	fmt.Println("Shopizer: ", shPre.Stats.Render())
	off := blRes.Stats.GroupsSolved + shRes.Stats.GroupsSolved
	on := blPre.Stats.GroupsSolved + shPre.Stats.GroupsSolved
	saved := blPre.Stats.PrescreenSaved + shPre.Stats.PrescreenSaved
	fmt.Printf("solver calls: %d without prescreen -> %d with (%d saved, %d reports unchanged)\n",
		off, on, saved, len(blPre.Deadlocks)+len(shPre.Deadlocks))

	pipelineBench(blApp, shApp, blTraces, shTraces)
}

// pipelineRun is one timed diagnosis of both apps at a fixed worker
// count; the two reports are concatenated for the identity check.
type pipelineRun struct {
	WallMS       int64 `json:"wall_ms"`
	EnumMS       int64 `json:"enum_ms"`
	FineMS       int64 `json:"fine_ms"`
	SolverMS     int64 `json:"solver_ms"` // cumulative in-solver time across workers
	GroupsSolved int   `json:"groups_solved"`
	SolverCalls  int   `json:"solver_calls"`
	MemoHits     int   `json:"memo_hits"`
	Deadlocks    int   `json:"deadlocks"`

	// CDCL(T) engine counters summed over the run's solver calls.
	Decisions      int `json:"decisions"`
	Conflicts      int `json:"conflicts"`
	Propagations   int `json:"propagations"`
	LearnedClauses int `json:"learned_clauses"`
	Backjumps      int `json:"backjumps"`
	TheoryCalls    int `json:"theory_calls"`

	rendered string
	found    int
}

// pipelineJSON is the versioned -out payload of the table2 pipeline
// benchmark.
type pipelineJSON struct {
	Version          int         `json:"version"`
	Parallelism      int         `json:"parallelism"`
	Serial           pipelineRun `json:"serial"`
	Parallel         pipelineRun `json:"parallel"`
	Speedup          float64     `json:"speedup"`
	MemoHitRate      float64     `json:"memo_hit_rate"`
	Table2Found      int         `json:"table2_found"`
	Table2Catalog    int         `json:"table2_catalog"`
	ReportsIdentical bool        `json:"reports_identical"`
}

func timedRun(blApp, shApp apps.App, blTraces, shTraces []*trace.Trace, workers int) pipelineRun {
	diagnose := func(app apps.App, traces []*trace.Trace, b *strings.Builder, r *pipelineRun) {
		res, err := core.NewAnalyzer(app.Schema(), core.WithParallelism(workers)).AnalyzeContext(context.Background(), traces)
		check(err)
		r.GroupsSolved += res.Stats.GroupsSolved
		r.SolverCalls += res.Stats.SolverCalls
		r.MemoHits += res.Stats.MemoHits
		r.Deadlocks += len(res.Deadlocks)
		r.EnumMS += res.Stats.EnumTime.Milliseconds()
		r.FineMS += res.Stats.FineTime.Milliseconds()
		r.SolverMS += res.Stats.SolverTime.Milliseconds()
		r.Decisions += res.Stats.Engine.Decisions
		r.Conflicts += res.Stats.Engine.Conflicts
		r.Propagations += res.Stats.Engine.Propagations
		r.LearnedClauses += res.Stats.Engine.LearnedClauses
		r.Backjumps += res.Stats.Engine.Backjumps
		r.TheoryCalls += res.Stats.Engine.TheoryCalls
		seen := map[string]bool{}
		for _, d := range res.Deadlocks {
			b.WriteString(d.Render())
			if id := app.Classify(d); id != "" && id != "extra" && id != "fp-checkout-applock" && !seen[id] {
				seen[id] = true
				r.found++
			}
		}
	}
	var r pipelineRun
	var b strings.Builder
	start := time.Now()
	diagnose(blApp, blTraces, &b, &r)
	diagnose(shApp, shTraces, &b, &r)
	r.WallMS = time.Since(start).Milliseconds()
	r.rendered = b.String()
	return r
}

// pipelineBench compares the diagnosis at Parallelism=1 and -parallel N
// over the Table II workload, checks the reports are byte-identical, and
// optionally writes the numbers to -out.
func pipelineBench(blApp, shApp apps.App, blTraces, shTraces []*trace.Trace) {
	workers := *parallelF
	fmt.Printf("\nparallel pipeline (Parallelism=1 vs %d, memoized):\n", workers)
	serial := timedRun(blApp, shApp, blTraces, shTraces, 1)
	par := timedRun(blApp, shApp, blTraces, shTraces, workers)

	identical := serial.rendered == par.rendered
	out := pipelineJSON{
		Version:          1,
		Parallelism:      workers,
		Serial:           serial,
		Parallel:         par,
		Table2Found:      par.found,
		Table2Catalog:    len(broadleaf.Expectations()) + len(shopizer.Expectations()),
		ReportsIdentical: identical,
	}
	if par.WallMS > 0 {
		out.Speedup = float64(serial.WallMS) / float64(par.WallMS)
	}
	if par.GroupsSolved > 0 {
		out.MemoHitRate = float64(par.MemoHits) / float64(par.GroupsSolved)
	}

	fmt.Printf("  serial:   %4d ms wall (solver %d ms), %d groups via %d solver calls (%d memo hits)\n",
		serial.WallMS, serial.SolverMS, serial.GroupsSolved, serial.SolverCalls, serial.MemoHits)
	fmt.Printf("  parallel: %4d ms wall (solver %d ms), %d groups via %d solver calls (%d memo hits)\n",
		par.WallMS, par.SolverMS, par.GroupsSolved, par.SolverCalls, par.MemoHits)
	fmt.Printf("  engine:   %d decisions, %d conflicts, %d propagations, %d learned clauses, %d backjumps, %d theory calls\n",
		serial.Decisions, serial.Conflicts, serial.Propagations,
		serial.LearnedClauses, serial.Backjumps, serial.TheoryCalls)
	fmt.Printf("  speedup %.2fx, memo hit rate %.0f%%, reports byte-identical: %v, Table II %d/%d\n",
		out.Speedup, 100*out.MemoHitRate, identical, out.Table2Found, out.Table2Catalog)
	if !identical {
		// Determinism is the contract the memoized parallel pipeline is
		// built around; refuse to record benchmark artifacts that violate
		// it.
		fmt.Println("  ERROR: parallel report differs from serial — determinism bug; not writing BENCH files")
		os.Exit(1)
	}

	if *outF != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(*outF, append(data, '\n'), 0o644))
		fmt.Printf("  wrote %s\n", *outF)
	}
	if *solverOutF != "" {
		writeSolverBench(serial, par, workers)
	}
	if *traceOutF != "" || *metricsF != "" {
		observedRun(blApp, shApp, blTraces, shTraces, workers)
	}
}

// observedRun repeats the parallel table2 diagnosis with an observer
// attached and writes the requested telemetry artifacts. It runs after
// the serial/parallel identity check so instrumentation cannot skew the
// timed comparison; one observer spans both apps, so the trace shows
// two back-to-back analyze trees and the metrics aggregate the full
// workload.
func observedRun(blApp, shApp apps.App, blTraces, shTraces []*trace.Trace, workers int) {
	o := obs.NewObserver()
	_, err := core.NewAnalyzer(blApp.Schema(),
		core.WithParallelism(workers), core.WithObserver(o)).
		AnalyzeContext(context.Background(), blTraces)
	check(err)
	_, err = core.NewAnalyzer(shApp.Schema(),
		core.WithParallelism(workers), core.WithObserver(o)).
		AnalyzeContext(context.Background(), shTraces)
	check(err)
	write := func(path string, render func(*os.File) error) {
		f, err := os.Create(path)
		check(err)
		check(render(f))
		check(f.Close())
		fmt.Printf("  wrote %s\n", path)
	}
	if *traceOutF != "" {
		write(*traceOutF, func(f *os.File) error { return o.Tracer.WriteChromeTrace(f) })
	}
	if *metricsF != "" {
		write(*metricsF, func(f *os.File) error { return o.Metrics.WritePrometheus(f) })
	}
}

// solverBaseline records the pre-CDCL engine's serial numbers on this
// same Table II workload (linear-scan DPLL(T) with full-assignment
// blocking clauses, string-keyed atom interning, uncached edge
// conditions), measured on the reference container. The solver JSON
// reports the current engine against it.
type solverBaseline struct {
	Engine       string `json:"engine"`
	SerialWallMS int64  `json:"serial_wall_ms"`
	SerialSlvMS  int64  `json:"serial_solver_ms"`
}

// solverJSON is the versioned -solverout payload.
type solverJSON struct {
	Version     int            `json:"version"`
	Engine      string         `json:"engine"`
	Parallelism int            `json:"parallelism"`
	Baseline    solverBaseline `json:"baseline"`
	Serial      pipelineRun    `json:"serial"`
	Parallel    pipelineRun    `json:"parallel"`
	// SolverSpeedup is baseline serial in-solver time over current serial
	// in-solver time on the same workload.
	SolverSpeedup float64 `json:"solver_speedup_vs_baseline"`
}

func writeSolverBench(serial, par pipelineRun, workers int) {
	base := solverBaseline{
		Engine:       "dpll-blocking-clauses (pre-CDCL)",
		SerialWallMS: 753,
		SerialSlvMS:  560,
	}
	out := solverJSON{
		Version:     1,
		Engine:      "cdcl-watched-literals + theory-core learning",
		Parallelism: workers,
		Baseline:    base,
		Serial:      serial,
		Parallel:    par,
	}
	if serial.SolverMS > 0 {
		out.SolverSpeedup = float64(base.SerialSlvMS) / float64(serial.SolverMS)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile(*solverOutF, append(data, '\n'), 0o644))
	fmt.Printf("  wrote %s (solver speedup vs pre-CDCL baseline: %.2fx)\n", *solverOutF, out.SolverSpeedup)
}

// ---------------------------------------------------------------------------
// Table III

func table3() {
	header("Table III: unit-test execution time per engine mode (microseconds)")
	modes := []struct {
		label string
		mode  concolic.Mode
	}{
		{"Original", concolic.ModeOff},
		{"Interpretive", concolic.ModeInterpret},
		{"Interpretive+Concolic", concolic.ModeConcolic},
	}
	names := []string{"Register", "Add1", "Add2", "Add3", "Ship", "Payment", "Checkout"}
	results := make(map[string][]float64)
	const reps = 30
	for _, m := range modes {
		samples := make([][]float64, len(names))
		for r := 0; r < reps+1; r++ {
			app := openApp("broadleaf")
			for i, ut := range app.UnitTests() {
				e := concolic.New(m.mode)
				e.StartConcolic(ut.Name)
				start := time.Now()
				check(ut.Run(e))
				el := float64(time.Since(start).Microseconds())
				e.EndConcolic()
				if r > 0 { // discard the warmup repetition
					samples[i] = append(samples[i], el)
				}
			}
		}
		med := make([]float64, len(names))
		for i, ss := range samples {
			sort.Float64s(ss)
			med[i] = ss[len(ss)/2]
		}
		results[m.label] = med
	}
	fmt.Printf("%-22s", "JDK Version")
	for _, n := range names {
		fmt.Printf(" %9s", n)
	}
	fmt.Println()
	for _, m := range modes {
		fmt.Printf("%-22s", m.label)
		for i := range names {
			fmt.Printf(" %9.0f", results[m.label][i])
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: Original < Interpretive < Interpretive+Concolic for every API")
}

// ---------------------------------------------------------------------------
// Fig. 10 / Fig. 11
//
// The ablation figures toggle individual fixes, a knob the registry's
// Fixed bool does not expose, so they keep the model apps' direct Fixes
// constructors.

func dbCfg() minidb.Config {
	return minidb.Config{
		StatementDelay:  100 * time.Microsecond,
		LockWaitTimeout: 100 * time.Millisecond,
	}
}

func fig10() {
	header("Fig. 10: performance impact of Broadleaf's deadlocks (API/s)")
	configs := []struct {
		label string
		fixes broadleaf.Fixes
	}{
		{"enable all", broadleaf.AllFixes()},
		{"disable all", broadleaf.Fixes{}},
	}
	for _, f := range broadleaf.FixNames() {
		configs = append(configs, struct {
			label string
			fixes broadleaf.Fixes
		}{"disable " + f, broadleaf.AllFixes().Disable(f)})
	}
	fmt.Printf("%-14s", "config")
	for _, c := range clientCounts() {
		fmt.Printf(" %8d cl  (aborts/s)", c)
	}
	fmt.Println()
	for _, cfg := range configs {
		fmt.Printf("%-14s", cfg.label)
		for _, clients := range clientCounts() {
			app := broadleaf.New(cfg.fixes, dbCfg())
			res := workload.Run(workload.Config{
				Clients: clients, Duration: *duration, Seed: 42,
				RetryBackoff: time.Millisecond,
			}, app.DB, app.Flow())
			fmt.Printf(" %11.0f  (%8.0f)", res.Throughput, res.AbortsPS)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: enable all sustains throughput with ~0 aborts/s; disable all")
	fmt.Println("collapses under deadlock storms (the paper reports 39.5x and 904->0 aborts/s)")
}

func fig11() {
	header("Fig. 11: performance impact of Shopizer's deadlocks (API/s)")
	configs := []struct {
		label string
		fixes shopizer.Fixes
	}{
		{"enable all", shopizer.AllFixes()},
		{"disable all", shopizer.Fixes{}},
	}
	for _, f := range shopizer.FixNames() {
		configs = append(configs, struct {
			label string
			fixes shopizer.Fixes
		}{"disable " + f, shopizer.AllFixes().Disable(f)})
	}
	fmt.Printf("%-14s", "config")
	for _, c := range clientCounts() {
		fmt.Printf(" %8d cl  (aborts/s)", c)
	}
	fmt.Println()
	for _, cfg := range configs {
		fmt.Printf("%-14s", cfg.label)
		for _, clients := range clientCounts() {
			app := shopizer.New(cfg.fixes, dbCfg())
			res := workload.Run(workload.Config{
				Clients: clients, Duration: *duration, Seed: 42,
				RetryBackoff: time.Millisecond,
			}, app.DB, app.Flow())
			fmt.Printf(" %11.0f  (%8.0f)", res.Throughput, res.AbortsPS)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: fixes win at high concurrency (the paper reports up to 4.5x)")
}

// ---------------------------------------------------------------------------
// Pruning (Sec. IV)

func pruning() {
	header("Sec. IV: path-condition pruning (Broadleaf unit tests)")
	pruned, err := appkit.Collect(openApp("broadleaf").UnitTests(), concolic.ModeConcolic)
	check(err)
	full, err := appkit.Collect(openApp("broadleaf").UnitTests(),
		concolic.ModeConcolic, concolic.WithoutPruning())
	check(err)
	fmt.Printf("%-10s %14s %14s %9s\n", "API", "no pruning", "with pruning", "ratio")
	for i := range pruned {
		with := pruned[i].Stats.PathConds
		without := full[i].Stats.PathConds
		ratio := float64(without) / float64(max(1, with))
		fmt.Printf("%-10s %14d %14d %8.0fx\n", pruned[i].API, without, with, ratio)
	}
	fmt.Println("\nexpected shape: pruning removes orders of magnitude of conditions")
	fmt.Println("(the paper reports 656K -> 2.7K for Broadleaf's Ship API)")
}

// ---------------------------------------------------------------------------
// Coarse baseline (Sec. VII-B)

func baseline() {
	header("Sec. VII-B: coarse-grained baseline (STEPDAD/REDACT style)")
	blApp := openApp("broadleaf")
	shApp := openApp("shopizer")
	blTraces, err := appkit.Collect(blApp.UnitTests(), concolic.ModeConcolic)
	check(err)
	shTraces, err := appkit.Collect(shApp.UnitTests(), concolic.ModeConcolic)
	check(err)

	blCoarse := core.New(blApp.Schema(), core.Options{CoarseOnly: true}).Analyze(blTraces)
	shCoarse := core.New(shApp.Schema(), core.Options{CoarseOnly: true}).Analyze(shTraces)
	blFine := core.New(blApp.Schema(), core.Options{}).Analyze(blTraces)
	shFine := core.New(shApp.Schema(), core.Options{}).Analyze(shTraces)

	total := blCoarse.Stats.CoarseCycles + shCoarse.Stats.CoarseCycles
	fmt.Printf("coarse hold-and-wait cycles reported: %d (paper: 18,384)\n", total)
	fmt.Printf("WeSEER fine-grained confirmed groups: %d; cataloged deadlocks: 18\n",
		len(blFine.Deadlocks)+len(shFine.Deadlocks))
	fmt.Printf("funnel (Broadleaf): %s\n", blFine.Stats.Render())
	fmt.Printf("funnel (Shopizer):  %s\n", shFine.Stats.Render())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
