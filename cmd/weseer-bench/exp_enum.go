package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"weseer/internal/appgen"
	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
)

// The enum experiment isolates phases 1–2: it sweeps generated corpora
// across template counts and diagnoses each three ways — the serial
// quadratic pair loop (the pre-index baseline, kept as the
// DisableEnumIndex ablation), the inverted-index enumeration on one
// worker, and the indexed enumeration on -parallel workers. Every point
// gates on byte-identical reports across all three modes before its
// timings are recorded; the sweep, seed and normalized corpus configs
// embedded, goes to -enumout.

var (
	enumSizesF = flag.String("enumsizes", "96,384,1056", "template counts for the -exp enum sweep")
	enumSeedF  = flag.Int64("enumseed", 7, "generator seed for -exp enum")
	enumOutF   = flag.String("enumout", "BENCH_enum.json", "write the -exp enum sweep as versioned JSON to this file")
)

func init() {
	registerExp(9, "enum", "phase-1/2 enumeration: naive pair loop vs indexed vs indexed-parallel", enum)
}

// enumRun is one timed diagnosis of a corpus under one enumeration mode.
type enumRun struct {
	WallMS      int64 `json:"wall_ms"`
	EnumMS      int64 `json:"enum_ms"` // wall time of phases 1–2 (pool + merge)
	IndexProbes int   `json:"index_probes"`
}

// enumPoint is one corpus size in the sweep.
type enumPoint struct {
	Templates        int           `json:"templates"`
	Spec             string        `json:"spec"` // canonical gen spec: reproduces this corpus exactly
	Config           appgen.Config `json:"config"`
	Traces           int           `json:"traces"`
	Pairs            int           `json:"pairs"`
	PairsAfterPhase1 int           `json:"pairs_after_phase1"`
	Deadlocks        int           `json:"deadlocks"`
	Naive            enumRun       `json:"naive"`
	Indexed          enumRun       `json:"indexed"`
	IndexedParallel  enumRun       `json:"indexed_parallel"`
	// EnumSpeedup compares just the phase-1/2 wall time, naive over
	// indexed (one worker each): the index's algorithmic gain, with the
	// identical phase-3 work factored out.
	EnumSpeedup float64 `json:"enum_speedup"`
	// ProbeShare is the index's posting-list work as a fraction of the
	// naive loop's pairwise signature probes — how sparse the corpus is,
	// and so how much of the quadratic universe the index skips.
	ProbeShare       float64 `json:"probe_share"`
	ReportsIdentical bool    `json:"reports_identical"`
}

// enumJSON is the versioned -enumout payload. As with -exp scale,
// NumCPU/GOMAXPROCS record the machine: on a single scheduler-visible
// core the indexed-parallel mode pays fan-out overhead for no wall-
// clock gain, while the identity gate is machine-independent.
type enumJSON struct {
	Version     int         `json:"version"`
	Seed        int64       `json:"seed"`
	Parallelism int         `json:"parallelism"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Points      []enumPoint `json:"points"`
}

func enumSizes() []int {
	var out []int
	for _, part := range strings.Split(*enumSizesF, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "weseer-bench: bad -enumsizes entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func enum() {
	workers := *parallelF
	header(fmt.Sprintf("Enum: naive pair loop vs conflict index, indexed-parallel at %d", workers))
	out := enumJSON{Version: 1, Seed: *enumSeedF, Parallelism: workers,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if out.GOMAXPROCS < workers {
		fmt.Printf("note: GOMAXPROCS=%d < %d workers — expect wall-clock parity (or fan-out\n"+
			"overhead) for the parallel mode; the byte-identity gate is machine-independent\n",
			out.GOMAXPROCS, workers)
	}

	fmt.Printf("%9s %7s %9s %9s %5s %9s %9s %9s %8s %7s\n",
		"templates", "traces", "pairs", "after-p1", "dl", "naive-ms", "index-ms", "par-ms", "speedup", "probes")
	for _, n := range enumSizes() {
		spec := fmt.Sprintf("%d,templates=%d", *enumSeedF, n)
		app := openApp("gen:" + spec)
		cfg := app.(interface{ Config() appgen.Config }).Config()

		traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
		check(err)

		run := func(opts ...core.Option) (enumRun, *core.Result, string) {
			t0 := time.Now()
			res, err := core.NewAnalyzer(app.Schema(), opts...).
				AnalyzeContext(context.Background(), traces)
			check(err)
			r := enumRun{
				WallMS:      time.Since(t0).Milliseconds(),
				EnumMS:      res.Stats.EnumTime.Milliseconds(),
				IndexProbes: res.Stats.IndexProbes,
			}
			// The identity report zeroes IndexProbes: it is the one funnel
			// counter that legitimately differs across the modes (the naive
			// loop never walks the index).
			stats := res.Stats.WithoutTimings()
			stats.IndexProbes = 0
			var b strings.Builder
			fmt.Fprintf(&b, "funnel: %+v\n", stats)
			for i, d := range res.Deadlocks {
				fmt.Fprintf(&b, "--- deadlock %d\n%s", i+1, d.Render())
			}
			return r, res, b.String()
		}
		// Untimed warmup for the same reason as -exp scale: Canon's
		// process-wide caches persist, so the first timed run would
		// otherwise pay the cold-cache cost alone.
		run(core.WithParallelism(1))
		naive, res, naiveReport := run(core.WithoutEnumIndex(), core.WithParallelism(1))
		indexed, _, indexedReport := run(core.WithParallelism(1))
		par, _, parReport := run(core.WithParallelism(workers))

		pt := enumPoint{
			Templates:        cfg.Templates,
			Spec:             cfg.Spec(),
			Config:           cfg,
			Traces:           len(traces),
			Pairs:            res.Stats.Pairs,
			PairsAfterPhase1: res.Stats.PairsAfterPhase1,
			Deadlocks:        len(res.Deadlocks),
			Naive:            naive,
			Indexed:          indexed,
			IndexedParallel:  par,
			ReportsIdentical: naiveReport == indexedReport && indexedReport == parReport,
		}
		if indexed.EnumMS > 0 {
			pt.EnumSpeedup = float64(naive.EnumMS) / float64(indexed.EnumMS)
		}
		if pt.Pairs > 0 {
			pt.ProbeShare = float64(indexed.IndexProbes) / float64(pt.Pairs)
		}
		fmt.Printf("%9d %7d %9d %9d %5d %9d %9d %9d %7.2fx %7d\n",
			pt.Templates, pt.Traces, pt.Pairs, pt.PairsAfterPhase1, pt.Deadlocks,
			naive.EnumMS, indexed.EnumMS, par.EnumMS, pt.EnumSpeedup, indexed.IndexProbes)
		if !pt.ReportsIdentical {
			fmt.Println("  ERROR: enumeration modes disagree — determinism bug; not writing BENCH files")
			os.Exit(1)
		}
		out.Points = append(out.Points, pt)
	}

	if *enumOutF != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(*enumOutF, append(data, '\n'), 0o644))
		fmt.Printf("\nwrote %s (seed %d, %d point(s))\n", *enumOutF, out.Seed, len(out.Points))
	}
}
