package main

import (
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/obs"
	"weseer/internal/schema"
	"weseer/internal/solver"
)

// TestFunnelInvariants guards the owner-charged funnel accounting on
// the Table II workload at parallelism 1, 4, and 16: the memoization
// split SolverCalls + MemoHits == GroupsSolved must hold, Stats.Engine
// must aggregate to the same counters at every worker count (each
// distinct canonical formula is charged exactly once, by the call that
// owned it), and the deterministic funnel must not vary with
// parallelism. The runs are observed, so the exported funnel counters
// are checked against Result.Stats too.
func TestFunnelInvariants(t *testing.T) {
	type target struct {
		name  string
		scm   *schema.Schema
		tests []appkit.UnitTest
	}
	blApp := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
	shApp := shopizer.New(shopizer.Fixes{}, minidb.Config{})
	targets := []target{
		{"broadleaf", broadleaf.Schema(), blApp.UnitTests()},
		{"shopizer", shopizer.Schema(), shApp.UnitTests()},
	}

	for _, tg := range targets {
		traces, err := appkit.Collect(tg.tests, concolic.ModeConcolic)
		if err != nil {
			t.Fatalf("%s: collect: %v", tg.name, err)
		}
		var baseline core.Stats
		for i, workers := range []int{1, 4, 16} {
			o := obs.NewObserver()
			res := core.NewAnalyzer(tg.scm,
				core.WithParallelism(workers), core.WithObserver(o)).Analyze(traces)
			s := res.Stats

			if s.SolverCalls+s.MemoHits != s.GroupsSolved {
				t.Errorf("%s/p%d: SolverCalls %d + MemoHits %d != GroupsSolved %d",
					tg.name, workers, s.SolverCalls, s.MemoHits, s.GroupsSolved)
			}
			if s.SolverCalls > 0 && s.Engine == (solver.Stats{}) {
				t.Errorf("%s/p%d: Engine counters are all zero after %d solver calls",
					tg.name, workers, s.SolverCalls)
			}
			if i == 0 {
				baseline = s.WithoutTimings()
			} else if got := s.WithoutTimings(); got != baseline {
				t.Errorf("%s/p%d: funnel differs from serial:\n got %+v\nwant %+v",
					tg.name, workers, got, baseline)
			}

			// The observer mirrors the merge field for field, so the
			// exported funnel counters must equal the report's stats.
			snap := o.Snapshot()
			for metric, want := range map[string]int{
				"weseer_funnel_traces_total":             s.Traces,
				"weseer_funnel_txn_pairs_total":          s.Pairs,
				"weseer_funnel_pairs_after_phase1_total": s.PairsAfterPhase1,
				"weseer_funnel_coarse_cycles_total":      s.CoarseCycles,
				"weseer_funnel_lock_filtered_total":      s.LockFiltered,
				"weseer_funnel_groups_solved_total":      s.GroupsSolved,
				"weseer_funnel_solver_calls_total":       s.SolverCalls,
				"weseer_funnel_memo_hits_total":          s.MemoHits,
				"weseer_solver_sat_total":                s.SolverSAT,
				"weseer_solver_unsat_total":              s.SolverUNSAT,
				"weseer_solver_unknown_total":            s.SolverUnknown,
				"weseer_cdcl_decisions_total":            s.Engine.Decisions,
				"weseer_cdcl_conflicts_total":            s.Engine.Conflicts,
				"weseer_cdcl_propagations_total":         s.Engine.Propagations,
				"weseer_cdcl_theory_calls_total":         s.Engine.TheoryCalls,
			} {
				if got := snap[metric]; got != float64(want) {
					t.Errorf("%s/p%d: metric %s = %v, want %d (Result.Stats)",
						tg.name, workers, metric, got, want)
				}
			}
			if got := snap["weseer_solver_seconds_count"]; got != float64(s.SolverCalls) {
				t.Errorf("%s/p%d: latency histogram count %v != SolverCalls %d",
					tg.name, workers, got, s.SolverCalls)
			}
			t.Logf("%s/p%d: %d groups = %d solver calls + %d memo hits",
				tg.name, workers, s.GroupsSolved, s.SolverCalls, s.MemoHits)
		}
	}
}
