package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"weseer/internal/apps"
	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/fixapply"
	"weseer/internal/workload"
)

// The fixgain experiment closes the fix-verification loop (Sec. VII,
// Figs. 10–11): diagnose an application, derive its ranked fix plan
// (internal/fixapply), then for every fix — individually and
// cumulatively in rank order — re-collect, re-analyze, and drive the
// concurrent-client workload, recording deadlock-abort counts, retry
// burn, and successful-API throughput before and after. Static gates
// (deterministic, parallelism-independent) prove each fix eliminates its
// targeted fingerprints; the load measurements show what that buys.
//
// -fixapps takes ";"-separated registry specs (gen specs contain commas).

var (
	fixAppsF = flag.String("fixapps",
		"broadleaf;gen:11,templates=6,modules=2,tables=3,rows=5,classes=f1:1+f2:1+f6:1+f8:1+f9:1+f10:1+f11:1",
		"';'-separated app specs for -exp fixgain")
	fixClientsF = flag.Int("fixclients", 8, "concurrent clients for the -exp fixgain workloads")
	fixDurF     = flag.Duration("fixdur", time.Second, "per-configuration workload duration for -exp fixgain")
	fixSeedF    = flag.Int64("fixseed", 42, "workload seed for -exp fixgain")
	fixOutF     = flag.String("fixout", "BENCH_fixgain.json", "write the -exp fixgain report as versioned JSON to this file")
)

func init() {
	registerExp(10, "fixgain", "fix-verification loop: apply ranked fixes, replay under load, measure the win", fixgain)
}

// fixgainAnalysis summarizes one serial re-analysis (deterministic).
type fixgainAnalysis struct {
	Deadlocks int            `json:"deadlocks"`
	Classes   map[string]int `json:"classes"`
	// TargetedEliminated / TargetedRemaining partition the applied fixes'
	// fingerprints by whether re-analysis still reports them.
	TargetedEliminated int `json:"targeted_eliminated"`
	TargetedRemaining  int `json:"targeted_remaining"`
	// RemainingTargeted lists the targeted fingerprints that survived
	// (static over-approximation residue; empty for generated corpora).
	RemainingTargeted []string `json:"remaining_targeted,omitempty"`
}

// fixgainStep is one fix configuration: the fixes applied and the
// re-analysis outcome.
type fixgainStep struct {
	Fix      string          `json:"fix"`
	Apply    []string        `json:"apply"`
	Analysis fixgainAnalysis `json:"analysis"`
}

// fixgainGates are the deterministic pass/fail criteria. Strict
// fingerprint elimination is gated on generated corpora (where the fix
// rewrites the exact planted shape); model apps additionally tolerate a
// conservative residue — cycles whose statements survive every fix and
// stay statically reportable (the seed's TestFixedAppShrinksReports
// documents this; the paper validates model-app fixes at runtime) — as
// long as every residual report is explained by an applied fix's target
// class or a known false-positive class.
type fixgainGates struct {
	// EachFixShrinks: every individual fix strictly shrinks the report set.
	EachFixShrinks bool `json:"each_fix_shrinks"`
	// CumulativeMonotone: each cumulative step reports no more deadlocks
	// than the previous one, and the final step fewer than baseline.
	CumulativeMonotone bool `json:"cumulative_monotone"`
	// StrictElimination: every individual and cumulative step eliminated
	// all of its applied fixes' fingerprints. Required for generated
	// corpora; recorded (not required) for cataloged model apps.
	StrictElimination bool `json:"strict_elimination"`
	// ResidualExplained: every deadlock remaining after all fixes is
	// classified to an applied fix's target or an "fp-"/"extra" class.
	ResidualExplained bool `json:"residual_explained"`
	TargetedTotal     int  `json:"targeted_total"`
	TargetedFinal     int  `json:"targeted_final_eliminated"`
	Pass              bool `json:"pass"`
}

// fixgainStatic is the deterministic half of one app's report:
// byte-identical across runs and parallelism levels.
type fixgainStatic struct {
	Baseline   fixgainAnalysis `json:"baseline"`
	Plan       []fixapply.Fix  `json:"plan"`
	Individual []fixgainStep   `json:"individual"`
	Cumulative []fixgainStep   `json:"cumulative"`
	Gates      fixgainGates    `json:"gates"`
}

// fixgainRun is one measured workload run.
type fixgainRun struct {
	APICalls   int64            `json:"api_calls"`
	Failures   int64            `json:"failures"`
	Retries    int64            `json:"retries"`
	Throughput float64          `json:"throughput"`
	Deadlocks  int64            `json:"deadlocks"`
	AbortsPS   float64          `json:"aborts_ps"`
	LockWaits  int64            `json:"lock_waits"`
	Victims    map[string]int64 `json:"deadlock_victims_by_table,omitempty"`
}

// fixgainLoadStep pairs a fix configuration with its measured run.
type fixgainLoadStep struct {
	Fix   string     `json:"fix"`
	Apply []string   `json:"apply"`
	Run   fixgainRun `json:"run"`
}

// fixgainLoad is the measured half of one app's report (wall-clock
// dependent; the determinism contract excludes it).
type fixgainLoad struct {
	Baseline   fixgainRun        `json:"baseline"`
	Individual []fixgainLoadStep `json:"individual"`
	Cumulative []fixgainLoadStep `json:"cumulative"`
	// SpeedupX is final-cumulative throughput over baseline throughput.
	SpeedupX float64 `json:"speedup_x"`
	// AbortGatePass: the fully fixed app aborted strictly fewer
	// transactions on deadlock than the unfixed baseline.
	AbortGatePass bool `json:"abort_gate_pass"`
}

// fixgainApp is one app's full report.
type fixgainAppReport struct {
	App    string        `json:"app"`
	Static fixgainStatic `json:"static"`
	Load   *fixgainLoad  `json:"load,omitempty"`
}

// fixgainEnv records wall-clock- and machine-dependent context; the
// determinism test zeroes it alongside the load sections.
type fixgainEnv struct {
	Parallelism int   `json:"parallelism"`
	NumCPU      int   `json:"num_cpu"`
	GOMAXPROCS  int   `json:"gomaxprocs"`
	WallMS      int64 `json:"wall_ms"`
}

// fixgainJSON is the versioned -fixout payload.
type fixgainJSON struct {
	Version    int                `json:"version"`
	Seed       int64              `json:"seed"`
	Clients    int                `json:"clients"`
	DurationMS int64              `json:"duration_ms"`
	Env        fixgainEnv         `json:"env"`
	Apps       []fixgainAppReport `json:"apps"`
}

// fixgainAnalyze serially re-collects and re-analyzes one app
// configuration and scores it against the applied fixes' fingerprints.
func fixgainAnalyze(spec string, apply []string, workers int, plan []fixapply.Fix) (fixgainAnalysis, *core.Result, apps.App) {
	app, err := apps.Open(spec, apps.Options{Apply: apply})
	check(err)
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	check(err)
	res, err := core.NewAnalyzer(app.Schema(), core.WithPrescreen(), core.WithParallelism(workers)).
		AnalyzeContext(context.Background(), traces)
	check(err)

	out := fixgainAnalysis{Deadlocks: len(res.Deadlocks), Classes: map[string]int{}}
	remaining := map[string]bool{}
	for _, d := range res.Deadlocks {
		out.Classes[app.Classify(d)]++
		remaining[d.Fingerprint()] = true
	}
	applied := map[string]bool{}
	for _, a := range apply {
		applied[a] = true
	}
	for _, f := range plan {
		if !applied[f.Name] {
			continue
		}
		for _, fp := range f.Fingerprints {
			if remaining[fp] {
				out.TargetedRemaining++
				out.RemainingTargeted = append(out.RemainingTargeted, fp)
			} else {
				out.TargetedEliminated++
			}
		}
	}
	sort.Strings(out.RemainingTargeted)
	return out, res, app
}

// fixgainMeasure opens a fresh app configuration on the contended
// database profile and drives the workload harness against it.
func fixgainMeasure(spec string, apply []string, clients int, dur time.Duration, seed int64) fixgainRun {
	app, err := apps.Open(spec, apps.Options{Apply: apply, DB: dbCfg()})
	check(err)
	wl, ok := app.(apps.Workloader)
	if !ok {
		fmt.Fprintf(os.Stderr, "weseer-bench: app %s has no workload flow\n", spec)
		os.Exit(2)
	}
	r := workload.Run(workload.Config{
		Clients: clients, Duration: dur, Seed: seed, RetryBackoff: time.Millisecond,
	}, app.DB(), wl.Flow())
	return fixgainRun{
		APICalls: r.APICalls, Failures: r.Failures, Retries: r.Retries,
		Throughput: r.Throughput, Deadlocks: r.Deadlocks, AbortsPS: r.AbortsPS,
		LockWaits: r.LockWaits, Victims: app.DB().DeadlockVictimsByTable(),
	}
}

// fixgainStaticFor builds the deterministic half for one app: baseline
// diagnosis, fix plan, and serial re-analysis of every individual and
// cumulative fix configuration.
func fixgainStaticFor(spec string, workers int) (fixgainStatic, []fixapply.Fix) {
	baseline, res, app := fixgainAnalyze(spec, nil, workers, nil)
	fa, ok := app.(fixapply.App)
	if !ok {
		fmt.Fprintf(os.Stderr, "weseer-bench: app %s lacks the fixapply surface\n", spec)
		os.Exit(2)
	}
	plan := fixapply.Plan(fa, res)
	st := fixgainStatic{Baseline: baseline, Plan: plan}
	_, cataloged := app.(fixapply.Cataloged)

	var cum []string
	for _, f := range plan {
		ind, _, _ := fixgainAnalyze(spec, []string{f.Name}, workers, plan)
		st.Individual = append(st.Individual, fixgainStep{
			Fix: f.Name, Apply: []string{f.Name}, Analysis: ind,
		})
		cum = append(cum, f.Name)
		ca, _, _ := fixgainAnalyze(spec, append([]string(nil), cum...), workers, plan)
		st.Cumulative = append(st.Cumulative, fixgainStep{
			Fix: f.Name, Apply: append([]string(nil), cum...), Analysis: ca,
		})
	}

	g := fixgainGates{EachFixShrinks: true, CumulativeMonotone: true,
		StrictElimination: true, ResidualExplained: true}
	for _, f := range plan {
		g.TargetedTotal += len(f.Fingerprints)
	}
	for _, s := range st.Individual {
		if s.Analysis.Deadlocks >= baseline.Deadlocks {
			g.EachFixShrinks = false
		}
		if s.Analysis.TargetedRemaining > 0 {
			g.StrictElimination = false
		}
	}
	prev := baseline.Deadlocks
	for _, s := range st.Cumulative {
		if s.Analysis.Deadlocks > prev {
			g.CumulativeMonotone = false
		}
		prev = s.Analysis.Deadlocks
		if s.Analysis.TargetedRemaining > 0 {
			g.StrictElimination = false
		}
	}
	if n := len(st.Cumulative); n > 0 {
		final := st.Cumulative[n-1].Analysis
		if final.Deadlocks >= baseline.Deadlocks {
			g.CumulativeMonotone = false
		}
		g.TargetedFinal = final.TargetedEliminated
		targets := map[string]bool{}
		for _, f := range plan {
			for _, t := range f.Targets {
				targets[t] = true
			}
		}
		for cl := range final.Classes {
			if targets[cl] || cl == "extra" || strings.HasPrefix(cl, "fp-") {
				continue
			}
			g.ResidualExplained = false
		}
	}
	// Pass: generated corpora must eliminate every targeted fingerprint;
	// cataloged model apps must shrink monotonically and explain the
	// conservative residue.
	if cataloged {
		g.Pass = g.EachFixShrinks && g.CumulativeMonotone && g.ResidualExplained
	} else {
		g.Pass = g.EachFixShrinks && g.CumulativeMonotone && g.ResidualExplained && g.StrictElimination
	}
	st.Gates = g
	return st, plan
}

// fixgainLoadFor measures the workload before/after each fix (individual
// and cumulative) for one app.
func fixgainLoadFor(spec string, plan []fixapply.Fix, clients int, dur time.Duration, seed int64) *fixgainLoad {
	ld := &fixgainLoad{Baseline: fixgainMeasure(spec, nil, clients, dur, seed)}
	var cum []string
	for _, f := range plan {
		ld.Individual = append(ld.Individual, fixgainLoadStep{
			Fix: f.Name, Apply: []string{f.Name},
			Run: fixgainMeasure(spec, []string{f.Name}, clients, dur, seed),
		})
		cum = append(cum, f.Name)
		ld.Cumulative = append(ld.Cumulative, fixgainLoadStep{
			Fix: f.Name, Apply: append([]string(nil), cum...),
			Run: fixgainMeasure(spec, append([]string(nil), cum...), clients, dur, seed),
		})
	}
	if n := len(ld.Cumulative); n > 0 {
		final := ld.Cumulative[n-1].Run
		if ld.Baseline.Throughput > 0 {
			ld.SpeedupX = final.Throughput / ld.Baseline.Throughput
		}
		ld.AbortGatePass = ld.Baseline.Deadlocks > 0 && final.Deadlocks < ld.Baseline.Deadlocks
	}
	return ld
}

// buildFixgain runs the full experiment for the given specs. The Static
// sections of the result are deterministic: same specs, seed, and
// clients yield identical bytes at any workers value.
func buildFixgain(specs []string, clients int, dur time.Duration, seed int64, workers int, withLoad bool) fixgainJSON {
	out := fixgainJSON{Version: 1, Seed: seed, Clients: clients, DurationMS: dur.Milliseconds(),
		Env: fixgainEnv{Parallelism: workers, NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}}
	for _, spec := range specs {
		st, plan := fixgainStaticFor(spec, workers)
		rep := fixgainAppReport{App: spec, Static: st}
		if withLoad {
			rep.Load = fixgainLoadFor(spec, plan, clients, dur, seed)
		}
		out.Apps = append(out.Apps, rep)
	}
	return out
}

func fixgainSpecs() []string {
	var out []string
	for _, s := range strings.Split(*fixAppsF, ";") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "weseer-bench: -fixapps is empty")
		os.Exit(2)
	}
	return out
}

func fixgain() {
	workers := *parallelF
	header(fmt.Sprintf("Fixgain: fix-verification loop (%d clients, %s per run)", *fixClientsF, *fixDurF))
	t0 := time.Now()
	out := buildFixgain(fixgainSpecs(), *fixClientsF, *fixDurF, *fixSeedF, workers, true)
	out.Env.WallMS = time.Since(t0).Milliseconds()

	allPass := true
	for _, rep := range out.Apps {
		st, ld := rep.Static, rep.Load
		fmt.Printf("\napp %s: baseline %d deadlock report(s), %d fix(es) planned\n",
			rep.App, st.Baseline.Deadlocks, len(st.Plan))
		fmt.Print(fixapply.Render(st.Plan))
		if len(st.Plan) == 0 {
			fmt.Printf("fixgain %s: nothing to fix — skipping\n", rep.App)
			continue
		}
		fmt.Printf("%-6s %10s %10s %12s | %10s %9s %9s %9s\n",
			"fix", "reports", "cum-rep", "targeted", "api/s", "calls", "retries", "aborts")
		fmt.Printf("%-6s %10d %10s %12s | %10.1f %9d %9d %9d\n",
			"(none)", st.Baseline.Deadlocks, "-", "-",
			ld.Baseline.Throughput, ld.Baseline.APICalls, ld.Baseline.Retries, ld.Baseline.Deadlocks)
		for i := range st.Individual {
			ind, ca := st.Individual[i], st.Cumulative[i]
			li, lc := ld.Individual[i], ld.Cumulative[i]
			fmt.Printf("%-6s %10d %10d %9d/%-2d | %10.1f %9d %9d %9d  (cum: %.1f api/s, %d aborts)\n",
				ind.Fix, ind.Analysis.Deadlocks, ca.Analysis.Deadlocks,
				ind.Analysis.TargetedEliminated, ind.Analysis.TargetedEliminated+ind.Analysis.TargetedRemaining,
				li.Run.Throughput, li.Run.APICalls, li.Run.Retries, li.Run.Deadlocks,
				lc.Run.Throughput, lc.Run.Deadlocks)
		}
		g := st.Gates
		status := func(b bool) string {
			if b {
				return "ok"
			}
			return "FAIL"
		}
		fmt.Printf("static gates: each-fix-shrinks=%s cumulative-monotone=%s strict-elimination=%s residual-explained=%s (%d/%d targeted fingerprints eliminated when all fixes applied)\n",
			status(g.EachFixShrinks), status(g.CumulativeMonotone), status(g.StrictElimination),
			status(g.ResidualExplained), g.TargetedFinal, g.TargetedTotal)
		pass := g.Pass && ld.AbortGatePass
		fmt.Printf("fixgain %s: before=%d after=%d deadlock aborts, speedup=%.2fx, gates=%s\n",
			rep.App, ld.Baseline.Deadlocks, ld.Cumulative[len(ld.Cumulative)-1].Run.Deadlocks,
			ld.SpeedupX, map[bool]string{true: "PASS", false: "FAIL"}[pass])
		allPass = allPass && pass
	}

	if *fixOutF != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(*fixOutF, append(data, '\n'), 0o644))
		fmt.Printf("\nwrote %s (seed %d, %d app(s))\n", *fixOutF, out.Seed, len(out.Apps))
	}
	if !allPass {
		fmt.Println("ERROR: fixgain gates failed")
		os.Exit(1)
	}
}
