package main

import (
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/schema"
)

// TestPrescreenSound is the Phase-0 soundness gate: on both model
// applications, enabling the static prescreen must not change a single
// reported deadlock — same group keys, same Table II classification,
// all 18 cataloged deadlocks still found — while measurably cutting the
// number of solver calls. With lock-order canonicalization feeding the
// prescreen, it additionally pins the baseline solver-call funnel
// (326 groups = 226 solver calls + 100 memo hits on the Table II
// workload), requires the canonical order to carry the f10/f11-style
// row-order suggestion on Shopizer, and requires the full prescreen
// report to stay byte-identical at parallelism 1, 4, and 16.
func TestPrescreenSound(t *testing.T) {
	type target struct {
		name     string
		scm      *schema.Schema
		tests    []appkit.UnitTest
		classify func(*core.Deadlock) string
		expected []string
	}
	blApp := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
	shApp := shopizer.New(shopizer.Fixes{}, minidb.Config{})
	var blIDs, shIDs []string
	for _, e := range broadleaf.Expectations() {
		blIDs = append(blIDs, e.ID)
	}
	for _, e := range shopizer.Expectations() {
		shIDs = append(shIDs, e.ID)
	}
	targets := []target{
		{"broadleaf", broadleaf.Schema(), blApp.UnitTests(), broadleaf.Classify, blIDs},
		{"shopizer", shopizer.Schema(), shApp.UnitTests(), shopizer.Classify, shIDs},
	}

	totalSaved, totalOff, totalOn := 0, 0, 0
	totalOffCalls, totalOffMemo := 0, 0
	for _, tg := range targets {
		traces, err := appkit.Collect(tg.tests, concolic.ModeConcolic)
		if err != nil {
			t.Fatalf("%s: collect: %v", tg.name, err)
		}
		off := core.New(tg.scm, core.Options{}).Analyze(traces)
		on := core.New(tg.scm, core.Options{StaticPrescreen: true}).Analyze(traces)

		// Identical reports: the prescreen may only discard candidates the
		// solver would refute, never a satisfiable cycle.
		offKeys := map[string]bool{}
		for _, d := range off.Deadlocks {
			offKeys[d.Key] = true
		}
		if len(on.Deadlocks) != len(off.Deadlocks) {
			t.Errorf("%s: prescreen changed the report count: %d vs %d",
				tg.name, len(on.Deadlocks), len(off.Deadlocks))
		}
		for _, d := range on.Deadlocks {
			if !offKeys[d.Key] {
				t.Errorf("%s: prescreen introduced group %s", tg.name, d.Key)
			}
		}
		found := map[string]int{}
		for _, d := range on.Deadlocks {
			found[tg.classify(d)]++
		}
		for _, id := range tg.expected {
			if found[id] == 0 {
				t.Errorf("%s: prescreen dropped cataloged deadlock %s", tg.name, id)
			}
		}
		if on.Stats.SolverSAT != off.Stats.SolverSAT {
			t.Errorf("%s: prescreen changed SAT count: %d vs %d",
				tg.name, on.Stats.SolverSAT, off.Stats.SolverSAT)
		}
		// Every skipped group must be accounted for: the solver-call total
		// with prescreen plus the saved calls never exceeds the baseline.
		if on.Stats.GroupsSolved+on.Stats.PrescreenSaved > off.Stats.GroupsSolved {
			t.Errorf("%s: prescreen accounting broken: %d solved + %d saved > %d baseline",
				tg.name, on.Stats.GroupsSolved, on.Stats.PrescreenSaved, off.Stats.GroupsSolved)
		}
		totalSaved += on.Stats.PrescreenSaved
		totalOff += off.Stats.GroupsSolved
		totalOn += on.Stats.GroupsSolved
		totalOffCalls += off.Stats.SolverCalls
		totalOffMemo += off.Stats.MemoHits
		t.Logf("%s: %d -> %d solver calls (%d saved, %d/%d pairs pruned)",
			tg.name, off.Stats.GroupsSolved, on.Stats.GroupsSolved,
			on.Stats.PrescreenSaved, on.Stats.PrescreenPairsPruned, on.Stats.PrescreenPairs)

		// Canonicalization is a prescreen-mode feature: absent without it,
		// present (and non-trivial on this workload) with it.
		if off.CanonicalOrder != nil {
			t.Errorf("%s: baseline run carries a canonical order without the prescreen", tg.name)
		}
		co := on.CanonicalOrder
		if co == nil {
			t.Fatalf("%s: prescreen run has no canonical order", tg.name)
		}
		if len(co.Order) == 0 || co.Templates == 0 || co.Edges == 0 {
			t.Errorf("%s: degenerate canonical order: %d nodes, %d templates, %d edges",
				tg.name, len(co.Order), co.Templates, co.Edges)
		}
		if tg.name == "shopizer" {
			// The inversion behind the paper's f10/f11 fixes: Checkout
			// prices the cart's product rows ascending but commits them
			// descending, so the canonical order must flag the row pair.
			s := co.SuggestionFor("Product[i:1]", "Product[i:2]")
			if s == nil {
				t.Fatalf("shopizer: canonical order misses the f10/f11 Product row-order suggestion; got %+v",
					co.Suggestions)
			}
			if s.Violators == 0 || s.Supporters == 0 || len(s.Sites) == 0 {
				t.Errorf("shopizer: row-order suggestion lacks evidence: %+v", s)
			}
		}

		// The rendered prescreen report — findings, canonical order, and
		// ranked suggestions included — must be byte-identical at any
		// parallelism (the canonical order is computed serially in Phase
		// 0). Wall-clock timings are the one legitimately nondeterministic
		// field, so they are zeroed before rendering.
		onFlat := *on
		onFlat.Stats = on.Stats.WithoutTimings()
		serial := onFlat.Render()
		for _, workers := range []int{4, 16} {
			res := core.New(tg.scm, core.Options{StaticPrescreen: true, Parallelism: workers}).Analyze(traces)
			res.Stats = res.Stats.WithoutTimings()
			if got := res.Render(); got != serial {
				t.Errorf("%s: prescreen report differs at parallelism %d", tg.name, workers)
			}
		}
	}
	// Pin the measured Table II baseline funnel so silent solver or
	// grouping drift surfaces here, not in a user-visible report.
	if totalOff != 326 || totalOffCalls != 226 || totalOffMemo != 100 {
		t.Errorf("baseline funnel drifted: %d groups = %d solver calls + %d memo hits, want 326 = 226 + 100",
			totalOff, totalOffCalls, totalOffMemo)
	}
	// The measured workload refutes 32 of 326 groups (all on Shopizer's
	// rigid literal keys); require a conservative floor so regressions in
	// the screen's precision surface here.
	if totalSaved < 16 {
		t.Errorf("prescreen saved only %d solver calls, want >= 16 (measured 32)", totalSaved)
	}
	if totalOn >= totalOff {
		t.Errorf("prescreen did not reduce solver calls: %d -> %d", totalOff, totalOn)
	}
}
