package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestFixgainDeterminism pins the -exp fixgain determinism contract:
// same seed and config produce a byte-identical report modulo the
// wall-clock-dependent fields (Env and the measured Load sections), at
// phase-3 parallelism 1 and 4. The Static half — baseline diagnosis,
// fix plan, every individual and cumulative re-analysis, and the gates
// — must not depend on worker scheduling.
func TestFixgainDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fixgain loop twice; skip in -short")
	}
	specs := []string{"gen:7,templates=3,modules=1,tables=2,rows=4,classes=f2:1+f10:1"}
	build := func(workers int) []byte {
		out := buildFixgain(specs, 4, 50*time.Millisecond, 42, workers, true)
		// Zero the wall-clock-dependent fields; everything else is under
		// the determinism contract.
		out.Env = fixgainEnv{}
		for i := range out.Apps {
			out.Apps[i].Load = nil
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	p1 := build(1)
	p4 := build(4)
	if !bytes.Equal(p1, p4) {
		t.Errorf("fixgain static report differs between parallelism 1 and 4:\n--- p1 ---\n%s\n--- p4 ---\n%s", p1, p4)
	}
	again := build(1)
	if !bytes.Equal(p1, again) {
		t.Errorf("fixgain static report differs between two identical runs:\n--- first ---\n%s\n--- second ---\n%s", p1, again)
	}
	var rep fixgainJSON
	if err := json.Unmarshal(p1, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 1 || len(rep.Apps[0].Static.Plan) == 0 {
		t.Fatalf("determinism corpus produced no fix plan: %s", p1)
	}
	if !rep.Apps[0].Static.Gates.Pass {
		t.Errorf("determinism corpus fails its static gates: %s", p1)
	}
}
