package main

// The history experiment micro-benchmarks the continuous-diagnosis
// service over generated corpora: for each corpus size it runs trace
// ingest through the real HTTP stack (the obs debug server with the
// history routes mounted, exactly as `weseer serve` wires them) and
// records cold-ingest wall time (analysis + store), warm re-ingest
// (pure fingerprint dedup — must store zero events), store reload time
// after a close/reopen, on-disk log size, and per-endpoint query
// latencies. The sweep goes to -historyout as versioned JSON.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/history"
	"weseer/internal/obs"
	"weseer/internal/trace"
)

var (
	historySizesF   = flag.String("historysizes", "24,96,384", "template counts for the -exp history sweep")
	historySeedF    = flag.Int64("historyseed", 7, "generator seed for -exp history")
	historyQueriesF = flag.Int("historyqueries", 50, "query iterations per endpoint for the latency columns")
	historyOutF     = flag.String("historyout", "BENCH_history.json", "write the -exp history sweep as versioned JSON to this file")
)

func historySizes() []int {
	var out []int
	for _, part := range strings.Split(*historySizesF, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "weseer-bench: bad -historysizes entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func init() {
	registerExp(10, "history", "continuous-diagnosis service: ingest throughput and query latency over generated corpora", historyExp)
}

// historyPoint is one corpus size in the sweep.
type historyPoint struct {
	Templates    int     `json:"templates"`
	Spec         string  `json:"spec"`
	Traces       int     `json:"traces"`
	PayloadBytes int     `json:"payload_bytes"` // trace-batch JSON posted to /ingest
	Events       int     `json:"events"`        // distinct fingerprints stored
	Sightings    int     `json:"sightings"`
	LogBytes     int64   `json:"log_bytes"` // on-disk append-log size after both ingests
	IngestColdMS int64   `json:"ingest_cold_ms"`
	IngestWarmMS int64   `json:"ingest_warm_ms"`
	WarmDedupOK  bool    `json:"warm_dedup_ok"` // second ingest stored zero events
	ReloadMS     int64   `json:"reload_ms"`     // close + reopen (replay) wall time
	ReloadOK     bool    `json:"reload_ok"`     // event count unchanged by reload
	PatternsUS   float64 `json:"patterns_us"`   // mean GET /history/patterns latency
	EventsUS     float64 `json:"events_us"`     // mean GET /history/events latency
	TablesUS     float64 `json:"tables_us"`     // mean GET /history/tables?window=1h latency
}

// historyJSON is the versioned -historyout payload.
type historyJSON struct {
	Version int            `json:"version"`
	Seed    int64          `json:"seed"`
	Queries int            `json:"queries"`
	Points  []historyPoint `json:"points"`
}

func historyExp() {
	header("History service: ingest throughput and query latency (generated corpora)")
	out := historyJSON{Version: 1, Seed: *historySeedF, Queries: *historyQueriesF}

	dir, err := os.MkdirTemp("", "weseer-bench-history")
	check(err)
	defer os.RemoveAll(dir)

	fmt.Printf("%9s %7s %7s %9s %9s %9s %9s %11s %11s %11s\n",
		"templates", "traces", "events", "log-KiB", "cold-ms", "warm-ms", "reload-ms",
		"patterns-us", "events-us", "tables-us")
	for _, n := range historySizes() {
		spec := fmt.Sprintf("%d,templates=%d", *historySeedF, n)
		app := openApp("gen:" + spec)
		traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
		check(err)
		payload, err := json.Marshal(traces)
		check(err)

		storePath := filepath.Join(dir, fmt.Sprintf("history-%d.wal", n))
		st, err := history.Open(storePath)
		check(err)
		o := obs.NewObserver()
		srv := &history.Server{
			Store:   st,
			Metrics: history.RegisterMetrics(o.Metrics),
			Analyze: func(ctx context.Context, _ string, trs []*trace.Trace) ([]history.Event, error) {
				res, err := core.NewAnalyzer(app.Schema(), core.WithObserver(o)).AnalyzeContext(ctx, trs)
				if err != nil {
					return nil, err
				}
				return history.FromResult(res, app.Name(), app.Classify), nil
			},
		}
		ds, err := obs.StartDebugServer("127.0.0.1:0", o, srv.Routes()...)
		check(err)
		base := "http://" + ds.Addr()

		post := func() (history.IngestSummary, int64) {
			t0 := time.Now()
			resp, err := http.Post(base+"/ingest", obs.ContentTypeJSON, bytes.NewReader(payload))
			check(err)
			body, err := io.ReadAll(resp.Body)
			check(err)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				check(fmt.Errorf("ingest: %s: %s", resp.Status, body))
			}
			var sum history.IngestSummary
			check(json.Unmarshal(body, &sum))
			return sum, time.Since(t0).Milliseconds()
		}
		cold, coldMS := post()
		warm, warmMS := post()

		// Mean latency over -historyqueries GETs of one endpoint.
		lat := func(path string) float64 {
			iters := *historyQueriesF
			if iters <= 0 {
				iters = 1
			}
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(base + path)
				check(err)
				_, err = io.Copy(io.Discard, resp.Body)
				check(err)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					check(fmt.Errorf("GET %s: %s", path, resp.Status))
				}
			}
			return float64(time.Since(t0).Microseconds()) / float64(iters)
		}
		patternsUS := lat("/history/patterns")
		eventsUS := lat("/history/events")
		tablesUS := lat("/history/tables?window=1h")

		check(ds.Close())
		logBytes := st.Size()
		check(st.Close())

		// Reload: replaying the append log rebuilds every index.
		t0 := time.Now()
		st2, err := history.Open(storePath)
		check(err)
		reloadMS := time.Since(t0).Milliseconds()
		reloadOK := st2.Len() == cold.Events
		sightings := st2.Sightings()
		check(st2.Close())

		pt := historyPoint{
			Templates:    n,
			Spec:         spec,
			Traces:       len(traces),
			PayloadBytes: len(payload),
			Events:       cold.Events,
			Sightings:    sightings,
			LogBytes:     logBytes,
			IngestColdMS: coldMS,
			IngestWarmMS: warmMS,
			WarmDedupOK:  warm.Stored == 0 && warm.Deduped == cold.Stored,
			ReloadMS:     reloadMS,
			ReloadOK:     reloadOK,
			PatternsUS:   patternsUS,
			EventsUS:     eventsUS,
			TablesUS:     tablesUS,
		}
		fmt.Printf("%9d %7d %7d %9.1f %9d %9d %9d %11.0f %11.0f %11.0f\n",
			pt.Templates, pt.Traces, pt.Events, float64(pt.LogBytes)/1024,
			pt.IngestColdMS, pt.IngestWarmMS, pt.ReloadMS,
			pt.PatternsUS, pt.EventsUS, pt.TablesUS)
		if !pt.WarmDedupOK {
			fmt.Printf("  ERROR: warm re-ingest not idempotent (%+v after %+v) — not writing BENCH files\n", warm, cold)
			os.Exit(1)
		}
		if !pt.ReloadOK {
			fmt.Printf("  ERROR: reload changed the event count (%d != %d) — not writing BENCH files\n", st2.Len(), cold.Events)
			os.Exit(1)
		}
		out.Points = append(out.Points, pt)
	}

	if *historyOutF != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(*historyOutF, append(data, '\n'), 0o644))
		fmt.Printf("\nwrote %s (seed %d, %d point(s))\n", *historyOutF, out.Seed, len(out.Points))
	}
}
