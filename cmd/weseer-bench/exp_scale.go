package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"weseer/internal/appgen"
	"weseer/internal/apps"
	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
)

// The scale experiment sweeps synthetic corpora (internal/appgen) across
// template counts, diagnosing each at Parallelism=1 and at -parallel N.
// Every point verifies the two reports are byte-identical — the same
// determinism contract table2 enforces — before its timings are
// recorded. The sweep, with the generator seed and the full normalized
// configuration of every corpus embedded, goes to -scaleout.

var (
	scaleSizesF = flag.String("scalesizes", "96,384,1056", "template counts for the -exp scale sweep")
	scaleSeedF  = flag.Int64("scaleseed", 7, "generator seed for -exp scale")
	scaleOutF   = flag.String("scaleout", "BENCH_scale.json", "write the -exp scale sweep as versioned JSON to this file")
)

func init() {
	registerExp(8, "scale", "generated-corpus size x parallelism sweep (appgen, via the registry)", scale)
}

// scaleRun is one timed diagnosis of a generated corpus at a fixed
// worker count.
type scaleRun struct {
	WallMS      int64 `json:"wall_ms"`
	EnumMS      int64 `json:"enum_ms"`
	FineMS      int64 `json:"fine_ms"`
	SolverMS    int64 `json:"solver_ms"` // cumulative in-solver time across workers
	SolverCalls int   `json:"solver_calls"`
	MemoHits    int   `json:"memo_hits"`
}

// scalePoint is one corpus size in the sweep.
type scalePoint struct {
	Templates        int           `json:"templates"`
	Spec             string        `json:"spec"` // canonical gen spec: reproduces this corpus exactly
	Config           appgen.Config `json:"config"`
	Traces           int           `json:"traces"`
	Pairs            int           `json:"pairs"`
	PairsAfterPhase1 int           `json:"pairs_after_phase1"`
	GroupsSolved     int           `json:"groups_solved"`
	Deadlocks        int           `json:"deadlocks"`
	ClassesDiagnosed int           `json:"classes_diagnosed"`
	CollectMS        int64         `json:"collect_ms"`
	Serial           scaleRun      `json:"serial"`
	Parallel         scaleRun      `json:"parallel"`
	Speedup          float64       `json:"speedup"`
	// AmdahlBound is the speedup the serial run's phase breakdown admits
	// at the sweep's parallelism — fine-phase work (the parallel stage)
	// over total wall — independent of how many cores this machine has.
	AmdahlBound      float64 `json:"amdahl_bound"`
	ReportsIdentical bool    `json:"reports_identical"`
}

// scaleJSON is the versioned -scaleout payload. NumCPU and GOMAXPROCS
// record the machine the sweep ran on: wall-clock speedup is bounded by
// the scheduler-visible core count, so the same corpus shows parity on
// a single-core container and near-linear scaling where cores exist.
type scaleJSON struct {
	Version     int          `json:"version"`
	Seed        int64        `json:"seed"`
	Parallelism int          `json:"parallelism"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Points      []scalePoint `json:"points"`
}

func scaleSizes() []int {
	var out []int
	for _, part := range strings.Split(*scaleSizesF, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "weseer-bench: bad -scalesizes entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// renderScaleReport is the canonical per-corpus report text used for the
// serial/parallel byte-identity check: timing-free funnel, sorted class
// counts, then every deadlock's rendered form.
func renderScaleReport(app apps.App, res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "funnel: %+v\n", res.Stats.WithoutTimings())
	counts := map[string]int{}
	for _, d := range res.Deadlocks {
		counts[app.Classify(d)]++
	}
	var classes []string
	for cl := range counts {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		fmt.Fprintf(&b, "class %q: %d report(s)\n", cl, counts[cl])
	}
	for i, d := range res.Deadlocks {
		fmt.Fprintf(&b, "--- deadlock %d class=%q\n%s", i+1, app.Classify(d), d.Render())
	}
	return b.String()
}

func scale() {
	workers := *parallelF
	header(fmt.Sprintf("Scale: generated corpora, Parallelism=1 vs %d", workers))
	out := scaleJSON{Version: 1, Seed: *scaleSeedF, Parallelism: workers,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if out.GOMAXPROCS < workers {
		fmt.Printf("note: GOMAXPROCS=%d < %d workers — the timed runs share cores, so expect\n"+
			"wall-clock parity here; the byte-identity check is machine-independent\n",
			out.GOMAXPROCS, workers)
	}

	fmt.Printf("%9s %7s %9s %9s %7s %5s %10s %10s %8s\n",
		"templates", "traces", "pairs", "after-p1", "groups", "dl", "serial-ms", "par-ms", "speedup")
	for _, n := range scaleSizes() {
		spec := fmt.Sprintf("%d,templates=%d", *scaleSeedF, n)
		app := openApp("gen:" + spec)
		cfg := app.(interface{ Config() appgen.Config }).Config()

		start := time.Now()
		traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
		check(err)
		collectMS := time.Since(start).Milliseconds()

		run := func(w int) (scaleRun, *core.Result, string) {
			t0 := time.Now()
			res, err := core.NewAnalyzer(app.Schema(), core.WithParallelism(w)).
				AnalyzeContext(context.Background(), traces)
			check(err)
			r := scaleRun{
				WallMS:      time.Since(t0).Milliseconds(),
				EnumMS:      res.Stats.EnumTime.Milliseconds(),
				FineMS:      res.Stats.FineTime.Milliseconds(),
				SolverMS:    res.Stats.SolverTime.Milliseconds(),
				SolverCalls: res.Stats.SolverCalls,
				MemoHits:    res.Stats.MemoHits,
			}
			return r, res, renderScaleReport(app, res)
		}
		// Untimed warmup: Canon's process-wide caches (local keys, the
		// intern table) persist across runs, so whichever timed run goes
		// first would otherwise pay the cold-cache cost alone.
		run(workers)
		serial, res, serialReport := run(1)
		par, pres, parReport := run(workers)

		classes := map[string]bool{}
		for _, d := range res.Deadlocks {
			if cl := app.Classify(d); cl != "" {
				classes[cl] = true
			}
		}
		pt := scalePoint{
			Templates:        cfg.Templates,
			Spec:             cfg.Spec(),
			Config:           cfg,
			Traces:           len(traces),
			Pairs:            res.Stats.Pairs,
			PairsAfterPhase1: res.Stats.PairsAfterPhase1,
			GroupsSolved:     res.Stats.GroupsSolved,
			Deadlocks:        len(res.Deadlocks),
			ClassesDiagnosed: len(classes),
			CollectMS:        collectMS,
			Serial:           serial,
			Parallel:         par,
			ReportsIdentical: serialReport == parReport,
		}
		if par.WallMS > 0 {
			pt.Speedup = float64(serial.WallMS) / float64(par.WallMS)
		}
		if serial.WallMS > 0 {
			p := float64(serial.FineMS) / float64(serial.WallMS)
			pt.AmdahlBound = 1 / ((1 - p) + p/float64(workers))
		}
		fmt.Printf("%9d %7d %9d %9d %7d %5d %10d %10d %7.2fx\n",
			pt.Templates, pt.Traces, pt.Pairs, pt.PairsAfterPhase1, pt.GroupsSolved,
			pt.Deadlocks, serial.WallMS, par.WallMS, pt.Speedup)
		if !pt.ReportsIdentical {
			fmt.Println("  ERROR: parallel report differs from serial — determinism bug; not writing BENCH files")
			os.Exit(1)
		}
		if pres.Stats.GroupsSolved != res.Stats.GroupsSolved {
			fmt.Println("  ERROR: parallel funnel differs from serial — determinism bug; not writing BENCH files")
			os.Exit(1)
		}
		out.Points = append(out.Points, pt)
	}

	if *scaleOutF != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(*scaleOutF, append(data, '\n'), 0o644))
		fmt.Printf("\nwrote %s (seed %d, %d point(s))\n", *scaleOutF, out.Seed, len(out.Points))
	}
}
