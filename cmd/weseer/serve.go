package main

// The continuous-diagnosis service: `weseer serve` runs a long-lived
// daemon that ingests trace batches (or pre-analyzed reports) over
// HTTP, re-analyzes them through the same three-phase pipeline the
// one-shot commands use, and persists every diagnosed deadlock into an
// append-only history store keyed by the stable core fingerprint. The
// /history/* endpoints answer trend queries across restarts; /metrics
// carries the pipeline funnel and the ingest counters in one registry.
// `weseer ingest` and `weseer history` are thin HTTP clients for the
// daemon, so scripts need no curl.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"weseer/internal/core"
	"weseer/internal/history"
	"weseer/internal/obs"
	"weseer/internal/trace"
)

// cmdServe starts the diagnosis daemon. The first stdout line is the
// service base URL (so scripts can bind port 0 and discover the port);
// the process then serves until SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	store := fs.String("store", "weseer-history.wal", "history store path (append-only log, created if missing)")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port; the bound URL is printed on stdout)")
	defaultApp := fs.String("app", "broadleaf", "application assumed when an ingest request names none (?app=)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-ingest analysis wall-time bound (0 = none)")
	coarse := fs.Bool("coarse", false, "coarse baseline analysis for ingested traces (no SMT)")
	prescreen := fs.Bool("prescreen", false, "enable the Phase-0 static prescreen for ingested traces")
	enumIndex := fs.Bool("enum-index", true, "use the indexed, parallel phase-1/2 enumeration")
	parallel := fs.Int("parallel", 0, "phase-3 worker count (0 = GOMAXPROCS)")
	fs.Parse(args)

	st, err := history.Open(*store)
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	defer st.Close()

	// One observer for the daemon's lifetime: the funnel counters
	// accumulate across ingests, next to the history instruments.
	o := obs.NewObserver()
	srv := newHistoryServer(st, o, serveConfig{
		defaultApp: *defaultApp,
		timeout:    *timeout,
		coarse:     *coarse,
		prescreen:  *prescreen,
		enumIndex:  *enumIndex,
		parallel:   *parallel,
	})
	ds, err := obs.StartDebugServer(*addr, o, srv.Routes()...)
	if err != nil {
		return err
	}
	defer ds.Close()

	fmt.Printf("http://%s\n", ds.Addr())
	fmt.Fprintf(os.Stderr, "weseer serve: %d event(s) in %s; POST /ingest, GET /history/{events,patterns,tables}, /metrics\n",
		st.Len(), *store)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "weseer serve: shutting down")
	return nil
}

// serveConfig is the analysis configuration one daemon applies to
// every ingested trace batch.
type serveConfig struct {
	defaultApp string
	timeout    time.Duration
	coarse     bool
	prescreen  bool
	enumIndex  bool
	parallel   int
}

// newHistoryServer wires the history store's HTTP surface over the
// real diagnosis pipeline: each trace batch is resolved through the
// app registry and re-analyzed with AnalyzeContext, and the diagnosed
// deadlocks become history events classified by the app's catalog.
func newHistoryServer(st *history.Store, o *obs.Observer, cfg serveConfig) *history.Server {
	return &history.Server{
		Store:   st,
		Metrics: history.RegisterMetrics(o.Metrics),
		Timeout: cfg.timeout,
		Analyze: func(ctx context.Context, appName string, traces []*trace.Trace) ([]history.Event, error) {
			if appName == "" {
				appName = cfg.defaultApp
			}
			app, err := makeApp(appName, false, nil)
			if err != nil {
				return nil, err
			}
			opts := analysisOptions(cfg.coarse, cfg.prescreen, cfg.enumIndex, cfg.parallel)
			opts = append(opts, core.WithObserver(o))
			res, err := core.NewAnalyzer(app.schema, opts...).AnalyzeContext(ctx, traces)
			if err != nil {
				return nil, err
			}
			return history.FromResult(res, appName, app.classify), nil
		},
	}
}

// serviceURL normalizes an -addr argument ("127.0.0.1:7777",
// "http://127.0.0.1:7777", or a file containing either via "@file")
// into a base URL.
func serviceURL(addr string) (string, error) {
	if strings.HasPrefix(addr, "@") {
		data, err := os.ReadFile(addr[1:])
		if err != nil {
			return "", err
		}
		addr = strings.TrimSpace(strings.SplitN(string(data), "\n", 2)[0])
	}
	if addr == "" {
		return "", fmt.Errorf("no service address (use -addr HOST:PORT or -addr @file)")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/"), nil
}

// cmdIngest posts a trace file (or report/event JSON) to a running
// daemon and prints the ingest summary.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	addr := fs.String("addr", "", "service address (HOST:PORT, URL, or @file with the daemon's first stdout line)")
	in := fs.String("i", "traces.json", "input file (collect traces, analyze -json report, or history events)")
	appName := fs.String("app", "", "application the payload came from (daemon default when empty)")
	format := fs.String("format", "traces", "payload format: traces|report|events")
	fs.Parse(args)

	base, err := serviceURL(*addr)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	q := url.Values{}
	q.Set("format", *format)
	if *appName != "" {
		q.Set("app", *appName)
	}
	resp, err := http.Post(base+"/ingest?"+q.Encode(), obs.ContentTypeJSON, bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest failed (%s): %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var sum history.IngestSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		return fmt.Errorf("decode summary: %w", err)
	}
	fmt.Printf("ingested %d deadlock(s): %d stored, %d deduplicated; store holds %d event(s)\n",
		sum.Received, sum.Stored, sum.Deduped, sum.Events)
	return nil
}

// cmdHistory queries a running daemon: `weseer history [-addr A]
// patterns|events|tables [flags]` fetches the matching /history/*
// endpoint and prints the response.
func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	addr := fs.String("addr", "", "service address (HOST:PORT, URL, or @file with the daemon's first stdout line)")
	format := fs.String("format", "text", "output format: text|json")
	window := fs.Duration("window", 0, "restrict to events last seen within this trailing window (0 = all)")
	table := fs.String("table", "", "events: filter by table")
	class := fs.String("class", "", "events: filter by anti-pattern class")
	api := fs.String("api", "", "events: filter by API")
	limit := fs.Int("limit", 0, "events: cap the result count (0 = all)")
	// The query kind may sit anywhere among the flags (`weseer history
	// events -class d3`, `... -addr A events -format json`): stdlib
	// flag parsing stops at the first positional argument, so re-parse
	// past each one instead of silently ignoring what follows it.
	what := "patterns"
	fs.Parse(args)
	for fs.NArg() > 0 {
		what = fs.Arg(0)
		rest := append([]string(nil), fs.Args()[1:]...)
		fs.Parse(rest)
	}
	base, err := serviceURL(*addr)
	if err != nil {
		return err
	}
	q := url.Values{}
	q.Set("format", *format)
	if *window > 0 {
		q.Set("window", window.String())
	}
	switch what {
	case "patterns", "tables":
	case "events":
		for k, v := range map[string]string{"table": *table, "class": *class, "api": *api} {
			if v != "" {
				q.Set(k, v)
			}
		}
		if *limit > 0 {
			q.Set("limit", fmt.Sprint(*limit))
		}
	default:
		return fmt.Errorf("unknown query %q (patterns|events|tables)", what)
	}
	resp, err := http.Get(base + "/history/" + what + "?" + q.Encode())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query failed (%s): %s", resp.Status, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}
