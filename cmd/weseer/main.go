// Command weseer runs WeSEER's deadlock diagnosis pipeline over the
// bundled model applications: it collects transaction traces by running
// the apps' API unit tests under concolic execution, analyzes them with
// the three-phase diagnosis, and prints the deadlock report.
//
// Usage:
//
//	weseer run     -app NAME [-fixed] [-apply f2,f5] [-fixplan] [-coarse] [-prescreen] [-enum-index=false] [-plans] [-parallel N] [-timeout D] [-json] [-reproduce] [-v] [observability flags]
//	weseer collect -app NAME [-fixed] [-apply f2,f5] [-no-prune] -o traces.json
//	weseer analyze -app NAME -i traces.json [-fixplan] [-coarse] [-prescreen] [-enum-index=false] [-parallel N] [-timeout D] [-json] [observability flags]
//	weseer vet     [-app NAME|none] [-json] [-fail-on info|warn|error] [-canonical-order] [dir ...]
//	weseer serve   -store FILE [-addr HOST:PORT] [-app NAME] [-timeout D] [analysis flags]
//	weseer ingest  -addr HOST:PORT|@file -i traces.json [-app NAME] [-format traces|report|events]
//	weseer history -addr HOST:PORT|@file [patterns|events|tables] [-window D] [-format text|json]
//
// NAME is resolved through the application registry (internal/apps):
// the bundled model apps ("broadleaf", "shopizer") and the synthetic
// corpus generator ("gen:<seed>[,templates=N,...]" — see internal/appgen
// for the knobs). `weseer run` with no -app defaults to broadleaf.
//
// Observability flags ("run" and "analyze"): -debug-addr ADDR serves
// /metrics (Prometheus text), /progress (phase, chains done/total,
// ETA), and /debug/pprof/* live during the run; -trace-out FILE writes
// a Chrome trace_event JSON (open in chrome://tracing or Perfetto);
// -events-out FILE writes the spans as flat JSONL; -metrics-out FILE
// writes the final metrics in Prometheus text format. Telemetry is
// observational only — the report is identical with or without it.
//
// "run" pipes collection into analysis; "collect"/"analyze" split the
// stages through a JSON trace file (Fig. 2's trace hand-off). -plans
// restricts lock modeling to recorded execution plans and -reproduce
// replays every report against a live database — the paper's two
// Sec. V-D future-work items. -prescreen enables the Phase-0 static
// screen that discards trivially-UNSAT candidates before the solver.
// -enum-index=false falls back to the serial quadratic phase-1/2 pair
// loop instead of the indexed, parallel enumeration (ablation; the
// report is byte-identical either way).
//
// -fixed applies every cataloged fix to the app before collection;
// -apply applies a chosen subset by name (f1..f11 for the model apps,
// planted class names for gen corpora). -fixplan appends the ranked
// fix plan (internal/fixapply) to the text report: which fixes to
// apply, in what order, and which deadlock fingerprints each targets
// — the input to the weseer-bench fixgain verification loop.
//
// -parallel sets the phase-3 worker count (0 = GOMAXPROCS); the report
// is identical at any setting. -timeout bounds the analysis wall time
// (e.g. 30s), and ctrl-C cancels it; either way the partial report
// gathered so far is printed. -json emits the machine-readable report
// (funnel stats including solver calls and memo hits, plus one entry
// per deadlock) instead of text.
//
// "vet" runs the static analyzers alone — no trace collection, no
// solver: the template-level deadlock pre-screen and the Go-source
// ORM-misuse lint over the given directories (default: the app's
// source directory). -canonical-order additionally merges every vetted
// directory's templates into one lock-order graph and reports the
// canonical global acquisition order plus ranked feedback-edge reorder
// suggestions (the paper's f9–f11-style fixes). Exit status: 0 clean,
// 1 findings at or above -fail-on, 2 usage error.
//
// "serve" runs the continuous-diagnosis daemon: ingested trace batches
// are re-analyzed through the same pipeline and every diagnosed
// deadlock is persisted — keyed by its stable fingerprint — into an
// append-only history store that survives restarts, with per-table,
// per-class, and per-API-pair rollups maintained incrementally.
// Re-ingesting a corpus is idempotent: known fingerprints only bump
// sighting counts. The daemon prints its base URL as the first stdout
// line (bind -addr with port 0 to pick a free port) and serves the
// obs debug endpoints alongside POST /ingest and the /history/*
// queries. "ingest" and "history" are the matching HTTP clients;
// their -addr accepts HOST:PORT, a URL, or @file pointing at a file
// whose first line is the daemon's printed URL.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"weseer/internal/apps"
	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/fixapply"
	"weseer/internal/minidb"
	"weseer/internal/obs"
	"weseer/internal/replay"
	"weseer/internal/schema"
	"weseer/internal/staticlint"
	"weseer/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "collect":
		err = cmdCollect(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "vet":
		err = cmdVet(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "history":
		err = cmdHistory(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "weseer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  weseer run     -app NAME [-fixed] [-apply f2,f5] [-fixplan] [-coarse] [-prescreen] [-enum-index=false] [-plans] [-parallel N] [-timeout D] [-json] [-reproduce] [-v] [obs flags]
  weseer collect -app NAME [-fixed] [-apply f2,f5] [-no-prune] -o traces.json
  weseer analyze -app NAME -i traces.json [-fixplan] [-coarse] [-prescreen] [-enum-index=false] [-parallel N] [-timeout D] [-json] [obs flags]
  weseer vet     [-app NAME|none] [-json] [-fail-on info|warn|error] [-canonical-order] [dir ...]
  weseer serve   -store FILE [-addr HOST:PORT] [-app NAME] [-timeout D] [analysis flags]
  weseer ingest  -addr HOST:PORT|@file -i traces.json [-app NAME] [-format traces|report|events]
  weseer history -addr HOST:PORT|@file [patterns|events|tables] [-window D] [-format text|json]

registered applications (-app):
`+apps.Usage("  ")+`
observability flags (run/analyze): -debug-addr :6060  -trace-out run.trace.json
  -events-out run.events.jsonl  -metrics-out run.metrics.prom
`)
}

// obsFlags are the shared observability flags of "run" and "analyze".
type obsFlags struct {
	debugAddr  *string
	traceOut   *string
	eventsOut  *string
	metricsOut *string
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		debugAddr:  fs.String("debug-addr", "", "serve /metrics, /progress, and /debug/pprof on this address during the run (e.g. :6060)"),
		traceOut:   fs.String("trace-out", "", "write a Chrome trace_event JSON span file (open in chrome://tracing or Perfetto)"),
		eventsOut:  fs.String("events-out", "", "write the spans as a flat JSONL event log"),
		metricsOut: fs.String("metrics-out", "", "write the final metrics in Prometheus text format"),
	}
}

// setup creates an observer (nil when no observability flag is set) and
// returns a finish func that writes the requested export files and
// stops the debug server. The finish func is safe to call exactly once.
func (f *obsFlags) setup() (*obs.Observer, func() error, error) {
	noop := func() error { return nil }
	if *f.debugAddr == "" && *f.traceOut == "" && *f.eventsOut == "" && *f.metricsOut == "" {
		return nil, noop, nil
	}
	o := obs.NewObserver()
	var ds *obs.DebugServer
	if *f.debugAddr != "" {
		var err error
		ds, err = obs.StartDebugServer(*f.debugAddr, o)
		if err != nil {
			return nil, noop, err
		}
		fmt.Fprintf(os.Stderr, "weseer: debug endpoint on http://%s (/metrics /progress /debug/pprof)\n", ds.Addr())
	}
	finish := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if *f.traceOut != "" {
			keep(writeFileWith(*f.traceOut, o.Tracer.WriteChromeTrace))
		}
		if *f.eventsOut != "" {
			keep(writeFileWith(*f.eventsOut, o.Tracer.WriteJSONL))
		}
		if *f.metricsOut != "" {
			keep(writeFileWith(*f.metricsOut, o.Metrics.WritePrometheus))
		}
		keep(ds.Close())
		return firstErr
	}
	return o, finish, nil
}

func writeFileWith(path string, write func(io.Writer) error) error {
	fl, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(fl); err != nil {
		fl.Close()
		return err
	}
	return fl.Close()
}

// appUnit bundles what the CLI needs from an application.
//
// Deprecated: appUnit/makeApp are thin shims over the apps registry,
// kept so the command's internal call sites stay shaped as before; new
// code should call apps.Open directly.
type appUnit struct {
	app      apps.App
	schema   *schema.Schema
	db       *minidb.DB
	tests    []appkit.UnitTest
	classify func(*core.Deadlock) string
	srcDir   string // "" when the app has no on-disk source (generated)
}

func makeApp(name string, fixed bool, apply []string) (*appUnit, error) {
	app, err := apps.Open(name, apps.Options{Fixed: fixed, Apply: apply})
	if err != nil {
		return nil, err
	}
	u := &appUnit{
		app:      app,
		schema:   app.Schema(),
		db:       app.DB(),
		tests:    app.UnitTests(),
		classify: app.Classify,
	}
	if s, ok := app.(apps.Sourcer); ok {
		u.srcDir = s.SourceDir()
	}
	return u, nil
}

// splitApply parses the -apply flag ("" = none, "f2,f9" = those fixes).
func splitApply(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func cmdRun(args []string) (err error) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	appName := fs.String("app", "broadleaf", "application to diagnose")
	fixed := fs.Bool("fixed", false, "apply the Table II fixes before collecting")
	apply := fs.String("apply", "", "comma-separated fix names to apply before collecting (e.g. f2,f5)")
	fixplan := fs.Bool("fixplan", false, "print the ranked fix plan (internal/fixapply) after the report")
	coarse := fs.Bool("coarse", false, "STEPDAD/REDACT-style coarse baseline (no SMT)")
	prescreen := fs.Bool("prescreen", false, "enable the Phase-0 static prescreen (weseer vet analysis)")
	enumIndex := fs.Bool("enum-index", true, "use the indexed, parallel phase-1/2 enumeration (=false: serial quadratic pair loop)")
	plans := fs.Bool("plans", false, "restrict lock modeling to recorded execution plans (Sec. V-D)")
	parallel := fs.Int("parallel", 0, "phase-3 worker count (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "bound the analysis wall time (0 = none)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable report instead of text")
	reproduce := fs.Bool("reproduce", false, "replay every report against a live database (Sec. V-D)")
	verbose := fs.Bool("v", false, "print every deadlock report")
	of := registerObsFlags(fs)
	fs.Parse(args)

	app, err := makeApp(*appName, *fixed, splitApply(*apply))
	if err != nil {
		return err
	}
	o, obsDone, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if e := obsDone(); e != nil && err == nil {
			err = e
		}
	}()
	var collectOpts []concolic.Option
	if o != nil {
		collectOpts = append(collectOpts, concolic.WithObserver(o))
	}
	traces, err := appkit.Collect(app.tests, concolic.ModeConcolic, collectOpts...)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("collected %d traces:\n", len(traces))
		for _, tr := range traces {
			fmt.Printf("  %-10s %2d txns, %2d statements, %3d path conditions\n",
				tr.API, len(tr.Txns), tr.Stats.Statements, tr.Stats.PathConds)
		}
	}
	opts := analysisOptions(*coarse, *prescreen, *enumIndex, *parallel)
	if *plans {
		opts = append(opts, core.WithConcretePlans())
	}
	if o != nil {
		opts = append(opts, core.WithObserver(o))
	}
	res, err := analyzeCtx(app, traces, *timeout, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(res, app.classify)
	}
	printReport(res, app.classify, *verbose)
	if *fixplan {
		fmt.Println()
		fmt.Print(fixapply.Render(fixapply.Plan(app.app, res)))
	}
	if *reproduce && !*coarse {
		fmt.Println("\nautomatic reproduction (replaying each cycle against a rebuilt database):")
		outcomes := replay.ReproduceReport(res, func() (*minidb.DB, []appkit.UnitTest) {
			fresh, _ := makeApp(*appName, *fixed, splitApply(*apply))
			return fresh.db, fresh.tests
		})
		counts := map[replay.Status]int{}
		for _, o := range outcomes {
			counts[o.Status]++
		}
		fmt.Printf("  %d DEADLOCKED, %d blocked, %d no-conflict, %d setup-failed (of %d reports)\n",
			counts[replay.Deadlocked], counts[replay.Blocked],
			counts[replay.NoConflict], counts[replay.SetupFailed], len(outcomes))
	}
	return nil
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	appName := fs.String("app", "broadleaf", "application to diagnose")
	fixed := fs.Bool("fixed", false, "apply the Table II fixes")
	apply := fs.String("apply", "", "comma-separated fix names to apply (e.g. f2,f5)")
	noPrune := fs.Bool("no-prune", false, "disable Sec. IV path-condition pruning")
	out := fs.String("o", "traces.json", "output file")
	fs.Parse(args)

	app, err := makeApp(*appName, *fixed, splitApply(*apply))
	if err != nil {
		return err
	}
	var opts []concolic.Option
	if *noPrune {
		opts = append(opts, concolic.WithoutPruning())
	}
	traces, err := appkit.Collect(app.tests, concolic.ModeConcolic, opts...)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(traces, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	total := 0
	for _, tr := range traces {
		total += tr.Stats.PathConds
	}
	fmt.Printf("wrote %d traces (%d path conditions) to %s\n", len(traces), total, *out)
	return nil
}

func cmdAnalyze(args []string) (err error) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	appName := fs.String("app", "broadleaf", "application the traces came from")
	in := fs.String("i", "traces.json", "input trace file")
	coarse := fs.Bool("coarse", false, "coarse baseline (no SMT)")
	prescreen := fs.Bool("prescreen", false, "enable the Phase-0 static prescreen (weseer vet analysis)")
	enumIndex := fs.Bool("enum-index", true, "use the indexed, parallel phase-1/2 enumeration (=false: serial quadratic pair loop)")
	parallel := fs.Int("parallel", 0, "phase-3 worker count (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "bound the analysis wall time (0 = none)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable report instead of text")
	fixplan := fs.Bool("fixplan", false, "print the ranked fix plan (internal/fixapply) after the report")
	verbose := fs.Bool("v", false, "print every deadlock report")
	of := registerObsFlags(fs)
	fs.Parse(args)

	app, err := makeApp(*appName, false, nil)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var traces []*trace.Trace
	if err := json.Unmarshal(data, &traces); err != nil {
		return err
	}
	o, obsDone, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if e := obsDone(); e != nil && err == nil {
			err = e
		}
	}()
	opts := analysisOptions(*coarse, *prescreen, *enumIndex, *parallel)
	if o != nil {
		opts = append(opts, core.WithObserver(o))
	}
	res, err := analyzeCtx(app, traces, *timeout, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(res, app.classify)
	}
	printReport(res, app.classify, *verbose)
	if *fixplan {
		fmt.Println()
		fmt.Print(fixapply.Render(fixapply.Plan(app.app, res)))
	}
	return nil
}

// analysisOptions translates the shared CLI flags into analyzer options.
func analysisOptions(coarse, prescreen, enumIndex bool, parallel int) []core.Option {
	var opts []core.Option
	if coarse {
		opts = append(opts, core.WithCoarseOnly())
	}
	if prescreen {
		opts = append(opts, core.WithPrescreen())
	}
	if !enumIndex {
		opts = append(opts, core.WithoutEnumIndex())
	}
	if parallel > 0 {
		opts = append(opts, core.WithParallelism(parallel))
	}
	return opts
}

// analyzeCtx runs the diagnosis under ctrl-C cancellation and an
// optional deadline. On interruption the partial report is still
// printed (after a note on stderr), since a truncated funnel is more
// useful than nothing when a run is cut short.
func analyzeCtx(app *appUnit, traces []*trace.Trace, timeout time.Duration, opts []core.Option) (*core.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := core.NewAnalyzer(app.schema, opts...).AnalyzeContext(ctx, traces)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "weseer: interrupted — printing partial report")
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "weseer: %v timeout hit — printing partial report\n", timeout)
	default:
		return nil, err
	}
	return res, nil
}

// cmdVet runs the static analyzers (internal/staticlint) over source
// directories: no unit tests, no trace collection, no solver. -app
// attaches the named application's schema so index-aware checks (gap
// escalation, buffered-update keys) can run; "none" vets schema-free.
func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	appName := fs.String("app", "none", "schema to attach (a registry name, or none)")
	jsonOut := fs.Bool("json", false, "emit the versioned JSON report instead of text")
	failOn := fs.String("fail-on", "error", "exit 1 when findings reach this severity (info|warn|error)")
	canonical := fs.Bool("canonical-order", false, "derive the cross-API canonical lock order over every vetted directory and report ranked reorder suggestions")
	callgraph := fs.Bool("callgraph", true, "whole-program analysis: type-check the directory tree and propagate transitive callee summaries (off = per-package name heuristic)")
	devirt := fs.Bool("devirt", true, "with -callgraph, devirtualize interface call sites by class-hierarchy analysis (off for ablation)")
	fs.Parse(args)
	opt := staticlint.VetOptions{CallGraph: *callgraph, Devirt: *devirt}

	threshold, err := staticlint.ParseSeverity(*failOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weseer vet:", err)
		os.Exit(2)
	}
	var scm *schema.Schema
	var defaultDir string
	if *appName != "none" {
		app, err := apps.Open(*appName, apps.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "weseer vet: %v (or \"none\")\n", err)
			os.Exit(2)
		}
		scm = app.Schema()
		if s, ok := app.(apps.Sourcer); ok {
			defaultDir = s.SourceDir()
		}
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		if defaultDir == "" {
			fmt.Fprintln(os.Stderr, "weseer vet: no directories given (and the app provides no source directory)")
			os.Exit(2)
		}
		dirs = []string{defaultDir}
	}

	var findings []staticlint.Finding
	var shapes []staticlint.TxnShape
	for _, dir := range dirs {
		fnd, err := staticlint.VetDir(dir, scm, opt)
		if err != nil {
			return err
		}
		findings = append(findings, fnd...)
		if *canonical {
			sh, err := staticlint.DirShapesOpt(dir, scm, opt)
			if err != nil {
				return err
			}
			shapes = append(shapes, sh...)
		}
	}
	staticlint.Sort(findings)
	// The canonical order merges every vetted directory's templates into
	// one graph, so cross-package (cross-app) disagreements surface too.
	var co *staticlint.CanonicalOrder
	if *canonical {
		co = staticlint.CanonicalizeShapes(shapes, scm)
	}

	if *jsonOut {
		data, err := staticlint.EncodeReport(findings, co)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		fmt.Printf("%d finding(s)\n", len(findings))
		if co != nil {
			fmt.Print(co.Render())
		}
	}
	if max, ok := staticlint.MaxSeverity(findings); ok && max >= threshold {
		os.Exit(1)
	}
	return nil
}

// jsonReport is the machine-readable analysis report (-json). Version
// bumps whenever a field changes meaning.
type jsonReport struct {
	Version int           `json:"version"`
	Stats   jsonStats     `json:"stats"`
	Reports []jsonDeadlck `json:"deadlocks"`
	// Canonical carries the cross-API lock-order canonicalization —
	// the global acquisition order and the ranked reorder suggestions —
	// when the run enabled -prescreen; absent otherwise.
	Canonical *staticlint.CanonicalOrder `json:"canonical_order,omitempty"`
}

type jsonStats struct {
	Traces           int `json:"traces"`
	Pairs            int `json:"txn_pairs"`
	PairsAfterPhase1 int `json:"pairs_after_phase1"`
	CoarseCycles     int `json:"coarse_cycles"`
	IndexProbes      int `json:"index_probes"`
	Fingerprints     int `json:"fingerprints"`
	LockFiltered     int `json:"lock_filtered"`
	PrescreenPairs   int `json:"prescreen_pairs"`
	PrescreenPruned  int `json:"prescreen_pairs_pruned"`
	PrescreenSaved   int `json:"prescreen_saved"`
	GroupsSolved     int `json:"groups_solved"`
	SolverCalls      int `json:"solver_calls"`
	MemoHits         int `json:"memo_hits"`
	SAT              int `json:"sat"`
	UNSAT            int `json:"unsat"`
	Unknown          int `json:"unknown"`

	// CDCL(T) engine counters summed over the run's actual solver calls;
	// deterministic at any parallelism.
	Decisions      int `json:"decisions"`
	Conflicts      int `json:"conflicts"`
	Propagations   int `json:"propagations"`
	LearnedClauses int `json:"learned_clauses"`
	Backjumps      int `json:"backjumps"`
	TheoryCalls    int `json:"theory_calls"`

	Parallelism  int   `json:"parallelism"`
	SolverTimeMS int64 `json:"solver_time_ms"`
	EnumTimeMS   int64 `json:"enum_time_ms"`
	FineTimeMS   int64 `json:"fine_time_ms"`
}

type jsonDeadlck struct {
	// Fingerprint is the deadlock's stable identity (core.Fingerprint):
	// the history store's dedup key, invariant across runs, parallelism,
	// and enumeration mode.
	Fingerprint string    `json:"fingerprint"`
	Catalog     string    `json:"catalog"` // Table II entry id, "" if unclassified
	APIs        [2]string `json:"apis"`
	Tables      [2]string `json:"tables"`
	Count       int       `json:"count"` // coarse cycles folded into the report
}

func statsJSON(s core.Stats) jsonStats {
	return jsonStats{
		Traces:           s.Traces,
		Pairs:            s.Pairs,
		PairsAfterPhase1: s.PairsAfterPhase1,
		CoarseCycles:     s.CoarseCycles,
		IndexProbes:      s.IndexProbes,
		Fingerprints:     s.Fingerprints,
		LockFiltered:     s.LockFiltered,
		PrescreenPairs:   s.PrescreenPairs,
		PrescreenPruned:  s.PrescreenPairsPruned,
		PrescreenSaved:   s.PrescreenSaved,
		GroupsSolved:     s.GroupsSolved,
		SolverCalls:      s.SolverCalls,
		MemoHits:         s.MemoHits,
		SAT:              s.SolverSAT,
		UNSAT:            s.SolverUNSAT,
		Unknown:          s.SolverUnknown,
		Decisions:        s.Engine.Decisions,
		Conflicts:        s.Engine.Conflicts,
		Propagations:     s.Engine.Propagations,
		LearnedClauses:   s.Engine.LearnedClauses,
		Backjumps:        s.Engine.Backjumps,
		TheoryCalls:      s.Engine.TheoryCalls,
		Parallelism:      s.Parallelism,
		SolverTimeMS:     s.SolverTime.Milliseconds(),
		EnumTimeMS:       s.EnumTime.Milliseconds(),
		FineTimeMS:       s.FineTime.Milliseconds(),
	}
}

func printJSON(res *core.Result, classify func(*core.Deadlock) string) error {
	rep := jsonReport{Version: 1, Stats: statsJSON(res.Stats), Reports: []jsonDeadlck{}, Canonical: res.CanonicalOrder}
	for _, d := range res.Deadlocks {
		rep.Reports = append(rep.Reports, jsonDeadlck{
			Fingerprint: d.Fingerprint(),
			Catalog:     classify(d),
			APIs:        d.APIs,
			Tables:      [2]string{d.Cycle.Table1, d.Cycle.Table2},
			Count:       d.Count,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func printReport(res *core.Result, classify func(*core.Deadlock) string, verbose bool) {
	fmt.Println(res.Stats.Render())
	if s := core.RenderSuggestions(res.CanonicalOrder); s != "" {
		fmt.Print(s)
	}
	counts := map[string][]*core.Deadlock{}
	for _, d := range res.Deadlocks {
		id := classify(d)
		counts[id] = append(counts[id], d)
	}
	fmt.Printf("\n%d deadlock reports, by catalog entry:\n", len(res.Deadlocks))
	known := []string{
		"d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10",
		"d11", "d12", "d13", "d14", "d15", "d16", "d17", "d18",
		"fp-checkout-applock", "extra",
	}
	// App-specific catalog ids outside the fixed Table II list (e.g. a
	// generated corpus's planted f-classes) sort after it; unclassified
	// reports come last.
	inKnown := map[string]bool{"": true}
	for _, id := range known {
		inKnown[id] = true
	}
	var extras []string
	for id := range counts {
		if !inKnown[id] {
			extras = append(extras, id)
		}
	}
	sort.Strings(extras)
	order := append(append(known, extras...), "")
	for _, id := range order {
		ds := counts[id]
		if len(ds) == 0 {
			continue
		}
		label := id
		if label == "" {
			label = "(unclassified)"
		}
		d := ds[0]
		fmt.Printf("  %-20s %3d report(s)  e.g. %s — %s on [%s, %s]\n",
			label, len(ds), d.APIs[0], d.APIs[1], d.Cycle.Table1, d.Cycle.Table2)
	}
	if verbose {
		for i, d := range res.Deadlocks {
			fmt.Printf("\n=== Deadlock %d (%s) ===\n%s", i+1, classify(d), d.Render())
		}
	}
}
