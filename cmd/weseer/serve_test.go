package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/history"
	"weseer/internal/obs"
)

// daemon is one running serve instance (store + debug server) for the
// end-to-end test; stop() simulates a shutdown, after which the store
// can be reopened as a restart.
type daemon struct {
	store *history.Store
	ds    *obs.DebugServer
	base  string
}

func startDaemon(t *testing.T, storePath string) *daemon {
	t.Helper()
	st, err := history.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	srv := newHistoryServer(st, o, serveConfig{defaultApp: "broadleaf", enumIndex: true})
	ds, err := obs.StartDebugServer("127.0.0.1:0", o, srv.Routes()...)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return &daemon{store: st, ds: ds, base: "http://" + ds.Addr()}
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// collectTraces runs the app's unit tests under concolic execution and
// returns the trace batch as the JSON `weseer collect` would write.
func collectTraces(t *testing.T, appName string) []byte {
	t.Helper()
	app, err := makeApp(appName, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := appkit.Collect(app.tests, concolic.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(traces)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func ingestBatch(t *testing.T, base, appName string, payload []byte) history.IngestSummary {
	t.Helper()
	resp, err := http.Post(base+"/ingest?app="+appName, obs.ContentTypeJSON, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: %s\n%s", appName, resp.Status, body)
	}
	var sum history.IngestSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return body
}

// TestServeRoundTripRestart is the PR's acceptance pin: ingest the
// Table II corpora into a running daemon, restart it, and the history
// must still report every catalog deadlock grouped by fingerprint with
// the same rollups; re-ingesting the same traces adds zero events.
func TestServeRoundTripRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II corpus analysis")
	}
	storePath := filepath.Join(t.TempDir(), "history.wal")
	broadleaf := collectTraces(t, "broadleaf")
	shopizer := collectTraces(t, "shopizer")

	d := startDaemon(t, storePath)
	sumB := ingestBatch(t, d.base, "broadleaf", broadleaf)
	sumS := ingestBatch(t, d.base, "shopizer", shopizer)
	if sumB.Stored == 0 || sumS.Stored == 0 {
		t.Fatalf("first ingests stored nothing: broadleaf %+v shopizer %+v", sumB, sumS)
	}
	stored := sumB.Stored + sumS.Stored

	// Re-ingesting the same traces must add zero events.
	reB := ingestBatch(t, d.base, "broadleaf", broadleaf)
	reS := ingestBatch(t, d.base, "shopizer", shopizer)
	if reB.Stored != 0 || reS.Stored != 0 {
		t.Fatalf("re-ingest stored events: broadleaf %+v shopizer %+v", reB, reS)
	}
	if reB.Deduped != sumB.Stored || reS.Deduped != sumS.Stored {
		t.Fatalf("re-ingest dedup mismatch: broadleaf %+v (stored %d), shopizer %+v (stored %d)",
			reB, sumB.Stored, reS, sumS.Stored)
	}

	patternsBefore := getBody(t, d.base+"/history/patterns")
	d.stop(t)

	// Restart: a fresh daemon over the same store file.
	d2 := startDaemon(t, storePath)
	defer d2.stop(t)
	patternsAfter := getBody(t, d2.base+"/history/patterns")
	if !bytes.Equal(patternsBefore, patternsAfter) {
		t.Fatalf("patterns changed across restart:\nbefore:\n%s\nafter:\n%s", patternsBefore, patternsAfter)
	}

	var p history.PatternSummary
	if err := json.Unmarshal(patternsAfter, &p); err != nil {
		t.Fatal(err)
	}
	if p.Events != stored {
		t.Errorf("patterns events = %d, want %d", p.Events, stored)
	}
	// Every Table II catalog entry must survive the restart.
	classes := map[string]history.Rollup{}
	for _, r := range p.Classes {
		classes[r.Key] = r
	}
	for _, id := range []string{
		"d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10",
		"d11", "d12", "d13", "d14", "d15", "d16", "d17", "d18",
	} {
		if r, ok := classes[id]; !ok || r.Events == 0 {
			t.Errorf("catalog entry %s missing from restarted history (%+v)", id, r)
		}
	}
	// Per-table rollups: sightings doubled by the re-ingest, and the
	// catalog's central tables are present.
	tables := map[string]history.Rollup{}
	for _, r := range p.Tables {
		tables[r.Key] = r
		if r.Seen != 2*r.Events {
			t.Errorf("table %s: seen %d, want 2x events %d", r.Key, r.Seen, r.Events)
		}
	}
	for _, tbl := range []string{"Orders", "OrderItem", "Customer"} {
		if _, ok := tables[tbl]; !ok {
			t.Errorf("table %s missing from rollups", tbl)
		}
	}

	// And the restarted daemon still dedups the same corpus.
	re := ingestBatch(t, d2.base, "broadleaf", broadleaf)
	if re.Stored != 0 || re.Deduped != sumB.Stored {
		t.Fatalf("post-restart re-ingest: %+v", re)
	}
}
