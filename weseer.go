// Package weseer is a deadlock diagnosis toolkit for ORM-based database
// applications, reproducing WeSEER from "Database Deadlock Diagnosis for
// Large-Scale ORM-Based Web Applications" (ICDE 2023).
//
// WeSEER extracts an application's transactions — SQL statement templates
// with symbolic parameters, symbolic result aliases, and the path
// conditions enabling them — by running API unit tests under concolic
// execution, then diagnoses potential deadlocks with a three-phase
// analysis that ends in fine-grained row/range-lock modeling discharged
// by an SMT solver. Reports include the hold-and-wait cycle, the
// triggering code location of every involved statement (ORM write-behind
// aware), and a satisfying assignment of API inputs and database state
// that reproduces the deadlock.
//
// The package re-exports the toolkit's layers:
//
//   - Schema/database: NewSchema, OpenDB — an embedded lock-based SQL
//     engine with InnoDB-style record/gap/next-key locking and
//     detect-and-recover deadlock handling.
//   - ORM: NewMapping, NewSession — a Hibernate-style mapper with read
//     caching, write-behind flushing, and lazy collections.
//   - Concolic engine: NewEngine, Engine.MakeSymbolic, Engine.If.
//   - Collection: UnitTest, Collect.
//   - Analysis: AnalyzeContext — the three-phase deadlock diagnosis,
//     with context cancellation, parallel solving, and functional
//     options (WithParallelism, WithPrescreen, WithSolverLimits, ...).
//   - Observability: NewObserver, WithObserver, StartDebugServer —
//     spans, metrics, and live progress for a diagnosis run, all
//     observational (reports stay byte-identical with an observer
//     attached).
//
// See examples/quickstart for an end-to-end walkthrough.
package weseer

import (
	"context"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/obs"
	"weseer/internal/orm"
	"weseer/internal/schema"
	"weseer/internal/solver"
	"weseer/internal/trace"
)

// Schema layer.
type (
	// Schema describes tables, columns, and indexes.
	Schema = schema.Schema
	// TableBuilder declares one table fluently.
	TableBuilder = schema.TableBuilder
	// ColType is a column data type.
	ColType = schema.ColType
)

// Column types.
const (
	Int     = schema.Int
	Decimal = schema.Decimal
	Varchar = schema.Varchar
)

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// Database layer.
type (
	// DB is the embedded lock-based SQL engine standing in for MySQL.
	DB = minidb.DB
	// DBConfig tunes the engine.
	DBConfig = minidb.Config
	// DBStats are cumulative engine counters.
	DBStats = minidb.Stats
)

// OpenDB creates a database for the schema.
func OpenDB(s *Schema, cfg DBConfig) *DB { return minidb.Open(s, cfg) }

// Concolic layer.
type (
	// Engine is a concolic execution session.
	Engine = concolic.Engine
	// Value is a concolic value: concrete plus optional symbolic part.
	Value = concolic.Value
	// Conn is the intercepted database connection.
	Conn = concolic.Conn
	// Mode selects how much the engine tracks.
	Mode = concolic.Mode
)

// Engine modes.
const (
	ModeOff       = concolic.ModeOff
	ModeInterpret = concolic.ModeInterpret
	ModeConcolic  = concolic.ModeConcolic
)

// NewEngine returns a concolic engine in the given mode.
func NewEngine(mode Mode) *Engine { return concolic.New(mode) }

// NewConn wraps a database for one engine session.
func NewConn(e *Engine, db *DB) *Conn { return concolic.NewConn(e, db) }

// Concrete value constructors.
var (
	IntValue  = concolic.Int
	StrValue  = concolic.Str
	RealValue = concolic.Real
	BoolValue = concolic.Bool
)

// ORM layer.
type (
	// Mapping holds per-table ORM metadata.
	Mapping = orm.Mapping
	// Collection declares a lazily-loaded relation.
	Collection = orm.Collection
	// Session is the persistence context.
	Session = orm.Session
	// Entity is a persistent object.
	Entity = orm.Entity
)

// NewMapping creates ORM metadata over a schema.
func NewMapping(s *Schema) *Mapping { return orm.NewMapping(s) }

// NewSession opens a persistence context over a connection.
func NewSession(m *Mapping, c *Conn) *Session { return orm.NewSession(m, c) }

// Collection layer.
type (
	// UnitTest is one API unit test used for trace collection.
	UnitTest = appkit.UnitTest
	// Trace is one collected API execution.
	Trace = trace.Trace
)

// Collect runs unit tests sequentially under one engine mode and returns
// their traces.
func Collect(tests []UnitTest, mode Mode) ([]*Trace, error) {
	return appkit.Collect(tests, mode)
}

// Analysis layer.
type (
	// Analyzer runs deadlock diagnosis over collected traces.
	Analyzer = core.Analyzer
	// AnalyzerOption is a functional analysis option for NewAnalyzer.
	AnalyzerOption = core.Option
	// AnalysisResult is the diagnosis outcome.
	AnalysisResult = core.Result
	// AnalysisStats is the per-phase diagnosis funnel.
	AnalysisStats = core.Stats
	// Deadlock is one reported deadlock.
	Deadlock = core.Deadlock
	// SolverLimits bound each satisfiability check.
	SolverLimits = solver.Limits

	// AnalyzerOptions configure an analysis run.
	//
	// Deprecated: use NewAnalyzer with functional options.
	AnalyzerOptions = core.Options
)

// Functional analysis options, applied by NewAnalyzer.
var (
	// WithParallelism sets the number of concurrent phase-3 workers
	// (n <= 0 selects GOMAXPROCS). Reports are deterministic at any
	// setting.
	WithParallelism = core.WithParallelism
	// WithPrescreen enables the Phase-0 static prescreen.
	WithPrescreen = core.WithPrescreen
	// WithSolverLimits bounds each satisfiability check.
	WithSolverLimits = core.WithSolverLimits
	// WithCoarseOnly stops after phase 2 (STEPDAD/REDACT baseline).
	WithCoarseOnly = core.WithCoarseOnly
	// WithConcretePlans restricts lock modeling to recorded plans.
	WithConcretePlans = core.WithConcretePlans
	// WithMaxCyclesPerPair caps coarse-cycle enumeration per pair.
	WithMaxCyclesPerPair = core.WithMaxCyclesPerPair
	// WithoutPhase1 disables the transaction-level filter (ablation).
	WithoutPhase1 = core.WithoutPhase1
	// WithoutLockFilter disables the lock-collision test (ablation).
	WithoutLockFilter = core.WithoutLockFilter
	// WithoutMemo disables solver-call memoization (ablation).
	WithoutMemo = core.WithoutMemo
	// WithoutEnumIndex disables the indexed, parallel candidate
	// enumeration (ablation): phases 1–2 fall back to the serial
	// quadratic pair loop. Reports are byte-identical either way.
	WithoutEnumIndex = core.WithoutEnumIndex
	// WithObserver attaches an observability sink to the analysis.
	WithObserver = core.WithObserver
)

// Observability layer.
type (
	// Observer bundles a run's telemetry sinks: span tracer, metrics
	// registry, and live progress.
	Observer = obs.Observer
	// DebugServer serves an observer's live state over HTTP (/metrics,
	// /progress, /debug/pprof).
	DebugServer = obs.DebugServer
)

// NewObserver returns an observer with all sinks wired. Attach it to an
// analysis with WithObserver (and to an Engine with
// concolic.WithObserver for extraction spans); telemetry is
// observational only.
func NewObserver() *Observer { return obs.NewObserver() }

// StartDebugServer serves o's metrics, progress, and pprof on addr
// until Close.
func StartDebugServer(addr string, o *Observer) (*DebugServer, error) {
	return obs.StartDebugServer(addr, o)
}

// NewAnalyzer returns a deadlock analyzer for a schema, configured by
// functional options.
func NewAnalyzer(s *Schema, opts ...AnalyzerOption) *Analyzer {
	return core.NewAnalyzer(s, opts...)
}

// AnalyzeContext runs WeSEER's three-phase deadlock diagnosis over the
// traces, honoring ctx for cancellation. Equivalent to
// NewAnalyzer(s, opts...).AnalyzeContext(ctx, traces).
func AnalyzeContext(ctx context.Context, s *Schema, traces []*Trace, opts ...AnalyzerOption) (*AnalysisResult, error) {
	return core.NewAnalyzer(s, opts...).AnalyzeContext(ctx, traces)
}

// Analyze runs WeSEER's three-phase deadlock diagnosis over the traces.
//
// Deprecated: use AnalyzeContext with functional options.
func Analyze(s *Schema, traces []*Trace, opts AnalyzerOptions) *AnalysisResult {
	return core.New(s, opts).Analyze(traces)
}
