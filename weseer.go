// Package weseer is a deadlock diagnosis toolkit for ORM-based database
// applications, reproducing WeSEER from "Database Deadlock Diagnosis for
// Large-Scale ORM-Based Web Applications" (ICDE 2023).
//
// WeSEER extracts an application's transactions — SQL statement templates
// with symbolic parameters, symbolic result aliases, and the path
// conditions enabling them — by running API unit tests under concolic
// execution, then diagnoses potential deadlocks with a three-phase
// analysis that ends in fine-grained row/range-lock modeling discharged
// by an SMT solver. Reports include the hold-and-wait cycle, the
// triggering code location of every involved statement (ORM write-behind
// aware), and a satisfying assignment of API inputs and database state
// that reproduces the deadlock.
//
// The package re-exports the toolkit's layers:
//
//   - Schema/database: NewSchema, OpenDB — an embedded lock-based SQL
//     engine with InnoDB-style record/gap/next-key locking and
//     detect-and-recover deadlock handling.
//   - ORM: NewMapping, NewSession — a Hibernate-style mapper with read
//     caching, write-behind flushing, and lazy collections.
//   - Concolic engine: NewEngine, Engine.MakeSymbolic, Engine.If.
//   - Collection: UnitTest, Collect.
//   - Analysis: Analyze — the three-phase deadlock diagnosis.
//
// See examples/quickstart for an end-to-end walkthrough.
package weseer

import (
	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/orm"
	"weseer/internal/schema"
	"weseer/internal/solver"
	"weseer/internal/trace"
)

// Schema layer.
type (
	// Schema describes tables, columns, and indexes.
	Schema = schema.Schema
	// TableBuilder declares one table fluently.
	TableBuilder = schema.TableBuilder
	// ColType is a column data type.
	ColType = schema.ColType
)

// Column types.
const (
	Int     = schema.Int
	Decimal = schema.Decimal
	Varchar = schema.Varchar
)

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// Database layer.
type (
	// DB is the embedded lock-based SQL engine standing in for MySQL.
	DB = minidb.DB
	// DBConfig tunes the engine.
	DBConfig = minidb.Config
	// DBStats are cumulative engine counters.
	DBStats = minidb.Stats
)

// OpenDB creates a database for the schema.
func OpenDB(s *Schema, cfg DBConfig) *DB { return minidb.Open(s, cfg) }

// Concolic layer.
type (
	// Engine is a concolic execution session.
	Engine = concolic.Engine
	// Value is a concolic value: concrete plus optional symbolic part.
	Value = concolic.Value
	// Conn is the intercepted database connection.
	Conn = concolic.Conn
	// Mode selects how much the engine tracks.
	Mode = concolic.Mode
)

// Engine modes.
const (
	ModeOff       = concolic.ModeOff
	ModeInterpret = concolic.ModeInterpret
	ModeConcolic  = concolic.ModeConcolic
)

// NewEngine returns a concolic engine in the given mode.
func NewEngine(mode Mode) *Engine { return concolic.New(mode) }

// NewConn wraps a database for one engine session.
func NewConn(e *Engine, db *DB) *Conn { return concolic.NewConn(e, db) }

// Concrete value constructors.
var (
	IntValue  = concolic.Int
	StrValue  = concolic.Str
	RealValue = concolic.Real
	BoolValue = concolic.Bool
)

// ORM layer.
type (
	// Mapping holds per-table ORM metadata.
	Mapping = orm.Mapping
	// Collection declares a lazily-loaded relation.
	Collection = orm.Collection
	// Session is the persistence context.
	Session = orm.Session
	// Entity is a persistent object.
	Entity = orm.Entity
)

// NewMapping creates ORM metadata over a schema.
func NewMapping(s *Schema) *Mapping { return orm.NewMapping(s) }

// NewSession opens a persistence context over a connection.
func NewSession(m *Mapping, c *Conn) *Session { return orm.NewSession(m, c) }

// Collection layer.
type (
	// UnitTest is one API unit test used for trace collection.
	UnitTest = appkit.UnitTest
	// Trace is one collected API execution.
	Trace = trace.Trace
)

// Collect runs unit tests sequentially under one engine mode and returns
// their traces.
func Collect(tests []UnitTest, mode Mode) ([]*Trace, error) {
	return appkit.Collect(tests, mode)
}

// Analysis layer.
type (
	// AnalyzerOptions configure an analysis run.
	AnalyzerOptions = core.Options
	// AnalysisResult is the diagnosis outcome.
	AnalysisResult = core.Result
	// Deadlock is one reported deadlock.
	Deadlock = core.Deadlock
	// SolverLimits bound each satisfiability check.
	SolverLimits = solver.Limits
)

// Analyze runs WeSEER's three-phase deadlock diagnosis over the traces.
func Analyze(s *Schema, traces []*Trace, opts AnalyzerOptions) *AnalysisResult {
	return core.New(s, opts).Analyze(traces)
}
