#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md). Every check must pass:
#   build, go vet, gofmt cleanliness, full test suite.
set -e

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go test ./..."
go test ./...

echo "verify: OK"
