#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md). Every check must pass:
#   build, go vet, gofmt cleanliness, full test suite.
set -e

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go test ./..."
go test ./...

# Coverage floor for the static-analysis and pipeline cores. The floor
# (default 85, override with WESEER_COV_FLOOR=NN) is enforced on
# internal/staticlint — the whole-program loader/call-graph layer,
# canonicalization, and prescreen logic whose soundness the property
# suite pins; internal/core is measured and reported alongside for
# visibility.
echo "== go test -cover (staticlint floor ${WESEER_COV_FLOOR:-85}%)"
cov=$(go test -cover ./internal/staticlint ./internal/core | tee /dev/stderr |
    awk '/internal\/staticlint/ { for (i = 1; i <= NF; i++) if ($i ~ /%$/) print $i }')
echo "${cov:-0%}" | awk -v floor="${WESEER_COV_FLOOR:-85}" '
    { sub(/%/, ""); if ($1 + 0 < floor + 0) {
        printf "coverage: internal/staticlint %s%% is below the %s%% floor\n", $1, floor
        exit 1
    } }'

# Vet determinism: the whole-program analysis (type-check, CHA
# devirtualization, SCC fixpoint summaries) must render byte-identical
# reports across separate processes. Run the full vet twice over the
# fixture corpus and a model app and diff the JSON (exit 1 just means
# error-severity findings were reported — both runs are expected to).
echo "== weseer vet determinism (two runs, diff)"
vetdir=$(mktemp -d)
for i in 1 2; do
    go run ./cmd/weseer vet -json -canonical-order \
        internal/staticlint/testdata/src/wholeprog \
        internal/apps/shopizer > "$vetdir/run$i.json" || [ $? -eq 1 ]
done
if ! cmp -s "$vetdir/run1.json" "$vetdir/run2.json"; then
    echo "vet output differs between identical runs:" >&2
    diff "$vetdir/run1.json" "$vetdir/run2.json" >&2 || true
    rm -rf "$vetdir"
    exit 1
fi
grep -q unordered-locks "$vetdir/run1.json" || {
    echo "vet determinism smoke produced no findings — corpus broken?" >&2
    rm -rf "$vetdir"
    exit 1
}
rm -rf "$vetdir"

# The parallel discharge pipeline (worker pool + memo singleflight +
# cancellation) is the concurrency-bearing code; run it under the race
# detector, together with the concurrent-client workload harness that
# drives the fix-verification loop. Scoped to the packages that
# actually spawn goroutines to keep the gate fast.
echo "== go test -race (core, solver, smt, workload)"
go test -race ./internal/core/... ./internal/solver/... ./internal/smt/... ./internal/workload/...

# Compile-and-run smoke of the microbenchmarks (one iteration each):
# catches bit-rot in bench-only code without paying for real timing runs.
echo "== go test -bench (1x smoke)"
go test -run=NONE -bench=. -benchtime=1x ./...

# Observability smoke: run a real workload with every telemetry artifact
# enabled, then validate the Chrome trace, span JSONL, and Prometheus
# dump structurally. Guards the exporters end to end (the report itself
# is covered by the test suite above).
echo "== trace smoke (weseer run -trace-out/-events-out/-metrics-out)"
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/weseer run -app shopizer -parallel 4 \
    -trace-out "$obsdir/run.trace.json" \
    -events-out "$obsdir/run.spans.jsonl" \
    -metrics-out "$obsdir/run.prom" >/dev/null
go run ./internal/obs/obstest/validatecmd \
    -trace "$obsdir/run.trace.json" \
    -events "$obsdir/run.spans.jsonl" \
    -metrics "$obsdir/run.prom"

# Generated-corpus smoke: a tiny pinned-seed synthetic app (application
# registry spec gen:<seed>,...) through collection and analysis end to
# end. Guards the generator → registry → pipeline path and the planted
# anti-pattern classification; bounded to a few seconds by the corpus
# size. The full sweep lives in weseer-bench -exp scale.
echo "== generated-corpus smoke (weseer run -app gen:7,...)"
genout=$(go run ./cmd/weseer run \
    -app "gen:7,templates=12,modules=3,tables=4,rows=6" -parallel 4)
echo "$genout" | grep -Eq '^  f1 +[0-9]+ report' || {
    echo "generated-corpus smoke: planted class f1 not diagnosed:" >&2
    echo "$genout" >&2
    exit 1
}

# Enumeration smoke: one tiny corpus through all three phase-1/2 modes
# (naive pair loop, indexed, indexed-parallel). The experiment exits
# nonzero unless the three reports are byte-identical, so this doubles
# as a cross-process differential check; -enumout "" skips the artifact.
echo "== enumeration smoke (weseer-bench -exp enum, tiny corpus)"
go run ./cmd/weseer-bench -exp enum -enumsizes 24 -enumout "" >/dev/null

# Fix-verification smoke: a tiny pinned-seed generated corpus through
# the full fixgain loop — diagnose, plan ranked fixes, apply each
# (individually and cumulatively), re-analyze, and drive the workload
# before/after. The experiment itself exits nonzero unless every static
# gate holds (each fix shrinks the report, targeted fingerprints are
# eliminated from re-analysis) and the fully fixed app aborts fewer
# transactions on deadlock than the baseline; the grep double-checks
# the PASS line reached stdout. -fixout "" skips the artifact.
echo "== fixgain smoke (weseer-bench -exp fixgain, tiny corpus)"
fixout=$(go run ./cmd/weseer-bench -exp fixgain \
    -fixapps "gen:5,templates=4,modules=1,tables=3,rows=4,classes=f2:1+f8:1+f10:1" \
    -fixdur 500ms -fixout "")
echo "$fixout" | grep -q 'gates=PASS' || {
    echo "fixgain smoke: gates did not pass:" >&2
    echo "$fixout" >&2
    exit 1
}

# Continuous-diagnosis smoke: a real `weseer serve` daemon on a loopback
# port, fed the tiny pinned-seed generated corpus twice through the
# `weseer ingest` client. The second ingest must store zero new events
# (fingerprint idempotency) and the pattern rollups must name the
# planted anti-pattern classes. The restart/durability path is covered
# by the Go test suite (TestServeRoundTripRestart, TestStoreDurability).
echo "== serve smoke (weseer serve round-trip, idempotent ingest)"
genspec="gen:7,templates=12,modules=3,tables=4,rows=6"
servedir=$(mktemp -d)
trap 'rm -rf "$obsdir" "$servedir"; [ -n "$servepid" ] && kill "$servepid" 2>/dev/null' EXIT
go build -o "$servedir/weseer" ./cmd/weseer
"$servedir/weseer" collect -app "$genspec" -o "$servedir/traces.json" >/dev/null
"$servedir/weseer" serve -store "$servedir/history.wal" -addr 127.0.0.1:0 \
    -app "$genspec" > "$servedir/url.txt" 2>/dev/null &
servepid=$!
i=0
while [ ! -s "$servedir/url.txt" ] && [ $i -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
[ -s "$servedir/url.txt" ] || { echo "serve smoke: daemon printed no URL" >&2; exit 1; }
"$servedir/weseer" ingest -addr "@$servedir/url.txt" -i "$servedir/traces.json" >/dev/null
second=$("$servedir/weseer" ingest -addr "@$servedir/url.txt" -i "$servedir/traces.json")
echo "$second" | grep -q ' 0 stored,' || {
    echo "serve smoke: re-ingest was not idempotent: $second" >&2
    exit 1
}
"$servedir/weseer" history -addr "@$servedir/url.txt" patterns |
    grep -Eq '^ *f1 +[0-9]+ event' || {
    echo "serve smoke: /history/patterns does not name planted class f1" >&2
    exit 1
}
kill "$servepid" 2>/dev/null
wait "$servepid" 2>/dev/null || true
servepid=""

echo "verify: OK"
