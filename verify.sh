#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md). Every check must pass:
#   build, go vet, gofmt cleanliness, full test suite.
set -e

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go test ./..."
go test ./...

# The parallel discharge pipeline (worker pool + memo singleflight +
# cancellation) is the concurrency-bearing code; run it under the race
# detector. Scoped to the packages that actually spawn goroutines to
# keep the gate fast.
echo "== go test -race (core, solver, smt)"
go test -race ./internal/core/... ./internal/solver/... ./internal/smt/...

# Compile-and-run smoke of the microbenchmarks (one iteration each):
# catches bit-rot in bench-only code without paying for real timing runs.
echo "== go test -bench (1x smoke)"
go test -run=NONE -bench=. -benchtime=1x ./...

echo "verify: OK"
