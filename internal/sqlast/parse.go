package sqlast

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"weseer/internal/smt"
)

// Parse parses one SQL statement template in the Fig. 6 syntax. Parameter
// placeholders '?' are numbered left to right. Keywords are
// case-insensitive; identifiers are case-sensitive.
func Parse(sql string) (Stmt, error) {
	p := &parser{}
	if err := p.tokenize(sql); err != nil {
		return nil, err
	}
	st, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("sqlast: %w (near token %d in %q)", err, p.pos, sql)
	}
	if !p.eof() {
		return nil, fmt.Errorf("sqlast: trailing input %q in %q", p.peek().text, sql)
	}
	Normalize(st)
	return st, nil
}

// MustParse is Parse for statically known statements; it panics on error.
func MustParse(sql string) Stmt {
	st, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return st
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokPunct // one of ( ) , . ? and comparison operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

type parser struct {
	toks   []token
	pos    int
	params int
}

func (p *parser) tokenize(sql string) error {
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '?' || c == '*':
			p.toks = append(p.toks, token{tokPunct, string(c)})
			i++
		case c == '=':
			p.toks = append(p.toks, token{tokPunct, "="})
			i++
		case c == '!' || c == '<' || c == '>':
			op := string(c)
			if i+1 < len(sql) && (sql[i+1] == '=' || (c == '<' && sql[i+1] == '>')) {
				op += string(sql[i+1])
				i++
			}
			if op == "!" {
				return fmt.Errorf("sqlast: stray '!' at offset %d", i)
			}
			p.toks = append(p.toks, token{tokPunct, op})
			i++
		case c == '\'':
			j := i + 1
			for j < len(sql) && sql[j] != '\'' {
				j++
			}
			if j == len(sql) {
				return fmt.Errorf("sqlast: unterminated string at offset %d", i)
			}
			p.toks = append(p.toks, token{tokString, sql[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(sql) && sql[i+1] >= '0' && sql[i+1] <= '9':
			j := i + 1
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			p.toks = append(p.toks, token{tokNumber, sql[i:j]})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(sql) && isIdentPart(sql[j]) {
				j++
			}
			p.toks = append(p.toks, token{tokIdent, sql[i:j]})
			i = j
		default:
			return fmt.Errorf("sqlast: unexpected character %q at offset %d", c, i)
		}
	}
	p.toks = append(p.toks, token{tokEOF, ""})
	return nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

// kw reports whether the next token is the given keyword (case-insensitive)
// and consumes it if so.
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("expected %s, got %q", word, p.peek().text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return nil
	}
	return fmt.Errorf("expected %q, got %q", s, t.text)
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.kw("SELECT"):
		return p.selectStmt()
	case p.kw("UPDATE"):
		return p.updateStmt()
	case p.kw("INSERT"):
		return p.insertStmt()
	case p.kw("DELETE"):
		return p.deleteStmt()
	}
	return nil, fmt.Errorf("expected SELECT/UPDATE/INSERT/DELETE, got %q", p.peek().text)
}

var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "ON": true, "WHERE": true,
	"UPDATE": true, "SET": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "AND": true, "OR": true, "IS": true, "NULL": true,
	"DUPLICATE": true, "KEY": true,
}

func isReserved(s string) bool { return reserved[strings.ToUpper(s)] }

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if t := p.peek(); t.kind == tokIdent && !isReserved(t.text) {
		ref.As = t.text
		p.pos++
	}
	return ref, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	s := &Select{}
	if !p.punct("*") {
		for {
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			cr := ColRef{Column: alias}
			if p.punct(".") {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				cr = ColRef{Table: alias, Column: col}
			}
			s.Cols = append(s.Cols, cr)
			if !p.punct(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = ref
	for p.kw("JOIN") {
		jref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		preds, err := p.predConj()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, Join{Ref: jref, On: preds})
	}
	if p.kw("WHERE") {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		s.Where = c
	}
	return s, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	set, err := p.assigns()
	if err != nil {
		return nil, err
	}
	u := &Update{Table: tab, Set: set}
	if p.kw("WHERE") {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		u.Where = c
	}
	return u, nil
}

func (p *parser) insertStmt() (Stmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := Insert{Table: tab}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		op, err := p.operand()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, op)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(ins.Columns) != len(ins.Values) {
		return nil, fmt.Errorf("INSERT has %d columns but %d values", len(ins.Columns), len(ins.Values))
	}
	if p.kw("ON") {
		if err := p.expectKw("DUPLICATE"); err != nil {
			return nil, err
		}
		if err := p.expectKw("KEY"); err != nil {
			return nil, err
		}
		if err := p.expectKw("UPDATE"); err != nil {
			return nil, err
		}
		set, err := p.assigns()
		if err != nil {
			return nil, err
		}
		return &Upsert{Insert: ins, OnDup: set}, nil
	}
	return &ins, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: tab}
	if p.kw("WHERE") {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		d.Where = c
	}
	return d, nil
}

func (p *parser) assigns() ([]Assign, error) {
	var out []Assign
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.operand()
		if err != nil {
			return nil, err
		}
		out = append(out, Assign{Column: col, Value: val})
		if !p.punct(",") {
			break
		}
	}
	return out, nil
}

// cond parses: item (AND item)* where item is a predicate or a
// parenthesized disjunction of conjunctions.
func (p *parser) cond() (Cond, error) {
	var c Cond
	for {
		if p.punct("(") {
			g, err := p.orGroup()
			if err != nil {
				return Cond{}, err
			}
			if len(g.Disjuncts) == 1 {
				c.Preds = append(c.Preds, g.Disjuncts[0]...)
			} else {
				c.Ors = append(c.Ors, g)
			}
		} else {
			pred, err := p.pred()
			if err != nil {
				return Cond{}, err
			}
			c.Preds = append(c.Preds, pred)
		}
		if !p.kw("AND") {
			break
		}
	}
	return c, nil
}

// orGroup parses conj (OR conj)* ')' — the Disj production of Fig. 7.
func (p *parser) orGroup() (OrGroup, error) {
	var g OrGroup
	for {
		conj, err := p.parenConj()
		if err != nil {
			return OrGroup{}, err
		}
		g.Disjuncts = append(g.Disjuncts, conj)
		if !p.kw("OR") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return OrGroup{}, err
	}
	return g, nil
}

// parenConj parses either '(' pred (AND pred)* ')' or a bare predicate.
func (p *parser) parenConj() ([]Pred, error) {
	if p.punct("(") {
		preds, err := p.predConj()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return preds, nil
	}
	pr, err := p.pred()
	if err != nil {
		return nil, err
	}
	return []Pred{pr}, nil
}

func (p *parser) predConj() ([]Pred, error) {
	var out []Pred
	for {
		pr, err := p.pred()
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
		if !p.kw("AND") {
			break
		}
	}
	return out, nil
}

func (p *parser) pred() (Pred, error) {
	l, err := p.operand()
	if err != nil {
		return Pred{}, err
	}
	if p.kw("IS") {
		if err := p.expectKw("NULL"); err != nil {
			return Pred{}, err
		}
		return Pred{L: l, IsNull: true}, nil
	}
	t := p.peek()
	if t.kind != tokPunct {
		return Pred{}, fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	var op smt.CmpOp
	switch t.text {
	case "=":
		op = smt.EQ
	case "!=", "<>":
		op = smt.NE
	case "<":
		op = smt.LT
	case "<=":
		op = smt.LE
	case ">":
		op = smt.GT
	case ">=":
		op = smt.GE
	default:
		return Pred{}, fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	p.pos++
	r, err := p.operand()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Op: op, L: l, R: r}, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokPunct:
		if t.text == "?" {
			p.pos++
			op := P(p.params)
			p.params++
			return op, nil
		}
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			r, ok := new(big.Rat).SetString(t.text)
			if !ok {
				return Operand{}, fmt.Errorf("bad decimal %q", t.text)
			}
			// Canonicalize integral decimals ("0.", "2.0") to integer
			// literals so printing and reparsing is a fixpoint.
			if r.IsInt() && r.Num().IsInt64() {
				return VInt(r.Num().Int64()), nil
			}
			return Operand{Kind: ConstReal, Real: r}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad integer %q", t.text)
		}
		return VInt(v), nil
	case tokString:
		p.pos++
		return VStr(t.text), nil
	case tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.pos++
			return VNull(), nil
		}
		p.pos++
		if p.punct(".") {
			col, err := p.ident()
			if err != nil {
				return Operand{}, err
			}
			return C(t.text, col), nil
		}
		return C("", t.text), nil
	}
	return Operand{}, fmt.Errorf("expected operand, got %q", t.text)
}
