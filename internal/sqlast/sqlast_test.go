package sqlast

import (
	"testing"

	"weseer/internal/smt"
)

func TestParseQ4(t *testing.T) {
	// The paper's Q4 (Fig. 1).
	st := MustParse(`SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?`)
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if s.From.Table != "OrderItem" || s.From.Alias() != "oi" {
		t.Errorf("FROM = %+v", s.From)
	}
	if len(s.Joins) != 2 {
		t.Fatalf("joins = %d", len(s.Joins))
	}
	if s.Joins[0].Ref.Table != "Orders" || s.Joins[0].Ref.Alias() != "o" {
		t.Errorf("join0 = %+v", s.Joins[0].Ref)
	}
	am := s.AliasMap()
	if am["oi"] != "OrderItem" || am["o"] != "Orders" || am["p"] != "Product" {
		t.Errorf("alias map %v", am)
	}
	qc := s.QueryCond()
	if len(qc.Preds) != 3 {
		t.Fatalf("query cond %v", qc)
	}
	if s.NumParams() != 1 {
		t.Errorf("params = %d", s.NumParams())
	}
	last := qc.Preds[2]
	if last.L.Kind != Col || last.L.Table != "oi" || last.L.Column != "O_ID" || last.R.Kind != Param {
		t.Errorf("where pred %v", last)
	}
}

func TestParseQ6(t *testing.T) {
	// The paper's Q6: UPDATE Product SET QTY=? WHERE ID=?.
	st := MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`)
	u := st.(*Update)
	if u.Table != "Product" {
		t.Errorf("table = %s", u.Table)
	}
	if len(u.Set) != 1 || u.Set[0].Column != "QTY" || u.Set[0].Value.Kind != Param || u.Set[0].Value.Ord != 0 {
		t.Errorf("set = %+v", u.Set)
	}
	// Normalization qualifies the bare ID with the table name.
	if u.Where.Preds[0].L.Table != "Product" || u.Where.Preds[0].L.Column != "ID" {
		t.Errorf("where = %+v", u.Where.Preds[0])
	}
	if u.Where.Preds[0].R.Ord != 1 {
		t.Errorf("param ordinal = %d", u.Where.Preds[0].R.Ord)
	}
	if u.NumParams() != 2 {
		t.Errorf("NumParams = %d", u.NumParams())
	}
	if got := u.WrittenColumns(); len(got) != 1 || got[0] != "QTY" {
		t.Errorf("written = %v", got)
	}
}

func TestParseInsert(t *testing.T) {
	st := MustParse(`INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, 5)`)
	ins := st.(*Insert)
	if len(ins.Columns) != 4 || ins.NumParams() != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if v, ok := ins.ValueOf("QTY"); !ok || v.Kind != ConstInt || v.Int != 5 {
		t.Errorf("ValueOf(QTY) = %v %v", v, ok)
	}
	if _, ok := ins.ValueOf("MISSING"); ok {
		t.Error("ValueOf should miss")
	}
	if ins.WriteTable() != "OrderItem" {
		t.Errorf("write table = %s", ins.WriteTable())
	}
}

func TestParseUpsert(t *testing.T) {
	st := MustParse(`INSERT INTO Cart (ID, USER_ID, QTY) VALUES (?, ?, ?) ON DUPLICATE KEY UPDATE QTY = ?`)
	up, ok := st.(*Upsert)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if up.NumParams() != 4 {
		t.Errorf("params = %d", up.NumParams())
	}
	if up.Kind() != KindUpsert {
		t.Errorf("kind = %v", up.Kind())
	}
}

func TestParseDelete(t *testing.T) {
	st := MustParse(`DELETE FROM Address WHERE USER_ID = ? AND CITY != 'nyc'`)
	d := st.(*Delete)
	if len(d.Where.Preds) != 2 {
		t.Fatalf("preds = %v", d.Where.Preds)
	}
	if d.Where.Preds[1].Op != smt.NE || d.Where.Preds[1].R.Str != "nyc" {
		t.Errorf("pred1 = %v", d.Where.Preds[1])
	}
}

func TestParseOperators(t *testing.T) {
	st := MustParse(`SELECT * FROM T WHERE a < 1 AND b <= 2 AND c > 3 AND d >= 4 AND e <> 5 AND f = 1.5`)
	s := st.(*Select)
	wantOps := []smt.CmpOp{smt.LT, smt.LE, smt.GT, smt.GE, smt.NE, smt.EQ}
	if len(s.Where.Preds) != len(wantOps) {
		t.Fatalf("preds = %d", len(s.Where.Preds))
	}
	for i, op := range wantOps {
		if s.Where.Preds[i].Op != op {
			t.Errorf("pred %d op = %v, want %v", i, s.Where.Preds[i].Op, op)
		}
	}
	if s.Where.Preds[5].R.Kind != ConstReal {
		t.Errorf("decimal literal parsed as %v", s.Where.Preds[5].R.Kind)
	}
}

func TestParseDisjunction(t *testing.T) {
	st := MustParse(`SELECT * FROM T WHERE id = ? AND (status = 'open' OR (status = 'held' AND qty > 0))`)
	s := st.(*Select)
	if len(s.Where.Preds) != 1 || len(s.Where.Ors) != 1 {
		t.Fatalf("cond = %+v", s.Where)
	}
	g := s.Where.Ors[0]
	if len(g.Disjuncts) != 2 || len(g.Disjuncts[0]) != 1 || len(g.Disjuncts[1]) != 2 {
		t.Fatalf("group = %+v", g)
	}
}

func TestParseIsNull(t *testing.T) {
	st := MustParse(`SELECT * FROM T WHERE parent_id IS NULL`)
	s := st.(*Select)
	if !s.Where.Preds[0].IsNull {
		t.Errorf("IS NULL not parsed: %+v", s.Where.Preds[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT FROM",
		"SELECT * FROM T WHERE",
		"INSERT INTO T (a, b) VALUES (?)",
		"UPDATE T SET",
		"SELECT * FROM T WHERE a ! b",
		"SELECT * FROM T WHERE a = 'unterminated",
		"SELECT * FROM T extra WHERE junk junk junk",
	}
	for _, sql := range bad {
		if st, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded: %v", sql, st)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	sqls := []string{
		`SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID WHERE oi.O_ID = ?`,
		`SELECT p.ID, p.QTY FROM Product p WHERE p.ID = ?`,
		`UPDATE Product SET QTY = ? WHERE Product.ID = ?`,
		`INSERT INTO T (a, b) VALUES (?, 'x')`,
		`INSERT INTO T (a) VALUES (?) ON DUPLICATE KEY UPDATE a = ?`,
		`DELETE FROM T WHERE T.a >= 10`,
		`SELECT * FROM T WHERE T.id = ? AND (T.x = 1 OR T.y = 2)`,
	}
	for _, sql := range sqls {
		st1 := MustParse(sql)
		printed := st1.String()
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", printed, sql, err)
		}
		if st2.String() != printed {
			t.Errorf("round trip unstable:\n  1st: %s\n  2nd: %s", printed, st2.String())
		}
	}
}

func TestAliasMapOf(t *testing.T) {
	u := MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`)
	am := AliasMapOf(u)
	if am["Product"] != "Product" {
		t.Errorf("alias map %v", am)
	}
	s := MustParse(`SELECT * FROM A x JOIN B y ON y.ID = x.B_ID`)
	am = AliasMapOf(s)
	if am["x"] != "A" || am["y"] != "B" {
		t.Errorf("alias map %v", am)
	}
}

func TestParamNumbering(t *testing.T) {
	st := MustParse(`SELECT * FROM T WHERE a = ? AND b = ? AND c = ?`)
	s := st.(*Select)
	for i, p := range s.Where.Preds {
		if p.R.Kind != Param || p.R.Ord != i {
			t.Errorf("pred %d param ordinal = %+v", i, p.R)
		}
	}
}

func TestTablesOf(t *testing.T) {
	s := MustParse(`SELECT * FROM A JOIN B ON B.x = A.y JOIN C ON C.z = B.w`)
	tabs := s.Tables()
	if len(tabs) != 3 || tabs[0] != "A" || tabs[1] != "B" || tabs[2] != "C" {
		t.Errorf("tables = %v", tabs)
	}
}
