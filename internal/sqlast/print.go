package sqlast

import (
	"strings"
)

// This file renders statement templates back to SQL text. The output is
// accepted by Parse, so printing and parsing round-trip.

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(s.Cols) == 0 {
		b.WriteString("*")
	} else {
		for i, c := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" FROM ")
	writeRef(&b, s.From)
	for _, j := range s.Joins {
		b.WriteString(" JOIN ")
		writeRef(&b, j.Ref)
		b.WriteString(" ON ")
		writePreds(&b, j.On)
	}
	writeWhere(&b, s.Where)
	return b.String()
}

func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(u.Table)
	b.WriteString(" SET ")
	writeAssigns(&b, u.Set)
	writeWhere(&b, u.Where)
	return b.String()
}

func (i *Insert) String() string {
	var b strings.Builder
	writeInsert(&b, i)
	return b.String()
}

func (u *Upsert) String() string {
	var b strings.Builder
	writeInsert(&b, &u.Insert)
	b.WriteString(" ON DUPLICATE KEY UPDATE ")
	writeAssigns(&b, u.OnDup)
	return b.String()
}

func (d *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(d.Table)
	writeWhere(&b, d.Where)
	return b.String()
}

func writeInsert(b *strings.Builder, i *Insert) {
	b.WriteString("INSERT INTO ")
	b.WriteString(i.Table)
	b.WriteString(" (")
	b.WriteString(strings.Join(i.Columns, ", "))
	b.WriteString(") VALUES (")
	for k, v := range i.Values {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")")
}

func writeRef(b *strings.Builder, r TableRef) {
	b.WriteString(r.Table)
	if r.As != "" && r.As != r.Table {
		b.WriteString(" ")
		b.WriteString(r.As)
	}
}

func writeAssigns(b *strings.Builder, as []Assign) {
	for i, a := range as {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column)
		b.WriteString(" = ")
		b.WriteString(a.Value.String())
	}
}

func writeWhere(b *strings.Builder, c Cond) {
	if c.Empty() {
		return
	}
	b.WriteString(" WHERE ")
	writeCond(b, c)
}

func writeCond(b *strings.Builder, c Cond) {
	first := true
	sep := func() {
		if !first {
			b.WriteString(" AND ")
		}
		first = false
	}
	for _, p := range c.Preds {
		sep()
		b.WriteString(p.String())
	}
	for _, g := range c.Ors {
		sep()
		b.WriteString("(")
		for i, dj := range g.Disjuncts {
			if i > 0 {
				b.WriteString(" OR ")
			}
			if len(dj) > 1 {
				b.WriteString("(")
			}
			writePreds(b, dj)
			if len(dj) > 1 {
				b.WriteString(")")
			}
		}
		b.WriteString(")")
	}
}

func writePreds(b *strings.Builder, ps []Pred) {
	for i, p := range ps {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
}
