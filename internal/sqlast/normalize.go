package sqlast

// Normalize fills in omitted table qualifiers: a bare column reference in
// a single-table statement (e.g. "UPDATE Product SET QTY=? WHERE ID=?")
// resolves to that table's alias. Multi-table SELECTs must qualify every
// column; Normalize leaves their bare references untouched for the
// consumer to reject. Parse calls Normalize automatically.
func Normalize(st Stmt) {
	switch t := st.(type) {
	case *Select:
		// A self-alias ("FROM Product Product") is the same reference as
		// no alias; drop it so the printed form is a fixpoint.
		if t.From.As == t.From.Table {
			t.From.As = ""
		}
		for i := range t.Joins {
			if t.Joins[i].Ref.As == t.Joins[i].Ref.Table {
				t.Joins[i].Ref.As = ""
			}
		}
		if len(t.Joins) > 0 {
			return
		}
		alias := t.From.Alias()
		for i := range t.Cols {
			if t.Cols[i].Table == "" {
				t.Cols[i].Table = alias
			}
		}
		qualifyCond(&t.Where, alias)
	case *Update:
		qualifyCond(&t.Where, t.Table)
	case *Delete:
		qualifyCond(&t.Where, t.Table)
	}
}

func qualifyCond(c *Cond, alias string) {
	for i := range c.Preds {
		qualifyPred(&c.Preds[i], alias)
	}
	for gi := range c.Ors {
		for di := range c.Ors[gi].Disjuncts {
			for pi := range c.Ors[gi].Disjuncts[di] {
				qualifyPred(&c.Ors[gi].Disjuncts[di][pi], alias)
			}
		}
	}
}

func qualifyPred(p *Pred, alias string) {
	qualifyOperand(&p.L, alias)
	if !p.IsNull {
		qualifyOperand(&p.R, alias)
	}
}

func qualifyOperand(o *Operand, alias string) {
	if o.Kind == Col && o.Table == "" {
		o.Table = alias
	}
}
