package sqlast

import (
	"reflect"
	"testing"
)

// seedTemplates is every statement template the two model applications
// send, plus grammar corners (joins, OR groups, IS NULL, inline
// constants, UPSERT) — the fuzz corpus and the round-trip fixture set.
var seedTemplates = []string{
	`INSERT INTO CartLock (ID, LOCKED) VALUES (?, ?) ON DUPLICATE KEY UPDATE LOCKED = ?`,
	`SELECT * FROM Address ad WHERE ad.CUSTOMER_ID = ?`,
	`SELECT * FROM Cart c WHERE c.CUSTOMER_ID = ?`,
	`SELECT * FROM CartItem ci JOIN Product p ON p.ID = ci.PRODUCT_ID WHERE ci.CART_ID = ?`,
	`SELECT * FROM CartItem ci WHERE ci.CART_ID = ? AND ci.PRODUCT_ID = ?`,
	`SELECT * FROM CartLock cl WHERE cl.ID = ?`,
	`SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.ORDER_ID JOIN Product p ON p.ID = oi.PRODUCT_ID WHERE oi.ORDER_ID = ?`,
	`SELECT * FROM OfferStat st WHERE st.ID = ?`,
	`SELECT * FROM Product p WHERE p.ID = ?`,
	`UPDATE FulfillmentOption SET USES = ? WHERE ID = ?`,
	`UPDATE Offer SET USES = ? WHERE ID = ?`,
	`UPDATE Product SET QTY = ? WHERE ID = ?`,
	`UPDATE Product SET SOLD = ?, QTY = 3 WHERE ID = ?`,
	`INSERT INTO Orders (ID, TOTAL) VALUES (?, 0)`,
	`DELETE FROM CartItem WHERE CART_ID = ?`,
	`SELECT * FROM T`,
	`SELECT a.X, a.Y FROM T a WHERE a.X = 'str' AND a.Y = 1.5`,
	`SELECT * FROM T t WHERE t.A IS NULL`,
	`SELECT * FROM T t WHERE (t.A = 1 OR t.B = 2) AND t.C = ?`,
}

// FuzzParseTemplate asserts two properties over arbitrary input: Parse
// never panics, and any template it accepts round-trips — the printed
// form re-parses to the same normalized AST (print.go's contract).
func FuzzParseTemplate(f *testing.F) {
	for _, sql := range seedTemplates {
		f.Add(sql)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return
		}
		printed := st.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form rejected: %q -> %q: %v", sql, printed, err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("round-trip changed the AST:\n  input:   %q\n  printed: %q\n  reprint: %q", sql, printed, back.String())
		}
	})
}

// TestPrintRoundTrip runs the round-trip property deterministically over
// the seed corpus, so `go test` covers it without -fuzz.
func TestPrintRoundTrip(t *testing.T) {
	for _, sql := range seedTemplates {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("seed template rejected: %q: %v", sql, err)
		}
		printed := st.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form rejected: %q -> %q: %v", sql, printed, err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Errorf("round-trip changed the AST for %q (printed %q)", sql, printed)
		}
		if again := back.String(); again != printed {
			t.Errorf("printing is not canonical: %q vs %q", printed, again)
		}
	}
}
