// Package sqlast defines the SQL statement ASTs WeSEER supports (Fig. 6 of
// the paper): SELECT with JOINs, UPDATE, INSERT, and DELETE, plus the
// MySQL-style UPSERT used by deadlock fix f2. Query conditions follow the
// Fig. 7 grammar: conjunctions of index-related predicates (Icond) and
// disjunctive conditions unrelated to indexes (Ncond).
//
// Statements are templates: parameters appear as '?' placeholders with
// ordinal positions, matching how ORMs prepare statements through JDBC.
package sqlast

import (
	"fmt"
	"math/big"

	"weseer/internal/smt"
)

// OperandKind classifies a predicate or value operand.
type OperandKind uint8

// Operand kinds. Param is a '?' placeholder; Col is an alias.column
// reference; the rest are literals.
const (
	Param OperandKind = iota
	Col
	ConstInt
	ConstReal
	ConstStr
	Null
)

// Operand is a variable (SQL parameter or table-alias/column pair) or a
// literal, per the Fig. 7 grammar's var and constant forms.
type Operand struct {
	Kind   OperandKind
	Ord    int    // Param: 0-based ordinal
	Table  string // Col: table alias (or table name when unaliased)
	Column string // Col
	Int    int64
	Real   *big.Rat
	Str    string
}

// P returns a parameter operand with the given ordinal.
func P(ord int) Operand { return Operand{Kind: Param, Ord: ord} }

// C returns a column reference operand.
func C(alias, column string) Operand { return Operand{Kind: Col, Table: alias, Column: column} }

// VInt returns an integer literal operand.
func VInt(v int64) Operand { return Operand{Kind: ConstInt, Int: v} }

// VStr returns a string literal operand.
func VStr(s string) Operand { return Operand{Kind: ConstStr, Str: s} }

// VReal returns a decimal literal operand.
func VReal(num, den int64) Operand { return Operand{Kind: ConstReal, Real: big.NewRat(num, den)} }

// VNull returns the NULL literal.
func VNull() Operand { return Operand{Kind: Null} }

func (o Operand) String() string {
	switch o.Kind {
	case Param:
		return "?"
	case Col:
		if o.Table == "" {
			return o.Column
		}
		return o.Table + "." + o.Column
	case ConstInt:
		return fmt.Sprintf("%d", o.Int)
	case ConstReal:
		return realString(o.Real)
	case ConstStr:
		return fmt.Sprintf("'%s'", o.Str)
	case Null:
		return "NULL"
	}
	return "<bad operand>"
}

// realString renders a rational as the decimal literal the tokenizer
// accepts, exactly when the denominator is 2^a·5^b — always the case
// for values Parse itself produced. Other rationals (hand-built via
// VReal) are rounded to 12 fractional digits.
func realString(r *big.Rat) string {
	if r.IsInt() {
		if r.Num().IsInt64() {
			return r.Num().String()
		}
		// Keep a decimal point: bare integers beyond int64 would be
		// rejected on reparse, a ConstReal round-trips.
		return r.Num().String() + ".0"
	}
	den := new(big.Int).Set(r.Denom())
	two, five := big.NewInt(2), big.NewInt(5)
	digits := 0
	for _, f := range []*big.Int{two, five} {
		n := 0
		for new(big.Int).Mod(den, f).Sign() == 0 {
			den.Div(den, f)
			n++
		}
		if n > digits {
			digits = n
		}
	}
	if den.Cmp(big.NewInt(1)) != 0 {
		return r.FloatString(12)
	}
	return r.FloatString(digits)
}

// Equal reports structural operand equality.
func (o Operand) Equal(p Operand) bool {
	if o.Kind != p.Kind {
		return false
	}
	switch o.Kind {
	case Param:
		return o.Ord == p.Ord
	case Col:
		return o.Table == p.Table && o.Column == p.Column
	case ConstInt:
		return o.Int == p.Int
	case ConstReal:
		return o.Real.Cmp(p.Real) == 0
	case ConstStr:
		return o.Str == p.Str
	case Null:
		return true
	}
	return false
}

// Pred is an atomic predicate: L op R, or "L IS NULL" when IsNull is set
// (in which case Op and R are ignored).
type Pred struct {
	Op     smt.CmpOp
	L, R   Operand
	IsNull bool
}

func (p Pred) String() string {
	if p.IsNull {
		return p.L.String() + " IS NULL"
	}
	return fmt.Sprintf("%s %s %s", p.L, p.Op, p.R)
}

// Cond is a query condition: the conjunction of simple predicates (Preds)
// and disjunctive groups (Ors). This mirrors Qcond ::= Icond ∧ Ncond —
// simple predicates can relate to indexes, disjunctions cannot.
type Cond struct {
	Preds []Pred
	// Ors is a conjunction of disjunctions; each OrGroup holds the
	// disjuncts, and each disjunct is a conjunction of predicates.
	Ors []OrGroup
}

// OrGroup is a disjunction of predicate conjunctions.
type OrGroup struct {
	Disjuncts [][]Pred
}

// Empty reports whether the condition has no predicates at all.
func (c Cond) Empty() bool { return len(c.Preds) == 0 && len(c.Ors) == 0 }

// StmtKind discriminates statement types.
type StmtKind uint8

// Statement kinds.
const (
	KindSelect StmtKind = iota
	KindUpdate
	KindInsert
	KindDelete
	KindUpsert
)

func (k StmtKind) String() string {
	switch k {
	case KindSelect:
		return "SELECT"
	case KindUpdate:
		return "UPDATE"
	case KindInsert:
		return "INSERT"
	case KindDelete:
		return "DELETE"
	case KindUpsert:
		return "UPSERT"
	}
	return fmt.Sprintf("StmtKind(%d)", uint8(k))
}

// Stmt is a SQL statement template.
type Stmt interface {
	Kind() StmtKind
	String() string
	// NumParams returns the number of '?' placeholders.
	NumParams() int
	// Tables returns every table the statement touches (not aliases).
	Tables() []string
	// WriteTable returns the written table, or "" for SELECT.
	WriteTable() string
}

// TableRef names a table with an optional alias; Alias() falls back to the
// table name, as SQL scoping does.
type TableRef struct {
	Table string
	As    string
}

// Alias returns the effective alias.
func (r TableRef) Alias() string {
	if r.As != "" {
		return r.As
	}
	return r.Table
}

// Join is one JOIN clause: JOIN Table alias ON <conjunction>.
type Join struct {
	Ref TableRef
	On  []Pred
}

// ColRef names an output column of a SELECT.
type ColRef struct {
	Table  string // alias
	Column string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Select is SELECT cols FROM t [JOIN ...]* WHERE cond. An empty Cols list
// means '*' (all columns of all referenced tables).
type Select struct {
	Cols  []ColRef
	From  TableRef
	Joins []Join
	Where Cond
}

// Kind implements Stmt.
func (*Select) Kind() StmtKind { return KindSelect }

// WriteTable implements Stmt: SELECTs write nothing.
func (*Select) WriteTable() string { return "" }

// Tables implements Stmt.
func (s *Select) Tables() []string {
	out := []string{s.From.Table}
	for _, j := range s.Joins {
		out = append(out, j.Ref.Table)
	}
	return out
}

// AliasMap returns alias → table name for every referenced table.
func (s *Select) AliasMap() map[string]string {
	m := map[string]string{s.From.Alias(): s.From.Table}
	for _, j := range s.Joins {
		m[j.Ref.Alias()] = j.Ref.Table
	}
	return m
}

// QueryCond returns the conjunction of Join-ON and WHERE predicates — the
// "query conditions" of Sec. V-C1.
func (s *Select) QueryCond() Cond {
	var c Cond
	for _, j := range s.Joins {
		c.Preds = append(c.Preds, j.On...)
	}
	c.Preds = append(c.Preds, s.Where.Preds...)
	c.Ors = append(c.Ors, s.Where.Ors...)
	return c
}

// Assign is one SET column = value clause.
type Assign struct {
	Column string
	Value  Operand
}

// Update is UPDATE tab SET ... WHERE cond. Fig. 6 allows no alias.
type Update struct {
	Table string
	Set   []Assign
	Where Cond
}

// Kind implements Stmt.
func (*Update) Kind() StmtKind { return KindUpdate }

// WriteTable implements Stmt.
func (u *Update) WriteTable() string { return u.Table }

// Tables implements Stmt.
func (u *Update) Tables() []string { return []string{u.Table} }

// QueryCond returns the WHERE condition.
func (u *Update) QueryCond() Cond { return u.Where }

// WrittenColumns returns the SET column names.
func (u *Update) WrittenColumns() []string {
	out := make([]string, len(u.Set))
	for i, a := range u.Set {
		out[i] = a.Column
	}
	return out
}

// Insert is INSERT INTO tab (cols) VALUES (vals).
type Insert struct {
	Table   string
	Columns []string
	Values  []Operand
}

// Kind implements Stmt.
func (*Insert) Kind() StmtKind { return KindInsert }

// WriteTable implements Stmt.
func (i *Insert) WriteTable() string { return i.Table }

// Tables implements Stmt.
func (i *Insert) Tables() []string { return []string{i.Table} }

// ValueOf returns the inserted value operand for a column, or false.
func (i *Insert) ValueOf(col string) (Operand, bool) {
	for k, c := range i.Columns {
		if c == col {
			return i.Values[k], true
		}
	}
	return Operand{}, false
}

// Upsert is MySQL's INSERT ... ON DUPLICATE KEY UPDATE, used by fix f2 to
// replace a deadlock-prone check-then-insert transaction with one
// semantically equivalent statement.
type Upsert struct {
	Insert
	OnDup []Assign
}

// Kind implements Stmt.
func (*Upsert) Kind() StmtKind { return KindUpsert }

// Delete is DELETE FROM tab WHERE cond.
type Delete struct {
	Table string
	Where Cond
}

// Kind implements Stmt.
func (*Delete) Kind() StmtKind { return KindDelete }

// WriteTable implements Stmt.
func (d *Delete) WriteTable() string { return d.Table }

// Tables implements Stmt.
func (d *Delete) Tables() []string { return []string{d.Table} }

// QueryCond returns the WHERE condition.
func (d *Delete) QueryCond() Cond { return d.Where }

// NumParams implementations count '?' placeholders in order of appearance.

// NumParams implements Stmt.
func (s *Select) NumParams() int { return countCondParams(s.QueryCond()) }

// NumParams implements Stmt.
func (u *Update) NumParams() int {
	n := 0
	for _, a := range u.Set {
		n += countOperandParams(a.Value)
	}
	return n + countCondParams(u.Where)
}

// NumParams implements Stmt.
func (i *Insert) NumParams() int {
	n := 0
	for _, v := range i.Values {
		n += countOperandParams(v)
	}
	return n
}

// NumParams implements Stmt.
func (u *Upsert) NumParams() int {
	n := u.Insert.NumParams()
	for _, a := range u.OnDup {
		n += countOperandParams(a.Value)
	}
	return n
}

// NumParams implements Stmt.
func (d *Delete) NumParams() int { return countCondParams(d.Where) }

func countOperandParams(o Operand) int {
	if o.Kind == Param {
		return 1
	}
	return 0
}

func countPredParams(p Pred) int {
	n := countOperandParams(p.L)
	if !p.IsNull {
		n += countOperandParams(p.R)
	}
	return n
}

func countCondParams(c Cond) int {
	n := 0
	for _, p := range c.Preds {
		n += countPredParams(p)
	}
	for _, g := range c.Ors {
		for _, dj := range g.Disjuncts {
			for _, p := range dj {
				n += countPredParams(p)
			}
		}
	}
	return n
}

// AliasMapOf returns alias→table for any statement kind. Unaliased write
// statements map the table name to itself.
func AliasMapOf(st Stmt) map[string]string {
	switch t := st.(type) {
	case *Select:
		return t.AliasMap()
	case *Update:
		return map[string]string{t.Table: t.Table}
	case *Insert:
		return map[string]string{t.Table: t.Table}
	case *Upsert:
		return map[string]string{t.Table: t.Table}
	case *Delete:
		return map[string]string{t.Table: t.Table}
	}
	panic("sqlast: unknown statement type")
}

// QueryCondOf returns the query condition of any statement. For INSERT, the
// paper treats the query condition as equations on the inserted row's key
// columns; callers needing that interpretation use lockmodel.InsertCond.
func QueryCondOf(st Stmt) Cond {
	switch t := st.(type) {
	case *Select:
		return t.QueryCond()
	case *Update:
		return t.Where
	case *Delete:
		return t.Where
	case *Insert, *Upsert:
		return Cond{}
	}
	panic("sqlast: unknown statement type")
}
