package core

import (
	"bytes"
	"context"
	"net/http"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"weseer/internal/obs"
	"weseer/internal/obs/obstest"
	"weseer/internal/trace"
)

// obsTraces is pipelineTraces inflated with enough API variants that
// phase 3 has hundreds of chains — long enough for a mid-flight cancel
// to land while workers are still discharging, even on a single-CPU
// machine where the test's /progress probe can take hundreds of
// milliseconds while the solver pool is busy.
func obsTraces() []*trace.Trace {
	traces := pipelineTraces()
	for i := 0; i < 120; i++ {
		traces = append(traces, finishOrderVariant("Variant", 1000+10*i))
	}
	return traces
}

// TestObserverPreservesDeterminism is the tentpole's core guarantee:
// attaching an observer must not change a single byte of the report, at
// any parallelism, while the observer's own snapshot must agree with
// the report's funnel counters.
func TestObserverPreservesDeterminism(t *testing.T) {
	traces := pipelineTraces()
	plain, err := NewAnalyzer(fig1Schema(), WithParallelism(1)).
		AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Error("Result.Metrics must stay nil without an observer")
	}
	for _, workers := range []int{1, 4} {
		o := obs.NewObserver()
		res, err := NewAnalyzer(fig1Schema(), WithParallelism(workers), WithObserver(o)).
			AnalyzeContext(context.Background(), traces)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Deadlocks, res.Deadlocks) {
			t.Fatalf("p%d: observer changed the deadlock report", workers)
		}
		if plain.Stats.WithoutTimings() != res.Stats.WithoutTimings() {
			t.Fatalf("p%d: observer changed the funnel: %+v vs %+v",
				workers, plain.Stats.WithoutTimings(), res.Stats.WithoutTimings())
		}
		if res.Metrics == nil {
			t.Fatal("observed run must attach the metrics snapshot to the result")
		}
		for metric, want := range map[string]int{
			"weseer_funnel_groups_solved_total": res.Stats.GroupsSolved,
			"weseer_funnel_solver_calls_total":  res.Stats.SolverCalls,
			"weseer_funnel_memo_hits_total":     res.Stats.MemoHits,
			"weseer_solver_sat_total":           res.Stats.SolverSAT,
		} {
			if got := res.Metrics[metric]; got != float64(want) {
				t.Errorf("p%d: Result.Metrics[%s] = %v, want %d", workers, metric, got, want)
			}
		}

		// The trace must cover the whole pipeline: a root span, the
		// enumerate and discharge phases, per-chain spans, and at least
		// one solver span per busy worker thread.
		var buf bytes.Buffer
		if err := o.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		sum, err := obstest.ValidateChromeTrace(&buf)
		if err != nil {
			t.Fatalf("p%d: invalid Chrome trace: %v", workers, err)
		}
		for _, name := range []string{"analyze", "enumerate", "discharge", "chain", "solve"} {
			if sum.NameCount[name] == 0 {
				t.Errorf("p%d: trace has no %q span", workers, name)
			}
		}
		if sum.NameCount["chain"] != res.Stats.GroupsSolved && sum.NameCount["chain"] == 0 {
			t.Errorf("p%d: no chain spans recorded", workers)
		}
		if got := o.Progress.Snapshot().Phase; got != "done" {
			t.Errorf("p%d: final progress phase = %q, want done", workers, got)
		}
	}
}

// TestObserverCancellationHygiene cancels an observed analysis while
// phase-3 workers are mid-discharge and asserts that everything the run
// spawned — the worker pool and the debug HTTP server — exits, leaving
// the process at its baseline goroutine count. The leak check is
// hand-rolled: count, retry with backoff, and dump the stack diff on
// failure.
func TestObserverCancellationHygiene(t *testing.T) {
	baseline := runtime.NumGoroutine()

	o := obs.NewObserver()
	ds, err := obs.StartDebugServer("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := NewAnalyzer(fig1Schema(), WithParallelism(4), WithObserver(o)).
			AnalyzeContext(ctx, obsTraces())
		done <- err
	}()

	// Wait until phase 3 is demonstrably underway — at least one chain
	// discharged — then cancel mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := o.Progress.Snapshot()
		if s.Phase == "fine" && s.ChainsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase 3 never started: %+v", s)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Exercise the live endpoint while workers are running.
	resp, err := http.Get("http://" + ds.Addr() + "/progress")
	if err != nil {
		t.Fatalf("GET /progress: %v", err)
	}
	resp.Body.Close()
	cancel()

	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("AnalyzeContext returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled analysis did not return within 10s")
	}
	if got := o.Progress.Snapshot().Phase; got != "aborted" {
		t.Errorf("final progress phase = %q, want aborted", got)
	}
	if err := ds.Close(); err != nil {
		t.Errorf("debug server close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	// All spawned goroutines — 4 pool workers, the HTTP server's
	// listener and handlers — must be gone. Retry briefly: exiting
	// goroutines are not instantaneous.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(leakDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	var leaked []string
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "weseer/") || strings.Contains(g, "net/http") {
			leaked = append(leaked, g)
		}
	}
	t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
		runtime.NumGoroutine(), baseline, strings.Join(leaked, "\n\n"))
}
