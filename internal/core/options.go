package core

import (
	"weseer/internal/obs"
	"weseer/internal/schema"
	"weseer/internal/solver"
)

// Options configure an analysis run.
//
// Deprecated: the bool-flag struct is kept so existing callers compile
// unchanged; new code should construct analyzers with NewAnalyzer and
// functional options (WithParallelism, WithPrescreen, ...), which cover
// every field here.
type Options struct {
	// CoarseOnly stops after phase 2 and reports raw coarse cycles — the
	// STEPDAD/REDACT baseline mode (Sec. VII-B).
	CoarseOnly bool
	// SkipPhase1 disables the transaction-level filter (ablation).
	SkipPhase1 bool
	// SkipLockFilter disables the quick lock-collision test before SMT
	// solving (ablation: every coarse cycle goes to the solver).
	SkipLockFilter bool
	// UseConcretePlans restricts lock modeling to each statement's
	// recorded execution plan instead of every possible index — the
	// paper's Sec. V-D future-work refinement, removing the
	// all-join-orders source of false positives.
	UseConcretePlans bool
	// StaticPrescreen enables Phase-0: before lock generation and SMT
	// discharge, candidate pairs and cycle groups are screened against
	// the template-level lock-order analysis (internal/staticlint).
	// Statements pinned to provably disjoint rigid point keys cannot
	// collide, so refuted groups skip the solver entirely. The screen is
	// an over-approximation: it only discards candidates whose conflict
	// condition the solver would find trivially UNSAT, never a
	// satisfiable cycle.
	StaticPrescreen bool
	// Solver bounds each satisfiability check.
	Solver solver.Limits
	// MaxCyclesPerPair caps coarse-cycle enumeration per transaction pair
	// (0 = unlimited).
	MaxCyclesPerPair int
	// Parallelism is the number of concurrent phase-3 workers discharging
	// candidate cycles (0 = GOMAXPROCS). Reports are deterministic at any
	// setting: results are merged per candidate index in canonical order.
	Parallelism int
	// DisableMemo turns off solver-call memoization (ablation): every
	// discharged candidate runs its own solver call on the original,
	// un-canonicalized formula.
	DisableMemo bool
	// DisableEnumIndex turns off the inverted table-conflict index and
	// the parallel fan-out of phases 1–2 (ablation): enumeration falls
	// back to the serial loop that probes every transaction-instance
	// pair — O(instances²) in corpus size. Reports are byte-identical
	// either way; the naive loop doubles as the differential-test oracle.
	DisableEnumIndex bool
	// Observer, when non-nil, receives spans, metrics, and progress from
	// the run. Telemetry is observational only: the report is identical
	// with or without it. Nil (the default) disables all instrumentation
	// at zero cost — every hook is guarded on the observer.
	Observer *obs.Observer
}

// Option is a functional analysis option, applied by NewAnalyzer.
type Option func(*Options)

// WithParallelism sets the number of concurrent phase-3 workers
// (n <= 0 selects GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// WithPrescreen enables the Phase-0 static prescreen (the weseer vet
// template analysis): candidate pairs and cycle groups whose conflict
// condition is provably UNSAT are discarded before the solver.
func WithPrescreen() Option {
	return func(o *Options) { o.StaticPrescreen = true }
}

// WithSolverLimits bounds each satisfiability check.
func WithSolverLimits(l solver.Limits) Option {
	return func(o *Options) { o.Solver = l }
}

// WithCoarseOnly stops after phase 2 and reports raw coarse cycles — the
// STEPDAD/REDACT baseline mode (Sec. VII-B).
func WithCoarseOnly() Option {
	return func(o *Options) { o.CoarseOnly = true }
}

// WithConcretePlans restricts lock modeling to recorded execution plans
// (the paper's Sec. V-D refinement).
func WithConcretePlans() Option {
	return func(o *Options) { o.UseConcretePlans = true }
}

// WithMaxCyclesPerPair caps coarse-cycle enumeration per transaction
// pair (0 = unlimited).
func WithMaxCyclesPerPair(n int) Option {
	return func(o *Options) { o.MaxCyclesPerPair = n }
}

// WithoutPhase1 disables the transaction-level filter (ablation).
func WithoutPhase1() Option {
	return func(o *Options) { o.SkipPhase1 = true }
}

// WithoutLockFilter disables the quick lock-collision test before SMT
// solving (ablation: every deduplicated coarse cycle goes to the solver).
func WithoutLockFilter() Option {
	return func(o *Options) { o.SkipLockFilter = true }
}

// WithObserver attaches an observability sink: the run emits spans
// (concolic extraction is instrumented separately via
// concolic.WithObserver; here: phases 0–3, each phase-3 chain, each
// solver call), funnel/engine metrics, and live progress into o.
// Telemetry never feeds back into the analysis, so the determinism
// guarantee — byte-identical reports at any parallelism — holds with
// the observer attached. The default (nil) is a no-op.
func WithObserver(o *obs.Observer) Option {
	return func(opts *Options) { opts.Observer = o }
}

// WithoutMemo disables solver-call memoization (ablation).
func WithoutMemo() Option {
	return func(o *Options) { o.DisableMemo = true }
}

// WithoutEnumIndex disables the indexed, parallel candidate enumeration
// (ablation): phases 1–2 fall back to the serial quadratic pair loop.
// The report is byte-identical either way.
func WithoutEnumIndex() Option {
	return func(o *Options) { o.DisableEnumIndex = true }
}

// NewAnalyzer returns an analyzer for a schema, configured by functional
// options. This is the preferred constructor; New remains as a shim over
// the legacy Options struct.
func NewAnalyzer(scm *schema.Schema, opts ...Option) *Analyzer {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Analyzer{scm: scm, opts: o}
}

// New returns an analyzer for a schema.
//
// Deprecated: use NewAnalyzer with functional options.
func New(scm *schema.Schema, opts Options) *Analyzer {
	return &Analyzer{scm: scm, opts: opts}
}
