package core

import (
	"strings"
	"testing"

	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

func fig1Schema() *schema.Schema {
	s := schema.New()
	s.AddTable("Orders").
		Col("ID", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID")
	s.AddTable("OrderItem").
		Col("ID", schema.Int).
		Col("O_ID", schema.Int).
		Col("P_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_oi_o", "O_ID")
	s.AddTable("Users").
		Col("ID", schema.Int).
		Col("EMAIL", schema.Varchar).
		PrimaryKey("ID")
	return s
}

func mkStmt(seq int, sql string, syms []smt.Expr, res *trace.Result) *trace.Stmt {
	st := &trace.Stmt{
		Seq: seq, TxnID: 1, SQL: sql, Parsed: sqlast.MustParse(sql),
		Trigger: trace.CodeLoc{Frames: []trace.Frame{{Func: "app.fn", File: "app.go", Line: 10 + seq}}},
	}
	for i, s := range syms {
		st.Params = append(st.Params, trace.Param{Sym: s, Concrete: minidb.I64(int64(i + 1))})
	}
	st.Res = res
	return st
}

// finishOrderTrace builds the paper's Fig. 3 trace: Q4 (join SELECT, one
// row) followed by Q6 (UPDATE Product keyed by the fetched product ID),
// with the path conditions of Fig. 1.
func finishOrderTrace() *trace.Trace {
	orderID := smt.NewVar("order_id", smt.SortInt)
	pID := smt.NewVar("res0.row0.p.ID", smt.SortInt)
	pQTY := smt.NewVar("res0.row0.p.QTY", smt.SortInt)
	oiQTY := smt.NewVar("res0.row0.oi.QTY", smt.SortInt)

	q4 := mkStmt(0,
		`SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?`,
		[]smt.Expr{orderID},
		&trace.Result{
			Cols: []string{"oi.ID", "oi.O_ID", "oi.P_ID", "oi.QTY", "o.ID", "p.ID", "p.QTY"},
			Sym: [][]smt.Var{{
				{Name: "res0.row0.oi.ID", S: smt.SortInt},
				{Name: "res0.row0.oi.O_ID", S: smt.SortInt},
				{Name: "res0.row0.oi.P_ID", S: smt.SortInt},
				{Name: "res0.row0.oi.QTY", S: smt.SortInt},
				{Name: "res0.row0.o.ID", S: smt.SortInt},
				{Name: "res0.row0.p.ID", S: smt.SortInt},
				{Name: "res0.row0.p.QTY", S: smt.SortInt},
			}},
		})
	q6 := mkStmt(1, `UPDATE Product SET QTY = ? WHERE ID = ?`,
		[]smt.Expr{smt.Sub(pQTY, oiQTY), pID}, nil)

	return &trace.Trace{
		API:    "Checkout",
		Inputs: []trace.Input{{Name: "order_id", Sort: smt.SortInt, Concrete: smt.IntValue(1)}},
		Txns:   []*trace.Txn{{ID: 1, Committed: true, Stmts: []*trace.Stmt{q4, q6}}},
		PathConds: []trace.PathCond{
			{AfterStmt: 0, Cond: smt.Ne(orderID, smt.Int(-1))},
			{AfterStmt: 1, Cond: smt.Ge(pQTY, oiQTY)},
		},
	}
}

// mergeTrace is the d1 shape: empty SELECT (range lock) then INSERT of
// the same key.
func mergeTrace() *trace.Trace {
	uid := smt.NewVar("user_id", smt.SortInt)
	sel := mkStmt(0, `SELECT * FROM Users t WHERE t.ID = ?`, []smt.Expr{uid},
		&trace.Result{Cols: []string{"t.ID", "t.EMAIL"}, Empty: true})
	ins := mkStmt(1, `INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`,
		[]smt.Expr{uid, smt.NewVar("email", smt.SortString)}, nil)
	return &trace.Trace{
		API:    "Register",
		Inputs: []trace.Input{{Name: "user_id", Sort: smt.SortInt, Concrete: smt.IntValue(9)}},
		Txns:   []*trace.Txn{{ID: 1, Committed: true, Stmts: []*trace.Stmt{sel, ins}}},
	}
}

// readOnlyTrace cannot participate in any deadlock.
func readOnlyTrace() *trace.Trace {
	sel := mkStmt(0, `SELECT * FROM Product p WHERE p.ID = ?`,
		[]smt.Expr{smt.NewVar("pid", smt.SortInt)},
		&trace.Result{Cols: []string{"p.ID", "p.QTY"}, Sym: [][]smt.Var{{
			{Name: "res0.row0.p.ID", S: smt.SortInt},
			{Name: "res0.row0.p.QTY", S: smt.SortInt},
		}}})
	return &trace.Trace{
		API:  "Browse",
		Txns: []*trace.Txn{{ID: 1, Committed: true, Stmts: []*trace.Stmt{sel}}},
	}
}

func TestFinishOrderDeadlockFound(t *testing.T) {
	// The paper's running example: two concurrent finishOrder instances
	// deadlock on Product (Fig. 4's cycle, confirmed as in Fig. 9).
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{finishOrderTrace()})
	if len(res.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %d\n%s", len(res.Deadlocks), res.Render())
	}
	d := res.Deadlocks[0]
	if d.APIs[0] != "Checkout" || d.APIs[1] != "Checkout" {
		t.Errorf("APIs = %v", d.APIs)
	}
	if d.Model == nil {
		t.Fatal("confirmed deadlock must carry a model")
	}
	// In the model both instances operate on the same product row.
	p1 := d.Model.Vars["A1.res0.row0.p.ID"]
	p2 := d.Model.Vars["A2.res0.row0.p.ID"]
	if !p1.Equal(p2) {
		t.Errorf("instances touch different products in model: %s vs %s", p1, p2)
	}
	// Path conditions hold in the model: order ids differ from -1.
	if d.Model.Vars["A1.order_id"].I == -1 {
		t.Errorf("model violates path condition: %s", d.Model)
	}
}

func TestMergeGapDeadlockFound(t *testing.T) {
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{mergeTrace()})
	if len(res.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %d\n%s", len(res.Deadlocks), res.Render())
	}
	if res.Deadlocks[0].Cycle.Table1 != "Users" {
		t.Errorf("conflict table = %s", res.Deadlocks[0].Cycle.Table1)
	}
}

func TestReadOnlyNoDeadlock(t *testing.T) {
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{readOnlyTrace()})
	if len(res.Deadlocks) != 0 {
		t.Fatalf("read-only trace produced deadlocks:\n%s", res.Render())
	}
	if res.Stats.PairsAfterPhase1 != 0 {
		t.Errorf("phase 1 should filter the read-only pair: %+v", res.Stats)
	}
}

func TestPhase1Filters(t *testing.T) {
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{finishOrderTrace(), readOnlyTrace()})
	// Pairs: (fo,fo), (fo,ro), (ro,ro) = 3; only (fo,fo) survives.
	if res.Stats.Pairs != 3 || res.Stats.PairsAfterPhase1 != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if len(res.Deadlocks) != 1 {
		t.Errorf("deadlocks = %d", len(res.Deadlocks))
	}
}

func TestCoarseOnlyBaseline(t *testing.T) {
	// The STEPDAD/REDACT-style baseline reports raw coarse cycles without
	// lock modeling or SMT checking.
	fine := New(fig1Schema(), Options{})
	coarse := New(fig1Schema(), Options{CoarseOnly: true})
	traces := []*trace.Trace{finishOrderTrace(), mergeTrace()}
	fres := fine.Analyze(traces)
	cres := coarse.Analyze(traces)
	if cres.Stats.CoarseCycles == 0 {
		t.Fatal("baseline found no coarse cycles")
	}
	if cres.Stats.GroupsSolved != 0 {
		t.Error("coarse-only mode must not invoke the solver")
	}
	if len(cres.Deadlocks) < len(fres.Deadlocks) {
		t.Errorf("baseline (%d) reports fewer than fine mode (%d)", len(cres.Deadlocks), len(fres.Deadlocks))
	}
}

func TestPathConditionEliminatesFalsePositive(t *testing.T) {
	// Identical structure to finishOrder, but a path condition pins the
	// updated product to a constant while another clause pins the other
	// instance's product elsewhere — making the cycle UNSAT.
	tr := finishOrderTrace()
	pid := smt.NewVar("res0.row0.p.ID", smt.SortInt)
	oid := smt.NewVar("order_id", smt.SortInt)
	// Each instance's product ID equals its order id; instance order ids
	// are forced to distinct parities via the input constraints below.
	tr.PathConds = append(tr.PathConds,
		trace.PathCond{AfterStmt: 1, Cond: smt.Eq(pid, oid)},
	)
	a := New(fig1Schema(), Options{})

	// First, without the distinctness constraint the deadlock survives.
	res := a.Analyze([]*trace.Trace{tr})
	if len(res.Deadlocks) != 1 {
		t.Fatalf("expected the base deadlock, got %d", len(res.Deadlocks))
	}

	// Now add contradictory per-instance ranges: A1 below 100, A2 at or
	// above 100; the same row can no longer be shared.
	tr2 := finishOrderTrace()
	tr2.API = "CheckoutLow"
	tr2.PathConds = append(tr2.PathConds,
		trace.PathCond{AfterStmt: 1, Cond: smt.Eq(pid, oid)},
	)
	// Instance-asymmetric conditions cannot be expressed per-instance in
	// a single trace (both instances share path conditions), so check the
	// phase directly: constrain the product ID to a single constant —
	// both instances then ARE allowed to collide on it, deadlock remains;
	// then constrain instances apart via disjoint constants, which is
	// impossible within one trace and correctly keeps the deadlock.
	tr3 := finishOrderTrace()
	tr3.PathConds = append(tr3.PathConds,
		trace.PathCond{AfterStmt: 1, Cond: smt.Eq(pid, smt.Int(7))},
	)
	res3 := a.Analyze([]*trace.Trace{tr3})
	if len(res3.Deadlocks) != 1 {
		t.Fatalf("constant product still deadlocks: got %d", len(res3.Deadlocks))
	}

	// A genuinely contradictory path condition kills the cycle.
	tr4 := finishOrderTrace()
	tr4.PathConds = append(tr4.PathConds,
		trace.PathCond{AfterStmt: 1, Cond: smt.Lt(pid, smt.Int(0))},
		trace.PathCond{AfterStmt: 1, Cond: smt.Gt(pid, smt.Int(0))},
	)
	res4 := a.Analyze([]*trace.Trace{tr4})
	if len(res4.Deadlocks) != 0 {
		t.Fatalf("UNSAT path conditions still reported: %d", len(res4.Deadlocks))
	}
	if res4.Stats.SolverUNSAT == 0 {
		t.Errorf("solver should have refuted cycles: %+v", res4.Stats)
	}
}

func TestLockFilterAblation(t *testing.T) {
	traces := []*trace.Trace{finishOrderTrace()}
	withFilter := New(fig1Schema(), Options{}).Analyze(traces)
	without := New(fig1Schema(), Options{SkipLockFilter: true}).Analyze(traces)
	if len(withFilter.Deadlocks) != len(without.Deadlocks) {
		t.Errorf("lock filter changed results: %d vs %d", len(withFilter.Deadlocks), len(without.Deadlocks))
	}
	if without.Stats.GroupsSolved < withFilter.Stats.GroupsSolved {
		t.Errorf("skipping the filter should not reduce solver work: %d vs %d",
			without.Stats.GroupsSolved, withFilter.Stats.GroupsSolved)
	}
}

func TestCrossAPIDeadlock(t *testing.T) {
	// Two different APIs writing each other's tables (d9/d17 shape).
	tr1 := finishOrderTrace()
	tr2 := finishOrderTrace()
	tr2.API = "Ship"
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{tr1, tr2})
	var sawCross bool
	for _, d := range res.Deadlocks {
		if d.APIs[0] != d.APIs[1] {
			sawCross = true
		}
	}
	if !sawCross {
		t.Errorf("no cross-API deadlock found:\n%s", res.Render())
	}
}

func TestRenderReport(t *testing.T) {
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{finishOrderTrace()})
	out := res.Render()
	for _, want := range []string{"Checkout", "UPDATE Product", "app.go", "input", "dbrow", "holds lock", "waits at"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDedupFoldsCycles(t *testing.T) {
	a := New(fig1Schema(), Options{})
	res := a.Analyze([]*trace.Trace{finishOrderTrace()})
	if len(res.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %d", len(res.Deadlocks))
	}
	if res.Stats.CoarseCycles < res.Deadlocks[0].Count {
		t.Errorf("folded count %d exceeds coarse cycles %d", res.Deadlocks[0].Count, res.Stats.CoarseCycles)
	}
}
