package core

// Indexed, parallel candidate enumeration (phases 1–2).
//
// The naive reference loop (enumerateNaive, kept as the
// DisableEnumIndex ablation and as the differential-test oracle) probes
// every cross-instance transaction pair — O(instances²) signature
// probes even though on large corpora almost no pair conflicts. The
// indexed path inverts the phase-1 signature instead: per-table posting
// lists of the A2-role instances that access, and that write, each
// table. A pair survives phase 1 iff each side writes a table the other
// accesses, so the exact survivor set for one A1-role instance L is
//
//	(⋃_{t ∈ written(L)} accessors[t]) ∩ (⋃_{t ∈ accessed(L)} writers[t])
//
// restricted to instances from traces at or after L's own — computed by
// walking posting-list suffixes, never the full instance set. Work is
// then sharded over a bounded worker pool at A1-instance granularity:
// each worker screens its survivors (phase 0) and enumerates their
// coarse cycles (phase 2) independently, and a serial merge replays the
// buffered outcomes in the naive loop's exact (trace_i, trace_j, txn1,
// txn2) order. Chain formation — and with it every downstream report
// byte — is therefore independent of both the index and the worker
// count.

import (
	"context"
	"sort"
	"sync"

	"weseer/internal/staticlint"
	"weseer/internal/trace"
)

// enumInst is one renamed transaction instance in a fixed role (A1 or
// A2), addressed by its global ordinal: instances are numbered in
// (trace, transaction) order, so ordinal order is exactly the naive
// loop's iteration order within a role.
type enumInst struct {
	trace int // index into the traces slice
	txn   *trace.Txn
	inst  *trace.Trace // the renamed trace this transaction belongs to
}

// flattenRole renames every trace under prefix and flattens its
// transactions into ordinal order, returning the instances, their
// phase-1 signatures, and start[i] = the first ordinal belonging to
// trace i (len(start) == len(traces)+1).
func flattenRole(traces []*trace.Trace, prefix string) (insts []enumInst, sigs []txnSig, start []int) {
	start = make([]int, len(traces)+1)
	for i, tr := range traces {
		start[i] = len(insts)
		renamed := tr.Rename(prefix)
		for _, txn := range renamed.Txns {
			acc, wr := txn.Tables()
			insts = append(insts, enumInst{trace: i, txn: txn, inst: renamed})
			sigs = append(sigs, txnSig{acc: acc, wr: wr})
		}
	}
	start[len(traces)] = len(insts)
	return insts, sigs, start
}

// conflictIndex holds the per-table posting lists over the A2-role
// instances. Lists are built in ordinal order, so they are sorted
// ascending and suffix scans (ordinal >= some start) are a binary
// search plus a linear walk.
type conflictIndex struct {
	accessors map[string][]int
	writers   map[string][]int
}

func buildConflictIndex(sigs []txnSig) *conflictIndex {
	ix := &conflictIndex{accessors: map[string][]int{}, writers: map[string][]int{}}
	for ord, sig := range sigs {
		for t := range sig.acc {
			ix.accessors[t] = append(ix.accessors[t], ord)
		}
		for t := range sig.wr {
			ix.writers[t] = append(ix.writers[t], ord)
		}
	}
	return ix
}

// enumScratch is one worker's reusable marking state. The epoch trick
// makes clearing O(1): a mark is live only when its slot equals the
// current epoch, so bumping the epoch invalidates every mark at once.
type enumScratch struct {
	epoch        uint32
	markA, markB []uint32
	cand         []int
}

func newEnumScratch(n int) *enumScratch {
	return &enumScratch{markA: make([]uint32, n), markB: make([]uint32, n)}
}

// suffix returns the tail of a sorted posting list with ordinal >= lo.
func suffix(list []int, lo int) []int {
	k := sort.SearchInts(list, lo)
	return list[k:]
}

// candidates computes the exact phase-1 survivor set for one A1-role
// instance with signature sig, restricted to A2 ordinals >= startOrd,
// in ascending ordinal order. probes counts the posting-list entries
// walked — the work the index performs in place of the naive loop's
// pairwise signature probes.
func (ix *conflictIndex) candidates(sig txnSig, startOrd int, s *enumScratch) (cands []int, probes int) {
	s.epoch++
	if s.epoch == 0 { // uint32 wraparound: stale slots could alias, reset
		for i := range s.markA {
			s.markA[i], s.markB[i] = 0, 0
		}
		s.epoch = 1
	}
	// Direction A: instances that access a table L writes.
	for t := range sig.wr {
		for _, r := range suffix(ix.accessors[t], startOrd) {
			probes++
			s.markA[r] = s.epoch
		}
	}
	// Direction B: instances that write a table L accesses. A pair is a
	// survivor exactly when both directions hold — txnSig.conflicts.
	s.cand = s.cand[:0]
	for t := range sig.acc {
		for _, r := range suffix(ix.writers[t], startOrd) {
			probes++
			if s.markB[r] != s.epoch {
				s.markB[r] = s.epoch
				if s.markA[r] == s.epoch {
					s.cand = append(s.cand, r)
				}
			}
		}
	}
	// Collection order above follows map iteration; the merge contract
	// wants naive (ordinal) order.
	sort.Ints(s.cand)
	return s.cand, probes
}

// pairHit is one phase-1 survivor of a left instance: the A2 ordinal
// plus the coarse cycles phase 2 found (none when the phase-0 pair
// screen pruned the pair).
type pairHit struct {
	right  int
	cycles []Cycle
}

// leftOutcome is one A1-role instance's buffered enumeration result,
// merged serially afterwards.
type leftOutcome struct {
	pairs  int // universe pairs this instance accounts for (closed form)
	probes int // posting-list entries walked for it
	hits   []pairHit

	prescreened, pruned, cycles int

	err error
}

// enumerateIndexed is the indexed, parallel implementation of phases
// 1–2. It produces the same chains, in the same order, with the same
// funnel counters as enumerateNaive (plus Stats.IndexProbes, which the
// naive loop leaves zero).
func (a *Analyzer) enumerateIndexed(ctx context.Context, traces []*trace.Trace, workers int, res *Result) ([]*chain, error) {
	lefts, leftSigs, leftStart := flattenRole(traces, "A1.")
	rights, rightSigs, rightStart := flattenRole(traces, "A2.")

	var ix *conflictIndex
	if !a.opts.SkipPhase1 {
		ix = buildConflictIndex(rightSigs)
	}
	if a.ps != nil {
		// Freeze the phase-0 shape cache before fanning out: workers (and
		// later the phase-3 pool) read it without locking.
		for i, tr := range traces {
			for li := leftStart[i]; li < leftStart[i+1]; li++ {
				a.ps.shape(tr.API, lefts[li].txn)
			}
			for ri := rightStart[i]; ri < rightStart[i+1]; ri++ {
				a.ps.shape(tr.API, rights[ri].txn)
			}
		}
	}

	// enumLeft runs one A1-role instance: candidate discovery through the
	// index, the phase-0 pair screen, and per-pair coarse-cycle
	// enumeration, all into a private outcome.
	enumLeft := func(li int, s *enumScratch) leftOutcome {
		var out leftOutcome
		L := lefts[li]
		startOrd := rightStart[L.trace]
		out.pairs = len(rights) - startOrd
		var cands []int
		if ix != nil {
			cands, out.probes = ix.candidates(leftSigs[li], startOrd, s)
		} else {
			// Phase-1 ablation: every pair in the suffix is a candidate.
			cands = make([]int, 0, len(rights)-startOrd)
			for r := startOrd; r < len(rights); r++ {
				cands = append(cands, r)
			}
		}
		if len(cands) == 0 {
			return out
		}
		api1 := traces[L.trace].API
		p1 := &instance{API: api1, Prefix: "A1.", Txn: L.txn, Trace: L.inst}
		for _, r := range cands {
			if err := ctx.Err(); err != nil {
				out.err = err
				return out
			}
			R := rights[r]
			if a.ps != nil {
				out.prescreened++
				sh1 := a.ps.txns[L.txn]
				sh2 := a.ps.txns[R.txn]
				if !staticlint.PairDeadlockPossible(sh1, sh2, a.scm) {
					out.pruned++
					continue
				}
			}
			p2 := &instance{API: traces[R.trace].API, Prefix: "A2.", Txn: R.txn, Trace: R.inst}
			hit := pairHit{right: r}
			out.cycles += a.enumeratePair(p1, p2, func(cyc Cycle) {
				hit.cycles = append(hit.cycles, cyc)
			})
			out.hits = append(out.hits, hit)
		}
		return out
	}

	outcomes := make([]leftOutcome, len(lefts))
	if workers > len(lefts) {
		workers = len(lefts)
	}
	if workers <= 1 {
		s := newEnumScratch(len(rights))
		for li := range lefts {
			outcomes[li] = enumLeft(li, s)
			if outcomes[li].err != nil {
				break
			}
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := newEnumScratch(len(rights))
				for li := range jobs {
					outcomes[li] = enumLeft(li, s)
				}
			}()
		}
	feed:
		for li := range lefts {
			select {
			case jobs <- li:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}

	// Aggregate the funnel counters. Order is irrelevant here; partially
	// processed instances (cancellation) contribute what they finished,
	// like the naive loop's partial stats.
	var err error
	for li := range outcomes {
		out := &outcomes[li]
		if out.err != nil && err == nil {
			err = out.err
		}
		res.Stats.Pairs += out.pairs
		res.Stats.IndexProbes += out.probes
		res.Stats.PairsAfterPhase1 += len(out.hits)
		res.Stats.PrescreenPairs += out.prescreened
		res.Stats.PrescreenPairsPruned += out.pruned
		res.Stats.CoarseCycles += out.cycles
	}
	if err == nil {
		err = ctx.Err()
	}

	// Serial merge: replay the buffered hits in the naive loop's
	// (trace_i, trace_j, txn1, txn2) order, so chains form in the same
	// first-occurrence order at any worker count. Each instance's hits
	// are sorted by right ordinal and ordinals group by trace, so the
	// per-(i,j) slice of every instance is a contiguous window.
	byKey := map[string]*chain{}
	var chains []*chain
	add := func(cyc Cycle) {
		key := cyc.dedupKey()
		ch, ok := byKey[key]
		if !ok {
			ch = &chain{key: key}
			byKey[key] = ch
			chains = append(chains, ch)
		}
		ch.cycles = append(ch.cycles, cyc)
	}
	ptr := make([]int, len(lefts))
	for i := range traces {
		for j := i; j < len(traces); j++ {
			for li := leftStart[i]; li < leftStart[i+1]; li++ {
				hits := outcomes[li].hits
				hi := ptr[li]
				for hi < len(hits) && rights[hits[hi].right].trace == j {
					for _, cyc := range hits[hi].cycles {
						add(cyc)
					}
					hi++
				}
				ptr[li] = hi
			}
		}
	}
	return chains, err
}
