package core

import (
	"strings"
	"testing"
	"time"

	"weseer/internal/solver"
)

// TestStatsRenderGolden pins the exact terminal rendering of the funnel
// line, including the engine-counter line added with the observability
// work. Update the golden strings deliberately — downstream scripts
// scrape this output.
func TestStatsRenderGolden(t *testing.T) {
	full := Stats{
		Traces: 6, Pairs: 192, PairsAfterPhase1: 16,
		CoarseCycles: 826, LockFiltered: 214, GroupsSolved: 127,
		SolverCalls: 124, MemoHits: 3,
		SolverSAT: 18, SolverUNSAT: 108, SolverUnknown: 1,
		Engine: solver.Stats{
			Decisions: 411, Conflicts: 37, Propagations: 1902,
			LearnedClauses: 35, Backjumps: 29, TheoryCalls: 260,
		},
		Parallelism: 4,
		SolverTime:  1520 * time.Millisecond,
	}
	want := "phases: 6 traces, 192 txn pairs -> 16 after txn-level filter -> " +
		"826 coarse cycles -> 214 lock-filtered, 127 groups solved via " +
		"124 solver calls, 3 memo hits (SAT 18 / UNSAT 108 / UNKNOWN 1) " +
		"in 1.52s on 4 workers\n" +
		"engine: 411 decisions, 37 conflicts, 1902 propagations, " +
		"35 learned clauses, 29 backjumps, 260 theory calls"
	if got := full.Render(); got != want {
		t.Errorf("full stats render:\n got: %q\nwant: %q", got, want)
	}

	// Without engine activity (e.g. a coarse-only run) the engine line
	// must be absent entirely, not rendered as zeros.
	bare := Stats{Traces: 2, Pairs: 4, PairsAfterPhase1: 4, CoarseCycles: 9}
	want = "phases: 2 traces, 4 txn pairs -> 4 after txn-level filter -> " +
		"9 coarse cycles -> 0 lock-filtered, 0 groups solved via " +
		"0 solver calls (SAT 0 / UNSAT 0 / UNKNOWN 0) in 0s"
	if got := bare.Render(); got != want {
		t.Errorf("bare stats render:\n got: %q\nwant: %q", got, want)
	}

	// An indexed enumeration surfaces its posting-list work as a bracket
	// segment; zero probes (naive loop, or SkipPhase1) must render
	// nothing, which the two cases above already pin.
	indexed := Stats{
		Traces: 2, Pairs: 4, PairsAfterPhase1: 2, CoarseCycles: 9,
		IndexProbes: 7,
	}
	want = "phases: 2 traces, 4 txn pairs -> 2 after txn-level filter -> " +
		"9 coarse cycles -> 0 lock-filtered, 0 groups solved via " +
		"0 solver calls (SAT 0 / UNSAT 0 / UNKNOWN 0) in 0s " +
		"[index: 7 postings probed]"
	if got := indexed.Render(); got != want {
		t.Errorf("indexed stats render:\n got: %q\nwant: %q", got, want)
	}

	// Distinct deadlock fingerprints surface as their own bracket
	// segment; zero (no reports) must render nothing, which the cases
	// above pin.
	fingerprinted := Stats{
		Traces: 2, Pairs: 4, PairsAfterPhase1: 2, CoarseCycles: 9,
		Fingerprints: 3,
	}
	want = "phases: 2 traces, 4 txn pairs -> 2 after txn-level filter -> " +
		"9 coarse cycles -> 0 lock-filtered, 0 groups solved via " +
		"0 solver calls (SAT 0 / UNSAT 0 / UNKNOWN 0) in 0s " +
		"[fingerprints: 3 distinct]"
	if got := fingerprinted.Render(); got != want {
		t.Errorf("fingerprinted stats render:\n got: %q\nwant: %q", got, want)
	}
}

// TestResultRenderIncludesEngineLine checks the engine counters surface
// in a real analysis report.
func TestResultRenderIncludesEngineLine(t *testing.T) {
	res := New(fig1Schema(), Options{}).Analyze(pipelineTraces())
	if res.Stats.SolverCalls == 0 {
		t.Fatal("workload made no solver calls")
	}
	out := res.Render()
	for _, want := range []string{"\nengine: ", " decisions, ", " theory calls"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
