package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/trace"
)

// Differential tests for the indexed, parallel phase-1/2 enumeration:
// the serial quadratic loop (WithoutEnumIndex) is the oracle, and the
// indexed path must reproduce its report byte-for-byte at any worker
// count, on seeded random corpora as well as the curated workloads.

// randSchema is a pool of simple keyed tables for the random corpora.
func randSchema(tables int) *schema.Schema {
	s := schema.New()
	for i := 0; i < tables; i++ {
		s.AddTable(fmt.Sprintf("T%d", i)).
			Col("ID", schema.Int).
			Col("V", schema.Int).
			PrimaryKey("ID")
	}
	return s
}

// randTraces builds a seeded random corpus over the T* tables: each
// trace is one API with 1–2 transactions of 1–3 statements, each a
// point SELECT or a point UPDATE on a random table. Sparse by
// construction — most instance pairs do not conflict — which is
// exactly the regime the inverted index exists for.
func randTraces(rng *rand.Rand, traces, tables int) []*trace.Trace {
	out := make([]*trace.Trace, 0, traces)
	for n := 0; n < traces; n++ {
		tr := &trace.Trace{API: fmt.Sprintf("Rnd%03d", n)}
		txns := 1 + rng.Intn(2)
		seq := 0
		for id := 1; id <= txns; id++ {
			txn := &trace.Txn{ID: id, Committed: true}
			stmts := 1 + rng.Intn(3)
			for k := 0; k < stmts; k++ {
				tbl := fmt.Sprintf("T%d", rng.Intn(tables))
				key := smt.NewVar(fmt.Sprintf("k%d", seq), smt.SortInt)
				var st *trace.Stmt
				if rng.Intn(3) == 0 { // 1-in-3 statements write
					st = mkStmt(seq, fmt.Sprintf(`UPDATE %s SET V = ? WHERE ID = ?`, tbl),
						[]smt.Expr{smt.Int(int64(rng.Intn(5))), key}, nil)
				} else {
					st = mkStmt(seq, fmt.Sprintf(`SELECT * FROM %s t WHERE t.ID = ?`, tbl),
						[]smt.Expr{key},
						&trace.Result{Cols: []string{"t.ID", "t.V"}, Sym: [][]smt.Var{{
							{Name: fmt.Sprintf("res%d.row0.t.ID", seq), S: smt.SortInt},
							{Name: fmt.Sprintf("res%d.row0.t.V", seq), S: smt.SortInt},
						}}})
				}
				st.TxnID = id
				tr.Inputs = append(tr.Inputs, trace.Input{
					Name: key.Name, Sort: smt.SortInt, Concrete: smt.IntValue(int64(seq + 1)),
				})
				txn.Stmts = append(txn.Stmts, st)
				seq++
			}
			tr.Txns = append(tr.Txns, txn)
		}
		out = append(out, tr)
	}
	return out
}

// comparable strips the fields that legitimately differ between the
// naive and indexed paths: wall times, worker count, and the index's
// own probe counter (zero for the oracle by definition).
func comparable(s Stats) Stats {
	s = s.WithoutTimings()
	s.IndexProbes = 0
	return s
}

// diffRun asserts that the indexed enumeration at the given worker
// counts reproduces the naive loop's report byte-for-byte under the
// same extra options.
func diffRun(t *testing.T, scm *schema.Schema, traces []*trace.Trace, workerCounts []int, extra ...Option) {
	t.Helper()
	naive, err := NewAnalyzer(scm, append([]Option{WithoutEnumIndex(), WithParallelism(1)}, extra...)...).
		AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		ix, err := NewAnalyzer(scm, append([]Option{WithParallelism(workers)}, extra...)...).
			AnalyzeContext(context.Background(), traces)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(naive.Deadlocks, ix.Deadlocks) {
			t.Fatalf("p%d: indexed deadlocks differ from naive oracle (%d vs %d)",
				workers, len(ix.Deadlocks), len(naive.Deadlocks))
		}
		if comparable(naive.Stats) != comparable(ix.Stats) {
			t.Fatalf("p%d: funnel differs:\nnaive:   %+v\nindexed: %+v",
				workers, comparable(naive.Stats), comparable(ix.Stats))
		}
		for i, d := range naive.Deadlocks {
			if d.Render() != ix.Deadlocks[i].Render() {
				t.Fatalf("p%d: deadlock %d renders differently", workers, i)
			}
		}
		if naive.Stats.IndexProbes != 0 {
			t.Fatalf("naive oracle walked the index: %+v", naive.Stats)
		}
	}
}

// TestEnumDifferentialCurated runs the oracle comparison on the curated
// fine-mode workload — full SMT discharge, so the SAT-representative
// choice (which depends on within-chain cycle order) is covered.
func TestEnumDifferentialCurated(t *testing.T) {
	diffRun(t, fig1Schema(), pipelineTraces(), []int{1, 4, 16})
}

// TestEnumDifferentialRandom sweeps seeded random corpora in coarse
// mode (phases 1–2 + dedup dominate; the solver adds nothing to the
// surface under test) across several worker counts.
func TestEnumDifferentialRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tables := 4 + rng.Intn(5)
			traces := randTraces(rng, 20+rng.Intn(21), tables)
			diffRun(t, randSchema(tables), traces, []int{1, 4, 16}, WithCoarseOnly())
		})
	}
}

// TestEnumDifferentialRandomFine covers a smaller random corpus end to
// end, SMT discharge included.
func TestEnumDifferentialRandomFine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	traces := randTraces(rng, 10, 4)
	diffRun(t, randSchema(4), traces, []int{1, 4})
}

// TestEnumDifferentialAblations pins the oracle equivalence under the
// interacting options: SkipPhase1 (the indexed path must fall back to
// full suffix enumeration, not the index) and the Phase-0 prescreen
// (whose shape cache the parallel path precomputes serially).
func TestEnumDifferentialAblations(t *testing.T) {
	t.Run("skip-phase1", func(t *testing.T) {
		diffRun(t, fig1Schema(), pipelineTraces(), []int{1, 4}, WithoutPhase1())
	})
	t.Run("prescreen", func(t *testing.T) {
		diffRun(t, fig1Schema(), pipelineTraces(), []int{1, 4}, WithPrescreen())
	})
	t.Run("max-cycles", func(t *testing.T) {
		diffRun(t, fig1Schema(), pipelineTraces(), []int{1, 4}, WithMaxCyclesPerPair(2))
	})
}

// TestEnumIndexSurvivorsExact cross-checks the inverted index against
// the phase-1 predicate directly: for random signature sets, the
// candidate list must equal the brute-force conflicts() survivors, in
// ordinal order.
func TestEnumIndexSurvivorsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tables := []string{"a", "b", "c", "d", "e"}
	randSig := func() txnSig {
		sig := txnSig{acc: map[string]bool{}, wr: map[string]bool{}}
		for _, tbl := range tables {
			switch rng.Intn(4) {
			case 0: // write (writes imply access)
				sig.acc[tbl], sig.wr[tbl] = true, true
			case 1: // read only
				sig.acc[tbl] = true
			}
		}
		return sig
	}
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(40)
		sigs := make([]txnSig, n)
		for i := range sigs {
			sigs[i] = randSig()
		}
		ix := buildConflictIndex(sigs)
		s := newEnumScratch(n)
		for li := range sigs {
			startOrd := rng.Intn(n)
			var want []int
			for r := startOrd; r < n; r++ {
				if sigs[li].conflicts(sigs[r]) {
					want = append(want, r)
				}
			}
			got, probes := ix.candidates(sigs[li], startOrd, s)
			if !reflect.DeepEqual(append([]int{}, got...), append([]int{}, want...)) {
				t.Fatalf("round %d left %d start %d: candidates = %v, want %v", round, li, startOrd, got, want)
			}
			if len(got) > 0 && probes == 0 {
				t.Fatalf("round %d: survivors without probes", round)
			}
		}
	}
}

// TestEnumScratchEpochWraparound forces the uint32 epoch through zero
// and checks stale marks cannot alias into a fresh query.
func TestEnumScratchEpochWraparound(t *testing.T) {
	sigs := []txnSig{
		{acc: map[string]bool{"x": true, "y": true}, wr: map[string]bool{"x": true, "y": true}},
		{acc: map[string]bool{"x": true}, wr: map[string]bool{"x": true}},
	}
	ix := buildConflictIndex(sigs)
	s := newEnumScratch(len(sigs))
	s.epoch = ^uint32(0) - 1 // two bumps away from wrapping to zero
	for i := 0; i < 4; i++ {
		got, _ := ix.candidates(sigs[0], 0, s)
		if want := []int{0, 1}; !reflect.DeepEqual(append([]int{}, got...), want) {
			t.Fatalf("bump %d (epoch %d): candidates = %v, want %v", i, s.epoch, got, want)
		}
	}
}

// TestEnumIndexedCancellation mirrors TestAnalyzeContextCancellation on
// the indexed path: a pre-canceled context must surface
// context.Canceled from inside the worker fan-out without discharging
// anything.
func TestEnumIndexedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := NewAnalyzer(fig1Schema(), WithParallelism(workers)).
			AnalyzeContext(ctx, pipelineTraces())
		if err != context.Canceled {
			t.Fatalf("p%d: err = %v, want context.Canceled", workers, err)
		}
		if res == nil {
			t.Fatalf("p%d: canceled run must still return the partial result", workers)
		}
		if res.Stats.SolverCalls != 0 {
			t.Errorf("p%d: pre-canceled context still made %d solver calls", workers, res.Stats.SolverCalls)
		}
	}
}

// TestEnumIndexProbesDeterministic pins the new funnel counter: probes
// are nonzero on the indexed path, stable across runs and worker
// counts, and zero when the index is ablated away.
func TestEnumIndexProbesDeterministic(t *testing.T) {
	traces := pipelineTraces()
	base, err := NewAnalyzer(fig1Schema(), WithParallelism(1)).
		AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.IndexProbes == 0 {
		t.Fatal("indexed run recorded no probes")
	}
	for _, workers := range []int{1, 4, 16} {
		res, err := NewAnalyzer(fig1Schema(), WithParallelism(workers)).
			AnalyzeContext(context.Background(), traces)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.IndexProbes != base.Stats.IndexProbes {
			t.Errorf("p%d: IndexProbes = %d, want %d", workers, res.Stats.IndexProbes, base.Stats.IndexProbes)
		}
	}
	for name, opt := range map[string]Option{"naive": WithoutEnumIndex(), "skip-phase1": WithoutPhase1()} {
		res, err := NewAnalyzer(fig1Schema(), WithParallelism(1), opt).
			AnalyzeContext(context.Background(), traces)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.IndexProbes != 0 {
			t.Errorf("%s: IndexProbes = %d, want 0", name, res.Stats.IndexProbes)
		}
	}
}

// benchCorpus is a fixed 160-trace sparse corpus for the enumeration
// microbenchmarks: big enough that the quadratic pair loop dominates in
// coarse mode.
func benchCorpus() (*schema.Schema, []*trace.Trace) {
	rng := rand.New(rand.NewSource(17))
	const tables = 12
	return randSchema(tables), randTraces(rng, 160, tables)
}

func benchEnum(b *testing.B, opts ...Option) {
	scm, traces := benchCorpus()
	opts = append(opts, WithCoarseOnly())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAnalyzer(scm, opts...).AnalyzeContext(context.Background(), traces); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumNaive(b *testing.B) {
	benchEnum(b, WithoutEnumIndex(), WithParallelism(1))
}

func BenchmarkEnumIndexed(b *testing.B) {
	benchEnum(b, WithParallelism(1))
}

func BenchmarkEnumIndexedParallel(b *testing.B) {
	benchEnum(b, WithParallelism(4))
}
