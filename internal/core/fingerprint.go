package core

// Deadlock fingerprints: a stable, run-independent identity for each
// diagnosed deadlock, used by the history store (internal/history) to
// dedup re-ingested corpora and roll incidents up across days of
// service operation.
//
// The fingerprint is a hash of the canonical cycle — the involved API
// pair, the sorted table/row resources, and each side's hold/wait
// statement templates with their triggering code locations, oriented
// mirror-invariantly (the two sides are sorted, so T1/T2 role
// assignment does not matter). Everything hashed is part of the
// deterministic report surface: reports are byte-identical at any
// parallelism and with the enumeration index on or off, so the
// fingerprint is too. The anti-pattern class (Table II entry, planted
// f-class) is a function of the cycle and therefore folded in
// implicitly; classifiers attach the class label alongside, they never
// feed the hash.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Fingerprint returns the deadlock's stable 16-hex-digit identity.
// Equivalent cycles — same API pair, same hold/wait statement templates
// at the same code locations, same table resources, in either T1/T2
// orientation — fingerprint identically across runs, trace input order,
// parallelism settings, and enumeration modes.
func (d *Deadlock) Fingerprint() string {
	c := d.Cycle
	// Each side: who it is, what it holds (statement template + trigger
	// site), where it waits, and the table order it acquires across the
	// cycle's two C-edges. Mirrors dedupKey's canonicalization so one
	// report maps to exactly one fingerprint.
	side1 := fmt.Sprintf("%s|%s>%s|%s>%s",
		d.APIs[0], stmtKey(c.S1a), stmtKey(c.S1b), c.Table2, c.Table1)
	side2 := fmt.Sprintf("%s|%s>%s|%s>%s",
		d.APIs[1], stmtKey(c.S2a), stmtKey(c.S2b), c.Table1, c.Table2)
	if side2 < side1 {
		side1, side2 = side2, side1
	}
	resources := []string{c.Table1, c.Table2}
	sort.Strings(resources)

	h := fnv.New64a()
	h.Write([]byte(side1))
	h.Write([]byte{0})
	h.Write([]byte(side2))
	h.Write([]byte{0})
	h.Write([]byte(strings.Join(resources, ",")))
	return fmt.Sprintf("%016x", h.Sum64())
}

// DistinctFingerprints counts the distinct fingerprints among the
// result's deadlocks (the history store's event count for this run).
func (r *Result) DistinctFingerprints() int {
	seen := map[string]bool{}
	for _, d := range r.Deadlocks {
		seen[d.Fingerprint()] = true
	}
	return len(seen)
}
