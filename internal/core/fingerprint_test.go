package core

import (
	"context"
	"regexp"
	"strings"
	"testing"
)

// fingerprintRun runs the pipeline workload and returns the report's
// fingerprints in report order.
func fingerprintRun(t *testing.T, opts ...Option) []string {
	t.Helper()
	res, err := NewAnalyzer(fig1Schema(), opts...).
		AnalyzeContext(context.Background(), pipelineTraces())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocks) == 0 {
		t.Fatal("workload produced no deadlocks")
	}
	fps := make([]string, len(res.Deadlocks))
	for i, d := range res.Deadlocks {
		fps[i] = d.Fingerprint()
	}
	if res.Stats.Fingerprints != res.DistinctFingerprints() {
		t.Errorf("Stats.Fingerprints = %d, DistinctFingerprints() = %d",
			res.Stats.Fingerprints, res.DistinctFingerprints())
	}
	return fps
}

// TestFingerprintDeterminism pins the satellite guarantee: fingerprints
// are byte-identical at parallelism 1/4/16 and invariant under the
// enumeration-index ablation (-enum-index=false).
func TestFingerprintDeterminism(t *testing.T) {
	base := fingerprintRun(t, WithParallelism(1))
	for _, fp := range base {
		if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(fp) {
			t.Fatalf("malformed fingerprint %q", fp)
		}
	}
	for _, workers := range []int{4, 16} {
		got := fingerprintRun(t, WithParallelism(workers))
		if strings.Join(got, ",") != strings.Join(base, ",") {
			t.Errorf("parallelism %d changed fingerprints:\n got %v\nwant %v",
				workers, got, base)
		}
	}
	naive := fingerprintRun(t, WithParallelism(4), WithoutEnumIndex())
	if strings.Join(naive, ",") != strings.Join(base, ",") {
		t.Errorf("-enum-index=false changed fingerprints:\n got %v\nwant %v", naive, base)
	}
}

// TestFingerprintMirrorInvariant verifies the fingerprint ignores the
// T1/T2 role assignment: swapping a deadlock's two sides (APIs, cycle
// statements, and tables together) fingerprints identically.
func TestFingerprintMirrorInvariant(t *testing.T) {
	res, err := NewAnalyzer(fig1Schema()).
		AnalyzeContext(context.Background(), pipelineTraces())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocks) == 0 {
		t.Fatal("no deadlocks")
	}
	for i, d := range res.Deadlocks {
		m := &Deadlock{
			APIs: [2]string{d.APIs[1], d.APIs[0]},
			Cycle: Cycle{
				T1: d.Cycle.T2, T2: d.Cycle.T1,
				S1a: d.Cycle.S2a, S1b: d.Cycle.S2b,
				S2a: d.Cycle.S1a, S2b: d.Cycle.S1b,
				Table1: d.Cycle.Table2, Table2: d.Cycle.Table1,
			},
		}
		if d.Fingerprint() != m.Fingerprint() {
			t.Errorf("deadlock %d: mirror fingerprint %s != %s", i, m.Fingerprint(), d.Fingerprint())
		}
	}
}

// TestFingerprintDistinguishes checks fingerprints separate the
// workload's distinct reports: the mapping report→fingerprint must be
// injective over the pipeline corpus.
func TestFingerprintDistinguishes(t *testing.T) {
	res, err := NewAnalyzer(fig1Schema()).
		AnalyzeContext(context.Background(), pipelineTraces())
	if err != nil {
		t.Fatal(err)
	}
	byFP := map[string]string{}
	for _, d := range res.Deadlocks {
		fp := d.Fingerprint()
		if prev, ok := byFP[fp]; ok && prev != d.Key {
			t.Errorf("fingerprint collision %s between distinct keys:\n%s\n%s", fp, prev, d.Key)
		}
		byFP[fp] = d.Key
	}
	if len(byFP) != res.Stats.Fingerprints {
		t.Errorf("distinct fingerprints %d != Stats.Fingerprints %d", len(byFP), res.Stats.Fingerprints)
	}
}
