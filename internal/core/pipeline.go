package core

// Stage 3 of the diagnosis pipeline: fine-grained discharge of the
// coarse cycles enumerated by stage 2, and the deterministic merge.
//
// Candidates sharing a dedup key form one chain, evaluated in order
// until a cycle is confirmed SAT (remaining duplicates fold into the
// report's Count, exactly as the serial analyzer folded them). Chains
// are independent — no candidate's outcome can influence another
// chain — so they are distributed over a bounded worker pool, while the
// per-chain order preserves the serial semantics. Outcomes are merged
// per chain index, so the assembled report is byte-identical to a
// single-worker run.

import (
	"context"
	"sync"
	"time"

	"weseer/internal/lockmodel"
	"weseer/internal/obs"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/solver"
	"weseer/internal/staticlint"
	"weseer/internal/trace"
)

// chain is the ordered list of coarse cycles sharing one dedup key.
type chain struct {
	key    string
	cycles []Cycle
}

// chainOutcome is one chain's contribution to the report and stats.
type chainOutcome struct {
	deadlock *Deadlock

	lockFiltered   int
	prescreenSaved int
	groupsSolved   int
	solverCalls    int
	memoHits       int
	sat, unsat     int
	unknown        int
	solverTime     time.Duration
	// engine aggregates the CDCL(T) counters of the solver calls this
	// chain owned (memo hits charge nothing — the owning call counted).
	engine solver.Stats

	err error
}

// discharge runs phase 3 over the chains on `workers` goroutines and
// merges the outcomes in chain order. In coarse-only mode every chain
// becomes a report without any solving.
func (a *Analyzer) discharge(ctx context.Context, chains []*chain, workers int, res *Result) error {
	o := a.opts.Observer
	if a.opts.CoarseOnly {
		if o != nil {
			o.Progress.SetPhase("coarse-report")
		}
		for _, ch := range chains {
			cyc := ch.cycles[0]
			res.Deadlocks = append(res.Deadlocks, &Deadlock{
				Key:   ch.key,
				APIs:  [2]string{cyc.T1.API, cyc.T2.API},
				Cycle: cyc,
				Count: len(ch.cycles),
			})
		}
		return ctx.Err()
	}

	var memo *memoTable
	if !a.opts.DisableMemo {
		memo = newMemoTable()
	}
	if workers > len(chains) {
		workers = len(chains)
	}
	var spFine obs.Span
	if o != nil {
		o.Progress.SetPhase("fine")
		o.Progress.SetChains(int64(len(chains)))
		o.P().ChainsTotal.Set(int64(len(chains)))
		o.P().ChainsDone.Set(0)
		spFine = o.StartSpan(0, "discharge",
			obs.Int("chains", len(chains)), obs.Int("workers", workers))
		defer func() { spFine.End() }()
	}
	outcomes := make([]chainOutcome, len(chains))
	if workers <= 1 {
		for i, ch := range chains {
			outcomes[i] = a.evalChain(ctx, ch, memo, 1)
			noteChainDone(o, &outcomes[i])
			if outcomes[i].err != nil {
				break
			}
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for i := range jobs {
					outcomes[i] = a.evalChain(ctx, chains[i], memo, tid)
					noteChainDone(o, &outcomes[i])
				}
			}(w + 1)
		}
	feed:
		for i := range chains {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}

	// Stage 4: merge per chain index — chain order is the serial
	// first-occurrence order, so aggregation is deterministic.
	var err error
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil && err == nil {
			err = o.err
		}
		res.Stats.LockFiltered += o.lockFiltered
		res.Stats.PrescreenSaved += o.prescreenSaved
		res.Stats.GroupsSolved += o.groupsSolved
		res.Stats.SolverCalls += o.solverCalls
		res.Stats.MemoHits += o.memoHits
		res.Stats.SolverSAT += o.sat
		res.Stats.SolverUNSAT += o.unsat
		res.Stats.SolverUnknown += o.unknown
		res.Stats.SolverTime += o.solverTime
		res.Stats.Engine.Add(o.engine)
		if o.deadlock != nil {
			res.Deadlocks = append(res.Deadlocks, o.deadlock)
		}
	}
	if err == nil {
		err = ctx.Err()
	}
	return err
}

// noteChainDone publishes one discharged chain's outcome to the
// observer: progress and the funnel counters, field for field the same
// additions the stage-4 merge performs on res.Stats, so after a run
// /metrics and Result.Stats agree. No-op without an observer.
func noteChainDone(o *obs.Observer, out *chainOutcome) {
	if o == nil {
		return
	}
	o.Progress.ChainDone()
	m := o.P()
	m.ChainsDone.Add(1)
	m.LockFiltered.Add(int64(out.lockFiltered))
	m.PrescreenSaved.Add(int64(out.prescreenSaved))
	m.GroupsSolved.Add(int64(out.groupsSolved))
	m.SolverCalls.Add(int64(out.solverCalls))
	m.MemoHits.Add(int64(out.memoHits))
	m.SAT.Add(int64(out.sat))
	m.UNSAT.Add(int64(out.unsat))
	m.Unknown.Add(int64(out.unknown))
}

// evalChain discharges one chain on logical worker tid: candidates are
// checked in enumeration order until one is confirmed SAT; later
// duplicates fold into Count.
func (a *Analyzer) evalChain(ctx context.Context, ch *chain, memo *memoTable, tid int) chainOutcome {
	var out chainOutcome
	if o := a.opts.Observer; o != nil {
		sp := o.StartSpan(tid, "chain", obs.Int("cycles", len(ch.cycles)))
		defer func() {
			sp.End(obs.Bool("deadlock", out.deadlock != nil),
				obs.Int("groups_solved", out.groupsSolved),
				obs.Int("memo_hits", out.memoHits))
		}()
	}
	for idx, cyc := range ch.cycles {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		d := a.fineCheckOne(ctx, cyc, ch.key, memo, tid, &out)
		if out.err != nil {
			return out
		}
		if d != nil {
			d.Count = len(ch.cycles) - idx
			out.deadlock = d
			return out
		}
	}
	return out
}

// fineCheckOne is phase 3 for one coarse cycle: quick lock-collision
// filter, Phase-0 group refutation, then (memoized) SMT solving of
// conflict + path conditions. It returns a Deadlock when the cycle is
// confirmed SAT.
func (a *Analyzer) fineCheckOne(ctx context.Context, cyc Cycle, key string, memo *memoTable, tid int, out *chainOutcome) *Deadlock {
	// Quick filter: each C-edge needs a modeled lock collision.
	if !a.opts.SkipLockFilter {
		if !lockmodel.PotentialConflict(cyc.S1b, cyc.S2a, a.scm, a.opts.UseConcretePlans) ||
			!lockmodel.PotentialConflict(cyc.S2b, cyc.S1a, a.scm, a.opts.UseConcretePlans) {
			out.lockFiltered++
			return nil
		}
	}

	// Phase-0 group refutation: when every statement of the cycle has a
	// static shape and one C-edge joins provably disjoint rigid point
	// rows, the conflict condition is trivially UNSAT — skip the solver.
	if a.ps != nil {
		s1a, ok1 := a.ps.stmts[cyc.S1a]
		s1b, ok2 := a.ps.stmts[cyc.S1b]
		s2a, ok3 := a.ps.stmts[cyc.S2a]
		s2b, ok4 := a.ps.stmts[cyc.S2b]
		if ok1 && ok2 && ok3 && ok4 &&
			!staticlint.CyclePossible(s1a, s1b, s2a, s2b, a.scm) {
			out.prescreenSaved++
			return nil
		}
	}

	formula := a.cycleFormula(cyc)
	out.groupsSolved++

	lim := a.opts.Solver
	if o := a.opts.Observer; o != nil {
		lim.Obs = o
		lim.ObsTID = tid
	}
	var sres solver.Result
	if memo != nil {
		var hit bool
		sres, hit = memo.solve(ctx, formula, lim, out)
		if hit {
			out.memoHits++
		}
	} else {
		start := time.Now()
		sres = solver.SolveCtx(ctx, formula, lim)
		out.solverTime += time.Since(start)
		out.solverCalls++
		out.engine.Add(sres.Stats)
	}
	if err := ctx.Err(); err != nil {
		// A canceled solve reports UNKNOWN; don't let it skew the funnel.
		out.groupsSolved--
		out.err = err
		return nil
	}

	switch sres.Status {
	case solver.SAT:
		out.sat++
		return &Deadlock{
			Key:     key,
			APIs:    [2]string{cyc.T1.API, cyc.T2.API},
			Cycle:   cyc,
			Formula: formula,
			Model:   sres.Model,
			Count:   1,
		}
	case solver.UNSAT:
		out.unsat++
	default:
		// Timeouts are treated as "no deadlock reported" (Sec. III-B).
		out.unknown++
	}
	return nil
}

// cycleFormula conjoins both C-edges' conflict conditions with the path
// conditions recorded before each transaction's last involved statement
// (Sec. V-B, fine-grained phase; the worked example is Fig. 9).
//
// Path conditions sharing no variables (transitively) with the conflict
// conditions are dropped: the concrete execution that produced the trace
// satisfies them by construction, so they cannot change satisfiability —
// a cone-of-influence reduction that keeps solver formulas small.
func (a *Analyzer) cycleFormula(cyc Cycle) smt.Expr {
	edge1 := a.edgeCondCached(cyc.S1b, cyc.S2a, "r1.")
	edge2 := a.edgeCondCached(cyc.S2b, cyc.S1a, "r2.")

	last1 := maxSeq(cyc.S1a, cyc.S1b)
	last2 := maxSeq(cyc.S2a, cyc.S2b)
	var pcs []smt.Expr
	pcs = append(pcs, cyc.T1.Trace.PathCondsBefore(last1)...)
	pcs = append(pcs, cyc.T2.Trace.PathCondsBefore(last2)...)
	parts := []smt.Expr{edge1, edge2}
	parts = append(parts, coneOfInfluence(smt.VarSet(edge1, edge2), pcs)...)
	return smt.And(parts...)
}

// coneOfInfluence keeps the conditions transitively connected to the seed
// variable set.
func coneOfInfluence(seed map[string]smt.Sort, conds []smt.Expr) []smt.Expr {
	type entry struct {
		cond smt.Expr
		vars map[string]smt.Sort
		in   bool
	}
	entries := make([]entry, len(conds))
	for i, c := range conds {
		entries[i] = entry{cond: c, vars: smt.VarSet(c)}
	}
	for changed := true; changed; {
		changed = false
		for i := range entries {
			if entries[i].in {
				continue
			}
			touch := false
			for v := range entries[i].vars {
				if _, ok := seed[v]; ok {
					touch = true
					break
				}
			}
			if !touch {
				continue
			}
			entries[i].in = true
			changed = true
			for v, s := range entries[i].vars {
				seed[v] = s
			}
		}
	}
	var out []smt.Expr
	for _, e := range entries {
		if e.in {
			out = append(out, e.cond)
		}
	}
	return out
}

// edgeKey identifies one C-edge condition build: the ordered statement
// pair and the unified-row variable prefix. UseConcretePlans is fixed
// per Analyzer, so it is not part of the key.
type edgeKey struct {
	x, y      *trace.Stmt
	rowPrefix string
}

// edgeCondCached builds — or reuses — the conflict condition of one
// C-edge. Cycles overlap heavily: every cycle sharing a C-edge used to
// rebuild an identical condition expression from scratch. The cache
// builds each distinct edge once per Analyze call and interns the
// result, so downstream canonicalization hits its per-node memo on the
// shared subtrees. Fresh range variables are prefixed per edge
// ("rng.r1.", "rng.r2."), which keeps the built condition independent
// of whatever the cycle's other edge minted.
func (a *Analyzer) edgeCondCached(x, y *trace.Stmt, rowPrefix string) smt.Expr {
	k := edgeKey{x: x, y: y, rowPrefix: rowPrefix}
	if e, ok := a.edgeMemo.Load(k); ok {
		if o := a.opts.Observer; o != nil {
			o.P().EdgeCacheHits.Inc()
		}
		return e.(smt.Expr)
	}
	nm := lockmodel.NewNamer("rng." + rowPrefix)
	e := smt.Intern(edgeCond(x, y, a.scm, rowPrefix, nm, a.opts.UseConcretePlans))
	// Hit/build attribution is metrics-only and may race benignly between
	// workers building the same edge — it never reaches the report.
	if o := a.opts.Observer; o != nil {
		o.P().EdgeCacheBuilds.Inc()
	}
	// Concurrent workers may race to build the same edge; both builds are
	// identical and interned, so either value is fine to keep.
	actual, _ := a.edgeMemo.LoadOrStore(k, e)
	return actual.(smt.Expr)
}

// edgeCond builds the conflict condition of one C-edge, trying both
// writer orientations and disjoining the satisfiable directions.
func edgeCond(x, y *trace.Stmt, scm *schema.Schema, rowPrefix string, nm *lockmodel.Namer, usePlans bool) smt.Expr {
	var alts []smt.Expr
	for _, o := range [2][2]*trace.Stmt{{x, y}, {y, x}} {
		w, r := o[0], o[1]
		wt := w.Parsed.WriteTable()
		if wt == "" {
			continue
		}
		accessed := false
		for _, t := range r.Parsed.Tables() {
			if t == wt {
				accessed = true
				break
			}
		}
		if !accessed {
			continue
		}
		alts = append(alts, lockmodel.GenConflictCond(w, r, scm, wt, rowPrefix, nm, usePlans))
	}
	return smt.Or(alts...)
}
