package core

import (
	"context"
	"reflect"
	"testing"

	"weseer/internal/trace"
)

// finishOrderVariant is finishOrderTrace under another API name and code
// location: its cycles get distinct dedup keys (so they are discharged
// as separate groups) while their conflict formulas stay alpha-
// equivalent — exactly the repetition the memo table exists for.
func finishOrderVariant(api string, lineOff int) *trace.Trace {
	tr := finishOrderTrace()
	tr.API = api
	for _, txn := range tr.Txns {
		for _, st := range txn.Stmts {
			st.Trigger.Frames[0].Line += lineOff
		}
	}
	return tr
}

// pipelineTraces is a workload with several deadlocking APIs, so phase 3
// has real chains to discharge and alpha-equivalent formulas to memoize.
func pipelineTraces() []*trace.Trace {
	return []*trace.Trace{
		finishOrderTrace(), mergeTrace(), readOnlyTrace(),
		finishOrderVariant("Reorder", 100),
		finishOrderVariant("GiftCheckout", 200),
	}
}

func TestParallelReportDeterministic(t *testing.T) {
	// The acceptance bar for the parallel pipeline: at any worker count
	// the report is identical to the serial run — same deadlocks in the
	// same order, same models, same funnel counters, byte-identical
	// rendering.
	traces := pipelineTraces()
	serial, err := NewAnalyzer(fig1Schema(), WithParallelism(1)).
		AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Deadlocks) == 0 {
		t.Fatal("workload should produce deadlocks")
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := NewAnalyzer(fig1Schema(), WithParallelism(workers)).
			AnalyzeContext(context.Background(), traces)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Deadlocks, par.Deadlocks) {
			t.Fatalf("parallelism=%d: deadlocks differ from serial run", workers)
		}
		if serial.Stats.WithoutTimings() != par.Stats.WithoutTimings() {
			t.Fatalf("parallelism=%d: funnel stats differ: %+v vs %+v",
				workers, serial.Stats.WithoutTimings(), par.Stats.WithoutTimings())
		}
		// Result.Render includes wall times, which legitimately vary;
		// everything below the stats line must be byte-identical.
		for i, d := range serial.Deadlocks {
			if d.Render() != par.Deadlocks[i].Render() {
				t.Fatalf("parallelism=%d: deadlock %d renders differently", workers, i)
			}
		}
	}
}

func TestMemoServesRepeatedFormulas(t *testing.T) {
	traces := pipelineTraces()
	memo, err := NewAnalyzer(fig1Schema(), WithParallelism(1)).
		AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewAnalyzer(fig1Schema(), WithParallelism(1), WithoutMemo()).
		AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}

	// Duplicated traces guarantee alpha-equivalent conflict formulas, so
	// the memo table must convert some solver calls into hits; the split
	// must account for every discharged group.
	if memo.Stats.MemoHits == 0 {
		t.Error("expected memo hits on a workload with duplicated traces")
	}
	if got := memo.Stats.SolverCalls + memo.Stats.MemoHits; got != memo.Stats.GroupsSolved {
		t.Errorf("SolverCalls+MemoHits = %d, want GroupsSolved = %d", got, memo.Stats.GroupsSolved)
	}
	if memo.Stats.SolverCalls >= plain.Stats.SolverCalls {
		t.Errorf("memoized run used %d solver calls, unmemoized %d — no saving",
			memo.Stats.SolverCalls, plain.Stats.SolverCalls)
	}

	// Memoization is an optimization, never a semantic change: the same
	// deadlocks are confirmed with the same verdict split. (The concrete
	// models may differ — the solver picks an assignment for the canonical
	// formula rather than the original — but both must exist for every
	// confirmed deadlock.)
	if plain.Stats.MemoHits != 0 || plain.Stats.SolverCalls != plain.Stats.GroupsSolved {
		t.Errorf("ablated run should solve every group directly: %+v", plain.Stats)
	}
	if memo.Stats.SolverSAT != plain.Stats.SolverSAT ||
		memo.Stats.SolverUNSAT != plain.Stats.SolverUNSAT ||
		memo.Stats.GroupsSolved != plain.Stats.GroupsSolved {
		t.Fatalf("verdict split differs: %+v vs %+v", memo.Stats, plain.Stats)
	}
	if len(memo.Deadlocks) != len(plain.Deadlocks) {
		t.Fatalf("deadlock counts differ: %d vs %d", len(memo.Deadlocks), len(plain.Deadlocks))
	}
	for i, d := range memo.Deadlocks {
		p := plain.Deadlocks[i]
		if d.Key != p.Key || d.Count != p.Count || !reflect.DeepEqual(d.APIs, p.APIs) {
			t.Errorf("deadlock %d differs: %s vs %s", i, d.Key, p.Key)
		}
		if (d.Model == nil) != (p.Model == nil) {
			t.Errorf("deadlock %d: model presence differs", i)
		}
	}
}

func TestAnalyzeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewAnalyzer(fig1Schema(), WithParallelism(4)).
		AnalyzeContext(ctx, pipelineTraces())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run must still return the partial result")
	}
	// Nothing may be reported as confirmed after an immediate cancel: the
	// discharge stage never ran to completion.
	if res.Stats.SolverCalls != 0 {
		t.Errorf("pre-canceled context still made %d solver calls", res.Stats.SolverCalls)
	}
}
