package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"weseer/internal/smt"
	"weseer/internal/solver"
	"weseer/internal/staticlint"
	"weseer/internal/trace"
)

// Report rendering: for each confirmed deadlock WeSEER reports the
// involved APIs, the satisfying assignment of API inputs and database
// state (usable to reproduce the deadlock), the SQL statements forming
// the hold-and-wait cycle, and each statement's triggering code location
// (Fig. 2's output box).

// Result is a full diagnosis report: the confirmed deadlocks plus the
// per-phase funnel statistics.
type Result struct {
	Deadlocks []*Deadlock
	Stats     Stats
	// CanonicalOrder is the cross-API lock-order canonicalization over
	// the run's transaction shapes (nil unless StaticPrescreen): the
	// global acquisition order plus the ranked feedback-edge reorder
	// suggestions — the f9–f11-style fixes that kill whole inversion
	// families at once. Computed serially during Phase 0, so it is
	// deterministic at any parallelism.
	CanonicalOrder *staticlint.CanonicalOrder
	// Metrics is the observer's flattened metrics snapshot taken when the
	// run finished (nil without WithObserver): the same counters /metrics
	// serves, frozen into the report so a run's telemetry travels with
	// it. Purely observational — not part of the deterministic report
	// surface (it includes timing histograms).
	Metrics map[string]float64
}

// Stats is the per-phase diagnosis funnel: how many candidates entered
// and left each stage, and where the wall time went.
type Stats struct {
	Traces           int
	Pairs            int // transaction instance pairs considered
	PairsAfterPhase1 int // pairs surviving the transaction-level filter
	CoarseCycles     int // SC-graph deadlock cycles found in phase 2

	// IndexProbes counts the posting-list entries the inverted
	// table-conflict index walked to produce the phase-1 survivors —
	// the work the indexed enumeration does in place of the naive
	// loop's Pairs signature probes. Zero when DisableEnumIndex (or
	// SkipPhase1) bypasses the index. Deterministic at any parallelism.
	IndexProbes  int
	LockFiltered int // cycles discarded by the lock-collision test
	GroupsSolved int // cycles discharged in the fine phase (memoized or not)

	// Phase-0 static prescreen counters (zero unless StaticPrescreen).
	PrescreenPairs       int // pairs examined by the static pair screen
	PrescreenPairsPruned int // pairs discarded before cycle enumeration
	PrescreenSaved       int // solver calls avoided by group refutation

	// Fingerprints is the number of distinct deadlock fingerprints among
	// the reported deadlocks (see Deadlock.Fingerprint) — the number of
	// history-store events this run contributes. Deterministic at any
	// parallelism; zero when nothing was reported.
	Fingerprints int

	// Memoization split of GroupsSolved: SolverCalls discharges actually
	// ran the solver (one per distinct canonical formula); MemoHits were
	// served from the memo table. SolverCalls + MemoHits == GroupsSolved
	// unless memoization is disabled (then MemoHits is 0).
	SolverCalls int
	MemoHits    int

	SolverSAT     int
	SolverUNSAT   int
	SolverUnknown int

	// Engine aggregates the CDCL(T) engine counters over the run's actual
	// solver calls (decisions, conflicts, propagations, learned clauses,
	// backjumps, theory checks). Memo hits contribute nothing — each
	// distinct canonical formula is counted exactly once by the call that
	// solved it — so the sums are deterministic at any parallelism.
	Engine solver.Stats

	// Parallelism is the worker count the run used for the enumeration
	// and discharge pools; the timings below depend on it, the rest of
	// the report does not.
	Parallelism int
	SolverTime  time.Duration // cumulative in-solver time across workers
	EnumTime    time.Duration // wall time of phases 1–2 (pool + merge)
	FineTime    time.Duration // wall time of phase 3 + merge
}

// WithoutTimings returns a copy with the fields that legitimately vary
// between runs — wall times and the worker count — zeroed, leaving
// exactly the deterministic funnel counters. Two runs of the same
// analysis must agree on the result of this method at any parallelism.
func (s Stats) WithoutTimings() Stats {
	s.Parallelism = 0
	s.SolverTime = 0
	s.EnumTime = 0
	s.FineTime = 0
	return s
}

// Render formats the analysis result for developers.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WeSEER deadlock report: %d potential deadlock(s)\n", len(r.Deadlocks))
	fmt.Fprintf(&b, "%s\n", r.Stats.Render())
	b.WriteString(RenderSuggestions(r.CanonicalOrder))
	for i, d := range r.Deadlocks {
		fmt.Fprintf(&b, "\n=== Deadlock %d ===\n%s", i+1, d.Render())
	}
	return b.String()
}

// RenderSuggestions formats the canonical order's ranked reorder
// suggestions for the text report ("" when there are none or co is nil).
func RenderSuggestions(co *staticlint.CanonicalOrder) string {
	if co == nil || len(co.Suggestions) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ranked lock-order fixes (canonical order over %d templates, %d conflicting edge(s)):\n",
		co.Templates, len(co.Suggestions))
	for _, s := range co.Suggestions {
		fmt.Fprintf(&b, "  #%d acquire %s before %s (%d violating vs %d supporting template(s))\n",
			s.Rank, s.To, s.From, s.Violators, s.Supporters)
		for _, v := range s.Sites {
			site := "(template)"
			if v.File != "" {
				site = fmt.Sprintf("%s:%d", v.File, v.Line)
			}
			fmt.Fprintf(&b, "      reorder %s at %s\n", v.API, site)
		}
	}
	return b.String()
}

// Render formats the per-phase statistics.
func (s Stats) Render() string {
	idx := ""
	if s.IndexProbes > 0 {
		idx = fmt.Sprintf(" [index: %d postings probed]", s.IndexProbes)
	}
	fps := ""
	if s.Fingerprints > 0 {
		fps = fmt.Sprintf(" [fingerprints: %d distinct]", s.Fingerprints)
	}
	pre := ""
	if s.PrescreenPairs > 0 || s.PrescreenSaved > 0 {
		pre = fmt.Sprintf(" [prescreen: %d pairs screened, %d pruned, %d solver calls saved]",
			s.PrescreenPairs, s.PrescreenPairsPruned, s.PrescreenSaved)
	}
	memo := ""
	if s.MemoHits > 0 {
		memo = fmt.Sprintf(", %d memo hits", s.MemoHits)
	}
	par := ""
	if s.Parallelism > 1 {
		par = fmt.Sprintf(" on %d workers", s.Parallelism)
	}
	engine := ""
	if s.Engine != (solver.Stats{}) {
		e := s.Engine
		engine = fmt.Sprintf(
			"\nengine: %d decisions, %d conflicts, %d propagations, %d learned clauses, %d backjumps, %d theory calls",
			e.Decisions, e.Conflicts, e.Propagations, e.LearnedClauses, e.Backjumps, e.TheoryCalls)
	}
	return fmt.Sprintf(
		"phases: %d traces, %d txn pairs -> %d after txn-level filter -> %d coarse cycles -> %d lock-filtered, %d groups solved via %d solver calls%s (SAT %d / UNSAT %d / UNKNOWN %d) in %v%s%s%s%s%s",
		s.Traces, s.Pairs, s.PairsAfterPhase1, s.CoarseCycles,
		s.LockFiltered, s.GroupsSolved, s.SolverCalls, memo,
		s.SolverSAT, s.SolverUNSAT, s.SolverUnknown, s.SolverTime.Round(1000), par, idx, fps, pre, engine)
}

// Render formats one deadlock.
func (d *Deadlock) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "APIs: %s -- %s (%d coarse cycle(s) folded)\n", d.APIs[0], d.APIs[1], d.Count)
	fmt.Fprintf(&b, "fingerprint: %s\n", d.Fingerprint())
	c := d.Cycle
	fmt.Fprintf(&b, "hold-and-wait cycle over tables [%s, %s]:\n", c.Table1, c.Table2)
	renderSide(&b, "T1", d.APIs[0], c.S1a, c.S1b)
	renderSide(&b, "T2", d.APIs[1], c.S2a, c.S2b)
	if d.Model != nil {
		fmt.Fprintf(&b, "reproducing assignment (API inputs and DB state):\n")
		renderModel(&b, d.Model, c)
	}
	return b.String()
}

func renderSide(b *strings.Builder, name, api string, holds, waits *trace.Stmt) {
	fmt.Fprintf(b, "  %s (%s):\n", name, api)
	fmt.Fprintf(b, "    holds lock from stmt #%d: %s\n", holds.Seq, holds.SQL)
	fmt.Fprintf(b, "      triggered at: %s\n", holds.Trigger.Top())
	fmt.Fprintf(b, "    waits at stmt #%d: %s\n", waits.Seq, waits.SQL)
	fmt.Fprintf(b, "      triggered at: %s\n", waits.Trigger.Top())
	if holds.Trigger.Top() != holds.Sent.Top() && holds.Sent.Top().File != "" {
		fmt.Fprintf(b, "      (stmt #%d was sent at %s — write-behind flush)\n", holds.Seq, holds.Sent.Top())
	}
}

// renderModel prints the model restricted to meaningful variables: the
// two traces' API inputs and result aliases, skipping internal range-
// enlargement variables.
func renderModel(b *strings.Builder, m *smt.Model, c Cycle) {
	inputs := map[string]bool{}
	for _, tr := range []*trace.Trace{c.T1.Trace, c.T2.Trace} {
		for _, in := range tr.Inputs {
			inputs[in.Name] = true
		}
	}
	names := make([]string, 0, len(m.Vars))
	for n := range m.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		switch {
		case inputs[n]:
			fmt.Fprintf(b, "    input  %s = %s\n", n, m.Vars[n])
		case strings.Contains(n, ".res"):
			fmt.Fprintf(b, "    dbrow  %s = %s\n", n, m.Vars[n])
		}
	}
}
