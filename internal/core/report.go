package core

import (
	"fmt"
	"sort"
	"strings"

	"weseer/internal/smt"
	"weseer/internal/trace"
)

// Report rendering: for each confirmed deadlock WeSEER reports the
// involved APIs, the satisfying assignment of API inputs and database
// state (usable to reproduce the deadlock), the SQL statements forming
// the hold-and-wait cycle, and each statement's triggering code location
// (Fig. 2's output box).

// Render formats the analysis result for developers.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WeSEER deadlock report: %d potential deadlock(s)\n", len(r.Deadlocks))
	fmt.Fprintf(&b, "%s\n", r.Stats.Render())
	for i, d := range r.Deadlocks {
		fmt.Fprintf(&b, "\n=== Deadlock %d ===\n%s", i+1, d.Render())
	}
	return b.String()
}

// Render formats the per-phase statistics.
func (s Stats) Render() string {
	pre := ""
	if s.PrescreenPairs > 0 || s.PrescreenSaved > 0 {
		pre = fmt.Sprintf(" [prescreen: %d pairs screened, %d pruned, %d solver calls saved]",
			s.PrescreenPairs, s.PrescreenPairsPruned, s.PrescreenSaved)
	}
	return fmt.Sprintf(
		"phases: %d traces, %d txn pairs -> %d after txn-level filter -> %d coarse cycles -> %d lock-filtered, %d groups solved (SAT %d / UNSAT %d / UNKNOWN %d) in %v%s",
		s.Traces, s.Pairs, s.PairsAfterPhase1, s.CoarseCycles,
		s.LockFiltered, s.GroupsSolved, s.SolverSAT, s.SolverUNSAT, s.SolverUnknown, s.SolverTime.Round(1000), pre)
}

// Render formats one deadlock.
func (d *Deadlock) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "APIs: %s -- %s (%d coarse cycle(s) folded)\n", d.APIs[0], d.APIs[1], d.Count)
	c := d.Cycle
	fmt.Fprintf(&b, "hold-and-wait cycle over tables [%s, %s]:\n", c.Table1, c.Table2)
	renderSide(&b, "T1", d.APIs[0], c.S1a, c.S1b)
	renderSide(&b, "T2", d.APIs[1], c.S2a, c.S2b)
	if d.Model != nil {
		fmt.Fprintf(&b, "reproducing assignment (API inputs and DB state):\n")
		renderModel(&b, d.Model, c)
	}
	return b.String()
}

func renderSide(b *strings.Builder, name, api string, holds, waits *trace.Stmt) {
	fmt.Fprintf(b, "  %s (%s):\n", name, api)
	fmt.Fprintf(b, "    holds lock from stmt #%d: %s\n", holds.Seq, holds.SQL)
	fmt.Fprintf(b, "      triggered at: %s\n", holds.Trigger.Top())
	fmt.Fprintf(b, "    waits at stmt #%d: %s\n", waits.Seq, waits.SQL)
	fmt.Fprintf(b, "      triggered at: %s\n", waits.Trigger.Top())
	if holds.Trigger.Top() != holds.Sent.Top() && holds.Sent.Top().File != "" {
		fmt.Fprintf(b, "      (stmt #%d was sent at %s — write-behind flush)\n", holds.Seq, holds.Sent.Top())
	}
}

// renderModel prints the model restricted to meaningful variables: the
// two traces' API inputs and result aliases, skipping internal range-
// enlargement variables.
func renderModel(b *strings.Builder, m *smt.Model, c Cycle) {
	inputs := map[string]bool{}
	for _, tr := range []*trace.Trace{c.T1.Trace, c.T2.Trace} {
		for _, in := range tr.Inputs {
			inputs[in.Name] = true
		}
	}
	names := make([]string, 0, len(m.Vars))
	for n := range m.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		switch {
		case inputs[n]:
			fmt.Fprintf(b, "    input  %s = %s\n", n, m.Vars[n])
		case strings.Contains(n, ".res"):
			fmt.Fprintf(b, "    dbrow  %s = %s\n", n, m.Vars[n])
		}
	}
}
