package core

import (
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Edit hints: the bridge from a diagnosed cycle to the mechanical fix
// classes the fix-verification loop can apply (internal/fixapply). Each
// hint names one rewrite family from the paper's Table II fix column;
// the mapping is derived purely from the cycle's hold/wait statement
// shapes, so it is deterministic and needs no app-specific knowledge.

// EditHint is one applicable-edit family for a diagnosed deadlock.
type EditHint uint8

const (
	// HintReorder: both cycle sides hold and wait on plain writes — an
	// acquisition-order inversion fixable by reordering the statements
	// (feedback-edge inversion, fixes f6/f10/f11).
	HintReorder EditHint = iota + 1
	// HintUpsert: a side holds a point-primary-key SELECT and waits on an
	// INSERT into the same table — the check-then-insert / merge-on-absent
	// shape fixable by a single atomic UPSERT (fixes f1/f2).
	HintUpsert
	// HintFlushBarrier: a held write was physically sent at a different
	// site than it was triggered (ORM write-behind flush reordering) — an
	// explicit flush restores program order (fix f4).
	HintFlushBarrier
	// HintProbeRead: a held SELECT (range scan, or a point read later
	// upgraded) blocks a peer's write — moving the read into a separate
	// auto-commit probe transaction releases its locks before the writes
	// begin (fixes f3/f5/f7/f8/f9).
	HintProbeRead
)

// String returns the hint's fix-plan label.
func (h EditHint) String() string {
	switch h {
	case HintReorder:
		return "reorder"
	case HintUpsert:
		return "upsert"
	case HintFlushBarrier:
		return "flush-barrier"
	case HintProbeRead:
		return "probe-read"
	}
	return "unknown"
}

// EditHints classifies the deadlock's cycle into the applicable-edit
// families, deduplicated and in EditHint order. scm resolves primary
// keys for the point-select test; it must be the schema the deadlock was
// diagnosed against.
func (d *Deadlock) EditHints(scm *schema.Schema) []EditHint {
	seen := map[EditHint]bool{}
	for _, side := range [][2]*trace.Stmt{
		{d.Cycle.S1a, d.Cycle.S1b},
		{d.Cycle.S2a, d.Cycle.S2b},
	} {
		if h := sideHint(side[0], side[1], scm); h != 0 {
			seen[h] = true
		}
	}
	var out []EditHint
	for h := HintReorder; h <= HintProbeRead; h++ {
		if seen[h] {
			out = append(out, h)
		}
	}
	return out
}

// sideHint classifies one cycle side: holds is the statement whose lock
// the peer waits on, waits is where this transaction blocks.
func sideHint(holds, waits *trace.Stmt, scm *schema.Schema) EditHint {
	if sel, ok := holds.Parsed.(*sqlast.Select); ok {
		w := waits.Parsed.WriteTable()
		if w != "" && w == sel.From.Table && isPointPK(sel, scm) {
			switch waits.Parsed.Kind() {
			case sqlast.KindInsert, sqlast.KindUpsert:
				return HintUpsert
			}
		}
		return HintProbeRead
	}
	if holds.IsWrite() {
		ht, st := holds.Trigger.Top(), holds.Sent.Top()
		if st.File != "" && st != ht {
			return HintFlushBarrier
		}
		return HintReorder
	}
	return 0
}

// isPointPK reports whether the select filters on an equality over the
// FROM table's single-column primary key — the shape whose shared lock
// covers exactly the row (or gap) the check-then-insert later writes.
func isPointPK(sel *sqlast.Select, scm *schema.Schema) bool {
	t := scm.Table(sel.From.Table)
	if t == nil {
		return false
	}
	pk := t.PrimaryIndex()
	if pk == nil || len(pk.Columns) != 1 {
		return false
	}
	for _, p := range sel.Where.Preds {
		if p.IsNull || p.Op != smt.EQ {
			continue
		}
		if colOf(p.L) == pk.Columns[0] || colOf(p.R) == pk.Columns[0] {
			return true
		}
	}
	return false
}

func colOf(o sqlast.Operand) string {
	if o.Kind == sqlast.Col {
		return o.Column
	}
	return ""
}
