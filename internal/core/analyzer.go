// Package core implements WeSEER's deadlock analyzer — the paper's
// primary contribution (Sec. V): the SC-graph over collected transaction
// traces, and the three-phase diagnosis that funnels candidate deadlocks
// through progressively more precise (and more expensive) filters:
//
//  1. Transaction-level: only transaction pairs whose table read/write
//     signatures can form a conflict cycle survive.
//  2. Coarse-grained: SC-graph deadlock cycles with table-level C-edges,
//     as STEPDAD/REDACT build them — the baseline that reports 18,384
//     cycles on the paper's workload.
//  3. Fine-grained: per-cycle conflict conditions from row/range-lock
//     modeling (Alg. 2/3), conjoined with the traces' path conditions and
//     discharged by the SMT solver; only SAT cycles are reported, with a
//     satisfying assignment of API inputs and database state.
package core

import (
	"fmt"
	"sort"
	"time"

	"weseer/internal/lockmodel"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/solver"
	"weseer/internal/staticlint"
	"weseer/internal/trace"
)

// Options configure an analysis run.
type Options struct {
	// CoarseOnly stops after phase 2 and reports raw coarse cycles — the
	// STEPDAD/REDACT baseline mode (Sec. VII-B).
	CoarseOnly bool
	// SkipPhase1 disables the transaction-level filter (ablation).
	SkipPhase1 bool
	// SkipLockFilter disables the quick lock-collision test before SMT
	// solving (ablation: every coarse cycle goes to the solver).
	SkipLockFilter bool
	// UseConcretePlans restricts lock modeling to each statement's
	// recorded execution plan instead of every possible index — the
	// paper's Sec. V-D future-work refinement, removing the
	// all-join-orders source of false positives.
	UseConcretePlans bool
	// StaticPrescreen enables Phase-0: before lock generation and SMT
	// discharge, candidate pairs and cycle groups are screened against
	// the template-level lock-order analysis (internal/staticlint).
	// Statements pinned to provably disjoint rigid point keys cannot
	// collide, so refuted groups skip the solver entirely. The screen is
	// an over-approximation: it only discards candidates whose conflict
	// condition the solver would find trivially UNSAT, never a
	// satisfiable cycle.
	StaticPrescreen bool
	// Solver bounds each satisfiability check.
	Solver solver.Limits
	// MaxCyclesPerPair caps coarse-cycle enumeration per transaction pair
	// (0 = unlimited).
	MaxCyclesPerPair int
}

// Analyzer runs deadlock diagnosis over collected traces.
type Analyzer struct {
	scm  *schema.Schema
	opts Options
	ps   *prescreenState // Phase-0 state, set per Analyze call
}

// prescreenState caches the static shapes Phase-0 screens against, so
// each transaction instance is abstracted once per run.
type prescreenState struct {
	txns  map[*trace.Txn]staticlint.TxnShape
	stmts map[*trace.Stmt]staticlint.StmtShape
}

// shape abstracts (and caches) one transaction instance. ShapeFromTxn
// walks txn.Stmts in order, so shape.Stmts[k] describes txn.Stmts[k].
func (ps *prescreenState) shape(api string, txn *trace.Txn) staticlint.TxnShape {
	if sh, ok := ps.txns[txn]; ok {
		return sh
	}
	sh := staticlint.ShapeFromTxn(api, txn)
	ps.txns[txn] = sh
	for k, st := range txn.Stmts {
		ps.stmts[st] = sh.Stmts[k]
	}
	return sh
}

// New returns an analyzer for a schema.
func New(scm *schema.Schema, opts Options) *Analyzer {
	return &Analyzer{scm: scm, opts: opts}
}

// instance is one renamed transaction instance.
type instance struct {
	API    string
	Prefix string
	Txn    *trace.Txn
	Trace  *trace.Trace // renamed trace, for path conditions
}

// Cycle is one SC-graph deadlock cycle across two transaction instances:
// T1 holds the lock acquired at S1a and waits at S1b; T2 holds at S2a and
// waits at S2b; C-edges connect (S1b, S2a) and (S2b, S1a).
type Cycle struct {
	T1, T2             *instance
	S1a, S1b, S2a, S2b *trace.Stmt
	Table1, Table2     string // conflict tables of the two C-edges
}

// Deadlock is one confirmed (or, in coarse-only mode, potential)
// deadlock.
type Deadlock struct {
	// Key canonically identifies the deadlock across duplicate cycles.
	Key string
	// APIs names the two involved API traces.
	APIs [2]string
	// Cycle is a representative deadlock cycle.
	Cycle Cycle
	// Formula is the solved conjunction (fine phase only).
	Formula smt.Expr
	// Model is the satisfying assignment: API inputs and database state
	// that reproduce the deadlock.
	Model *smt.Model
	// Count is the number of coarse cycles folded into this report.
	Count int
}

// Stats counts work per phase.
type Stats struct {
	Traces           int
	Pairs            int // transaction instance pairs considered
	PairsAfterPhase1 int // pairs surviving the transaction-level filter
	CoarseCycles     int // SC-graph deadlock cycles found in phase 2
	LockFiltered     int // cycles discarded by the lock-collision test
	GroupsSolved     int // deduplicated cycle groups sent to the solver

	// Phase-0 static prescreen counters (zero unless StaticPrescreen).
	PrescreenPairs       int // pairs examined by the static pair screen
	PrescreenPairsPruned int // pairs discarded before cycle enumeration
	PrescreenSaved       int // solver calls avoided by group refutation
	SolverSAT            int
	SolverUNSAT          int
	SolverUnknown        int
	SolverTime           time.Duration
}

// Result is the outcome of Analyze.
type Result struct {
	Deadlocks []*Deadlock
	Stats     Stats
}

// Analyze runs the three-phase diagnosis over the traces. Each trace
// contributes two renamed instances ("A1.", "A2."), and every cross-
// instance transaction pair — including pairs drawn from two different
// APIs' traces — is examined, matching the paper's setup.
func (a *Analyzer) Analyze(traces []*trace.Trace) *Result {
	res := &Result{}
	res.Stats.Traces = len(traces)

	// Pre-rename each trace once per role.
	inst1 := make([]*trace.Trace, len(traces))
	inst2 := make([]*trace.Trace, len(traces))
	for i, tr := range traces {
		inst1[i] = tr.Rename("A1.")
		inst2[i] = tr.Rename("A2.")
	}

	groups := map[string]*Deadlock{}
	var order []string

	a.ps = nil
	if a.opts.StaticPrescreen {
		a.ps = &prescreenState{
			txns:  map[*trace.Txn]staticlint.TxnShape{},
			stmts: map[*trace.Stmt]staticlint.StmtShape{},
		}
	}

	for i := range traces {
		for j := i; j < len(traces); j++ {
			for _, t1 := range inst1[i].Txns {
				for _, t2 := range inst2[j].Txns {
					p1 := &instance{API: traces[i].API, Prefix: "A1.", Txn: t1, Trace: inst1[i]}
					p2 := &instance{API: traces[j].API, Prefix: "A2.", Txn: t2, Trace: inst2[j]}
					res.Stats.Pairs++
					if !a.opts.SkipPhase1 && !txnLevelConflict(t1, t2) {
						continue
					}
					res.Stats.PairsAfterPhase1++
					if a.ps != nil {
						res.Stats.PrescreenPairs++
						sh1 := a.ps.shape(traces[i].API, t1)
						sh2 := a.ps.shape(traces[j].API, t2)
						if !staticlint.PairDeadlockPossible(sh1, sh2, a.scm) {
							res.Stats.PrescreenPairsPruned++
							continue
						}
					}
					a.analyzePair(p1, p2, res, groups, &order)
				}
			}
		}
	}

	for _, k := range order {
		res.Deadlocks = append(res.Deadlocks, groups[k])
	}
	sort.SliceStable(res.Deadlocks, func(x, y int) bool {
		return res.Deadlocks[x].Key < res.Deadlocks[y].Key
	})
	return res
}

// txnLevelConflict is phase 1: the pair can form a transaction conflict
// cycle iff each transaction writes a table the other accesses.
func txnLevelConflict(t1, t2 *trace.Txn) bool {
	acc1, wr1 := t1.Tables()
	acc2, wr2 := t2.Tables()
	oneWay := false
	for t := range wr1 {
		if acc2[t] {
			oneWay = true
			break
		}
	}
	if !oneWay {
		return false
	}
	for t := range wr2 {
		if acc1[t] {
			return true
		}
	}
	return false
}

// coarseConflictTable is the coarse-grained C-edge test: a common table
// at least one statement writes. It returns the table ("" if none).
func coarseConflictTable(s, t *trace.Stmt) string {
	for _, ts := range s.Parsed.Tables() {
		for _, tt := range t.Parsed.Tables() {
			if ts != tt {
				continue
			}
			if s.Parsed.WriteTable() == ts || t.Parsed.WriteTable() == ts {
				return ts
			}
		}
	}
	return ""
}

// analyzePair runs phases 2 and 3 for one transaction-instance pair.
func (a *Analyzer) analyzePair(p1, p2 *instance, res *Result, groups map[string]*Deadlock, order *[]string) {
	s1, s2 := p1.Txn.Stmts, p2.Txn.Stmts

	// Phase 2: coarse C-edges, then deadlock cycles. A cycle needs T1 to
	// hold a lock from an earlier statement while waiting at a later one
	// (and symmetrically for T2): S1a < S1b and S2a < S2b in execution
	// order, with C-edges (S1b, S2a) and (S2b, S1a).
	type cedge struct{ i, j int }
	edgeTable := map[cedge]string{}
	var edges []cedge
	for i := range s1 {
		for j := range s2 {
			if tab := coarseConflictTable(s1[i], s2[j]); tab != "" {
				edgeTable[cedge{i, j}] = tab
				edges = append(edges, cedge{i, j})
			}
		}
	}
	count := 0
	for _, e1 := range edges {
		for _, e2 := range edges {
			// e1 = (S1b, S2a), e2 = (S1a, S2b).
			i1b, i2a := e1.i, e1.j
			i1a, i2b := e2.i, e2.j
			if !(i1a < i1b && i2a < i2b) {
				continue
			}
			if a.opts.MaxCyclesPerPair > 0 && count >= a.opts.MaxCyclesPerPair {
				return
			}
			count++
			res.Stats.CoarseCycles++
			cyc := Cycle{
				T1: p1, T2: p2,
				S1a: s1[i1a], S1b: s1[i1b],
				S2a: s2[i2a], S2b: s2[i2b],
				Table1: edgeTable[e1], Table2: edgeTable[cedge{i1a, i2b}],
			}
			a.fineCheck(cyc, res, groups, order)
		}
	}
}

// fineCheck is phase 3 for one coarse cycle: quick lock-collision filter,
// group deduplication, then SMT solving of conflict + path conditions.
func (a *Analyzer) fineCheck(cyc Cycle, res *Result, groups map[string]*Deadlock, order *[]string) {
	key := cyc.dedupKey()
	if d, ok := groups[key]; ok {
		d.Count++
		return
	}
	if a.opts.CoarseOnly {
		d := &Deadlock{Key: key, APIs: [2]string{cyc.T1.API, cyc.T2.API}, Cycle: cyc, Count: 1}
		groups[key] = d
		*order = append(*order, key)
		return
	}

	// Quick filter: each C-edge needs a modeled lock collision.
	if !a.opts.SkipLockFilter {
		if !lockmodel.PotentialConflict(cyc.S1b, cyc.S2a, a.scm, a.opts.UseConcretePlans) ||
			!lockmodel.PotentialConflict(cyc.S2b, cyc.S1a, a.scm, a.opts.UseConcretePlans) {
			res.Stats.LockFiltered++
			return
		}
	}

	// Phase-0 group refutation: when every statement of the cycle has a
	// static shape and one C-edge joins provably disjoint rigid point
	// rows, the conflict condition is trivially UNSAT — skip the solver.
	if a.ps != nil {
		s1a, ok1 := a.ps.stmts[cyc.S1a]
		s1b, ok2 := a.ps.stmts[cyc.S1b]
		s2a, ok3 := a.ps.stmts[cyc.S2a]
		s2b, ok4 := a.ps.stmts[cyc.S2b]
		if ok1 && ok2 && ok3 && ok4 &&
			!staticlint.CyclePossible(s1a, s1b, s2a, s2b, a.scm) {
			res.Stats.PrescreenSaved++
			return
		}
	}

	formula := a.cycleFormula(cyc)
	res.Stats.GroupsSolved++
	start := time.Now()
	sres := solver.SolveLimits(formula, a.opts.Solver)
	res.Stats.SolverTime += time.Since(start)
	switch sres.Status {
	case solver.SAT:
		res.Stats.SolverSAT++
		d := &Deadlock{
			Key:     key,
			APIs:    [2]string{cyc.T1.API, cyc.T2.API},
			Cycle:   cyc,
			Formula: formula,
			Model:   sres.Model,
			Count:   1,
		}
		groups[key] = d
		*order = append(*order, key)
	case solver.UNSAT:
		res.Stats.SolverUNSAT++
	default:
		// Timeouts are treated as "no deadlock reported" (Sec. III-B).
		res.Stats.SolverUnknown++
	}
}

// cycleFormula conjoins both C-edges' conflict conditions with the path
// conditions recorded before each transaction's last involved statement
// (Sec. V-B, fine-grained phase; the worked example is Fig. 9).
//
// Path conditions sharing no variables (transitively) with the conflict
// conditions are dropped: the concrete execution that produced the trace
// satisfies them by construction, so they cannot change satisfiability —
// a cone-of-influence reduction that keeps solver formulas small.
func (a *Analyzer) cycleFormula(cyc Cycle) smt.Expr {
	nm := lockmodel.NewNamer("rng.")
	edge1 := edgeCond(cyc.S1b, cyc.S2a, a.scm, "r1.", nm, a.opts.UseConcretePlans)
	edge2 := edgeCond(cyc.S2b, cyc.S1a, a.scm, "r2.", nm, a.opts.UseConcretePlans)

	last1 := maxSeq(cyc.S1a, cyc.S1b)
	last2 := maxSeq(cyc.S2a, cyc.S2b)
	var pcs []smt.Expr
	pcs = append(pcs, cyc.T1.Trace.PathCondsBefore(last1)...)
	pcs = append(pcs, cyc.T2.Trace.PathCondsBefore(last2)...)
	parts := []smt.Expr{edge1, edge2}
	parts = append(parts, coneOfInfluence(smt.VarSet(edge1, edge2), pcs)...)
	return smt.And(parts...)
}

// coneOfInfluence keeps the conditions transitively connected to the seed
// variable set.
func coneOfInfluence(seed map[string]smt.Sort, conds []smt.Expr) []smt.Expr {
	type entry struct {
		cond smt.Expr
		vars map[string]smt.Sort
		in   bool
	}
	entries := make([]entry, len(conds))
	for i, c := range conds {
		entries[i] = entry{cond: c, vars: smt.VarSet(c)}
	}
	for changed := true; changed; {
		changed = false
		for i := range entries {
			if entries[i].in {
				continue
			}
			touch := false
			for v := range entries[i].vars {
				if _, ok := seed[v]; ok {
					touch = true
					break
				}
			}
			if !touch {
				continue
			}
			entries[i].in = true
			changed = true
			for v, s := range entries[i].vars {
				seed[v] = s
			}
		}
	}
	var out []smt.Expr
	for _, e := range entries {
		if e.in {
			out = append(out, e.cond)
		}
	}
	return out
}

// edgeCond builds the conflict condition of one C-edge, trying both
// writer orientations and disjoining the satisfiable directions.
func edgeCond(x, y *trace.Stmt, scm *schema.Schema, rowPrefix string, nm *lockmodel.Namer, usePlans bool) smt.Expr {
	var alts []smt.Expr
	for _, o := range [2][2]*trace.Stmt{{x, y}, {y, x}} {
		w, r := o[0], o[1]
		wt := w.Parsed.WriteTable()
		if wt == "" {
			continue
		}
		accessed := false
		for _, t := range r.Parsed.Tables() {
			if t == wt {
				accessed = true
				break
			}
		}
		if !accessed {
			continue
		}
		alts = append(alts, lockmodel.GenConflictCond(w, r, scm, wt, rowPrefix, nm, usePlans))
	}
	return smt.Or(alts...)
}

func maxSeq(a, b *trace.Stmt) int {
	if a.Seq > b.Seq {
		return a.Seq
	}
	return b.Seq
}

// dedupKey canonicalizes a cycle so equivalent cycles (including the
// mirror pairing) fold into one reported deadlock.
func (c Cycle) dedupKey() string {
	k1 := fmt.Sprintf("%s|%s>%s|%s>%s", c.T1.API, stmtKey(c.S1a), stmtKey(c.S1b), c.Table2, c.Table1)
	k2 := fmt.Sprintf("%s|%s>%s|%s>%s", c.T2.API, stmtKey(c.S2a), stmtKey(c.S2b), c.Table1, c.Table2)
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	return k1 + "||" + k2
}

func stmtKey(s *trace.Stmt) string {
	top := s.Trigger.Top()
	return fmt.Sprintf("%s@%s:%d", s.SQL, top.File, top.Line)
}
