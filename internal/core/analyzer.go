// Package core implements WeSEER's deadlock analyzer — the paper's
// primary contribution (Sec. V): the SC-graph over collected transaction
// traces, and the three-phase diagnosis that funnels candidate deadlocks
// through progressively more precise (and more expensive) filters:
//
//  1. Transaction-level: only transaction pairs whose table read/write
//     signatures can form a conflict cycle survive.
//  2. Coarse-grained: SC-graph deadlock cycles with table-level C-edges,
//     as STEPDAD/REDACT build them — the baseline that reports 18,384
//     cycles on the paper's workload.
//  3. Fine-grained: per-cycle conflict conditions from row/range-lock
//     modeling (Alg. 2/3), conjoined with the traces' path conditions and
//     discharged by the SMT solver; only SAT cycles are reported, with a
//     satisfying assignment of API inputs and database state.
//
// The diagnosis runs as an explicit staged pipeline: stages 1–2
// enumerate candidate cycles through an inverted table-conflict index
// on a bounded worker pool (enumerate.go) and group them into dedup-key
// chains via an order-preserving merge; stage 3 discharges the chains
// on a worker pool with solver-call memoization (pipeline.go, memo.go);
// stage 4 merges per-chain outcomes in canonical order. The report is
// deterministic — byte identical — at every parallelism setting, and
// identical with the index disabled (DisableEnumIndex).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"weseer/internal/obs"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/staticlint"
	"weseer/internal/trace"
)

// Analyzer runs deadlock diagnosis over collected traces.
type Analyzer struct {
	scm  *schema.Schema
	opts Options
	ps   *prescreenState // Phase-0 state, set per Analyze call
	// edgeMemo caches C-edge conflict conditions per Analyze call: every
	// cycle sharing an edge used to rebuild an identical condition. Keyed
	// by edgeKey; values are interned smt.Expr. Safe for the phase-3
	// workers (sync.Map, and the cached expressions are immutable).
	edgeMemo *sync.Map
}

// prescreenState caches the static shapes Phase-0 screens against, so
// each transaction instance is abstracted once per run. It is populated
// during serial enumeration and only read afterwards, so the phase-3
// workers may consult it without locking.
type prescreenState struct {
	txns  map[*trace.Txn]staticlint.TxnShape
	stmts map[*trace.Stmt]staticlint.StmtShape
}

// shape abstracts (and caches) one transaction instance. ShapeFromTxn
// walks txn.Stmts in order, so shape.Stmts[k] describes txn.Stmts[k].
func (ps *prescreenState) shape(api string, txn *trace.Txn) staticlint.TxnShape {
	if sh, ok := ps.txns[txn]; ok {
		return sh
	}
	sh := staticlint.ShapeFromTxn(api, txn)
	ps.txns[txn] = sh
	for k, st := range txn.Stmts {
		ps.stmts[st] = sh.Stmts[k]
	}
	return sh
}

// instance is one renamed transaction instance.
type instance struct {
	API    string
	Prefix string
	Txn    *trace.Txn
	Trace  *trace.Trace // renamed trace, for path conditions
}

// Cycle is one SC-graph deadlock cycle across two transaction instances:
// T1 holds the lock acquired at S1a and waits at S1b; T2 holds at S2a and
// waits at S2b; C-edges connect (S1b, S2a) and (S2b, S1a).
type Cycle struct {
	T1, T2             *instance
	S1a, S1b, S2a, S2b *trace.Stmt
	Table1, Table2     string // conflict tables of the two C-edges
}

// Deadlock is one confirmed (or, in coarse-only mode, potential)
// deadlock.
type Deadlock struct {
	// Key canonically identifies the deadlock across duplicate cycles.
	Key string
	// APIs names the two involved API traces.
	APIs [2]string
	// Cycle is a representative deadlock cycle.
	Cycle Cycle
	// Formula is the solved conjunction (fine phase only).
	Formula smt.Expr
	// Model is the satisfying assignment: API inputs and database state
	// that reproduce the deadlock.
	Model *smt.Model
	// Count is the number of coarse cycles folded into this report.
	Count int
}

// Analyze runs the three-phase diagnosis over the traces.
//
// Deprecated: use AnalyzeContext, which supports cancellation and
// reports it as an error.
func (a *Analyzer) Analyze(traces []*trace.Trace) *Result {
	res, _ := a.AnalyzeContext(context.Background(), traces)
	return res
}

// AnalyzeContext runs the three-phase diagnosis over the traces. Each
// trace contributes two renamed instances ("A1.", "A2."), and every
// cross-instance transaction pair — including pairs drawn from two
// different APIs' traces — is examined, matching the paper's setup.
//
// Phase 3 runs on Options.Parallelism concurrent workers (default
// GOMAXPROCS); the returned report does not depend on the worker count
// or scheduling. When ctx is canceled mid-run the partial result
// gathered so far is returned together with ctx.Err().
func (a *Analyzer) AnalyzeContext(ctx context.Context, traces []*trace.Trace) (*Result, error) {
	res := &Result{}
	res.Stats.Traces = len(traces)
	workers := a.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res.Stats.Parallelism = workers

	o := a.opts.Observer
	var spAnalyze, spEnum obs.Span
	if o != nil {
		spAnalyze = o.StartSpan(0, "analyze", obs.Int("traces", len(traces)))
		o.P().Traces.Add(int64(len(traces)))
		o.Progress.SetPhase("enumerate")
		spEnum = o.StartSpan(0, "enumerate", obs.Bool("prescreen", a.opts.StaticPrescreen))
	}

	a.ps = nil
	a.edgeMemo = &sync.Map{}
	if a.opts.StaticPrescreen {
		a.ps = &prescreenState{
			txns:  map[*trace.Txn]staticlint.TxnShape{},
			stmts: map[*trace.Stmt]staticlint.StmtShape{},
		}
		// Cross-API lock-order canonicalization over the whole workload:
		// every transaction instance is one voting template. Serial and
		// input-order driven, so the result — like the rest of the report
		// — is byte-identical at any parallelism.
		var shapes []staticlint.TxnShape
		for _, tr := range traces {
			for _, txn := range tr.Txns {
				shapes = append(shapes, staticlint.ShapeFromTxn(tr.API, txn))
			}
		}
		res.CanonicalOrder = staticlint.CanonicalizeShapes(shapes, a.scm)
	}

	// Stages 1–2: pair filtering and coarse-cycle enumeration, grouped
	// into dedup-key chains in first-occurrence order. The indexed path
	// fans the per-instance work out over the same worker budget phase 3
	// uses; its merge keeps chain order byte-compatible with the naive
	// serial loop (the DisableEnumIndex ablation).
	start := time.Now()
	chains, err := a.enumerate(ctx, traces, workers, res)
	res.Stats.EnumTime = time.Since(start)
	if o != nil {
		spEnum.End(obs.Int("chains", len(chains)),
			obs.Int("coarse_cycles", res.Stats.CoarseCycles),
			obs.Int("index_probes", res.Stats.IndexProbes))
		m := o.P()
		m.Pairs.Add(int64(res.Stats.Pairs))
		m.PairsAfterPhase1.Add(int64(res.Stats.PairsAfterPhase1))
		m.CoarseCycles.Add(int64(res.Stats.CoarseCycles))
		m.IndexProbes.Add(int64(res.Stats.IndexProbes))
		m.PrescreenPairs.Add(int64(res.Stats.PrescreenPairs))
		m.PrescreenPairsPruned.Add(int64(res.Stats.PrescreenPairsPruned))
	}
	if err != nil {
		a.finishObs(o, spAnalyze, res, err)
		return res, err
	}

	// Stage 3 (parallel) + stage 4 (deterministic merge).
	start = time.Now()
	err = a.discharge(ctx, chains, workers, res)
	res.Stats.FineTime = time.Since(start)

	sort.SliceStable(res.Deadlocks, func(x, y int) bool {
		return res.Deadlocks[x].Key < res.Deadlocks[y].Key
	})
	res.Stats.Fingerprints = res.DistinctFingerprints()
	a.finishObs(o, spAnalyze, res, err)
	return res, err
}

// finishObs closes the run's root span, marks the progress phase, and
// snapshots the metrics into the result so a run's telemetry travels
// with its report. No-op without an observer.
func (a *Analyzer) finishObs(o *obs.Observer, spAnalyze obs.Span, res *Result, err error) {
	if o == nil {
		return
	}
	phase := "done"
	if err != nil {
		phase = "aborted"
	}
	o.Progress.SetPhase(phase)
	spAnalyze.End(obs.Int("deadlocks", len(res.Deadlocks)),
		obs.Bool("aborted", err != nil))
	res.Metrics = o.Snapshot()
}

// enumerate runs phases 1 and 2: transaction-pair filtering, the Phase-0
// pair screen, and coarse-cycle enumeration. Candidate cycles sharing a
// dedup key are collected into one chain, preserving global enumeration
// order both across chains and within each chain. The default
// implementation is the indexed, parallel one (enumerate.go); the naive
// quadratic loop remains as the DisableEnumIndex ablation and as the
// oracle the differential tests compare against.
func (a *Analyzer) enumerate(ctx context.Context, traces []*trace.Trace, workers int, res *Result) ([]*chain, error) {
	if !a.opts.DisableEnumIndex {
		return a.enumerateIndexed(ctx, traces, workers, res)
	}
	return a.enumerateNaive(ctx, traces, res)
}

// enumerateNaive probes every cross-instance transaction pair —
// O(instances²) in corpus size, serial.
func (a *Analyzer) enumerateNaive(ctx context.Context, traces []*trace.Trace, res *Result) ([]*chain, error) {
	// Pre-rename each trace once per role, and compute each renamed
	// transaction's table signature once: phase 1 probes every pair, so
	// rebuilding the accessed/written maps per probe is quadratic in
	// corpus size.
	inst1 := make([]*trace.Trace, len(traces))
	inst2 := make([]*trace.Trace, len(traces))
	sigs := map[*trace.Txn]txnSig{}
	for i, tr := range traces {
		inst1[i] = tr.Rename("A1.")
		inst2[i] = tr.Rename("A2.")
		for _, in := range []*trace.Trace{inst1[i], inst2[i]} {
			for _, txn := range in.Txns {
				acc, wr := txn.Tables()
				sigs[txn] = txnSig{acc: acc, wr: wr}
			}
		}
	}

	byKey := map[string]*chain{}
	var chains []*chain
	add := func(cyc Cycle) {
		key := cyc.dedupKey()
		ch, ok := byKey[key]
		if !ok {
			ch = &chain{key: key}
			byKey[key] = ch
			chains = append(chains, ch)
		}
		ch.cycles = append(ch.cycles, cyc)
	}

	for i := range traces {
		for j := i; j < len(traces); j++ {
			for _, t1 := range inst1[i].Txns {
				for _, t2 := range inst2[j].Txns {
					if err := ctx.Err(); err != nil {
						return chains, err
					}
					res.Stats.Pairs++
					if !a.opts.SkipPhase1 && !sigs[t1].conflicts(sigs[t2]) {
						continue
					}
					res.Stats.PairsAfterPhase1++
					if a.ps != nil {
						res.Stats.PrescreenPairs++
						sh1 := a.ps.shape(traces[i].API, t1)
						sh2 := a.ps.shape(traces[j].API, t2)
						if !staticlint.PairDeadlockPossible(sh1, sh2, a.scm) {
							res.Stats.PrescreenPairsPruned++
							continue
						}
					}
					// Instances are only allocated for pairs that survive the
					// filters: on large corpora phase 1 rejects the vast
					// majority of pairs.
					p1 := &instance{API: traces[i].API, Prefix: "A1.", Txn: t1, Trace: inst1[i]}
					p2 := &instance{API: traces[j].API, Prefix: "A2.", Txn: t2, Trace: inst2[j]}
					res.Stats.CoarseCycles += a.enumeratePair(p1, p2, add)
				}
			}
		}
	}
	return chains, nil
}

// txnSig is a transaction's cached table signature for the phase-1
// screen.
type txnSig struct {
	acc, wr map[string]bool
}

// conflicts is phase 1: the pair can form a transaction conflict cycle
// iff each transaction writes a table the other accesses.
func (s txnSig) conflicts(o txnSig) bool {
	oneWay := false
	for t := range s.wr {
		if o.acc[t] {
			oneWay = true
			break
		}
	}
	if !oneWay {
		return false
	}
	for t := range o.wr {
		if s.acc[t] {
			return true
		}
	}
	return false
}

// coarseConflictTable is the coarse-grained C-edge test: a common table
// at least one statement writes. It returns the table ("" if none).
func coarseConflictTable(s, t *trace.Stmt) string {
	for _, ts := range s.Parsed.Tables() {
		for _, tt := range t.Parsed.Tables() {
			if ts != tt {
				continue
			}
			if s.Parsed.WriteTable() == ts || t.Parsed.WriteTable() == ts {
				return ts
			}
		}
	}
	return ""
}

// enumeratePair runs phase 2 for one transaction-instance pair: coarse
// C-edges, then deadlock cycles. A cycle needs T1 to hold a lock from an
// earlier statement while waiting at a later one (and symmetrically for
// T2): S1a < S1b and S2a < S2b in execution order, with C-edges
// (S1b, S2a) and (S2b, S1a). Cycles are passed to emit in enumeration
// order; the returned count is the number emitted.
func (a *Analyzer) enumeratePair(p1, p2 *instance, emit func(Cycle)) int {
	s1, s2 := p1.Txn.Stmts, p2.Txn.Stmts

	type cedge struct{ i, j int }
	edgeTable := map[cedge]string{}
	var edges []cedge
	for i := range s1 {
		for j := range s2 {
			if tab := coarseConflictTable(s1[i], s2[j]); tab != "" {
				edgeTable[cedge{i, j}] = tab
				edges = append(edges, cedge{i, j})
			}
		}
	}
	count := 0
	for _, e1 := range edges {
		for _, e2 := range edges {
			// e1 = (S1b, S2a), e2 = (S1a, S2b).
			i1b, i2a := e1.i, e1.j
			i1a, i2b := e2.i, e2.j
			if !(i1a < i1b && i2a < i2b) {
				continue
			}
			if a.opts.MaxCyclesPerPair > 0 && count >= a.opts.MaxCyclesPerPair {
				return count
			}
			count++
			emit(Cycle{
				T1: p1, T2: p2,
				S1a: s1[i1a], S1b: s1[i1b],
				S2a: s2[i2a], S2b: s2[i2b],
				Table1: edgeTable[e1], Table2: edgeTable[cedge{i1a, i2b}],
			})
		}
	}
	return count
}

func maxSeq(a, b *trace.Stmt) int {
	if a.Seq > b.Seq {
		return a.Seq
	}
	return b.Seq
}

// dedupKey canonicalizes a cycle so equivalent cycles (including the
// mirror pairing) fold into one reported deadlock.
func (c Cycle) dedupKey() string {
	k1 := fmt.Sprintf("%s|%s>%s|%s>%s", c.T1.API, stmtKey(c.S1a), stmtKey(c.S1b), c.Table2, c.Table1)
	k2 := fmt.Sprintf("%s|%s>%s|%s>%s", c.T2.API, stmtKey(c.S2a), stmtKey(c.S2b), c.Table1, c.Table2)
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	return k1 + "||" + k2
}

func stmtKey(s *trace.Stmt) string {
	top := s.Trigger.Top()
	return fmt.Sprintf("%s@%s:%d", s.SQL, top.File, top.Line)
}
