package core

// Solver-call memoization for the parallel discharge stage.
//
// Candidate cycles from different transaction pairs frequently reduce to
// alpha-equivalent conflict formulas (the same statement templates under
// different instance prefixes). The memo table keys on the canonicalized
// formula (smt.Canon), hash-consed via smt.Intern so the lookup is a map
// probe on an interface value rather than a rendered-string compare, and
// solves the canonical expression itself, so the cached verdict —
// including the satisfying model — is independent of which candidate
// happened to compute it. Each caller then translates the
// canonical model back through its own inverse rename map, which keeps
// reports byte-identical whether a verdict came from the solver or the
// cache, at any parallelism.
//
// The table is a singleflight: concurrent callers with the same key block
// on the first caller's ready channel instead of solving twice. With that
// discipline SolverCalls equals the number of distinct canonical keys
// discharged, so the funnel stats are deterministic too.

import (
	"context"
	"sync"
	"time"

	"weseer/internal/smt"
	"weseer/internal/solver"
)

type memoEntry struct {
	ready  chan struct{}
	status solver.Status
	model  *smt.Model // canonical-space model (SAT only)
}

type memoTable struct {
	mu sync.Mutex
	// entries is keyed on the interned canonical formula: structural
	// equality of canonical forms is interface equality after interning.
	entries map[smt.Expr]*memoEntry
}

func newMemoTable() *memoTable {
	return &memoTable{entries: map[smt.Expr]*memoEntry{}}
}

// solve discharges formula through the table. The second return reports a
// memo hit: the verdict was served from an already-computed (or
// concurrently computing) entry without a solver call. The owner of a
// miss charges the call and its wall time to out.
func (m *memoTable) solve(ctx context.Context, formula smt.Expr, lim solver.Limits, out *chainOutcome) (solver.Result, bool) {
	c := smt.Canon(formula)
	key := smt.Intern(c.Expr)
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		select {
		case <-e.ready:
			return translateResult(e, c), true
		case <-ctx.Done():
			return solver.Result{Status: solver.UNKNOWN}, false
		}
	}
	e := &memoEntry{ready: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	start := time.Now()
	sres := solver.SolveCtx(ctx, c.Expr, lim)
	out.solverTime += time.Since(start)
	out.solverCalls++
	out.engine.Add(sres.Stats)

	if ctx.Err() != nil {
		// A canceled solve yields UNKNOWN regardless of the formula —
		// drop the entry rather than poison the table, then wake waiters
		// (they share the canceled ctx and will bail the same way).
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
		e.status = solver.UNKNOWN
		close(e.ready)
		return solver.Result{Status: solver.UNKNOWN}, false
	}

	e.status = sres.Status
	e.model = sres.Model
	close(e.ready)
	return translateResult(e, c), false
}

// translateResult maps an entry's canonical-space verdict back into the
// caller's original variable (and, for constant-abstracted formulas,
// value) space.
func translateResult(e *memoEntry, c smt.CanonResult) solver.Result {
	return solver.Result{Status: e.status, Model: smt.TranslateModel(e.model, c)}
}
