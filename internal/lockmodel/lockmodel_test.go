package lockmodel

import (
	"testing"

	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/solver"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// fig1Schema is the paper's running example schema.
func fig1Schema() *schema.Schema {
	s := schema.New()
	s.AddTable("Orders").
		Col("ID", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID")
	s.AddTable("OrderItem").
		Col("ID", schema.Int).
		Col("O_ID", schema.Int).
		Col("P_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_oi_o", "O_ID").
		Index("idx_oi_p", "P_ID")
	return s
}

const q4 = `SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?`
const q6 = `UPDATE Product SET QTY = ? WHERE ID = ?`

func useSet(uses []IndexUse) map[string]bool {
	out := map[string]bool{}
	for _, u := range uses {
		name := "SCAN"
		if u.Index != nil {
			name = u.Index.Name
		}
		out[u.Alias+"/"+name] = true
	}
	return out
}

// TestInferQ4 reproduces Fig. 8: the possible indexes for Q4 are
// OrderItem's O_ID secondary (fed by the parameter) and the Orders and
// Product primary indexes (fed by OrderItem data) — but never OrderItem's
// P_ID secondary, which would require scanning Product first.
func TestInferQ4(t *testing.T) {
	scm := fig1Schema()
	uses := InferPossibleIndexes(sqlast.MustParse(q4), scm)
	got := useSet(uses)
	for _, want := range []string{"oi/idx_oi_o", "o/PRIMARY", "p/PRIMARY"} {
		if !got[want] {
			t.Errorf("missing expected index use %s (got %v)", want, got)
		}
	}
	if got["oi/idx_oi_p"] {
		t.Errorf("idx_oi_p must not be used (needs Product scanned first): %v", got)
	}
	if got["oi/SCAN"] || got["o/SCAN"] || got["p/SCAN"] {
		t.Errorf("no full scans expected: %v", got)
	}
}

func TestInferPointUpdate(t *testing.T) {
	scm := fig1Schema()
	uses := InferPossibleIndexes(sqlast.MustParse(q6), scm)
	if len(uses) != 1 || uses[0].Index == nil || uses[0].Index.Type != schema.Primary {
		t.Fatalf("uses = %+v", uses)
	}
	if len(uses[0].Preds) != 1 {
		t.Errorf("preds = %v", uses[0].Preds)
	}
}

func TestInferNoIndexFullScan(t *testing.T) {
	scm := fig1Schema()
	uses := InferPossibleIndexes(sqlast.MustParse(`SELECT * FROM Product p WHERE p.QTY > ?`), scm)
	if len(uses) != 1 || uses[0].Index != nil {
		t.Fatalf("uses = %+v", uses)
	}
}

func TestInferInsertAsKeyEquations(t *testing.T) {
	scm := fig1Schema()
	uses := InferPossibleIndexes(sqlast.MustParse(`INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`), scm)
	got := useSet(uses)
	// The inserted row's column equations make every index reachable.
	for _, want := range []string{"OrderItem/PRIMARY", "OrderItem/idx_oi_o", "OrderItem/idx_oi_p"} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, got)
		}
	}
}

func TestGenSharedLocksPointQuery(t *testing.T) {
	scm := fig1Schema()
	st := sqlast.MustParse(`SELECT * FROM Product p WHERE p.ID = ?`)
	locks := GenSharedLocks(st, scm, "Product", false)
	if len(locks) != 1 {
		t.Fatalf("locks = %v", locks)
	}
	l := locks[0]
	if l.Gran != Row || l.Exclusive || l.Index.Type != schema.Primary {
		t.Errorf("lock = %v", l)
	}
}

func TestGenSharedLocksEmptyResult(t *testing.T) {
	// An empty result acquires RANGE locks to protect the empty read set
	// — the locks behind deadlock d1.
	scm := fig1Schema()
	st := sqlast.MustParse(`SELECT * FROM Product p WHERE p.ID = ?`)
	locks := GenSharedLocks(st, scm, "Product", true)
	if len(locks) != 1 || locks[0].Gran != Range {
		t.Fatalf("locks = %v", locks)
	}
	if len(locks[0].Preds) == 0 {
		t.Error("range lock lost its predicates")
	}
}

func TestGenSharedLocksSecondaryIndex(t *testing.T) {
	scm := fig1Schema()
	st := sqlast.MustParse(`SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`)
	locks := GenSharedLocks(st, scm, "OrderItem", false)
	// Non-unique secondary: RANGE on the secondary plus ROW on the primary.
	var sawRange, sawPrimaryRow bool
	for _, l := range locks {
		if l.Gran == Range && l.Index.Name == "idx_oi_o" {
			sawRange = true
		}
		if l.Gran == Row && l.Index.Type == schema.Primary {
			sawPrimaryRow = true
		}
	}
	if !sawRange || !sawPrimaryRow {
		t.Errorf("locks = %v", locks)
	}
}

func TestGenSharedLocksTableFallback(t *testing.T) {
	scm := fig1Schema()
	st := sqlast.MustParse(`SELECT * FROM Product p WHERE p.QTY > ?`)
	locks := GenSharedLocks(st, scm, "Product", false)
	if len(locks) != 1 || locks[0].Gran != TableLock {
		t.Fatalf("locks = %v", locks)
	}
}

func TestGenExclusiveLocks(t *testing.T) {
	scm := fig1Schema()
	locks := GenExclusiveLocks(sqlast.MustParse(q6), scm, "Product")
	if len(locks) != 1 || !locks[0].Exclusive || locks[0].Gran != Row {
		t.Fatalf("locks = %v", locks)
	}
	// Updating an indexed column adds a range lock on its secondary index.
	locks = GenExclusiveLocks(sqlast.MustParse(`UPDATE OrderItem SET O_ID = ? WHERE ID = ?`), scm, "OrderItem")
	var sawSecRange bool
	for _, l := range locks {
		if l.Exclusive && l.Gran == Range && l.Index != nil && l.Index.Name == "idx_oi_o" {
			sawSecRange = true
		}
	}
	if !sawSecRange {
		t.Errorf("locks = %v", locks)
	}
	// INSERT writes every index.
	locks = GenExclusiveLocks(sqlast.MustParse(`INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`), scm, "OrderItem")
	if len(locks) != 3 {
		t.Errorf("insert locks = %v", locks)
	}
}

func TestConflicting(t *testing.T) {
	scm := fig1Schema()
	sel := sqlast.MustParse(`SELECT * FROM Product p WHERE p.ID = ?`)
	upd := sqlast.MustParse(q6)
	shared := GenSharedLocks(sel, scm, "Product", false)
	excl := GenExclusiveLocks(upd, scm, "Product")
	if !Conflicting(shared, excl) {
		t.Error("S row vs X row on the same index must conflict")
	}
	if Conflicting(shared, shared) {
		t.Error("S vs S must not conflict")
	}
}

func TestPotentialConflictIndexDisjoint(t *testing.T) {
	// Statements touching the same table on different, non-overlapping
	// indexes where the writer doesn't touch the reader's index: the
	// fine-grained model keeps the table-level edge out.
	scm := fig1Schema()
	selByO := sqlast.MustParse(`SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`)
	updQty := sqlast.MustParse(`UPDATE OrderItem SET QTY = ? WHERE ID = ?`)
	// The reader locks idx_oi_o (range) + primary rows; the writer locks
	// primary rows (QTY is unindexed). They share the primary index, so a
	// conflict IS possible.
	selStmt := mkStmt(`SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`, []smt.Expr{smt.NewVar("x", smt.SortInt)}, nil)
	updStmt := mkStmt(`UPDATE OrderItem SET QTY = ? WHERE ID = ?`,
		[]smt.Expr{smt.NewVar("q", smt.SortInt), smt.NewVar("id", smt.SortInt)}, nil)
	_ = selByO
	_ = updQty
	if !PotentialConflict(selStmt, updStmt, scm, false) {
		t.Error("primary-row overlap must be a potential conflict")
	}
	// Two SELECTs never conflict.
	if PotentialConflict(selStmt, selStmt, scm, false) {
		t.Error("read-read flagged")
	}
}

// mkStmt builds a trace.Stmt for conflict-condition tests.
func mkStmt(sql string, syms []smt.Expr, res *trace.Result) *trace.Stmt {
	st := &trace.Stmt{SQL: sql, Parsed: sqlast.MustParse(sql)}
	for i, s := range syms {
		st.Params = append(st.Params, trace.Param{Sym: s, Concrete: minidb.I64(int64(i))})
	}
	st.Res = res
	return st
}

// TestConflictCondFig9 mirrors the paper's end-to-end example: the
// C-edge between A1.Q4 (SELECT with one fetched row) and A2.Q6 (UPDATE of
// Product). The condition must force A2's updated product ID to equal the
// product ID fetched by A1.
func TestConflictCondFig9(t *testing.T) {
	scm := fig1Schema()
	a1Order := smt.NewVar("A1.order_id", smt.SortInt)
	a2PID := smt.NewVar("A2.res4.row0.p.ID", smt.SortInt)
	a2QTY := smt.NewVar("A2.qty", smt.SortInt)

	read := mkStmt(q4, []smt.Expr{a1Order}, &trace.Result{
		Cols: []string{"oi.ID", "oi.O_ID", "oi.P_ID", "oi.QTY", "o.ID", "p.ID", "p.QTY"},
		Sym: [][]smt.Var{{
			{Name: "A1.res4.row0.oi.ID", S: smt.SortInt},
			{Name: "A1.res4.row0.oi.O_ID", S: smt.SortInt},
			{Name: "A1.res4.row0.oi.P_ID", S: smt.SortInt},
			{Name: "A1.res4.row0.oi.QTY", S: smt.SortInt},
			{Name: "A1.res4.row0.o.ID", S: smt.SortInt},
			{Name: "A1.res4.row0.p.ID", S: smt.SortInt},
			{Name: "A1.res4.row0.p.QTY", S: smt.SortInt},
		}},
	})
	write := mkStmt(q6, []smt.Expr{a2QTY, a2PID}, nil)

	cond := GenConflictCond(write, read, scm, "Product", "r1.", NewNamer("e1."), false)
	if cond == smt.Expr(smt.False) {
		t.Fatal("conflict condition is False")
	}
	res := solver.Solve(cond)
	if res.Status != solver.SAT {
		t.Fatalf("conflict condition unsatisfiable: %s\n%s", res.Status, cond)
	}
	// In every model, the written product row equals the fetched one.
	got1 := res.Model.Vars["A2.res4.row0.p.ID"]
	got2 := res.Model.Vars["A1.res4.row0.p.ID"]
	if !got1.Equal(got2) {
		t.Errorf("model decouples writer and reader rows: %s vs %s\nmodel: %s", got1, got2, res.Model)
	}
	// Conjoining an explicit inequality must make it UNSAT.
	neq := smt.And(cond, smt.Ne(a2PID, smt.NewVar("A1.res4.row0.p.ID", smt.SortInt)))
	if r := solver.Solve(neq); r.Status != solver.UNSAT {
		t.Errorf("decoupled rows still satisfiable: %s", r.Status)
	}
}

// TestConflictCondEmptyReadRangeLock: an empty SELECT conflicts with an
// INSERT only through its range lock; the base (associated) condition is
// False but the enlarged range condition keeps the edge alive — the d1
// mechanism.
func TestConflictCondEmptyReadRangeLock(t *testing.T) {
	scm := fig1Schema()
	selParam := smt.NewVar("A1.pid", smt.SortInt)
	insParam := smt.NewVar("A2.pid", smt.SortInt)

	read := mkStmt(`SELECT * FROM Product p WHERE p.ID = ?`, []smt.Expr{selParam}, &trace.Result{
		Cols:  []string{"p.ID", "p.QTY"},
		Empty: true,
	})
	write := mkStmt(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`,
		[]smt.Expr{insParam, smt.NewVar("A2.qty", smt.SortInt)}, nil)

	cond := GenConflictCond(write, read, scm, "Product", "r1.", NewNamer("e1."), false)
	res := solver.Solve(cond)
	if res.Status != solver.SAT {
		t.Fatalf("range-lock conflict not satisfiable: %s\n%s", res.Status, cond)
	}
}

// TestConflictCondNoRangeNoRows: an empty read with no range-index
// overlap with the writer yields False.
func TestConflictCondNoLockOverlap(t *testing.T) {
	scm := fig1Schema()
	// Reader scans OrderItem via idx_oi_o; writer inserts into Product.
	read := mkStmt(`SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`,
		[]smt.Expr{smt.NewVar("A1.oid", smt.SortInt)}, &trace.Result{Cols: []string{"oi.ID"}, Empty: true})
	write := mkStmt(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`,
		[]smt.Expr{smt.NewVar("A2.pid", smt.SortInt), smt.NewVar("A2.q", smt.SortInt)}, nil)
	cond := GenConflictCond(write, read, scm, "Product", "r1.", NewNamer("e1."), false)
	if res := solver.Solve(cond); res.Status != solver.UNSAT {
		t.Errorf("disjoint tables produced a satisfiable condition: %s", res.Status)
	}
}

// TestConflictCondPathConditionKillsIt: conjoining contradictory path
// conditions turns a satisfiable conflict UNSAT — the mechanism by which
// the fine-grained phase eliminates false positives.
func TestConflictCondPathConditionKillsIt(t *testing.T) {
	scm := fig1Schema()
	selParam := smt.NewVar("A1.pid", smt.SortInt)
	updParam := smt.NewVar("A2.pid", smt.SortInt)
	read := mkStmt(`SELECT * FROM Product p WHERE p.ID = ?`, []smt.Expr{selParam}, &trace.Result{
		Cols: []string{"p.ID", "p.QTY"},
		Sym: [][]smt.Var{{
			{Name: "A1.res0.row0.p.ID", S: smt.SortInt},
			{Name: "A1.res0.row0.p.QTY", S: smt.SortInt},
		}},
	})
	write := mkStmt(q6, []smt.Expr{smt.NewVar("A2.q", smt.SortInt), updParam}, nil)
	cond := GenConflictCond(write, read, scm, "Product", "r1.", NewNamer("e1."), false)

	// Path conditions pin the two parameters to different key spaces.
	pcs := smt.And(
		smt.Eq(selParam, smt.NewVar("A1.res0.row0.p.ID", smt.SortInt)),
		smt.Lt(selParam, smt.Int(100)),
		smt.Ge(updParam, smt.Int(100)),
	)
	full := smt.And(cond, pcs)
	if res := solver.Solve(full); res.Status != solver.UNSAT {
		t.Errorf("contradictory path conditions still satisfiable: %s", res.Status)
	}
}

func TestWriteWriteConflictCond(t *testing.T) {
	scm := fig1Schema()
	u1 := mkStmt(q6, []smt.Expr{smt.NewVar("A1.q", smt.SortInt), smt.NewVar("A1.pid", smt.SortInt)}, nil)
	u2 := mkStmt(q6, []smt.Expr{smt.NewVar("A2.q", smt.SortInt), smt.NewVar("A2.pid", smt.SortInt)}, nil)
	cond := GenConflictCond(u1, u2, scm, "Product", "r1.", NewNamer("e1."), false)
	res := solver.Solve(cond)
	if res.Status != solver.SAT {
		t.Fatalf("update-update conflict: %s", res.Status)
	}
	if !res.Model.Vars["A1.pid"].Equal(res.Model.Vars["A2.pid"]) {
		t.Errorf("conflicting updates must target one row: %s", res.Model)
	}
}
