package lockmodel

import (
	"fmt"

	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Alg. 3: conflict conditions. For a potentially conflicting pair — sqlw
// writing a table sqlr accesses — the condition asserts that one database
// row r satisfies both statements' (unified) query conditions and equals
// one of sqlr's actually fetched rows. Range-lock conflicts add enlarged
// conditions: a range lock's real protection span is a superset of its
// predicates, so fresh bound variables extend the range.

// Namer mints fresh variables for range enlargement within one formula.
type Namer struct {
	prefix string
	n      int
}

// NewNamer returns a namer whose fresh variables carry the given prefix.
func NewNamer(prefix string) *Namer { return &Namer{prefix: prefix} }

func (nm *Namer) fresh(hint string, sort smt.Sort) smt.Var {
	nm.n++
	return smt.NewVar(fmt.Sprintf("%s%s%d", nm.prefix, hint, nm.n), sort)
}

// GenConflictCond generates the conflict condition between a write
// statement w and a statement r over their common table (Alg. 3). The
// returned expression is in terms of r's and w's symbolic parameters,
// r's symbolic result aliases, and fresh unified-row variables prefixed
// with rowPrefix (e.g. "r1."). It returns False when the statements'
// modeled locks cannot collide.
func GenConflictCond(w, r *trace.Stmt, scm *schema.Schema, comTable, rowPrefix string, nm *Namer, usePlans bool) smt.Expr {
	wStmt, rStmt := w.Parsed, r.Parsed
	if wStmt.WriteTable() != comTable {
		return smt.False
	}
	rEmpty := r.Res != nil && r.Res.Empty
	locksW := GenExclusiveLocks(wStmt, scm, comTable)
	locksR := readLocksOf(r, scm, comTable, rEmpty, usePlans)
	if usePlans {
		locksW = FilterByPlan(locksW, w.Plan)
	}
	if !Conflicting(locksW, locksR) {
		return smt.False
	}

	rAliases := aliasesOf(rStmt, comTable)
	uc := &unifier{scm: scm, rowPrefix: rowPrefix, aliases: sqlast.AliasMapOf(rStmt)}

	// queryCondOf supplies INSERT statements' implied key equations.
	rCond := sqlast.Cond{Preds: queryCondOf(rStmt), Ors: sqlast.QueryCondOf(rStmt).Ors}
	readCond := uc.condExpr(rCond, r)
	writeCond := unifiedCondForWrite(wStmt, w, scm, rAliases, rowPrefix)
	assoc := associatedCond(r, rowPrefix)
	conflict := smt.And(readCond, writeCond, assoc)

	// Range locks: for each shared range lock on an index the writer also
	// locks, the enlarged range condition (conjoined with the writer's
	// unified condition so the model pins the written row) is an
	// alternative way the statements conflict.
	for _, lr := range locksR {
		if lr.Gran != Range || lr.Exclusive {
			continue
		}
		matched := false
		for _, lw := range locksW {
			if lw.Index != nil && lr.Index != nil && lw.Index.Name == lr.Index.Name {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		rangeCond := genRangeConflictCond(lr, uc, r, nm)
		if rangeCond != nil {
			conflict = smt.Or(conflict, smt.And(rangeCond, writeCond))
		}
	}
	return smt.Simplify(conflict)
}

// aliasesOf lists r's aliases bound to the common table.
func aliasesOf(st sqlast.Stmt, table string) []string {
	var out []string
	for alias, t := range sqlast.AliasMapOf(st) {
		if t == table {
			out = append(out, alias)
		}
	}
	sortStrings(out)
	return out
}

// unifier rewrites predicates into smt expressions: column references
// become unified-row variables ("r1.p.ID"), parameters become their
// recorded symbolic expressions, constants become literals.
type unifier struct {
	scm       *schema.Schema
	rowPrefix string
	aliases   map[string]string // alias → table
}

func (u *unifier) colVar(alias, col string) smt.Expr {
	table := u.aliases[alias]
	t := u.scm.Table(table)
	if t == nil || t.Column(col) == nil {
		// Unknown column: leave an opaque integer variable; the formula
		// stays conservative.
		return smt.NewVar(u.rowPrefix+alias+"."+col, smt.SortInt)
	}
	return smt.NewVar(u.rowPrefix+alias+"."+col, t.Column(col).Type.Sort())
}

// operand converts one operand using statement st's recorded parameters.
func (u *unifier) operand(o sqlast.Operand, st *trace.Stmt) (smt.Expr, bool) {
	switch o.Kind {
	case sqlast.Col:
		return u.colVar(o.Table, o.Column), true
	case sqlast.Param:
		if st != nil && o.Ord < len(st.Params) {
			if s := st.Params[o.Ord].Sym; s != nil {
				return s, true
			}
			return datumExpr(st.Params[o.Ord].Concrete)
		}
		return nil, false
	case sqlast.ConstInt:
		return smt.Int(o.Int), true
	case sqlast.ConstReal:
		return smt.RealFromRat(o.Real), true
	case sqlast.ConstStr:
		return smt.Str(o.Str), true
	case sqlast.Null:
		return nil, false
	}
	return nil, false
}

// datumExpr converts a concrete parameter (one without a symbolic
// shadow, e.g. an application-generated key) into a literal expression.
func datumExpr(d minidb.Datum) (smt.Expr, bool) {
	if d.Null {
		return nil, false
	}
	switch d.Kind {
	case minidb.KInt:
		return smt.Int(d.I), true
	case minidb.KReal:
		return smt.RealFromRat(d.R), true
	case minidb.KStr:
		return smt.Str(d.S), true
	}
	return nil, false
}

// predExpr converts one predicate; untranslatable predicates (IS NULL,
// NULL operands) drop to True, which is conservative: dropping a
// conjunct can only keep a possible deadlock alive.
func (u *unifier) predExpr(p sqlast.Pred, st *trace.Stmt) smt.Expr {
	if p.IsNull {
		return smt.True
	}
	l, ok := u.operand(p.L, st)
	if !ok {
		return smt.True
	}
	r, ok := u.operand(p.R, st)
	if !ok {
		return smt.True
	}
	if l.Sort() != r.Sort() && (l.Sort() == smt.SortString || r.Sort() == smt.SortString) {
		return smt.True
	}
	return smt.Compare(p.Op, l, r)
}

// condExpr converts a full query condition (conjunction plus disjunctive
// groups) — GenUnifiedCondForRead of Alg. 3.
func (u *unifier) condExpr(c sqlast.Cond, st *trace.Stmt) smt.Expr {
	var parts []smt.Expr
	for _, p := range c.Preds {
		parts = append(parts, u.predExpr(p, st))
	}
	for _, g := range c.Ors {
		var djs []smt.Expr
		for _, dj := range g.Disjuncts {
			var conj []smt.Expr
			for _, p := range dj {
				conj = append(conj, u.predExpr(p, st))
			}
			djs = append(djs, smt.And(conj...))
		}
		parts = append(parts, smt.Or(djs...))
	}
	return smt.And(parts...)
}

// unifiedCondForWrite maps the writer's condition onto each of the
// reader's aliases of the common table and disjoins the results
// (GenUnifiedCondForWrite).
func unifiedCondForWrite(wStmt sqlast.Stmt, w *trace.Stmt, scm *schema.Schema, rAliases []string, rowPrefix string) smt.Expr {
	preds := queryCondOf(wStmt)
	wAliasMap := sqlast.AliasMapOf(wStmt)
	var djs []smt.Expr
	for _, ra := range rAliases {
		// Rewrite the writer's own-table column references to the
		// reader's alias ra, then unify.
		u := &unifier{scm: scm, rowPrefix: rowPrefix, aliases: map[string]string{ra: wStmt.WriteTable()}}
		var conj []smt.Expr
		for _, p := range preds {
			conj = append(conj, u.predExpr(rewritePredAlias(p, wAliasMap, wStmt.WriteTable(), ra), w))
		}
		// Disjunctive groups of the writer's WHERE clause.
		cond := sqlast.QueryCondOf(wStmt)
		for _, g := range cond.Ors {
			var inner []smt.Expr
			for _, dj := range g.Disjuncts {
				var c2 []smt.Expr
				for _, p := range dj {
					c2 = append(c2, u.predExpr(rewritePredAlias(p, wAliasMap, wStmt.WriteTable(), ra), w))
				}
				inner = append(inner, smt.And(c2...))
			}
			conj = append(conj, smt.Or(inner...))
		}
		djs = append(djs, smt.And(conj...))
	}
	return smt.Or(djs...)
}

// rewritePredAlias renames column operands of the writer's table to the
// reader's alias so both conditions constrain the same unified row.
func rewritePredAlias(p sqlast.Pred, wAliases map[string]string, table, newAlias string) sqlast.Pred {
	fix := func(o sqlast.Operand) sqlast.Operand {
		if o.Kind == sqlast.Col && wAliases[o.Table] == table {
			o.Table = newAlias
		}
		return o
	}
	p.L = fix(p.L)
	if !p.IsNull {
		p.R = fix(p.R)
	}
	return p
}

// associatedCond ties the unified row to one of the reader's actually
// fetched rows (GenAssociatedCond): there exists a result row whose every
// column equals the corresponding unified-row variable.
func associatedCond(r *trace.Stmt, rowPrefix string) smt.Expr {
	if r.Res == nil {
		// The reader is itself a write statement: its "result" is the set
		// of rows matching its condition; the unified write condition
		// already constrains r, so no association is needed.
		return smt.True
	}
	if r.Res.Empty {
		return smt.False // no fetched rows: only range locks can conflict
	}
	var rows []smt.Expr
	for ri, row := range r.Res.Sym {
		var eqs []smt.Expr
		for ci, v := range row {
			if v.Name == "" {
				continue // NULL cell: no alias
			}
			eqs = append(eqs, smt.Eq(smt.NewVar(rowPrefix+r.Res.Cols[ci], v.S), v))
		}
		_ = ri
		rows = append(rows, smt.And(eqs...))
	}
	return smt.Or(rows...)
}

// genRangeConflictCond transforms a shared range lock's predicates into
// the enlarged range condition (Alg. 3, GenRangeConflictCond): equalities
// and disequalities are first rewritten into inequalities, whose bounds
// are then relaxed with fresh variables varl/varg, modeling that the
// lock's true protection range (gap/next-key span) is a superset of its
// predicates.
func genRangeConflictCond(lr Lock, u *unifier, r *trace.Stmt, nm *Namer) smt.Expr {
	var parts []smt.Expr
	for _, p := range lr.Preds {
		if p.IsNull {
			continue
		}
		// Identify the indexed-column side as "var".
		varOp, expOp := p.L, p.R
		op := p.Op
		if !(varOp.Kind == sqlast.Col && varOp.Table == lr.Alias && lr.Index != nil && lr.Index.Covers(varOp.Column)) {
			varOp, expOp = p.R, p.L
			op = op.Flip()
		}
		if varOp.Kind != sqlast.Col {
			continue
		}
		v, ok := u.operand(varOp, r)
		if !ok {
			continue
		}
		e, ok := u.operand(expOp, r)
		if !ok {
			continue
		}
		if v.Sort() == smt.SortString || e.Sort() == smt.SortString {
			// Strings admit only =/!=; no range structure to enlarge.
			parts = append(parts, smt.Compare(op, v, e))
			continue
		}
		switch op {
		case smt.EQ: // var = exp → var ≥ exp ∧ var ≤ exp, then enlarge
			parts = append(parts, enlargeLower(v, e, false, nm), enlargeUpper(v, e, false, nm))
		case smt.NE: // var != exp → var < exp ∨ var > exp, enlarged
			parts = append(parts, smt.Or(enlargeUpper(v, e, true, nm), enlargeLower(v, e, true, nm)))
		case smt.LT:
			parts = append(parts, enlargeUpper(v, e, true, nm))
		case smt.LE:
			parts = append(parts, enlargeUpper(v, e, false, nm))
		case smt.GT:
			parts = append(parts, enlargeLower(v, e, true, nm))
		case smt.GE:
			parts = append(parts, enlargeLower(v, e, false, nm))
		}
	}
	if len(parts) == 0 {
		// A range lock with no translatable predicates protects an
		// unknown superset: conservatively, everything.
		return smt.True
	}
	return smt.And(parts...)
}

// enlargeUpper implements lines 20–21 of Alg. 3: an upper bound exp is
// relaxed to a fresh varg at or beyond it.
func enlargeUpper(v, e smt.Expr, strict bool, nm *Namer) smt.Expr {
	varg := nm.fresh("varg", numSortOf(v))
	if strict { // var < exp → var ≤ varg ∧ exp ≤ varg
		return smt.And(smt.Le(v, varg), smt.Le(e, varg))
	}
	// var ≤ exp → var ≤ varg ∧ exp < varg
	return smt.And(smt.Le(v, varg), smt.Lt(e, varg))
}

// enlargeLower implements lines 22–23: a lower bound exp is relaxed to a
// fresh varl at or below it.
func enlargeLower(v, e smt.Expr, strict bool, nm *Namer) smt.Expr {
	varl := nm.fresh("varl", numSortOf(v))
	if strict { // var > exp → var ≥ varl ∧ exp ≥ varl
		return smt.And(smt.Ge(v, varl), smt.Ge(e, varl))
	}
	// var ≥ exp → var ≥ varl ∧ exp > varl
	return smt.And(smt.Ge(v, varl), smt.Gt(e, varl))
}

func numSortOf(e smt.Expr) smt.Sort {
	if e.Sort() == smt.SortReal {
		return smt.SortReal
	}
	return smt.SortInt
}
