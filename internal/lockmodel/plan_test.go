package lockmodel

import (
	"testing"

	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// twoIndexSchema has a table with two secondary indexes, so a SELECT
// binding both can, in the paper's conservative model, be assumed to use
// either — the all-join-orders false-positive source of Sec. V-D.
func twoIndexSchema() *schema.Schema {
	s := schema.New()
	s.AddTable("T").
		Col("ID", schema.Int).
		Col("A", schema.Int).
		Col("B", schema.Int).
		PrimaryKey("ID").
		Index("idx_a", "A").
		Index("idx_b", "B")
	return s
}

// TestFilterByPlan keeps planned indexes, primary rows, and table locks.
func TestFilterByPlan(t *testing.T) {
	scm := twoIndexSchema()
	sel := sqlast.MustParse(`SELECT * FROM T t WHERE t.A = ? AND t.B = ?`)
	all := GenSharedLocks(sel, scm, "T", true)
	// Conservative model: range locks on both idx_a and idx_b.
	names := map[string]bool{}
	for _, l := range all {
		if l.Index != nil {
			names[l.Index.Name] = true
		}
	}
	if !names["idx_a"] || !names["idx_b"] {
		t.Fatalf("expected both secondary indexes in %v", all)
	}
	plan := []trace.PlanStep{{Alias: "t", Table: "T", Index: "idx_a"}}
	filtered := FilterByPlan(all, plan)
	for _, l := range filtered {
		if l.Index != nil && l.Index.Name == "idx_b" {
			t.Errorf("idx_b lock survived plan filtering: %v", filtered)
		}
	}
	// A nil plan filters nothing.
	if got := FilterByPlan(all, nil); len(got) != len(all) {
		t.Errorf("nil plan changed lock set: %d vs %d", len(got), len(all))
	}
}

// TestConcretePlanRemovesFalsePositive is the paper's Sec. V-D scenario:
// an empty SELECT that could use either index is assumed to range-lock
// both; a writer touching only idx_b then conflicts. With the concrete
// plan (idx_a), the conflict disappears.
func TestConcretePlanRemovesFalsePositive(t *testing.T) {
	scm := twoIndexSchema()
	read := &trace.Stmt{
		SQL:    `SELECT * FROM T t WHERE t.A = ? AND t.B = ?`,
		Parsed: sqlast.MustParse(`SELECT * FROM T t WHERE t.A = ? AND t.B = ?`),
		Res:    &trace.Result{Cols: []string{"t.ID"}, Empty: true},
		Plan:   []trace.PlanStep{{Alias: "t", Table: "T", Index: "idx_a"}},
	}
	read.Params = append(read.Params,
		trace.Param{Sym: smt.NewVar("a", smt.SortInt)},
		trace.Param{Sym: smt.NewVar("b", smt.SortInt)})
	write := &trace.Stmt{
		SQL:    `UPDATE T SET B = ? WHERE ID = ?`,
		Parsed: sqlast.MustParse(`UPDATE T SET B = ? WHERE ID = ?`),
		Plan:   []trace.PlanStep{{Alias: "T", Table: "T", Index: "PRIMARY"}},
	}
	write.Params = append(write.Params,
		trace.Param{Sym: smt.NewVar("nb", smt.SortInt)},
		trace.Param{Sym: smt.NewVar("id", smt.SortInt)})

	// Conservative model: the reader's assumed idx_b range lock collides
	// with the writer's idx_b range.
	if !PotentialConflict(read, write, scm, false) {
		t.Fatal("conservative model should flag the idx_b collision")
	}
	// Concrete plans: the reader only locked idx_a (plus no primary row —
	// the result was empty), so no collision remains.
	if PotentialConflict(read, write, scm, true) {
		t.Fatal("concrete plans should remove the false positive")
	}
	// The conflict condition collapses to False as well.
	cond := GenConflictCond(write, read, scm, "T", "r1.", NewNamer("p."), true)
	if cond != smt.Expr(smt.False) {
		t.Errorf("planned conflict condition = %v, want false", cond)
	}
}

// TestConcretePlansKeepTruePositives: the Fig. 9 conflict survives plan
// filtering because the plan really uses the conflicting index.
func TestConcretePlansKeepTruePositives(t *testing.T) {
	scm := fig1Schema()
	read := mkStmt(`SELECT * FROM Product p WHERE p.ID = ?`, []smt.Expr{smt.NewVar("A1.pid", smt.SortInt)}, &trace.Result{
		Cols:  []string{"p.ID", "p.QTY"},
		Empty: true,
	})
	read.Plan = []trace.PlanStep{{Alias: "p", Table: "Product", Index: "PRIMARY"}}
	write := mkStmt(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`,
		[]smt.Expr{smt.NewVar("A2.pid", smt.SortInt), smt.NewVar("A2.q", smt.SortInt)}, nil)
	write.Plan = []trace.PlanStep{{Alias: "Product", Table: "Product", Index: "PRIMARY"}}
	if !PotentialConflict(read, write, scm, true) {
		t.Fatal("true positive removed by plan filtering")
	}
}
