package lockmodel

import (
	"fmt"

	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Granularity is a modeled lock's granularity (Alg. 2).
type Granularity uint8

// Lock granularities.
const (
	Row Granularity = iota
	Range
	TableLock
)

func (g Granularity) String() string {
	switch g {
	case Row:
		return "ROW"
	case Range:
		return "RANGE"
	case TableLock:
		return "TABLE"
	}
	return fmt.Sprintf("Granularity(%d)", uint8(g))
}

// Lock is one modeled database lock: the index it is acquired on (nil for
// table locks), granularity, mode, and — for range locks — the predicates
// bounding the protected range.
type Lock struct {
	Table     string
	Index     *schema.Index // nil for TABLE locks
	Gran      Granularity
	Exclusive bool
	// Alias is the statement alias whose access acquired the lock.
	Alias string
	// Preds bound RANGE locks (nil for exclusive ranges, per Alg. 2).
	Preds []sqlast.Pred
}

func (l Lock) String() string {
	mode := "S"
	if l.Exclusive {
		mode = "X"
	}
	ix := "NULL"
	if l.Index != nil {
		ix = l.Index.String()
	}
	return fmt.Sprintf("(%s, %s, %s)", ix, l.Gran, mode)
}

// GenSharedLocks models the shared locks a statement acquires on the
// target table (Alg. 2). isEmpty reports whether the statement fetched an
// empty result — the case where only range locks protect the read set.
func GenSharedLocks(st sqlast.Stmt, scm *schema.Schema, targetTable string, isEmpty bool) []Lock {
	var locks []Lock
	for _, use := range InferPossibleIndexes(st, scm) {
		if use.Table != targetTable || use.Index == nil {
			continue
		}
		ix := use.Index
		if !isEmpty {
			if ix.Unique && isPointQuery(ix, use.Preds) {
				locks = append(locks, Lock{Table: targetTable, Index: ix, Gran: Row, Alias: use.Alias})
			} else {
				locks = append(locks, Lock{Table: targetTable, Index: ix, Gran: Range, Alias: use.Alias, Preds: use.Preds})
			}
			if ix.Type == schema.Secondary {
				pri := scm.Table(targetTable).PrimaryIndex()
				locks = append(locks, Lock{Table: targetTable, Index: pri, Gran: Row, Alias: use.Alias})
			}
		} else {
			locks = append(locks, Lock{Table: targetTable, Index: ix, Gran: Range, Alias: use.Alias, Preds: use.Preds})
		}
	}
	if len(locks) == 0 {
		// No usable indexes: the whole table is locked.
		locks = append(locks, Lock{Table: targetTable, Gran: TableLock, Alias: aliasOn(st, targetTable)})
	}
	return locks
}

// GenExclusiveLocks models the exclusive locks a write statement acquires
// on the target table (Alg. 2): a row lock on the primary index for each
// written row, plus row/range locks on every written secondary index.
func GenExclusiveLocks(st sqlast.Stmt, scm *schema.Schema, targetTable string) []Lock {
	t := scm.Table(targetTable)
	alias := aliasOn(st, targetTable)
	locks := []Lock{{
		Table: targetTable, Index: t.PrimaryIndex(), Gran: Row, Exclusive: true, Alias: alias,
	}}
	for _, ix := range writtenIndexes(st, t) {
		if ix.Unique {
			locks = append(locks, Lock{Table: targetTable, Index: ix, Gran: Row, Exclusive: true, Alias: alias})
		} else {
			locks = append(locks, Lock{Table: targetTable, Index: ix, Gran: Range, Exclusive: true, Alias: alias})
		}
	}
	return locks
}

// writtenIndexes returns the secondary indexes a write statement
// modifies: for UPDATE, those covering a SET column; for INSERT and
// DELETE, every secondary index (entries are created or removed).
func writtenIndexes(st sqlast.Stmt, t *schema.Table) []*schema.Index {
	var cols []string
	switch w := st.(type) {
	case *sqlast.Update:
		cols = w.WrittenColumns()
	case *sqlast.Upsert:
		// Conservative: the insert touches every index; no need to look
		// at the ON DUPLICATE KEY UPDATE columns separately.
		return t.SecondaryIndexes()
	case *sqlast.Insert, *sqlast.Delete:
		return t.SecondaryIndexes()
	default:
		return nil
	}
	var out []*schema.Index
	for _, ix := range t.SecondaryIndexes() {
		for _, c := range cols {
			if ix.Covers(c) {
				out = append(out, ix)
				break
			}
		}
	}
	return out
}

// isPointQuery reports whether the predicates pin every index column with
// an equality — the condition for a ROW rather than RANGE lock.
func isPointQuery(ix *schema.Index, preds []sqlast.Pred) bool {
	for _, col := range ix.Columns {
		found := false
		for _, p := range preds {
			if p.IsNull || p.Op != smt.EQ {
				continue
			}
			if (p.L.Kind == sqlast.Col && p.L.Column == col) ||
				(p.R.Kind == sqlast.Col && p.R.Column == col) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func aliasOn(st sqlast.Stmt, table string) string {
	for alias, t := range sqlast.AliasMapOf(st) {
		if t == table {
			return alias
		}
	}
	return table
}

// Conflicting reports whether two lock sets contain a conflicting pair:
// locks on the same index (or two table locks on the same table) with at
// least one exclusive.
func Conflicting(a, b []Lock) bool {
	for _, la := range a {
		for _, lb := range b {
			if !la.Exclusive && !lb.Exclusive {
				continue
			}
			if la.Table != lb.Table {
				continue
			}
			if la.Gran == TableLock || lb.Gran == TableLock {
				return true
			}
			if la.Index != nil && lb.Index != nil && la.Index.Name == lb.Index.Name {
				return true
			}
		}
	}
	return false
}

// FilterByPlan keeps the locks whose index appears in the recorded
// concrete execution plan — the Sec. V-D future-work refinement. Locks
// on the primary index always survive (secondary-index hits lock the
// backing primary row regardless of the plan), as do table locks. A nil
// plan means "not recorded": no filtering.
func FilterByPlan(locks []Lock, plan []trace.PlanStep) []Lock {
	if plan == nil {
		return locks
	}
	inPlan := map[string]bool{}
	for _, p := range plan {
		if p.Index != "" {
			inPlan[p.Table+"|"+p.Index] = true
		}
	}
	out := locks[:0:0]
	for _, l := range locks {
		switch {
		case l.Index == nil, l.Index.Type == schema.Primary,
			inPlan[l.Table+"|"+l.Index.Name]:
			out = append(out, l)
		}
	}
	return out
}

// PotentialConflict applies the fine-grained C-edge test: statements
// conflict when they access a common table, at least one writes it, and
// their modeled locks collide on a common index (Sec. V-C3). With
// usePlans, each side's locks are restricted to its recorded execution
// plan.
func PotentialConflict(a, b *trace.Stmt, scm *schema.Schema, usePlans bool) bool {
	aEmpty := a.Res != nil && a.Res.Empty
	bEmpty := b.Res != nil && b.Res.Empty
	for _, o := range []struct {
		w, r   *trace.Stmt
		rEmpty bool
	}{{a, b, bEmpty}, {b, a, aEmpty}} {
		tab := commonWrittenTable(o.w.Parsed, o.r.Parsed)
		if tab == "" {
			continue
		}
		wl := GenExclusiveLocks(o.w.Parsed, scm, tab)
		rl := readLocksOf(o.r, scm, tab, o.rEmpty, usePlans)
		if usePlans {
			wl = FilterByPlan(wl, o.w.Plan)
		}
		if Conflicting(wl, rl) {
			return true
		}
	}
	return false
}

// readLocks models the locks the "reader" side of a conflict holds on the
// table: shared locks for SELECTs, exclusive locks when the statement
// itself writes the table.
func readLocks(st sqlast.Stmt, scm *schema.Schema, table string, isEmpty bool) []Lock {
	if st.WriteTable() == table {
		return GenExclusiveLocks(st, scm, table)
	}
	return GenSharedLocks(st, scm, table, isEmpty)
}

// readLocksOf is readLocks over a recorded statement, optionally
// restricted to its concrete execution plan.
func readLocksOf(r *trace.Stmt, scm *schema.Schema, table string, isEmpty, usePlans bool) []Lock {
	locks := readLocks(r.Parsed, scm, table, isEmpty)
	if usePlans {
		locks = FilterByPlan(locks, r.Plan)
	}
	return locks
}

func commonWrittenTable(w, r sqlast.Stmt) string {
	wt := w.WriteTable()
	if wt == "" {
		return ""
	}
	for _, t := range r.Tables() {
		if t == wt {
			return wt
		}
	}
	return ""
}
