// Package lockmodel implements WeSEER's fine-grained database lock
// modeling (Sec. V-C): inferring which indexes a statement's execution
// can use (via the index usage graph and its topological sorts),
// generating the row/range/table locks the database would acquire during
// index traversal (Alg. 2), and producing the first-order conflict
// conditions between potentially conflicting statements, including the
// enlarged conditions for range locks (Alg. 3).
package lockmodel

import (
	"strings"

	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

// IndexUse is one possible way a statement accesses one table: the index
// traversed (nil for a full table scan) and the query predicates related
// to it that were available when the index was used.
type IndexUse struct {
	Alias string
	Table string
	// Index is nil when the table can only be scanned in full.
	Index *schema.Index
	// Preds are the statement's query-condition predicates related to the
	// index whose other side was available (parameters, constants, or
	// columns of tables fetched earlier in the topological sort).
	Preds []sqlast.Pred
}

// InferPossibleIndexes builds the index usage graph for a statement and
// returns every (index, predicates) pair used by some topological sort
// starting from the SQL parameters (Sec. V-C2). A sort visits a table via
// an index once that index's predicates can be evaluated from data
// already available, mirroring how the database feeds one table's output
// into the next index lookup. For the paper's Q4 this yields
// index(OrderItem,sec,O_ID) from the parameter, then the Orders and
// Product primary indexes — but never index(OrderItem,sec,P_ID), which
// would require scanning Product first. Aliases no sort reaches are
// reported with a nil Index: a full table scan.
func InferPossibleIndexes(st sqlast.Stmt, scm *schema.Schema) []IndexUse {
	aliases := sqlast.AliasMapOf(st)
	preds := queryCondOf(st)

	allAliases := make([]string, 0, len(aliases))
	for a := range aliases {
		allAliases = append(allAliases, a)
	}
	sortStrings(allAliases)

	usedKey := map[string]bool{}
	var used []IndexUse
	reachable := map[string]bool{}

	var walk func(avail map[string]bool)
	walk = func(avail map[string]bool) {
		progressed := false
		for _, a := range allAliases {
			if avail[a] {
				continue
			}
			t := scm.Table(aliases[a])
			if t == nil {
				continue
			}
			for _, ix := range t.Indexes {
				ps := availablePreds(preds, a, ix, avail)
				if len(ps) == 0 {
					continue
				}
				progressed = true
				reachable[a] = true
				key := a + "|" + ix.Name + "|" + predsKey(ps)
				if !usedKey[key] {
					usedKey[key] = true
					used = append(used, IndexUse{Alias: a, Table: aliases[a], Index: ix, Preds: ps})
				}
				avail[a] = true
				walk(avail)
				delete(avail, a)
			}
		}
		if progressed {
			return
		}
		// No index applies: the database full-scans one remaining table
		// to make progress (its data then feeds later indexes).
		for _, a := range allAliases {
			if avail[a] {
				continue
			}
			avail[a] = true
			walk(avail)
			delete(avail, a)
		}
	}
	walk(map[string]bool{})

	for _, a := range allAliases {
		if !reachable[a] {
			used = append(used, IndexUse{Alias: a, Table: aliases[a]})
		}
	}
	return used
}

// availablePreds returns the predicates related to (alias, ix) whose
// other side is currently available: a parameter, a constant, or a column
// of an already-fetched alias.
func availablePreds(preds []sqlast.Pred, alias string, ix *schema.Index, avail map[string]bool) []sqlast.Pred {
	var out []sqlast.Pred
	for _, p := range preds {
		if p.IsNull {
			continue
		}
		var other sqlast.Operand
		switch {
		case p.L.Kind == sqlast.Col && p.L.Table == alias && ix.Covers(p.L.Column):
			other = p.R
		case p.R.Kind == sqlast.Col && p.R.Table == alias && ix.Covers(p.R.Column):
			other = p.L
		default:
			continue
		}
		if other.Kind == sqlast.Col {
			if other.Table == alias || !avail[other.Table] {
				continue
			}
		}
		out = append(out, p)
	}
	return out
}

func predsKey(ps []sqlast.Pred) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	sortStrings(parts)
	return strings.Join(parts, "&")
}

// queryCondOf returns the statement's simple query predicates. For
// INSERT/UPSERT, the query conditions are equations on the inserted row's
// columns (the paper treats them as equations on the primary key; we keep
// every inserted column, which subsumes the key).
func queryCondOf(st sqlast.Stmt) []sqlast.Pred {
	switch t := st.(type) {
	case *sqlast.Insert:
		return insertPreds(t)
	case *sqlast.Upsert:
		return insertPreds(&t.Insert)
	default:
		return sqlast.QueryCondOf(st).Preds
	}
}

func insertPreds(ins *sqlast.Insert) []sqlast.Pred {
	preds := make([]sqlast.Pred, 0, len(ins.Columns))
	for i, col := range ins.Columns {
		preds = append(preds, sqlast.Pred{
			Op: smt.EQ,
			L:  sqlast.C(ins.Table, col),
			R:  ins.Values[i],
		})
	}
	return preds
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
