package solver

import (
	"reflect"
	"testing"
)

// TestShrinkCoreCapped exercises the chunked core minimizer directly:
// it must reduce to a minimal unsatisfiable subset when the set fits
// under the cap, and return the input untouched when it does not.
func TestShrinkCoreCapped(t *testing.T) {
	// "UNSAT" iff the candidate still contains both 3 and 7.
	pairUnsat := func(ids []int) bool {
		has3, has7 := false, false
		for _, id := range ids {
			has3 = has3 || id == 3
			has7 = has7 || id == 7
		}
		return has3 && has7
	}

	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := shrinkCoreCapped(ids, 192, pairUnsat)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("expected minimal core [3 7], got %v", got)
	}

	// Over the cap: the set is returned as-is, with zero oracle calls.
	calls := 0
	counting := func(ids []int) bool { calls++; return true }
	got = shrinkCoreCapped(ids, len(ids)-1, counting)
	if !reflect.DeepEqual(got, ids) || calls != 0 {
		t.Fatalf("expected capped pass-through without oracle calls, got %v after %d calls", got, calls)
	}

	// Exactly at the cap the minimizer still runs.
	got = shrinkCoreCapped(ids, len(ids), pairUnsat)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("expected shrinking at cap boundary, got %v", got)
	}

	// A singleton core survives (len(core) > 1 guard).
	oneUnsat := func(ids []int) bool {
		for _, id := range ids {
			if id == 5 {
				return true
			}
		}
		return false
	}
	got = shrinkCoreCapped(ids, 192, oneUnsat)
	if !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("expected singleton core [5], got %v", got)
	}

	// The input slice itself is never mutated.
	orig := []int{9, 8, 7, 3, 1}
	want := append([]int(nil), orig...)
	shrinkCoreCapped(orig, 192, pairUnsat)
	if !reflect.DeepEqual(orig, want) {
		t.Fatalf("input mutated: %v", orig)
	}
}
