// Package solver implements the SMT solver WeSEER uses in place of Z3
// (the paper uses Z3 4.8.14). It decides the logic fragment the deadlock
// analyzer emits — Boolean combinations of linear Int/Real comparisons,
// string (dis)equality, and reads over Boolean container arrays — via a
// lazy CDCL(T) loop: a conflict-driven clause-learning search over the
// Tseitin-encoded Boolean skeleton, with assignments checked against the
// arithmetic and string theories and theory refutations fed back as
// learned core clauses. On SAT it returns a verified model (the
// satisfying assignment WeSEER's reports use to reproduce a deadlock);
// every model is re-checked by evaluation before being returned.
package solver

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/big"
	"sort"
	"time"

	"weseer/internal/obs"
	"weseer/internal/smt"
)

// Status is the outcome of a Solve call, mirroring SAT / UNSAT / timeout
// outcomes of the paper's Z3 usage.
type Status uint8

// Solver outcomes.
const (
	SAT Status = iota
	UNSAT
	UNKNOWN
)

func (s Status) String() string {
	switch s {
	case SAT:
		return "SAT"
	case UNSAT:
		return "UNSAT"
	case UNKNOWN:
		return "UNKNOWN"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Stats reports work done by one Solve call.
type Stats struct {
	Atoms       int
	Clauses     int
	Decisions   int
	Conflicts   int
	TheoryCalls int

	// CDCL counters: literals assigned by watched-literal unit
	// propagation, clauses learned from conflict analysis and theory
	// cores, and conflicts whose backjump skipped at least one decision
	// level (non-chronological backtracking at work).
	Propagations   int
	LearnedClauses int
	Backjumps      int
}

// Add accumulates o's counters into s (for cross-call aggregation).
func (s *Stats) Add(o Stats) {
	s.Atoms += o.Atoms
	s.Clauses += o.Clauses
	s.Decisions += o.Decisions
	s.Conflicts += o.Conflicts
	s.TheoryCalls += o.TheoryCalls
	s.Propagations += o.Propagations
	s.LearnedClauses += o.LearnedClauses
	s.Backjumps += o.Backjumps
}

// Result is the outcome of Solve. Model is non-nil exactly when Status is
// SAT, and is guaranteed to satisfy the input formula (verified by
// evaluation).
type Result struct {
	Status Status
	Model  *smt.Model
	Stats  Stats
}

// Limits bound solver work; zero values select defaults.
type Limits struct {
	// MaxTheoryCalls caps CDCL(T) theory checks before giving up UNKNOWN.
	MaxTheoryCalls int
	// FM holds the arithmetic-theory limits.
	FM fmLimits

	// Obs, when non-nil, receives a per-call span and engine counters
	// (observational only — it never affects the verdict). ObsTID is the
	// logical thread the span is attributed to (the analyzer passes its
	// phase-3 worker index).
	Obs    *obs.Observer
	ObsTID int
}

func (l *Limits) setDefaults() {
	if l.MaxTheoryCalls == 0 {
		l.MaxTheoryCalls = 20000
	}
	if l.FM.maxConstraints == 0 {
		l.FM = defaultFMLimits()
	}
}

// Solve decides f.
func Solve(f smt.Expr) Result { return SolveLimits(f, Limits{}) }

// SolveLimits decides f under explicit resource limits.
func SolveLimits(f smt.Expr, lim Limits) Result {
	return SolveCtx(context.Background(), f, lim)
}

// SolveCtx decides f under explicit resource limits, honoring ctx
// cancellation: the CDCL(T) loop and the Fourier–Motzkin elimination
// rounds poll the context and abandon the search promptly once it is
// done. A canceled call returns UNKNOWN; callers that need to tell
// cancellation apart from a resource-limit UNKNOWN check ctx.Err().
func SolveCtx(ctx context.Context, f smt.Expr, lim Limits) Result {
	if lim.Obs == nil {
		return solveCtx(ctx, f, lim)
	}
	o := lim.Obs
	sp := o.StartSpan(lim.ObsTID, "solve")
	start := time.Now()
	res := solveCtx(ctx, f, lim)
	dur := time.Since(start)
	sp.End(obs.String("status", res.Status.String()),
		obs.Int("decisions", res.Stats.Decisions),
		obs.Int("conflicts", res.Stats.Conflicts),
		obs.Int("theory_calls", res.Stats.TheoryCalls))
	o.ObserveSolve(obs.SolveObservation{
		Duration:       dur,
		Status:         res.Status.String(),
		Decisions:      res.Stats.Decisions,
		Conflicts:      res.Stats.Conflicts,
		Propagations:   res.Stats.Propagations,
		LearnedClauses: res.Stats.LearnedClauses,
		Backjumps:      res.Stats.Backjumps,
		TheoryCalls:    res.Stats.TheoryCalls,
	})
	return res
}

// solveCtx is the uninstrumented body of SolveCtx.
func solveCtx(ctx context.Context, f smt.Expr, lim Limits) Result {
	lim.setDefaults()
	s := &session{
		lim:        lim,
		boolAtoms:  map[string]int{},
		strAtoms:   map[strPair]int{},
		selAtomIdx: map[selKey]int{},
		linBuckets: map[uint64][]int{},
		intVars:    map[string]bool{},
	}
	if ctx != nil && ctx.Done() != nil {
		stop := func() bool { return ctx.Err() != nil }
		s.stop = stop
		s.lim.FM.stop = stop
	}
	f = smt.Simplify(f)
	for name, srt := range smt.VarSet(f) {
		if srt == smt.SortInt {
			s.intVars[name] = true
		}
	}
	f = expandSelects(f)

	if c, ok := f.(smt.BoolConst); ok {
		if c.B {
			return Result{Status: SAT, Model: smt.NewModel()}
		}
		return Result{Status: UNSAT}
	}

	root, ok := s.nnf(f, true)
	if !ok {
		return Result{Status: UNKNOWN, Stats: s.stats}
	}
	s.ackermann()

	b := &cnfBuilder{numVars: len(s.atoms)}
	b.clauses = append(b.clauses, s.extraClauses...)
	rootLit, isConst, constVal := b.tseitin(root)
	if isConst {
		if constVal {
			return Result{Status: SAT, Model: smt.NewModel(), Stats: s.stats}
		}
		return Result{Status: UNSAT, Stats: s.stats}
	}
	b.addClause(rootLit)
	s.stats.Atoms = len(s.atoms)
	s.stats.Clauses = len(b.clauses)

	d := newCDCL(b.numVars, b.clauses, &s.stats)
	theory := make([]bool, b.numVars)
	for i := range s.atoms {
		k := s.atoms[i].kind
		theory[i] = k == aLin || k == aStr
	}
	d.theoryAtom = theory

	// CDCL(T): propagate to fixpoint, theory-check the partial assignment
	// (learning a shrunken unsat core on conflict and resolving it through
	// first-UIP analysis), decide, repeat. At a full assignment the theory
	// model is verified against the input formula. Theory checks are
	// skipped while no new theory atom has been assigned since the last
	// consistent check: a theory-consistent assignment stays consistent
	// under purely Boolean/auxiliary extensions.
	sawUnknown := false
	exhausted := func() Result {
		if sawUnknown {
			return Result{Status: UNKNOWN, Stats: s.stats}
		}
		return Result{Status: UNSAT, Stats: s.stats}
	}
	if !d.ok {
		return exhausted()
	}
	checkedEvents := -1
	for s.stats.TheoryCalls < lim.MaxTheoryCalls {
		if s.stop != nil && s.stop() {
			return Result{Status: UNKNOWN, Stats: s.stats}
		}
		if confl := d.propagate(); confl != nil {
			s.stats.Conflicts++
			if !d.resolveConflict(confl) {
				return exhausted()
			}
			continue
		}
		full := d.fullyAssigned()
		if !full && d.theoryEvents == checkedEvents {
			v := d.pickVar()
			d.decide(v, s.preferredPhase(d, v))
			continue
		}
		s.stats.TheoryCalls++
		checkedEvents = d.theoryEvents
		model, st, core := s.theoryCheck(d)
		if st == linUNSAT {
			// Learn the negation of the (shrunken) conflicting core and
			// resolve it like any other conflict: analysis backjumps
			// non-chronologically and the learned clause prunes every
			// assignment extending the core, not just the current one.
			cl := make([]lit, 0, len(core))
			for _, id := range core {
				cl = append(cl, mkLit(id, d.assign[id] == 1))
			}
			s.stats.Conflicts++
			if !d.learnClause(cl) {
				return exhausted()
			}
			continue
		}
		if full {
			// Full assignment with a consistent theory.
			if st == linSAT && smt.Eval(f, model).B {
				return Result{Status: SAT, Model: model, Stats: s.stats}
			}
			// UNKNOWN theory or (defensively) failed verification: block
			// this complete atom assignment and move on.
			sawUnknown = true
			cl := make([]lit, 0, len(s.atoms))
			for id := range s.atoms {
				cl = append(cl, mkLit(id, d.assign[id] == 1))
			}
			if !d.learnClause(cl) {
				return exhausted()
			}
			continue
		}
		v := d.pickVar()
		d.decide(v, s.preferredPhase(d, v))
	}
	return Result{Status: UNKNOWN, Stats: s.stats}
}

// ---------------------------------------------------------------------------
// Atomization

type atomKind uint8

const (
	aLin atomKind = iota
	aStr
	aBool
	aSel
)

type atomInfo struct {
	kind atomKind
	lin  *linCon // for aLin; op ∈ {opLE, opLT, opEQ}
	// linNeg is the prebuilt negation of lin, so theory checks hand the
	// arithmetic solver shared immutable constraints instead of cloning
	// and negating per call.
	linNeg *linCon
	l, r   strTerm // for aStr (always an equality atom)
	name   string  // for aBool
	root   string  // for aSel
	key    smt.Expr
}

// strPair interns string-equality atoms by their canonically ordered
// operand pair; selKey interns select atoms by root array and hash-consed
// key expression (interning makes structural key equality a pointer
// compare).
type strPair struct{ l, r strTerm }

type selKey struct {
	root string
	key  smt.Expr
}

type session struct {
	lim   Limits
	atoms []atomInfo
	// Typed atom-interning indexes, replacing the old flat string-key map
	// (which rebuilt a canonical key string per lookup).
	boolAtoms  map[string]int
	strAtoms   map[strPair]int
	selAtomIdx map[selKey]int
	// linBuckets indexes linear atoms by a 64-bit structural fingerprint;
	// candidates within a bucket are compared coefficient-wise.
	linBuckets map[uint64][]int

	intVars      map[string]bool
	selAtoms     []int // indices of aSel atoms
	extraClauses [][]lit
	stats        Stats
	// stop is polled inside the CDCL(T) loop; non-nil only for SolveCtx
	// calls whose context can actually be canceled.
	stop func() bool
	// lastAsn caches the most recent satisfying arithmetic assignment;
	// successive theory checks mostly extend a consistent partial
	// assignment, so re-evaluating the cached model avoids a full
	// Fourier–Motzkin run on the (common) still-satisfied path.
	lastAsn map[string]*big.Rat
}

func (s *session) addAtom(info atomInfo) int {
	id := len(s.atoms)
	s.atoms = append(s.atoms, info)
	if info.kind == aSel {
		s.selAtoms = append(s.selAtoms, id)
	}
	return id
}

func (s *session) internBool(name string) int {
	if id, ok := s.boolAtoms[name]; ok {
		return id
	}
	id := s.addAtom(atomInfo{kind: aBool, name: name})
	s.boolAtoms[name] = id
	return id
}

func (s *session) internStr(a, b strTerm) int {
	k := strPair{l: a, r: b}
	if id, ok := s.strAtoms[k]; ok {
		return id
	}
	id := s.addAtom(atomInfo{kind: aStr, l: a, r: b})
	s.strAtoms[k] = id
	return id
}

func (s *session) internSel(root string, key smt.Expr) int {
	k := selKey{root: root, key: key}
	if id, ok := s.selAtomIdx[k]; ok {
		return id
	}
	id := s.addAtom(atomInfo{kind: aSel, root: root, key: key})
	s.selAtomIdx[k] = id
	return id
}

func (s *session) internLin(lc *linCon) int {
	h := linFingerprint(lc)
	for _, id := range s.linBuckets[h] {
		if linConEqual(s.atoms[id].lin, lc) {
			return id
		}
	}
	neg := negLinCon(lc)
	lc.buildFast()
	neg.buildFast()
	id := s.addAtom(atomInfo{kind: aLin, lin: lc, linNeg: neg})
	s.linBuckets[h] = append(s.linBuckets[h], id)
	return id
}

// nnf converts e (under polarity pos) into a pnode tree, atomizing leaves.
// It returns ok=false when e falls outside the solvable fragment.
func (s *session) nnf(e smt.Expr, pos bool) (*pnode, bool) {
	switch t := e.(type) {
	case smt.BoolConst:
		return &pnode{kind: pConst, b: t.B == pos}, true
	case smt.Var:
		if t.S != smt.SortBool {
			return nil, false
		}
		id := s.internBool(t.Name)
		return &pnode{kind: pLit, lit: mkLit(id, !pos)}, true
	case smt.Not:
		return s.nnf(t.X, !pos)
	case *smt.NAry:
		kind := pAnd
		if t.Conj != pos {
			kind = pOr
		}
		n := &pnode{kind: kind}
		for _, x := range t.Xs {
			k, ok := s.nnf(x, pos)
			if !ok {
				return nil, false
			}
			n.kids = append(n.kids, k)
		}
		return n, true
	case *smt.Select:
		if t.Arr.Parent != nil {
			// expandSelects should have removed non-root selects.
			return nil, false
		}
		id := s.internSel(t.Arr.ID, smt.Intern(t.Key))
		return &pnode{kind: pLit, lit: mkLit(id, !pos)}, true
	case *smt.Cmp:
		return s.nnfCmp(t, pos)
	}
	return nil, false
}

func (s *session) nnfCmp(c *smt.Cmp, pos bool) (*pnode, bool) {
	switch c.L.Sort() {
	case smt.SortBool:
		// a = b  ⇔  (a ∧ b) ∨ (¬a ∧ ¬b); a != b is its negation.
		eq := smt.Or(smt.And(c.L, c.R), smt.And(smt.Negate(c.L), smt.Negate(c.R)))
		if c.Op == smt.NE {
			pos = !pos
		}
		return s.nnf(eq, pos)
	case smt.SortString:
		lt, ok1 := strTermOf(c.L)
		rt, ok2 := strTermOf(c.R)
		if !ok1 || !ok2 {
			return nil, false
		}
		// Canonical order for interning.
		a, b := lt, rt
		if b.key() < a.key() {
			a, b = b, a
		}
		id := s.internStr(a, b)
		neg := c.Op == smt.NE
		return &pnode{kind: pLit, lit: mkLit(id, neg == pos)}, true
	default:
		return s.nnfNum(c, pos)
	}
}

func strTermOf(e smt.Expr) (strTerm, bool) {
	switch t := e.(type) {
	case smt.StrConst:
		return strTerm{isConst: true, s: t.S}, true
	case smt.Var:
		return strTerm{s: t.Name}, true
	}
	return strTerm{}, false
}

// nnfNum atomizes a numeric comparison into a canonical linear atom.
func (s *session) nnfNum(c *smt.Cmp, pos bool) (*pnode, bool) {
	coeffs := map[string]*big.Rat{}
	konst := new(big.Rat)
	if !linearize(c.L, big.NewRat(1, 1), coeffs, konst) {
		return nil, false
	}
	if !linearize(c.R, big.NewRat(-1, 1), coeffs, konst) {
		return nil, false
	}
	// Now: Σ coeffs·x + konst  op  0  ⇔  Σ coeffs·x  op  -konst.
	rhs := new(big.Rat).Neg(konst)
	op := c.Op
	neg := false
	switch op {
	case smt.GT: // Σ > rhs ⇔ -Σ < -rhs
		negateLin(coeffs, rhs)
		op = smt.LT
	case smt.GE:
		negateLin(coeffs, rhs)
		op = smt.LE
	case smt.NE:
		op = smt.EQ
		neg = true
	}
	if len(coeffs) == 0 {
		zero := new(big.Rat)
		var truth bool
		switch op {
		case smt.LT:
			truth = zero.Cmp(rhs) < 0
		case smt.LE:
			truth = zero.Cmp(rhs) <= 0
		case smt.EQ:
			truth = zero.Cmp(rhs) == 0
		}
		return &pnode{kind: pConst, b: (truth != neg) == pos}, true
	}
	lc := newLinCon(opLE)
	switch op {
	case smt.LT:
		lc.op = opLT
	case smt.EQ:
		lc.op = opEQ
		// Canonical sign for equalities: coefficient of the smallest
		// variable name is positive.
		x := pickVar(coeffs)
		if coeffs[x].Sign() < 0 {
			negateLin(coeffs, rhs)
		}
	}
	// Scale so the smallest variable's coefficient has magnitude 1.
	x := pickVar(coeffs)
	scale := new(big.Rat).Abs(coeffs[x])
	inv := new(big.Rat).Inv(scale)
	for _, v := range coeffs {
		v.Mul(v, inv)
	}
	rhs.Mul(rhs, inv)
	lc.coeffs = coeffs
	lc.rhs = rhs
	id := s.internLin(lc)
	return &pnode{kind: pLit, lit: mkLit(id, neg == pos)}, true
}

func negateLin(coeffs map[string]*big.Rat, rhs *big.Rat) {
	for _, v := range coeffs {
		v.Neg(v)
	}
	rhs.Neg(rhs)
}

// negLinCon returns the constraint satisfied exactly when c is violated.
func negLinCon(c *linCon) *linCon {
	n := c.clone()
	switch n.op {
	case opLE: // ¬(e ≤ b) ⇔ -e < -b
		negateLin(n.coeffs, n.rhs)
		n.op = opLT
	case opLT: // ¬(e < b) ⇔ -e ≤ -b
		negateLin(n.coeffs, n.rhs)
		n.op = opLE
	case opEQ:
		n.op = opNE
	}
	return n
}

// linFingerprint hashes the canonical content of a linear constraint —
// sorted (name, coefficient) pairs, operator, right-hand side — streaming
// directly into the hash instead of building a key string.
func linFingerprint(c *linCon) uint64 {
	names := make([]string, 0, len(c.coeffs))
	for x := range c.coeffs {
		names = append(names, x)
	}
	sort.Strings(names)
	h := fnv.New64a()
	h.Write([]byte{byte(c.op)})
	io.WriteString(h, c.rhs.RatString())
	for _, x := range names {
		io.WriteString(h, "|")
		io.WriteString(h, x)
		io.WriteString(h, "*")
		io.WriteString(h, c.coeffs[x].RatString())
	}
	return h.Sum64()
}

// linConEqual reports structural equality of two constraints.
func linConEqual(a, b *linCon) bool {
	if a.op != b.op || len(a.coeffs) != len(b.coeffs) || a.rhs.Cmp(b.rhs) != 0 {
		return false
	}
	for x, av := range a.coeffs {
		bv, ok := b.coeffs[x]
		if !ok || av.Cmp(bv) != 0 {
			return false
		}
	}
	return true
}

// ackermann adds congruence clauses for every pair of select atoms over
// the same root array: (k1 = k2) → (s1 ↔ s2).
func (s *session) ackermann() {
	for i := 0; i < len(s.selAtoms); i++ {
		for j := i + 1; j < len(s.selAtoms); j++ {
			ai, aj := s.atoms[s.selAtoms[i]], s.atoms[s.selAtoms[j]]
			if ai.root != aj.root {
				continue
			}
			si := mkLit(s.selAtoms[i], false)
			sj := mkLit(s.selAtoms[j], false)
			if ai.key == aj.key {
				// Keys are hash-consed, so interface equality is
				// structural identity: s_i ↔ s_j outright.
				s.extraClauses = append(s.extraClauses,
					[]lit{si.negate(), sj}, []lit{si, sj.negate()})
				continue
			}
			if smt.IsConst(ai.key) && smt.IsConst(aj.key) {
				if !smt.Eval(ai.key, nil).Equal(smt.Eval(aj.key, nil)) {
					continue // provably distinct keys: independent
				}
				s.extraClauses = append(s.extraClauses,
					[]lit{si.negate(), sj}, []lit{si, sj.negate()})
				continue
			}
			eqNode, ok := s.nnf(smt.Eq(ai.key, aj.key), true)
			if !ok || eqNode.kind != pLit {
				continue
			}
			eq := eqNode.lit
			s.extraClauses = append(s.extraClauses,
				[]lit{eq.negate(), si.negate(), sj},
				[]lit{eq.negate(), si, sj.negate()})
		}
	}
}

// ---------------------------------------------------------------------------
// Theory integration

// theoryCheck validates the (possibly partial) CDCL assignment against
// the arithmetic and string theories. On inconsistency it returns a
// shrunken unsat core of atom ids; on full consistency it constructs a
// model.
func (s *session) theoryCheck(d *cdcl) (*smt.Model, linStatus, []int) {
	var linIDs, strIDs []int
	for id := range s.atoms {
		if d.assign[id] == 0 {
			continue
		}
		switch s.atoms[id].kind {
		case aLin:
			linIDs = append(linIDs, id)
		case aStr:
			strIDs = append(strIDs, id)
		}
	}
	strCons := func(ids []int) []strConstraint {
		out := make([]strConstraint, 0, len(ids))
		for _, id := range ids {
			info := s.atoms[id]
			out = append(out, strConstraint{l: info.l, r: info.r, eq: d.assign[id] == 1})
		}
		return out
	}
	// The arithmetic solvers never mutate their input constraints (they
	// clone internally before substitution), so assignments share the
	// atoms' prebuilt positive/negated constraints directly.
	linCons := func(ids []int) []*linCon {
		out := make([]*linCon, 0, len(ids))
		for _, id := range ids {
			info := &s.atoms[id]
			if d.assign[id] == 1 {
				out = append(out, info.lin)
			} else {
				out = append(out, info.linNeg)
			}
		}
		return out
	}

	strAsn, ok := solveStrings(strCons(strIDs))
	if !ok {
		core := shrinkCore(strIDs, func(ids []int) bool {
			_, ok := solveStrings(strCons(ids))
			return !ok
		})
		return nil, linUNSAT, core
	}
	cons := linCons(linIDs)
	var numAsn map[string]*big.Rat
	if s.lastAsn != nil && allHold(cons, s.lastAsn) {
		numAsn = s.lastAsn
	} else {
		var st linStatus
		numAsn, st = solveLinear(cons, s.intVars, s.lim.FM)
		if st == linUNSAT {
			// Shrink the core against the rational relaxation (drop NE
			// constraints, skip branch-and-bound): relaxation-UNSAT
			// implies full-UNSAT, and the relaxed test is much cheaper.
			relaxedUnsat := func(ids []int) bool {
				var keep []*linCon
				for _, c := range linCons(ids) {
					if c.op != opNE {
						keep = append(keep, c)
					}
				}
				_, st := solveRational(keep, s.lim.FM)
				return st == linUNSAT
			}
			var core []int
			if relaxedUnsat(linIDs) {
				core = shrinkCore(linIDs, relaxedUnsat)
			} else {
				// The conflict needs NE or integrality reasoning; shrink
				// with the full check under a tighter size cap.
				core = shrinkCoreCapped(linIDs, 24, func(ids []int) bool {
					_, st := solveLinear(linCons(ids), s.intVars, s.lim.FM)
					return st == linUNSAT
				})
			}
			return nil, linUNSAT, core
		}
		if st == linUNKNOWN {
			return nil, linUNKNOWN, nil
		}
		s.lastAsn = numAsn
	}
	if !d.fullyAssigned() {
		// Partial assignment: consistent so far; no model needed yet.
		return nil, linSAT, nil
	}

	m := smt.NewModel()
	for x, v := range numAsn {
		if s.intVars[x] {
			if !v.IsInt() {
				return nil, linUNKNOWN, nil
			}
			m.Vars[x] = smt.IntValue(v.Num().Int64())
		} else {
			m.Vars[x] = smt.RealValue(v)
		}
	}
	for x, v := range strAsn {
		m.Vars[x] = smt.StrValue(v)
	}
	for id, info := range s.atoms {
		if info.kind != aBool || d.assign[id] == 0 {
			continue
		}
		m.Vars[info.name] = smt.BoolValue(d.assign[id] == 1)
	}
	for _, id := range s.selAtoms {
		if d.assign[id] != 1 {
			continue // absent keys default to false
		}
		info := s.atoms[id]
		kv := smt.Eval(info.key, m)
		ent := m.Arrays[info.root]
		if ent == nil {
			ent = map[string]bool{}
			m.Arrays[info.root] = ent
		}
		ent[kv.String()] = true
	}
	return m, linSAT, nil
}

// preferredPhase proposes a decision polarity: the value the cached
// arithmetic model already satisfies (keeping most decisions theory-
// consistent so the expensive Fourier–Motzkin path stays cold), falling
// back to the engine's saved phase from before the last backjump.
func (s *session) preferredPhase(d *cdcl, v int) bool {
	if v < len(s.atoms) {
		info := &s.atoms[v]
		if info.kind == aLin && s.lastAsn != nil {
			return info.lin.holds(s.lastAsn)
		}
	}
	return d.savedPhase(v) == 1
}

// shrinkCore minimizes an inconsistent atom set by chunked deletion:
// first drop whole halves while the remainder stays inconsistent, then
// refine element-wise. Small cores become strong learned clauses.
func shrinkCore(ids []int, stillUnsat func([]int) bool) []int {
	return shrinkCoreCapped(ids, 192, stillUnsat)
}

// shrinkCoreCapped is shrinkCore with an explicit size cap: sets larger
// than maxLen are returned unshrunk, bounding the number of (possibly
// expensive) stillUnsat probes.
func shrinkCoreCapped(ids []int, maxLen int, stillUnsat func([]int) bool) []int {
	if len(ids) > maxLen {
		return ids
	}
	core := append([]int(nil), ids...)
	// Chunked pass: try dropping progressively smaller chunks.
	for chunk := len(core) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(core) && len(core) > 1; {
			cand := make([]int, 0, len(core)-chunk)
			cand = append(cand, core[:start]...)
			cand = append(cand, core[start+chunk:]...)
			if stillUnsat(cand) {
				core = cand
			} else {
				start += chunk
			}
		}
	}
	return core
}

// ---------------------------------------------------------------------------
// Array expansion

// expandSelects rewrites reads over store chains into Boolean structure so
// only root-array reads remain: read(write(A,k,v), key) becomes
// ite(key = k, v, read(A, key)).
func expandSelects(e smt.Expr) smt.Expr {
	switch t := e.(type) {
	case *smt.Select:
		return expandChain(t.Arr, t.Key)
	case smt.Not:
		return smt.Negate(expandSelects(t.X))
	case *smt.NAry:
		xs := make([]smt.Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = expandSelects(x)
		}
		if t.Conj {
			return smt.And(xs...)
		}
		return smt.Or(xs...)
	case *smt.Cmp:
		// Comparison operands are Int/Real/String terms and contain no
		// selects in the supported fragment.
		return t
	}
	return e
}

func expandChain(a *smt.Array, key smt.Expr) smt.Expr {
	if a.Parent == nil {
		return smt.Read(a, key)
	}
	rest := expandChain(a.Parent, key)
	hit := smt.Eq(key, a.StoreKey)
	if a.StoreVal {
		return smt.Or(hit, smt.And(smt.Negate(hit), rest))
	}
	return smt.And(smt.Negate(hit), rest)
}
