package solver

import (
	"fmt"
	"sort"
)

// The string theory decides conjunctions of (dis)equalities between string
// variables and string constants — the full extent of the Fig. 7 StrExp
// grammar — via union-find with disequality edges, and produces a model by
// assigning witness strings to unconstrained classes.

// strTerm is a string-sorted term: a variable or a constant.
type strTerm struct {
	isConst bool
	s       string // var name or constant value
}

func (t strTerm) String() string {
	if t.isConst {
		return fmt.Sprintf("%q", t.s)
	}
	return t.s
}

// strConstraint is an equality (eq=true) or disequality between two terms.
type strConstraint struct {
	l, r strTerm
	eq   bool
}

type strUF struct {
	parent map[string]string
	// constOf maps a class representative to the constant value the class
	// is pinned to, if any.
	constOf map[string]string
}

func newStrUF() *strUF {
	return &strUF{parent: map[string]string{}, constOf: map[string]string{}}
}

func (u *strUF) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// union merges the classes of x and y; it returns false on constant clash.
func (u *strUF) union(x, y string) bool {
	rx, ry := u.find(x), u.find(y)
	if rx == ry {
		return true
	}
	cx, okx := u.constOf[rx]
	cy, oky := u.constOf[ry]
	if okx && oky && cx != cy {
		return false
	}
	u.parent[ry] = rx
	if oky {
		u.constOf[rx] = cy
	}
	return true
}

// key returns the union-find node name for a term. Constants get a
// reserved prefix so they can never collide with variable names.
func (t strTerm) key() string {
	if t.isConst {
		return "\x00const:" + t.s
	}
	return t.s
}

// solveStrings decides a conjunction of string constraints. On success it
// returns an assignment for every variable mentioned.
func solveStrings(cons []strConstraint) (map[string]string, bool) {
	u := newStrUF()
	seen := map[string]bool{}
	note := func(t strTerm) {
		k := t.key()
		u.find(k)
		if t.isConst {
			u.constOf[u.find(k)] = t.s
		} else {
			seen[t.s] = true
		}
	}
	for _, c := range cons {
		note(c.l)
		note(c.r)
	}
	for _, c := range cons {
		if c.eq {
			if !u.union(c.l.key(), c.r.key()) {
				return nil, false
			}
		}
	}
	for _, c := range cons {
		if !c.eq && u.find(c.l.key()) == u.find(c.r.key()) {
			return nil, false
		}
	}
	// Model: classes pinned to a constant take it; the rest take distinct
	// fresh witnesses that differ from every constant in play.
	asn := map[string]string{}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	constSet := map[string]bool{}
	for _, c := range u.constOf {
		constSet[c] = true
	}
	fresh := map[string]string{}
	n := 0
	for _, v := range vars {
		root := u.find(v)
		if c, ok := u.constOf[root]; ok {
			asn[v] = c
			continue
		}
		w, ok := fresh[root]
		for !ok {
			w = fmt.Sprintf("!w%d", n)
			n++
			ok = !constSet[w] // avoid colliding with a constant in play
		}
		fresh[root] = w
		asn[v] = w
	}
	return asn, true
}

func strTermValue(t strTerm, asn map[string]string) string {
	if t.isConst {
		return t.s
	}
	return asn[t.s]
}
