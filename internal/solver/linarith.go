package solver

import (
	"math/big"
	"sort"

	"weseer/internal/smt"
)

// This file implements the linear-arithmetic theory solver: Fourier–Motzkin
// elimination over exact rationals with Gaussian pre-substitution of
// equalities, branching over disequalities, and branch-and-bound for
// integer-sorted variables. It both decides satisfiability and produces a
// satisfying assignment for model construction.

type linOp uint8

const (
	opLE linOp = iota
	opLT
	opEQ
	opNE
)

// linCon is the constraint Σ coeffs[x]·x  op  rhs.
type linCon struct {
	coeffs map[string]*big.Rat
	rhs    *big.Rat
	op     linOp

	// fast is an int64 view of the constraint, built by buildFast for
	// atom constraints only (which are immutable once interned). holds
	// evaluates through it without big.Rat allocations whenever the
	// assignment values are small integers. Mutable clones never carry it:
	// clone() allocates a fresh linCon with fast == nil.
	fast    []fastTerm
	fastRHS int64
}

// fastTerm is one integer-coefficient term of the fast view.
type fastTerm struct {
	name string
	co   int64
}

// fastLimit bounds the magnitudes admitted into the fast path so that
// coefficient·value products and their running sum cannot overflow int64.
const fastLimit = int64(1) << 31

// buildFast caches the int64 view when every coefficient and the
// right-hand side are small integers. Callers must only invoke it on
// constraints that will never be mutated afterwards.
func (c *linCon) buildFast() {
	terms := make([]fastTerm, 0, len(c.coeffs))
	for x, co := range c.coeffs {
		v, ok := smallInt(co)
		if !ok {
			return
		}
		terms = append(terms, fastTerm{name: x, co: v})
	}
	rhs, ok := smallInt(c.rhs)
	if !ok {
		return
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].name < terms[j].name })
	c.fast = terms
	c.fastRHS = rhs
}

// smallInt reports r as an int64 when it is an integer below fastLimit.
func smallInt(r *big.Rat) (int64, bool) {
	if !r.IsInt() || !r.Num().IsInt64() {
		return 0, false
	}
	v := r.Num().Int64()
	if v >= fastLimit || v <= -fastLimit {
		return 0, false
	}
	return v, true
}

// holdsFast evaluates the constraint through the int64 view. The second
// return is false when some assignment value falls outside the small-int
// range and the caller must take the exact big.Rat path.
func (c *linCon) holdsFast(asn map[string]*big.Rat) (bool, bool) {
	const sumLimit = int64(1) << 62
	var sum int64
	for _, t := range c.fast {
		r, ok := asn[t.name]
		if !ok {
			continue // missing vars count as 0
		}
		v, small := smallInt(r)
		if !small {
			return false, false
		}
		// |co|,|v| < 2^31 keeps each product under 2^62, so adding one to
		// a sum bounded by 2^62 cannot wrap; re-checking the bound after
		// every addition keeps the invariant.
		sum += t.co * v
		if sum >= sumLimit || sum <= -sumLimit {
			return false, false
		}
	}
	switch c.op {
	case opLE:
		return sum <= c.fastRHS, true
	case opLT:
		return sum < c.fastRHS, true
	case opEQ:
		return sum == c.fastRHS, true
	case opNE:
		return sum != c.fastRHS, true
	}
	return false, false
}

func newLinCon(op linOp) *linCon {
	return &linCon{coeffs: map[string]*big.Rat{}, rhs: new(big.Rat), op: op}
}

func (c *linCon) clone() *linCon {
	n := newLinCon(c.op)
	n.rhs.Set(c.rhs)
	for k, v := range c.coeffs {
		n.coeffs[k] = new(big.Rat).Set(v)
	}
	return n
}

// addTerm adds coeff·x to the left-hand side.
func (c *linCon) addTerm(x string, coeff *big.Rat) {
	if cur, ok := c.coeffs[x]; ok {
		cur.Add(cur, coeff)
		if cur.Sign() == 0 {
			delete(c.coeffs, x)
		}
		return
	}
	if coeff.Sign() != 0 {
		c.coeffs[x] = new(big.Rat).Set(coeff)
	}
}

// eval returns lhs value under the assignment; missing vars count as 0.
func (c *linCon) eval(asn map[string]*big.Rat) *big.Rat {
	sum := new(big.Rat)
	for x, co := range c.coeffs {
		if v, ok := asn[x]; ok {
			sum.Add(sum, new(big.Rat).Mul(co, v))
		}
	}
	return sum
}

// holds reports whether the constraint is satisfied under a total
// assignment of its variables.
func (c *linCon) holds(asn map[string]*big.Rat) bool {
	if c.fast != nil {
		if res, ok := c.holdsFast(asn); ok {
			return res
		}
	}
	cmp := c.eval(asn).Cmp(c.rhs)
	switch c.op {
	case opLE:
		return cmp <= 0
	case opLT:
		return cmp < 0
	case opEQ:
		return cmp == 0
	case opNE:
		return cmp != 0
	}
	return false
}

// linearize converts a numeric smt expression into Σ coeff·x + constant.
// It returns false if the expression is outside the linear fragment.
func linearize(e smt.Expr, scale *big.Rat, coeffs map[string]*big.Rat, konst *big.Rat) bool {
	switch t := e.(type) {
	case smt.IntConst:
		konst.Add(konst, new(big.Rat).Mul(scale, new(big.Rat).SetInt64(t.V)))
		return true
	case smt.RealConst:
		konst.Add(konst, new(big.Rat).Mul(scale, t.V))
		return true
	case smt.Var:
		if cur, ok := coeffs[t.Name]; ok {
			cur.Add(cur, scale)
			if cur.Sign() == 0 {
				delete(coeffs, t.Name)
			}
		} else if scale.Sign() != 0 {
			coeffs[t.Name] = new(big.Rat).Set(scale)
		}
		return true
	case *smt.Arith:
		switch t.Op {
		case smt.OpAdd:
			return linearize(t.L, scale, coeffs, konst) && linearize(t.R, scale, coeffs, konst)
		case smt.OpSub:
			neg := new(big.Rat).Neg(scale)
			return linearize(t.L, scale, coeffs, konst) && linearize(t.R, neg, coeffs, konst)
		case smt.OpNeg:
			neg := new(big.Rat).Neg(scale)
			return linearize(t.L, neg, coeffs, konst)
		case smt.OpMul:
			if k, ok := constRat(t.L); ok {
				return linearize(t.R, new(big.Rat).Mul(scale, k), coeffs, konst)
			}
			if k, ok := constRat(t.R); ok {
				return linearize(t.L, new(big.Rat).Mul(scale, k), coeffs, konst)
			}
			return false
		}
	}
	return false
}

func constRat(e smt.Expr) (*big.Rat, bool) {
	switch t := e.(type) {
	case smt.IntConst:
		return new(big.Rat).SetInt64(t.V), true
	case smt.RealConst:
		return new(big.Rat).Set(t.V), true
	}
	return nil, false
}

// allHold reports whether every constraint holds under the assignment
// (missing variables evaluate as 0).
func allHold(cons []*linCon, asn map[string]*big.Rat) bool {
	for _, c := range cons {
		if !c.holds(asn) {
			return false
		}
	}
	return true
}

// linStatus is the outcome of a theory check.
type linStatus uint8

const (
	linSAT linStatus = iota
	linUNSAT
	linUNKNOWN
)

// fmLimits bound the work of one theory call so pathological inputs yield
// UNKNOWN instead of hanging (the paper treats Z3 timeouts the same way).
type fmLimits struct {
	maxConstraints int
	maxNEBranch    int
	maxIntDepth    int
	// stop is polled between elimination rounds and branch-and-bound
	// nodes; non-nil only under a cancelable context (see SolveCtx).
	stop func() bool
}

func defaultFMLimits() fmLimits {
	return fmLimits{maxConstraints: 200000, maxNEBranch: 24, maxIntDepth: 64}
}

// solveLinear decides the conjunction of constraints and, when satisfiable,
// returns an assignment. intVars lists variables that must take integral
// values.
func solveLinear(cons []*linCon, intVars map[string]bool, lim fmLimits) (map[string]*big.Rat, linStatus) {
	return solveNE(cons, intVars, lim, lim.maxNEBranch)
}

// solveNE handles disequalities lazily: solve the relaxation without
// them, and only case-split a disequality the relaxed model violates.
// Executions rarely pin values onto their excluded points, so this
// typically costs zero splits instead of 2^|NE|.
func solveNE(cons []*linCon, intVars map[string]bool, lim fmLimits, neBudget int) (map[string]*big.Rat, linStatus) {
	var nes, rest []*linCon
	for _, c := range cons {
		if c.op == opNE {
			nes = append(nes, c)
		} else {
			rest = append(rest, c)
		}
	}
	m, st := solveIntBB(rest, intVars, lim, lim.maxIntDepth)
	if st != linSAT {
		return nil, st
	}
	violated := -1
	for i, ne := range nes {
		if !ne.holds(m) {
			violated = i
			break
		}
	}
	if violated < 0 {
		return m, linSAT
	}
	if neBudget <= 0 {
		return nil, linUNKNOWN
	}
	ne := nes[violated]
	keep := make([]*linCon, 0, len(cons)-1)
	keep = append(keep, rest...)
	for i, other := range nes {
		if i != violated {
			keep = append(keep, other)
		}
	}
	unknown := false
	for _, side := range []bool{true, false} { // lhs < rhs, then lhs > rhs
		b := ne.clone()
		b.op = opLT
		if !side { // lhs > rhs  ⇔  -lhs < -rhs
			for _, v := range b.coeffs {
				v.Neg(v)
			}
			b.rhs.Neg(b.rhs)
		}
		m2, st2 := solveNE(append(cloneCons(keep), b), intVars, lim, neBudget-1)
		switch st2 {
		case linSAT:
			return m2, linSAT
		case linUNKNOWN:
			unknown = true
		}
	}
	if unknown {
		return nil, linUNKNOWN
	}
	return nil, linUNSAT
}

// solveIntBB solves the rational relaxation and repairs fractional values
// of integer variables by branch and bound.
func solveIntBB(cons []*linCon, intVars map[string]bool, lim fmLimits, depth int) (map[string]*big.Rat, linStatus) {
	if lim.stop != nil && lim.stop() {
		return nil, linUNKNOWN
	}
	m, st := solveRational(cons, lim)
	if st != linSAT {
		return nil, st
	}
	var fracVar string
	var fracVal *big.Rat
	// Deterministic choice of the fractional variable to branch on.
	names := make([]string, 0, len(m))
	for x := range m {
		names = append(names, x)
	}
	sort.Strings(names)
	for _, x := range names {
		if intVars[x] && !m[x].IsInt() {
			fracVar, fracVal = x, m[x]
			break
		}
	}
	if fracVar == "" {
		return m, linSAT
	}
	if depth <= 0 {
		return nil, linUNKNOWN
	}
	floor := ratFloor(fracVal)
	unknown := false
	// Branch x <= floor(v).
	le := newLinCon(opLE)
	le.coeffs[fracVar] = big.NewRat(1, 1)
	le.rhs.Set(floor)
	if m2, st := solveIntBB(append(cloneCons(cons), le), intVars, lim, depth-1); st == linSAT {
		return m2, linSAT
	} else if st == linUNKNOWN {
		unknown = true
	}
	// Branch x >= floor(v)+1  ⇔  -x <= -(floor+1).
	ge := newLinCon(opLE)
	ge.coeffs[fracVar] = big.NewRat(-1, 1)
	ge.rhs.Neg(new(big.Rat).Add(floor, big.NewRat(1, 1)))
	if m2, st := solveIntBB(append(cloneCons(cons), ge), intVars, lim, depth-1); st == linSAT {
		return m2, linSAT
	} else if st == linUNKNOWN {
		unknown = true
	}
	if unknown {
		return nil, linUNKNOWN
	}
	return nil, linUNSAT
}

func cloneCons(cons []*linCon) []*linCon {
	out := make([]*linCon, len(cons))
	copy(out, cons)
	return out
}

func ratFloor(r *big.Rat) *big.Rat {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

// elimRecord remembers how a variable was eliminated so its value can be
// recovered by back-substitution.
type elimRecord struct {
	x string
	// For Gaussian elimination of x via an equality: x = expr.
	eqExpr *linCon // interpretation: x = Σ coeffs·y + rhs
	gauss  bool
	bounds []*linCon // for FM: original constraints involving x
}

// solveRational runs Gaussian + Fourier–Motzkin elimination over Q.
func solveRational(cons []*linCon, lim fmLimits) (map[string]*big.Rat, linStatus) {
	work := make([]*linCon, 0, len(cons))
	for _, c := range cons {
		work = append(work, c.clone())
	}
	var elims []elimRecord

	// Phase 1: substitute away equalities.
	for {
		eqIdx := -1
		for i, c := range work {
			if c.op == opEQ && len(c.coeffs) > 0 {
				eqIdx = i
				break
			}
		}
		if eqIdx < 0 {
			break
		}
		eq := work[eqIdx]
		x := pickVar(eq.coeffs)
		a := eq.coeffs[x]
		// x = (rhs - Σ other coeffs·y) / a
		expr := newLinCon(opEQ)
		expr.rhs = new(big.Rat).Quo(eq.rhs, a)
		for y, co := range eq.coeffs {
			if y == x {
				continue
			}
			q := new(big.Rat).Quo(co, a)
			q.Neg(q)
			expr.coeffs[y] = q
		}
		elims = append(elims, elimRecord{x: x, eqExpr: expr, gauss: true})
		work = append(work[:eqIdx], work[eqIdx+1:]...)
		for _, c := range work {
			substVar(c, x, expr)
		}
	}

	// Phase 2: Fourier–Motzkin on inequalities.
	for {
		if lim.stop != nil && lim.stop() {
			return nil, linUNKNOWN
		}
		x := pickElimVar(work)
		if x == "" {
			break
		}
		var lowers, uppers, rest []*linCon
		var involved []*linCon
		for _, c := range work {
			co, ok := c.coeffs[x]
			if !ok {
				rest = append(rest, c)
				continue
			}
			involved = append(involved, c)
			if co.Sign() > 0 {
				uppers = append(uppers, c) // a·x + e op b with a>0 → x ≤ (b-e)/a
			} else {
				lowers = append(lowers, c)
			}
		}
		for _, lo := range lowers {
			for _, hi := range uppers {
				nc := combineFM(lo, hi, x)
				if len(nc.coeffs) == 0 {
					if !constHolds(nc) {
						return nil, linUNSAT
					}
					continue
				}
				rest = append(rest, nc)
			}
		}
		if len(rest) > lim.maxConstraints {
			return nil, linUNKNOWN
		}
		elims = append(elims, elimRecord{x: x, bounds: involved})
		work = rest
	}

	// Only constant constraints remain.
	for _, c := range work {
		if len(c.coeffs) == 0 && !constHolds(c) {
			return nil, linUNSAT
		}
	}

	// Back-substitution, newest elimination first.
	asn := map[string]*big.Rat{}
	for i := len(elims) - 1; i >= 0; i-- {
		rec := elims[i]
		if rec.gauss {
			v := rec.eqExpr.eval(asn)
			v.Add(v, rec.eqExpr.rhs)
			asn[rec.x] = v
			continue
		}
		v, ok := pickWithinBounds(rec.x, rec.bounds, asn)
		if !ok {
			// Should not happen if FM was performed correctly.
			return nil, linUNKNOWN
		}
		asn[rec.x] = v
	}
	return asn, linSAT
}

func pickVar(coeffs map[string]*big.Rat) string {
	best := ""
	for x := range coeffs {
		if best == "" || x < best {
			best = x
		}
	}
	return best
}

// pickElimVar picks the variable occurring in the fewest constraints to
// bound the quadratic growth of FM.
func pickElimVar(cons []*linCon) string {
	count := map[string]int{}
	for _, c := range cons {
		for x := range c.coeffs {
			count[x]++
		}
	}
	best, bestN := "", -1
	for x, n := range count {
		if bestN == -1 || n < bestN || (n == bestN && x < best) {
			best, bestN = x, n
		}
	}
	return best
}

// combineFM resolves a lower-bound and an upper-bound constraint on x into
// one constraint without x.
func combineFM(lo, hi *linCon, x string) *linCon {
	// lo: a·x + e1 op1 b1 with a<0  →  (e1-b1)/(-a) ≤ x  (strict if op1==LT)
	// hi: c·x + e2 op2 b2 with c>0  →  x ≤ (b2-e2)/c
	// Combined: (e1-b1)/(-a) OP (b2-e2)/c
	a := new(big.Rat).Neg(lo.coeffs[x]) // a > 0
	c := new(big.Rat).Set(hi.coeffs[x]) // c > 0
	op := opLE
	if lo.op == opLT || hi.op == opLT {
		op = opLT
	}
	// c·(e1-b1) OP a·(b2-e2)  →  c·e1 + a·e2 OP c·b1 + a·b2
	nc := newLinCon(op)
	for y, co := range lo.coeffs {
		if y == x {
			continue
		}
		nc.addTerm(y, new(big.Rat).Mul(c, co))
	}
	for y, co := range hi.coeffs {
		if y == x {
			continue
		}
		nc.addTerm(y, new(big.Rat).Mul(a, co))
	}
	nc.rhs.Add(new(big.Rat).Mul(c, lo.rhs), new(big.Rat).Mul(a, hi.rhs))
	return nc
}

func constHolds(c *linCon) bool {
	zero := new(big.Rat)
	switch c.op {
	case opLE:
		return zero.Cmp(c.rhs) <= 0
	case opLT:
		return zero.Cmp(c.rhs) < 0
	case opEQ:
		return zero.Cmp(c.rhs) == 0
	case opNE:
		return zero.Cmp(c.rhs) != 0
	}
	return false
}

// substVar replaces x in c with expr (x = Σ coeffs·y + rhs).
func substVar(c *linCon, x string, expr *linCon) {
	co, ok := c.coeffs[x]
	if !ok {
		return
	}
	delete(c.coeffs, x)
	for y, e := range expr.coeffs {
		c.addTerm(y, new(big.Rat).Mul(co, e))
	}
	// co·rhs moves to the right-hand side with opposite sign... it is part
	// of the lhs constant: lhs + co·exprRhs op rhs  →  lhs op rhs - co·exprRhs
	c.rhs.Sub(c.rhs, new(big.Rat).Mul(co, expr.rhs))
}

// pickWithinBounds chooses a value for x satisfying every constraint in
// bounds given the already-fixed assignment of the other variables. It
// prefers integral values.
func pickWithinBounds(x string, bounds []*linCon, asn map[string]*big.Rat) (*big.Rat, bool) {
	var lo, hi *big.Rat
	loStrict, hiStrict := false, false
	for _, c := range bounds {
		a := c.coeffs[x]
		// a·x + Σ other ≤/<= rhs  →  x ≤ (rhs - other)/a for a>0
		other := new(big.Rat)
		for y, co := range c.coeffs {
			if y == x {
				continue
			}
			v, ok := asn[y]
			if !ok {
				v = new(big.Rat)
			}
			other.Add(other, new(big.Rat).Mul(co, v))
		}
		bound := new(big.Rat).Sub(c.rhs, other)
		bound.Quo(bound, a)
		strict := c.op == opLT
		if a.Sign() > 0 { // upper bound
			if hi == nil || bound.Cmp(hi) < 0 || (bound.Cmp(hi) == 0 && strict) {
				hi, hiStrict = bound, strict
			}
		} else { // lower bound (inequality flips)
			if lo == nil || bound.Cmp(lo) > 0 || (bound.Cmp(lo) == 0 && strict) {
				lo, loStrict = bound, strict
			}
		}
	}
	return chooseInInterval(lo, loStrict, hi, hiStrict)
}

// chooseInInterval picks a value in the (possibly open) interval, favoring
// integers, then simple rationals.
func chooseInInterval(lo *big.Rat, loStrict bool, hi *big.Rat, hiStrict bool) (*big.Rat, bool) {
	one := big.NewRat(1, 1)
	switch {
	case lo == nil && hi == nil:
		return new(big.Rat), true
	case lo == nil:
		v := ratFloor(hi)
		if hiStrict && v.Cmp(hi) == 0 {
			v.Sub(v, one)
		}
		return v, true
	case hi == nil:
		v := ratCeil(lo)
		if loStrict && v.Cmp(lo) == 0 {
			v.Add(v, one)
		}
		return v, true
	}
	cmp := lo.Cmp(hi)
	if cmp > 0 || (cmp == 0 && (loStrict || hiStrict)) {
		return nil, false
	}
	// Try the smallest integer in the interval.
	v := ratCeil(lo)
	if loStrict && v.Cmp(lo) == 0 {
		v.Add(v, one)
	}
	if c := v.Cmp(hi); c < 0 || (c == 0 && !hiStrict) {
		return v, true
	}
	// No integer fits: midpoint.
	mid := new(big.Rat).Add(lo, hi)
	mid.Quo(mid, big.NewRat(2, 1))
	return mid, true
}

func ratCeil(r *big.Rat) *big.Rat {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() > 0 && !r.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}
