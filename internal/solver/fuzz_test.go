package solver

// Differential fuzzing of the CDCL(T) engine against an enumeration
// oracle. The generator covers the fragment the analyzer actually emits:
// boolean variables, linear integer constraints (including coefficients
// and two-variable sums/differences), and string (in)equalities over
// variables and constants, combined by nested and/or/not. For every
// random formula the oracle enumerates the full cross-product domain;
// the solver must agree on SAT vs UNSAT, and every SAT model must
// re-verify by evaluation.

import (
	"math/rand"
	"testing"

	"weseer/internal/smt"
)

// fuzzCase is one random formula over the fixed fuzz variable set.
type fuzzCase struct {
	f smt.Expr
}

const (
	fuzzIntDomain = 4 // int vars range over 0..3
	fuzzIters     = 600
)

var fuzzStrDomain = []string{"x", "y", "z", "w"}

// genFuzzCase builds one random formula. The int variables are
// domain-restricted inside the formula so the oracle's enumeration is
// decisive.
func genFuzzCase(rng *rand.Rand, ints, strs []smt.Var, bools []smt.Var) fuzzCase {
	strConsts := fuzzStrDomain[:3] // leave "w" outside the mentioned constants

	intTerm := func() smt.Expr {
		v := ints[rng.Intn(len(ints))]
		switch rng.Intn(4) {
		case 0:
			return smt.Add(v, ints[rng.Intn(len(ints))])
		case 1:
			return smt.Sub(v, ints[rng.Intn(len(ints))])
		case 2:
			return smt.Mul(smt.Int(int64(1+rng.Intn(3))), v)
		default:
			return v
		}
	}
	atom := func() smt.Expr {
		switch rng.Intn(3) {
		case 0: // linear integer comparison
			ops := []smt.CmpOp{smt.EQ, smt.NE, smt.LT, smt.LE, smt.GT, smt.GE}
			op := ops[rng.Intn(len(ops))]
			l := intTerm()
			if rng.Intn(2) == 0 {
				return smt.Compare(op, l, smt.Int(int64(rng.Intn(2*fuzzIntDomain))-2))
			}
			return smt.Compare(op, l, intTerm())
		case 1: // string (in)equality
			v := strs[rng.Intn(len(strs))]
			var r smt.Expr
			if rng.Intn(2) == 0 {
				r = smt.Str(strConsts[rng.Intn(len(strConsts))])
			} else {
				r = strs[rng.Intn(len(strs))]
			}
			if rng.Intn(2) == 0 {
				return smt.Eq(v, r)
			}
			return smt.Ne(v, r)
		default: // boolean variable, possibly negated
			b := bools[rng.Intn(len(bools))]
			if rng.Intn(2) == 0 {
				return smt.Negate(b)
			}
			return b
		}
	}
	var gen func(depth int) smt.Expr
	gen = func(depth int) smt.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return atom()
		}
		n := 2 + rng.Intn(3)
		kids := make([]smt.Expr, n)
		for i := range kids {
			kids[i] = gen(depth - 1)
		}
		switch rng.Intn(3) {
		case 0:
			return smt.And(kids...)
		case 1:
			return smt.Or(kids...)
		default:
			return smt.Negate(smt.Or(kids...))
		}
	}

	f := gen(2 + rng.Intn(2))
	for _, v := range ints {
		f = smt.And(f, smt.Ge(v, smt.Int(0)), smt.Lt(v, smt.Int(fuzzIntDomain)))
	}
	return fuzzCase{f: f}
}

// oracleSAT enumerates every assignment over the fuzz domains.
func oracleSAT(f smt.Expr, ints, strs, bools []smt.Var) bool {
	m := smt.NewModel()
	var rec func(k int) bool
	rec = func(k int) bool {
		if k < len(ints) {
			for v := 0; v < fuzzIntDomain; v++ {
				m.Vars[ints[k].Name] = smt.IntValue(int64(v))
				if rec(k + 1) {
					return true
				}
			}
			return false
		}
		if k < len(ints)+len(strs) {
			for _, s := range fuzzStrDomain {
				m.Vars[strs[k-len(ints)].Name] = smt.StrValue(s)
				if rec(k + 1) {
					return true
				}
			}
			return false
		}
		if k < len(ints)+len(strs)+len(bools) {
			for _, b := range []bool{false, true} {
				m.Vars[bools[k-len(ints)-len(strs)].Name] = smt.BoolValue(b)
				if rec(k + 1) {
					return true
				}
			}
			return false
		}
		return smt.Eval(f, m).B
	}
	return rec(0)
}

// TestDifferentialFuzz cross-checks the CDCL(T) engine against the
// enumeration oracle on fuzzIters random mixed-theory formulas.
func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20240805))
	ints := []smt.Var{
		smt.NewVar("i0", smt.SortInt),
		smt.NewVar("i1", smt.SortInt),
	}
	strs := []smt.Var{
		smt.NewVar("s0", smt.SortString),
		smt.NewVar("s1", smt.SortString),
	}
	bools := []smt.Var{
		smt.NewVar("p", smt.SortBool),
		smt.NewVar("q", smt.SortBool),
	}

	for iter := 0; iter < fuzzIters; iter++ {
		c := genFuzzCase(rng, ints, strs, bools)
		want := oracleSAT(c.f, ints, strs, bools)
		res := Solve(c.f)
		switch res.Status {
		case SAT:
			if !want {
				t.Fatalf("iter %d: solver SAT but oracle UNSAT for %s", iter, c.f)
			}
			if res.Model == nil || !evalWithDefaults(c.f, res.Model) {
				t.Fatalf("iter %d: SAT model does not satisfy %s\nmodel: %v", iter, c.f, res.Model)
			}
		case UNSAT:
			if want {
				t.Fatalf("iter %d: solver UNSAT but oracle SAT for %s", iter, c.f)
			}
		default:
			t.Fatalf("iter %d: solver UNKNOWN under default limits for %s", iter, c.f)
		}
	}
}

// evalWithDefaults evaluates f under m, filling any variable the model
// omits with that sort's zero value (the solver's models may leave a
// variable out when every retained constraint holds with its default).
func evalWithDefaults(f smt.Expr, m *smt.Model) bool {
	full := smt.NewModel()
	for k, v := range m.Vars {
		full.Vars[k] = v
	}
	for name, s := range smt.VarSet(f) {
		if _, ok := full.Vars[name]; ok {
			continue
		}
		switch s {
		case smt.SortInt:
			full.Vars[name] = smt.IntValue(0)
		case smt.SortString:
			full.Vars[name] = smt.StrValue("")
		case smt.SortBool:
			full.Vars[name] = smt.BoolValue(false)
		default:
			return false
		}
	}
	return smt.Eval(f, full).B
}

// TestFuzzCorpusRegression pins a few formulas that exercised tricky
// paths during development (theory-core learning after backjumps,
// blocking-clause exhaustion, unit theory cores).
func TestFuzzCorpusRegression(t *testing.T) {
	i0 := smt.NewVar("i0", smt.SortInt)
	i1 := smt.NewVar("i1", smt.SortInt)
	s0 := smt.NewVar("s0", smt.SortString)
	p := smt.NewVar("p", smt.SortBool)
	cases := []struct {
		f    smt.Expr
		want Status
	}{
		// Theory conflict only at full assignment depth.
		{smt.And(
			smt.Or(smt.Eq(i0, smt.Int(1)), smt.Eq(i0, smt.Int(2))),
			smt.Or(smt.Eq(i1, smt.Int(1)), smt.Eq(i1, smt.Int(2))),
			smt.Ne(i0, i1), smt.Eq(i0, i1)), UNSAT},
		// Mixed string/bool/int with a single satisfying corner.
		{smt.And(
			smt.Or(p, smt.Eq(s0, smt.Str("x"))),
			smt.Negate(p),
			smt.Or(smt.Ne(s0, smt.Str("x")), smt.Gt(i0, smt.Int(2))),
			smt.Ge(i0, smt.Int(0)), smt.Lt(i0, smt.Int(4))), SAT},
		// Unit theory core: a constraint false on its own.
		{smt.And(smt.Lt(i0, smt.Int(0)), smt.Ge(i0, smt.Int(0))), UNSAT},
	}
	for i, c := range cases {
		res := Solve(c.f)
		if res.Status != c.want {
			t.Fatalf("case %d: got %s, want %s for %s", i, res.Status, c.want, c.f)
		}
		if res.Status == SAT && !evalWithDefaults(c.f, res.Model) {
			t.Fatalf("case %d: SAT model does not satisfy %s", i, c.f)
		}
	}
}
