package solver

import (
	"testing"

	"weseer/internal/smt"
)

// benchFormula builds a mid-sized mixed-theory formula shaped like the
// analyzer's cycle formulas: disjunctions of row-equality candidates,
// range constraints, and string discriminators over a handful of
// variables.
func benchFormula() smt.Expr {
	var parts []smt.Expr
	vars := make([]smt.Var, 6)
	for i := range vars {
		vars[i] = smt.NewVar(string(rune('a'+i)), smt.SortInt)
	}
	s0 := smt.NewVar("s0", smt.SortString)
	s1 := smt.NewVar("s1", smt.SortString)
	for i := 0; i < len(vars); i++ {
		v := vars[i]
		w := vars[(i+1)%len(vars)]
		parts = append(parts,
			smt.Or(smt.Eq(v, w), smt.Eq(v, smt.Int(int64(i))), smt.Gt(w, smt.Int(int64(i+2)))),
			smt.Ge(v, smt.Int(0)), smt.Le(v, smt.Int(9)))
	}
	parts = append(parts,
		smt.Or(smt.Eq(s0, smt.Str("pending")), smt.Eq(s0, smt.Str("done"))),
		smt.Or(smt.Ne(s0, s1), smt.Eq(s1, smt.Str("pending"))))
	return smt.And(parts...)
}

// BenchmarkSolveSAT measures a full SolveCtx on a satisfiable
// mixed-theory formula (the phase-3 hot path).
func BenchmarkSolveSAT(b *testing.B) {
	f := benchFormula()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Solve(f); res.Status != SAT {
			b.Fatalf("unexpected status %s", res.Status)
		}
	}
}

// BenchmarkSolveUNSAT measures conflict-driven search and theory-core
// learning on an unsatisfiable variant.
func BenchmarkSolveUNSAT(b *testing.B) {
	x := smt.NewVar("x", smt.SortInt)
	y := smt.NewVar("y", smt.SortInt)
	f := smt.And(benchFormula(),
		smt.Or(smt.Eq(x, smt.Int(1)), smt.Eq(x, smt.Int(2))),
		smt.Or(smt.Eq(y, smt.Int(1)), smt.Eq(y, smt.Int(2))),
		smt.Eq(x, y), smt.Ne(x, y))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Solve(f); res.Status != UNSAT {
			b.Fatalf("unexpected status %s", res.Status)
		}
	}
}
