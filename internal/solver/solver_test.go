package solver

import (
	"math/big"
	"math/rand"
	"testing"

	"weseer/internal/smt"
)

func mustSAT(t *testing.T, f smt.Expr) *smt.Model {
	t.Helper()
	res := Solve(f)
	if res.Status != SAT {
		t.Fatalf("Solve(%s) = %s, want SAT", f, res.Status)
	}
	if !smt.Eval(f, res.Model).B {
		t.Fatalf("model %s does not satisfy %s", res.Model, f)
	}
	return res.Model
}

func mustUNSAT(t *testing.T, f smt.Expr) {
	t.Helper()
	res := Solve(f)
	if res.Status != UNSAT {
		t.Fatalf("Solve(%s) = %s (model %s), want UNSAT", f, res.Status, res.Model)
	}
}

func TestPaperExampleSAT(t *testing.T) {
	// (syma + 1 != 8) ∧ (syma > 3) — Sec. III, expects e.g. syma = 4.
	a := smt.NewVar("syma", smt.SortInt)
	f := smt.And(smt.Ne(smt.Add(a, smt.Int(1)), smt.Int(8)), smt.Gt(a, smt.Int(3)))
	m := mustSAT(t, f)
	v := m.Vars["syma"]
	if v.I <= 3 || v.I == 7 {
		t.Errorf("syma = %d violates the formula", v.I)
	}
}

func TestPaperExampleUNSAT(t *testing.T) {
	// (syma + 1 != 8) ∧ (syma == 7) — Sec. III, expects UNSAT.
	a := smt.NewVar("syma", smt.SortInt)
	f := smt.And(smt.Ne(smt.Add(a, smt.Int(1)), smt.Int(8)), smt.Eq(a, smt.Int(7)))
	mustUNSAT(t, f)
}

func TestTrivial(t *testing.T) {
	if r := Solve(smt.True); r.Status != SAT {
		t.Errorf("true: %s", r.Status)
	}
	if r := Solve(smt.False); r.Status != UNSAT {
		t.Errorf("false: %s", r.Status)
	}
}

func TestIntBounds(t *testing.T) {
	x := smt.NewVar("x", smt.SortInt)
	// 3 < x < 5 has exactly one integer solution.
	m := mustSAT(t, smt.And(smt.Gt(x, smt.Int(3)), smt.Lt(x, smt.Int(5))))
	if m.Vars["x"].I != 4 {
		t.Errorf("x = %v, want 4", m.Vars["x"])
	}
	// 3 < x < 4 has none over Int.
	mustUNSAT(t, smt.And(smt.Gt(x, smt.Int(3)), smt.Lt(x, smt.Int(4))))
}

func TestRealStrict(t *testing.T) {
	x := smt.NewVar("x", smt.SortReal)
	// 3 < x < 4 is satisfiable over Real.
	m := mustSAT(t, smt.And(smt.Gt(x, smt.Int(3)), smt.Lt(x, smt.Int(4))))
	v := m.Vars["x"].Rat()
	if v.Cmp(big.NewRat(3, 1)) <= 0 || v.Cmp(big.NewRat(4, 1)) >= 0 {
		t.Errorf("x = %v outside (3,4)", v)
	}
}

func TestEqualityChain(t *testing.T) {
	x := smt.NewVar("x", smt.SortInt)
	y := smt.NewVar("y", smt.SortInt)
	z := smt.NewVar("z", smt.SortInt)
	f := smt.And(smt.Eq(x, y), smt.Eq(y, z), smt.Eq(x, smt.Int(10)), smt.Ge(z, smt.Int(10)))
	m := mustSAT(t, f)
	if m.Vars["z"].I != 10 {
		t.Errorf("z = %v, want 10", m.Vars["z"])
	}
	mustUNSAT(t, smt.And(smt.Eq(x, y), smt.Eq(y, z), smt.Eq(x, smt.Int(10)), smt.Gt(z, smt.Int(10))))
}

func TestLinearCombination(t *testing.T) {
	// 2x + 3y = 12 ∧ x = 3 → y = 2.
	x := smt.NewVar("x", smt.SortInt)
	y := smt.NewVar("y", smt.SortInt)
	f := smt.And(
		smt.Eq(smt.Add(smt.Mul(smt.Int(2), x), smt.Mul(smt.Int(3), y)), smt.Int(12)),
		smt.Eq(x, smt.Int(3)),
	)
	m := mustSAT(t, f)
	if m.Vars["y"].I != 2 {
		t.Errorf("y = %v, want 2", m.Vars["y"])
	}
}

func TestIntegrality(t *testing.T) {
	// 2x = 7 has no integer solution but a real one.
	xi := smt.NewVar("xi", smt.SortInt)
	mustUNSAT(t, smt.Eq(smt.Mul(smt.Int(2), xi), smt.Int(7)))
	xr := smt.NewVar("xr", smt.SortReal)
	m := mustSAT(t, smt.Eq(smt.Mul(smt.Int(2), xr), smt.Int(7)))
	if m.Vars["xr"].Rat().Cmp(big.NewRat(7, 2)) != 0 {
		t.Errorf("xr = %v", m.Vars["xr"])
	}
}

func TestDisjunction(t *testing.T) {
	x := smt.NewVar("x", smt.SortInt)
	f := smt.And(
		smt.Or(smt.Lt(x, smt.Int(0)), smt.Gt(x, smt.Int(100))),
		smt.Ge(x, smt.Int(0)),
	)
	m := mustSAT(t, f)
	if m.Vars["x"].I <= 100 {
		t.Errorf("x = %v, want > 100", m.Vars["x"])
	}
}

func TestStrings(t *testing.T) {
	s1 := smt.NewVar("s1", smt.SortString)
	s2 := smt.NewVar("s2", smt.SortString)
	f := smt.And(smt.Eq(s1, smt.Str("alice")), smt.Ne(s1, s2))
	m := mustSAT(t, f)
	if m.Vars["s1"].Str != "alice" || m.Vars["s2"].Str == "alice" {
		t.Errorf("model %s", m)
	}
	mustUNSAT(t, smt.And(smt.Eq(s1, smt.Str("a")), smt.Eq(s1, smt.Str("b"))))
	mustUNSAT(t, smt.And(smt.Eq(s1, s2), smt.Eq(s2, smt.Str("x")), smt.Ne(s1, smt.Str("x"))))
}

func TestStringDisjunction(t *testing.T) {
	s := smt.NewVar("s", smt.SortString)
	f := smt.And(
		smt.Or(smt.Eq(s, smt.Str("a")), smt.Eq(s, smt.Str("b"))),
		smt.Ne(s, smt.Str("a")),
	)
	m := mustSAT(t, f)
	if m.Vars["s"].Str != "b" {
		t.Errorf("s = %v, want b", m.Vars["s"])
	}
}

func TestMixedSorts(t *testing.T) {
	id := smt.NewVar("id", smt.SortInt)
	name := smt.NewVar("name", smt.SortString)
	qty := smt.NewVar("qty", smt.SortReal)
	f := smt.And(
		smt.Eq(id, smt.Int(42)),
		smt.Eq(name, smt.Str("prod")),
		smt.Gt(qty, smt.Real(1, 2)),
		smt.Lt(qty, smt.Int(1)),
	)
	m := mustSAT(t, f)
	if m.Vars["id"].I != 42 || m.Vars["name"].Str != "prod" {
		t.Errorf("model %s", m)
	}
}

func TestArrayTheory(t *testing.T) {
	// Alg. 1 pattern: key not in map, then put, then get must succeed.
	arr := smt.NewArray("cache", smt.SortInt)
	k := smt.NewVar("k", smt.SortInt)
	arr1 := arr.Store(k, true)
	f := smt.And(
		smt.Negate(smt.Read(arr, k)), // before put: absent
		smt.Read(arr1, k),            // after put: present
	)
	mustSAT(t, f)

	// Contradiction: same version, same key, both present and absent.
	g := smt.And(smt.Read(arr, k), smt.Negate(smt.Read(arr, k)))
	mustUNSAT(t, g)
}

func TestArrayAckermann(t *testing.T) {
	// read(A,i) ∧ ¬read(A,j) forces i ≠ j.
	arr := smt.NewArray("A", smt.SortInt)
	i := smt.NewVar("i", smt.SortInt)
	j := smt.NewVar("j", smt.SortInt)
	f := smt.And(smt.Read(arr, i), smt.Negate(smt.Read(arr, j)))
	m := mustSAT(t, f)
	if m.Vars["i"].Equal(m.Vars["j"]) {
		t.Errorf("i and j must differ: %s", m)
	}
	// With i = j it becomes UNSAT.
	mustUNSAT(t, smt.And(f, smt.Eq(i, j)))
}

func TestArrayStoreShadow(t *testing.T) {
	arr := smt.NewArray("A", smt.SortString)
	k := smt.NewVar("k", smt.SortString)
	a1 := arr.Store(smt.Str("x"), true)
	a2 := a1.Store(smt.Str("x"), false)
	// read(a2, k) ∧ k = "x" is UNSAT (latest store wins).
	mustUNSAT(t, smt.And(smt.Read(a2, k), smt.Eq(k, smt.Str("x"))))
	// read(a2, k) with k = "y" requires root[y] = true: SAT.
	m := mustSAT(t, smt.And(smt.Read(a2, k), smt.Eq(k, smt.Str("y"))))
	if !m.Arrays["A"][smt.StrValue("y").String()] {
		t.Errorf("root array missing entry for y: %v", m.Arrays)
	}
}

func TestBoolVars(t *testing.T) {
	p := smt.NewVar("p", smt.SortBool)
	q := smt.NewVar("q", smt.SortBool)
	f := smt.And(smt.Or(p, q), smt.Negate(p))
	m := mustSAT(t, f)
	if !m.Vars["q"].B || m.Vars["p"].B {
		t.Errorf("model %s", m)
	}
	mustUNSAT(t, smt.And(p, smt.Negate(p)))
}

func TestDeadlockShapedFormula(t *testing.T) {
	// A miniature of Fig. 9: two transaction instances with unified rows.
	// Conflict requires A1.r.ID = A2.updated.ID and both path conditions.
	a1OrderID := smt.NewVar("A1.order_id", smt.SortInt)
	a2OrderID := smt.NewVar("A2.order_id", smt.SortInt)
	a1RowPID := smt.NewVar("A1.res4.row0.p.ID", smt.SortInt)
	a2RowPID := smt.NewVar("A2.res4.row0.p.ID", smt.SortInt)
	r1 := smt.NewVar("r1.p.ID", smt.SortInt)
	r2 := smt.NewVar("r2.p.ID", smt.SortInt)

	f := smt.And(
		// Path conditions: both orders valid.
		smt.Ne(a1OrderID, smt.Int(-1)),
		smt.Ne(a2OrderID, smt.Int(-1)),
		// C-edge 1: A1 reads row r1, A2 writes the same product.
		smt.Eq(r1, a1RowPID),
		smt.Eq(r1, a2RowPID),
		// C-edge 2 (mirror).
		smt.Eq(r2, a2RowPID),
		smt.Eq(r2, a1RowPID),
	)
	m := mustSAT(t, f)
	if !m.Vars["A1.res4.row0.p.ID"].Equal(m.Vars["A2.res4.row0.p.ID"]) {
		t.Errorf("conflicting rows must coincide: %s", m)
	}
}

func TestUnsatCoreStyleConflict(t *testing.T) {
	// Path condition excludes the only conflicting assignment.
	x := smt.NewVar("x", smt.SortInt)
	y := smt.NewVar("y", smt.SortInt)
	f := smt.And(
		smt.Eq(x, y), // conflict condition
		smt.Lt(x, smt.Int(5)),
		smt.Gt(y, smt.Int(5)),
	)
	mustUNSAT(t, f)
}

func TestNegationNormalization(t *testing.T) {
	x := smt.NewVar("x", smt.SortInt)
	f := smt.Negate(smt.Or(smt.Lt(x, smt.Int(0)), smt.Gt(x, smt.Int(10))))
	m := mustSAT(t, f)
	if v := m.Vars["x"].I; v < 0 || v > 10 {
		t.Errorf("x = %d outside [0,10]", v)
	}
}

func TestStats(t *testing.T) {
	x := smt.NewVar("x", smt.SortInt)
	res := Solve(smt.And(smt.Gt(x, smt.Int(0)), smt.Lt(x, smt.Int(10))))
	if res.Stats.Atoms == 0 || res.Stats.TheoryCalls == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

// TestRandomizedAgainstBruteForce cross-checks the solver on random small
// integer formulas against exhaustive evaluation over a small domain.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []smt.Var{
		smt.NewVar("a", smt.SortInt),
		smt.NewVar("b", smt.SortInt),
		smt.NewVar("c", smt.SortInt),
	}
	const domain = 4 // values 0..3

	var genAtom func() smt.Expr
	genAtom = func() smt.Expr {
		v := vars[rng.Intn(len(vars))]
		ops := []smt.CmpOp{smt.EQ, smt.NE, smt.LT, smt.LE, smt.GT, smt.GE}
		op := ops[rng.Intn(len(ops))]
		if rng.Intn(2) == 0 {
			return smt.Compare(op, v, smt.Int(int64(rng.Intn(domain))))
		}
		w := vars[rng.Intn(len(vars))]
		return smt.Compare(op, v, w)
	}
	var gen func(depth int) smt.Expr
	gen = func(depth int) smt.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return genAtom()
		}
		n := 2 + rng.Intn(2)
		kids := make([]smt.Expr, n)
		for i := range kids {
			kids[i] = gen(depth - 1)
		}
		switch rng.Intn(3) {
		case 0:
			return smt.And(kids...)
		case 1:
			return smt.Or(kids...)
		default:
			return smt.Negate(smt.And(kids...))
		}
	}

	for iter := 0; iter < 300; iter++ {
		f := gen(3)
		// Domain-restrict so brute force is decisive.
		for _, v := range vars {
			f = smt.And(f, smt.Ge(v, smt.Int(0)), smt.Lt(v, smt.Int(domain)))
		}
		bruteSAT := false
		m := smt.NewModel()
		for a := 0; a < domain && !bruteSAT; a++ {
			for b := 0; b < domain && !bruteSAT; b++ {
				for c := 0; c < domain && !bruteSAT; c++ {
					m.Vars["a"] = smt.IntValue(int64(a))
					m.Vars["b"] = smt.IntValue(int64(b))
					m.Vars["c"] = smt.IntValue(int64(c))
					bruteSAT = smt.Eval(f, m).B
				}
			}
		}
		res := Solve(f)
		if bruteSAT && res.Status != SAT {
			t.Fatalf("iter %d: brute force SAT but solver %s for %s", iter, res.Status, f)
		}
		if !bruteSAT && res.Status == SAT {
			t.Fatalf("iter %d: brute force UNSAT but solver SAT (%s) for %s", iter, res.Model, f)
		}
		if res.Status == SAT && !smt.Eval(f, res.Model).B {
			t.Fatalf("iter %d: unverified model %s for %s", iter, res.Model, f)
		}
	}
}

func TestRandomizedStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	consts := []string{"x", "y", "z"}
	vars := []smt.Var{
		smt.NewVar("s0", smt.SortString),
		smt.NewVar("s1", smt.SortString),
	}
	genAtom := func() smt.Expr {
		v := vars[rng.Intn(len(vars))]
		var r smt.Expr
		if rng.Intn(2) == 0 {
			r = smt.Str(consts[rng.Intn(len(consts))])
		} else {
			r = vars[rng.Intn(len(vars))]
		}
		if rng.Intn(2) == 0 {
			return smt.Eq(v, r)
		}
		return smt.Ne(v, r)
	}
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		kids := make([]smt.Expr, n)
		for i := range kids {
			kids[i] = genAtom()
		}
		f := smt.And(kids...)
		// Brute force over domain {x, y, z, w}.
		domain := []string{"x", "y", "z", "w"}
		bruteSAT := false
		m := smt.NewModel()
		for _, a := range domain {
			for _, b := range domain {
				m.Vars["s0"] = smt.StrValue(a)
				m.Vars["s1"] = smt.StrValue(b)
				if smt.Eval(f, m).B {
					bruteSAT = true
				}
			}
		}
		res := Solve(f)
		if bruteSAT != (res.Status == SAT) {
			t.Fatalf("iter %d: brute %v vs solver %s for %s", iter, bruteSAT, res.Status, f)
		}
	}
}

func TestLimitsUnknown(t *testing.T) {
	// An adversarial formula with a tiny theory-call budget yields UNKNOWN,
	// mirroring the paper's treatment of Z3 timeouts.
	x := smt.NewVar("x", smt.SortInt)
	var parts []smt.Expr
	for i := 0; i < 8; i++ {
		parts = append(parts, smt.Or(smt.Eq(x, smt.Int(int64(i))), smt.Eq(x, smt.Int(int64(i+100)))))
	}
	f := smt.And(parts...)
	res := SolveLimits(f, Limits{MaxTheoryCalls: 1})
	if res.Status == SAT && !smt.Eval(f, res.Model).B {
		t.Fatal("SAT without valid model")
	}
	if res.Status == UNSAT {
		t.Fatal("budget-limited solve must not report UNSAT")
	}
}
