package solver

import (
	"context"
	"testing"
	"time"

	"weseer/internal/smt"
)

// hardFormula builds a formula the solver needs many DPLL iterations
// for: a chain of disjunctions over disequalities forcing case splits.
func hardFormula(n int) smt.Expr {
	var parts []smt.Expr
	for i := 0; i < n; i++ {
		x := smt.NewVar("x"+string(rune('a'+i%26))+itoa(i), smt.SortInt)
		y := smt.NewVar("y"+string(rune('a'+i%26))+itoa(i), smt.SortInt)
		parts = append(parts,
			smt.Or(smt.Ne(x, y), smt.Lt(smt.Add(x, y), smt.Int(int64(i)))),
			smt.Ne(x, smt.Int(int64(i))),
		)
	}
	return smt.And(parts...)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSolveCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := hardFormula(12)
	start := time.Now()
	res := SolveCtx(ctx, f, Limits{})
	if res.Status != UNKNOWN {
		t.Fatalf("canceled solve returned %v, want UNKNOWN", res.Status)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("canceled solve took %v", el)
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	f := hardFormula(6)
	a := Solve(f)
	b := SolveCtx(context.Background(), f, Limits{})
	if a.Status != b.Status {
		t.Fatalf("Solve=%v SolveCtx=%v", a.Status, b.Status)
	}
	if a.Status == SAT && !smt.Eval(f, b.Model).B {
		t.Fatal("SolveCtx model does not satisfy formula")
	}
}

func TestSolveCtxCancelMidRun(t *testing.T) {
	// A deadline that expires while solving: the solver must give up
	// promptly instead of exhausting its theory-call budget.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	res := SolveCtx(ctx, hardFormula(20), Limits{})
	if res.Status != UNKNOWN {
		t.Fatalf("status = %v, want UNKNOWN", res.Status)
	}
	if ctx.Err() == nil {
		t.Fatal("context should be expired")
	}
}
