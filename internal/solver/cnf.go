package solver

// Propositional layer: NNF conversion, Tseitin CNF encoding, and a DPLL
// search with unit propagation and chronological backtracking. Formulas
// the deadlock analyzer emits are small (hundreds of atoms), so the
// emphasis is on correctness and debuggability over raw SAT speed.

// lit is a literal: variable index shifted left once, low bit = negated.
type lit int

func mkLit(v int, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) varIdx() int { return int(l) >> 1 }
func (l lit) negated() bool {
	return l&1 == 1
}
func (l lit) negate() lit { return l ^ 1 }

// pnode is a node of the NNF formula tree.
type pnode struct {
	kind pkind
	lit  lit      // for pLit
	b    bool     // for pConst
	kids []*pnode // for pAnd / pOr
}

type pkind uint8

const (
	pLit pkind = iota
	pConst
	pAnd
	pOr
)

// cnfBuilder accumulates clauses and allocates variables. Variables
// [0, numAtoms) are atom variables; the rest are Tseitin auxiliaries.
type cnfBuilder struct {
	numVars int
	clauses [][]lit
}

func (b *cnfBuilder) newVar() int {
	v := b.numVars
	b.numVars++
	return v
}

func (b *cnfBuilder) addClause(ls ...lit) {
	cl := make([]lit, len(ls))
	copy(cl, ls)
	b.clauses = append(b.clauses, cl)
}

// tseitin encodes node n and returns a literal equivalent to it.
// Constant nodes return (0, false, b): handled by callers.
func (b *cnfBuilder) tseitin(n *pnode) (lit, bool /*isConst*/, bool /*constVal*/) {
	switch n.kind {
	case pLit:
		return n.lit, false, false
	case pConst:
		return 0, true, n.b
	case pAnd, pOr:
		isAnd := n.kind == pAnd
		var kidLits []lit
		for _, k := range n.kids {
			l, isC, cv := b.tseitin(k)
			if isC {
				if cv == isAnd {
					continue // neutral
				}
				return 0, true, !isAnd // absorbing
			}
			kidLits = append(kidLits, l)
		}
		if len(kidLits) == 0 {
			return 0, true, isAnd
		}
		if len(kidLits) == 1 {
			return kidLits[0], false, false
		}
		aux := mkLit(b.newVar(), false)
		if isAnd {
			// aux ↔ ∧ kids
			long := make([]lit, 0, len(kidLits)+1)
			long = append(long, aux)
			for _, kl := range kidLits {
				b.addClause(aux.negate(), kl)
				long = append(long, kl.negate())
			}
			b.addClause(long...)
		} else {
			long := make([]lit, 0, len(kidLits)+1)
			long = append(long, aux.negate())
			for _, kl := range kidLits {
				b.addClause(aux, kl.negate())
				long = append(long, kl)
			}
			b.addClause(long...)
		}
		return aux, false, false
	}
	panic("solver: bad pnode")
}

// dpll is a straightforward DPLL engine over the CNF. Learned (blocking)
// clauses can be appended between searches via addClause.
type dpll struct {
	numVars int
	clauses [][]lit
	assign  []int8 // 0 unassigned, 1 true, -1 false
	trail   []int  // assigned variable order
	// declevel[i] is the index into trail where decision i was made.
	decisions []int
	// flipped[i] reports whether decision i has already been flipped.
	flipped []bool
	stats   *Stats
}

func newDPLL(numVars int, clauses [][]lit, stats *Stats) *dpll {
	return &dpll{
		numVars: numVars,
		clauses: clauses,
		assign:  make([]int8, numVars),
		stats:   stats,
	}
}

func (d *dpll) value(l lit) int8 {
	v := d.assign[l.varIdx()]
	if l.negated() {
		return -v
	}
	return v
}

func (d *dpll) set(l lit) {
	v := int8(1)
	if l.negated() {
		v = -1
	}
	d.assign[l.varIdx()] = v
	d.trail = append(d.trail, l.varIdx())
}

// propagate runs unit propagation to fixpoint; it returns false on an
// empty clause (conflict).
func (d *dpll) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, cl := range d.clauses {
			unassigned := -1
			satisfied := false
			count := 0
			for i, l := range cl {
				switch d.value(l) {
				case 1:
					satisfied = true
				case 0:
					unassigned = i
					count++
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if count == 0 {
				return false
			}
			if count == 1 {
				d.set(cl[unassigned])
				changed = true
			}
		}
	}
	return true
}

// backtrack undoes the most recent unflipped decision and flips it.
// It returns false when no decision remains (search exhausted).
func (d *dpll) backtrack() bool {
	for len(d.decisions) > 0 {
		top := len(d.decisions) - 1
		mark := d.decisions[top]
		wasFlipped := d.flipped[top]
		decidedVar := d.trail[mark]
		decidedVal := d.assign[decidedVar]
		for i := len(d.trail) - 1; i >= mark; i-- {
			d.assign[d.trail[i]] = 0
		}
		d.trail = d.trail[:mark]
		d.decisions = d.decisions[:top]
		d.flipped = d.flipped[:top]
		if wasFlipped {
			continue
		}
		// Re-assert the flipped decision as a pseudo-decision so a later
		// conflict skips over it.
		d.decisions = append(d.decisions, len(d.trail))
		d.flipped = append(d.flipped, true)
		flippedLit := mkLit(decidedVar, decidedVal == 1)
		d.set(flippedLit)
		return true
	}
	return false
}

// pickUnassigned returns an unassigned variable, or -1 when the
// assignment is complete.
func (d *dpll) pickUnassigned() int {
	for v := 0; v < d.numVars; v++ {
		if d.assign[v] == 0 {
			return v
		}
	}
	return -1
}

// decide assigns variable v at a new decision level with the given
// polarity (phase-saving: the caller proposes the value the current
// theory model already satisfies, so most decisions stay theory-
// consistent).
func (d *dpll) decide(v int, value bool) {
	d.stats.Decisions++
	d.decisions = append(d.decisions, len(d.trail))
	d.flipped = append(d.flipped, false)
	d.set(mkLit(v, !value))
}

// block adds a clause forbidding the current assignment restricted to the
// given variables, then backtracks so the search can continue.
func (d *dpll) block(vars []int) bool {
	cl := make([]lit, 0, len(vars))
	for _, v := range vars {
		switch d.assign[v] {
		case 1:
			cl = append(cl, mkLit(v, true))
		case -1:
			cl = append(cl, mkLit(v, false))
		}
	}
	if len(cl) == 0 {
		return false // current (empty) assignment unblockable: exhausted
	}
	d.clauses = append(d.clauses, cl)
	return d.backtrack()
}
