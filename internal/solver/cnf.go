package solver

// Propositional layer: NNF conversion, Tseitin CNF encoding, and a CDCL
// search engine (two-watched-literal unit propagation, first-UIP conflict
// analysis with clause learning, non-chronological backjumping, phase
// saving, and an EVSIDS-style decision heuristic). Theory refutations
// enter the engine as learned core clauses and go through the same
// conflict-analysis machinery as propositional conflicts.

// lit is a literal: variable index shifted left once, low bit = negated.
type lit int

func mkLit(v int, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) varIdx() int { return int(l) >> 1 }
func (l lit) negated() bool {
	return l&1 == 1
}
func (l lit) negate() lit { return l ^ 1 }

// pnode is a node of the NNF formula tree.
type pnode struct {
	kind pkind
	lit  lit      // for pLit
	b    bool     // for pConst
	kids []*pnode // for pAnd / pOr
}

type pkind uint8

const (
	pLit pkind = iota
	pConst
	pAnd
	pOr
)

// cnfBuilder accumulates clauses and allocates variables. Variables
// [0, numAtoms) are atom variables; the rest are Tseitin auxiliaries.
type cnfBuilder struct {
	numVars int
	clauses [][]lit
}

func (b *cnfBuilder) newVar() int {
	v := b.numVars
	b.numVars++
	return v
}

func (b *cnfBuilder) addClause(ls ...lit) {
	cl := make([]lit, len(ls))
	copy(cl, ls)
	b.clauses = append(b.clauses, cl)
}

// tseitin encodes node n and returns a literal equivalent to it.
// Constant nodes return (0, false, b): handled by callers.
func (b *cnfBuilder) tseitin(n *pnode) (lit, bool /*isConst*/, bool /*constVal*/) {
	switch n.kind {
	case pLit:
		return n.lit, false, false
	case pConst:
		return 0, true, n.b
	case pAnd, pOr:
		isAnd := n.kind == pAnd
		var kidLits []lit
		for _, k := range n.kids {
			l, isC, cv := b.tseitin(k)
			if isC {
				if cv == isAnd {
					continue // neutral
				}
				return 0, true, !isAnd // absorbing
			}
			kidLits = append(kidLits, l)
		}
		if len(kidLits) == 0 {
			return 0, true, isAnd
		}
		if len(kidLits) == 1 {
			return kidLits[0], false, false
		}
		aux := mkLit(b.newVar(), false)
		if isAnd {
			// aux ↔ ∧ kids
			long := make([]lit, 0, len(kidLits)+1)
			long = append(long, aux)
			for _, kl := range kidLits {
				b.addClause(aux.negate(), kl)
				long = append(long, kl.negate())
			}
			b.addClause(long...)
		} else {
			long := make([]lit, 0, len(kidLits)+1)
			long = append(long, aux.negate())
			for _, kl := range kidLits {
				b.addClause(aux, kl.negate())
				long = append(long, kl)
			}
			b.addClause(long...)
		}
		return aux, false, false
	}
	panic("solver: bad pnode")
}

// ---------------------------------------------------------------------------
// CDCL engine

// clause is a CNF clause under the two-watched-literal scheme: the engine
// watches lits[0] and lits[1] and maintains the invariant that a watch only
// becomes false after every other literal of the clause is false (at deeper
// or equal decision levels), so clauses need inspection only when a watched
// literal is falsified.
type clause struct {
	lits []lit
}

// cdcl is a conflict-driven clause-learning SAT engine. It replaces the
// chronological-backtracking DPLL the solver started with: propagation is
// watched-literal, conflicts are analyzed to a first-UIP learned clause,
// and the search backjumps non-chronologically to the clause's assertion
// level. Theory refutations are added via learnClause and analyzed with
// exactly the same machinery.
type cdcl struct {
	numVars int
	clauses []*clause
	// watches[l] lists the clauses watching literal l (visited when l is
	// falsified, i.e. when ¬l is asserted).
	watches [][]*clause

	assign []int8 // 0 unassigned, 1 true, -1 false
	level  []int  // decision level of each assigned variable
	reason []*clause
	trail  []lit
	// trailLim[i] is the trail length when decision level i+1 was opened.
	trailLim []int
	qhead    int

	// EVSIDS: bump activity of conflict-involved variables, then inflate
	// the increment (equivalent to decaying every activity by 0.95).
	activity []float64
	varInc   float64

	// phase[v] caches the polarity v last held before being unassigned, so
	// re-decisions revisit the part of the space the search was exploring.
	phase []int8

	seen []bool // scratch for analyze

	// theoryAtom marks variables whose assignment matters to the theory
	// solvers; theoryEvents counts assignments to them, letting the
	// DPLL(T) loop skip theory checks that cannot observe anything new.
	theoryAtom   []bool
	theoryEvents int

	// ok is false when the input clauses are contradictory at level 0.
	ok    bool
	stats *Stats
}

func newCDCL(numVars int, clauses [][]lit, stats *Stats) *cdcl {
	d := &cdcl{
		numVars:  numVars,
		watches:  make([][]*clause, 2*numVars),
		assign:   make([]int8, numVars),
		level:    make([]int, numVars),
		reason:   make([]*clause, numVars),
		activity: make([]float64, numVars),
		varInc:   1.0,
		phase:    make([]int8, numVars),
		seen:     make([]bool, numVars),
		ok:       true,
		stats:    stats,
	}
	for _, ls := range clauses {
		if !d.addClause(ls) {
			d.ok = false
			return d
		}
	}
	return d
}

func (d *cdcl) value(l lit) int8 {
	v := d.assign[l.varIdx()]
	if l.negated() {
		return -v
	}
	return v
}

func (d *cdcl) decisionLevel() int { return len(d.trailLim) }

// addClause attaches an input clause; unit clauses are enqueued at level 0.
// It returns false when the clause is empty or contradicts a level-0 fact.
func (d *cdcl) addClause(ls []lit) bool {
	switch len(ls) {
	case 0:
		return false
	case 1:
		return d.enqueue(ls[0], nil)
	}
	c := &clause{lits: ls}
	d.clauses = append(d.clauses, c)
	d.watch(c)
	return true
}

func (d *cdcl) watch(c *clause) {
	d.watches[c.lits[0]] = append(d.watches[c.lits[0]], c)
	d.watches[c.lits[1]] = append(d.watches[c.lits[1]], c)
}

// enqueue asserts l (with an optional reason clause), returning false if l
// is already false under the current assignment.
func (d *cdcl) enqueue(l lit, from *clause) bool {
	switch d.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	d.assertLit(l, from)
	return true
}

func (d *cdcl) assertLit(l lit, from *clause) {
	v := l.varIdx()
	if l.negated() {
		d.assign[v] = -1
	} else {
		d.assign[v] = 1
	}
	d.level[v] = d.decisionLevel()
	d.reason[v] = from
	d.trail = append(d.trail, l)
	if d.theoryAtom != nil && d.theoryAtom[v] {
		d.theoryEvents++
	}
}

// propagate runs watched-literal unit propagation to fixpoint. It returns
// the conflicting clause, or nil if the assignment is propagation-closed.
func (d *cdcl) propagate() *clause {
	for d.qhead < len(d.trail) {
		p := d.trail[d.qhead]
		d.qhead++
		falseLit := p.negate()
		ws := d.watches[falseLit]
		n := 0
	clauses:
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			lits := c.lits
			// Normalize so the falsified watch sits at lits[1].
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			if d.value(lits[0]) == 1 {
				ws[n] = c
				n++
				continue
			}
			// Look for a non-false literal to take over the watch.
			for k := 2; k < len(lits); k++ {
				if d.value(lits[k]) != -1 {
					lits[1], lits[k] = lits[k], lits[1]
					d.watches[lits[1]] = append(d.watches[lits[1]], c)
					continue clauses
				}
			}
			// Clause is unit (lits[0] unassigned) or conflicting.
			ws[n] = c
			n++
			if d.value(lits[0]) == -1 {
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				d.watches[falseLit] = ws[:n]
				d.qhead = len(d.trail)
				return c
			}
			d.stats.Propagations++
			d.assertLit(lits[0], c)
		}
		d.watches[falseLit] = ws[:n]
	}
	return nil
}

// cancelUntil undoes all assignments above the given decision level,
// saving phases so later re-decisions keep their polarity.
func (d *cdcl) cancelUntil(lvl int) {
	if d.decisionLevel() <= lvl {
		return
	}
	back := d.trailLim[lvl]
	for i := len(d.trail) - 1; i >= back; i-- {
		v := d.trail[i].varIdx()
		d.phase[v] = d.assign[v]
		d.assign[v] = 0
		d.reason[v] = nil
	}
	d.trail = d.trail[:back]
	d.trailLim = d.trailLim[:lvl]
	d.qhead = back
}

func (d *cdcl) bumpVar(v int) {
	d.activity[v] += d.varInc
	if d.activity[v] > 1e100 {
		for i := range d.activity {
			d.activity[i] *= 1e-100
		}
		d.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis on confl, which must be
// falsified with at least one literal at the current decision level. It
// returns the learned clause (asserting literal first, a deepest-level
// remaining literal second) and the backjump level.
func (d *cdcl) analyze(confl *clause) ([]lit, int) {
	learnt := []lit{0} // slot 0 reserved for the asserting literal
	pathC := 0
	var p lit = -1
	idx := len(d.trail) - 1

	for {
		start := 0
		if p != -1 {
			// p's reason clause has p at lits[0]; skip it.
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.varIdx()
			if d.seen[v] || d.level[v] == 0 {
				continue
			}
			d.seen[v] = true
			d.bumpVar(v)
			if d.level[v] >= d.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !d.seen[d.trail[idx].varIdx()] {
			idx--
		}
		p = d.trail[idx]
		idx--
		v := p.varIdx()
		d.seen[v] = false
		pathC--
		if pathC <= 0 {
			break
		}
		confl = d.reason[v]
	}
	learnt[0] = p.negate()

	// Backjump level: the deepest level among the non-asserting literals.
	// Keep a literal of that level at slot 1 so the watches land on the
	// two deepest literals of the clause.
	bt := 0
	for i := 1; i < len(learnt); i++ {
		d.seen[learnt[i].varIdx()] = false
		if l := d.level[learnt[i].varIdx()]; l > bt {
			bt = l
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	d.varInc /= 0.95
	return learnt, bt
}

// resolveConflict analyzes a falsified clause, backjumps, and asserts the
// learned literal. It returns false when the conflict is at level 0, i.e.
// the search space is exhausted.
func (d *cdcl) resolveConflict(confl *clause) bool {
	maxLvl := 0
	for _, q := range confl.lits {
		if l := d.level[q.varIdx()]; l > maxLvl {
			maxLvl = l
		}
	}
	if maxLvl == 0 {
		return false
	}
	// A theory clause may be falsified entirely below the current level;
	// drop to its deepest level so analyze sees a current-level conflict.
	d.cancelUntil(maxLvl)
	learnt, bt := d.analyze(confl)
	if bt < d.decisionLevel()-1 {
		d.stats.Backjumps++
	}
	d.cancelUntil(bt)
	d.stats.LearnedClauses++
	if len(learnt) == 1 {
		return d.enqueue(learnt[0], nil)
	}
	c := &clause{lits: learnt}
	d.clauses = append(d.clauses, c)
	d.watch(c)
	return d.enqueue(learnt[0], c)
}

// learnClause adds a clause the theory solvers refuted (an unsat-core or
// blocking clause over atom variables, fully falsified by the current
// assignment) and drives conflict resolution with it. It returns false
// when the clause exhausts the search.
func (d *cdcl) learnClause(ls []lit) bool {
	if len(ls) == 0 {
		return false
	}
	if len(ls) == 1 {
		d.stats.LearnedClauses++
		d.cancelUntil(0)
		return d.enqueue(ls[0], nil)
	}
	// Watch the two deepest-level literals: every other literal of the
	// clause is unassigned before them on any future trail.
	for i := 0; i < 2; i++ {
		best := i
		for j := i + 1; j < len(ls); j++ {
			if d.level[ls[j].varIdx()] > d.level[ls[best].varIdx()] {
				best = j
			}
		}
		ls[i], ls[best] = ls[best], ls[i]
	}
	c := &clause{lits: ls}
	d.clauses = append(d.clauses, c)
	d.watch(c)
	return d.resolveConflict(c)
}

// decide opens a new decision level and assigns v the given polarity.
func (d *cdcl) decide(v int, value bool) {
	d.stats.Decisions++
	d.trailLim = append(d.trailLim, len(d.trail))
	d.assertLit(mkLit(v, !value), nil)
}

// savedPhase returns the phase v held before it was last unassigned:
// +1 true, -1 false, 0 no saved phase.
func (d *cdcl) savedPhase(v int) int8 { return d.phase[v] }

// pickVar returns the unassigned variable with the highest activity
// (lowest index on ties), or -1 when the assignment is complete. With all
// activities zero this is the lowest-index-first order of the original
// DPLL engine.
func (d *cdcl) pickVar() int {
	best, bestAct := -1, -1.0
	for v := 0; v < d.numVars; v++ {
		if d.assign[v] == 0 && d.activity[v] > bestAct {
			best, bestAct = v, d.activity[v]
		}
	}
	return best
}

func (d *cdcl) fullyAssigned() bool { return len(d.trail) == d.numVars }
