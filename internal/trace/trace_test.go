package trace

import (
	"encoding/json"
	"testing"

	"weseer/internal/minidb"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

func sampleTrace() *Trace {
	orderID := smt.NewVar("order_id", smt.SortInt)
	resVar := smt.Var{Name: "res0.row0.p.ID", S: smt.SortInt}
	arr := smt.NewArray("cache@1", smt.SortInt).Store(orderID, true)
	return &Trace{
		API: "Checkout",
		Inputs: []Input{
			{Name: "order_id", Sort: smt.SortInt, Concrete: smt.IntValue(7)},
		},
		Txns: []*Txn{{
			ID:        1,
			Committed: true,
			Stmts: []*Stmt{
				{
					Seq: 0, TxnID: 1,
					SQL:    `SELECT * FROM Product p WHERE p.ID = ?`,
					Parsed: sqlast.MustParse(`SELECT * FROM Product p WHERE p.ID = ?`),
					Params: []Param{{Sym: orderID, Concrete: minidb.I64(7)}},
					Res: &Result{
						Cols:     []string{"p.ID", "p.QTY"},
						Sym:      [][]smt.Var{{resVar, {Name: "res0.row0.p.QTY", S: smt.SortInt}}},
						Concrete: [][]minidb.Datum{{minidb.I64(7), minidb.I64(3)}},
					},
					Trigger: CodeLoc{Frames: []Frame{{Func: "app.Checkout", File: "checkout.go", Line: 42}}},
					Sent:    CodeLoc{Frames: []Frame{{Func: "app.Checkout", File: "checkout.go", Line: 99}}},
				},
				{
					Seq: 1, TxnID: 1,
					SQL:    `UPDATE Product SET QTY = ? WHERE ID = ?`,
					Parsed: sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`),
					Params: []Param{
						{Sym: smt.Sub(resVar, smt.Int(1)), Concrete: minidb.I64(2)},
						{Sym: orderID, Concrete: minidb.I64(7)},
					},
				},
			},
		}},
		PathConds: []PathCond{
			{AfterStmt: 0, Cond: smt.Ne(orderID, smt.Int(-1))},
			{AfterStmt: 1, Cond: smt.Read(arr, orderID)},
			{AfterStmt: 2, Cond: smt.Gt(smt.NewVar("res0.row0.p.QTY", smt.SortInt), smt.Int(0))},
		},
		Stats: Stats{PathConds: 3, PrunedConds: 120, Statements: 2},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.API != tr.API || len(back.Txns) != 1 || len(back.PathConds) != 3 {
		t.Fatalf("structure lost: %+v", back)
	}
	if back.Stats != tr.Stats {
		t.Errorf("stats = %+v", back.Stats)
	}
	s0 := back.Txns[0].Stmts[0]
	if s0.Parsed == nil || s0.Parsed.Kind() != sqlast.KindSelect {
		t.Error("statement not re-parsed")
	}
	if s0.Params[0].Sym.String() != "order_id" || s0.Params[0].Concrete.I != 7 {
		t.Errorf("param = %v / %v", s0.Params[0].Sym, s0.Params[0].Concrete)
	}
	if s0.Res.Sym[0][1].Name != "res0.row0.p.QTY" {
		t.Errorf("result alias = %v", s0.Res.Sym[0][1])
	}
	if s0.Trigger.Top().Line != 42 {
		t.Errorf("trigger = %v", s0.Trigger)
	}
	s1 := back.Txns[0].Stmts[1]
	if s1.Params[0].Sym.String() != "(res0.row0.p.ID - 1)" {
		t.Errorf("arith param = %v", s1.Params[0].Sym)
	}
	// The array-read path condition survives with its store chain.
	if got := back.PathConds[1].Cond.String(); got != tr.PathConds[1].Cond.String() {
		t.Errorf("array PC = %s, want %s", got, tr.PathConds[1].Cond)
	}
}

func TestRename(t *testing.T) {
	tr := sampleTrace()
	r := tr.Rename("A1.")
	if r.Inputs[0].Name != "A1.order_id" {
		t.Errorf("input = %v", r.Inputs[0])
	}
	if got := r.Txns[0].Stmts[0].Params[0].Sym.String(); got != "A1.order_id" {
		t.Errorf("param = %s", got)
	}
	if got := r.Txns[0].Stmts[0].Res.Sym[0][0].Name; got != "A1.res0.row0.p.ID" {
		t.Errorf("alias = %s", got)
	}
	// Original untouched.
	if tr.Inputs[0].Name != "order_id" {
		t.Error("rename mutated the source trace")
	}
	// Array ids renamed inside path conditions.
	if got := r.PathConds[1].Cond.String(); got == tr.PathConds[1].Cond.String() {
		t.Errorf("array PC unchanged: %s", got)
	}
}

func TestTxnTables(t *testing.T) {
	tr := sampleTrace()
	acc, wr := tr.Txns[0].Tables()
	if !acc["Product"] || !wr["Product"] {
		t.Errorf("tables = %v / %v", acc, wr)
	}
	if len(wr) != 1 {
		t.Errorf("written = %v", wr)
	}
}

func TestPathCondsBefore(t *testing.T) {
	tr := sampleTrace()
	if got := len(tr.PathCondsBefore(0)); got != 1 {
		t.Errorf("before stmt 0: %d", got)
	}
	if got := len(tr.PathCondsBefore(1)); got != 2 {
		t.Errorf("before stmt 1: %d", got)
	}
	if got := len(tr.PathCondsBefore(99)); got != 3 {
		t.Errorf("all: %d", got)
	}
}

func TestAllStmtsSorted(t *testing.T) {
	tr := &Trace{Txns: []*Txn{
		{ID: 1, Stmts: []*Stmt{{Seq: 2, SQL: "c", Parsed: sqlast.MustParse(`DELETE FROM T WHERE a = 1`)}}},
		{ID: 2, Stmts: []*Stmt{{Seq: 0, SQL: "a", Parsed: sqlast.MustParse(`DELETE FROM T WHERE a = 1`)}, {Seq: 1, SQL: "b", Parsed: sqlast.MustParse(`DELETE FROM T WHERE a = 1`)}}},
	}}
	all := tr.AllStmts()
	for i, s := range all {
		if s.Seq != i {
			t.Errorf("pos %d seq %d", i, s.Seq)
		}
	}
}

func TestCodeLocString(t *testing.T) {
	var empty CodeLoc
	if empty.String() != "<unknown>" {
		t.Errorf("empty = %s", empty.String())
	}
	loc := CodeLoc{Frames: []Frame{{Func: "f", File: "x.go", Line: 3}, {Func: "g", File: "y.go", Line: 9}}}
	want := "f (x.go:3) <- g (y.go:9)"
	if loc.String() != want {
		t.Errorf("loc = %s", loc.String())
	}
	if loc.Top().Func != "f" {
		t.Errorf("top = %v", loc.Top())
	}
}

func TestIsWrite(t *testing.T) {
	sel := &Stmt{Parsed: sqlast.MustParse(`SELECT * FROM T`)}
	ins := &Stmt{Parsed: sqlast.MustParse(`INSERT INTO T (a) VALUES (1)`)}
	if sel.IsWrite() || !ins.IsWrite() {
		t.Error("IsWrite misclassifies")
	}
}
