// Package trace defines the runtime traces WeSEER's trace collector
// produces and its deadlock analyzer consumes (Fig. 3 of the paper). A
// trace captures one API unit test's execution: the transactions it ran,
// each transaction's SQL statement templates with symbolic parameters and
// symbolic result aliases, the path conditions that enable the execution,
// and — for deadlock reporting — the code locations that triggered each
// statement (which, due to ORM write-behind caching, are generally not
// the locations that sent them).
package trace

import (
	"fmt"
	"strings"

	"weseer/internal/minidb"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

// Frame is one stack frame of application code.
type Frame struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

func (f Frame) String() string {
	return fmt.Sprintf("%s (%s:%d)", f.Func, f.File, f.Line)
}

// CodeLoc is a captured stack trace, innermost frame first.
type CodeLoc struct {
	Frames []Frame `json:"frames,omitempty"`
}

// Top returns the innermost frame, or a zero Frame.
func (c CodeLoc) Top() Frame {
	if len(c.Frames) == 0 {
		return Frame{}
	}
	return c.Frames[0]
}

func (c CodeLoc) String() string {
	if len(c.Frames) == 0 {
		return "<unknown>"
	}
	parts := make([]string, len(c.Frames))
	for i, f := range c.Frames {
		parts[i] = f.String()
	}
	return strings.Join(parts, " <- ")
}

// Input is one symbolic API input.
type Input struct {
	Name     string    `json:"name"`
	Sort     smt.Sort  `json:"sort"`
	Concrete smt.Value `json:"-"`
	// ConcreteStr carries the concrete value through serialization.
	ConcreteStr string `json:"concrete"`
}

// Param is one SQL parameter: its symbolic expression and the concrete
// value sent to the database during the concolic run.
type Param struct {
	Sym      smt.Expr
	Concrete minidb.Datum
}

// Result describes a SELECT's result set: symbolic aliases for every cell
// (the "res4.row0.p.ID" variables of Fig. 3) plus the concrete values.
type Result struct {
	// Cols are "alias.column" names.
	Cols []string
	// Sym[r][c] is the symbolic alias of row r, column c.
	Sym [][]smt.Var
	// Concrete[r][c] is the fetched value.
	Concrete [][]minidb.Datum
	// Empty reports a zero-row result — the case where range locks
	// protect an empty read set (Alg. 2).
	Empty bool
}

// PlanStep is one step of the database's concrete execution plan for a
// statement: which index (or full scan, Index == "") serves one table
// alias. Recording the plan implements the paper's first future-work
// item (Sec. V-D): querying the database for its execution plan removes
// the lock-modeling imprecision of assuming every possible index.
type PlanStep struct {
	Alias string `json:"alias"`
	Table string `json:"table"`
	Index string `json:"index,omitempty"`
}

// Stmt is one recorded SQL statement.
type Stmt struct {
	// Seq is the statement's 0-based position in the whole trace
	// (chronological send order, i.e. post-ORM-reordering).
	Seq int
	// TxnID identifies the enclosing transaction within the trace.
	TxnID int
	// SQL is the statement template text.
	SQL string
	// Parsed is the template AST (reconstructed from SQL on load).
	Parsed sqlast.Stmt
	// Params are the template's '?' values in order.
	Params []Param
	// Res is non-nil for SELECT statements.
	Res *Result
	// Plan is the database's concrete execution plan (EXPLAIN output),
	// when the collector recorded it.
	Plan []PlanStep
	// Trigger is the application code that caused this statement
	// (Sec. VI's ORM-aware mapping).
	Trigger CodeLoc
	// Sent is where the statement was physically submitted; for
	// write-behind statements this is the flush/commit site.
	Sent CodeLoc
}

// IsWrite reports whether the statement writes its table.
func (s *Stmt) IsWrite() bool { return s.Parsed.WriteTable() != "" }

// PathCond is one recorded path condition.
type PathCond struct {
	// AfterStmt is the number of statements already in the trace when
	// this condition was recorded; the fine-grained phase keeps only the
	// conditions recorded before a cycle's last involved statement.
	AfterStmt int
	Cond      smt.Expr
	Loc       CodeLoc
}

// Txn is one transaction instance inside a trace.
type Txn struct {
	ID        int
	Stmts     []*Stmt
	Committed bool
}

// Tables returns the set of tables the transaction touches and the subset
// it writes — the transaction-level phase's conflict signature.
func (t *Txn) Tables() (accessed, written map[string]bool) {
	accessed, written = map[string]bool{}, map[string]bool{}
	for _, s := range t.Stmts {
		for _, tab := range s.Parsed.Tables() {
			accessed[tab] = true
		}
		if w := s.Parsed.WriteTable(); w != "" {
			written[w] = true
		}
	}
	return accessed, written
}

// Stats captures collection-time counters, used by the Sec. IV pruning
// experiment (656K → 2.7K path conditions for Broadleaf's Ship API).
type Stats struct {
	// PathConds is the number of path conditions recorded in the trace.
	PathConds int `json:"path_conds"`
	// PrunedConds is the number of additional conditions that concrete-
	// only execution of driver/built-in/container functions avoided.
	PrunedConds int `json:"pruned_conds"`
	// Statements is the number of SQL statements recorded.
	Statements int `json:"statements"`
}

// Trace is one API unit test's collected execution.
type Trace struct {
	API       string
	Inputs    []Input
	Txns      []*Txn
	PathConds []PathCond
	Stats     Stats
}

// AllStmts returns every statement in send order.
func (tr *Trace) AllStmts() []*Stmt {
	var out []*Stmt
	for _, t := range tr.Txns {
		out = append(out, t.Stmts...)
	}
	sortStmts(out)
	return out
}

func sortStmts(ss []*Stmt) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Seq < ss[j-1].Seq; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// PathCondsBefore returns the conjunction of path conditions recorded
// before the statement with the given trace sequence number, as the
// fine-grained phase requires (conditions recorded after the potential
// deadlock point are omitted).
func (tr *Trace) PathCondsBefore(seq int) []smt.Expr {
	var out []smt.Expr
	for _, pc := range tr.PathConds {
		if pc.AfterStmt <= seq {
			out = append(out, pc.Cond)
		}
	}
	return out
}

// Rename returns a deep copy of the trace with every symbolic variable
// (and container array) prefixed, so two instances of the same trace have
// disjoint symbol spaces (e.g. "A1." and "A2." in Fig. 9).
func (tr *Trace) Rename(prefix string) *Trace {
	f := func(s string) string { return prefix + s }
	out := &Trace{API: tr.API, Stats: tr.Stats}
	for _, in := range tr.Inputs {
		in.Name = prefix + in.Name
		out.Inputs = append(out.Inputs, in)
	}
	for _, txn := range tr.Txns {
		nt := &Txn{ID: txn.ID, Committed: txn.Committed}
		for _, st := range txn.Stmts {
			ns := &Stmt{
				Seq: st.Seq, TxnID: st.TxnID, SQL: st.SQL, Parsed: st.Parsed,
				Plan: st.Plan, Trigger: st.Trigger, Sent: st.Sent,
			}
			for _, p := range st.Params {
				ns.Params = append(ns.Params, Param{Sym: smt.Rename(p.Sym, f), Concrete: p.Concrete})
			}
			if st.Res != nil {
				nr := &Result{Cols: st.Res.Cols, Empty: st.Res.Empty, Concrete: st.Res.Concrete}
				for _, row := range st.Res.Sym {
					nrow := make([]smt.Var, len(row))
					for i, v := range row {
						nrow[i] = smt.Var{Name: prefix + v.Name, S: v.S}
					}
					nr.Sym = append(nr.Sym, nrow)
				}
				ns.Res = nr
			}
			nt.Stmts = append(nt.Stmts, ns)
		}
		out.Txns = append(out.Txns, nt)
	}
	for _, pc := range tr.PathConds {
		out.PathConds = append(out.PathConds, PathCond{
			AfterStmt: pc.AfterStmt,
			Cond:      smt.Rename(pc.Cond, f),
			Loc:       pc.Loc,
		})
	}
	return out
}
