package trace

import (
	"encoding/json"
	"fmt"
	"math/big"

	"weseer/internal/minidb"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

// JSON serialization lets the CLI split collection ("weseer collect")
// from analysis ("weseer analyze"): traces are written to disk and read
// back with full symbolic structure.

// ---------------------------------------------------------------------------
// smt.Expr codec

type exprJSON struct {
	K    string      `json:"k"`
	V    string      `json:"v,omitempty"`
	B    bool        `json:"b,omitempty"`
	Name string      `json:"name,omitempty"`
	Sort smt.Sort    `json:"sort,omitempty"`
	Op   uint8       `json:"op,omitempty"`
	L    *exprJSON   `json:"l,omitempty"`
	R    *exprJSON   `json:"r,omitempty"`
	Xs   []*exprJSON `json:"xs,omitempty"`
	Conj bool        `json:"conj,omitempty"`
	Arr  *arrJSON    `json:"arr,omitempty"`
	Key  *exprJSON   `json:"key,omitempty"`
}

type arrJSON struct {
	ID      string      `json:"id"`
	KeySort smt.Sort    `json:"keysort"`
	Stores  []storeJSON `json:"stores,omitempty"` // root-first
}

type storeJSON struct {
	Key *exprJSON `json:"key"`
	Val bool      `json:"val"`
}

func encodeExpr(e smt.Expr) *exprJSON {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case smt.BoolConst:
		return &exprJSON{K: "bool", B: t.B}
	case smt.IntConst:
		return &exprJSON{K: "int", V: fmt.Sprintf("%d", t.V)}
	case smt.RealConst:
		return &exprJSON{K: "real", V: t.V.RatString()}
	case smt.StrConst:
		return &exprJSON{K: "str", V: t.S}
	case smt.Var:
		return &exprJSON{K: "var", Name: t.Name, Sort: t.S}
	case *smt.Arith:
		return &exprJSON{K: "arith", Op: uint8(t.Op), L: encodeExpr(t.L), R: encodeExpr(t.R), Sort: t.S}
	case *smt.Cmp:
		return &exprJSON{K: "cmp", Op: uint8(t.Op), L: encodeExpr(t.L), R: encodeExpr(t.R)}
	case *smt.NAry:
		out := &exprJSON{K: "nary", Conj: t.Conj}
		for _, x := range t.Xs {
			out.Xs = append(out.Xs, encodeExpr(x))
		}
		return out
	case smt.Not:
		return &exprJSON{K: "not", L: encodeExpr(t.X)}
	case *smt.Select:
		return &exprJSON{K: "sel", Arr: encodeArr(t.Arr), Key: encodeExpr(t.Key)}
	}
	panic(fmt.Sprintf("trace: cannot encode expr %T", e))
}

func encodeArr(a *smt.Array) *arrJSON {
	var chain []*smt.Array
	for cur := a; cur != nil; cur = cur.Parent {
		chain = append(chain, cur)
	}
	root := chain[len(chain)-1]
	out := &arrJSON{ID: root.ID, KeySort: root.KeySort}
	for i := len(chain) - 2; i >= 0; i-- {
		out.Stores = append(out.Stores, storeJSON{Key: encodeExpr(chain[i].StoreKey), Val: chain[i].StoreVal})
	}
	return out
}

func decodeExpr(j *exprJSON) (smt.Expr, error) {
	if j == nil {
		return nil, nil
	}
	switch j.K {
	case "bool":
		return smt.Bool(j.B), nil
	case "int":
		var v int64
		if _, err := fmt.Sscanf(j.V, "%d", &v); err != nil {
			return nil, fmt.Errorf("trace: bad int %q", j.V)
		}
		return smt.Int(v), nil
	case "real":
		r, ok := new(big.Rat).SetString(j.V)
		if !ok {
			return nil, fmt.Errorf("trace: bad rational %q", j.V)
		}
		return smt.RealFromRat(r), nil
	case "str":
		return smt.Str(j.V), nil
	case "var":
		return smt.NewVar(j.Name, j.Sort), nil
	case "arith":
		l, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(j.R)
		if err != nil {
			return nil, err
		}
		switch smt.ArithOp(j.Op) {
		case smt.OpAdd:
			return smt.Add(l, r), nil
		case smt.OpSub:
			return smt.Sub(l, r), nil
		case smt.OpMul:
			return smt.Mul(l, r), nil
		case smt.OpNeg:
			return smt.Neg(l), nil
		}
		return nil, fmt.Errorf("trace: bad arith op %d", j.Op)
	case "cmp":
		l, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(j.R)
		if err != nil {
			return nil, err
		}
		return smt.Compare(smt.CmpOp(j.Op), l, r), nil
	case "nary":
		xs := make([]smt.Expr, 0, len(j.Xs))
		for _, x := range j.Xs {
			e, err := decodeExpr(x)
			if err != nil {
				return nil, err
			}
			xs = append(xs, e)
		}
		if j.Conj {
			return smt.And(xs...), nil
		}
		return smt.Or(xs...), nil
	case "not":
		x, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		return smt.Negate(x), nil
	case "sel":
		arr, err := decodeArr(j.Arr)
		if err != nil {
			return nil, err
		}
		key, err := decodeExpr(j.Key)
		if err != nil {
			return nil, err
		}
		return smt.Read(arr, key), nil
	}
	return nil, fmt.Errorf("trace: unknown expr kind %q", j.K)
}

func decodeArr(j *arrJSON) (*smt.Array, error) {
	a := smt.NewArray(j.ID, j.KeySort)
	for _, s := range j.Stores {
		k, err := decodeExpr(s.Key)
		if err != nil {
			return nil, err
		}
		a = a.Store(k, s.Val)
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Datum codec

type datumJSON struct {
	Null bool   `json:"null,omitempty"`
	Kind uint8  `json:"kind"`
	V    string `json:"v,omitempty"`
}

func encodeDatum(d minidb.Datum) datumJSON {
	j := datumJSON{Null: d.Null, Kind: uint8(d.Kind)}
	if d.Null {
		return j
	}
	switch d.Kind {
	case minidb.KInt:
		j.V = fmt.Sprintf("%d", d.I)
	case minidb.KReal:
		j.V = d.R.RatString()
	case minidb.KStr:
		j.V = d.S
	}
	return j
}

func decodeDatum(j datumJSON) (minidb.Datum, error) {
	if j.Null {
		return minidb.NullDatum(minidb.Kind(j.Kind)), nil
	}
	switch minidb.Kind(j.Kind) {
	case minidb.KInt:
		var v int64
		if _, err := fmt.Sscanf(j.V, "%d", &v); err != nil {
			return minidb.Datum{}, fmt.Errorf("trace: bad int datum %q", j.V)
		}
		return minidb.I64(v), nil
	case minidb.KReal:
		r, ok := new(big.Rat).SetString(j.V)
		if !ok {
			return minidb.Datum{}, fmt.Errorf("trace: bad real datum %q", j.V)
		}
		return minidb.Real(r), nil
	case minidb.KStr:
		return minidb.Str(j.V), nil
	}
	return minidb.Datum{}, fmt.Errorf("trace: bad datum kind %d", j.Kind)
}

// ---------------------------------------------------------------------------
// Trace codec

type traceJSON struct {
	API       string    `json:"api"`
	Inputs    []Input   `json:"inputs"`
	Txns      []txnJSON `json:"txns"`
	PathConds []pcJSON  `json:"path_conds"`
	Stats     Stats     `json:"stats"`
}

type txnJSON struct {
	ID        int        `json:"id"`
	Committed bool       `json:"committed"`
	Stmts     []stmtJSON `json:"stmts"`
}

type stmtJSON struct {
	Seq     int         `json:"seq"`
	TxnID   int         `json:"txn"`
	SQL     string      `json:"sql"`
	Params  []paramJSON `json:"params,omitempty"`
	Res     *resJSON    `json:"res,omitempty"`
	Plan    []PlanStep  `json:"plan,omitempty"`
	Trigger CodeLoc     `json:"trigger"`
	Sent    CodeLoc     `json:"sent"`
}

type paramJSON struct {
	Sym      *exprJSON `json:"sym"`
	Concrete datumJSON `json:"concrete"`
}

type resJSON struct {
	Cols     []string      `json:"cols"`
	Sym      [][]*exprJSON `json:"sym"`
	Concrete [][]datumJSON `json:"concrete"`
	Empty    bool          `json:"empty"`
}

type pcJSON struct {
	AfterStmt int       `json:"after"`
	Cond      *exprJSON `json:"cond"`
	Loc       CodeLoc   `json:"loc"`
}

// MarshalJSON implements json.Marshaler.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	out := traceJSON{API: tr.API, Stats: tr.Stats}
	for _, in := range tr.Inputs {
		in.ConcreteStr = in.Concrete.String()
		out.Inputs = append(out.Inputs, in)
	}
	for _, txn := range tr.Txns {
		tj := txnJSON{ID: txn.ID, Committed: txn.Committed}
		for _, st := range txn.Stmts {
			sj := stmtJSON{Seq: st.Seq, TxnID: st.TxnID, SQL: st.SQL, Plan: st.Plan, Trigger: st.Trigger, Sent: st.Sent}
			for _, p := range st.Params {
				sj.Params = append(sj.Params, paramJSON{Sym: encodeExpr(p.Sym), Concrete: encodeDatum(p.Concrete)})
			}
			if st.Res != nil {
				rj := &resJSON{Cols: st.Res.Cols, Empty: st.Res.Empty}
				for _, row := range st.Res.Sym {
					var r []*exprJSON
					for _, v := range row {
						r = append(r, encodeExpr(v))
					}
					rj.Sym = append(rj.Sym, r)
				}
				for _, row := range st.Res.Concrete {
					var r []datumJSON
					for _, d := range row {
						r = append(r, encodeDatum(d))
					}
					rj.Concrete = append(rj.Concrete, r)
				}
				sj.Res = rj
			}
			tj.Stmts = append(tj.Stmts, sj)
		}
		out.Txns = append(out.Txns, tj)
	}
	for _, pc := range tr.PathConds {
		out.PathConds = append(out.PathConds, pcJSON{AfterStmt: pc.AfterStmt, Cond: encodeExpr(pc.Cond), Loc: pc.Loc})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (tr *Trace) UnmarshalJSON(data []byte) error {
	var in traceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	tr.API = in.API
	tr.Stats = in.Stats
	tr.Inputs = in.Inputs
	tr.Txns = nil
	tr.PathConds = nil
	for _, tj := range in.Txns {
		txn := &Txn{ID: tj.ID, Committed: tj.Committed}
		for _, sj := range tj.Stmts {
			parsed, err := sqlast.Parse(sj.SQL)
			if err != nil {
				return fmt.Errorf("trace: re-parsing %q: %w", sj.SQL, err)
			}
			st := &Stmt{Seq: sj.Seq, TxnID: sj.TxnID, SQL: sj.SQL, Parsed: parsed, Plan: sj.Plan, Trigger: sj.Trigger, Sent: sj.Sent}
			for _, pj := range sj.Params {
				sym, err := decodeExpr(pj.Sym)
				if err != nil {
					return err
				}
				d, err := decodeDatum(pj.Concrete)
				if err != nil {
					return err
				}
				st.Params = append(st.Params, Param{Sym: sym, Concrete: d})
			}
			if sj.Res != nil {
				res := &Result{Cols: sj.Res.Cols, Empty: sj.Res.Empty}
				for _, row := range sj.Res.Sym {
					var r []smt.Var
					for _, ej := range row {
						e, err := decodeExpr(ej)
						if err != nil {
							return err
						}
						v, ok := e.(smt.Var)
						if !ok {
							return fmt.Errorf("trace: result alias is not a variable: %v", e)
						}
						r = append(r, v)
					}
					res.Sym = append(res.Sym, r)
				}
				for _, row := range sj.Res.Concrete {
					var r []minidb.Datum
					for _, dj := range row {
						d, err := decodeDatum(dj)
						if err != nil {
							return err
						}
						r = append(r, d)
					}
					res.Concrete = append(res.Concrete, r)
				}
				st.Res = res
			}
			txn.Stmts = append(txn.Stmts, st)
		}
		tr.Txns = append(tr.Txns, txn)
	}
	for _, pj := range in.PathConds {
		cond, err := decodeExpr(pj.Cond)
		if err != nil {
			return err
		}
		tr.PathConds = append(tr.PathConds, PathCond{AfterStmt: pj.AfterStmt, Cond: cond, Loc: pj.Loc})
	}
	return nil
}
