package schema

import (
	"testing"

	"weseer/internal/smt"
)

// paperSchema builds the Fig. 1 schema from the paper.
func paperSchema() *Schema {
	s := New()
	s.AddTable("Orders").
		Col("ID", Int).
		PrimaryKey("ID")
	s.AddTable("Product").
		Col("ID", Int).
		Col("QTY", Int).
		PrimaryKey("ID")
	s.AddTable("OrderItem").
		Col("ID", Int).
		Col("O_ID", Int).
		Col("P_ID", Int).
		Col("QTY", Int).
		PrimaryKey("ID").
		Index("idx_o_id", "O_ID").
		Index("idx_p_id", "P_ID").
		ForeignKey([]string{"O_ID"}, "Orders", []string{"ID"}).
		ForeignKey([]string{"P_ID"}, "Product", []string{"ID"})
	return s
}

func TestPaperSchema(t *testing.T) {
	s := paperSchema()
	oi := s.Table("OrderItem")
	if oi == nil {
		t.Fatal("OrderItem missing")
	}
	if oi.Column("O_ID") == nil || oi.Column("O_ID").Type != Int {
		t.Error("O_ID column wrong")
	}
	if oi.Column("missing") != nil {
		t.Error("phantom column")
	}
	pi := oi.PrimaryIndex()
	if pi == nil || !pi.Unique || pi.Type != Primary || len(pi.Columns) != 1 || pi.Columns[0] != "ID" {
		t.Errorf("primary index %+v", pi)
	}
	secs := oi.SecondaryIndexes()
	if len(secs) != 2 {
		t.Fatalf("secondary indexes = %d", len(secs))
	}
	if secs[0].Unique {
		t.Error("idx_o_id should be non-unique")
	}
	if !secs[0].Covers("O_ID") || secs[0].Covers("P_ID") {
		t.Error("Covers wrong")
	}
	if len(oi.ForeignKeys) != 2 || oi.ForeignKeys[0].RefTable != "Orders" {
		t.Errorf("foreign keys %+v", oi.ForeignKeys)
	}
	if got := len(s.Tables()); got != 3 {
		t.Errorf("tables = %d", got)
	}
}

func TestColTypeSort(t *testing.T) {
	if Int.Sort() != smt.SortInt || Decimal.Sort() != smt.SortReal || Varchar.Sort() != smt.SortString {
		t.Error("ColType sorts wrong")
	}
}

func TestIndexString(t *testing.T) {
	ix := &Index{Name: "idx", Table: "T", Type: Secondary, Columns: []string{"a", "b"}}
	if got := ix.String(); got != "index(T, sec, [a b])" {
		t.Errorf("String = %s", got)
	}
}

func TestNoPrimaryIndex(t *testing.T) {
	s := New()
	s.AddTable("Heap").Col("x", Int)
	if s.Table("Heap").PrimaryIndex() != nil {
		t.Error("heap table should have no primary index")
	}
}

func TestUniqueSecondary(t *testing.T) {
	s := New()
	s.AddTable("Users").
		Col("ID", Int).
		Col("EMAIL", Varchar).
		PrimaryKey("ID").
		UniqueIndex("uniq_email", "EMAIL")
	ix := s.Table("Users").SecondaryIndexes()[0]
	if !ix.Unique || ix.Type != Secondary {
		t.Errorf("index %+v", ix)
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("dup table", func() {
		s := New()
		s.AddTable("T").Col("x", Int)
		s.AddTable("T")
	})
	expectPanic("dup column", func() {
		New().AddTable("T").Col("x", Int).Col("x", Int)
	})
	expectPanic("unknown index column", func() {
		New().AddTable("T").Col("x", Int).Index("i", "y")
	})
	expectPanic("dup primary", func() {
		New().AddTable("T").Col("x", Int).PrimaryKey("x").PrimaryKey("x")
	})
	expectPanic("fk arity", func() {
		New().AddTable("T").Col("x", Int).ForeignKey([]string{"x"}, "U", []string{"a", "b"})
	})
}
