// Package schema describes relational schemas: tables, typed columns,
// primary and secondary indexes, and foreign keys. Both the minidb engine
// and WeSEER's lock modeling (which must infer the indexes a statement can
// use, Sec. V-C2 of the paper) consume these descriptions.
package schema

import (
	"fmt"

	"weseer/internal/smt"
)

// ColType is a column's data type.
type ColType uint8

// Column types map onto the solver sorts: INT→Int, DECIMAL→Real,
// VARCHAR→String.
const (
	Int ColType = iota
	Decimal
	Varchar
)

func (t ColType) String() string {
	switch t {
	case Int:
		return "INT"
	case Decimal:
		return "DECIMAL"
	case Varchar:
		return "VARCHAR"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Sort returns the smt sort used for symbolic values of this column type.
func (t ColType) Sort() smt.Sort {
	switch t {
	case Int:
		return smt.SortInt
	case Decimal:
		return smt.SortReal
	case Varchar:
		return smt.SortString
	}
	panic("schema: unknown ColType")
}

// Column is a typed table column.
type Column struct {
	Name string
	Type ColType
}

// IndexType distinguishes the primary index from secondary indexes, per
// the paper's index(table, type, columns) notation.
type IndexType uint8

// Index types.
const (
	Primary IndexType = iota
	Secondary
)

func (t IndexType) String() string {
	if t == Primary {
		return "pri"
	}
	return "sec"
}

// Index is a database index over one or more columns of a table.
type Index struct {
	Name    string
	Table   string
	Type    IndexType
	Unique  bool
	Columns []string
}

func (ix *Index) String() string {
	return fmt.Sprintf("index(%s, %s, %v)", ix.Table, ix.Type, ix.Columns)
}

// Covers reports whether col is one of the index's columns.
func (ix *Index) Covers(col string) bool {
	for _, c := range ix.Columns {
		if c == col {
			return true
		}
	}
	return false
}

// ForeignKey declares that Columns of Table reference RefColumns of
// RefTable.
type ForeignKey struct {
	Table      string
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table is a table definition.
type Table struct {
	Name        string
	Columns     []Column
	Indexes     []*Index
	ForeignKeys []ForeignKey

	colByName map[string]*Column
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	return t.colByName[name]
}

// PrimaryIndex returns the table's primary index, or nil if none exists
// (a heap table; statements against it take table locks).
func (t *Table) PrimaryIndex() *Index {
	for _, ix := range t.Indexes {
		if ix.Type == Primary {
			return ix
		}
	}
	return nil
}

// SecondaryIndexes returns all non-primary indexes.
func (t *Table) SecondaryIndexes() []*Index {
	var out []*Index
	for _, ix := range t.Indexes {
		if ix.Type == Secondary {
			out = append(out, ix)
		}
	}
	return out
}

// Schema is a set of tables.
type Schema struct {
	tables  map[string]*Table
	ordered []*Table
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{tables: map[string]*Table{}}
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	return s.tables[name]
}

// Tables returns tables in definition order.
func (s *Schema) Tables() []*Table {
	return s.ordered
}

// TableBuilder accumulates a table definition.
type TableBuilder struct {
	s *Schema
	t *Table
}

// AddTable starts defining a table. It panics on duplicate names:
// schemas are static program inputs, so misuse is a programming error.
func (s *Schema) AddTable(name string) *TableBuilder {
	if _, ok := s.tables[name]; ok {
		panic("schema: duplicate table " + name)
	}
	t := &Table{Name: name, colByName: map[string]*Column{}}
	s.tables[name] = t
	s.ordered = append(s.ordered, t)
	return &TableBuilder{s: s, t: t}
}

// Col adds a column.
func (b *TableBuilder) Col(name string, typ ColType) *TableBuilder {
	if b.t.colByName[name] != nil {
		panic("schema: duplicate column " + name + " in " + b.t.Name)
	}
	b.t.Columns = append(b.t.Columns, Column{Name: name, Type: typ})
	b.t.colByName[name] = &b.t.Columns[len(b.t.Columns)-1]
	return b
}

// PrimaryKey declares the primary index over cols.
func (b *TableBuilder) PrimaryKey(cols ...string) *TableBuilder {
	b.checkCols(cols)
	if b.t.PrimaryIndex() != nil {
		panic("schema: duplicate primary key on " + b.t.Name)
	}
	b.t.Indexes = append(b.t.Indexes, &Index{
		Name: "PRIMARY", Table: b.t.Name, Type: Primary, Unique: true, Columns: cols,
	})
	return b
}

// Index adds a non-unique secondary index.
func (b *TableBuilder) Index(name string, cols ...string) *TableBuilder {
	return b.addSecondary(name, false, cols)
}

// UniqueIndex adds a unique secondary index.
func (b *TableBuilder) UniqueIndex(name string, cols ...string) *TableBuilder {
	return b.addSecondary(name, true, cols)
}

func (b *TableBuilder) addSecondary(name string, unique bool, cols []string) *TableBuilder {
	b.checkCols(cols)
	for _, ix := range b.t.Indexes {
		if ix.Name == name {
			panic("schema: duplicate index " + name + " on " + b.t.Name)
		}
	}
	b.t.Indexes = append(b.t.Indexes, &Index{
		Name: name, Table: b.t.Name, Type: Secondary, Unique: unique, Columns: cols,
	})
	return b
}

// ForeignKey declares cols reference refTable(refCols).
func (b *TableBuilder) ForeignKey(cols []string, refTable string, refCols []string) *TableBuilder {
	b.checkCols(cols)
	if len(cols) != len(refCols) {
		panic("schema: foreign key arity mismatch")
	}
	b.t.ForeignKeys = append(b.t.ForeignKeys, ForeignKey{
		Table: b.t.Name, Columns: cols, RefTable: refTable, RefColumns: refCols,
	})
	return b
}

func (b *TableBuilder) checkCols(cols []string) {
	if len(cols) == 0 {
		panic("schema: empty column list")
	}
	for _, c := range cols {
		if b.t.colByName[c] == nil {
			panic(fmt.Sprintf("schema: unknown column %s.%s", b.t.Name, c))
		}
	}
}
