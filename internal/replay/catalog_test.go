package replay

import (
	"fmt"
	"testing"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/schema"
)

// catalogApp is one model app's surface for the whole-catalog pin.
type catalogApp struct {
	name     string
	schema   *schema.Schema
	classify func(*core.Deadlock) string
	mkState  func() (*minidb.DB, []appkit.UnitTest)
}

// catalogApps opens both Table II model apps with a short lock-wait
// timeout so Blocked outcomes resolve quickly instead of stalling the
// test for the default 5s per wait.
func catalogApps() []catalogApp {
	cfg := minidb.Config{LockWaitTimeout: 250 * time.Millisecond}
	return []catalogApp{
		{
			name:     "broadleaf",
			schema:   broadleaf.Schema(),
			classify: broadleaf.Classify,
			mkState: func() (*minidb.DB, []appkit.UnitTest) {
				a := broadleaf.New(broadleaf.Fixes{}, cfg)
				return a.DB, a.UnitTests()
			},
		},
		{
			name:     "shopizer",
			schema:   shopizer.Schema(),
			classify: shopizer.Classify,
			mkState: func() (*minidb.DB, []appkit.UnitTest) {
				a := shopizer.New(shopizer.Fixes{}, cfg)
				return a.DB, a.UnitTests()
			},
		},
	}
}

// TestCatalogReproducesDeadlocked is the end-to-end true-positive pin:
// every one of the 18 Table II catalog entries must reproduce as a real
// engine-detected deadlock when its reported cycle is replayed against
// collection-time state. A catalog entry whose every report comes back
// NoConflict or SetupFailed is a regression — either the report lost
// its concrete parameters or the replayer lost an edge.
func TestCatalogReproducesDeadlocked(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the whole catalog; skip in -short")
	}
	reproduced := map[string]bool{}
	tried := map[string]int{}
	for _, app := range catalogApps() {
		_, tests := app.mkState()
		traces, err := appkit.Collect(tests, concolic.ModeConcolic)
		if err != nil {
			t.Fatal(err)
		}
		res := core.NewAnalyzer(app.schema).Analyze(traces)
		byClass := map[string][]*core.Deadlock{}
		for _, d := range res.Deadlocks {
			if id := app.classify(d); len(id) >= 2 && id[0] == 'd' && id[1] >= '0' && id[1] <= '9' {
				byClass[id] = append(byClass[id], d)
			}
		}
		for id, ds := range byClass {
			for _, d := range ds {
				if reproduced[id] {
					break
				}
				tried[id]++
				db, tests := app.mkState()
				if err := appkit.RunPrefix(tests, prefixLen(tests, d.APIs[0], d.APIs[1])); err != nil {
					t.Fatalf("%s %s: rebuild state: %v", app.name, id, err)
				}
				out := Reproduce(db, d.Cycle)
				if out.Status == Deadlocked {
					reproduced[id] = true
				}
			}
		}
	}
	for i := 1; i <= 18; i++ {
		id := fmt.Sprintf("d%d", i)
		if !reproduced[id] {
			t.Errorf("catalog entry %s: no report reproduced as DEADLOCKED (%d attempt(s))", id, tried[id])
		}
	}
	t.Logf("18/18 check: %d classes reproduced, attempts by class: %v", len(reproduced), tried)
}
