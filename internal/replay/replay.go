// Package replay automatically reproduces reported deadlocks against a
// live database — the paper's second future-work item (Sec. V-D):
// "develop a framework to automatically reproduce the deadlocks according
// to WeSEER's report. Doing so helps eliminate all false positives and
// removes the burden on developers to manually verify reported
// deadlocks."
//
// A reported cycle names four statements: T1 holds the lock acquired at
// S1a and waits at S1b; T2 holds at S2a and waits at S2b. Reproduction
// opens two transactions against a database holding the collection-time
// state, executes the two lock-holding statements with their recorded
// concrete parameters, and then issues the two waiting statements
// concurrently. If the report is a true positive, the engine's
// detect-and-recover machinery fires and one side returns ErrDeadlock.
package replay

import (
	"errors"
	"fmt"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/trace"
)

// Status classifies a reproduction attempt.
type Status uint8

// Reproduction outcomes.
const (
	// Deadlocked: the cycle fired; the engine aborted a victim.
	Deadlocked Status = iota
	// Blocked: the waiting statements contended (one blocked until the
	// other committed) but no cycle closed — a near-miss, typically a
	// conservative report whose second edge did not materialize.
	Blocked
	// NoConflict: both waiting statements proceeded without contact; the
	// report did not manifest on this state.
	NoConflict
	// SetupFailed: the holding statements could not be executed (state
	// mismatch, duplicate keys, or mutual blocking).
	SetupFailed
)

func (s Status) String() string {
	switch s {
	case Deadlocked:
		return "DEADLOCKED"
	case Blocked:
		return "blocked (near-miss)"
	case NoConflict:
		return "no conflict"
	case SetupFailed:
		return "setup failed"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Outcome reports one reproduction attempt.
type Outcome struct {
	Status Status
	// Detail carries the distinguishing error or observation.
	Detail string
}

// Reproduce attempts to trigger the reported cycle on db, which must hold
// the state the traces were collected against (rebuild it by re-running
// the unit-test sequence; see appkit.RunPrefix). Both transactions
// are rolled back before returning, so the database state is preserved.
func Reproduce(db *minidb.DB, cyc core.Cycle) Outcome {
	t1, t2 := db.Begin(), db.Begin()
	defer rollback(t1)
	defer rollback(t2)

	// Phase 1: take the held locks.
	if err := execStmt(t1, cyc.S1a); err != nil {
		return Outcome{Status: SetupFailed, Detail: fmt.Sprintf("T1 holding stmt: %v", err)}
	}
	if err := execStmt(t2, cyc.S2a); err != nil {
		return Outcome{Status: SetupFailed, Detail: fmt.Sprintf("T2 holding stmt: %v", err)}
	}

	// Phase 2: issue both waiting statements concurrently.
	type res struct {
		who string
		err error
		dur time.Duration
	}
	results := make(chan res, 2)
	run := func(who string, txn *minidb.Txn, st *trace.Stmt) {
		start := time.Now()
		err := execStmt(txn, st)
		results <- res{who: who, err: err, dur: time.Since(start)}
	}
	go run("T1", t1, cyc.S1b)
	go run("T2", t2, cyc.S2b)

	var errs []res
	for i := 0; i < 2; i++ {
		r := <-results
		errs = append(errs, r)
		// Unblock the peer: once one side finishes (successfully or as a
		// deadlock victim), commit-like release is simulated by rollback
		// in the deferred cleanup; for the Blocked classification we need
		// the first finisher's locks released so the second can finish.
		if i == 0 && r.err == nil {
			// The first statement completed without waiting long; release
			// its transaction so a merely-blocked peer can proceed.
			if r.who == "T1" {
				rollback(t1)
			} else {
				rollback(t2)
			}
		}
	}

	var deadlocked, blocked bool
	var detail string
	for _, r := range errs {
		switch {
		case errors.Is(r.err, minidb.ErrDeadlock):
			deadlocked = true
			detail = fmt.Sprintf("%s aborted as deadlock victim after %v", r.who, r.dur.Round(time.Millisecond))
		case errors.Is(r.err, minidb.ErrLockWaitTimeout):
			blocked = true
			detail = fmt.Sprintf("%s timed out waiting", r.who)
		case r.err != nil:
			detail = fmt.Sprintf("%s: %v", r.who, r.err)
		case r.dur > 20*time.Millisecond:
			blocked = true
			if detail == "" {
				detail = fmt.Sprintf("%s waited %v for the peer", r.who, r.dur.Round(time.Millisecond))
			}
		}
	}
	switch {
	case deadlocked:
		return Outcome{Status: Deadlocked, Detail: detail}
	case blocked:
		return Outcome{Status: Blocked, Detail: detail}
	default:
		return Outcome{Status: NoConflict, Detail: detail}
	}
}

// ReproduceReport rebuilds the collection-time state with mkState and
// attempts every deadlock in the result, returning per-report outcomes.
// mkState must return a fresh database in the pre-collection state plus
// the unit tests that were collected (their prefix is replayed to recover
// each trace's initial state).
func ReproduceReport(res *core.Result, mkState func() (*minidb.DB, []appkit.UnitTest)) []Outcome {
	out := make([]Outcome, len(res.Deadlocks))
	for i, d := range res.Deadlocks {
		db, tests := mkState()
		// Rebuild state up to the earlier of the two involved traces so
		// the recorded concrete keys refer to live rows.
		n := prefixLen(tests, d.APIs[0], d.APIs[1])
		if err := appkit.RunPrefix(tests, n); err != nil {
			out[i] = Outcome{Status: SetupFailed, Detail: err.Error()}
			continue
		}
		out[i] = Reproduce(db, d.Cycle)
	}
	return out
}

// prefixLen returns how many unit tests to replay: all tests before the
// earliest API involved in the cycle.
func prefixLen(tests []appkit.UnitTest, api1, api2 string) int {
	idx := len(tests)
	for i, t := range tests {
		if t.Name == api1 || t.Name == api2 {
			idx = i
			break
		}
	}
	return idx
}

// execStmt replays one recorded statement with its concrete parameters.
func execStmt(txn *minidb.Txn, st *trace.Stmt) error {
	params := make([]minidb.Datum, len(st.Params))
	for i, p := range st.Params {
		params[i] = p.Concrete
	}
	_, err := txn.Exec(st.Parsed, params)
	return err
}

func rollback(t *minidb.Txn) {
	if t.State() == minidb.TxnActive || t.State() == minidb.TxnAborted {
		t.Rollback()
	}
}
