package replay

import (
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
)

func analyzeBroadleaf(t *testing.T) (*core.Result, func() (*minidb.DB, []appkit.UnitTest)) {
	t.Helper()
	app := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(broadleaf.Schema(), core.Options{}).Analyze(traces)
	mkState := func() (*minidb.DB, []appkit.UnitTest) {
		fresh := broadleaf.New(broadleaf.Fixes{}, minidb.Config{})
		return fresh.DB, fresh.UnitTests()
	}
	return res, mkState
}

// TestReproduceD1 replays the Register–Register merge deadlock: the two
// holding SELECTs take compatible range locks, and the two INSERTs then
// close the cycle, so the engine must abort a victim.
func TestReproduceD1(t *testing.T) {
	res, mkState := analyzeBroadleaf(t)
	var reproduced bool
	for _, d := range res.Deadlocks {
		if broadleaf.Classify(d) != "d1" {
			continue
		}
		db, tests := mkState()
		if err := appkit.RunPrefix(tests, prefixLen(tests, d.APIs[0], d.APIs[1])); err != nil {
			t.Fatal(err)
		}
		out := Reproduce(db, d.Cycle)
		t.Logf("d1 reproduction: %s (%s)", out.Status, out.Detail)
		if out.Status == Deadlocked {
			reproduced = true
		}
	}
	if !reproduced {
		t.Fatal("d1 did not reproduce")
	}
}

// TestReproduceReportTriage replays every Broadleaf report and checks the
// triage: a substantial fraction reproduces as real deadlocks, and the
// checkout reports (protected by an application-level lock the replayer
// bypasses) reproduce too — confirming they are database-level true
// positives that only the app-level lock prevents.
func TestReproduceReportTriage(t *testing.T) {
	if testing.Short() {
		t.Skip("replays every report; skip in -short")
	}
	res, mkState := analyzeBroadleaf(t)
	outcomes := ReproduceReport(res, mkState)
	counts := map[Status]int{}
	deadlockedByClass := map[string]bool{}
	for i, o := range outcomes {
		counts[o.Status]++
		if o.Status == Deadlocked {
			deadlockedByClass[broadleaf.Classify(res.Deadlocks[i])] = true
		}
	}
	t.Logf("outcomes: %d deadlocked, %d blocked, %d no-conflict, %d setup-failed of %d",
		counts[Deadlocked], counts[Blocked], counts[NoConflict], counts[SetupFailed], len(outcomes))
	t.Logf("classes reproduced: %v", deadlockedByClass)
	if counts[Deadlocked] == 0 {
		t.Fatal("no report reproduced")
	}
	// The gap-lock families known to replay exactly from their recorded
	// statements must reproduce.
	for _, id := range []string{"d1", "d2"} {
		if !deadlockedByClass[id] {
			t.Errorf("%s did not reproduce", id)
		}
	}
}

// TestStatePreserved: reproduction rolls both transactions back.
func TestStatePreserved(t *testing.T) {
	res, mkState := analyzeBroadleaf(t)
	if len(res.Deadlocks) == 0 {
		t.Fatal("no deadlocks")
	}
	db, tests := mkState()
	d := res.Deadlocks[0]
	if err := appkit.RunPrefix(tests, prefixLen(tests, d.APIs[0], d.APIs[1])); err != nil {
		t.Fatal(err)
	}
	before := db.StatsSnapshot().Commits
	rows := len(db.TableRows("Customer"))
	Reproduce(db, d.Cycle)
	if got := len(db.TableRows("Customer")); got != rows {
		t.Errorf("customer rows changed: %d -> %d", rows, got)
	}
	if db.StatsSnapshot().Commits != before {
		t.Errorf("reproduction committed transactions")
	}
}
