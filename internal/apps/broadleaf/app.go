package broadleaf

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"weseer/internal/concolic"
	"weseer/internal/minidb"
	"weseer/internal/orm"
)

// Application-level errors (HTTP 4xx analogs).
var (
	ErrPasswordMismatch = errors.New("broadleaf: passwords do not match")
	ErrBadUsername      = errors.New("broadleaf: empty username")
	ErrNoCart           = errors.New("broadleaf: customer has no cart")
	ErrOutOfStock       = errors.New("broadleaf: not enough products")
)

// Fixes toggles the application-side deadlock fixes f1–f8 of Table II.
// The unfixed application (zero value) exhibits deadlocks d1–d13.
type Fixes struct {
	F1 bool // d1: use persist instead of merge when registering
	F2 bool // d2: replace cart-lock check-then-insert with an UPSERT
	F3 bool // d3, d4: run order-item existence SELECTs in a separate txn
	F4 bool // d5, d6: flush offer/fulfillment-option updates early
	F5 bool // d7, d8, d9: run cart-pricing SELECTs in a separate txn
	F6 bool // d10: insert the address first, then point-select it
	F7 bool // d11: run the shipping-adjustment SELECT in a separate txn
	F8 bool // d12, d13: run tax/fee SELECTs in a separate txn
}

// AllFixes enables every fix.
func AllFixes() Fixes {
	return Fixes{F1: true, F2: true, F3: true, F4: true, F5: true, F6: true, F7: true, F8: true}
}

// Disable returns the fix set with one fix (by name, e.g. "f2") turned
// off — the Fig. 10 ablation configurations.
func (f Fixes) Disable(name string) Fixes {
	switch name {
	case "f1":
		f.F1 = false
	case "f2":
		f.F2 = false
	case "f3":
		f.F3 = false
	case "f4":
		f.F4 = false
	case "f5":
		f.F5 = false
	case "f6":
		f.F6 = false
	case "f7":
		f.F7 = false
	case "f8":
		f.F8 = false
	default:
		panic("broadleaf: unknown fix " + name)
	}
	return f
}

// FixNames lists the Broadleaf fixes in Fig. 10 order.
func FixNames() []string {
	return []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"}
}

// FixesFrom returns the fix set with exactly the named fixes enabled —
// the fix-verification loop's incremental configurations.
func FixesFrom(names []string) (Fixes, error) {
	var f Fixes
	for _, n := range names {
		switch n {
		case "f1":
			f.F1 = true
		case "f2":
			f.F2 = true
		case "f3":
			f.F3 = true
		case "f4":
			f.F4 = true
		case "f5":
			f.F5 = true
		case "f6":
			f.F6 = true
		case "f7":
			f.F7 = true
		case "f8":
			f.F8 = true
		default:
			return Fixes{}, fmt.Errorf("broadleaf: unknown fix %q", n)
		}
	}
	return f, nil
}

// App is one deployment of the model application over its database.
type App struct {
	DB      *minidb.DB
	Mapping *orm.Mapping
	Fixes   Fixes

	// inventoryMu is Broadleaf's own application-level lock protecting
	// checkout's product-quantity updates (the ad-hoc synchronization of
	// Sec. V-D that WeSEER cannot see — a documented false-positive
	// source). It is always on; it is not one of the f1–f8 toggles.
	inventoryMu sync.Mutex

	// NumProducts is the size of the seeded catalog.
	NumProducts int
}

// New creates an application instance with a fresh seeded database.
func New(fixes Fixes, cfg minidb.Config) *App {
	if cfg.LockWaitTimeout == 0 {
		cfg.LockWaitTimeout = 2 * time.Second
	}
	a := &App{
		DB:          minidb.Open(Schema(), cfg),
		Mapping:     NewMapping(),
		Fixes:       fixes,
		NumProducts: 32,
	}
	a.seed()
	return a
}

// seed loads the product catalog with its per-product offer and
// fulfillment-option rows.
func (a *App) seed() {
	e := concolic.New(concolic.ModeOff)
	s := a.session(e)
	err := s.Transactional(func() error {
		for i := 1; i <= a.NumProducts; i++ {
			id := concolic.Int(int64(i))
			p := s.NewEntity("Product")
			s.Set(p, "ID", id)
			s.Set(p, "QTY", concolic.Int(1_000_000))
			s.Set(p, "PRICE", concolic.Int(int64(10+i)))
			s.Persist(p)
			of := s.NewEntity("Offer")
			s.Set(of, "ID", id)
			s.Set(of, "USES", concolic.Int(0))
			s.Persist(of)
			fo := s.NewEntity("FulfillmentOption")
			s.Set(fo, "ID", id)
			s.Set(fo, "USES", concolic.Int(0))
			s.Persist(fo)
			os := s.NewEntity("OfferStat")
			s.Set(os, "ID", id)
			s.Set(os, "VIEWS", concolic.Int(0))
			s.Persist(os)
			fs := s.NewEntity("FulfillmentStat")
			s.Set(fs, "ID", id)
			s.Set(fs, "VIEWS", concolic.Int(0))
			s.Persist(fs)
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("broadleaf: seeding failed: %v", err))
	}
	a.DB.BumpID("Product", int64(a.NumProducts))
}

// session opens a fresh persistence context for one API call.
func (a *App) session(e *concolic.Engine) *orm.Session {
	return orm.NewSession(a.Mapping, concolic.NewConn(e, a.DB))
}

// probeSession opens a second persistence context used when a fix moves
// SELECT statements into their own transaction (f3/f5/f7/f8).
func (a *App) probeSession(e *concolic.Engine) *orm.Session {
	return orm.NewSession(a.Mapping, concolic.NewConn(e, a.DB))
}

// selectorFor returns the session that existence-check SELECTs should run
// on: the main session (in-transaction — deadlock-prone) or a separate
// auto-committing probe session when the fix is enabled.
func selectorFor(fixOn bool, main, probe *orm.Session) *orm.Session {
	if fixOn {
		return probe
	}
	return main
}
