package broadleaf

import (
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
)

// UnitTests returns the API unit tests of Table I, in invocation order:
// Register once, Add three times (taking the Add1/Add2/Add3 paths as the
// database state evolves), then Ship, Payment, and Checkout. Each test
// marks its API inputs symbolic, exactly as the paper's collector
// prepares tests with make_symbolic.
func (a *App) UnitTests() []appkit.UnitTest {
	cust := func(e *concolic.Engine) concolic.Value {
		return e.MakeSymbolic("customer_id", concolic.Int(1))
	}
	return []appkit.UnitTest{
		{Name: "Register", Run: func(e *concolic.Engine) error {
			_, err := a.Register(e,
				e.MakeSymbolic("username", concolic.Str("alice")),
				e.MakeSymbolic("email", concolic.Str("alice@example.com")),
				e.MakeSymbolic("password", concolic.Str("secret1")),
				e.MakeSymbolic("password_confirm", concolic.Str("secret1")))
			return err
		}},
		{Name: "Add1", Run: func(e *concolic.Engine) error {
			return a.Add(e, cust(e), e.MakeSymbolic("product_id", concolic.Int(1)))
		}},
		{Name: "Add2", Run: func(e *concolic.Engine) error {
			return a.Add(e, cust(e), e.MakeSymbolic("product_id", concolic.Int(2)))
		}},
		{Name: "Add3", Run: func(e *concolic.Engine) error {
			return a.Add(e, cust(e), e.MakeSymbolic("product_id", concolic.Int(2)))
		}},
		{Name: "Ship", Run: func(e *concolic.Engine) error {
			return a.Ship(e, cust(e),
				e.MakeSymbolic("city", concolic.Str("nyc")),
				e.MakeSymbolic("phone", concolic.Str("555-0101")))
		}},
		{Name: "Payment", Run: func(e *concolic.Engine) error {
			return a.Payment(e, cust(e),
				e.MakeSymbolic("address", concolic.Str("1 Main St")),
				e.MakeSymbolic("phone", concolic.Str("555-0101")))
		}},
		{Name: "Checkout", Run: func(e *concolic.Engine) error {
			return a.Checkout(e, cust(e))
		}},
	}
}

// Expectations is the Broadleaf portion of Table II.
func Expectations() []appkit.Expectation {
	return []appkit.Expectation{
		{ID: "d1", Apps: "Broadleaf", APIs: "Register — Register", Desc: "Create a new user", Fix: "f1: Use correct ORM operation", Table: "Customer"},
		{ID: "d2", Apps: "Broadleaf", APIs: "Add2 — Add2", Desc: "App-level locks protecting cart", Fix: "f2: Use MySQL UPSERT mechanism", Table: "CartLock"},
		{ID: "d3", Apps: "Broadleaf", APIs: "Add2,Add3 — Add2,Add3", Desc: "Create a new order item", Fix: "f3: Separate SELECT from original transaction", Table: "OrderItem"},
		{ID: "d4", Apps: "Broadleaf", APIs: "Add2,Add3 — Add2,Add3", Desc: "Create a new order item", Fix: "f3: Separate SELECT from original transaction", Table: "OrderItemPriceDetail"},
		{ID: "d5", Apps: "Broadleaf", APIs: "Add2,Add3 — Add2,Add3", Desc: "Create order and fulfillment items", Fix: "f4: Move forward ORM flush", Table: "Offer/OfferStat"},
		{ID: "d6", Apps: "Broadleaf", APIs: "Add2,Add3 — Add2,Add3", Desc: "Create order and fulfillment items", Fix: "f4: Move forward ORM flush", Table: "FulfillmentOption/FulfillmentStat"},
		{ID: "d7", Apps: "Broadleaf", APIs: "Add2,Add3 — Add2,Add3", Desc: "Calculate shopping cart's price", Fix: "f5: Separate SELECT from original transaction", Table: "PriceAdjustment"},
		{ID: "d8", Apps: "Broadleaf", APIs: "Add2,Add3 — Add2,Add3", Desc: "Calculate shopping cart's price", Fix: "f5: Separate SELECT from original transaction", Table: "PriceDetail"},
		{ID: "d9", Apps: "Broadleaf", APIs: "Add2,Add3 — Ship", Desc: "Calculate shopping cart's price", Fix: "f5: Separate SELECT from original transaction", Table: "PriceAdjustment/PriceDetail"},
		{ID: "d10", Apps: "Broadleaf", APIs: "Ship — Ship", Desc: "Create address information", Fix: "f6: Reorder SQL statements", Table: "Address"},
		{ID: "d11", Apps: "Broadleaf", APIs: "Ship — Ship", Desc: "Calculate shopping cart's price", Fix: "f7: Separate SELECT from original transaction", Table: "ShippingAdjustment"},
		{ID: "d12", Apps: "Broadleaf", APIs: "Ship — Ship", Desc: "Calculate shopping cart's price", Fix: "f8: Separate SELECT from original transaction", Table: "TaxDetail"},
		{ID: "d13", Apps: "Broadleaf", APIs: "Ship — Ship", Desc: "Calculate shopping cart's price", Fix: "f8: Separate SELECT from original transaction", Table: "FeeDetail"},
	}
}

// Classify maps one analyzer-reported deadlock onto the Table II catalog
// entry it manifests (the paper's authors performed this confirmation
// step manually). It returns "" for cycles that do not correspond to a
// cataloged deadlock, and "fp-checkout-applock" for the checkout
// inventory cycle that Broadleaf's own application-level lock prevents at
// runtime (the Sec. V-D false-positive class).
func Classify(d *core.Deadlock) string {
	has := func(tab string) bool {
		return d.Cycle.Table1 == tab || d.Cycle.Table2 == tab
	}
	shipInvolved := strings.HasPrefix(d.APIs[0], "Ship") || strings.HasPrefix(d.APIs[1], "Ship")
	addInvolved := strings.HasPrefix(d.APIs[0], "Add") || strings.HasPrefix(d.APIs[1], "Add")
	switch {
	case has("Customer"):
		return "d1"
	case has("CartLock"):
		return "d2"
	case has("Offer") || has("OfferStat"):
		return "d5"
	case has("FulfillmentOption") || has("FulfillmentStat"):
		return "d6"
	case has("OrderItemPriceDetail"):
		return "d4"
	case has("ShippingAdjustment"):
		return "d11"
	case has("TaxDetail"):
		return "d12"
	case has("FeeDetail"):
		return "d13"
	case has("Address"):
		return "d10"
	case has("PriceAdjustment") || has("PriceDetail"):
		if shipInvolved && addInvolved {
			return "d9"
		}
		if has("PriceAdjustment") {
			return "d7"
		}
		return "d8"
	case has("OrderItem") || has("FulfillmentItem") || has("FulfillmentGroup"):
		return "d3"
	case has("Product"):
		return "fp-checkout-applock"
	case has("Orders") && strings.HasPrefix(d.APIs[0], "Checkout") && strings.HasPrefix(d.APIs[1], "Checkout"):
		// Checkout's order-status read-modify-write: protected at runtime
		// by the same application-level inventory lock.
		return "fp-checkout-applock"
	default:
		return ""
	}
}
