// Package broadleaf is a model of the Broadleaf Commerce application's
// transactional core: the five Table I APIs (Register, Add, Ship,
// Payment, Checkout) with the ORM usage patterns behind the thirteen
// Broadleaf deadlocks of Table II (d1–d13) and the application-side fixes
// f1–f8 as toggles. The real application is 190K LoC of Java; this model
// preserves the statement shapes, ORM behaviors (merge vs persist, read
// caching, write-behind reordering, lazy loading), and locking patterns
// that the paper's evaluation exercises.
package broadleaf

import (
	"weseer/internal/orm"
	"weseer/internal/schema"
)

// Schema returns the model's relational schema.
func Schema() *schema.Schema {
	s := schema.New()
	s.AddTable("Customer").
		Col("ID", schema.Int).
		Col("USERNAME", schema.Varchar).
		Col("EMAIL", schema.Varchar).
		Col("PASSWORD", schema.Varchar).
		PrimaryKey("ID").
		UniqueIndex("uniq_customer_username", "USERNAME")
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		Col("PRICE", schema.Decimal).
		PrimaryKey("ID")
	s.AddTable("Cart").
		Col("ID", schema.Int).
		Col("CUSTOMER_ID", schema.Int).
		Col("STATUS", schema.Varchar).
		PrimaryKey("ID").
		Index("idx_cart_customer", "CUSTOMER_ID").
		ForeignKey([]string{"CUSTOMER_ID"}, "Customer", []string{"ID"})
	// CartLock backs Broadleaf's application-level cart locking rows
	// (deadlock d2): one row per cart, created on first contended use.
	s.AddTable("CartLock").
		Col("ID", schema.Int). // cart id
		Col("LOCKED", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Orders").
		Col("ID", schema.Int).
		Col("CUSTOMER_ID", schema.Int).
		Col("STATUS", schema.Varchar).
		Col("TOTAL", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_orders_customer", "CUSTOMER_ID").
		ForeignKey([]string{"CUSTOMER_ID"}, "Customer", []string{"ID"})
	s.AddTable("OrderItem").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("PRODUCT_ID", schema.Int).
		Col("QTY", schema.Int).
		Col("PRICE", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_oi_order", "ORDER_ID").
		ForeignKey([]string{"ORDER_ID"}, "Orders", []string{"ID"}).
		ForeignKey([]string{"PRODUCT_ID"}, "Product", []string{"ID"})
	s.AddTable("OrderItemPriceDetail").
		Col("ID", schema.Int).
		Col("ORDER_ITEM_ID", schema.Int).
		Col("AMOUNT", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_oipd_item", "ORDER_ITEM_ID")
	s.AddTable("FulfillmentGroup").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("TOTAL", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_fg_order", "ORDER_ID")
	s.AddTable("FulfillmentItem").
		Col("ID", schema.Int).
		Col("FG_ID", schema.Int).
		Col("ORDER_ITEM_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_fi_group", "FG_ID")
	// Offer/OfferStat and FulfillmentOption/FulfillmentStat are shared
	// per-product row pairs. The Add2 path modifies the counter rows but
	// the write-behind cache defers those UPDATEs until commit — after
	// the stat-row reads — while the Add3 path updates both eagerly in
	// program order. The reordering produces deadlocks d5/d6, which fix
	// f4's early flush removes by restoring program order.
	s.AddTable("Offer").
		Col("ID", schema.Int). // product id
		Col("USES", schema.Int).
		PrimaryKey("ID")
	s.AddTable("FulfillmentOption").
		Col("ID", schema.Int). // product id
		Col("USES", schema.Int).
		PrimaryKey("ID")
	s.AddTable("OfferStat").
		Col("ID", schema.Int). // product id
		Col("VIEWS", schema.Int).
		PrimaryKey("ID")
	s.AddTable("FulfillmentStat").
		Col("ID", schema.Int). // product id
		Col("VIEWS", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Address").
		Col("ID", schema.Int).
		Col("CUSTOMER_ID", schema.Int).
		Col("CITY", schema.Varchar).
		Col("PHONE", schema.Varchar).
		PrimaryKey("ID").
		Index("idx_addr_customer", "CUSTOMER_ID")
	s.AddTable("PaymentInfo").
		Col("ID", schema.Int).
		Col("CUSTOMER_ID", schema.Int).
		Col("ADDRESS", schema.Varchar).
		Col("PHONE", schema.Varchar).
		PrimaryKey("ID").
		Index("idx_pay_customer", "CUSTOMER_ID")
	s.AddTable("PriceAdjustment").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("AMOUNT", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_padj_order", "ORDER_ID")
	s.AddTable("PriceDetail").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("AMOUNT", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_pdet_order", "ORDER_ID")
	s.AddTable("ShippingAdjustment").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("AMOUNT", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_sadj_order", "ORDER_ID")
	s.AddTable("TaxDetail").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("AMOUNT", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_tax_order", "ORDER_ID")
	s.AddTable("FeeDetail").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("AMOUNT", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_fee_order", "ORDER_ID")
	return s
}

// NewMapping returns the ORM metadata, including the Q4-style lazy
// order-items collection of Fig. 1 (OrderItem ⋈ Orders ⋈ Product).
func NewMapping() *orm.Mapping {
	m := orm.NewMapping(Schema())
	m.AddCollection("Orders", orm.Collection{
		Name:        "OrdItems",
		SQL:         `SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.ORDER_ID JOIN Product p ON p.ID = oi.PRODUCT_ID WHERE oi.ORDER_ID = ?`,
		OwnerParams: []string{"ID"},
		Target:      "oi",
	})
	return m
}
