package broadleaf

import (
	"fmt"
	"math/rand"

	"weseer/internal/concolic"
	"weseer/internal/workload"
)

// Flow returns the Fig. 10 client behavior: each client simulates one
// customer at a time, sequentially issuing the Table I API sequence —
// Register, Add ×3 (the second product twice, exercising Add1/Add2/Add3),
// Ship, Payment, Checkout — then starts over as a fresh customer.
// Products are drawn from the shared catalog, so clients contend on the
// shared rows and index gaps behind d1–d13.
func (a *App) Flow() workload.Flow {
	return func(clientID int64, rng *rand.Rand) func() workload.Step {
		var cust concolic.Value
		var registered bool
		var p1, p2 int64
		seq := 0
		return func() workload.Step {
			phase := seq % 7
			seq++
			if phase != 0 && !registered {
				// Registration never succeeded this cycle; restart with a
				// fresh customer.
				seq = 0
				return func(e *concolic.Engine) (string, error) {
					return "Skip", errNotRegistered
				}
			}
			switch phase {
			case 0:
				return func(e *concolic.Engine) (string, error) {
					name := fmt.Sprintf("c%d-%d", clientID, seq)
					id, err := a.Register(e,
						concolic.Str(name), concolic.Str(name+"@x"),
						concolic.Str("pw"), concolic.Str("pw"))
					registered = err == nil
					if err == nil {
						cust = concolic.Int(id)
						p1 = 1 + rng.Int63n(int64(a.NumProducts))
						p2 = 1 + rng.Int63n(int64(a.NumProducts))
					}
					return "Register", err
				}
			case 1:
				return func(e *concolic.Engine) (string, error) {
					return "Add", a.Add(e, cust, concolic.Int(p1))
				}
			case 2:
				return func(e *concolic.Engine) (string, error) {
					return "Add", a.Add(e, cust, concolic.Int(p2))
				}
			case 3:
				return func(e *concolic.Engine) (string, error) {
					return "Add", a.Add(e, cust, concolic.Int(p2))
				}
			case 4:
				return func(e *concolic.Engine) (string, error) {
					return "Ship", a.Ship(e, cust, concolic.Str("nyc"), concolic.Str("555"))
				}
			case 5:
				return func(e *concolic.Engine) (string, error) {
					return "Payment", a.Payment(e, cust, concolic.Str("1 Main St"), concolic.Str("555"))
				}
			default:
				return func(e *concolic.Engine) (string, error) {
					return "Checkout", a.Checkout(e, cust)
				}
			}
		}
	}
}

var errNotRegistered = fmt.Errorf("broadleaf: client has no registered customer")
