package broadleaf

import (
	"fmt"
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

func collect(t *testing.T, fixes Fixes) (*App, []*trace.Trace) {
	t.Helper()
	app := New(fixes, minidb.Config{})
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	return app, traces
}

// TestTableIInvocations checks the Table I unit-test inventory: seven
// traces, one per API invocation, with the Add paths diverging.
func TestTableIInvocations(t *testing.T) {
	_, traces := collect(t, Fixes{})
	want := []string{"Register", "Add1", "Add2", "Add3", "Ship", "Payment", "Checkout"}
	if len(traces) != len(want) {
		t.Fatalf("traces = %d, want %d", len(traces), len(want))
	}
	for i, w := range want {
		if traces[i].API != w {
			t.Errorf("trace %d = %s, want %s", i, traces[i].API, w)
		}
	}
	// The three Add invocations take different code paths, so their
	// statement mixes differ.
	if traces[1].Stats.Statements == traces[2].Stats.Statements &&
		traces[2].Stats.Statements == traces[3].Stats.Statements {
		t.Errorf("Add1/Add2/Add3 statement counts identical (%d): paths did not diverge",
			traces[1].Stats.Statements)
	}
	for _, tr := range traces {
		if len(tr.Inputs) == 0 {
			t.Errorf("trace %s has no symbolic inputs", tr.API)
		}
		if tr.Stats.PathConds == 0 {
			t.Errorf("trace %s recorded no path conditions", tr.API)
		}
	}
}

// TestDiagnosisFindsTableII runs the full WeSEER pipeline on the unfixed
// application and checks that every Broadleaf deadlock of Table II
// (d1–d13) is reported.
func TestDiagnosisFindsTableII(t *testing.T) {
	_, traces := collect(t, Fixes{})
	res := core.New(Schema(), core.Options{}).Analyze(traces)
	found := map[string]int{}
	for _, d := range res.Deadlocks {
		found[Classify(d)]++
	}
	for _, exp := range Expectations() {
		if found[exp.ID] == 0 {
			t.Errorf("%s (%s; fix %s) not reported", exp.ID, exp.Desc, exp.Fix)
		}
	}
	if found[""] > 0 {
		t.Errorf("%d reports did not classify", found[""])
	}
	// Every confirmed deadlock carries a reproducing model.
	for _, d := range res.Deadlocks {
		if d.Model == nil {
			t.Errorf("deadlock %s—%s has no model", d.APIs[0], d.APIs[1])
		}
	}
}

// TestCoarseBaselineExplodes compares the STEPDAD/REDACT-style coarse
// baseline against the catalog size: it must report far more cycles than
// the 13 confirmed deadlocks (the paper's 18,384-vs-18 observation).
func TestCoarseBaselineExplodes(t *testing.T) {
	_, traces := collect(t, Fixes{})
	res := core.New(Schema(), core.Options{CoarseOnly: true}).Analyze(traces)
	if res.Stats.CoarseCycles < 10*len(Expectations()) {
		t.Errorf("coarse baseline found only %d cycles; expected an explosion vs %d cataloged",
			res.Stats.CoarseCycles, len(Expectations()))
	}
	if res.Stats.GroupsSolved != 0 {
		t.Error("baseline must not use the solver")
	}
}

// TestFixedAppShrinksReports re-runs diagnosis on the fully fixed
// application. The gap-lock mechanisms (empty SELECT + INSERT in one
// transaction) disappear from the traces, so the report count drops
// substantially; the paper validates fixes at runtime (Figs. 10/11)
// because statically, conflicts on application-generated keys remain
// conservatively reportable.
func TestFixedAppShrinksReports(t *testing.T) {
	_, unfixedTraces := collect(t, Fixes{})
	unfixed := core.New(Schema(), core.Options{}).Analyze(unfixedTraces)
	_, fixedTraces := collect(t, AllFixes())
	fixed := core.New(Schema(), core.Options{}).Analyze(fixedTraces)

	found := map[string]int{}
	for _, d := range fixed.Deadlocks {
		found[Classify(d)]++
	}
	// d1's merge SELECT is gone entirely: no Customer cycle can form.
	if found["d1"] != 0 {
		t.Errorf("d1 still reported (%d) after f1", found["d1"])
	}
	// d2's check-then-insert became one UPSERT: the CartLock range-lock
	// cycle is gone.
	if found["d2"] != 0 {
		t.Errorf("d2 still reported (%d) after f2", found["d2"])
	}
	if len(fixed.Deadlocks) >= len(unfixed.Deadlocks) {
		t.Errorf("fixes did not shrink reports: %d -> %d", len(unfixed.Deadlocks), len(fixed.Deadlocks))
	}
}

func stmtsOf(tr *trace.Trace) []*trace.Stmt { return tr.AllStmts() }

// TestF1PersistDropsMergeSelect: with f1 the Register transaction issues
// only the INSERT (no merge SELECT).
func TestF1PersistDropsMergeSelect(t *testing.T) {
	_, unfixed := collect(t, Fixes{})
	_, fixed := collect(t, AllFixes())
	countKind := func(tr *trace.Trace, k sqlast.StmtKind) int {
		n := 0
		for _, s := range stmtsOf(tr) {
			if s.Parsed.Kind() == k {
				n++
			}
		}
		return n
	}
	if got := countKind(unfixed[0], sqlast.KindSelect); got != 1 {
		t.Errorf("unfixed Register SELECTs = %d, want 1 (merge)", got)
	}
	if got := countKind(fixed[0], sqlast.KindSelect); got != 0 {
		t.Errorf("fixed Register SELECTs = %d, want 0 (persist)", got)
	}
}

// TestF2Upsert: with f2 the cart lock is one UPSERT statement.
func TestF2Upsert(t *testing.T) {
	_, fixed := collect(t, AllFixes())
	add2 := fixed[2]
	var sawUpsert bool
	for _, s := range stmtsOf(add2) {
		if s.Parsed.Kind() == sqlast.KindUpsert {
			sawUpsert = true
		}
	}
	if !sawUpsert {
		t.Error("fixed Add2 has no UPSERT statement")
	}
}

// TestF3MovesSelectToSeparateTxn: with f3 the order-item existence SELECT
// runs in a different transaction from the INSERT.
func TestF3MovesSelectToSeparateTxn(t *testing.T) {
	_, unfixed := collect(t, Fixes{})
	_, fixed := collect(t, AllFixes())
	locate := func(tr *trace.Trace) (selTxn, insTxn int) {
		selTxn, insTxn = -1, -1
		for _, s := range stmtsOf(tr) {
			if s.Parsed.Kind() == sqlast.KindSelect && len(s.Parsed.Tables()) == 1 && s.Parsed.Tables()[0] == "OrderItem" {
				selTxn = s.TxnID
			}
			if s.Parsed.Kind() == sqlast.KindInsert && s.Parsed.WriteTable() == "OrderItem" {
				insTxn = s.TxnID
			}
		}
		return
	}
	us, ui := locate(unfixed[2]) // Add2
	if us == -1 || ui == -1 || us != ui {
		t.Errorf("unfixed Add2: SELECT txn %d, INSERT txn %d — must share a transaction", us, ui)
	}
	fs, fi := locate(fixed[2])
	if fs == -1 || fi == -1 || fs == fi {
		t.Errorf("fixed Add2: SELECT txn %d, INSERT txn %d — must be separated", fs, fi)
	}
}

// TestF4FlushReordersUpdates: with f4 the offer-usage UPDATE precedes the
// audit SELECT in send order; without it, write-behind defers the UPDATE
// past commit.
func TestF4FlushReordersUpdates(t *testing.T) {
	_, unfixed := collect(t, Fixes{})
	_, fixed := collect(t, AllFixes())
	orderOf := func(tr *trace.Trace) (updSeq, selSeq int) {
		updSeq, selSeq = -1, -1
		for _, s := range stmtsOf(tr) {
			if s.Parsed.Kind() == sqlast.KindUpdate && s.Parsed.WriteTable() == "Offer" && updSeq == -1 {
				updSeq = s.Seq
			}
			if s.Parsed.Kind() == sqlast.KindSelect && s.Parsed.Tables()[0] == "OfferStat" && selSeq == -1 {
				selSeq = s.Seq
			}
		}
		return
	}
	uu, usel := orderOf(unfixed[2])
	if uu == -1 || usel == -1 || uu < usel {
		t.Errorf("unfixed Add2: UPDATE Offer at %d should be sent after stat SELECT at %d (write-behind)", uu, usel)
	}
	fu, fsel := orderOf(fixed[2])
	if fu == -1 || fsel == -1 || fu > fsel {
		t.Errorf("fixed Add2: UPDATE Offer at %d should precede stat SELECT at %d (early flush)", fu, fsel)
	}
}

// TestF6InsertBeforeScan: with f6 Ship's address INSERT precedes any
// Address SELECT; without it the range scan comes first.
func TestF6InsertBeforeScan(t *testing.T) {
	_, unfixed := collect(t, Fixes{})
	_, fixed := collect(t, AllFixes())
	orderOf := func(tr *trace.Trace) (selSeq, insSeq int) {
		selSeq, insSeq = -1, -1
		for _, s := range stmtsOf(tr) {
			if s.Parsed.Kind() == sqlast.KindSelect && s.Parsed.Tables()[0] == "Address" && selSeq == -1 {
				selSeq = s.Seq
			}
			if s.Parsed.Kind() == sqlast.KindInsert && s.Parsed.WriteTable() == "Address" && insSeq == -1 {
				insSeq = s.Seq
			}
		}
		return
	}
	us, ui := orderOf(unfixed[4]) // Ship
	if !(us != -1 && ui != -1 && us < ui) {
		t.Errorf("unfixed Ship: scan (%d) must precede insert (%d)", us, ui)
	}
	fs, fi := orderOf(fixed[4])
	if !(fs != -1 && fi != -1 && fi < fs) {
		t.Errorf("fixed Ship: insert (%d) must precede point select (%d)", fi, fs)
	}
}

// TestCheckoutMatchesFig1 verifies the Fig. 1 trace structure: the order
// read is cache-served (no SELECT on Orders inside the checkout txn), the
// item list loads via the three-way join, and the product update's
// parameters flow from the join's symbolic results.
func TestCheckoutMatchesFig1(t *testing.T) {
	_, traces := collect(t, Fixes{})
	ck := traces[6]
	mainTxn := ck.Txns[len(ck.Txns)-1]
	var joins, orderSelects, productUpdates int
	for _, s := range mainTxn.Stmts {
		switch {
		case s.Parsed.Kind() == sqlast.KindSelect && len(s.Parsed.Tables()) == 3:
			joins++
		case s.Parsed.Kind() == sqlast.KindSelect && s.Parsed.Tables()[0] == "Orders":
			orderSelects++
		case s.Parsed.Kind() == sqlast.KindUpdate && s.Parsed.WriteTable() == "Product":
			productUpdates++
			// Q6's parameters are symbolic expressions over Q4 results.
			if s.Params[0].Sym == nil {
				t.Error("product update parameter lost its symbolic value")
			}
		}
	}
	if joins != 1 {
		t.Errorf("checkout txn has %d 3-way joins, want 1 (Q4)", joins)
	}
	if orderSelects != 0 {
		t.Errorf("checkout txn SELECTs Orders %d times; the read cache should serve it", orderSelects)
	}
	if productUpdates == 0 {
		t.Error("no buffered product update (Q6) recorded")
	}
}

// TestRuntimeSmokeAllFixes drives the APIs natively (ModeOff) for several
// customers; everything must succeed with zero deadlocks.
func TestRuntimeSmokeAllFixes(t *testing.T) {
	app := New(AllFixes(), minidb.Config{})
	e := concolic.New(concolic.ModeOff)
	for c := 0; c < 5; c++ {
		if _, err := app.Register(e,
			concolic.Str(fmt.Sprintf("user%d", c)), concolic.Str("u@x"), concolic.Str("p"), concolic.Str("p")); err != nil {
			t.Fatalf("register %d: %v", c, err)
		}
		cust := concolic.Int(int64(c + 1))
		for _, pid := range []int64{1, 2, 2} {
			if err := app.Add(e, cust, concolic.Int(pid)); err != nil {
				t.Fatalf("add(%d,%d): %v", c, pid, err)
			}
		}
		if err := app.Ship(e, cust, concolic.Str("nyc"), concolic.Str("555")); err != nil {
			t.Fatalf("ship %d: %v", c, err)
		}
		if err := app.Payment(e, cust, concolic.Str("addr"), concolic.Str("555")); err != nil {
			t.Fatalf("payment %d: %v", c, err)
		}
		if err := app.Checkout(e, cust); err != nil {
			t.Fatalf("checkout %d: %v", c, err)
		}
	}
	if dl := app.DB.StatsSnapshot().Deadlocks; dl != 0 {
		t.Errorf("sequential run hit %d deadlocks", dl)
	}
}

// TestRegisterValidation exercises the error paths (their path conditions
// appear in traces as the branch negations).
func TestRegisterValidation(t *testing.T) {
	app := New(AllFixes(), minidb.Config{})
	e := concolic.New(concolic.ModeOff)
	if _, err := app.Register(e, concolic.Str("u"), concolic.Str("e"), concolic.Str("a"), concolic.Str("b")); err != ErrPasswordMismatch {
		t.Errorf("mismatch: %v", err)
	}
	if _, err := app.Register(e, concolic.Str(""), concolic.Str("e"), concolic.Str("p"), concolic.Str("p")); err != ErrBadUsername {
		t.Errorf("empty username: %v", err)
	}
}

// TestCheckoutOutOfStock: checkout fails when a product's stock is
// insufficient, and the transaction rolls back.
func TestCheckoutOutOfStock(t *testing.T) {
	app := New(AllFixes(), minidb.Config{})
	e := concolic.New(concolic.ModeOff)
	cust := concolic.Int(1)
	if err := app.Add(e, cust, concolic.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Drain the product's stock directly.
	s := app.session(e)
	if err := s.Transactional(func() error {
		p := s.Find("Product", concolic.Int(1))
		s.Set(p, "QTY", concolic.Int(0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := app.Checkout(e, cust); err != ErrOutOfStock {
		t.Errorf("checkout with empty stock: %v", err)
	}
}

// TestConcretePlansKeepCatalog runs the analyzer with the Sec. V-D
// future-work refinement (lock modeling restricted to recorded execution
// plans): every cataloged deadlock must survive, with no more reports
// than the conservative all-possible-indexes model.
func TestConcretePlansKeepCatalog(t *testing.T) {
	_, traces := collect(t, Fixes{})
	conservative := core.New(Schema(), core.Options{}).Analyze(traces)
	planned := core.New(Schema(), core.Options{UseConcretePlans: true}).Analyze(traces)
	found := map[string]int{}
	for _, d := range planned.Deadlocks {
		found[Classify(d)]++
	}
	for _, exp := range Expectations() {
		if found[exp.ID] == 0 {
			t.Errorf("%s lost under concrete-plan modeling", exp.ID)
		}
	}
	if len(planned.Deadlocks) > len(conservative.Deadlocks) {
		t.Errorf("concrete plans grew the report set: %d > %d",
			len(planned.Deadlocks), len(conservative.Deadlocks))
	}
}
