package broadleaf

import (
	"weseer/internal/concolic"
	"weseer/internal/orm"
)

// The five Table I APIs. Each opens a fresh persistence context (one
// session per request, as Spring-managed Hibernate does), warms the read
// cache outside the transaction where the real controllers do, and runs
// the business logic under @Transactional semantics.

// Register creates a customer account (Table I: username, email,
// password, password confirmation) and returns the new customer's id.
func (a *App) Register(e *concolic.Engine, username, email, password, confirm concolic.Value) (int64, error) {
	s := a.session(e)
	var id int64
	err := orm.Guard(func() error {
		if e.If(e.Ne(password, confirm)) {
			return ErrPasswordMismatch
		}
		if e.If(e.Eq(username, concolic.Str(""))) {
			return ErrBadUsername
		}
		return s.Transactional(func() error {
			id = a.DB.NextID("Customer")
			c := s.NewEntity("Customer")
			s.Set(c, "ID", concolic.Int(id))
			s.Set(c, "USERNAME", username)
			s.Set(c, "EMAIL", email)
			s.Set(c, "PASSWORD", password)
			if a.Fixes.F1 {
				// Fix f1: persist issues only the INSERT.
				s.Persist(c)
			} else {
				// Deadlock d1: merge issues a SELECT on the (absent) key —
				// acquiring a range lock — followed by the INSERT.
				s.Merge(c)
			}
			return nil
		})
	})
	return id, err
}

// Add puts one product into the customer's cart (Table I: userId,
// productId). Its three invocations take three paths: Add1 creates the
// cart, Add2 adds a new item, Add3 increments an existing item.
func (a *App) Add(e *concolic.Engine, customerID, productID concolic.Value) error {
	s := a.session(e)
	probe := a.probeSession(e)
	return orm.Guard(func() error {
		// Controller warm-up reads (outside the transaction: their rows
		// land in the session read cache, so in-transaction reads of them
		// send no SQL and take no locks — Sec. II-B).
		carts := s.Query(`SELECT * FROM Cart c WHERE c.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "c")
		if len(carts) == 0 {
			return a.addFirst(e, s, customerID, productID)
		}
		cart := carts[0]
		orders := s.Query(`SELECT * FROM Orders o WHERE o.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "o")
		if len(orders) == 0 {
			return ErrNoCart
		}
		order := orders[0]
		fgs := s.Query(`SELECT * FROM FulfillmentGroup fg WHERE fg.ORDER_ID = ?`, []concolic.Value{order.Get("ID")}, "fg")
		product := s.Find("Product", productID)
		offer := s.Find("Offer", productID)
		fopt := s.Find("FulfillmentOption", productID)
		if product == nil || offer == nil || fopt == nil {
			return ErrNoCart
		}

		return s.Transactional(func() error {
			a.cartLock(e, s, cart.Get("ID"))

			items := selectorFor(a.Fixes.F3, s, probe).Query(
				`SELECT * FROM OrderItem oi WHERE oi.ORDER_ID = ? AND oi.PRODUCT_ID = ?`,
				[]concolic.Value{order.Get("ID"), productID}, "oi")
			if len(items) == 0 {
				// Add2 path. The usage counters are modified first, but
				// the write-behind cache defers their UPDATEs to commit —
				// after the stat-row reads below. That reordering creates
				// deadlocks d5/d6 against Add3's eager program-order
				// updates; fix f4 flushes here, restoring program order.
				s.Set(offer, "USES", e.Add(offer.Get("USES"), concolic.Int(1)))
				s.Set(fopt, "USES", e.Add(fopt.Get("USES"), concolic.Int(1)))
				if a.Fixes.F4 {
					if err := s.Flush(); err != nil {
						return err
					}
				}
				if err := a.addNewItem(e, s, probe, order, fgs, product, productID); err != nil {
					return err
				}
				a.priceCart(e, s, probe, order)
				a.readOfferStats(e, s, productID)
				a.readFulfillmentStats(e, s, productID)
			} else {
				// Add3 path: counters and stats update eagerly, in program
				// order (offer first).
				if err := a.bumpCountersEager(e, s, offer, fopt, productID); err != nil {
					return err
				}
				a.bumpItem(e, s, probe, order, items[0], product)
				a.priceCart(e, s, probe, order)
			}
			return nil
		})
	})
}

// addFirst is the Add1 path: create the cart, order, and fulfillment
// group, then add the first item.
func (a *App) addFirst(e *concolic.Engine, s *orm.Session, customerID, productID concolic.Value) error {
	product := s.Find("Product", productID)
	if product == nil {
		return ErrNoCart
	}
	return s.Transactional(func() error {
		cart := s.NewEntity("Cart")
		s.Set(cart, "ID", concolic.Int(a.DB.NextID("Cart")))
		s.Set(cart, "CUSTOMER_ID", customerID)
		s.Set(cart, "STATUS", concolic.Str("ACTIVE"))
		s.Persist(cart)

		order := s.NewEntity("Orders")
		orderID := concolic.Int(a.DB.NextID("Orders"))
		s.Set(order, "ID", orderID)
		s.Set(order, "CUSTOMER_ID", customerID)
		s.Set(order, "STATUS", concolic.Str("IN_PROCESS"))
		s.Set(order, "TOTAL", concolic.Int(0))
		s.Persist(order)

		fg := s.NewEntity("FulfillmentGroup")
		s.Set(fg, "ID", concolic.Int(a.DB.NextID("FulfillmentGroup")))
		s.Set(fg, "ORDER_ID", orderID)
		s.Set(fg, "TOTAL", concolic.Int(0))
		s.Persist(fg)

		oi := s.NewEntity("OrderItem")
		s.Set(oi, "ID", concolic.Int(a.DB.NextID("OrderItem")))
		s.Set(oi, "ORDER_ID", orderID)
		s.Set(oi, "PRODUCT_ID", productID)
		s.Set(oi, "QTY", concolic.Int(1))
		s.Set(oi, "PRICE", product.Get("PRICE"))
		s.Persist(oi)
		return nil
	})
}

// cartLock takes Broadleaf's per-cart application lock row: deadlock d2's
// check-then-insert, or fix f2's single UPSERT.
func (a *App) cartLock(e *concolic.Engine, s *orm.Session, cartID concolic.Value) {
	if a.Fixes.F2 {
		one := concolic.Int(1)
		if _, err := s.Exec(
			`INSERT INTO CartLock (ID, LOCKED) VALUES (?, ?) ON DUPLICATE KEY UPDATE LOCKED = ?`,
			[]concolic.Value{cartID, one, one}); err != nil {
			panic(&orm.FlushError{Err: err})
		}
		return
	}
	// Deadlock d2: the existence SELECT takes a range lock when the row
	// is absent; the buffered INSERT then collides with the peer's range.
	locks := s.Query(`SELECT * FROM CartLock cl WHERE cl.ID = ?`, []concolic.Value{cartID}, "cl")
	if len(locks) == 0 {
		l := s.NewEntity("CartLock")
		s.Set(l, "ID", cartID)
		s.Set(l, "LOCKED", concolic.Int(1))
		s.Persist(l)
		return
	}
	s.Set(locks[0], "LOCKED", concolic.Int(1))
}

// addNewItem is the Add2 path: create the order item and its price
// detail (deadlocks d3/d4 — existence SELECTs over regions the commit
// then inserts into; fix f3 moves the SELECTs to a separate transaction).
func (a *App) addNewItem(e *concolic.Engine, s, probe *orm.Session, order *orm.Entity, fgs []*orm.Entity, product *orm.Entity, productID concolic.Value) error {
	oiID := concolic.Int(a.DB.NextID("OrderItem"))
	oi := s.NewEntity("OrderItem")
	s.Set(oi, "ID", oiID)
	s.Set(oi, "ORDER_ID", order.Get("ID"))
	s.Set(oi, "PRODUCT_ID", productID)
	s.Set(oi, "QTY", concolic.Int(1))
	s.Set(oi, "PRICE", product.Get("PRICE"))
	s.Persist(oi)

	// d4: price-detail existence check for the new item.
	sel := selectorFor(a.Fixes.F3, s, probe)
	details := sel.Query(`SELECT * FROM OrderItemPriceDetail pd WHERE pd.ORDER_ITEM_ID = ?`,
		[]concolic.Value{oiID}, "pd")
	if len(details) == 0 {
		pd := s.NewEntity("OrderItemPriceDetail")
		s.Set(pd, "ID", concolic.Int(a.DB.NextID("OrderItemPriceDetail")))
		s.Set(pd, "ORDER_ITEM_ID", oiID)
		s.Set(pd, "AMOUNT", product.Get("PRICE"))
		s.Persist(pd)
	}

	s.Set(order, "TOTAL", e.Add(order.Get("TOTAL"), product.Get("PRICE")))

	if len(fgs) > 0 {
		fi := s.NewEntity("FulfillmentItem")
		s.Set(fi, "ID", concolic.Int(a.DB.NextID("FulfillmentItem")))
		s.Set(fi, "FG_ID", fgs[0].Get("ID"))
		s.Set(fi, "ORDER_ITEM_ID", oiID)
		s.Set(fi, "QTY", concolic.Int(1))
		s.Persist(fi)
	}
	return nil
}

// bumpItem is the Add3 path: increment the existing item's quantity.
func (a *App) bumpItem(e *concolic.Engine, s, probe *orm.Session, order, found *orm.Entity, product *orm.Entity) {
	// With f3 the existence check ran on the probe session; re-attach the
	// item to the main session with a point SELECT (row lock, no range).
	oi := found
	if a.Fixes.F3 {
		oi = s.Find("OrderItem", found.Get("ID"))
		if oi == nil {
			return
		}
	}
	s.Set(oi, "QTY", e.Add(oi.Get("QTY"), concolic.Int(1)))
	s.Set(order, "TOTAL", e.Add(order.Get("TOTAL"), product.Get("PRICE")))

	// d4's sibling on the Add3 path: adjust the existing price detail.
	sel := selectorFor(a.Fixes.F3, s, probe)
	details := sel.Query(`SELECT * FROM OrderItemPriceDetail pd WHERE pd.ORDER_ITEM_ID = ?`,
		[]concolic.Value{oi.Get("ID")}, "pd")
	for _, d := range details {
		target := d
		if a.Fixes.F3 {
			target = s.Find("OrderItemPriceDetail", d.Get("ID"))
			if target == nil {
				continue
			}
		}
		s.Set(target, "AMOUNT", e.Add(target.Get("AMOUNT"), product.Get("PRICE")))
	}
}

// priceCart recomputes cart pricing: deadlocks d7 (PriceAdjustment) and
// d8 (PriceDetail); Ship's call makes the cross-API deadlock d9. Fix f5
// moves the SELECTs into a separate transaction.
func (a *App) priceCart(e *concolic.Engine, s, probe *orm.Session, order *orm.Entity) {
	sel := selectorFor(a.Fixes.F5, s, probe)
	orderID := order.Get("ID")

	adjs := sel.Query(`SELECT * FROM PriceAdjustment pa WHERE pa.ORDER_ID = ?`,
		[]concolic.Value{orderID}, "pa")
	amount := e.Mul(concolic.Int(-1), concolic.Int(int64(1+len(adjs))))
	pa := s.NewEntity("PriceAdjustment")
	s.Set(pa, "ID", concolic.Int(a.DB.NextID("PriceAdjustment")))
	s.Set(pa, "ORDER_ID", orderID)
	s.Set(pa, "AMOUNT", amount)
	s.Persist(pa)

	dets := sel.Query(`SELECT * FROM PriceDetail pd WHERE pd.ORDER_ID = ?`,
		[]concolic.Value{orderID}, "pd")
	pd := s.NewEntity("PriceDetail")
	s.Set(pd, "ID", concolic.Int(a.DB.NextID("PriceDetail")))
	s.Set(pd, "ORDER_ID", orderID)
	s.Set(pd, "AMOUNT", concolic.Int(int64(len(dets))))
	s.Persist(pd)
}

// readOfferStats is deadlock d5's read side: Add2 reads the shared
// per-product stat row while its offer-counter UPDATE is still buffered.
// Paired with Add3's eager counter-then-stat updates, the reordered
// UPDATE closes a hold-and-wait cycle; fix f4's early flush restores
// program order (offer row first in every path).
func (a *App) readOfferStats(e *concolic.Engine, s *orm.Session, productID concolic.Value) {
	s.Query(`SELECT * FROM OfferStat st WHERE st.ID = ?`, []concolic.Value{productID}, "st")
}

// readFulfillmentStats is d6: the same pattern over fulfillment stats.
func (a *App) readFulfillmentStats(e *concolic.Engine, s *orm.Session, productID concolic.Value) {
	s.Query(`SELECT * FROM FulfillmentStat st WHERE st.ID = ?`, []concolic.Value{productID}, "st")
}

// bumpCountersEager is Add3's bookkeeping: the counter and stat rows
// update eagerly via direct statements, in program order — offer first.
func (a *App) bumpCountersEager(e *concolic.Engine, s *orm.Session, offer, fopt *orm.Entity, productID concolic.Value) error {
	one := concolic.Int(1)
	if _, err := s.Exec(`UPDATE Offer SET USES = ? WHERE ID = ?`,
		[]concolic.Value{e.Add(offer.Get("USES"), one), productID}); err != nil {
		return err
	}
	if _, err := s.Exec(`UPDATE OfferStat SET VIEWS = ? WHERE ID = ?`,
		[]concolic.Value{e.Add(offer.Get("USES"), one), productID}); err != nil {
		return err
	}
	if _, err := s.Exec(`UPDATE FulfillmentOption SET USES = ? WHERE ID = ?`,
		[]concolic.Value{e.Add(fopt.Get("USES"), one), productID}); err != nil {
		return err
	}
	_, err := s.Exec(`UPDATE FulfillmentStat SET VIEWS = ? WHERE ID = ?`,
		[]concolic.Value{e.Add(fopt.Get("USES"), one), productID})
	return err
}

// Ship edits the customer's shipment information (Table I: userId,
// address, phone). Deadlocks d10 (address scan-then-insert, fix f6), d11
// (shipping adjustment, f7), d12/d13 (tax and fee details, f8), and d9
// (cart pricing shared with Add, f5).
func (a *App) Ship(e *concolic.Engine, customerID, city, phone concolic.Value) error {
	s := a.session(e)
	probe := a.probeSession(e)
	return orm.Guard(func() error {
		if e.If(e.Eq(phone, concolic.Str(""))) {
			return ErrBadUsername
		}
		orders := s.Query(`SELECT * FROM Orders o WHERE o.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "o")
		if len(orders) == 0 {
			return ErrNoCart
		}
		order := orders[0]

		return s.Transactional(func() error {
			if a.Fixes.F6 {
				// Fix f6: insert first, then read the row back with a
				// point query — no range scan, no gap locks.
				addrID := concolic.Int(a.DB.NextID("Address"))
				addr := s.NewEntity("Address")
				s.Set(addr, "ID", addrID)
				s.Set(addr, "CUSTOMER_ID", customerID)
				s.Set(addr, "CITY", city)
				s.Set(addr, "PHONE", phone)
				s.Persist(addr)
				if err := s.Flush(); err != nil {
					return err
				}
				s.Query(`SELECT * FROM Address ad WHERE ad.ID = ?`, []concolic.Value{addrID}, "ad")
			} else {
				// Deadlock d10: scan the customer's addresses (range
				// locks) and then insert a new one into the same region.
				s.Query(`SELECT * FROM Address ad WHERE ad.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "ad")
				addr := s.NewEntity("Address")
				s.Set(addr, "ID", concolic.Int(a.DB.NextID("Address")))
				s.Set(addr, "CUSTOMER_ID", customerID)
				s.Set(addr, "CITY", city)
				s.Set(addr, "PHONE", phone)
				s.Persist(addr)
			}

			s.Set(order, "STATUS", concolic.Str("SHIPPING"))

			// d11: shipping adjustment (fix f7).
			orderID := order.Get("ID")
			selF7 := selectorFor(a.Fixes.F7, s, probe)
			sadj := selF7.Query(`SELECT * FROM ShippingAdjustment sa WHERE sa.ORDER_ID = ?`,
				[]concolic.Value{orderID}, "sa")
			rec := s.NewEntity("ShippingAdjustment")
			s.Set(rec, "ID", concolic.Int(a.DB.NextID("ShippingAdjustment")))
			s.Set(rec, "ORDER_ID", orderID)
			s.Set(rec, "AMOUNT", concolic.Int(int64(len(sadj))))
			s.Persist(rec)

			// d12/d13: tax and fee details (fix f8).
			selF8 := selectorFor(a.Fixes.F8, s, probe)
			taxes := selF8.Query(`SELECT * FROM TaxDetail td WHERE td.ORDER_ID = ?`,
				[]concolic.Value{orderID}, "td")
			tax := s.NewEntity("TaxDetail")
			s.Set(tax, "ID", concolic.Int(a.DB.NextID("TaxDetail")))
			s.Set(tax, "ORDER_ID", orderID)
			s.Set(tax, "AMOUNT", concolic.Int(int64(len(taxes))))
			s.Persist(tax)

			fees := selF8.Query(`SELECT * FROM FeeDetail fd WHERE fd.ORDER_ID = ?`,
				[]concolic.Value{orderID}, "fd")
			fee := s.NewEntity("FeeDetail")
			s.Set(fee, "ID", concolic.Int(a.DB.NextID("FeeDetail")))
			s.Set(fee, "ORDER_ID", orderID)
			s.Set(fee, "AMOUNT", concolic.Int(int64(len(fees))))
			s.Persist(fee)

			// d9: Ship reprices the cart through the same routine as Add.
			a.priceCart(e, s, probe, order)
			return nil
		})
	})
}

// Payment edits the customer's payment information (Table I). It has no
// known deadlocks: a pure persist.
func (a *App) Payment(e *concolic.Engine, customerID, address, phone concolic.Value) error {
	s := a.session(e)
	return orm.Guard(func() error {
		if e.If(e.Eq(address, concolic.Str(""))) {
			return ErrBadUsername
		}
		return s.Transactional(func() error {
			p := s.NewEntity("PaymentInfo")
			s.Set(p, "ID", concolic.Int(a.DB.NextID("PaymentInfo")))
			s.Set(p, "CUSTOMER_ID", customerID)
			s.Set(p, "ADDRESS", address)
			s.Set(p, "PHONE", phone)
			s.Persist(p)
			return nil
		})
	})
}

// Checkout submits the order — the paper's Fig. 1 finishOrder: the order
// comes from the read cache (no SQL), the item list loads lazily (Q4's
// three-way join), and each product's quantity update is buffered until
// commit (Q6). Broadleaf's own application-level inventory lock protects
// the read-modify-write — ad-hoc synchronization WeSEER cannot see, so
// the analyzer reports this site as a potential deadlock (a documented
// false-positive source, Sec. V-D).
func (a *App) Checkout(e *concolic.Engine, customerID concolic.Value) error {
	s := a.session(e)
	return orm.Guard(func() error {
		if e.If(e.Eq(customerID, concolic.Int(-1))) {
			return nil
		}
		orders := s.Query(`SELECT * FROM Orders o WHERE o.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "o")
		if len(orders) == 0 {
			return ErrNoCart
		}
		orderID := orders[0].Get("ID")

		a.inventoryMu.Lock()
		defer a.inventoryMu.Unlock()
		return s.Transactional(func() error {
			// Read from the cache populated before the transaction: no
			// statement is sent (Fig. 1, line 5).
			o := s.Find("Orders", orderID)
			// Lazy loading triggers Q4 here (Fig. 1, line 7).
			for _, oi := range s.Lazy(o, "OrdItems").Items() {
				if err := a.updateQuantity(e, s, oi); err != nil {
					return err
				}
			}
			s.Set(o, "STATUS", concolic.Str("SUBMITTED"))
			return nil
		})
	})
}

// updateQuantity is Fig. 1's updateQuantity: check and decrease the
// product's remaining stock. The product is already in the read cache
// (fetched by Q4), so no statement is sent here; the setQty is Q6's
// triggering code.
func (a *App) updateQuantity(e *concolic.Engine, s *orm.Session, oi *orm.Entity) error {
	p := s.Find("Product", oi.Get("PRODUCT_ID"))
	if p == nil {
		return ErrNoCart
	}
	pQty, oiQty := p.Get("QTY"), oi.Get("QTY")
	if e.If(e.Lt(pQty, oiQty)) {
		return ErrOutOfStock
	}
	s.Set(p, "QTY", e.Sub(pQty, oiQty)) // triggers Q6 at flush
	return nil
}
