package shopizer

import (
	"fmt"
	"math/rand"

	"weseer/internal/concolic"
	"weseer/internal/workload"
)

// Flow returns the Fig. 11 client behavior: Register, Add ×3 (higher-id
// product first so the cart's natural order is descending), Ship,
// Checkout, then a fresh customer. Clients contend on the shared Product
// rows behind d14–d18.
func (a *App) Flow() workload.Flow {
	return func(clientID int64, rng *rand.Rand) func() workload.Step {
		var cust concolic.Value
		var registered bool
		var p1, p2 int64
		seq := 0
		return func() workload.Step {
			phase := seq % 6
			seq++
			if phase != 0 && !registered {
				// Registration never succeeded this cycle; restart with a
				// fresh customer.
				seq = 0
				return func(e *concolic.Engine) (string, error) {
					return "Skip", errNotRegistered
				}
			}
			switch phase {
			case 0:
				return func(e *concolic.Engine) (string, error) {
					name := fmt.Sprintf("s%d-%d", clientID, seq)
					id, err := a.Register(e, concolic.Str(name), concolic.Str(name+"@x"))
					registered = err == nil
					if err == nil {
						cust = concolic.Int(id)
						p1 = 1 + rng.Int63n(int64(a.NumProducts))
						p2 = 1 + rng.Int63n(int64(a.NumProducts))
						if p1 > p2 {
							p1, p2 = p2, p1
						}
					}
					return "Register", err
				}
			case 1:
				return func(e *concolic.Engine) (string, error) {
					return "Add", a.Add(e, cust, concolic.Int(p2))
				}
			case 2:
				return func(e *concolic.Engine) (string, error) {
					return "Add", a.Add(e, cust, concolic.Int(p1))
				}
			case 3:
				return func(e *concolic.Engine) (string, error) {
					return "Add", a.Add(e, cust, concolic.Int(p1))
				}
			case 4:
				return func(e *concolic.Engine) (string, error) {
					return "Ship", a.Ship(e, cust, concolic.Str("sfo"))
				}
			default:
				return func(e *concolic.Engine) (string, error) {
					return "Checkout", a.Checkout(e, cust)
				}
			}
		}
	}
}

var errNotRegistered = fmt.Errorf("shopizer: client has no registered customer")
