// Package shopizer is a model of the Shopizer e-commerce application's
// transactional core: the Table I APIs (Register, Add ×3, Ship, Checkout
// — Shopizer has no Payment API) with the product-row access patterns
// behind the five Shopizer deadlocks of Table II (d14–d18) and the
// application-side fixes f9–f11 as toggles. Every Shopizer deadlock is
// caused by accesses to the Product table, as the paper reports.
package shopizer

import (
	"weseer/internal/orm"
	"weseer/internal/schema"
)

// Schema returns the model's relational schema.
func Schema() *schema.Schema {
	s := schema.New()
	s.AddTable("Customer").
		Col("ID", schema.Int).
		Col("USERNAME", schema.Varchar).
		Col("EMAIL", schema.Varchar).
		PrimaryKey("ID")
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		Col("PRICE", schema.Decimal).
		Col("SOLD", schema.Int).
		Col("POPULARITY", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Cart").
		Col("ID", schema.Int).
		Col("CUSTOMER_ID", schema.Int).
		PrimaryKey("ID").
		Index("idx_cart_customer", "CUSTOMER_ID")
	s.AddTable("CartItem").
		Col("ID", schema.Int).
		Col("CART_ID", schema.Int).
		Col("PRODUCT_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_ci_cart", "CART_ID").
		ForeignKey([]string{"CART_ID"}, "Cart", []string{"ID"}).
		ForeignKey([]string{"PRODUCT_ID"}, "Product", []string{"ID"})
	s.AddTable("Orders").
		Col("ID", schema.Int).
		Col("CUSTOMER_ID", schema.Int).
		Col("STATUS", schema.Varchar).
		Col("TOTAL", schema.Decimal).
		PrimaryKey("ID").
		Index("idx_orders_customer", "CUSTOMER_ID")
	s.AddTable("OrderProduct").
		Col("ID", schema.Int).
		Col("ORDER_ID", schema.Int).
		Col("PRODUCT_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_op_order", "ORDER_ID")
	return s
}

// NewMapping returns the ORM metadata: the cart's lazy item collection.
func NewMapping() *orm.Mapping {
	m := orm.NewMapping(Schema())
	m.AddCollection("Cart", orm.Collection{
		Name:        "Items",
		SQL:         `SELECT * FROM CartItem ci JOIN Product p ON p.ID = ci.PRODUCT_ID WHERE ci.CART_ID = ?`,
		OwnerParams: []string{"ID"},
		Target:      "ci",
	})
	return m
}
