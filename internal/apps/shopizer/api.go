package shopizer

import (
	"weseer/internal/concolic"
	"weseer/internal/orm"
)

// Register creates a customer account and returns the new customer's id.
func (a *App) Register(e *concolic.Engine, username, email concolic.Value) (int64, error) {
	s := a.session(e)
	var id int64
	err := orm.Guard(func() error {
		if e.If(e.Eq(username, concolic.Str(""))) {
			return ErrBadUsername
		}
		return s.Transactional(func() error {
			id = a.DB.NextID("Customer")
			c := s.NewEntity("Customer")
			s.Set(c, "ID", concolic.Int(id))
			s.Set(c, "USERNAME", username)
			s.Set(c, "EMAIL", email)
			s.Persist(c)
			return nil
		})
	})
	return id, err
}

// Add puts a product into the customer's cart. The product row is read
// before the transaction (cached), so the in-transaction bookkeeping is a
// direct UPDATE of the shared sold-counter — one of the accesses the
// checkout commit phase can collide with in d17.
func (a *App) Add(e *concolic.Engine, customerID, productID concolic.Value) error {
	s := a.session(e)
	return orm.Guard(func() error {
		product := s.Find("Product", productID)
		if product == nil {
			return ErrUnknownInput
		}
		// Controller-level reads, outside the transaction (the cart and
		// existing-item lookups auto-commit, releasing their locks).
		carts := s.Query(`SELECT * FROM Cart c WHERE c.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "c")
		var items []*orm.Entity
		if len(carts) > 0 {
			items = s.Query(`SELECT * FROM CartItem ci WHERE ci.CART_ID = ? AND ci.PRODUCT_ID = ?`,
				[]concolic.Value{carts[0].Get("ID"), productID}, "ci")
		}

		return s.Transactional(func() error {
			var cart *orm.Entity
			if len(carts) == 0 {
				// Add1 path: first add creates the cart.
				cart = s.NewEntity("Cart")
				s.Set(cart, "ID", concolic.Int(a.DB.NextID("Cart")))
				s.Set(cart, "CUSTOMER_ID", customerID)
				s.Persist(cart)
			} else {
				cart = carts[0]
			}
			if len(items) == 0 {
				// Add1/Add2 path: new cart item.
				it := s.NewEntity("CartItem")
				s.Set(it, "ID", concolic.Int(a.DB.NextID("CartItem")))
				s.Set(it, "CART_ID", cart.Get("ID"))
				s.Set(it, "PRODUCT_ID", productID)
				s.Set(it, "QTY", concolic.Int(1))
				s.Persist(it)
			} else {
				// Add3 path: re-attach the item with a point SELECT and
				// bump its quantity.
				it := s.Find("CartItem", items[0].Get("ID"))
				if it == nil {
					return ErrUnknownInput
				}
				s.Set(it, "QTY", e.Add(it.Get("QTY"), concolic.Int(1)))
			}
			// Sold-counter bookkeeping: a direct single-row UPDATE (value
			// computed from the pre-transaction read).
			sold := e.Add(product.Get("SOLD"), concolic.Int(1))
			if _, err := s.Exec(`UPDATE Product SET SOLD = ? WHERE ID = ?`,
				[]concolic.Value{sold, productID}); err != nil {
				return err
			}
			return nil
		})
	})
}

// priceProducts is the d14/d15/d16 read-modify-write: for every cart
// product (ascending), read the row with a locking SELECT and buffer a
// popularity update. Two concurrent callers upgrade-deadlock on the
// shared rows unless fix f9 serializes them.
func (a *App) priceProducts(e *concolic.Engine, s *orm.Session, items []*orm.Entity) error {
	for _, pid := range cartProductIDs(items, true) {
		rows := s.Query(`SELECT * FROM Product p WHERE p.ID = ?`, []concolic.Value{concolic.Int(pid)}, "p")
		if len(rows) == 0 {
			continue
		}
		p := rows[0]
		s.Set(p, "POPULARITY", e.Add(p.Get("POPULARITY"), concolic.Int(1)))
	}
	return nil
}

// Ship edits shipment information and reprices the order's products.
func (a *App) Ship(e *concolic.Engine, customerID, city concolic.Value) error {
	s := a.session(e)
	return orm.Guard(func() error {
		if e.If(e.Eq(city, concolic.Str(""))) {
			return ErrBadUsername
		}
		carts := s.Query(`SELECT * FROM Cart c WHERE c.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "c")
		if len(carts) == 0 {
			return ErrNoCart
		}
		items := s.Query(`SELECT * FROM CartItem ci WHERE ci.CART_ID = ?`,
			[]concolic.Value{carts[0].Get("ID")}, "ci")
		if len(items) == 0 {
			return ErrEmptyCart
		}
		// Fix f9 serializes the pricing transaction per product (ordered
		// application-level locks held across the transaction).
		unlock := a.serializeProducts(cartProductIDs(items, true))
		defer unlock()
		return s.Transactional(func() error {
			return a.priceProducts(e, s, items)
		})
	})
}

// Checkout submits the order: it prices the cart's products (the d15
// partner), reads them back in Shopizer's natural most-recent-first
// order (d18 — fix f11 sorts ascending), and commits the quantity
// updates in the same descending order (d16/d17 — fix f10 sorts
// ascending).
func (a *App) Checkout(e *concolic.Engine, customerID concolic.Value) error {
	s := a.session(e)
	return orm.Guard(func() error {
		carts := s.Query(`SELECT * FROM Cart c WHERE c.CUSTOMER_ID = ?`, []concolic.Value{customerID}, "c")
		if len(carts) == 0 {
			return ErrNoCart
		}
		items := s.Query(`SELECT * FROM CartItem ci WHERE ci.CART_ID = ?`,
			[]concolic.Value{carts[0].Get("ID")}, "ci")
		if len(items) == 0 {
			return ErrEmptyCart
		}
		unlock := a.serializeProducts(cartProductIDs(items, true))
		defer unlock()
		return s.Transactional(func() error {
			if err := a.priceProducts(e, s, items); err != nil {
				return err
			}
			// Commit phase (b): read the cart's products back.
			read := a.readCartProducts(e, s, items)
			// Commit phase (a): decrement stock per product.
			if err := a.commitProducts(e, s, items, read); err != nil {
				return err
			}
			order := s.NewEntity("Orders")
			orderID := concolic.Int(a.DB.NextID("Orders"))
			s.Set(order, "ID", orderID)
			s.Set(order, "CUSTOMER_ID", customerID)
			s.Set(order, "STATUS", concolic.Str("SUBMITTED"))
			s.Set(order, "TOTAL", concolic.Int(0))
			s.Persist(order)
			for _, it := range items {
				op := s.NewEntity("OrderProduct")
				s.Set(op, "ID", concolic.Int(a.DB.NextID("OrderProduct")))
				s.Set(op, "ORDER_ID", orderID)
				s.Set(op, "PRODUCT_ID", it.Get("PRODUCT_ID"))
				s.Set(op, "QTY", it.Get("QTY"))
				s.Persist(op)
			}
			return nil
		})
	})
}

// readCartProducts is checkout's stock re-validation read (d18's "read
// the cart's products"): locking SELECTs over the shared product rows,
// most-recent-first unless fix f11 sorts them.
func (a *App) readCartProducts(e *concolic.Engine, s *orm.Session, items []*orm.Entity) map[int64]concolic.Value {
	out := map[int64]concolic.Value{}
	for _, pid := range cartProductIDs(items, a.Fixes.F11) {
		rows := s.Query(`SELECT * FROM Product p WHERE p.ID = ?`, []concolic.Value{concolic.Int(pid)}, "p")
		if len(rows) == 1 {
			out[pid] = rows[0].Get("QTY")
		}
	}
	return out
}

// commitProducts is checkout's stock decrement (d16/d17's "commit the
// order's products"): direct UPDATEs over the shared product rows,
// most-recent-first unless fix f10 sorts them.
func (a *App) commitProducts(e *concolic.Engine, s *orm.Session, items []*orm.Entity, read map[int64]concolic.Value) error {
	qtyOf := map[int64]concolic.Value{}
	for _, it := range items {
		pid := it.Get("PRODUCT_ID").C.I
		if prev, ok := qtyOf[pid]; ok {
			qtyOf[pid] = e.Add(prev, it.Get("QTY"))
		} else {
			qtyOf[pid] = it.Get("QTY")
		}
	}
	for _, pid := range cartProductIDs(items, a.Fixes.F10) {
		stock, ok := read[pid]
		if !ok {
			continue
		}
		need := qtyOf[pid]
		if e.If(e.Lt(stock, need)) {
			return ErrOutOfStock
		}
		if _, err := s.Exec(`UPDATE Product SET QTY = ? WHERE ID = ?`,
			[]concolic.Value{e.Sub(stock, need), concolic.Int(pid)}); err != nil {
			return err
		}
	}
	return nil
}
