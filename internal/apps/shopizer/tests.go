package shopizer

import (
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// UnitTests returns the Table I unit tests for Shopizer: Register, the
// three Add invocations, Ship, and Checkout (Shopizer has no Payment
// API). The second product is added before the first so the cart's
// natural most-recent-first iteration order differs from ascending id
// order — the inconsistency behind d17/d18.
func (a *App) UnitTests() []appkit.UnitTest {
	cust := func(e *concolic.Engine) concolic.Value {
		return e.MakeSymbolic("customer_id", concolic.Int(1))
	}
	return []appkit.UnitTest{
		{Name: "Register", Run: func(e *concolic.Engine) error {
			_, err := a.Register(e,
				e.MakeSymbolic("username", concolic.Str("bob")),
				e.MakeSymbolic("email", concolic.Str("bob@example.com")))
			return err
		}},
		{Name: "Add1", Run: func(e *concolic.Engine) error {
			return a.Add(e, cust(e), e.MakeSymbolic("product_id", concolic.Int(2)))
		}},
		{Name: "Add2", Run: func(e *concolic.Engine) error {
			return a.Add(e, cust(e), e.MakeSymbolic("product_id", concolic.Int(1)))
		}},
		{Name: "Add3", Run: func(e *concolic.Engine) error {
			return a.Add(e, cust(e), e.MakeSymbolic("product_id", concolic.Int(1)))
		}},
		{Name: "Ship", Run: func(e *concolic.Engine) error {
			return a.Ship(e, cust(e), e.MakeSymbolic("city", concolic.Str("sfo")))
		}},
		{Name: "Checkout", Run: func(e *concolic.Engine) error {
			return a.Checkout(e, cust(e))
		}},
	}
}

// Expectations is the Shopizer portion of Table II.
func Expectations() []appkit.Expectation {
	return []appkit.Expectation{
		{ID: "d14", Apps: "Shopizer", APIs: "Ship,Checkout — Ship,Checkout", Desc: "Price the order's products", Fix: "f9: Force serial execution with app-level locks", Table: "Product"},
		{ID: "d15", Apps: "Shopizer", APIs: "Ship,Checkout — Checkout", Desc: "Price/Commit the order's products", Fix: "f9: Force serial execution with app-level locks", Table: "Product"},
		{ID: "d16", Apps: "Shopizer", APIs: "Checkout — Checkout", Desc: "Commit the order's products", Fix: "f9: Force serial execution with app-level locks", Table: "Product"},
		{ID: "d17", Apps: "Shopizer", APIs: "Checkout — Add2,Add3,Ship,Checkout", Desc: "Commit/Price the order's products", Fix: "f10: Ensure the same locking order", Table: "Product"},
		{ID: "d18", Apps: "Shopizer", APIs: "Checkout — Add2,Add3,Ship,Checkout", Desc: "Commit/Read the cart's products", Fix: "f11: Ensure the same locking order", Table: "Product"},
	}
}

// stmtSite identifies which application routine triggered a statement.
type stmtSite uint8

const (
	siteOther stmtSite = iota
	sitePrice
	siteCommitRead
	siteCommitUpdate
	siteAddCounter
)

func siteOf(s *trace.Stmt) stmtSite {
	for _, f := range s.Trigger.Frames {
		switch {
		case strings.Contains(f.Func, "priceProducts"):
			return sitePrice
		case strings.Contains(f.Func, "readCartProducts"):
			return siteCommitRead
		case strings.Contains(f.Func, "commitProducts"):
			return siteCommitUpdate
		case strings.Contains(f.Func, ").Add"):
			return siteAddCounter
		}
	}
	return siteOther
}

// Classify maps one analyzer report to the Table II catalog. Every
// Shopizer deadlock is on the Product table; the distinguishing signal
// is which application routines the cycle's statements belong to.
// Reports on the cart's private tables return "extra" — statically
// possible cycles the paper's catalog does not include (per-customer
// rows make them unreachable under the evaluated workload).
func Classify(d *core.Deadlock) string {
	onProduct := d.Cycle.Table1 == "Product" || d.Cycle.Table2 == "Product"
	if !onProduct {
		return "extra"
	}
	var hasPrice, hasRead, hasCommit, hasAdd bool
	for _, s := range []*trace.Stmt{d.Cycle.S1a, d.Cycle.S1b, d.Cycle.S2a, d.Cycle.S2b} {
		switch siteOf(s) {
		case sitePrice:
			hasPrice = true
		case siteCommitRead:
			hasRead = true
		case siteCommitUpdate:
			hasCommit = true
		case siteAddCounter:
			hasAdd = true
		}
	}
	switch {
	case hasRead && hasCommit && !hasAdd && !hasPrice:
		// Both sides are inside checkout's commit phase: the commit
		// read-modify-write upgrade (d16).
		return "d16"
	case hasRead:
		return "d18"
	case hasCommit && hasAdd:
		return "d17"
	case hasCommit && hasPrice:
		// Price SELECT against commit UPDATE is d15; price UPDATE against
		// commit UPDATE is an ordering cycle (d17).
		if cycleHasPriceSelect(d) {
			return "d15"
		}
		return "d17"
	case hasCommit:
		return "d16"
	case hasPrice:
		return "d14"
	case hasAdd:
		return "d17"
	default:
		return "extra"
	}
}

func cycleHasPriceSelect(d *core.Deadlock) bool {
	for _, s := range []*trace.Stmt{d.Cycle.S1a, d.Cycle.S1b, d.Cycle.S2a, d.Cycle.S2b} {
		if siteOf(s) == sitePrice && s.Parsed.Kind() == sqlast.KindSelect {
			return true
		}
	}
	return false
}
