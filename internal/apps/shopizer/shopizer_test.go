package shopizer

import (
	"fmt"
	"sync"
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/trace"
)

func collect(t *testing.T, fixes Fixes) []*trace.Trace {
	t.Helper()
	app := New(fixes, minidb.Config{})
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func TestTableIInvocations(t *testing.T) {
	traces := collect(t, Fixes{})
	want := []string{"Register", "Add1", "Add2", "Add3", "Ship", "Checkout"}
	if len(traces) != len(want) {
		t.Fatalf("traces = %d, want %d (Shopizer has no Payment API)", len(traces), len(want))
	}
	for i, w := range want {
		if traces[i].API != w {
			t.Errorf("trace %d = %s, want %s", i, traces[i].API, w)
		}
	}
}

// TestDiagnosisFindsTableII: the unfixed Shopizer model yields every
// cataloged deadlock d14–d18, all of them on the Product table.
func TestDiagnosisFindsTableII(t *testing.T) {
	traces := collect(t, Fixes{})
	res := core.New(Schema(), core.Options{}).Analyze(traces)
	found := map[string]int{}
	for _, d := range res.Deadlocks {
		id := Classify(d)
		found[id]++
		if id >= "d14" && id <= "d18" {
			if d.Cycle.Table1 != "Product" && d.Cycle.Table2 != "Product" {
				t.Errorf("%s not on Product: [%s %s]", id, d.Cycle.Table1, d.Cycle.Table2)
			}
		}
	}
	for _, exp := range Expectations() {
		if found[exp.ID] == 0 {
			t.Errorf("%s (%s; fix %s) not reported", exp.ID, exp.Desc, exp.Fix)
		}
	}
}

// TestOrderingDiffersWithoutFixes: the commit phase's statement order is
// descending by product id without f10, ascending with it.
func TestOrderingDiffersWithoutFixes(t *testing.T) {
	commitOrder := func(fixes Fixes) []int64 {
		traces := collect(t, fixes)
		var ids []int64
		for _, s := range traces[5].AllStmts() { // Checkout
			if s.Parsed.WriteTable() == "Product" && siteOf(s) == siteCommitUpdate {
				ids = append(ids, s.Params[1].Concrete.I)
			}
		}
		return ids
	}
	un := commitOrder(Fixes{})
	if len(un) != 2 || un[0] != 2 || un[1] != 1 {
		t.Errorf("unfixed commit order = %v, want [2 1] (most recent first)", un)
	}
	fx := commitOrder(AllFixes())
	if len(fx) != 2 || fx[0] != 1 || fx[1] != 2 {
		t.Errorf("fixed commit order = %v, want [1 2] (ascending)", fx)
	}
}

// TestRuntimeUpgradeDeadlock reproduces d14 at runtime: two concurrent
// unfixed pricing transactions over the same product upgrade-deadlock;
// with f9 the application lock serializes them.
func TestRuntimeUpgradeDeadlock(t *testing.T) {
	run := func(fixes Fixes) int64 {
		app := New(fixes, minidb.Config{})
		e := concolic.New(concolic.ModeOff)
		// Eight customers share products 1 and 2 in their carts; the
		// checkout transaction's pricing and committing phases overlap
		// across goroutines.
		const customers = 8
		for c := int64(1); c <= customers; c++ {
			for _, pid := range []int64{2, 1} {
				if err := app.Add(e, concolic.Int(c), concolic.Int(pid)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var wg sync.WaitGroup
		for c := int64(1); c <= customers; c++ {
			wg.Add(1)
			go func(c int64) {
				defer wg.Done()
				eg := concolic.New(concolic.ModeOff)
				for i := 0; i < 100; i++ {
					app.Checkout(eg, concolic.Int(c)) // retry through deadlocks
				}
			}(c)
		}
		wg.Wait()
		return app.DB.StatsSnapshot().Deadlocks
	}
	if dl := run(Fixes{}); dl == 0 {
		t.Error("unfixed concurrent pricing never deadlocked")
	}
	if dl := run(AllFixes()); dl != 0 {
		t.Errorf("fixed concurrent pricing deadlocked %d times", dl)
	}
}

// TestRuntimeSmokeAllFixes drives the full API sequence natively.
func TestRuntimeSmokeAllFixes(t *testing.T) {
	app := New(AllFixes(), minidb.Config{})
	e := concolic.New(concolic.ModeOff)
	for c := int64(1); c <= 4; c++ {
		cust := concolic.Int(c)
		if _, err := app.Register(e, concolic.Str(fmt.Sprintf("u%d", c)), concolic.Str("e@x")); err != nil {
			t.Fatal(err)
		}
		for _, pid := range []int64{2, 1, 1} {
			if err := app.Add(e, cust, concolic.Int(pid)); err != nil {
				t.Fatal(err)
			}
		}
		if err := app.Ship(e, cust, concolic.Str("sfo")); err != nil {
			t.Fatal(err)
		}
		if err := app.Checkout(e, cust); err != nil {
			t.Fatal(err)
		}
	}
	if dl := app.DB.StatsSnapshot().Deadlocks; dl != 0 {
		t.Errorf("sequential run hit %d deadlocks", dl)
	}
	// Stock decremented: product 1 got 2 units × 4 customers.
	rows := app.DB.TableRows("Product")
	if got := rows[0][1].I; got != 1_000_000-8 {
		t.Errorf("product 1 qty = %d, want %d", got, 1_000_000-8)
	}
}

func TestErrorPaths(t *testing.T) {
	app := New(AllFixes(), minidb.Config{})
	e := concolic.New(concolic.ModeOff)
	if _, err := app.Register(e, concolic.Str(""), concolic.Str("x")); err != ErrBadUsername {
		t.Errorf("empty username: %v", err)
	}
	if err := app.Ship(e, concolic.Int(9), concolic.Str("sfo")); err != ErrNoCart {
		t.Errorf("ship without cart: %v", err)
	}
	if err := app.Checkout(e, concolic.Int(9)); err != ErrNoCart {
		t.Errorf("checkout without cart: %v", err)
	}
	if err := app.Add(e, concolic.Int(1), concolic.Int(999)); err != ErrUnknownInput {
		t.Errorf("add unknown product: %v", err)
	}
}
