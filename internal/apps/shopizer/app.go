package shopizer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"weseer/internal/concolic"
	"weseer/internal/minidb"
	"weseer/internal/orm"
)

// Application-level errors.
var (
	ErrNoCart       = errors.New("shopizer: customer has no cart")
	ErrEmptyCart    = errors.New("shopizer: cart is empty")
	ErrBadUsername  = errors.New("shopizer: empty username")
	ErrOutOfStock   = errors.New("shopizer: not enough products")
	ErrUnknownInput = errors.New("shopizer: unknown product or customer")
)

// Fixes toggles the application-side deadlock fixes f9–f11 of Table II.
type Fixes struct {
	// F9 forces serial execution of the pricing/committing transactions
	// with an application-level lock (d14–d16).
	F9 bool
	// F10 makes checkout's product UPDATEs follow ascending product-id
	// order (d17).
	F10 bool
	// F11 makes checkout's product reads follow the same ascending order
	// (d18).
	F11 bool
}

// AllFixes enables every fix.
func AllFixes() Fixes { return Fixes{F9: true, F10: true, F11: true} }

// Disable returns the fix set with one fix turned off (Fig. 11 ablation).
func (f Fixes) Disable(name string) Fixes {
	switch name {
	case "f9":
		f.F9 = false
	case "f10":
		f.F10 = false
	case "f11":
		f.F11 = false
	default:
		panic("shopizer: unknown fix " + name)
	}
	return f
}

// FixNames lists the Shopizer fixes in Fig. 11 order.
func FixNames() []string { return []string{"f9", "f10", "f11"} }

// FixesFrom returns the fix set with exactly the named fixes enabled —
// the fix-verification loop's incremental configurations.
func FixesFrom(names []string) (Fixes, error) {
	var f Fixes
	for _, n := range names {
		switch n {
		case "f9":
			f.F9 = true
		case "f10":
			f.F10 = true
		case "f11":
			f.F11 = true
		default:
			return Fixes{}, fmt.Errorf("shopizer: unknown fix %q", n)
		}
	}
	return f, nil
}

// App is one deployment of the model application.
type App struct {
	DB      *minidb.DB
	Mapping *orm.Mapping
	Fixes   Fixes

	// productMu is fix f9's application-level locking: one lock per
	// product, always acquired in ascending product order and held across
	// the whole pricing/committing transaction, so transactions touching
	// common products execute serially while disjoint carts stay
	// parallel.
	productMu []sync.Mutex

	NumProducts int
}

// New creates an application instance with a fresh seeded database.
func New(fixes Fixes, cfg minidb.Config) *App {
	if cfg.LockWaitTimeout == 0 {
		cfg.LockWaitTimeout = 2 * time.Second
	}
	a := &App{
		DB:          minidb.Open(Schema(), cfg),
		Mapping:     NewMapping(),
		Fixes:       fixes,
		NumProducts: 32,
	}
	a.productMu = make([]sync.Mutex, a.NumProducts+1)
	a.seed()
	return a
}

func (a *App) seed() {
	e := concolic.New(concolic.ModeOff)
	s := a.session(e)
	err := s.Transactional(func() error {
		for i := 1; i <= a.NumProducts; i++ {
			p := s.NewEntity("Product")
			s.Set(p, "ID", concolic.Int(int64(i)))
			s.Set(p, "QTY", concolic.Int(1_000_000))
			s.Set(p, "PRICE", concolic.Int(int64(5+i)))
			s.Set(p, "SOLD", concolic.Int(0))
			s.Set(p, "POPULARITY", concolic.Int(0))
			s.Persist(p)
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("shopizer: seeding failed: %v", err))
	}
	a.DB.BumpID("Product", int64(a.NumProducts))
}

func (a *App) session(e *concolic.Engine) *orm.Session {
	return orm.NewSession(a.Mapping, concolic.NewConn(e, a.DB))
}

// serializeProducts takes fix f9's per-product locks (in ascending order,
// so the lock acquisition itself cannot deadlock) for the given product
// ids; the returned func releases them.
func (a *App) serializeProducts(ids []int64) func() {
	if !a.Fixes.F9 {
		return func() {}
	}
	sorted := append([]int64(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var locked []int64
	for _, id := range sorted {
		if id >= 1 && id <= int64(a.NumProducts) {
			a.productMu[id].Lock()
			locked = append(locked, id)
		}
	}
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			a.productMu[locked[i]].Unlock()
		}
	}
}

// cartProductIDs lists the distinct product ids of the cart's items, in
// the requested order. Descending is Shopizer's natural iteration (most
// recently added first) — the inconsistent-order root cause of d17/d18.
func cartProductIDs(items []*orm.Entity, ascending bool) []int64 {
	seen := map[int64]bool{}
	var ids []int64
	for _, it := range items {
		id := it.Get("PRODUCT_ID").C.I
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ascending {
			return ids[i] < ids[j]
		}
		return ids[i] > ids[j]
	})
	return ids
}
