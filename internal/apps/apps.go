// Package apps is the application registry: every workload WeSEER can
// diagnose — the hand-written model apps (broadleaf, shopizer) and the
// synthetic generated corpora (appgen) — registers here under a name and
// is opened through one App interface. The CLIs resolve workloads
// exclusively through this registry, so adding an application (or an
// application generator) never touches command code.
package apps

import (
	"fmt"
	"sort"
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/workload"
)

// App is the surface the diagnosis pipeline needs from an application:
// its schema, a seeded live database, the API unit tests that produce
// traces, and a classifier mapping diagnosed deadlocks onto the app's
// catalog (Table II entries for the model apps, planted f-classes for
// generated corpora; "" = unclassified).
type App interface {
	Name() string
	Schema() *schema.Schema
	DB() *minidb.DB
	UnitTests() []appkit.UnitTest
	Classify(d *core.Deadlock) string
}

// Sourcer is optionally implemented by apps whose transaction templates
// exist as Go source on disk; `weseer vet` uses it for its default
// directories. Generated apps have no source, so they don't implement
// it.
type Sourcer interface {
	SourceDir() string
}

// Workloader is implemented by apps that can drive the Fig. 10/11
// concurrent-client harness (internal/workload).
type Workloader interface {
	Flow() workload.Flow
}

// Options configure Open.
type Options struct {
	// Fixed applies all of the application's Table II fixes before
	// collecting. For generated corpora it fixes every planted class.
	Fixed bool
	// Apply enables exactly the named fixes ("f1".."f11") — the
	// fix-verification loop's incremental configurations. Mutually
	// additive with Fixed (Fixed wins when set).
	Apply []string
	// DB overrides the database configuration (zero value = app
	// defaults).
	DB minidb.Config
}

// Factory builds instances of one registered application family.
type Factory struct {
	// Summary is the one-line description shown in usage listings.
	Summary string
	// New builds an instance. arg is the text after "name:" in the open
	// spec ("" when absent).
	New func(arg string, opt Options) (App, error)
}

var registry = map[string]Factory{}

// Register adds a factory under name. It panics on duplicates: factories
// register from init functions, so a collision is a programming error.
func Register(name string, f Factory) {
	if name == "" || strings.Contains(name, ":") {
		panic("apps: invalid registry name " + name)
	}
	if _, dup := registry[name]; dup {
		panic("apps: duplicate registration of " + name)
	}
	if f.New == nil {
		panic("apps: factory for " + name + " has no New func")
	}
	registry[name] = f
}

// Open builds the application named by spec, which is either a bare
// registry name ("broadleaf") or name:argument ("gen:7,templates=500").
func Open(spec string, opt Options) (App, error) {
	name, arg, _ := strings.Cut(spec, ":")
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown app %q (known: %s)", spec, strings.Join(Names(), ", "))
	}
	return f.New(arg, opt)
}

// Names lists the registered names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Usage renders one line per registered application for CLI help text,
// indented by prefix.
func Usage(prefix string) string {
	var b strings.Builder
	for _, name := range Names() {
		fmt.Fprintf(&b, "%s%-12s %s\n", prefix, name, registry[name].Summary)
	}
	return b.String()
}
