package apps

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
)

// update rewrites the golden files instead of diffing against them.
// Refresh deliberately (go test ./internal/apps -run Goldens -update)
// and review the diff: the goldens pin Table II report bytes.
var update = flag.Bool("update", false, "rewrite the golden report files")

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"broadleaf", "gen", "shopizer"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}
	usage := Usage("  ")
	for _, n := range names {
		if !strings.Contains(usage, n) {
			t.Errorf("Usage() does not mention %q:\n%s", n, usage)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	cases := []struct {
		spec string
		opt  Options
	}{
		{spec: "nosuchapp"},
		{spec: "broadleaf:extra"},
		{spec: "gen:notanumber"},
		{spec: "broadleaf", opt: Options{Apply: []string{"f9"}}},
		{spec: "shopizer", opt: Options{Apply: []string{"f1"}}},
		{spec: "gen:1,classes=f1:1", opt: Options{Apply: []string{"f9"}}},
	}
	for _, c := range cases {
		if _, err := Open(c.spec, c.opt); err == nil {
			t.Errorf("Open(%q, %+v): expected error", c.spec, c.opt)
		}
	}
}

func TestOpenModelAppsAndSourcer(t *testing.T) {
	for _, name := range []string{"broadleaf", "shopizer"} {
		app, err := Open(name, Options{})
		if err != nil {
			t.Fatalf("Open(%s): %v", name, err)
		}
		if app.Name() != name {
			t.Errorf("Name() = %q, want %q", app.Name(), name)
		}
		if app.Schema() == nil || app.DB() == nil || len(app.UnitTests()) == 0 {
			t.Errorf("%s: incomplete App surface", name)
		}
		src, ok := app.(Sourcer)
		if !ok {
			t.Fatalf("%s: model app should implement Sourcer", name)
		}
		if want := filepath.Join("internal", "apps", name); src.SourceDir() != want {
			t.Errorf("%s: SourceDir() = %q, want %q", name, src.SourceDir(), want)
		}
	}
	gen, err := Open("gen:3,templates=4,modules=1,tables=3,rows=4,nest=1,classes=none", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gen.(Sourcer); ok {
		t.Error("generated apps have no source directory; gen must not implement Sourcer")
	}
	if !strings.HasPrefix(gen.Name(), "gen:3,") {
		t.Errorf("gen Name() = %q", gen.Name())
	}
}

// repoRoot locates the repository root from this file's path, so
// absolute trigger-frame paths in rendered reports normalize to
// repo-relative form regardless of checkout location.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// renderApp reproduces the pre-refactor report rendering the goldens
// were captured with: timing-free funnel, sorted per-class counts, and
// each deadlock's full rendered form.
func renderApp(t *testing.T, app App) string {
	t.Helper()
	traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewAnalyzer(app.Schema()).Analyze(traces)
	var b strings.Builder
	fmt.Fprintf(&b, "funnel: %+v\n", res.Stats.WithoutTimings())
	counts := map[string]int{}
	for _, d := range res.Deadlocks {
		counts[app.Classify(d)]++
	}
	var ids []string
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "class %q: %d report(s)\n", id, counts[id])
	}
	for i, d := range res.Deadlocks {
		fmt.Fprintf(&b, "--- deadlock %d class=%q\n%s", i+1, app.Classify(d), d.Render())
	}
	return strings.ReplaceAll(b.String(), repoRoot(t)+"/", "")
}

// TestTableIIGoldens pins the registry-opened model apps to the reports
// captured before the registry existed: the refactor must be
// byte-neutral for Table II.
func TestTableIIGoldens(t *testing.T) {
	for _, name := range []string{"broadleaf", "shopizer"} {
		t.Run(name, func(t *testing.T) {
			app, err := Open(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := renderApp(t, app)
			goldenPath := filepath.Join("testdata", "golden_"+name+".txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				gotPath := filepath.Join(t.TempDir(), "got.txt")
				os.WriteFile(gotPath, []byte(got), 0o644)
				t.Errorf("report differs from %s (got: %s)", goldenPath, gotPath)
			}
		})
	}
}

// TestTableIIInvariants guards the headline funnel numbers: the 18/18
// catalog coverage and the 326 = 226+100 group-discharge split across
// both model apps.
func TestTableIIInvariants(t *testing.T) {
	classes := map[string]bool{}
	groups, calls, memo := 0, 0, 0
	for _, name := range []string{"broadleaf", "shopizer"} {
		app, err := Open(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
		if err != nil {
			t.Fatal(err)
		}
		res := core.NewAnalyzer(app.Schema()).Analyze(traces)
		for _, d := range res.Deadlocks {
			if id := app.Classify(d); strings.HasPrefix(id, "d") {
				classes[id] = true
			}
		}
		groups += res.Stats.GroupsSolved
		calls += res.Stats.SolverCalls
		memo += res.Stats.MemoHits
	}
	if len(classes) != 18 {
		t.Errorf("Table II catalog coverage = %d/18 classes", len(classes))
	}
	if groups != 326 {
		t.Errorf("group discharges = %d, want 326", groups)
	}
	if calls+memo != groups {
		t.Errorf("solver calls (%d) + memo hits (%d) != groups (%d)", calls, memo, groups)
	}
	if memo != 100 {
		t.Errorf("memo hits = %d, want 100", memo)
	}
}
