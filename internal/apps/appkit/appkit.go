// Package appkit provides the shared harness the model applications
// (Broadleaf, Shopizer) expose to WeSEER: API unit tests for trace
// collection, sequential collection semantics matching the paper
// (each unit test's resulting database state is the next one's initial
// state), and helpers for classifying analyzer output against the
// Table II deadlock catalog.
package appkit

import (
	"fmt"

	"weseer/internal/concolic"
	"weseer/internal/trace"
)

// UnitTest is one API unit test: it marks the API inputs symbolic and
// invokes the API once. Name becomes the trace's API name (Table I uses
// Add1/Add2/Add3 to distinguish the three Add invocations' paths).
type UnitTest struct {
	Name string
	Run  func(e *concolic.Engine) error
}

// Collect runs the unit tests sequentially under one engine mode and
// returns their traces. The tests share the application's database, so
// state accumulates exactly as in the paper's methodology.
func Collect(tests []UnitTest, mode concolic.Mode, opts ...concolic.Option) ([]*trace.Trace, error) {
	var out []*trace.Trace
	for _, ut := range tests {
		e := concolic.New(mode, opts...)
		e.StartConcolic(ut.Name)
		err := ut.Run(e)
		tr := e.EndConcolic()
		if err != nil {
			return nil, fmt.Errorf("appkit: unit test %s: %w", ut.Name, err)
		}
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out, nil
}

// Expectation describes one Table II deadlock: its id, the APIs that can
// form it, the conflict table, and the fix that removes it.
type Expectation struct {
	ID    string // "d1" .. "d18"
	Apps  string // "Broadleaf" or "Shopizer"
	APIs  string // rendered API pair, e.g. "Register — Register"
	Desc  string
	Fix   string // e.g. "f1: Use correct ORM operation"
	Table string // the conflict table identifying the deadlock
}

// RunPrefix executes the first n unit tests natively (ModeOff), rebuilding
// the database state a later test's trace was collected against — the
// replay framework uses it before reproducing a reported deadlock.
func RunPrefix(tests []UnitTest, n int) error {
	if n > len(tests) {
		n = len(tests)
	}
	for _, ut := range tests[:n] {
		e := concolic.New(concolic.ModeOff)
		e.StartConcolic(ut.Name)
		err := ut.Run(e)
		e.EndConcolic()
		if err != nil {
			return fmt.Errorf("appkit: replaying %s: %w", ut.Name, err)
		}
	}
	return nil
}
