package apps

import (
	"fmt"
	"path/filepath"

	"weseer/internal/appgen"
	"weseer/internal/apps/appkit"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/workload"
)

// wrapped adapts the hand-written model apps (whose exported surface
// predates the App interface) to the registry without touching their
// packages — their source files are themselves vet fixtures and report
// trigger frames, so line numbers there are load-bearing.
type wrapped struct {
	name     string
	scm      *schema.Schema
	db       *minidb.DB
	tests    []appkit.UnitTest
	classify func(*core.Deadlock) string
	srcDir   string
	flow     workload.Flow
	catalog  []appkit.Expectation
}

func (w *wrapped) Name() string                     { return w.name }
func (w *wrapped) Schema() *schema.Schema           { return w.scm }
func (w *wrapped) DB() *minidb.DB                   { return w.db }
func (w *wrapped) UnitTests() []appkit.UnitTest     { return w.tests }
func (w *wrapped) Classify(d *core.Deadlock) string { return w.classify(d) }
func (w *wrapped) SourceDir() string                { return w.srcDir }
func (w *wrapped) Flow() workload.Flow              { return w.flow }
func (w *wrapped) Catalog() []appkit.Expectation    { return w.catalog }

func init() {
	Register("broadleaf", Factory{
		Summary: "Broadleaf Commerce model (Table I APIs, deadlocks d1-d13)",
		New: func(arg string, opt Options) (App, error) {
			if arg != "" {
				return nil, fmt.Errorf("broadleaf takes no argument (got %q)", arg)
			}
			fixes, err := broadleaf.FixesFrom(opt.Apply)
			if err != nil {
				return nil, err
			}
			if opt.Fixed {
				fixes = broadleaf.AllFixes()
			}
			app := broadleaf.New(fixes, opt.DB)
			return &wrapped{
				name: "broadleaf", scm: broadleaf.Schema(), db: app.DB,
				tests: app.UnitTests(), classify: broadleaf.Classify,
				srcDir:  filepath.Join("internal", "apps", "broadleaf"),
				flow:    app.Flow(),
				catalog: broadleaf.Expectations(),
			}, nil
		},
	})
	Register("shopizer", Factory{
		Summary: "Shopizer model (Table I APIs, deadlocks d14-d18)",
		New: func(arg string, opt Options) (App, error) {
			if arg != "" {
				return nil, fmt.Errorf("shopizer takes no argument (got %q)", arg)
			}
			fixes, err := shopizer.FixesFrom(opt.Apply)
			if err != nil {
				return nil, err
			}
			if opt.Fixed {
				fixes = shopizer.AllFixes()
			}
			app := shopizer.New(fixes, opt.DB)
			return &wrapped{
				name: "shopizer", scm: shopizer.Schema(), db: app.DB,
				tests: app.UnitTests(), classify: shopizer.Classify,
				srcDir:  filepath.Join("internal", "apps", "shopizer"),
				flow:    app.Flow(),
				catalog: shopizer.Expectations(),
			}, nil
		},
	})
	Register("gen", Factory{
		Summary: "synthetic corpus generator: gen:<seed>[,templates=N,modules=K,tables=T,rows=R,hot=P,nest=D,classes=f1:1+...|all|none]",
		New: func(arg string, opt Options) (App, error) {
			cfg, err := appgen.ParseSpec(arg)
			if err != nil {
				return nil, err
			}
			cfg = cfg.Normalize()
			planted := map[string]bool{}
			for _, cc := range cfg.Classes {
				if cc.N > 0 {
					planted[cc.Class] = true
				}
			}
			apply := opt.Apply
			if opt.Fixed {
				// Fixed = fix every planted class.
				apply = nil
				for _, cc := range cfg.Classes {
					if cc.N > 0 {
						apply = append(apply, cc.Class)
					}
				}
			}
			for _, cl := range apply {
				if !planted[cl] {
					return nil, fmt.Errorf("gen:%s: fix %q targets a class not planted in this corpus", arg, cl)
				}
			}
			return appgen.New(cfg, opt.DB, appgen.WithFixedClasses(apply...)), nil
		},
	})
}
