package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestEmpty(t *testing.T) {
	m := New[int, string](intCmp)
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Error("Get on empty")
	}
	if m.Delete(1) {
		t.Error("Delete on empty")
	}
	if _, _, ok := m.Min(); ok {
		t.Error("Min on empty")
	}
	m.AscendAll(func(int, string) bool { t.Error("visit on empty"); return true })
}

func TestSetGetDelete(t *testing.T) {
	m := New[int, int](intCmp)
	const n = 1000
	for i := 0; i < n; i++ {
		if !m.Set(i*2, i) {
			t.Fatalf("Set(%d) not new", i*2)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	// Replace must not grow.
	if m.Set(10, 999) {
		t.Error("Set(10) reported new on replace")
	}
	if m.Len() != n {
		t.Errorf("Len after replace = %d", m.Len())
	}
	if v, ok := m.Get(10); !ok || v != 999 {
		t.Errorf("Get(10) = %d %v", v, ok)
	}
	if _, ok := m.Get(11); ok {
		t.Error("Get(11) should miss")
	}
	for i := 0; i < n; i += 2 {
		if !m.Delete(i * 2) {
			t.Fatalf("Delete(%d) missed", i*2)
		}
	}
	if m.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", m.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := m.Get(i * 2)
		want := i%2 == 1
		if ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i*2, ok, want)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	m := New[int, int](intCmp)
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, k := range perm {
		m.Set(k, k)
	}
	var got []int
	m.AscendAll(func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 500 {
		t.Fatalf("visited %d", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got[%d] = %d", i, got[i])
		}
	}
}

func TestAscendFrom(t *testing.T) {
	m := New[int, int](intCmp)
	for i := 0; i < 100; i += 2 { // evens 0..98
		m.Set(i, i)
	}
	var got []int
	m.Ascend(31, func(k, _ int) bool { got = append(got, k); return k < 40 })
	want := []int{32, 34, 36, 38, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// From an existing key: inclusive.
	got = nil
	m.Ascend(30, func(k, _ int) bool { got = append(got, k); return false })
	if len(got) != 1 || got[0] != 30 {
		t.Fatalf("inclusive start: %v", got)
	}
	// From beyond the max: no visits.
	got = nil
	m.Ascend(99, func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("beyond max: %v", got)
	}
}

func TestMin(t *testing.T) {
	m := New[int, string](intCmp)
	m.Set(5, "five")
	m.Set(3, "three")
	m.Set(9, "nine")
	k, v, ok := m.Min()
	if !ok || k != 3 || v != "three" {
		t.Errorf("Min = %d %q %v", k, v, ok)
	}
}

func TestStringKeys(t *testing.T) {
	m := New[string, int](func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	words := []string{"pear", "apple", "fig", "banana", "cherry"}
	for i, w := range words {
		m.Set(w, i)
	}
	var got []string
	m.AscendAll(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) || len(got) != len(words) {
		t.Errorf("iteration %v", got)
	}
}

// TestRandomizedAgainstReference drives random operations against the
// B-tree and a reference map, checking contents and iteration order.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New[int, int](intCmp)
	ref := map[int]int{}
	const keyspace = 400
	for op := 0; op < 20000; op++ {
		k := rng.Intn(keyspace)
		switch rng.Intn(3) {
		case 0: // set
			v := rng.Int()
			_, existed := ref[k]
			if m.Set(k, v) != !existed {
				t.Fatalf("op %d: Set(%d) new-flag mismatch", op, k)
			}
			ref[k] = v
		case 1: // get
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", op, k, v, ok, rv, rok)
			}
		case 2: // delete
			_, existed := ref[k]
			if m.Delete(k) != existed {
				t.Fatalf("op %d: Delete(%d) mismatch", op, k)
			}
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	// Full iteration must match the sorted reference.
	keys := make([]int, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	i := 0
	m.AscendAll(func(k, v int) bool {
		if i >= len(keys) || k != keys[i] || v != ref[k] {
			t.Fatalf("iter %d: (%d,%d), want key %d", i, k, v, keys[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("visited %d of %d", i, len(keys))
	}
	// Range iteration from random starting points.
	for trial := 0; trial < 50; trial++ {
		from := rng.Intn(keyspace)
		want := make([]int, 0)
		for _, k := range keys {
			if k >= from {
				want = append(want, k)
			}
		}
		got := make([]int, 0)
		m.Ascend(from, func(k, _ int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			t.Fatalf("Ascend(%d): got %d keys, want %d", from, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Ascend(%d)[%d] = %d, want %d", from, j, got[j], want[j])
			}
		}
	}
}

func TestDescendingInsertAscendingDelete(t *testing.T) {
	m := New[int, int](intCmp)
	const n = 2000
	for i := n; i > 0; i-- {
		m.Set(i, i)
	}
	for i := 1; i <= n; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d %v", i, v, ok)
		}
	}
	for i := 1; i <= n; i++ {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if m.Len() != 0 || m.root != nil {
		t.Errorf("tree not empty: len=%d", m.Len())
	}
}
