package btree

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	var recs [][]byte
	l, err := OpenLog(path, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestLogAppendReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	l, recs := openCollect(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollect(t, path)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// An empty record is a legal frame.
	if err := l2.Append(nil); err != nil {
		t.Fatal(err)
	}
}

// TestLogTornTail cuts the file mid-frame at every possible torn length
// of the final record and verifies reload drops exactly that record,
// truncates the file back to the intact prefix, and appends cleanly
// afterwards.
func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.wal")
	l, _ := openCollect(t, base)
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	intact := l.Size()
	if err := l.Append([]byte("second-record")); err != nil {
		t.Fatal(err)
	}
	full := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intact + 1; cut < full; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs := openCollect(t, path)
		if len(recs) != 1 || string(recs[0]) != "first" {
			t.Fatalf("cut %d: replayed %q, want just \"first\"", cut, recs)
		}
		if l2.Size() != intact {
			t.Fatalf("cut %d: size %d after truncate, want %d", cut, l2.Size(), intact)
		}
		if err := l2.Append([]byte("third")); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs = openCollect(t, path)
		if len(recs) != 2 || string(recs[1]) != "third" {
			t.Fatalf("cut %d: post-recovery replay %q", cut, recs)
		}
	}
}

// TestLogCorruptChecksumTail flips a payload byte in the final record:
// reload must drop it like a torn write.
func TestLogCorruptChecksumTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, _ := openCollect(t, path)
	for _, rec := range []string{"alpha", "beta"} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs := openCollect(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0]) != "alpha" {
		t.Fatalf("replayed %q, want just \"alpha\"", recs)
	}
}

// TestLogGarbageLength writes an absurd length prefix after a good
// record: reload must stop at the intact prefix instead of allocating.
func TestLogGarbageLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.wal")
	l, _ := openCollect(t, path)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, recs := openCollect(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("replayed %q, want just \"good\"", recs)
	}
}
