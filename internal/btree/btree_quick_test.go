package btree

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the B-tree's core invariants.

// TestQuickSetGetRoundTrip: every inserted key is retrievable with its
// latest value, regardless of insertion order.
func TestQuickSetGetRoundTrip(t *testing.T) {
	f := func(keys []int16, values []int32) bool {
		m := New[int, int](intCmp)
		ref := map[int]int{}
		for i, k := range keys {
			v := 0
			if i < len(values) {
				v = int(values[i])
			}
			m.Set(int(k), v)
			ref[int(k)] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIterationSorted: AscendAll always yields keys in strictly
// increasing order and visits exactly the live key set.
func TestQuickIterationSorted(t *testing.T) {
	f := func(ins []int16, del []int16) bool {
		m := New[int, struct{}](intCmp)
		ref := map[int]bool{}
		for _, k := range ins {
			m.Set(int(k), struct{}{})
			ref[int(k)] = true
		}
		for _, k := range del {
			m.Delete(int(k))
			delete(ref, int(k))
		}
		var got []int
		m.AscendAll(func(k int, _ struct{}) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(ref) {
			return false
		}
		for i, k := range got {
			if !ref[k] {
				return false
			}
			if i > 0 && got[i-1] >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAscendFromMatchesSort: Ascend(from) equals the sorted suffix
// of the key set.
func TestQuickAscendFromMatchesSort(t *testing.T) {
	f := func(keys []int16, from int16) bool {
		m := New[int, struct{}](intCmp)
		set := map[int]bool{}
		for _, k := range keys {
			m.Set(int(k), struct{}{})
			set[int(k)] = true
		}
		var want []int
		for k := range set {
			if k >= int(from) {
				want = append(want, k)
			}
		}
		sort.Ints(want)
		var got []int
		m.Ascend(int(from), func(k int, _ struct{}) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
