package btree

// Log is a WAL-style append-only record log — the durable file layer the
// history store builds its B-tree indexes over. Records are opaque byte
// payloads framed as
//
//	uint32 LE payload length | uint32 LE FNV-1a checksum | payload
//
// and only ever appended. OpenLog replays every intact record through a
// callback so the caller can rebuild its in-memory state (the B-tree maps
// and rollups), then truncates any torn tail: a crash mid-append leaves a
// short or checksum-corrupt final frame, which is silently dropped —
// everything before it is intact by construction. A corrupt frame is
// always treated as the torn tail; since writes are strictly sequential,
// nothing after the first bad frame can be trusted.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

const logHeaderSize = 8

// maxLogRecord bounds a single record so a garbage length prefix cannot
// force a huge allocation during replay.
const maxLogRecord = 1 << 26 // 64 MiB

// Log is an append-only record log backed by one file.
type Log struct {
	f    *os.File
	path string
	size int64 // bytes of intact, replayed frames
}

// logChecksum is the FNV-1a 32-bit checksum of a payload.
func logChecksum(p []byte) uint32 {
	h := fnv.New32a()
	h.Write(p)
	return h.Sum32()
}

// OpenLog opens (creating if absent) the log at path and replays every
// intact record through replay in append order. A torn final frame —
// short header, short payload, or checksum mismatch — is truncated away;
// a replay callback error aborts the open. The returned log is
// positioned for appending.
func OpenLog(path string, replay func(rec []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path}
	if err := l.replayAll(replay); err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (no-op when the file ends on a frame boundary)
	// and position the write cursor at the end of the intact prefix.
	if err := f.Truncate(l.size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replayAll scans the file from the start, invoking replay for each
// intact frame and recording the offset of the last good frame end.
func (l *Log) replayAll(replay func(rec []byte) error) error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var off int64
	hdr := make([]byte, logHeaderSize)
	for {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			break // clean EOF or torn header — intact prefix ends here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxLogRecord {
			break // garbage length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break // torn payload
		}
		if logChecksum(payload) != sum {
			break // corrupt frame
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return fmt.Errorf("btree: log replay %s @%d: %w", l.path, off, err)
			}
		}
		off += logHeaderSize + int64(n)
	}
	l.size = off
	return nil
}

// Append writes one record. The frame is written with a single Write
// call so a crash tears at most the final record.
func (l *Log) Append(rec []byte) error {
	frame := make([]byte, logHeaderSize+len(rec))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], logChecksum(rec))
	copy(frame[logHeaderSize:], rec)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Size returns the byte length of the intact log.
func (l *Log) Size() int64 { return l.size }

// Path returns the backing file's path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the backing file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
