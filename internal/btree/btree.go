// Package btree implements an in-memory B-tree map with ordered iteration.
// minidb builds its primary and secondary indexes on it: range scans and
// next-key lookups — the operations InnoDB-style gap/next-key locking is
// defined over — require an ordered structure, not a hash map.
package btree

// degree is the minimum number of children of an internal node. Nodes hold
// between degree-1 and 2*degree-1 items.
const degree = 16

const maxItems = 2*degree - 1

// Map is an ordered map from K to V. The comparator defines the total
// order; it returns <0, 0, >0 like strings.Compare. Map is not safe for
// concurrent use; minidb serializes index access under its latch.
type Map[K, V any] struct {
	cmp  func(K, K) int
	root *node[K, V]
	size int
}

type item[K, V any] struct {
	k K
	v V
}

type node[K, V any] struct {
	items []item[K, V]
	kids  []*node[K, V] // nil for leaves
}

func (n *node[K, V]) leaf() bool { return n.kids == nil }

// New returns an empty map ordered by cmp.
func New[K, V any](cmp func(K, K) int) *Map[K, V] {
	return &Map[K, V]{cmp: cmp}
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.size }

// search returns the position of k in items and whether it was found.
func (m *Map[K, V]) search(items []item[K, V], k K) (int, bool) {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		c := m.cmp(items[mid].k, k)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	n := m.root
	for n != nil {
		i, ok := m.search(n.items, k)
		if ok {
			return n.items[i].v, true
		}
		if n.leaf() {
			break
		}
		n = n.kids[i]
	}
	var zero V
	return zero, false
}

// Set inserts or replaces the value under k. It reports whether the key
// was newly inserted.
func (m *Map[K, V]) Set(k K, v V) bool {
	if m.root == nil {
		m.root = &node[K, V]{items: []item[K, V]{{k, v}}}
		m.size = 1
		return true
	}
	if len(m.root.items) == maxItems {
		old := m.root
		m.root = &node[K, V]{kids: []*node[K, V]{old}}
		m.splitChild(m.root, 0)
	}
	inserted := m.insertNonFull(m.root, k, v)
	if inserted {
		m.size++
	}
	return inserted
}

// splitChild splits the full child at index i of parent.
func (m *Map[K, V]) splitChild(parent *node[K, V], i int) {
	child := parent.kids[i]
	mid := len(child.items) / 2
	midItem := child.items[mid]

	right := &node[K, V]{}
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if !child.leaf() {
		right.kids = append(right.kids, child.kids[mid+1:]...)
		child.kids = child.kids[:mid+1]
	}

	parent.items = append(parent.items, item[K, V]{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem

	parent.kids = append(parent.kids, nil)
	copy(parent.kids[i+2:], parent.kids[i+1:])
	parent.kids[i+1] = right
}

func (m *Map[K, V]) insertNonFull(n *node[K, V], k K, v V) bool {
	for {
		i, ok := m.search(n.items, k)
		if ok {
			n.items[i].v = v
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{k, v}
			return true
		}
		if len(n.kids[i].items) == maxItems {
			m.splitChild(n, i)
			c := m.cmp(n.items[i].k, k)
			if c == 0 {
				n.items[i].v = v
				return false
			}
			if c < 0 {
				i++
			}
		}
		n = n.kids[i]
	}
}

// Delete removes k and reports whether it was present.
func (m *Map[K, V]) Delete(k K) bool {
	if m.root == nil {
		return false
	}
	deleted := m.delete(m.root, k)
	if len(m.root.items) == 0 {
		if m.root.leaf() {
			m.root = nil
		} else {
			m.root = m.root.kids[0]
		}
	}
	if deleted {
		m.size--
	}
	return deleted
}

// delete removes k from the subtree rooted at n, which is guaranteed by
// the caller to have at least degree items (except the root). This is the
// standard CLRS deletion: fix up child sizes on the way down so no
// underflow propagates back up.
func (m *Map[K, V]) delete(n *node[K, V], k K) bool {
	i, found := m.search(n.items, k)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		switch {
		case len(n.kids[i].items) >= degree:
			// Replace with the predecessor and delete it below.
			pred := m.maxItem(n.kids[i])
			n.items[i] = pred
			return m.delete(n.kids[i], pred.k)
		case len(n.kids[i+1].items) >= degree:
			succ := m.minItem(n.kids[i+1])
			n.items[i] = succ
			return m.delete(n.kids[i+1], succ.k)
		default:
			m.mergeKids(n, i)
			return m.delete(n.kids[i], k)
		}
	}
	// Descend into kid i, topping it up first if it is minimal.
	if len(n.kids[i].items) < degree {
		i = m.fixKid(n, i)
	}
	return m.delete(n.kids[i], k)
}

func (m *Map[K, V]) maxItem(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.kids[len(n.kids)-1]
	}
	return n.items[len(n.items)-1]
}

func (m *Map[K, V]) minItem(n *node[K, V]) item[K, V] {
	for !n.leaf() {
		n = n.kids[0]
	}
	return n.items[0]
}

// mergeKids merges kid i, separator i, and kid i+1 into kid i.
func (m *Map[K, V]) mergeKids(n *node[K, V], i int) {
	child, right := n.kids[i], n.kids[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.kids = append(child.kids, right.kids...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.kids = append(n.kids[:i+1], n.kids[i+2:]...)
}

// fixKid grows minimal kid i by rotation or merge and returns the index of
// the kid to descend into (merging with the left sibling shifts it).
func (m *Map[K, V]) fixKid(n *node[K, V], i int) int {
	switch {
	case i > 0 && len(n.kids[i-1].items) >= degree:
		// Rotate right: separator moves down, left sibling's max moves up.
		child, left := n.kids[i], n.kids[i-1]
		child.items = append(child.items, item[K, V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !child.leaf() {
			child.kids = append(child.kids, nil)
			copy(child.kids[1:], child.kids)
			child.kids[0] = left.kids[len(left.kids)-1]
			left.kids = left.kids[:len(left.kids)-1]
		}
		return i
	case i < len(n.kids)-1 && len(n.kids[i+1].items) >= degree:
		// Rotate left.
		child, right := n.kids[i], n.kids[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !child.leaf() {
			child.kids = append(child.kids, right.kids[0])
			right.kids = append(right.kids[:0], right.kids[1:]...)
		}
		return i
	case i > 0:
		m.mergeKids(n, i-1)
		return i - 1
	default:
		m.mergeKids(n, i)
		return i
	}
}

// Ascend visits all entries with key >= from in ascending order until fn
// returns false.
func (m *Map[K, V]) Ascend(from K, fn func(K, V) bool) {
	m.ascend(m.root, &from, fn)
}

// AscendAll visits every entry in ascending order until fn returns false.
func (m *Map[K, V]) AscendAll(fn func(K, V) bool) {
	m.ascend(m.root, nil, fn)
}

func (m *Map[K, V]) ascend(n *node[K, V], from *K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start := 0
	if from != nil {
		start, _ = m.search(n.items, *from)
	}
	for i := start; i < len(n.items); i++ {
		if !n.leaf() {
			if !m.ascend(n.kids[i], from, fn) {
				return false
			}
			from = nil // descended once; all later keys are in range
		}
		if from != nil && m.cmp(n.items[i].k, *from) < 0 {
			continue
		}
		if !fn(n.items[i].k, n.items[i].v) {
			return false
		}
		from = nil
	}
	if !n.leaf() {
		return m.ascend(n.kids[len(n.kids)-1], from, fn)
	}
	return true
}

// Min returns the smallest key, or false when empty.
func (m *Map[K, V]) Min() (K, V, bool) {
	n := m.root
	if n == nil {
		var k K
		var v V
		return k, v, false
	}
	for !n.leaf() {
		n = n.kids[0]
	}
	it := n.items[0]
	return it.k, it.v, true
}
