package history

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"weseer/internal/obs"
	"weseer/internal/trace"
)

// newTestServer wires a Server over a fresh store with a fake analyzer
// that maps each trace to one event keyed by the trace's API name.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	store, err := Open(filepath.Join(t.TempDir(), "history.wal"), WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	reg := obs.NewRegistry()
	srv := &Server{
		Store: store,
		Analyze: func(_ context.Context, app string, traces []*trace.Trace) ([]Event, error) {
			var events []Event
			for _, tr := range traces {
				events = append(events, Event{
					Fingerprint: fmt.Sprintf("%016x", len(tr.API)),
					App:         app,
					APIs:        [2]string{tr.API, tr.API},
					Tables:      []string{"T"},
				})
			}
			return events, nil
		},
		Metrics: RegisterMetrics(reg),
	}
	mux := http.NewServeMux()
	for _, rt := range srv.Routes() {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func postIngest(t *testing.T, ts *httptest.Server, query string, body any) (IngestSummary, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest"+query, obs.ContentTypeJSON, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum IngestSummary
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatalf("decode summary: %v", err)
		}
	}
	return sum, resp
}

func TestIngestEventsAndQueries(t *testing.T) {
	_, ts, reg := newTestServer(t)

	sum, resp := postIngest(t, ts, "?format=events", testEvents())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypeJSON {
		t.Errorf("ingest Content-Type = %q", got)
	}
	if sum.Stored != 3 || sum.Deduped != 0 {
		t.Fatalf("first ingest: %+v", sum)
	}
	// Idempotent on re-post.
	sum, _ = postIngest(t, ts, "?format=events", testEvents())
	if sum.Stored != 0 || sum.Deduped != 3 {
		t.Fatalf("re-ingest: %+v", sum)
	}

	// Metrics reflect both batches.
	snap := reg.Snapshot()
	if snap["weseer_history_events"] != 3 ||
		snap["weseer_history_ingest_stored_total"] != 3 ||
		snap["weseer_history_ingest_dedup_total"] != 3 ||
		snap["weseer_history_ingest_batches_total"] != 2 ||
		snap["weseer_history_ingest_seconds_count"] != 2 {
		t.Errorf("metrics snapshot: %+v", snap)
	}

	// JSON event query with filter.
	resp2, err := http.Get(ts.URL + "/history/events?class=d14")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get("Content-Type"); got != obs.ContentTypeJSON {
		t.Errorf("events Content-Type = %q", got)
	}
	var events []Event
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Class != "d14" {
		t.Fatalf("filtered events: %+v", events)
	}

	// Patterns, text format.
	resp3, err := http.Get(ts.URL + "/history/patterns?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get("Content-Type"); got != obs.ContentTypeText {
		t.Errorf("patterns text Content-Type = %q", got)
	}
	text := string(body)
	for _, want := range []string{"3 event(s), 6 sighting(s)", "d1", "d14", "Order", "Checkout -- UpdateSku"} {
		if !strings.Contains(text, want) {
			t.Errorf("patterns text missing %q:\n%s", want, text)
		}
	}

	// Tables with a window that excludes everything.
	resp4, err := http.Get(ts.URL + "/history/tables?window=1ns")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp4.Body)
	resp4.Body.Close()
	var counts []TableCount
	if err := json.Unmarshal(body, &counts); err != nil {
		t.Fatalf("tables JSON: %v\n%s", err, body)
	}
	if len(counts) != 0 {
		t.Errorf("1ns window should be empty: %+v", counts)
	}
}

func TestIngestTracesRunsAnalyzer(t *testing.T) {
	_, ts, _ := newTestServer(t)
	traces := []*trace.Trace{{API: "Checkout"}, {API: "AddSku"}, {API: "Checkout"}}
	sum, resp := postIngest(t, ts, "?app=shop", traces)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// "Checkout" twice → same fingerprint → one stored, one deduped.
	if sum.Received != 3 || sum.Stored != 2 || sum.Deduped != 1 {
		t.Fatalf("trace ingest: %+v", sum)
	}
	resp2, err := http.Get(ts.URL + "/history/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var events []Event
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.App != "shop" {
			t.Errorf("event app = %q, want shop", e.App)
		}
	}
}

func TestIngestReportFormat(t *testing.T) {
	_, ts, _ := newTestServer(t)
	report := map[string]any{
		"deadlocks": []map[string]any{
			{"fingerprint": "00000000000000aa", "catalog": "d3",
				"apis": []string{"A", "B"}, "tables": []string{"X", "Y"}, "count": 5},
		},
	}
	sum, resp := postIngest(t, ts, "?format=report&app=demo", report)
	if resp.StatusCode != http.StatusOK || sum.Stored != 1 {
		t.Fatalf("report ingest: status %d sum %+v", resp.StatusCode, sum)
	}
	resp2, err := http.Get(ts.URL + "/history/events?table=X")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var events []Event
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Class != "d3" || events[0].Seen != 1 || events[0].Count != 5 {
		t.Fatalf("report-ingested event: %+v", events)
	}
}

func TestIngestErrors(t *testing.T) {
	srv, ts, reg := newTestServer(t)

	// GET is rejected.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest status %d", resp.StatusCode)
	}

	// Bad JSON is a 400 and counts as an error.
	resp, err = http.Post(ts.URL+"/ingest?format=events", obs.ContentTypeJSON, strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypeJSON {
		t.Errorf("error Content-Type = %q", got)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Errorf("error body %q", body)
	}

	// Unknown format.
	resp, err = http.Post(ts.URL+"/ingest?format=parquet", obs.ContentTypeJSON, strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status %d", resp.StatusCode)
	}

	// Trace ingest without an analyzer.
	srv.Analyze = nil
	resp, err = http.Post(ts.URL+"/ingest", obs.ContentTypeJSON, strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("no-analyzer status %d", resp.StatusCode)
	}

	if got := reg.Snapshot()["weseer_history_ingest_errors_total"]; got != 3 {
		t.Errorf("ingest_errors_total = %v, want 3", got)
	}

	// Bad window on a query endpoint.
	resp, err = http.Get(ts.URL + "/history/tables?window=tomorrow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window status %d", resp.StatusCode)
	}
}

func TestEventsTextFormat(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	if _, err := srv.Store.Ingest(testEvents()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/history/events?format=text&class=d1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"1 event(s)",
		"00000000000000a1",
		"Checkout -- UpdateSku",
		"UPDATE Sku SET qty = ? (cart.go:42)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("events text missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, time.Date(2026, 8, 8, 12, 1, 0, 0, time.UTC).Format(time.RFC3339)) {
		t.Errorf("events text missing first-seen timestamp:\n%s", text)
	}
}
