// Package history is WeSEER's persistent deadlock-history store — the
// piece that turns the one-shot detector into an ongoing production
// service (the Steep deadlock-history design): deadlocks are rare,
// serious incidents worth persisting, and the questions that matter —
// "which tables deadlock most?", "is this incident new or the same one
// we saw Tuesday?" — span days of history and many ingests.
//
// Every diagnosed deadlock becomes a fingerprinted DeadlockEvent (the
// stable core.Deadlock fingerprint: canonical cycle, sorted table
// resources, API pair), carrying per-transaction lock records (what each
// side held, where it waited, which code triggered it). The store is an
// embedded, stdlib-only append-only event store over internal/btree: a
// WAL-style record log (btree.Log, crash-safe reload with torn-tail
// truncation) is the single source of truth, and the in-memory B-tree
// indexes — events by fingerprint, plus incrementally maintained
// per-table / per-class / per-API-pair pattern rollups — are rebuilt by
// replaying it, so live state and reloaded state are identical by
// construction. Ingest is idempotent by fingerprint: re-ingesting a
// corpus appends lightweight "touch" records (last-seen, sighting
// counts) instead of duplicating events.
package history

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"weseer/internal/btree"
	"weseer/internal/core"
	"weseer/internal/trace"
)

// TxnLock is one transaction's side of a deadlock cycle: the lock it
// holds (statement template plus triggering code location) and the
// statement it waits at.
type TxnLock struct {
	API      string `json:"api"`
	HoldsSQL string `json:"holds_sql,omitempty"`
	HoldsAt  string `json:"holds_at,omitempty"` // file:line of the triggering code
	WaitsSQL string `json:"waits_sql,omitempty"`
	WaitsAt  string `json:"waits_at,omitempty"`
}

// Event is one fingerprinted deadlock incident. Identity is the
// fingerprint; everything else is descriptive. First/LastSeen and Seen
// accumulate across ingests of the same fingerprint.
type Event struct {
	Fingerprint string     `json:"fingerprint"`
	App         string     `json:"app,omitempty"`   // workload the traces came from
	Class       string     `json:"class,omitempty"` // anti-pattern class (Table II id, planted f-class)
	APIs        [2]string  `json:"apis"`
	Tables      []string   `json:"tables"` // sorted unique lock resources
	Txns        [2]TxnLock `json:"txns"`
	Count       int        `json:"count"` // coarse cycles folded into the diagnosis
	Seen        int        `json:"seen"`  // ingests that sighted this fingerprint
	FirstSeen   time.Time  `json:"first_seen"`
	LastSeen    time.Time  `json:"last_seen"`
}

// PairKey is the canonical API-pair rollup key.
func PairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + " -- " + b
}

// Rollup is one pre-computed pattern aggregate: how many distinct
// events (fingerprints) and total sightings a key has accumulated, and
// when. Maintained incrementally on every applied record, so pattern
// queries never scan the event list.
type Rollup struct {
	Key       string    `json:"key"`
	Events    int       `json:"events"`
	Seen      int       `json:"seen"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// IngestSummary reports one Ingest call's outcome.
type IngestSummary struct {
	Received int `json:"received"` // events in the batch
	Stored   int `json:"stored"`   // new fingerprints appended
	Deduped  int `json:"deduped"`  // fingerprints already present (touched)
	Events   int `json:"events"`   // store size after the batch
}

// record is the on-disk record format, framed by btree.Log. "event"
// introduces a new fingerprint; "touch" re-sights an existing one.
type record struct {
	T  string    `json:"t"` // "event" | "touch"
	E  *Event    `json:"e,omitempty"`
	FP string    `json:"fp,omitempty"`
	At time.Time `json:"at,omitempty"`
}

// Store is the embedded deadlock-history store. Safe for concurrent
// use; queries take a read lock, ingest a write lock.
type Store struct {
	mu        sync.RWMutex
	log       *btree.Log
	events    *btree.Map[string, *Event] // fingerprint → event
	tables    *btree.Map[string, *Rollup]
	classes   *btree.Map[string, *Rollup]
	pairs     *btree.Map[string, *Rollup]
	sightings int
	now       func() time.Time
}

// StoreOption configures Open.
type StoreOption func(*Store)

// WithClock overrides the store's time source (tests pin timestamps so
// reloaded state is byte-comparable against golden output).
func WithClock(now func() time.Time) StoreOption {
	return func(s *Store) { s.now = now }
}

// Open opens (creating if absent) the store at path, replaying the
// record log to rebuild the event index and pattern rollups. A torn
// final record from a crash mid-append is dropped and truncated away.
func Open(path string, opts ...StoreOption) (*Store, error) {
	s := &Store{
		events:  btree.New[string, *Event](strings.Compare),
		tables:  btree.New[string, *Rollup](strings.Compare),
		classes: btree.New[string, *Rollup](strings.Compare),
		pairs:   btree.New[string, *Rollup](strings.Compare),
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	log, err := btree.OpenLog(path, func(raw []byte) error {
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
		return s.apply(rec)
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// apply folds one record into the in-memory state. Live ingest and
// reload replay go through this same function, so a reopened store is
// state-identical to the one that wrote the log.
func (s *Store) apply(rec record) error {
	switch rec.T {
	case "event":
		e := rec.E
		if e == nil || e.Fingerprint == "" {
			return fmt.Errorf("history: event record without fingerprint")
		}
		if prev, ok := s.events.Get(e.Fingerprint); ok {
			// A duplicate event record only arises from a log written by
			// a racing writer; fold it as a touch rather than corrupting
			// the rollups.
			return s.apply(record{T: "touch", FP: prev.Fingerprint, At: e.LastSeen})
		}
		s.events.Set(e.Fingerprint, e)
		s.sightings += e.Seen
		for _, t := range e.Tables {
			s.bump(s.tables, t, e, true)
		}
		if e.Class != "" {
			s.bump(s.classes, e.Class, e, true)
		}
		s.bump(s.pairs, PairKey(e.APIs[0], e.APIs[1]), e, true)
		return nil
	case "touch":
		e, ok := s.events.Get(rec.FP)
		if !ok {
			return fmt.Errorf("history: touch of unknown fingerprint %s", rec.FP)
		}
		e.Seen++
		if rec.At.After(e.LastSeen) {
			e.LastSeen = rec.At
		}
		s.sightings++
		for _, t := range e.Tables {
			s.bump(s.tables, t, e, false)
		}
		if e.Class != "" {
			s.bump(s.classes, e.Class, e, false)
		}
		s.bump(s.pairs, PairKey(e.APIs[0], e.APIs[1]), e, false)
		return nil
	default:
		return fmt.Errorf("history: unknown record type %q", rec.T)
	}
}

// bump maintains one rollup map for an applied record.
func (s *Store) bump(m *btree.Map[string, *Rollup], key string, e *Event, newEvent bool) {
	r, ok := m.Get(key)
	if !ok {
		r = &Rollup{Key: key, FirstSeen: e.FirstSeen, LastSeen: e.LastSeen}
		m.Set(key, r)
	}
	if newEvent {
		r.Events++
		r.Seen += e.Seen
	} else {
		r.Seen++
	}
	if e.FirstSeen.Before(r.FirstSeen) {
		r.FirstSeen = e.FirstSeen
	}
	if e.LastSeen.After(r.LastSeen) {
		r.LastSeen = e.LastSeen
	}
}

// normalize canonicalizes an incoming event: sorted unique tables and a
// fingerprint-keyed identity. Returns an error for an unusable event.
func normalize(e *Event) error {
	if e.Fingerprint == "" {
		return fmt.Errorf("history: event without fingerprint (APIs %v)", e.APIs)
	}
	seen := map[string]bool{}
	tables := e.Tables[:0]
	for _, t := range e.Tables {
		if t != "" && !seen[t] {
			seen[t] = true
			tables = append(tables, t)
		}
	}
	sort.Strings(tables)
	e.Tables = tables
	if e.Count <= 0 {
		e.Count = 1
	}
	return nil
}

// Ingest applies a batch of events idempotently by fingerprint: unknown
// fingerprints are appended as full events, known ones as touch
// records. One fsync per batch.
func (s *Store) Ingest(events []Event) (IngestSummary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now().UTC()
	sum := IngestSummary{Received: len(events)}
	batchFP := map[string]bool{}
	for i := range events {
		e := events[i] // copy: the stored pointer must not alias the caller's slice
		if err := normalize(&e); err != nil {
			return sum, err
		}
		var rec record
		if _, ok := s.events.Get(e.Fingerprint); ok || batchFP[e.Fingerprint] {
			rec = record{T: "touch", FP: e.Fingerprint, At: now}
			sum.Deduped++
		} else {
			e.FirstSeen, e.LastSeen = now, now
			e.Seen = 1
			rec = record{T: "event", E: &e}
			sum.Stored++
		}
		batchFP[e.Fingerprint] = true
		raw, err := json.Marshal(rec)
		if err != nil {
			return sum, err
		}
		if err := s.log.Append(raw); err != nil {
			return sum, err
		}
		if err := s.apply(rec); err != nil {
			return sum, err
		}
	}
	sum.Events = s.events.Len()
	return sum, s.log.Sync()
}

// EventQuery filters Events. Zero values match everything.
type EventQuery struct {
	Table string    // involves this table
	Class string    // exact anti-pattern class
	API   string    // either side of the pair
	Since time.Time // last seen at or after
	Limit int       // 0 = unlimited
}

func (q EventQuery) match(e *Event) bool {
	if q.Table != "" {
		ok := false
		for _, t := range e.Tables {
			if t == q.Table {
				ok = true
			}
		}
		if !ok {
			return false
		}
	}
	if q.Class != "" && e.Class != q.Class {
		return false
	}
	if q.API != "" && e.APIs[0] != q.API && e.APIs[1] != q.API {
		return false
	}
	if !q.Since.IsZero() && e.LastSeen.Before(q.Since) {
		return false
	}
	return true
}

// Events returns matching events in fingerprint order (deterministic
// across processes and reloads). The returned events are copies.
func (s *Store) Events(q EventQuery) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Event
	s.events.AscendAll(func(_ string, e *Event) bool {
		if q.match(e) {
			out = append(out, *e)
		}
		return q.Limit == 0 || len(out) < q.Limit
	})
	return out
}

// PatternSummary is the pre-computed rollup view: the store's totals
// and the per-table / per-class / per-API-pair aggregates, each in key
// order.
type PatternSummary struct {
	Events    int      `json:"events"`    // distinct fingerprints
	Sightings int      `json:"sightings"` // events + touches ever applied
	Tables    []Rollup `json:"tables"`
	Classes   []Rollup `json:"classes"`
	Pairs     []Rollup `json:"pairs"`
}

func collect(m *btree.Map[string, *Rollup]) []Rollup {
	out := make([]Rollup, 0, m.Len())
	m.AscendAll(func(_ string, r *Rollup) bool {
		out = append(out, *r)
		return true
	})
	return out
}

// Patterns returns the rollup summary.
func (s *Store) Patterns() PatternSummary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return PatternSummary{
		Events:    s.events.Len(),
		Sightings: s.sightings,
		Tables:    collect(s.tables),
		Classes:   collect(s.classes),
		Pairs:     collect(s.pairs),
	}
}

// TableCount is one table's windowed trend entry.
type TableCount struct {
	Table  string `json:"table"`
	Events int    `json:"events"` // distinct fingerprints last seen in the window
	Seen   int    `json:"seen"`   // their total sighting counts
}

// TableCounts answers "which tables deadlock most?" over a trailing
// window: events last seen at or after since (zero = all history),
// grouped per table, most-deadlocking first (ties by name). This scans
// the event list — unlike Patterns, a window cannot be pre-aggregated.
func (s *Store) TableCounts(since time.Time) []TableCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	acc := map[string]*TableCount{}
	s.events.AscendAll(func(_ string, e *Event) bool {
		if !since.IsZero() && e.LastSeen.Before(since) {
			return true
		}
		for _, t := range e.Tables {
			c, ok := acc[t]
			if !ok {
				c = &TableCount{Table: t}
				acc[t] = c
			}
			c.Events++
			c.Seen += e.Seen
		}
		return true
	})
	out := make([]TableCount, 0, len(acc))
	for _, c := range acc {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		return out[i].Table < out[j].Table
	})
	return out
}

// Len returns the number of stored events (distinct fingerprints).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.events.Len()
}

// Sightings returns the total number of applied sightings.
func (s *Store) Sightings() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sightings
}

// Path returns the backing log file's path.
func (s *Store) Path() string { return s.log.Path() }

// Size returns the backing log's on-disk size in bytes.
func (s *Store) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.log.Size()
}

// Close syncs and closes the backing log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}

// FromResult converts a diagnosis result into history events, one per
// distinct fingerprint: duplicate-fingerprint reports fold together
// (their folded-cycle counts sum). classify maps each deadlock onto the
// app's catalog ("" = unclassified, stored classless); app names the
// workload. Events carry no timestamps — the store stamps them at
// ingest.
func FromResult(res *core.Result, app string, classify func(*core.Deadlock) string) []Event {
	byFP := map[string]int{}
	var out []Event
	for _, d := range res.Deadlocks {
		fp := d.Fingerprint()
		if i, ok := byFP[fp]; ok {
			out[i].Count += d.Count
			continue
		}
		var class string
		if classify != nil {
			class = classify(d)
		}
		c := d.Cycle
		e := Event{
			Fingerprint: fp,
			App:         app,
			Class:       class,
			APIs:        d.APIs,
			Tables:      []string{c.Table1, c.Table2},
			Count:       d.Count,
		}
		if c.S1a != nil && c.S1b != nil {
			e.Txns[0] = TxnLock{
				API:      d.APIs[0],
				HoldsSQL: c.S1a.SQL, HoldsAt: locOf(c.S1a),
				WaitsSQL: c.S1b.SQL, WaitsAt: locOf(c.S1b),
			}
		}
		if c.S2a != nil && c.S2b != nil {
			e.Txns[1] = TxnLock{
				API:      d.APIs[1],
				HoldsSQL: c.S2a.SQL, HoldsAt: locOf(c.S2a),
				WaitsSQL: c.S2b.SQL, WaitsAt: locOf(c.S2b),
			}
		}
		byFP[fp] = len(out)
		out = append(out, e)
	}
	return out
}

// locOf renders a statement's triggering code location as file:line
// ("" when the trace carried no stack).
func locOf(s *trace.Stmt) string {
	top := s.Trigger.Top()
	if top.File == "" {
		return ""
	}
	return fmt.Sprintf("%s:%d", top.File, top.Line)
}
