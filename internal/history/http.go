package history

// The history store's HTTP surface, mounted on the internal/obs debug
// server by `weseer serve`: POST /ingest accepts trace batches (the
// weseer collect JSON format; the server re-analyzes them through the
// existing pipeline) or pre-analyzed report JSON (the weseer analyze
// -json format), and the /history/* endpoints answer trend and pattern
// queries in JSON or text. Ingest and store metrics land in the same
// Prometheus registry the debug server already exposes on /metrics.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"weseer/internal/obs"
	"weseer/internal/trace"
)

// maxIngestBody bounds one ingest request body (trace batches for a
// whole app corpus are a few MB; this is a DoS guard, not a quota).
const maxIngestBody = 256 << 20

// AnalyzeFunc re-analyzes an ingested trace batch for the app named by
// the request (or the server default when empty) and returns the
// resulting history events. Implemented by cmd/weseer's serve wiring
// over apps.Open + core.AnalyzeContext; nil disables trace ingest.
type AnalyzeFunc func(ctx context.Context, app string, traces []*trace.Trace) ([]Event, error)

// IngestLatencyBuckets are the ingest-latency histogram bounds in
// seconds. Ingest includes a full incremental re-analysis of the trace
// batch, so the range runs from sub-millisecond (report ingest) to tens
// of seconds (large corpora).
var IngestLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Metrics are the history service's instruments, registered in the
// debug server's Prometheus registry.
type Metrics struct {
	Events        *obs.Gauge     // live store size (distinct fingerprints)
	Stored        *obs.Counter   // new events appended across ingests
	DedupHits     *obs.Counter   // re-sighted fingerprints across ingests
	Batches       *obs.Counter   // ingest requests accepted
	IngestErrors  *obs.Counter   // ingest requests rejected
	IngestLatency *obs.Histogram // wall time per ingest request (seconds)
}

// RegisterMetrics registers the history instruments on reg (nil-safe:
// a nil registry yields inert metrics).
func RegisterMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return &Metrics{}
	}
	return &Metrics{
		Events:        reg.Gauge("weseer_history_events", "deadlock events in the history store (distinct fingerprints)"),
		Stored:        reg.Counter("weseer_history_ingest_stored_total", "new deadlock events appended by ingest"),
		DedupHits:     reg.Counter("weseer_history_ingest_dedup_total", "ingested deadlocks deduplicated against stored fingerprints"),
		Batches:       reg.Counter("weseer_history_ingest_batches_total", "ingest requests accepted"),
		IngestErrors:  reg.Counter("weseer_history_ingest_errors_total", "ingest requests rejected"),
		IngestLatency: reg.Histogram("weseer_history_ingest_seconds", "per-request ingest wall time, analysis included", IngestLatencyBuckets),
	}
}

// Server serves one Store over HTTP.
type Server struct {
	Store   *Store
	Analyze AnalyzeFunc // nil: only format=report and format=events ingest
	Metrics *Metrics    // nil: no instrumentation
	// Timeout bounds one ingest request's analysis (0 = none).
	Timeout time.Duration
}

// Routes returns the endpoint set to mount on the obs debug server.
func (s *Server) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "/ingest", Handler: http.HandlerFunc(s.handleIngest)},
		{Pattern: "/history/events", Handler: http.HandlerFunc(s.handleEvents)},
		{Pattern: "/history/patterns", Handler: http.HandlerFunc(s.handlePatterns)},
		{Pattern: "/history/tables", Handler: http.HandlerFunc(s.handleTables)},
	}
}

func (s *Server) metrics() *Metrics {
	if s.Metrics == nil {
		return &Metrics{}
	}
	return s.Metrics
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", obs.ContentTypeJSON)
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", obs.ContentTypeJSON)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// reportJSON is the subset of the `weseer analyze -json` report the
// ingest endpoint consumes (format=report): per-deadlock fingerprint,
// catalog class, APIs, tables, and fold count.
type reportJSON struct {
	Deadlocks []struct {
		Fingerprint string    `json:"fingerprint"`
		Catalog     string    `json:"catalog"`
		APIs        [2]string `json:"apis"`
		Tables      []string  `json:"tables"`
		Count       int       `json:"count"`
	} `json:"deadlocks"`
}

// handleIngest is POST /ingest?format=traces|report|events[&app=NAME]:
// traces are re-analyzed through the diagnosis pipeline, reports and
// raw events are converted directly; either way the resulting events
// are applied to the store idempotently by fingerprint and the
// IngestSummary is returned as JSON.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	m := s.metrics()
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	fail := func(code int, format string, args ...any) {
		m.IngestErrors.Inc()
		httpError(w, code, format, args...)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBody))
	if err != nil {
		fail(http.StatusBadRequest, "read body: %v", err)
		return
	}
	app := r.URL.Query().Get("app")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "traces"
	}

	var events []Event
	switch format {
	case "traces":
		if s.Analyze == nil {
			fail(http.StatusNotImplemented, "trace ingest is not configured (no analyzer)")
			return
		}
		var traces []*trace.Trace
		if err := json.Unmarshal(body, &traces); err != nil {
			fail(http.StatusBadRequest, "decode traces: %v", err)
			return
		}
		ctx := r.Context()
		if s.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.Timeout)
			defer cancel()
		}
		events, err = s.Analyze(ctx, app, traces)
		if err != nil {
			fail(http.StatusUnprocessableEntity, "analyze: %v", err)
			return
		}
	case "report":
		var rep reportJSON
		if err := json.Unmarshal(body, &rep); err != nil {
			fail(http.StatusBadRequest, "decode report: %v", err)
			return
		}
		for _, d := range rep.Deadlocks {
			events = append(events, Event{
				Fingerprint: d.Fingerprint,
				App:         app,
				Class:       d.Catalog,
				APIs:        d.APIs,
				Tables:      d.Tables,
				Count:       d.Count,
			})
		}
	case "events":
		if err := json.Unmarshal(body, &events); err != nil {
			fail(http.StatusBadRequest, "decode events: %v", err)
			return
		}
	default:
		fail(http.StatusBadRequest, "unknown format %q (traces|report|events)", format)
		return
	}

	sum, err := s.Store.Ingest(events)
	if err != nil {
		fail(http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	m.Batches.Inc()
	m.Stored.Add(int64(sum.Stored))
	m.DedupHits.Add(int64(sum.Deduped))
	m.Events.Set(int64(sum.Events))
	m.IngestLatency.Observe(time.Since(start).Seconds())
	writeJSON(w, sum)
}

// sinceParam resolves ?window=DUR (trailing window ending now) into an
// absolute cutoff; the zero time means all of history.
func (s *Server) sinceParam(r *http.Request) (time.Time, error) {
	win := r.URL.Query().Get("window")
	if win == "" {
		return time.Time{}, nil
	}
	d, err := time.ParseDuration(win)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad window %q: %v", win, err)
	}
	return s.Store.now().UTC().Add(-d), nil
}

func limitParam(r *http.Request) (int, error) {
	l := r.URL.Query().Get("limit")
	if l == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(l)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q", l)
	}
	return n, nil
}

func wantText(r *http.Request) bool { return r.URL.Query().Get("format") == "text" }

// handleEvents is GET /history/events[?table=&class=&api=&window=&limit=&format=text].
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since, err := s.sinceParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := limitParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := EventQuery{
		Table: r.URL.Query().Get("table"),
		Class: r.URL.Query().Get("class"),
		API:   r.URL.Query().Get("api"),
		Since: since,
		Limit: limit,
	}
	events := s.Store.Events(q)
	if wantText(r) {
		w.Header().Set("Content-Type", obs.ContentTypeText)
		fmt.Fprintf(w, "%d event(s)\n", len(events))
		for _, e := range events {
			fmt.Fprint(w, renderEvent(&e))
		}
		return
	}
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, events)
}

// handlePatterns is GET /history/patterns[?format=text].
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	p := s.Store.Patterns()
	if wantText(r) {
		w.Header().Set("Content-Type", obs.ContentTypeText)
		fmt.Fprint(w, renderPatterns(p))
		return
	}
	writeJSON(w, p)
}

// handleTables is GET /history/tables[?window=24h&format=text].
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	since, err := s.sinceParam(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	counts := s.Store.TableCounts(since)
	if wantText(r) {
		w.Header().Set("Content-Type", obs.ContentTypeText)
		for _, c := range counts {
			fmt.Fprintf(w, "%-24s %4d event(s) %5d sighting(s)\n", c.Table, c.Events, c.Seen)
		}
		if len(counts) == 0 {
			fmt.Fprintln(w, "no events in window")
		}
		return
	}
	if counts == nil {
		counts = []TableCount{}
	}
	writeJSON(w, counts)
}

// renderEvent formats one event for the text surface.
func renderEvent(e *Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %-6s %s [%s]  seen %d (first %s, last %s)\n",
		e.Fingerprint, orDash(e.Class), PairKey(e.APIs[0], e.APIs[1]),
		strings.Join(e.Tables, ", "), e.Seen,
		e.FirstSeen.Format(time.RFC3339), e.LastSeen.Format(time.RFC3339))
	for _, t := range e.Txns {
		if t.HoldsSQL == "" && t.WaitsSQL == "" {
			continue
		}
		fmt.Fprintf(&b, "    %s holds %s (%s) waits %s (%s)\n",
			t.API, t.HoldsSQL, orDash(t.HoldsAt), t.WaitsSQL, orDash(t.WaitsAt))
	}
	return b.String()
}

// renderPatterns formats the rollup summary for the text surface.
func renderPatterns(p PatternSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d event(s), %d sighting(s)\n", p.Events, p.Sightings)
	section := func(name string, rs []Rollup) {
		if len(rs) == 0 {
			return
		}
		fmt.Fprintf(&b, "by %s:\n", name)
		for _, r := range rs {
			fmt.Fprintf(&b, "  %-32s %4d event(s) %5d sighting(s)  last %s\n",
				r.Key, r.Events, r.Seen, r.LastSeen.Format(time.RFC3339))
		}
	}
	section("class", p.Classes)
	section("table", p.Tables)
	section("API pair", p.Pairs)
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
