package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fixedClock returns a deterministic advancing clock so ingests get
// distinct, reproducible timestamps.
func fixedClock() func() time.Time {
	t := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func testEvents() []Event {
	return []Event{
		{
			Fingerprint: "00000000000000a1",
			App:         "broadleaf", Class: "d1",
			APIs:   [2]string{"Checkout", "UpdateSku"},
			Tables: []string{"Sku", "Order", "Sku"}, // dup + unsorted on purpose
			Txns: [2]TxnLock{
				{API: "Checkout", HoldsSQL: "UPDATE Sku SET qty = ?", HoldsAt: "cart.go:42",
					WaitsSQL: "UPDATE Order SET total = ?", WaitsAt: "cart.go:51"},
				{API: "UpdateSku", HoldsSQL: "UPDATE Order SET total = ?", HoldsAt: "admin.go:10",
					WaitsSQL: "UPDATE Sku SET qty = ?", WaitsAt: "admin.go:12"},
			},
			Count: 4,
		},
		{
			Fingerprint: "00000000000000b2",
			App:         "broadleaf", Class: "d2",
			APIs:   [2]string{"Checkout", "Checkout"},
			Tables: []string{"Order", "Customer"},
			Count:  1,
		},
		{
			Fingerprint: "00000000000000c3",
			App:         "shopizer", Class: "d14",
			APIs:   [2]string{"AddProduct", "Checkout"},
			Tables: []string{"Product"},
			Count:  2,
		},
	}
}

// snapshot serializes everything queryable so before/after states can
// be compared byte for byte.
func snapshot(t *testing.T, s *Store) []byte {
	t.Helper()
	out := struct {
		Events   []Event        `json:"events"`
		Patterns PatternSummary `json:"patterns"`
		Tables   []TableCount   `json:"tables"`
	}{s.Events(EventQuery{}), s.Patterns(), s.TableCounts(time.Time{})}
	raw, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestStoreDurability is the satellite's reload pin: write events,
// close, reopen — the event list and every rollup must be
// byte-identical to the pre-close state.
func TestStoreDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.wal")
	s, err := Open(path, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Ingest(testEvents())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stored != 3 || sum.Deduped != 0 || sum.Events != 3 {
		t.Fatalf("first ingest: %+v", sum)
	}
	// A second ingest of the same corpus must be pure dedup.
	sum, err = s.Ingest(testEvents())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stored != 0 || sum.Deduped != 3 || sum.Events != 3 {
		t.Fatalf("re-ingest not idempotent: %+v", sum)
	}
	before := snapshot(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after := snapshot(t, s2)
	if string(before) != string(after) {
		t.Fatalf("reloaded state differs:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if s2.Len() != 3 || s2.Sightings() != 6 {
		t.Fatalf("reloaded store: %d events, %d sightings", s2.Len(), s2.Sightings())
	}
}

// TestStoreTornTailRecovery truncates the log mid-record: the store
// must reopen with the intact prefix, and ingest must work afterwards.
func TestStoreTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.wal")
	s, err := Open(path, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(testEvents()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final record's payload.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("after torn tail: %d events, want 2", s2.Len())
	}
	// The dropped event must be ingestable again (its record is gone).
	sum, err := s2.Ingest(testEvents())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stored != 1 || sum.Deduped != 2 {
		t.Fatalf("post-recovery ingest: %+v", sum)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// And the repaired log must reload cleanly.
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 3 {
		t.Fatalf("after repair: %d events, want 3", s3.Len())
	}
}

func TestRollupsAndQueries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.wal")
	s, err := Open(path, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(testEvents()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(testEvents()[:1]); err != nil { // re-sight the first event
		t.Fatal(err)
	}

	p := s.Patterns()
	if p.Events != 3 || p.Sightings != 4 {
		t.Fatalf("patterns totals: %+v", p)
	}
	classes := map[string]Rollup{}
	for _, r := range p.Classes {
		classes[r.Key] = r
	}
	if r := classes["d1"]; r.Events != 1 || r.Seen != 2 {
		t.Errorf("class d1 rollup: %+v", r)
	}
	if r := classes["d14"]; r.Events != 1 || r.Seen != 1 {
		t.Errorf("class d14 rollup: %+v", r)
	}
	tables := map[string]Rollup{}
	for _, r := range p.Tables {
		tables[r.Key] = r
	}
	if r := tables["Order"]; r.Events != 2 || r.Seen != 3 {
		t.Errorf("table Order rollup: %+v", r)
	}
	if r := tables["Sku"]; r.Events != 1 || r.Seen != 2 {
		t.Errorf("table Sku rollup (dup table must count once): %+v", r)
	}
	pairs := map[string]Rollup{}
	for _, r := range p.Pairs {
		pairs[r.Key] = r
	}
	if r := pairs[PairKey("UpdateSku", "Checkout")]; r.Events != 1 {
		t.Errorf("pair rollup: %+v", r)
	}

	// Event filters.
	if got := len(s.Events(EventQuery{Table: "Order"})); got != 2 {
		t.Errorf("Events(Table=Order) = %d, want 2", got)
	}
	if got := len(s.Events(EventQuery{Class: "d14"})); got != 1 {
		t.Errorf("Events(Class=d14) = %d, want 1", got)
	}
	if got := len(s.Events(EventQuery{API: "Checkout"})); got != 3 {
		t.Errorf("Events(API=Checkout) = %d, want 3", got)
	}
	if got := len(s.Events(EventQuery{Limit: 2})); got != 2 {
		t.Errorf("Events(Limit=2) = %d, want 2", got)
	}

	// Windowed table trend: only the re-sighted event falls in a window
	// starting after the first batch.
	all := s.TableCounts(time.Time{})
	if len(all) == 0 || all[0].Table != "Order" {
		t.Errorf("TableCounts order: %+v", all)
	}
	ev := s.Events(EventQuery{Class: "d1"})[0]
	recent := s.TableCounts(ev.LastSeen)
	names := map[string]bool{}
	for _, c := range recent {
		names[c.Table] = true
	}
	if !names["Sku"] || names["Product"] {
		t.Errorf("windowed TableCounts: %+v", recent)
	}
}

func TestIngestRejectsFingerprintless(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "history.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest([]Event{{APIs: [2]string{"A", "B"}}}); err == nil {
		t.Fatal("ingest accepted an event without a fingerprint")
	}
}

// TestBatchInternalDedup: the same fingerprint twice in one batch
// stores once and touches once.
func TestBatchInternalDedup(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "history.wal"), WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ev := testEvents()[0]
	sum, err := s.Ingest([]Event{ev, ev})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stored != 1 || sum.Deduped != 1 || sum.Events != 1 {
		t.Fatalf("batch dedup: %+v", sum)
	}
}

// TestManyEventsReload exercises the B-tree indexes past node-split
// depth and pins replay fidelity at size.
func TestManyEventsReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.wal")
	s, err := Open(path, WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for i := 0; i < 500; i++ {
		events = append(events, Event{
			Fingerprint: fmt.Sprintf("%016x", i),
			Class:       fmt.Sprintf("f%d", i%11+1),
			APIs:        [2]string{fmt.Sprintf("API%d", i%17), fmt.Sprintf("API%d", i%13)},
			Tables:      []string{fmt.Sprintf("T%d", i%29), fmt.Sprintf("T%d", i%7)},
		})
	}
	if _, err := s.Ingest(events); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(before) != string(snapshot(t, s2)) {
		t.Fatal("500-event reload diverged")
	}
	if s2.Len() != 500 {
		t.Fatalf("len = %d", s2.Len())
	}
}
