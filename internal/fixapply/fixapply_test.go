package fixapply_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"weseer/internal/appgen"
	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/fixapply"
	"weseer/internal/minidb"
	"weseer/internal/trace"
)

// genClasses are the planted anti-pattern classes the corpus generator
// knows how to fix; the property sweep rotates through them.
var genClasses = []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11"}

// upsertClasses rewrite statements (SELECT+write → UPSERT), so the
// statement multiset legitimately changes; the preserved property is
// the net database effect instead.
var upsertClasses = map[string]bool{"f1": true, "f2": true}

func analyzeGen(t *testing.T, a *appgen.App) *core.Result {
	t.Helper()
	traces, err := appkit.Collect(a.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewAnalyzer(a.Schema(), core.WithPrescreen()).AnalyzeContext(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// stmtMultiset summarizes a template's statements as a sorted
// "<verb> <tables>" count map, keyed by API name. Reorders, probe-read
// extraction, and flush barriers move statements between transactions
// and sessions but must not add, drop, or retarget any read or write.
func stmtMultiset(traces []*trace.Trace) map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, tr := range traces {
		m := out[tr.API]
		if m == nil {
			m = map[string]int{}
			out[tr.API] = m
		}
		for _, txn := range tr.Txns {
			for _, s := range txn.Stmts {
				verb := strings.ToUpper(strings.Fields(s.SQL)[0])
				tabs := s.Parsed.Tables()
				sort.Strings(tabs)
				m[verb+" "+strings.Join(tabs, ",")]++
			}
		}
	}
	return out
}

// rowsSnapshot renders every table's committed rows for net-effect
// comparison.
func rowsSnapshot(a *appgen.App) string {
	var b strings.Builder
	for _, tbl := range a.Schema().Tables() {
		fmt.Fprintf(&b, "%s: %v\n", tbl.Name, a.DB().TableRows(tbl.Name))
	}
	return b.String()
}

// runConcrete executes every unit test concretely (the fixture inputs)
// so the database reaches the post-suite committed state.
func runConcrete(t *testing.T, a *appgen.App) {
	t.Helper()
	tests := a.UnitTests()
	if err := appkit.RunPrefix(tests, len(tests)); err != nil {
		t.Fatalf("%s: concrete run: %v", a.Name(), err)
	}
}

// TestFixPropertiesOverCorpora is the fixapply property sweep: for 220
// seeded generated corpora (each planting one fixable class), applying
// the planned fix must
//
//  1. preserve the workload — the fixed template keeps the unfixed
//     template's read/write statement multiset (reorder-family fixes)
//     or its net database effect (UPSERT rewrites), and
//  2. shrink the diagnosis — re-analysis of the fixed corpus reports a
//     strictly smaller deadlock set that excludes every fingerprint
//     the fix claimed to eliminate.
func TestFixPropertiesOverCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes 220 corpora twice; skip in -short")
	}
	planned := 0
	for seed := 1; seed <= 220; seed++ {
		class := genClasses[seed%len(genClasses)]
		spec := fmt.Sprintf("%d,templates=2,modules=1,tables=2,rows=4,classes=%s:1", seed, class)
		app, err := appgen.FromSpec(spec, minidb.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res := analyzeGen(t, app)
		plan := fixapply.Plan(app, res)
		var fix *fixapply.Fix
		for i := range plan {
			if plan[i].Name == class {
				fix = &plan[i]
			}
		}
		if fix == nil {
			// The planted instance did not produce a diagnosable cycle at
			// this seed (e.g. the planted templates never pair); nothing
			// to verify.
			continue
		}
		planned++

		fixed, err := app.Refix(class)
		if err != nil {
			t.Fatalf("seed %d: Refix(%s): %v", seed, class, err)
		}
		fres := analyzeGen(t, fixed)

		// Property 2: strictly smaller, targeted fingerprints gone.
		if len(fres.Deadlocks) >= len(res.Deadlocks) {
			t.Errorf("seed %d (%s): fixed corpus reports %d deadlocks, unfixed %d — not strictly smaller",
				seed, class, len(fres.Deadlocks), len(res.Deadlocks))
		}
		remaining := map[string]bool{}
		for _, d := range fres.Deadlocks {
			remaining[d.Fingerprint()] = true
		}
		for _, fp := range fix.Fingerprints {
			if remaining[fp] {
				t.Errorf("seed %d (%s): targeted fingerprint %s survives the fix", seed, class, fp)
			}
		}

		// Property 1: workload preserved.
		if upsertClasses[class] {
			base, err := app.Refix() // fresh DBs for both variants
			if err != nil {
				t.Fatal(err)
			}
			refixed, err := app.Refix(class)
			if err != nil {
				t.Fatal(err)
			}
			runConcrete(t, base)
			runConcrete(t, refixed)
			if got, want := rowsSnapshot(refixed), rowsSnapshot(base); got != want {
				t.Errorf("seed %d (%s): net effect differs after UPSERT rewrite:\nunfixed:\n%swant fixed identical, got:\n%s",
					seed, class, want, got)
			}
		} else {
			traces, err := appkit.Collect(app.UnitTests(), concolic.ModeConcolic)
			if err != nil {
				t.Fatal(err)
			}
			ftraces, err := appkit.Collect(fixed.UnitTests(), concolic.ModeConcolic)
			if err != nil {
				t.Fatal(err)
			}
			got, want := stmtMultiset(ftraces), stmtMultiset(traces)
			for api, wm := range want {
				gm := got[api]
				for k, n := range wm {
					if gm[k] != n {
						t.Errorf("seed %d (%s): API %s statement %q: fixed count %d, unfixed %d",
							seed, class, api, k, gm[k], n)
					}
				}
				for k, n := range gm {
					if wm[k] == 0 && n > 0 {
						t.Errorf("seed %d (%s): API %s gained statement %q ×%d", seed, class, api, k, n)
					}
				}
			}
		}
	}
	t.Logf("planned fixes verified on %d/220 corpora", planned)
	if planned < 150 {
		t.Errorf("only %d/220 corpora produced a diagnosable planted cycle — the sweep lost its teeth", planned)
	}
}
