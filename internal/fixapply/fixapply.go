// Package fixapply closes the fix-verification loop: it turns a
// diagnosis report (core.Result) into a ranked plan of mechanically
// applicable fixes — which named fix to enable, which transaction
// templates it rewrites, which edit family the rewrite belongs to
// (acquisition reorder, read-then-write → UPSERT, flush-barrier
// insertion, probe-read extraction), and exactly which deadlock
// fingerprints it must eliminate. The plan is pure data: applying a fix
// means reopening the application through the registry with the fix
// enabled (apps.Options.Apply), so the fixed app still satisfies the
// full apps.App surface and can be re-collected, re-analyzed, and
// driven under load. weseer-bench -exp fixgain is the consumer that
// measures the before/after throughput win; the re-analysis gate
// (Fix.Fingerprints absent afterwards) is what turns a static
// suggestion into a verified claim.
package fixapply

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/core"
	"weseer/internal/schema"
)

// App is the surface a fix plan needs from an application. It is a
// structural subset of apps.App (declared here so fixapply can be
// imported by the generator packages below the registry without an
// import cycle).
type App interface {
	Name() string
	Schema() *schema.Schema
	Classify(d *core.Deadlock) string
}

// Cataloged is optionally implemented by apps whose Classify output
// refers to a published deadlock catalog (the model apps' Table II
// entries). The catalog resolves a classified id ("d2") to the named
// fix that removes it ("f2: Use MySQL UPSERT mechanism"). Apps whose
// classifier already returns fix-class names (generated corpora return
// "f1".."f11") need no catalog.
type Cataloged interface {
	Catalog() []appkit.Expectation
}

// Fix is one entry of a ranked fix plan.
type Fix struct {
	// Rank is the 1-based plan position (most diagnosed reports first).
	Rank int `json:"rank"`
	// Name is the fix the application must enable ("f1".."f11") — the
	// value to pass in apps.Options.Apply.
	Name string `json:"name"`
	// Desc is the catalog's fix description ("" without a catalog).
	Desc string `json:"desc,omitempty"`
	// Targets are the classified catalog entries this fix removes
	// (["d3","d4"] for f3; the class itself for generated corpora).
	Targets []string `json:"targets"`
	// Kinds are the applicable-edit families derived from the diagnosed
	// cycle shapes (core.EditHints), rendered as strings for artifacts.
	Kinds []string `json:"kinds"`
	// APIs are the transaction templates involved in the targeted
	// cycles — the templates the fix rewrites.
	APIs []string `json:"apis"`
	// Tables are the conflict tables of the targeted cycles.
	Tables []string `json:"tables"`
	// Fingerprints are the stable deadlock fingerprints this fix must
	// eliminate; re-analysis of the fixed app gates on their absence.
	Fingerprints []string `json:"fingerprints"`
	// Reports counts the diagnosed reports folded into this fix.
	Reports int `json:"reports"`
	// SuggestionRank is the rank of the best canonical-order reorder
	// suggestion whose violating sites lie in this fix's templates
	// (0 when no suggestion backs the fix — not every edit family is a
	// lock-order inversion).
	SuggestionRank int `json:"suggestion_rank,omitempty"`
}

var fixNameRe = regexp.MustCompile(`^f(\d+)$`)

// Plan builds the ranked fix plan for a diagnosis of app. Deadlocks
// whose classification is empty, "extra", or a false-positive class
// ("fp-*") have no applicable fix and are skipped. The plan is
// deterministic: report order is already canonical, and every slice is
// sorted.
func Plan(app App, res *core.Result) []Fix {
	catalog := map[string]appkit.Expectation{}
	if c, ok := app.(Cataloged); ok {
		for _, e := range c.Catalog() {
			catalog[e.ID] = e
		}
	}
	type group struct {
		fix          Fix
		targets      map[string]bool
		apis         map[string]bool
		tables       map[string]bool
		fingerprints map[string]bool
		kinds        map[core.EditHint]bool
	}
	groups := map[string]*group{}
	scm := app.Schema()
	for _, d := range res.Deadlocks {
		cl := app.Classify(d)
		name, desc := fixFor(cl, catalog)
		if name == "" {
			continue
		}
		g := groups[name]
		if g == nil {
			g = &group{
				fix:          Fix{Name: name, Desc: desc},
				targets:      map[string]bool{},
				apis:         map[string]bool{},
				tables:       map[string]bool{},
				fingerprints: map[string]bool{},
				kinds:        map[core.EditHint]bool{},
			}
			groups[name] = g
		}
		g.targets[cl] = true
		g.apis[d.APIs[0]] = true
		g.apis[d.APIs[1]] = true
		g.tables[d.Cycle.Table1] = true
		g.tables[d.Cycle.Table2] = true
		g.fingerprints[d.Fingerprint()] = true
		for _, h := range d.EditHints(scm) {
			g.kinds[h] = true
		}
		g.fix.Reports++
	}

	out := make([]Fix, 0, len(groups))
	for _, g := range groups {
		f := g.fix
		f.Targets = sortedKeys(g.targets)
		f.APIs = sortedKeys(g.apis)
		f.Tables = sortedKeys(g.tables)
		f.Fingerprints = sortedKeys(g.fingerprints)
		for h := core.HintReorder; h <= core.HintProbeRead; h++ {
			if g.kinds[h] {
				f.Kinds = append(f.Kinds, h.String())
			}
		}
		f.SuggestionRank = suggestionRank(res, g.apis)
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reports != out[j].Reports {
			return out[i].Reports > out[j].Reports
		}
		if a, b := fixOrd(out[i].Name), fixOrd(out[j].Name); a != b {
			return a < b
		}
		return out[i].Name < out[j].Name
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// fixFor resolves one classification to (fix name, description): via the
// catalog when the id is cataloged, directly when the classifier already
// names a fix class, and ("", "") when no fix applies.
func fixFor(cl string, catalog map[string]appkit.Expectation) (string, string) {
	if cl == "" || cl == "extra" || strings.HasPrefix(cl, "fp-") {
		return "", ""
	}
	if e, ok := catalog[cl]; ok {
		name, desc, _ := strings.Cut(e.Fix, ":")
		return strings.TrimSpace(name), strings.TrimSpace(desc)
	}
	if fixNameRe.MatchString(cl) {
		return cl, ""
	}
	return "", ""
}

// suggestionRank returns the best (lowest) canonical-order suggestion
// rank whose violating sites lie in apis, or 0 when none does.
func suggestionRank(res *core.Result, apis map[string]bool) int {
	if res.CanonicalOrder == nil {
		return 0
	}
	best := 0
	for _, s := range res.CanonicalOrder.Suggestions {
		for _, api := range s.TemplateAPIs() {
			if apis[api] && (best == 0 || s.Rank < best) {
				best = s.Rank
			}
		}
	}
	return best
}

func fixOrd(name string) int {
	m := fixNameRe.FindStringSubmatch(name)
	if m == nil {
		return 1 << 30
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render formats a fix plan for the text report ("" when empty).
func Render(fixes []Fix) string {
	if len(fixes) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fix plan (%d applicable fix(es), most reports first):\n", len(fixes))
	for _, f := range fixes {
		desc := ""
		if f.Desc != "" {
			desc = ": " + f.Desc
		}
		sugg := ""
		if f.SuggestionRank > 0 {
			sugg = fmt.Sprintf(", reorder suggestion #%d", f.SuggestionRank)
		}
		fmt.Fprintf(&b, "  #%d %s%s — %d report(s) over %s [%s]\n",
			f.Rank, f.Name, desc, f.Reports, strings.Join(f.Targets, ","),
			strings.Join(f.Kinds, "+"))
		fmt.Fprintf(&b, "      templates %s on tables %s%s\n",
			strings.Join(f.APIs, ", "), strings.Join(f.Tables, ", "), sugg)
		fmt.Fprintf(&b, "      eliminates fingerprints %s\n", strings.Join(f.Fingerprints, ", "))
	}
	return b.String()
}
