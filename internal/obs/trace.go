package obs

// Span tracing for the diagnosis pipeline. The tracer is deliberately
// minimal: spans are (name, logical thread, start, duration, attrs)
// tuples collected in memory and exported after — or during — a run as
// either Chrome trace_event JSON (load in chrome://tracing or Perfetto
// to see the phase-3 worker pool's actual parallelism and stragglers)
// or a flat JSONL event log for ad-hoc tooling.
//
// Telemetry is observational only: spans never feed back into the
// analysis, so the determinism guarantee of core.AnalyzeContext (byte-
// identical reports at any parallelism) is untouched. Span *timings*
// naturally vary between runs; span *names and counts* for a completed
// run do not.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value span attribute. Values are kept as strings so
// the exporters stay trivial; use the typed constructors.
type Attr struct {
	Key   string
	Value string
}

// String returns a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an int-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Int64 returns an int64-valued attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Bool returns a bool-valued attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: fmt.Sprintf("%t", v)} }

// Duration returns a duration-valued attribute.
func Duration(k string, v time.Duration) Attr { return Attr{Key: k, Value: v.String()} }

// SpanEvent is one completed span.
type SpanEvent struct {
	Name  string
	TID   int // logical thread: 0 = orchestrator, 1..N = phase-3 workers
	Start time.Duration
	Dur   time.Duration
	Attrs []Attr
}

// Tracer collects completed spans. All methods are safe for concurrent
// use; a nil *Tracer is a valid no-op sink.
type Tracer struct {
	base time.Time

	mu     sync.Mutex
	events []SpanEvent
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

// Span is a handle to one in-flight span; End completes it. The zero
// Span (from a nil tracer) is a valid no-op.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Duration
	attrs []Attr
}

// Start opens a span on logical thread tid. Attrs given at Start and at
// End are merged on the completed event.
func (t *Tracer) Start(tid int, name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, start: time.Since(t.base), attrs: attrs}
}

// End completes the span, appending any final attributes.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := time.Since(s.t.base)
	ev := SpanEvent{
		Name:  s.name,
		TID:   s.tid,
		Start: s.start,
		Dur:   now - s.start,
		Attrs: append(s.attrs, attrs...),
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// Events returns a copy of the completed spans, ordered by start time.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is one trace_event entry: a complete ("ph":"X") event with
// microsecond timestamps, as chrome://tracing and Perfetto consume.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // µs since trace start
	Dur  int64             `json:"dur"` // µs
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the spans as Chrome trace_event JSON
// ({"traceEvents": [...]}, "X" complete events). Thread 0 is the
// orchestrator; threads 1..N are the phase-3 workers, so the worker
// pool's real parallelism — and its stragglers — are visible directly
// on the timeline.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, ev := range t.Events() {
		ce := chromeEvent{
			Name: ev.Name, Cat: "weseer", Ph: "X",
			TS: ev.Start.Microseconds(), Dur: ev.Dur.Microseconds(),
			PID: 1, TID: ev.TID,
		}
		if len(ev.Attrs) > 0 {
			ce.Args = make(map[string]string, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// jsonlEvent is one flat event-log line.
type jsonlEvent struct {
	Name    string            `json:"name"`
	TID     int               `json:"tid"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL exports the spans as a flat JSONL event log: one JSON
// object per line, ordered by span start.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		je := jsonlEvent{
			Name: ev.Name, TID: ev.TID,
			StartUS: ev.Start.Microseconds(), DurUS: ev.Dur.Microseconds(),
		}
		if len(ev.Attrs) > 0 {
			je.Attrs = make(map[string]string, len(ev.Attrs))
			for _, a := range ev.Attrs {
				je.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}
