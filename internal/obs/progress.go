package obs

// Live run progress: which pipeline phase is executing, how many
// phase-3 chains have been discharged, and a naive ETA extrapolated
// from per-chain throughput so far. The debug endpoint serves
// Snapshot() as JSON; chain completion is monotonic by construction
// (Done only increments).

import (
	"sync"
	"time"
)

// Progress tracks one run's live state. Safe for concurrent use; a nil
// *Progress is a valid no-op sink.
type Progress struct {
	mu          sync.Mutex
	phase       string
	phaseStart  time.Time
	start       time.Time
	chainsTotal int64
	chainsDone  int64
}

// NewProgress returns a progress tracker whose clock starts now.
func NewProgress() *Progress {
	now := time.Now()
	return &Progress{phase: "idle", start: now, phaseStart: now}
}

// SetPhase records the currently executing pipeline phase.
func (p *Progress) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = phase
	p.phaseStart = time.Now()
	p.mu.Unlock()
}

// SetChains records the phase-3 chain total (known once enumeration
// finishes) and resets the done count for the discharge phase.
func (p *Progress) SetChains(total int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.chainsTotal = total
	p.chainsDone = 0
	p.mu.Unlock()
}

// ChainDone records one discharged chain. Strictly monotonic.
func (p *Progress) ChainDone() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.chainsDone++
	p.mu.Unlock()
}

// Snapshot is one consistent view of the run's progress.
type Snapshot struct {
	Phase       string `json:"phase"`
	ChainsDone  int64  `json:"chains_done"`
	ChainsTotal int64  `json:"chains_total"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	// PhaseElapsedMS is the time spent in the current phase.
	PhaseElapsedMS int64 `json:"phase_elapsed_ms"`
	// ETAMS extrapolates the remaining discharge time from per-chain
	// throughput so far; -1 when unknown (no chain finished yet, or the
	// run is not in a chain-discharging phase).
	ETAMS int64 `json:"eta_ms"`
}

// Snapshot returns the current progress.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Phase: "idle", ETAMS: -1}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	s := Snapshot{
		Phase:          p.phase,
		ChainsDone:     p.chainsDone,
		ChainsTotal:    p.chainsTotal,
		ElapsedMS:      now.Sub(p.start).Milliseconds(),
		PhaseElapsedMS: now.Sub(p.phaseStart).Milliseconds(),
		ETAMS:          -1,
	}
	if p.chainsDone > 0 && p.chainsTotal >= p.chainsDone {
		perChain := now.Sub(p.phaseStart) / time.Duration(p.chainsDone)
		s.ETAMS = (perChain * time.Duration(p.chainsTotal-p.chainsDone)).Milliseconds()
	}
	return s
}
