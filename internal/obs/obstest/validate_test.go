package obstest

import (
	"strings"
	"testing"
)

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "nope",
		"no traceEvents": `{"displayTimeUnit":"ms"}`,
		"bad phase":      `{"traceEvents":[{"name":"x","cat":"c","ph":"B","ts":1,"dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"missing ts":     `{"traceEvents":[{"name":"x","cat":"c","ph":"X","dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"negative dur":   `{"traceEvents":[{"name":"x","cat":"c","ph":"X","ts":1,"dur":-1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
		"unnamed event":  `{"traceEvents":[{"name":"","cat":"c","ph":"X","ts":1,"dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
	}
	for label, doc := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	good := `{"traceEvents":[{"name":"solve","cat":"weseer","ph":"X","ts":10,"dur":5,"pid":1,"tid":2,"args":{"status":"SAT"}}],"displayTimeUnit":"ms"}`
	sum, err := ValidateChromeTrace(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 1 || sum.Threads[2] != 1 || sum.NameCount["solve"] != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestValidateJSONL(t *testing.T) {
	good := `{"name":"a","tid":0,"start_us":1,"dur_us":2}` + "\n" +
		"\n" + // blank lines are fine
		`{"name":"b","tid":1,"start_us":3,"dur_us":0,"attrs":{"k":"v"}}` + "\n"
	n, err := ValidateJSONL(strings.NewReader(good))
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for label, doc := range map[string]string{
		"bad json":     "{",
		"missing name": `{"tid":0,"start_us":1,"dur_us":2}`,
		"missing dur":  `{"name":"a","start_us":1}`,
		"negative":     `{"name":"a","start_us":-1,"dur_us":2}`,
	} {
		if _, err := ValidateJSONL(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestValidatePrometheus(t *testing.T) {
	good := `# HELP weseer_x_total things
# TYPE weseer_x_total counter
weseer_x_total 3
# HELP weseer_lat_seconds latency
# TYPE weseer_lat_seconds histogram
weseer_lat_seconds_bucket{le="0.1"} 1
weseer_lat_seconds_bucket{le="+Inf"} 2
weseer_lat_seconds_sum 0.35
weseer_lat_seconds_count 2
`
	samples, err := ValidatePrometheus(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if samples["weseer_x_total"] != 3 {
		t.Fatalf("samples = %v", samples)
	}
	if samples[`weseer_lat_seconds_bucket{le="+Inf"}`] != 2 {
		t.Fatalf("samples = %v", samples)
	}

	for label, doc := range map[string]string{
		"no samples":    "# HELP a b\n# TYPE a counter\n",
		"untyped":       "weseer_x_total 3\n",
		"no help":       "# TYPE weseer_x_total counter\nweseer_x_total 3\n",
		"bad value":     "# HELP a b\n# TYPE a counter\na zero\n",
		"dup sample":    "# HELP a b\n# TYPE a counter\na 1\na 2\n",
		"unknown type":  "# HELP a b\n# TYPE a widget\na 1\n",
		"dangling line": "# HELP a b\n# TYPE a counter\na\n",
	} {
		if _, err := ValidatePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}
