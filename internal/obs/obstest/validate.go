// Package obstest validates WeSEER's exported telemetry artifacts: the
// Chrome trace_event JSON, the JSONL event log, and the Prometheus text
// exposition. verify.sh's trace-smoke step runs these (via the
// validatecmd helper) on a real workload's output, and the
// observability tests use them to assert exporter well-formedness
// without depending on external tooling.
package obstest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceSummary describes a validated Chrome trace.
type TraceSummary struct {
	Events    int
	Threads   map[int]int    // tid -> event count
	NameCount map[string]int // span name -> count
}

// ValidateChromeTrace parses r as Chrome trace_event JSON and checks
// the invariants WeSEER's exporter guarantees: object form with a
// traceEvents array, every event a complete ("ph":"X") event with
// non-negative ts/dur and a name.
func ValidateChromeTrace(r io.Reader) (*TraceSummary, error) {
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   *int64            `json:"ts"`
			Dur  *int64            `json:"dur"`
			PID  *int              `json:"pid"`
			TID  *int              `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: not valid trace_event JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	sum := &TraceSummary{Threads: map[int]int{}, NameCount: map[string]int{}}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("trace: event %d has no name", i)
		}
		if ev.Ph != "X" {
			return nil, fmt.Errorf("trace: event %d (%s): ph %q, want \"X\"", i, ev.Name, ev.Ph)
		}
		if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
			return nil, fmt.Errorf("trace: event %d (%s): missing ts/dur/pid/tid", i, ev.Name)
		}
		if *ev.TS < 0 || *ev.Dur < 0 {
			return nil, fmt.Errorf("trace: event %d (%s): negative ts/dur", i, ev.Name)
		}
		sum.Events++
		sum.Threads[*ev.TID]++
		sum.NameCount[ev.Name]++
	}
	return sum, nil
}

// ValidateJSONL checks that r is a well-formed JSONL event log: one
// JSON object per line with a name and non-negative start_us/dur_us.
// Returns the number of events.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev struct {
			Name    string `json:"name"`
			StartUS *int64 `json:"start_us"`
			DurUS   *int64 `json:"dur_us"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return n, fmt.Errorf("jsonl: line %d: %w", n+1, err)
		}
		if ev.Name == "" {
			return n, fmt.Errorf("jsonl: line %d: missing name", n+1)
		}
		if ev.StartUS == nil || ev.DurUS == nil || *ev.StartUS < 0 || *ev.DurUS < 0 {
			return n, fmt.Errorf("jsonl: line %d (%s): bad start_us/dur_us", n+1, ev.Name)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// ValidatePrometheus parses r as Prometheus text exposition format
// (version 0.0.4) and returns the sample values keyed by metric name
// (with label set, if any). It enforces the structural rules WeSEER's
// exporter follows: every sample preceded by # HELP and # TYPE lines
// for its family, numeric values, and no duplicate samples.
func ValidatePrometheus(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	samples := map[string]float64{}
	typed := map[string]string{} // family -> counter|gauge|histogram
	helped := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 1 || fields[0] == "" {
				return nil, fmt.Errorf("prom: line %d: malformed HELP", lineNo)
			}
			helped[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("prom: line %d: malformed TYPE", lineNo)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("prom: line %d: unknown type %q", lineNo, fields[1])
			}
			typed[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comment
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("prom: line %d: no value: %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: bad value %q: %w", lineNo, valStr, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return nil, fmt.Errorf("prom: line %d: unterminated label set: %q", lineNo, line)
			}
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if !helped[family] || typed[family] == "" {
			return nil, fmt.Errorf("prom: line %d: sample %q without HELP/TYPE for family %q", lineNo, name, family)
		}
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("prom: line %d: duplicate sample %q", lineNo, key)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("prom: no samples")
	}
	return samples, nil
}
