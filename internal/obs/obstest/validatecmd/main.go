// Command validatecmd validates WeSEER telemetry artifacts from the
// command line; verify.sh's trace-smoke step uses it to check that a
// real run's exported trace and metrics parse.
//
// Usage:
//
//	go run ./internal/obs/obstest/validatecmd -trace run.trace.json \
//	    -metrics run.metrics.prom [-events run.events.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"weseer/internal/obs/obstest"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	metricsPath := flag.String("metrics", "", "Prometheus text file to validate")
	eventsPath := flag.String("events", "", "JSONL event log to validate")
	flag.Parse()

	ok := false
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		sum, err := obstest.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tids := make([]int, 0, len(sum.Threads))
		for tid := range sum.Threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		fmt.Printf("trace ok: %d events across %d threads %v\n", sum.Events, len(tids), tids)
		ok = true
	}
	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			fatal(err)
		}
		samples, err := obstest.ValidatePrometheus(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics ok: %d samples\n", len(samples))
		ok = true
	}
	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			fatal(err)
		}
		n, err := obstest.ValidateJSONL(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("events ok: %d lines\n", n)
		ok = true
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "usage: validatecmd [-trace f] [-metrics f] [-events f]")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validatecmd:", err)
	os.Exit(1)
}
