package obs

// A small metrics registry — counters, gauges, fixed-bucket histograms —
// exposed in Prometheus text exposition format and snapshot-able into a
// flat name→value map (core.Result carries such a snapshot so a run's
// telemetry travels with its report). Instruments are lock-free atomics;
// registration is expected at setup time, reads/writes at run time.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters are
// monotonic by contract).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer metric.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket[i] counts observations ≤ bounds[i], plus an
// implicit +Inf bucket).
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Int64 // len(bounds)+1; last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits of the running sum
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// SolverLatencyBuckets are the fixed solver-latency histogram bounds in
// seconds: the Table II workload's calls span ~100µs to tens of ms, with
// the tail bounds catching pathological formulas.
var SolverLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Registry holds registered instruments and renders them in Prometheus
// text exposition format. Registration order is preserved in the
// output, so exposition is stable across runs.
type Registry struct {
	mu    sync.Mutex
	names map[string]bool
	order []any // *Counter | *Gauge | *Histogram, in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name string, inst any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.order = append(r.order, inst)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Histogram registers and returns a new fixed-bucket histogram. Bounds
// must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted: " + name)
	}
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	r.register(name, h)
	return h
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]any(nil), r.order...)
	r.mu.Unlock()
	for _, inst := range order {
		switch m := inst.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				m.name, m.help, m.name, m.name, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				m.name, m.help, m.name, m.name, m.Value()); err != nil {
				return err
			}
		case *Histogram:
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", m.name, m.help, m.name); err != nil {
				return err
			}
			cum := int64(0)
			for i, b := range m.bounds {
				cum += m.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += m.buckets[len(m.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, cum, m.name, formatFloat(m.Sum()), m.name, m.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot flattens every instrument into a name→value map: counters
// and gauges under their own name, histograms as name_count, name_sum,
// and cumulative name_bucket{le="..."} entries.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := append([]any(nil), r.order...)
	r.mu.Unlock()
	out := make(map[string]float64, len(order))
	for _, inst := range order {
		switch m := inst.(type) {
		case *Counter:
			out[m.name] = float64(m.Value())
		case *Gauge:
			out[m.name] = float64(m.Value())
		case *Histogram:
			cum := int64(0)
			for i, b := range m.bounds {
				cum += m.buckets[i].Load()
				out[fmt.Sprintf("%s_bucket{le=%q}", m.name, formatFloat(b))] = float64(cum)
			}
			out[m.name+"_count"] = float64(m.Count())
			out[m.name+"_sum"] = m.Sum()
		}
	}
	return out
}
