package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestDebugServerContentTypes pins the explicit Content-Type headers of
// the debug endpoints: Prometheus text exposition for /metrics,
// application/json for JSON endpoints. Scrapers and dashboards key off
// these — a missing header makes Prometheus reject the target.
func TestDebugServerContentTypes(t *testing.T) {
	o := NewObserver()
	o.P().Traces.Add(3)
	ds, err := StartDebugServer("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypePrometheus {
		t.Errorf("/metrics Content-Type = %q, want %q", got, ContentTypePrometheus)
	}
	if len(body) == 0 {
		t.Error("/metrics body empty")
	}

	resp, body = get(t, base+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypeJSON {
		t.Errorf("/progress Content-Type = %q, want %q", got, ContentTypeJSON)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("/progress body is not JSON: %v\n%s", err, body)
	}
}

// TestDebugServerExtraRoutes verifies caller-mounted routes serve on
// the same listener as the built-in telemetry endpoints.
func TestDebugServerExtraRoutes(t *testing.T) {
	ds, err := StartDebugServer("127.0.0.1:0", nil, Route{
		Pattern: "/history/ping",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", ContentTypeJSON)
			io.WriteString(w, `{"ok":true}`)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, body := get(t, "http://"+ds.Addr()+"/history/ping")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extra route status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypeJSON {
		t.Errorf("extra route Content-Type = %q, want %q", got, ContentTypeJSON)
	}
	if string(body) != `{"ok":true}` {
		t.Errorf("extra route body %q", body)
	}
	// The built-ins must still be there.
	resp, _ = get(t, "http://"+ds.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics alongside extras: status %d", resp.StatusCode)
	}
}
