package obs

// The live debug endpoint behind `weseer analyze -debug-addr` and the
// `weseer serve` daemon: /metrics serves the registry in Prometheus
// text format, /progress serves the run's live Snapshot as JSON,
// /debug/pprof/* exposes the stdlib profiler, and callers may mount
// additional routes (the history store's /ingest and /history/*
// endpoints) on the same listener. Every handler sets an explicit
// Content-Type — the Prometheus text exposition type for /metrics,
// application/json for JSON endpoints — pinned by TestDebugServerContentTypes.
// The server binds synchronously (so a bad address fails fast and tests
// can use ":0") and shuts down cleanly via Close.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Content types the debug endpoints serve with. Exported so mounted
// routes (internal/history) answer with the exact same headers.
const (
	ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeJSON       = "application/json"
	ContentTypeText       = "text/plain; charset=utf-8"
)

// Route is an extra HTTP route mounted on the debug server's mux, in
// net/http.ServeMux pattern syntax.
type Route struct {
	Pattern string
	Handler http.Handler
}

// DebugServer serves an observer's live state over HTTP.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// StartDebugServer binds addr (e.g. ":6060", or ":0" for an ephemeral
// port) and serves o's metrics and progress plus net/http/pprof,
// alongside any extra routes (the long-lived `weseer serve` daemon
// mounts the history store's ingest and query endpoints here, so one
// listener carries both telemetry and service traffic). The listener is
// bound synchronously; serving happens in a background goroutine until
// Close.
func StartDebugServer(addr string, o *Observer, extra ...Route) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		if o != nil && o.Metrics != nil {
			_ = o.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypeJSON)
		var snap Snapshot
		if o != nil {
			snap = o.Progress.Snapshot()
		} else {
			snap = (*Progress)(nil).Snapshot()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		_ = ds.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ds *DebugServer) Addr() string {
	if ds == nil {
		return ""
	}
	return ds.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests,
// and blocks until the serve goroutine has exited. Nil-safe.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := ds.srv.Shutdown(ctx)
	if err != nil {
		err = ds.srv.Close()
	}
	<-ds.done
	return err
}
