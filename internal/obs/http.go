package obs

// The live debug endpoint behind `weseer analyze -debug-addr`: /metrics
// serves the registry in Prometheus text format, /progress serves the
// run's live Snapshot as JSON, and /debug/pprof/* exposes the stdlib
// profiler. The server binds synchronously (so a bad address fails
// fast and tests can use ":0") and shuts down cleanly via Close.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves an observer's live state over HTTP.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// StartDebugServer binds addr (e.g. ":6060", or ":0" for an ephemeral
// port) and serves o's metrics and progress plus net/http/pprof. The
// listener is bound synchronously; serving happens in a background
// goroutine until Close.
func StartDebugServer(addr string, o *Observer) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o != nil && o.Metrics != nil {
			_ = o.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap Snapshot
		if o != nil {
			snap = o.Progress.Snapshot()
		} else {
			snap = (*Progress)(nil).Snapshot()
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		_ = ds.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ds *DebugServer) Addr() string {
	if ds == nil {
		return ""
	}
	return ds.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests,
// and blocks until the serve goroutine has exited. Nil-safe.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := ds.srv.Shutdown(ctx)
	if err != nil {
		err = ds.srv.Close()
	}
	<-ds.done
	return err
}
