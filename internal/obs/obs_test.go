package obs_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"weseer/internal/obs"
	"weseer/internal/obs/obstest"
)

func TestTracerSpans(t *testing.T) {
	tr := obs.NewTracer()
	outer := tr.Start(0, "analyze", obs.String("app", "demo"))
	inner := tr.Start(1, "chain", obs.Int("idx", 3))
	inner.End(obs.Bool("sat", true))
	outer.End(obs.Duration("wall", 5*time.Millisecond))

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Events are ordered by start: "analyze" opened first.
	if evs[0].Name != "analyze" || evs[1].Name != "chain" {
		t.Fatalf("bad order: %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[0].TID != 0 || evs[1].TID != 1 {
		t.Fatalf("bad tids: %d, %d", evs[0].TID, evs[1].TID)
	}
	if len(evs[1].Attrs) != 2 {
		t.Fatalf("chain attrs = %v, want start+end attr merged", evs[1].Attrs)
	}
	if evs[0].Dur < evs[1].Dur {
		t.Fatalf("outer span shorter than inner: %v < %v", evs[0].Dur, evs[1].Dur)
	}
}

func TestNilSinksAreNoOps(t *testing.T) {
	var tr *obs.Tracer
	sp := tr.Start(0, "x")
	sp.End()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v", got)
	}
	if err := (&obs.Tracer{}).WriteChromeTrace(io.Discard); err != nil {
		t.Fatal(err)
	}

	var o *obs.Observer
	o.StartSpan(1, "y").End()
	o.ObserveSolve(obs.SolveObservation{Duration: time.Second, Decisions: 3})
	if snap := o.Snapshot(); snap != nil {
		t.Fatalf("nil observer snapshot = %v", snap)
	}

	var c *obs.Counter
	c.Inc()
	var g *obs.Gauge
	g.Set(7)
	var h *obs.Histogram
	h.Observe(1)
	var p *obs.Progress
	p.SetPhase("fine")
	p.ChainDone()
	if s := p.Snapshot(); s.Phase != "idle" || s.ETAMS != -1 {
		t.Fatalf("nil progress snapshot = %+v", s)
	}

	// Observer with nil components must also be inert.
	partial := &obs.Observer{}
	partial.StartSpan(0, "z").End()
	partial.ObserveSolve(obs.SolveObservation{})
	if snap := partial.Snapshot(); snap != nil {
		t.Fatalf("empty observer snapshot = %v", snap)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := obs.NewTracer()
	tr.Start(0, "enumerate").End()
	tr.Start(2, "chain", obs.Int("idx", 0)).End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obstest.ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 2 || sum.Threads[0] != 1 || sum.Threads[2] != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.NameCount["chain"] != 1 {
		t.Fatalf("name counts = %v", sum.NameCount)
	}
}

func TestJSONLExport(t *testing.T) {
	tr := obs.NewTracer()
	tr.Start(0, "solve").End(obs.String("status", "UNSAT"))
	tr.Start(1, "solve").End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obstest.ValidateJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("got %d lines, want 2", n)
	}
}

func TestRegistryPrometheusAndSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("weseer_test_total", "a counter")
	g := reg.Gauge("weseer_test_gauge", "a gauge")
	h := reg.Histogram("weseer_test_seconds", "a histogram", []float64{0.1, 1})

	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	g.Set(10)
	g.Add(-3)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obstest.ValidatePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	want := map[string]float64{
		"weseer_test_total":                     4,
		"weseer_test_gauge":                     7,
		`weseer_test_seconds_bucket{le="0.1"}`:  1,
		`weseer_test_seconds_bucket{le="1"}`:    2,
		`weseer_test_seconds_bucket{le="+Inf"}`: 3,
		"weseer_test_seconds_count":             3,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %v, want %v", k, samples[k], v)
		}
	}
	if sum := samples["weseer_test_seconds_sum"]; sum < 2.54 || sum > 2.56 {
		t.Errorf("histogram sum = %v, want 2.55", sum)
	}

	snap := reg.Snapshot()
	if snap["weseer_test_total"] != 4 || snap["weseer_test_seconds_count"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[`weseer_test_seconds_bucket{le="1"}`] != 2 {
		t.Fatalf("snapshot bucket = %v", snap)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup", "y")
}

func TestObserveSolve(t *testing.T) {
	o := obs.NewObserver()
	o.ObserveSolve(obs.SolveObservation{
		Duration: 2 * time.Millisecond, Status: "SAT",
		Decisions: 5, Conflicts: 2, Propagations: 40,
		LearnedClauses: 2, Backjumps: 1, TheoryCalls: 3,
	})
	o.ObserveSolve(obs.SolveObservation{Duration: 100 * time.Millisecond, Decisions: 1})
	if got := o.Pipeline.Decisions.Value(); got != 6 {
		t.Fatalf("decisions = %d, want 6", got)
	}
	if got := o.Pipeline.SolverLatency.Count(); got != 2 {
		t.Fatalf("latency count = %d, want 2", got)
	}
	snap := o.Snapshot()
	if snap["weseer_cdcl_propagations_total"] != 40 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestProgress(t *testing.T) {
	p := obs.NewProgress()
	if s := p.Snapshot(); s.Phase != "idle" || s.ETAMS != -1 {
		t.Fatalf("initial snapshot = %+v", s)
	}
	p.SetPhase("fine")
	p.SetChains(4)
	p.ChainDone()
	p.ChainDone()
	s := p.Snapshot()
	if s.Phase != "fine" || s.ChainsDone != 2 || s.ChainsTotal != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.ETAMS < 0 {
		t.Fatalf("eta = %d, want >= 0 once chains complete", s.ETAMS)
	}
	prev := s.ChainsDone
	p.ChainDone()
	if got := p.Snapshot().ChainsDone; got != prev+1 {
		t.Fatalf("chains done %d -> %d, want monotonic +1", prev, got)
	}
}

func TestDebugServer(t *testing.T) {
	o := obs.NewObserver()
	o.Pipeline.Traces.Add(9)
	o.Progress.SetPhase("enumerate")

	ds, err := obs.StartDebugServer("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ds.Addr()

	body := httpGet(t, base+"/metrics")
	samples, err := obstest.ValidatePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("%v\n%s", err, body)
	}
	if samples["weseer_funnel_traces_total"] != 9 {
		t.Fatalf("traces counter = %v", samples["weseer_funnel_traces_total"])
	}

	prog := httpGet(t, base+"/progress")
	if !strings.Contains(prog, `"phase":"enumerate"`) {
		t.Fatalf("progress body = %s", prog)
	}

	pprofIdx := httpGet(t, base+"/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("pprof index = %.200s", pprofIdx)
	}

	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
