// Package obs is WeSEER's stdlib-only observability layer: span tracing
// with Chrome trace_event / JSONL exporters, a Prometheus-text metrics
// registry, live run progress, and a debug HTTP server (/metrics,
// /progress, net/http/pprof).
//
// The pipeline is instrumented through *Observer, injected with
// core.WithObserver (and concolic.WithObserver for extraction spans).
// Every hook is nil-safe: a nil *Observer, and nil components inside a
// non-nil one, are valid no-op sinks, and instrumented call sites guard
// on the observer before building any attribute, so instrumentation
// adds zero allocations when disabled. Telemetry is strictly
// observational — it never influences enumeration order, solving, or
// merging — so core.AnalyzeContext's determinism guarantee
// (byte-identical reports at any parallelism) is untouched.
package obs

import "time"

// Observer bundles the three telemetry sinks one diagnosis run feeds:
// the span tracer, the metrics registry (with the pipeline's
// pre-registered instruments), and the live progress tracker. Construct
// with NewObserver; the zero value and nil are valid no-op sinks.
type Observer struct {
	Tracer   *Tracer
	Metrics  *Registry
	Progress *Progress
	// Pipeline holds the pre-registered pipeline instruments so hot
	// paths update counters without registry lookups.
	Pipeline *PipelineMetrics
}

// NewObserver returns an observer with all sinks wired: a fresh tracer,
// a registry carrying the pipeline instruments, and a progress tracker.
func NewObserver() *Observer {
	reg := NewRegistry()
	return &Observer{
		Tracer:   NewTracer(),
		Metrics:  reg,
		Progress: NewProgress(),
		Pipeline: RegisterPipelineMetrics(reg),
	}
}

// StartSpan opens a span on logical thread tid (0 = orchestrator,
// 1..N = phase-3 workers). Nil-safe.
func (o *Observer) StartSpan(tid int, name string, attrs ...Attr) Span {
	if o == nil {
		return Span{}
	}
	return o.Tracer.Start(tid, name, attrs...)
}

// Snapshot flattens the metrics registry (nil-safe; nil observer
// yields nil).
func (o *Observer) Snapshot() map[string]float64 {
	if o == nil {
		return nil
	}
	return o.Metrics.Snapshot()
}

// inertPipeline's instrument pointers are all nil; every instrument
// method is nil-receiver-safe, so it absorbs updates without effect.
var inertPipeline = &PipelineMetrics{}

// P returns the pipeline instruments, or an inert no-op set when the
// observer (or its Pipeline) is nil — call sites can write
// o.P().Traces.Add(n) unconditionally.
func (o *Observer) P() *PipelineMetrics {
	if o == nil || o.Pipeline == nil {
		return inertPipeline
	}
	return o.Pipeline
}

// SolveObservation is one solver call's telemetry, emitted by
// internal/solver (which cannot be imported from here — the int fields
// mirror solver.Stats' CDCL counters).
type SolveObservation struct {
	Duration       time.Duration
	Status         string // "SAT" | "UNSAT" | "UNKNOWN"
	Decisions      int
	Conflicts      int
	Propagations   int
	LearnedClauses int
	Backjumps      int
	TheoryCalls    int
}

// ObserveSolve records one solver call into the latency histogram and
// the CDCL counters. Nil-safe.
func (o *Observer) ObserveSolve(s SolveObservation) {
	if o == nil || o.Pipeline == nil {
		return
	}
	m := o.Pipeline
	m.SolverLatency.Observe(s.Duration.Seconds())
	m.Decisions.Add(int64(s.Decisions))
	m.Conflicts.Add(int64(s.Conflicts))
	m.Propagations.Add(int64(s.Propagations))
	m.LearnedClauses.Add(int64(s.LearnedClauses))
	m.Backjumps.Add(int64(s.Backjumps))
	m.TheoryCalls.Add(int64(s.TheoryCalls))
}

// PipelineMetrics are the diagnosis pipeline's instruments, registered
// once per Observer. The funnel counters mirror core.Stats field for
// field, so after a completed run /metrics and Result.Stats agree; the
// edge-cache counters are metrics-only (build/hit attribution races
// benignly between workers, so they stay out of the deterministic
// report).
type PipelineMetrics struct {
	Traces           *Counter
	Pairs            *Counter
	PairsAfterPhase1 *Counter
	CoarseCycles     *Counter
	IndexProbes      *Counter
	LockFiltered     *Counter
	GroupsSolved     *Counter
	SolverCalls      *Counter
	MemoHits         *Counter

	PrescreenPairs       *Counter
	PrescreenPairsPruned *Counter
	PrescreenSaved       *Counter

	SAT     *Counter
	UNSAT   *Counter
	Unknown *Counter

	EdgeCacheHits   *Counter
	EdgeCacheBuilds *Counter

	Decisions      *Counter
	Conflicts      *Counter
	Propagations   *Counter
	LearnedClauses *Counter
	Backjumps      *Counter
	TheoryCalls    *Counter

	SolverLatency *Histogram

	ChainsTotal *Gauge
	ChainsDone  *Gauge

	ExtractedTraces    *Counter
	ExtractedStmts     *Counter
	ExtractedPathConds *Counter
}

// RegisterPipelineMetrics registers the pipeline instruments on reg.
func RegisterPipelineMetrics(reg *Registry) *PipelineMetrics {
	return &PipelineMetrics{
		Traces:           reg.Counter("weseer_funnel_traces_total", "traces entering the diagnosis"),
		Pairs:            reg.Counter("weseer_funnel_txn_pairs_total", "transaction instance pairs considered (phase 1 input)"),
		PairsAfterPhase1: reg.Counter("weseer_funnel_pairs_after_phase1_total", "pairs surviving the transaction-level filter"),
		CoarseCycles:     reg.Counter("weseer_funnel_coarse_cycles_total", "SC-graph deadlock cycles found in phase 2"),
		IndexProbes:      reg.Counter("weseer_enum_index_probes_total", "posting-list entries walked by the phase-1 conflict index"),
		LockFiltered:     reg.Counter("weseer_funnel_lock_filtered_total", "cycles discarded by the lock-collision test"),
		GroupsSolved:     reg.Counter("weseer_funnel_groups_solved_total", "cycles discharged in the fine phase (memoized or not)"),
		SolverCalls:      reg.Counter("weseer_funnel_solver_calls_total", "group discharges that ran the solver"),
		MemoHits:         reg.Counter("weseer_funnel_memo_hits_total", "group discharges served from the solver-call memo table"),

		PrescreenPairs:       reg.Counter("weseer_prescreen_pairs_total", "pairs examined by the phase-0 static screen"),
		PrescreenPairsPruned: reg.Counter("weseer_prescreen_pairs_pruned_total", "pairs discarded before cycle enumeration"),
		PrescreenSaved:       reg.Counter("weseer_prescreen_saved_total", "solver calls avoided by phase-0 group refutation"),

		SAT:     reg.Counter("weseer_solver_sat_total", "solver verdicts: satisfiable (confirmed deadlock)"),
		UNSAT:   reg.Counter("weseer_solver_unsat_total", "solver verdicts: unsatisfiable"),
		Unknown: reg.Counter("weseer_solver_unknown_total", "solver verdicts: unknown (budget or cancellation)"),

		EdgeCacheHits:   reg.Counter("weseer_edge_cache_hits_total", "C-edge conflict conditions served from the per-edge cache"),
		EdgeCacheBuilds: reg.Counter("weseer_edge_cache_builds_total", "C-edge conflict conditions built from scratch"),

		Decisions:      reg.Counter("weseer_cdcl_decisions_total", "CDCL decisions across solver calls"),
		Conflicts:      reg.Counter("weseer_cdcl_conflicts_total", "CDCL conflicts across solver calls"),
		Propagations:   reg.Counter("weseer_cdcl_propagations_total", "watched-literal unit propagations across solver calls"),
		LearnedClauses: reg.Counter("weseer_cdcl_learned_clauses_total", "clauses learned from conflict analysis and theory cores"),
		Backjumps:      reg.Counter("weseer_cdcl_backjumps_total", "non-chronological backjumps across solver calls"),
		TheoryCalls:    reg.Counter("weseer_cdcl_theory_calls_total", "theory checks across solver calls"),

		SolverLatency: reg.Histogram("weseer_solver_seconds", "per-call solver latency in seconds", SolverLatencyBuckets),

		ChainsTotal: reg.Gauge("weseer_chains_total", "phase-3 chains enumerated for discharge"),
		ChainsDone:  reg.Gauge("weseer_chains_done", "phase-3 chains discharged so far"),

		ExtractedTraces:    reg.Counter("weseer_extract_traces_total", "traces collected by concolic extraction"),
		ExtractedStmts:     reg.Counter("weseer_extract_statements_total", "SQL statements recorded during extraction"),
		ExtractedPathConds: reg.Counter("weseer_extract_path_conds_total", "path conditions recorded during extraction"),
	}
}
