package minidb

import (
	"testing"

	"weseer/internal/sqlast"
)

func TestExplainQ4(t *testing.T) {
	db := openTest(t)
	plan := db.Explain(sqlast.MustParse(
		`SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?`))
	if len(plan) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	// The parameter binds oi's O_ID index first; the joins then use the
	// primary indexes of Orders and Product.
	if plan[0].Alias != "oi" || plan[0].Index != "idx_oi_o" {
		t.Errorf("step 0 = %+v", plan[0])
	}
	for _, step := range plan[1:] {
		if step.Index != "PRIMARY" {
			t.Errorf("join step = %+v", step)
		}
	}
}

func TestExplainPointAndScan(t *testing.T) {
	db := openTest(t)
	plan := db.Explain(sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`))
	if len(plan) != 1 || plan[0].Index != "PRIMARY" || len(plan[0].EqColumns) != 1 {
		t.Fatalf("point update plan = %+v", plan)
	}
	plan = db.Explain(sqlast.MustParse(`SELECT * FROM Product p WHERE p.QTY > ?`))
	if len(plan) != 1 || plan[0].Index != "" {
		t.Fatalf("full scan plan = %+v", plan)
	}
}

func TestExplainInsert(t *testing.T) {
	db := openTest(t)
	plan := db.Explain(sqlast.MustParse(`INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`))
	names := map[string]bool{}
	for _, p := range plan {
		names[p.Index] = true
	}
	for _, want := range []string{"PRIMARY", "idx_oi_o", "idx_oi_p"} {
		if !names[want] {
			t.Errorf("insert plan missing %s: %+v", want, plan)
		}
	}
}
