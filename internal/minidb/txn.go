package minidb

import (
	"fmt"
	"time"

	"weseer/internal/sqlast"
)

// TxnState is a transaction's lifecycle state.
type TxnState uint8

// Transaction states.
const (
	TxnActive TxnState = iota
	TxnCommitted
	TxnAborted
)

// Txn is a database transaction running strict two-phase locking: every
// lock acquired during statement execution is held until Commit or
// Rollback.
type Txn struct {
	db    *DB
	id    int64
	state TxnState

	// held and waitingFor are guarded by the lock manager's mutex.
	held       []resource
	waitingFor *lockReq

	undo []undoRec
	// purge lists the delete-marked entries this transaction owns; they
	// are physically removed at commit (InnoDB's purge) and unmarked by
	// the undo log on rollback.
	purge []purgeRec
}

// undoRec is an entry-level undo record: enough to restore one index
// entry to its pre-mutation state. Entry-level undo composes cleanly
// across insert/update/delete/reinsert sequences within a transaction.
type undoRec struct {
	table string
	index string // "" for the primary index
	key   Key
	// existed reports whether the entry was present before the mutation;
	// when it was, the old* fields restore it.
	existed    bool
	oldRow     Row // primary entries
	oldPK      Key // secondary entries
	oldDeleted bool
}

type purgeRec struct {
	table string
	index string // "" for the primary index
	key   Key
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	return &Txn{db: db, id: db.txnSeq.Add(1)}
}

// ID returns the transaction's sequence number.
func (t *Txn) ID() int64 { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() TxnState { return t.state }

// ResultSet is the outcome of one statement.
type ResultSet struct {
	// Cols holds "alias.column" names for SELECT results.
	Cols []string
	Rows [][]Datum
	// Affected counts rows changed by UPDATE/INSERT/DELETE/UPSERT.
	Affected int
}

// Exec executes one statement with the given parameter values. On a
// deadlock or lock-wait timeout the whole transaction is rolled back
// (detect-and-recover) and the error is returned; ErrDuplicateKey fails
// only the statement and leaves the transaction active.
func (t *Txn) Exec(st sqlast.Stmt, params []Datum) (*ResultSet, error) {
	if t.state != TxnActive {
		return nil, ErrTxnDone
	}
	if got, want := len(params), st.NumParams(); got != want {
		return nil, fmt.Errorf("minidb: statement %q wants %d params, got %d", st, want, got)
	}
	t.db.statements.Add(1)
	if d := t.db.cfg.StatementDelay; d > 0 {
		time.Sleep(d) // simulated client/server round trip
	}
	for {
		rs, blocked, err := t.attempt(st, params)
		if err != nil {
			return nil, err
		}
		if blocked == nil {
			return rs, nil
		}
		// Blocked mid-scan: wait for the contended lock, then restart the
		// statement (locks already granted stay held, per 2PL).
		if err := t.db.lm.Acquire(t, blocked.res, blocked.mode, t.db.cfg.LockWaitTimeout); err != nil {
			t.rollbackInternal()
			return nil, err
		}
	}
}

// attempt runs one statement pass under the storage latch. It returns a
// non-nil blocked descriptor when a needed lock is unavailable; the
// caller waits and retries.
func (t *Txn) attempt(st sqlast.Stmt, params []Datum) (*ResultSet, *blockedOn, error) {
	t.db.latch.Lock()
	defer t.db.latch.Unlock()
	ex := &executor{txn: t, params: params}
	var rs *ResultSet
	var err error
	switch s := st.(type) {
	case *sqlast.Select:
		rs, err = ex.execSelect(s)
	case *sqlast.Update:
		rs, err = ex.execUpdate(s)
	case *sqlast.Insert:
		rs, err = ex.execInsert(s, nil)
	case *sqlast.Upsert:
		rs, err = ex.execInsert(&s.Insert, s.OnDup)
	case *sqlast.Delete:
		rs, err = ex.execDelete(s)
	default:
		return nil, nil, fmt.Errorf("minidb: unsupported statement %T", st)
	}
	if ex.blocked != nil {
		return nil, ex.blocked, nil
	}
	return rs, nil, err
}

// Commit makes the transaction's effects durable, purges its tombstones,
// and releases its locks.
func (t *Txn) Commit() error {
	if t.state != TxnActive {
		return ErrTxnDone
	}
	if len(t.purge) > 0 {
		t.db.latch.Lock()
		for _, p := range t.purge {
			ts := t.db.table(p.table)
			if p.index == "" {
				if e, ok := ts.primary.Get(p.key); ok && e.deleted {
					ts.primary.Delete(p.key)
				}
			} else if e, ok := ts.secondaries[p.index].Get(p.key); ok && e.deleted {
				ts.secondaries[p.index].Delete(p.key)
			}
		}
		t.db.latch.Unlock()
	}
	t.state = TxnCommitted
	t.undo = nil
	t.purge = nil
	t.db.lm.ReleaseAll(t)
	t.db.commits.Add(1)
	return nil
}

// Rollback undoes the transaction's effects and releases its locks.
func (t *Txn) Rollback() error {
	if t.state != TxnAborted && t.state != TxnActive {
		return ErrTxnDone
	}
	if t.state == TxnAborted {
		// Already rolled back internally when the engine aborted it.
		return nil
	}
	t.rollbackInternal()
	return nil
}

// rollbackInternal applies the entry-level undo log in reverse and
// releases locks. Used both for explicit Rollback and engine-initiated
// aborts (deadlock victims).
func (t *Txn) rollbackInternal() {
	t.db.latch.Lock()
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		ts := t.db.table(u.table)
		if u.index == "" {
			if !u.existed {
				ts.primary.Delete(u.key)
				continue
			}
			ts.primary.Set(u.key, &rowEntry{row: u.oldRow, deleted: u.oldDeleted})
			continue
		}
		tree := ts.secondaries[u.index]
		if !u.existed {
			tree.Delete(u.key)
			continue
		}
		tree.Set(u.key, &secEntry{pk: u.oldPK, deleted: u.oldDeleted})
	}
	t.undo = nil
	t.purge = nil
	t.db.latch.Unlock()
	t.state = TxnAborted
	t.db.lm.ReleaseAll(t)
	t.db.aborts.Add(1)
}

// Mutation helpers used by the executor: every change to an index entry
// records its pre-state first.

// putPrimary writes a primary entry, recording undo.
func (t *Txn) putPrimary(ts *tableStore, key Key, e *rowEntry) {
	if old, ok := ts.primary.Get(key); ok {
		t.undo = append(t.undo, undoRec{
			table: ts.meta.Name, key: key, existed: true,
			oldRow: old.row.clone(), oldDeleted: old.deleted,
		})
	} else {
		t.undo = append(t.undo, undoRec{table: ts.meta.Name, key: key})
	}
	ts.primary.Set(key, e)
}

// putSecondary writes a secondary entry, recording undo.
func (t *Txn) putSecondary(ts *tableStore, index string, key Key, e *secEntry) {
	tree := ts.secondaries[index]
	if old, ok := tree.Get(key); ok {
		t.undo = append(t.undo, undoRec{
			table: ts.meta.Name, index: index, key: key, existed: true,
			oldPK: old.pk, oldDeleted: old.deleted,
		})
	} else {
		t.undo = append(t.undo, undoRec{table: ts.meta.Name, index: index, key: key})
	}
	tree.Set(key, e)
}

// markDeleted tombstones a primary entry and its secondary entries,
// scheduling the physical purge for commit.
func (t *Txn) markDeleted(ts *tableStore, pk Key, row Row) {
	t.putPrimary(ts, pk, &rowEntry{row: row, deleted: true})
	t.purge = append(t.purge, purgeRec{table: ts.meta.Name, key: pk})
	for _, ix := range ts.meta.SecondaryIndexes() {
		sk := ts.keyOf(ix, row)
		t.putSecondary(ts, ix.Name, sk, &secEntry{pk: pk, deleted: true})
		t.purge = append(t.purge, purgeRec{table: ts.meta.Name, index: ix.Name, key: sk})
	}
}
