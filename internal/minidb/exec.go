package minidb

import (
	"fmt"

	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

// The executor runs one statement pass under the storage latch. Locks are
// acquired with TryAcquire during index traversal — exactly where InnoDB
// acquires them; the first unavailable lock aborts the pass, the caller
// waits on it, and the statement restarts. Locks acquired by earlier
// passes remain held (strict 2PL), so progress is monotonic.

// blockedOn describes the lock a pass stopped at.
type blockedOn struct {
	res  resource
	mode LockMode
}

type executor struct {
	txn     *Txn
	params  []Datum
	blocked *blockedOn
}

// lock try-acquires and records the first blockage.
func (ex *executor) lock(res resource, mode LockMode) bool {
	if ex.blocked != nil {
		return false
	}
	if ex.txn.db.lm.TryAcquire(ex.txn, res, mode) {
		return true
	}
	ex.blocked = &blockedOn{res: res, mode: mode}
	return false
}

func recordRes(table, index string, key Key) resource {
	return resource{table: table, index: index, key: key.String(), kind: resRecord}
}

func gapRes(table, index string, key Key) resource {
	return resource{table: table, index: index, key: key.String(), kind: resGap}
}

func supremumRes(table, index string) resource {
	return resource{table: table, index: index, key: supremumKey, kind: resGap}
}

// ---------------------------------------------------------------------------
// Planning

// eqBind is an equality binding of an index column to a resolvable value.
type eqBind struct {
	col string
	val sqlast.Operand
}

// access is one step of a nested-loop plan: how to fetch rows of alias.
type access struct {
	alias string
	ts    *tableStore
	ix    *schema.Index // index used; nil means full scan of the primary
	eq    []eqBind      // equality prefix over ix.Columns
}

// planScan chooses join order and per-alias access paths. It prefers the
// alias/index pair with the longest bound equality prefix — the greedy
// equivalent of the paper's index-usage-graph topological sort, where an
// index is usable once its input data (parameters or earlier tables'
// columns) is available.
func (ex *executor) planScan(aliases []string, tables map[string]*tableStore, preds []sqlast.Pred) []access {
	bound := map[string]bool{}
	var plan []access
	remaining := append([]string(nil), aliases...)
	for len(remaining) > 0 {
		bestI, bestScore := -1, -1
		var bestAcc access
		for i, a := range remaining {
			ts := tables[a]
			indexes := append([]*schema.Index{ts.meta.PrimaryIndex()}, ts.meta.SecondaryIndexes()...)
			for _, ix := range indexes {
				eq := eqPrefix(a, ix, preds, bound)
				if len(eq) == 0 {
					continue
				}
				score := len(eq) * 2
				if ix.Unique && len(eq) == len(ix.Columns) {
					score++ // a unique point access wins ties
				}
				if score > bestScore {
					bestI, bestScore = i, score
					bestAcc = access{alias: a, ts: ts, ix: ix, eq: eq}
				}
			}
		}
		if bestI == -1 {
			// No index applies: full-scan the first remaining alias.
			a := remaining[0]
			plan = append(plan, access{alias: a, ts: tables[a]})
			bound[a] = true
			remaining = remaining[1:]
			continue
		}
		plan = append(plan, bestAcc)
		bound[bestAcc.alias] = true
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
	}
	return plan
}

// eqPrefix finds equality bindings for the longest prefix of ix.Columns
// from preds whose other side is a parameter, constant, or a column of an
// already-bound alias.
func eqPrefix(alias string, ix *schema.Index, preds []sqlast.Pred, bound map[string]bool) []eqBind {
	var out []eqBind
	for _, col := range ix.Columns {
		found := false
		for _, p := range preds {
			if p.IsNull || p.Op != smt.EQ {
				continue
			}
			if isAliasCol(p.L, alias, col) && operandAvailable(p.R, bound) {
				out = append(out, eqBind{col: col, val: p.R})
				found = true
				break
			}
			if isAliasCol(p.R, alias, col) && operandAvailable(p.L, bound) {
				out = append(out, eqBind{col: col, val: p.L})
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	return out
}

func isAliasCol(o sqlast.Operand, alias, col string) bool {
	return o.Kind == sqlast.Col && o.Table == alias && o.Column == col
}

func operandAvailable(o sqlast.Operand, bound map[string]bool) bool {
	if o.Kind == sqlast.Col {
		return bound[o.Table]
	}
	return true
}

// ---------------------------------------------------------------------------
// Scanning

// scanHit is one row produced by an index scan.
type scanHit struct {
	pk  Key
	row Row
}

// scanIndex fetches rows matching the equality prefix, acquiring locks as
// InnoDB does while traversing: unique point queries lock just the
// record; other scans take next-key locks on every visited entry plus the
// gap before the first entry beyond the range; empty results lock that
// gap alone. Secondary-index hits additionally lock the primary record
// (Alg. 2 of the paper models exactly this procedure).
func (ex *executor) scanIndex(ts *tableStore, ac access, pfx Key, mode LockMode) []scanHit {
	table := ts.meta.Name
	ixName := "PRIMARY"
	var ix *schema.Index
	if ac.ix != nil {
		ix = ac.ix
		ixName = ix.Name
	} else {
		ix = ts.meta.PrimaryIndex()
	}
	uniquePoint := ix.Unique && len(pfx) == len(ix.Columns)

	var hits []scanHit
	done := false
	visit := func(entry Key, pk Key, row Row, deleted bool) bool {
		if !keyHasPrefix(entry, pfx) {
			// First entry beyond the range bounds the scanned gap.
			if !uniquePoint || len(hits) == 0 {
				ex.lock(gapRes(table, ixName, entry), mode)
			}
			done = true
			return false
		}
		if !ex.lock(recordRes(table, ixName, entry), mode) {
			return false
		}
		if deleted {
			// Delete-marked tombstone: the record lock (just acquired)
			// serialized us against the deleter; the row itself is not
			// visible. Keep scanning — for point queries the boundary
			// branch then takes the protecting gap lock.
			return true
		}
		if !uniquePoint {
			if !ex.lock(gapRes(table, ixName, entry), mode) {
				return false
			}
		}
		if ix.Type == schema.Secondary {
			// Lock the primary record backing the entry.
			if !ex.lock(recordRes(table, "PRIMARY", pk), mode) {
				return false
			}
		}
		hits = append(hits, scanHit{pk: pk, row: row})
		return !uniquePoint // a unique point query stops at its row
	}

	if ix.Type == schema.Primary {
		ts.primary.Ascend(pfx, func(k Key, e *rowEntry) bool {
			return visit(k, k, e.row, e.deleted)
		})
	} else {
		ts.secondaries[ix.Name].Ascend(pfx, func(k Key, e *secEntry) bool {
			if e.deleted {
				return visit(k, e.pk, nil, true)
			}
			pe, ok := ts.primary.Get(e.pk)
			if !ok || pe.deleted {
				return visit(k, e.pk, nil, true)
			}
			return visit(k, e.pk, pe.row, false)
		})
	}
	if ex.blocked != nil {
		return nil
	}
	if !done && !(uniquePoint && len(hits) > 0) {
		// Ran off the end of the index: the supremum gap bounds the scan.
		ex.lock(supremumRes(table, ixName), mode)
	}
	return hits
}

func keyHasPrefix(k, pfx Key) bool {
	if len(k) < len(pfx) {
		return false
	}
	for i := range pfx {
		if k[i].Cmp(pfx[i]) != 0 {
			return false
		}
	}
	return true
}

// prefixKey resolves the access's equality bindings to datums.
func (ex *executor) prefixKey(ac access, bindings map[string]Row, tables map[string]*tableStore) (Key, bool) {
	var pfx Key
	for _, b := range ac.eq {
		d, ok := ex.resolve(b.val, bindings, tables)
		if !ok || d.Null {
			return nil, false
		}
		pfx = append(pfx, d)
	}
	return pfx, true
}

// ---------------------------------------------------------------------------
// SELECT

func (ex *executor) execSelect(sel *sqlast.Select) (*ResultSet, error) {
	aliases := []string{sel.From.Alias()}
	tables := map[string]*tableStore{sel.From.Alias(): ex.txn.db.table(sel.From.Table)}
	for _, j := range sel.Joins {
		aliases = append(aliases, j.Ref.Alias())
		tables[j.Ref.Alias()] = ex.txn.db.table(j.Ref.Table)
	}
	cond := sel.QueryCond()
	plan := ex.planScan(aliases, tables, cond.Preds)

	rs := &ResultSet{}
	cols := sel.Cols
	if len(cols) == 0 {
		for _, a := range aliases {
			for _, c := range tables[a].meta.Columns {
				cols = append(cols, sqlast.ColRef{Table: a, Column: c.Name})
			}
		}
	}
	for _, c := range cols {
		rs.Cols = append(rs.Cols, c.Table+"."+c.Column)
	}

	bindings := map[string]Row{}
	var loop func(i int) error
	loop = func(i int) error {
		if ex.blocked != nil {
			return nil
		}
		if i == len(plan) {
			if !ex.evalCond(cond, bindings, tables) {
				return nil
			}
			out := make([]Datum, len(cols))
			for ci, c := range cols {
				row := bindings[c.Table]
				out[ci] = row[colIdx(tables[c.Table].meta, c.Column)]
			}
			rs.Rows = append(rs.Rows, out)
			return nil
		}
		ac := plan[i]
		pfx, ok := ex.prefixKey(ac, bindings, tables)
		if !ok {
			return nil // a NULL join key matches nothing
		}
		hits := ex.scanIndex(ac.ts, ac, pfx, LockS)
		for _, h := range hits {
			bindings[ac.alias] = h.row
			if err := loop(i + 1); err != nil {
				return err
			}
			if ex.blocked != nil {
				return nil
			}
		}
		delete(bindings, ac.alias)
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	return rs, nil
}

// ---------------------------------------------------------------------------
// UPDATE

func (ex *executor) execUpdate(u *sqlast.Update) (*ResultSet, error) {
	ts := ex.txn.db.table(u.Table)
	hits, err := ex.writeScan(ts, u.Table, u.Where)
	if err != nil || ex.blocked != nil {
		return nil, err
	}
	// Reject primary-key updates: outside the supported subset.
	pi := ts.meta.PrimaryIndex()
	for _, a := range u.Set {
		if pi.Covers(a.Column) {
			return nil, fmt.Errorf("minidb: updating primary key column %s.%s is unsupported", u.Table, a.Column)
		}
	}
	rs := &ResultSet{}
	for _, h := range hits {
		newRow := h.row.clone()
		for _, a := range u.Set {
			d, ok := ex.resolve(a.Value, map[string]Row{u.Table: h.row}, map[string]*tableStore{u.Table: ts})
			if !ok {
				return nil, fmt.Errorf("minidb: unresolvable SET value %s", a.Value)
			}
			newRow[colIdx(ts.meta, a.Column)] = d
		}
		// Lock and maintain secondary entries whose keys change.
		for _, ix := range ts.meta.SecondaryIndexes() {
			oldK, newK := ts.keyOf(ix, h.row), ts.keyOf(ix, newRow)
			if oldK.Cmp(newK) == 0 {
				continue
			}
			if !ex.lock(recordRes(u.Table, ix.Name, oldK), LockX) {
				return nil, nil
			}
			if !ex.lock(recordRes(u.Table, ix.Name, newK), LockX) {
				return nil, nil
			}
		}
		for _, ix := range ts.meta.SecondaryIndexes() {
			oldK, newK := ts.keyOf(ix, h.row), ts.keyOf(ix, newRow)
			if oldK.Cmp(newK) != 0 {
				// The old entry becomes a tombstone purged at commit;
				// the new entry goes live.
				ex.txn.putSecondary(ts, ix.Name, oldK, &secEntry{pk: h.pk, deleted: true})
				ex.txn.purge = append(ex.txn.purge, purgeRec{table: u.Table, index: ix.Name, key: oldK})
				ex.txn.putSecondary(ts, ix.Name, newK, &secEntry{pk: h.pk})
			}
		}
		ex.txn.putPrimary(ts, h.pk, &rowEntry{row: newRow})
		rs.Affected++
	}
	return rs, nil
}

// writeScan locates rows matching a single-table WHERE with X locks.
func (ex *executor) writeScan(ts *tableStore, alias string, where sqlast.Cond) ([]scanHit, error) {
	tables := map[string]*tableStore{alias: ts}
	plan := ex.planScan([]string{alias}, tables, where.Preds)
	ac := plan[0]
	pfx, ok := ex.prefixKey(ac, nil, tables)
	if !ok {
		return nil, nil
	}
	hits := ex.scanIndex(ts, ac, pfx, LockX)
	if ex.blocked != nil {
		return nil, nil
	}
	matched := hits[:0]
	for _, h := range hits {
		if ex.evalCond(where, map[string]Row{alias: h.row}, tables) {
			matched = append(matched, h)
		}
	}
	return matched, nil
}

// ---------------------------------------------------------------------------
// INSERT / UPSERT

func (ex *executor) execInsert(ins *sqlast.Insert, onDup []sqlast.Assign) (*ResultSet, error) {
	ts := ex.txn.db.table(ins.Table)
	row := make(Row, len(ts.meta.Columns))
	for i, c := range ts.meta.Columns {
		if op, ok := ins.ValueOf(c.Name); ok {
			d, okr := ex.resolve(op, nil, nil)
			if !okr {
				return nil, fmt.Errorf("minidb: unresolvable INSERT value %s", op)
			}
			row[i] = d
		} else {
			row[i] = NullDatum(KindOf(c.Type))
		}
	}
	pk := ts.primaryKeyOf(row)
	for _, d := range pk {
		if d.Null {
			return nil, fmt.Errorf("minidb: NULL primary key in INSERT INTO %s", ins.Table)
		}
	}

	// Duplicate on the primary key? A delete-marked tombstone is not a
	// duplicate, but inserting over it must first serialize against the
	// deleter via its record lock.
	if e, exists := ts.primary.Get(pk); exists {
		if !e.deleted {
			return ex.insertDuplicate(ts, ins, onDup, pk)
		}
		if !ex.lock(recordRes(ins.Table, "PRIMARY", pk), LockX) {
			return nil, nil
		}
	}
	// Duplicate on a unique secondary?
	for _, ix := range ts.meta.SecondaryIndexes() {
		if !ix.Unique {
			continue
		}
		var pfx Key
		for _, c := range ix.Columns {
			pfx = append(pfx, row[colIdx(ts.meta, c)])
		}
		var dupPK, tombK Key
		ts.secondaries[ix.Name].Ascend(pfx, func(k Key, e *secEntry) bool {
			if !keyHasPrefix(k, pfx) {
				return false
			}
			if e.deleted {
				tombK = k
				return true // a tombstone is not a duplicate; keep looking
			}
			dupPK = e.pk
			return false
		})
		if dupPK != nil {
			return ex.insertDuplicate(ts, ins, onDup, dupPK)
		}
		if tombK != nil {
			// Serialize the uniqueness check against the in-flight deleter.
			if !ex.lock(recordRes(ins.Table, ix.Name, tombK), LockS) {
				return nil, nil
			}
		}
	}

	// Insert intention against the gap each new entry lands in: waits for
	// any gap lock another transaction holds over that gap. This is the
	// collision underlying the paper's d1 (merge) and d2 (check-then-
	// insert) deadlocks.
	if !ex.insertIntentionPrimary(ts, pk) {
		return nil, nil
	}
	for _, ix := range ts.meta.SecondaryIndexes() {
		if !ex.insertIntentionSec(ts, ix, ts.keyOf(ix, row)) {
			return nil, nil
		}
	}
	if !ex.lock(recordRes(ins.Table, "PRIMARY", pk), LockX) {
		return nil, nil
	}
	for _, ix := range ts.meta.SecondaryIndexes() {
		if !ex.lock(recordRes(ins.Table, ix.Name, ts.keyOf(ix, row)), LockX) {
			return nil, nil
		}
	}

	ex.txn.putPrimary(ts, pk, &rowEntry{row: row})
	for _, ix := range ts.meta.SecondaryIndexes() {
		ex.txn.putSecondary(ts, ix.Name, ts.keyOf(ix, row), &secEntry{pk: pk})
	}
	return &ResultSet{Affected: 1}, nil
}

// insertDuplicate handles a uniqueness collision: plain INSERT locks the
// existing record shared (as InnoDB does) and fails; UPSERT locks it
// exclusive and applies the ON DUPLICATE KEY UPDATE assignments.
func (ex *executor) insertDuplicate(ts *tableStore, ins *sqlast.Insert, onDup []sqlast.Assign, pk Key) (*ResultSet, error) {
	if onDup == nil {
		if !ex.lock(recordRes(ins.Table, "PRIMARY", pk), LockS) {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: %s%s", ErrDuplicateKey, ins.Table, pk)
	}
	if !ex.lock(recordRes(ins.Table, "PRIMARY", pk), LockX) {
		return nil, nil
	}
	entry, ok := ts.primary.Get(pk)
	if !ok || entry.deleted {
		return nil, fmt.Errorf("minidb: upsert target vanished")
	}
	row := entry.row
	newRow := row.clone()
	for _, a := range onDup {
		d, okr := ex.resolve(a.Value, map[string]Row{ins.Table: row}, map[string]*tableStore{ins.Table: ts})
		if !okr {
			return nil, fmt.Errorf("minidb: unresolvable UPSERT value %s", a.Value)
		}
		newRow[colIdx(ts.meta, a.Column)] = d
	}
	for _, ix := range ts.meta.SecondaryIndexes() {
		oldK, newK := ts.keyOf(ix, row), ts.keyOf(ix, newRow)
		if oldK.Cmp(newK) == 0 {
			continue
		}
		if !ex.lock(recordRes(ins.Table, ix.Name, oldK), LockX) {
			return nil, nil
		}
		if !ex.lock(recordRes(ins.Table, ix.Name, newK), LockX) {
			return nil, nil
		}
	}
	for _, ix := range ts.meta.SecondaryIndexes() {
		oldK, newK := ts.keyOf(ix, row), ts.keyOf(ix, newRow)
		if oldK.Cmp(newK) != 0 {
			ex.txn.putSecondary(ts, ix.Name, oldK, &secEntry{pk: pk, deleted: true})
			ex.txn.purge = append(ex.txn.purge, purgeRec{table: ins.Table, index: ix.Name, key: oldK})
			ex.txn.putSecondary(ts, ix.Name, newK, &secEntry{pk: pk})
		}
	}
	ex.txn.putPrimary(ts, pk, &rowEntry{row: newRow})
	return &ResultSet{Affected: 2}, nil
}

// insertIntentionPrimary acquires the insert-intention lock on the gap
// the new primary key falls into (bounded by its successor entry or the
// supremum). The key's own tombstone, if any, is skipped.
func (ex *executor) insertIntentionPrimary(ts *tableStore, newKey Key) bool {
	succ := Key(nil)
	ts.primary.Ascend(newKey, func(k Key, _ *rowEntry) bool {
		if k.Cmp(newKey) == 0 {
			return true
		}
		succ = k
		return false
	})
	if succ == nil {
		return ex.lock(supremumRes(ts.meta.Name, "PRIMARY"), LockII)
	}
	return ex.lock(gapRes(ts.meta.Name, "PRIMARY", succ), LockII)
}

// inheritGap X-locks the gap bounded by the first key strictly above k in
// the primary index (or the supremum), modeling InnoDB's lock inheritance
// when a record is purged.
func (ex *executor) inheritGap(ts *tableStore, ixName string, k Key) bool {
	var succ Key
	ts.primary.Ascend(k, func(key Key, _ *rowEntry) bool {
		if key.Cmp(k) == 0 {
			return true // skip the key being deleted
		}
		succ = key
		return false
	})
	if succ == nil {
		return ex.lock(supremumRes(ts.meta.Name, ixName), LockX)
	}
	return ex.lock(gapRes(ts.meta.Name, ixName, succ), LockX)
}

func (ex *executor) inheritGapSec(ts *tableStore, ix *schema.Index, k Key) bool {
	var succ Key
	ts.secondaries[ix.Name].Ascend(k, func(key Key, _ *secEntry) bool {
		if key.Cmp(k) == 0 {
			return true
		}
		succ = key
		return false
	})
	if succ == nil {
		return ex.lock(supremumRes(ts.meta.Name, ix.Name), LockX)
	}
	return ex.lock(gapRes(ts.meta.Name, ix.Name, succ), LockX)
}

func (ex *executor) insertIntentionSec(ts *tableStore, ix *schema.Index, newKey Key) bool {
	succ := Key(nil)
	ts.secondaries[ix.Name].Ascend(newKey, func(k Key, _ *secEntry) bool {
		if k.Cmp(newKey) == 0 {
			return true
		}
		succ = k
		return false
	})
	if succ == nil {
		return ex.lock(supremumRes(ts.meta.Name, ix.Name), LockII)
	}
	return ex.lock(gapRes(ts.meta.Name, ix.Name, succ), LockII)
}

// ---------------------------------------------------------------------------
// DELETE

func (ex *executor) execDelete(d *sqlast.Delete) (*ResultSet, error) {
	ts := ex.txn.db.table(d.Table)
	hits, err := ex.writeScan(ts, d.Table, d.Where)
	if err != nil || ex.blocked != nil {
		return nil, err
	}
	rs := &ResultSet{}
	for _, h := range hits {
		for _, ix := range ts.meta.SecondaryIndexes() {
			if !ex.lock(recordRes(d.Table, ix.Name, ts.keyOf(ix, h.row)), LockX) {
				return nil, nil
			}
		}
		// Gap inheritance: when a delete-marked record is purged, the
		// locks protecting it transfer to the surrounding gap, so readers
		// probing the vanished key still block on the deleter. Model it
		// by locking the successor's gap on every touched index.
		if !ex.inheritGap(ts, "PRIMARY", h.pk) {
			return nil, nil
		}
		for _, ix := range ts.meta.SecondaryIndexes() {
			if !ex.inheritGapSec(ts, ix, ts.keyOf(ix, h.row)) {
				return nil, nil
			}
		}
	}
	for _, h := range hits {
		ex.txn.markDeleted(ts, h.pk, h.row)
		rs.Affected++
	}
	return rs, nil
}
