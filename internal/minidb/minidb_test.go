package minidb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"weseer/internal/schema"
	"weseer/internal/sqlast"
)

func testSchema() *schema.Schema {
	s := schema.New()
	s.AddTable("Orders").
		Col("ID", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID")
	s.AddTable("OrderItem").
		Col("ID", schema.Int).
		Col("O_ID", schema.Int).
		Col("P_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_oi_o", "O_ID").
		Index("idx_oi_p", "P_ID")
	s.AddTable("Users").
		Col("ID", schema.Int).
		Col("EMAIL", schema.Varchar).
		PrimaryKey("ID").
		UniqueIndex("uniq_email", "EMAIL")
	return s
}

func openTest(t *testing.T) *DB {
	t.Helper()
	return Open(testSchema(), Config{LockWaitTimeout: 2 * time.Second})
}

func exec(t *testing.T, txn *Txn, sql string, params ...Datum) *ResultSet {
	t.Helper()
	rs, err := txn.Exec(sqlast.MustParse(sql), params)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return rs
}

func seed(t *testing.T, db *DB) {
	t.Helper()
	txn := db.Begin()
	exec(t, txn, `INSERT INTO Orders (ID) VALUES (?)`, I64(1))
	for i := int64(1); i <= 3; i++ {
		exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?)`, I64(i), I64(100))
	}
	exec(t, txn, `INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`,
		I64(1), I64(1), I64(1), I64(5))
	exec(t, txn, `INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`,
		I64(2), I64(1), I64(2), I64(7))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSelect(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	rs := exec(t, txn, `SELECT * FROM Product p WHERE p.ID = ?`, I64(2))
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if rs.Cols[0] != "p.ID" || rs.Cols[1] != "p.QTY" {
		t.Errorf("cols = %v", rs.Cols)
	}
	if rs.Rows[0][0].I != 2 || rs.Rows[0][1].I != 100 {
		t.Errorf("row = %v", rs.Rows[0])
	}
	// Projection.
	rs = exec(t, txn, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(3))
	if len(rs.Cols) != 1 || rs.Cols[0] != "p.QTY" || rs.Rows[0][0].I != 100 {
		t.Errorf("projection: %v %v", rs.Cols, rs.Rows)
	}
	txn.Commit()
}

func TestSelectEmpty(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	rs := exec(t, txn, `SELECT * FROM Product p WHERE p.ID = ?`, I64(99))
	if len(rs.Rows) != 0 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	txn.Commit()
}

func TestJoinQ4(t *testing.T) {
	// The paper's Q4: three-way join keyed by the order id.
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	rs := exec(t, txn,
		`SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?`,
		I64(1))
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 order items", len(rs.Rows))
	}
	// Column layout: oi.* then o.* then p.* in statement order.
	if rs.Cols[0] != "oi.ID" || rs.Cols[4] != "o.ID" || rs.Cols[5] != "p.ID" {
		t.Errorf("cols = %v", rs.Cols)
	}
	// Each row's p.ID must equal oi.P_ID.
	for _, row := range rs.Rows {
		if row[2].I != row[5].I {
			t.Errorf("join mismatch: %v", row)
		}
	}
	txn.Commit()
}

func TestUpdate(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	rs := exec(t, txn, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(42), I64(1))
	if rs.Affected != 1 {
		t.Fatalf("affected = %d", rs.Affected)
	}
	txn.Commit()
	txn2 := db.Begin()
	rs = exec(t, txn2, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(1))
	if rs.Rows[0][0].I != 42 {
		t.Errorf("qty = %v", rs.Rows[0][0])
	}
	txn2.Commit()
}

func TestUpdateSecondaryIndexMaintenance(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	exec(t, txn, `UPDATE OrderItem SET O_ID = ? WHERE ID = ?`, I64(9), I64(1))
	txn.Commit()
	txn2 := db.Begin()
	rs := exec(t, txn2, `SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`, I64(9))
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 1 {
		t.Fatalf("index lookup after update: %v", rs.Rows)
	}
	rs = exec(t, txn2, `SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`, I64(1))
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 2 {
		t.Fatalf("stale index entry: %v", rs.Rows)
	}
	txn2.Commit()
}

func TestDelete(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	rs := exec(t, txn, `DELETE FROM OrderItem WHERE O_ID = ?`, I64(1))
	if rs.Affected != 2 {
		t.Fatalf("affected = %d", rs.Affected)
	}
	txn.Commit()
	txn2 := db.Begin()
	if rs := exec(t, txn2, `SELECT * FROM OrderItem oi WHERE oi.O_ID = ?`, I64(1)); len(rs.Rows) != 0 {
		t.Errorf("rows after delete: %v", rs.Rows)
	}
	txn2.Commit()
}

func TestDuplicateKey(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	_, err := txn.Exec(sqlast.MustParse(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`), []Datum{I64(1), I64(9)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	// The transaction stays usable after a duplicate-key statement error.
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?)`, I64(50), I64(9))
	txn.Commit()
}

func TestUniqueSecondaryDuplicate(t *testing.T) {
	db := openTest(t)
	txn := db.Begin()
	exec(t, txn, `INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`, I64(1), Str("a@x.com"))
	_, err := txn.Exec(sqlast.MustParse(`INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`), []Datum{I64(2), Str("a@x.com")})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	txn.Commit()
}

func TestUpsert(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	// New key: behaves as INSERT.
	rs := exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?`,
		I64(10), I64(5), I64(5))
	if rs.Affected != 1 {
		t.Errorf("fresh upsert affected = %d", rs.Affected)
	}
	// Existing key: applies the update.
	rs = exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?`,
		I64(1), I64(5), I64(77))
	if rs.Affected != 2 {
		t.Errorf("dup upsert affected = %d", rs.Affected)
	}
	txn.Commit()
	check := db.Begin()
	rs = exec(t, check, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(1))
	if rs.Rows[0][0].I != 77 {
		t.Errorf("qty = %v", rs.Rows[0][0])
	}
	check.Commit()
}

func TestRollback(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?)`, I64(20), I64(1))
	exec(t, txn, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(0), I64(1))
	exec(t, txn, `DELETE FROM Product WHERE ID = ?`, I64(2))
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	check := db.Begin()
	if rs := exec(t, check, `SELECT * FROM Product p WHERE p.ID = ?`, I64(20)); len(rs.Rows) != 0 {
		t.Error("insert not rolled back")
	}
	if rs := exec(t, check, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(1)); rs.Rows[0][0].I != 100 {
		t.Error("update not rolled back")
	}
	if rs := exec(t, check, `SELECT * FROM Product p WHERE p.ID = ?`, I64(2)); len(rs.Rows) != 1 {
		t.Error("delete not rolled back")
	}
	check.Commit()
	if got := db.StatsSnapshot().Aborts; got != 1 {
		t.Errorf("aborts = %d", got)
	}
}

func TestTxnDone(t *testing.T) {
	db := openTest(t)
	txn := db.Begin()
	txn.Commit()
	if _, err := txn.Exec(sqlast.MustParse(`SELECT * FROM Product p`), nil); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Exec after commit: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit: %v", err)
	}
}

func TestWriteBlocksRead(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	w := db.Begin()
	exec(t, w, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(1), I64(1))

	done := make(chan int64, 1)
	go func() {
		r := db.Begin()
		rs, err := r.Exec(sqlast.MustParse(`SELECT p.QTY FROM Product p WHERE p.ID = ?`), []Datum{I64(1)})
		if err != nil {
			done <- -1
			return
		}
		r.Commit()
		done <- rs.Rows[0][0].I
	}()
	select {
	case <-done:
		t.Fatal("reader did not block on writer's X lock")
	case <-time.After(100 * time.Millisecond):
	}
	w.Commit()
	select {
	case v := <-done:
		if v != 1 {
			t.Errorf("reader saw %d, want committed value 1", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader stuck after writer commit")
	}
}

// TestGapInsertDeadlock reproduces the paper's d1 pattern: two
// transactions SELECT an absent key (each acquiring a shared gap lock),
// then both INSERT into that gap. Each insert's intention lock waits on
// the other's gap lock: a deadlock the engine must detect and break.
func TestGapInsertDeadlock(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	t1, t2 := db.Begin(), db.Begin()

	exec(t, t1, `SELECT * FROM Users u WHERE u.ID = ?`, I64(500))
	exec(t, t2, `SELECT * FROM Users u WHERE u.ID = ?`, I64(501))

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := t1.Exec(sqlast.MustParse(`INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`),
			[]Datum{I64(500), Str("a@x")})
		errs <- err
	}()
	go func() {
		defer wg.Done()
		_, err := t2.Exec(sqlast.MustParse(`INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`),
			[]Datum{I64(501), Str("b@x")})
		errs <- err
	}()
	wg.Wait()
	close(errs)
	var deadlocked, succeeded int
	for err := range errs {
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, ErrDeadlock):
			deadlocked++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocked != 1 || succeeded != 1 {
		t.Fatalf("deadlocked=%d succeeded=%d, want exactly one victim", deadlocked, succeeded)
	}
	if db.StatsSnapshot().Deadlocks != 1 {
		t.Errorf("deadlock counter = %d", db.StatsSnapshot().Deadlocks)
	}
	// Clean up: the survivor commits, the victim is already aborted.
	for _, txn := range []*Txn{t1, t2} {
		if txn.State() == TxnActive {
			txn.Commit()
		} else {
			txn.Rollback()
		}
	}
}

// TestUpgradeDeadlock reproduces the read-modify-write pattern behind
// d14–d16: both transactions hold S locks on the same row, then both
// request the X upgrade.
func TestUpgradeDeadlock(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	t1, t2 := db.Begin(), db.Begin()
	exec(t, t1, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(1))
	exec(t, t2, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(1))

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for _, txn := range []*Txn{t1, t2} {
		go func(txn *Txn) {
			defer wg.Done()
			_, err := txn.Exec(sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`),
				[]Datum{I64(9), I64(1)})
			errs <- err
		}(txn)
	}
	wg.Wait()
	close(errs)
	var deadlocked, succeeded int
	for err := range errs {
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, ErrDeadlock):
			deadlocked++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocked != 1 || succeeded != 1 {
		t.Fatalf("deadlocked=%d succeeded=%d", deadlocked, succeeded)
	}
	for _, txn := range []*Txn{t1, t2} {
		if txn.State() == TxnActive {
			txn.Commit()
		}
	}
}

// TestOrderedUpdateDeadlock reproduces d17/d18: two transactions update
// the same two rows in opposite orders.
func TestOrderedUpdateDeadlock(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	t1, t2 := db.Begin(), db.Begin()
	exec(t, t1, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(1), I64(1))
	exec(t, t2, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(2), I64(2))

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := t1.Exec(sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`), []Datum{I64(1), I64(2)})
		errs <- err
	}()
	go func() {
		defer wg.Done()
		_, err := t2.Exec(sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`), []Datum{I64(2), I64(1)})
		errs <- err
	}()
	wg.Wait()
	close(errs)
	var deadlocked, succeeded int
	for err := range errs {
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, ErrDeadlock):
			deadlocked++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocked != 1 || succeeded != 1 {
		t.Fatalf("deadlocked=%d succeeded=%d", deadlocked, succeeded)
	}
	for _, txn := range []*Txn{t1, t2} {
		if txn.State() == TxnActive {
			txn.Commit()
		}
	}
}

// TestNoFalseDeadlock: disjoint keys must not deadlock.
func TestNoFalseDeadlock(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := db.Begin()
				id := I64(int64(100 + g)) // per-goroutine key
				_, err := txn.Exec(sqlast.MustParse(`INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?`),
					[]Datum{id, I64(int64(i)), I64(int64(i))})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					txn.Rollback()
					return
				}
				txn.Commit()
			}
		}(g)
	}
	wg.Wait()
	if dl := db.StatsSnapshot().Deadlocks; dl != 0 {
		t.Errorf("deadlocks on disjoint keys = %d", dl)
	}
}

// TestConcurrentCounterConsistency hammers one row with read-modify-write
// transactions (retrying deadlock victims) and checks the final value,
// verifying 2PL isolation end to end.
func TestConcurrentCounterConsistency(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	var committed int64
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for { // retry deadlock/timeout victims
					txn := db.Begin()
					rs, err := txn.Exec(sqlast.MustParse(`SELECT p.QTY FROM Product p WHERE p.ID = ?`), []Datum{I64(3)})
					if err == nil {
						qty := rs.Rows[0][0].I
						_, err = txn.Exec(sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`),
							[]Datum{I64(qty + 1), I64(3)})
					}
					if err == nil {
						if err = txn.Commit(); err == nil {
							mu.Lock()
							committed++
							mu.Unlock()
							break
						}
					}
					txn.Rollback()
				}
			}
		}()
	}
	wg.Wait()
	check := db.Begin()
	rs := exec(t, check, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(3))
	check.Commit()
	want := int64(100) + committed
	if rs.Rows[0][0].I != want {
		t.Errorf("final qty = %d, want %d (committed=%d)", rs.Rows[0][0].I, want, committed)
	}
	if committed != goroutines*iters {
		t.Errorf("committed = %d, want %d", committed, goroutines*iters)
	}
}

func TestNextID(t *testing.T) {
	db := openTest(t)
	if db.NextID("Product") != 1 || db.NextID("Product") != 2 {
		t.Error("NextID sequence broken")
	}
	db.BumpID("Product", 100)
	if got := db.NextID("Product"); got != 101 {
		t.Errorf("NextID after bump = %d", got)
	}
	db.BumpID("Product", 5) // lower bump is a no-op
	if got := db.NextID("Product"); got != 102 {
		t.Errorf("NextID after low bump = %d", got)
	}
}

func TestLockWaitTimeout(t *testing.T) {
	db := Open(testSchema(), Config{LockWaitTimeout: 50 * time.Millisecond})
	seedQuick(t, db)
	holder := db.Begin()
	exec(t, holder, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(0), I64(1))
	waiter := db.Begin()
	_, err := waiter.Exec(sqlast.MustParse(`UPDATE Product SET QTY = ? WHERE ID = ?`), []Datum{I64(1), I64(1)})
	if !errors.Is(err, ErrLockWaitTimeout) {
		t.Fatalf("err = %v", err)
	}
	holder.Commit()
}

func seedQuick(t *testing.T, db *DB) {
	t.Helper()
	txn := db.Begin()
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?)`, I64(1), I64(100))
	txn.Commit()
}

func TestParamCountMismatch(t *testing.T) {
	db := openTest(t)
	txn := db.Begin()
	_, err := txn.Exec(sqlast.MustParse(`SELECT * FROM Product p WHERE p.ID = ?`), nil)
	if err == nil {
		t.Fatal("expected param count error")
	}
	txn.Rollback()
}

func TestFullScanLocksSupremum(t *testing.T) {
	// A full scan next-key locks everything including the supremum, so a
	// concurrent insert anywhere must block.
	db := openTest(t)
	seed(t, db)
	scanner := db.Begin()
	exec(t, scanner, `SELECT * FROM Product p`)
	ins := db.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := ins.Exec(sqlast.MustParse(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`), []Datum{I64(99), I64(1)})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("insert did not block on scan's gap locks (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	scanner.Commit()
	if err := <-done; err != nil {
		t.Fatalf("insert after scanner commit: %v", err)
	}
	ins.Commit()
}

func TestStatsCounters(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	base := db.StatsSnapshot()
	txn := db.Begin()
	exec(t, txn, `SELECT * FROM Product p WHERE p.ID = ?`, I64(1))
	txn.Commit()
	st := db.StatsSnapshot()
	if st.Statements != base.Statements+1 {
		t.Errorf("statements %d -> %d", base.Statements, st.Statements)
	}
	if st.Commits != base.Commits+1 {
		t.Errorf("commits %d -> %d", base.Commits, st.Commits)
	}
}

func TestTableRows(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	rows := db.TableRows("Product")
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i+1) {
			t.Errorf("row %d id = %v (not in pk order)", i, r[0])
		}
	}
}

func TestRangeScanBySecondaryIndex(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	rs := exec(t, txn, `SELECT oi.ID FROM OrderItem oi WHERE oi.O_ID = ?`, I64(1))
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	txn.Commit()
}

func TestManyRowsScanFilter(t *testing.T) {
	db := openTest(t)
	txn := db.Begin()
	for i := int64(1); i <= 100; i++ {
		exec(t, txn, fmt.Sprintf(`INSERT INTO Product (ID, QTY) VALUES (%d, %d)`, i, i%10))
	}
	txn.Commit()
	q := db.Begin()
	// No index on QTY: full scan with a filter predicate.
	rs := exec(t, q, `SELECT p.ID FROM Product p WHERE p.QTY = 3`)
	if len(rs.Rows) != 10 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	q.Commit()
}
