package minidb

import (
	"fmt"

	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

// Predicate evaluation over bound rows, with SQL ternary-logic semantics
// reduced to the fragment we need: a comparison involving NULL is not
// satisfied, and IS NULL tests nullness directly.

// resolve produces the concrete value of an operand. Column references
// need their alias bound in bindings; ok is false otherwise.
func (ex *executor) resolve(op sqlast.Operand, bindings map[string]Row, tables map[string]*tableStore) (Datum, bool) {
	switch op.Kind {
	case sqlast.Param:
		if op.Ord >= len(ex.params) {
			panic(fmt.Sprintf("minidb: parameter ordinal %d out of range", op.Ord))
		}
		return ex.params[op.Ord], true
	case sqlast.ConstInt:
		return I64(op.Int), true
	case sqlast.ConstReal:
		return Real(op.Real), true
	case sqlast.ConstStr:
		return Str(op.Str), true
	case sqlast.Null:
		return NullDatum(KInt), true
	case sqlast.Col:
		row, ok := bindings[op.Table]
		if !ok {
			return Datum{}, false
		}
		ts, ok := tables[op.Table]
		if !ok {
			return Datum{}, false
		}
		return row[colIdx(ts.meta, op.Column)], true
	}
	panic("minidb: bad operand kind")
}

// evalPred evaluates one predicate; unresolvable operands make it false.
func (ex *executor) evalPred(p sqlast.Pred, bindings map[string]Row, tables map[string]*tableStore) bool {
	l, ok := ex.resolve(p.L, bindings, tables)
	if !ok {
		return false
	}
	if p.IsNull {
		return l.Null
	}
	r, ok := ex.resolve(p.R, bindings, tables)
	if !ok {
		return false
	}
	if l.Null || r.Null {
		return false // SQL UNKNOWN collapses to not-satisfied
	}
	c := l.Cmp(r)
	switch p.Op {
	case smt.EQ:
		return c == 0
	case smt.NE:
		return c != 0
	case smt.LT:
		return c < 0
	case smt.LE:
		return c <= 0
	case smt.GT:
		return c > 0
	case smt.GE:
		return c >= 0
	}
	panic("minidb: bad predicate op")
}

// evalCond evaluates the conjunction of simple predicates and disjunctive
// groups.
func (ex *executor) evalCond(c sqlast.Cond, bindings map[string]Row, tables map[string]*tableStore) bool {
	for _, p := range c.Preds {
		if !ex.evalPred(p, bindings, tables) {
			return false
		}
	}
	for _, g := range c.Ors {
		sat := false
		for _, dj := range g.Disjuncts {
			all := true
			for _, p := range dj {
				if !ex.evalPred(p, bindings, tables) {
					all = false
					break
				}
			}
			if all {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
