package minidb

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Locking follows InnoDB's design: locks attach to index entries. A
// record lock protects one entry; a gap lock protects the open interval
// below an entry (the supremum pseudo-entry bounds the last gap); a
// next-key lock is the combination, acquired as two resources. Insert
// intention is a special gap-mode request that waits for others' gap
// locks but never blocks anything itself.

// Errors returned by lock acquisition. A deadlock aborts the requesting
// transaction (the victim), mirroring detect-and-recover databases.
var (
	// ErrDeadlock is returned to the victim of a detected deadlock.
	ErrDeadlock = errors.New("minidb: deadlock detected, transaction aborted")
	// ErrLockWaitTimeout is returned when a lock wait exceeds the limit.
	ErrLockWaitTimeout = errors.New("minidb: lock wait timeout, transaction aborted")
)

// LockMode is the requested lock strength.
type LockMode uint8

// Lock modes. LockII is insert intention.
const (
	LockS LockMode = iota
	LockX
	LockII
)

func (m LockMode) String() string {
	switch m {
	case LockS:
		return "S"
	case LockX:
		return "X"
	case LockII:
		return "II"
	}
	return "?"
}

// resKind distinguishes record locks from gap locks.
type resKind uint8

const (
	resRecord resKind = iota
	resGap
)

// resource names one lockable unit: an index entry or the gap below it.
type resource struct {
	table string
	index string
	key   string // encoded entry key; supremumKey bounds the last gap
	kind  resKind
}

// supremumKey is the pseudo-record above every real key in an index.
const supremumKey = "+inf"

// conflicts reports whether a granted lock blocks a request on the same
// resource. The matrix mirrors InnoDB: record S/X conflict as usual; gap
// locks are mutually compatible regardless of mode; insert intention
// waits for gap locks held by others but blocks nothing.
func conflicts(held, req LockMode, kind resKind) bool {
	if kind == resRecord {
		return held == LockX || req == LockX
	}
	// Gap resource.
	if req == LockII {
		return held == LockS || held == LockX
	}
	return false
}

// covers reports whether holding mode a makes a request for mode b
// redundant on the same resource.
func covers(a, b LockMode) bool {
	if a == b {
		return true
	}
	return a == LockX && b == LockS
}

type lockReq struct {
	txn  *Txn
	mode LockMode
	res  resource
	// wake receives nil when the lock is granted. Buffered so a releaser
	// never blocks handing the lock over.
	wake chan struct{}
}

type lockQueue struct {
	grants  []*lockReq
	waiters []*lockReq
}

// lockManager is the global lock table.
type lockManager struct {
	mu     sync.Mutex
	queues map[resource]*lockQueue

	deadlocks atomic.Int64
	waits     atomic.Int64

	// deadlocksBy counts deadlock victims by the table of the resource
	// the victim was requesting — the fix-verification loop's evidence
	// that a fix silenced its table. Guarded by mu (the victim site
	// already holds it).
	deadlocksBy map[string]int64
}

func newLockManager() *lockManager {
	return &lockManager{queues: map[resource]*lockQueue{}, deadlocksBy: map[string]int64{}}
}

func (lm *lockManager) queue(res resource) *lockQueue {
	q := lm.queues[res]
	if q == nil {
		q = &lockQueue{}
		lm.queues[res] = q
	}
	return q
}

// holdsAtLeast reports whether txn already holds a lock on res covering
// mode. Caller holds lm.mu.
func (lm *lockManager) holdsAtLeast(q *lockQueue, txn *Txn, mode LockMode) bool {
	for _, g := range q.grants {
		if g.txn == txn && covers(g.mode, mode) {
			return true
		}
	}
	return false
}

// grantable reports whether txn may be granted mode on q given current
// grants by other transactions. Caller holds lm.mu.
func (lm *lockManager) grantable(q *lockQueue, txn *Txn, mode LockMode, kind resKind) bool {
	for _, g := range q.grants {
		if g.txn == txn {
			continue
		}
		if conflicts(g.mode, mode, kind) {
			return false
		}
	}
	return true
}

// TryAcquire grants the lock iff it is immediately available. It never
// waits and never detects deadlocks.
func (lm *lockManager) TryAcquire(txn *Txn, res resource, mode LockMode) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	q := lm.queue(res)
	if lm.holdsAtLeast(q, txn, mode) {
		return true
	}
	if !lm.grantable(q, txn, mode, res.kind) {
		return false
	}
	lm.grant(q, &lockReq{txn: txn, mode: mode, res: res})
	return true
}

// grant records a granted request. Caller holds lm.mu.
func (lm *lockManager) grant(q *lockQueue, r *lockReq) {
	q.grants = append(q.grants, r)
	r.txn.held = append(r.txn.held, r.res)
}

// Acquire blocks until the lock is granted, the wait times out, or a
// deadlock is detected with txn as victim.
func (lm *lockManager) Acquire(txn *Txn, res resource, mode LockMode, timeout time.Duration) error {
	lm.mu.Lock()
	q := lm.queue(res)
	if lm.holdsAtLeast(q, txn, mode) {
		lm.mu.Unlock()
		return nil
	}
	if lm.grantable(q, txn, mode, res.kind) {
		lm.grant(q, &lockReq{txn: txn, mode: mode, res: res})
		lm.mu.Unlock()
		return nil
	}
	req := &lockReq{txn: txn, mode: mode, res: res, wake: make(chan struct{}, 1)}
	q.waiters = append(q.waiters, req)
	txn.waitingFor = req
	if lm.cycleThrough(txn) {
		// txn is the victim: withdraw the request and abort.
		lm.removeWaiter(q, req)
		txn.waitingFor = nil
		lm.deadlocks.Add(1)
		lm.deadlocksBy[res.table]++
		lm.mu.Unlock()
		return ErrDeadlock
	}
	lm.waits.Add(1)
	lm.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-req.wake:
		return nil
	case <-timer.C:
	}
	// Timed out — but the grant may have raced with the timer.
	lm.mu.Lock()
	defer lm.mu.Unlock()
	select {
	case <-req.wake:
		return nil
	default:
	}
	lm.removeWaiter(q, req)
	txn.waitingFor = nil
	return ErrLockWaitTimeout
}

func (lm *lockManager) removeWaiter(q *lockQueue, req *lockReq) {
	for i, w := range q.waiters {
		if w == req {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// cycleThrough detects whether the waits-for graph contains a cycle
// passing through start. Caller holds lm.mu. Edges: a waiting transaction
// waits for every transaction holding a conflicting grant on the same
// resource.
func (lm *lockManager) cycleThrough(start *Txn) bool {
	// DFS over transactions; blockersOf computes out-edges lazily.
	visited := map[*Txn]bool{}
	var dfs func(t *Txn) bool
	dfs = func(t *Txn) bool {
		if visited[t] {
			return false
		}
		visited[t] = true
		req := t.waitingFor
		if req == nil {
			return false
		}
		q := lm.queues[req.res]
		if q == nil {
			return false
		}
		for _, g := range q.grants {
			if g.txn == t || !conflicts(g.mode, req.mode, req.res.kind) {
				continue
			}
			if g.txn == start {
				return true
			}
			if dfs(g.txn) {
				return true
			}
		}
		return false
	}
	return dfs(start)
}

// ReleaseAll drops every lock txn holds and wakes newly grantable
// waiters. Called at commit and rollback (strict 2PL).
func (lm *lockManager) ReleaseAll(txn *Txn) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	seen := map[resource]bool{}
	for _, res := range txn.held {
		if seen[res] {
			continue
		}
		seen[res] = true
		q := lm.queues[res]
		if q == nil {
			continue
		}
		kept := q.grants[:0]
		for _, g := range q.grants {
			if g.txn != txn {
				kept = append(kept, g)
			}
		}
		q.grants = kept
		lm.promote(res, q)
		if len(q.grants) == 0 && len(q.waiters) == 0 {
			delete(lm.queues, res)
		}
	}
	txn.held = nil
}

// promote grants queued waiters that are now compatible, in FIFO order.
// Caller holds lm.mu.
func (lm *lockManager) promote(res resource, q *lockQueue) {
	kept := q.waiters[:0]
	for _, w := range q.waiters {
		if lm.grantable(q, w.txn, w.mode, res.kind) {
			lm.grant(q, w)
			w.txn.waitingFor = nil
			w.wake <- struct{}{}
			continue
		}
		kept = append(kept, w)
	}
	q.waiters = kept
}
