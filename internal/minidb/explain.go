package minidb

import (
	"weseer/internal/sqlast"
)

// Explain exposes the executor's chosen access paths — the engine's
// EXPLAIN. The planner is deterministic over the statement's shape (it
// binds equality predicates to index prefixes; see planScan), so the
// result describes exactly the indexes execution traverses and therefore
// the locks it acquires. WeSEER's collector records this plan per
// statement, implementing the paper's Sec. V-D future-work suggestion to
// replace "assume all possible join orders" with the database's concrete
// execution plan.

// AccessPath describes how one table alias is accessed.
type AccessPath struct {
	Alias string
	Table string
	// Index is the traversed index name, or "" for a full table scan.
	Index string
	// EqColumns is the bound equality prefix of the index.
	EqColumns []string
}

// Explain returns the access path per alias for the statement, in join
// order. Parameter values are not needed: index selection depends only
// on which predicates bind index prefixes.
func (db *DB) Explain(st sqlast.Stmt) []AccessPath {
	ex := &executor{}
	switch s := st.(type) {
	case *sqlast.Select:
		aliases := []string{s.From.Alias()}
		tables := map[string]*tableStore{s.From.Alias(): db.table(s.From.Table)}
		for _, j := range s.Joins {
			aliases = append(aliases, j.Ref.Alias())
			tables[j.Ref.Alias()] = db.table(j.Ref.Table)
		}
		return accessPaths(ex.planScan(aliases, tables, s.QueryCond().Preds))
	case *sqlast.Update:
		return singleTablePath(ex, db, s.Table, s.Where)
	case *sqlast.Delete:
		return singleTablePath(ex, db, s.Table, s.Where)
	case *sqlast.Insert:
		return insertPaths(db, s.Table)
	case *sqlast.Upsert:
		return insertPaths(db, s.Table)
	}
	return nil
}

func singleTablePath(ex *executor, db *DB, table string, where sqlast.Cond) []AccessPath {
	tables := map[string]*tableStore{table: db.table(table)}
	return accessPaths(ex.planScan([]string{table}, tables, where.Preds))
}

func accessPaths(plan []access) []AccessPath {
	out := make([]AccessPath, 0, len(plan))
	for _, ac := range plan {
		p := AccessPath{Alias: ac.alias, Table: ac.ts.meta.Name}
		if ac.ix != nil {
			p.Index = ac.ix.Name
			for _, b := range ac.eq {
				p.EqColumns = append(p.EqColumns, b.col)
			}
		}
		out = append(out, p)
	}
	return out
}

// insertPaths reports the indexes an INSERT writes: the primary plus
// every secondary (each receives an entry).
func insertPaths(db *DB, table string) []AccessPath {
	t := db.table(table).meta
	out := []AccessPath{{Alias: table, Table: table, Index: "PRIMARY", EqColumns: t.PrimaryIndex().Columns}}
	for _, ix := range t.SecondaryIndexes() {
		out = append(out, AccessPath{Alias: table, Table: table, Index: ix.Name, EqColumns: ix.Columns})
	}
	return out
}
