package minidb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weseer/internal/btree"
	"weseer/internal/schema"
)

// Execution errors.
var (
	// ErrDuplicateKey reports a primary or unique index violation.
	ErrDuplicateKey = errors.New("minidb: duplicate key")
	// ErrTxnDone reports use of a committed or aborted transaction.
	ErrTxnDone = errors.New("minidb: transaction is not active")
)

// Config tunes engine behavior.
type Config struct {
	// LockWaitTimeout bounds a single lock wait; the transaction aborts on
	// expiry. Defaults to 5s.
	LockWaitTimeout time.Duration
	// StatementDelay simulates per-statement client/server round-trip
	// latency (the paper's testbed talks to MySQL over a 10GbE network).
	// It is charged while the statement's locks are held, so aborted
	// transactions waste proportional work — the performance cost the
	// detect-and-recover strategy incurs. Zero disables it.
	StatementDelay time.Duration
}

// Stats are cumulative engine counters. Aborts counts every rolled-back
// transaction; Deadlocks counts deadlock victims specifically — the
// number the paper reports dropping from 904/s to 0 after fixes.
type Stats struct {
	Commits    int64
	Aborts     int64
	Deadlocks  int64
	LockWaits  int64
	Statements int64
}

// DB is an in-memory database instance.
type DB struct {
	scm *schema.Schema
	cfg Config
	lm  *lockManager

	// latch serializes physical access to table storage. Logical
	// isolation comes from the lock manager; the latch only protects the
	// in-memory structures, like InnoDB page latches.
	latch  sync.Mutex
	tables map[string]*tableStore

	txnSeq  atomic.Int64
	autoinc map[string]*atomic.Int64

	commits    atomic.Int64
	aborts     atomic.Int64
	statements atomic.Int64
}

// rowEntry is one primary-index record. Deleted rows stay in the tree as
// delete-marked tombstones until the deleting transaction commits (purge)
// — readers probing the key block on the deleter's record lock instead of
// observing an uncommitted disappearance, as in InnoDB.
type rowEntry struct {
	row     Row
	deleted bool
}

// secEntry is one secondary-index record, delete-marked the same way.
type secEntry struct {
	pk      Key
	deleted bool
}

// tableStore is one table's storage: a primary B-tree holding rows and
// one B-tree per secondary index mapping entry keys to primary keys.
type tableStore struct {
	meta    *schema.Table
	primary *btree.Map[Key, *rowEntry]
	// secondary entry keys are the indexed columns followed by the full
	// primary key, so non-unique entries stay distinct.
	secondaries map[string]*btree.Map[Key, *secEntry]
}

// Open creates a database for the schema. Every table must have a
// primary key; heap tables are outside the supported subset.
func Open(scm *schema.Schema, cfg Config) *DB {
	if cfg.LockWaitTimeout == 0 {
		cfg.LockWaitTimeout = 5 * time.Second
	}
	db := &DB{
		scm:     scm,
		cfg:     cfg,
		lm:      newLockManager(),
		tables:  map[string]*tableStore{},
		autoinc: map[string]*atomic.Int64{},
	}
	for _, t := range scm.Tables() {
		if t.PrimaryIndex() == nil {
			panic(fmt.Sprintf("minidb: table %s has no primary key", t.Name))
		}
		ts := &tableStore{
			meta:        t,
			primary:     btree.New[Key, *rowEntry](func(a, b Key) int { return a.Cmp(b) }),
			secondaries: map[string]*btree.Map[Key, *secEntry]{},
		}
		for _, ix := range t.SecondaryIndexes() {
			ts.secondaries[ix.Name] = btree.New[Key, *secEntry](func(a, b Key) int { return a.Cmp(b) })
		}
		db.tables[t.Name] = ts
		db.autoinc[t.Name] = &atomic.Int64{}
	}
	return db
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.scm }

// NextID returns the next auto-increment value for a table. The ORM uses
// it to assign primary keys to new persistent objects.
func (db *DB) NextID(table string) int64 {
	c, ok := db.autoinc[table]
	if !ok {
		panic("minidb: NextID of unknown table " + table)
	}
	return c.Add(1)
}

// BumpID raises the auto-increment floor to at least v; loading fixtures
// with explicit keys uses it to keep NextID collision-free.
func (db *DB) BumpID(table string, v int64) {
	c := db.autoinc[table]
	for {
		cur := c.Load()
		if cur >= v || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StatsSnapshot returns current counters.
func (db *DB) StatsSnapshot() Stats {
	return Stats{
		Commits:    db.commits.Load(),
		Aborts:     db.aborts.Load(),
		Deadlocks:  db.lm.deadlocks.Load(),
		LockWaits:  db.lm.waits.Load(),
		Statements: db.statements.Load(),
	}
}

// DeadlockVictimsByTable returns the cumulative deadlock-victim counts
// keyed by the table of the lock the victim was requesting when it was
// chosen. The fixgain experiment diffs snapshots around a workload run
// to attribute aborts to the planted (or fixed) tables.
func (db *DB) DeadlockVictimsByTable() map[string]int64 {
	db.lm.mu.Lock()
	defer db.lm.mu.Unlock()
	out := make(map[string]int64, len(db.lm.deadlocksBy))
	for t, n := range db.lm.deadlocksBy {
		out[t] = n
	}
	return out
}

// table returns the store for a table name.
func (db *DB) table(name string) *tableStore {
	ts, ok := db.tables[name]
	if !ok {
		panic("minidb: unknown table " + name)
	}
	return ts
}

// TableRows returns a snapshot of every row of a table in primary-key
// order — a debugging and fixture-verification aid, not part of the
// transactional path.
func (db *DB) TableRows(name string) []Row {
	db.latch.Lock()
	defer db.latch.Unlock()
	var out []Row
	db.table(name).primary.AscendAll(func(_ Key, e *rowEntry) bool {
		if !e.deleted {
			out = append(out, e.row.clone())
		}
		return true
	})
	return out
}

// colIdx returns the position of col in the table's column order.
func colIdx(t *schema.Table, col string) int {
	for i := range t.Columns {
		if t.Columns[i].Name == col {
			return i
		}
	}
	panic(fmt.Sprintf("minidb: unknown column %s.%s", t.Name, col))
}

// keyOf extracts the index key of a row (for secondaries, indexed columns
// plus the primary key suffix).
func (ts *tableStore) keyOf(ix *schema.Index, row Row) Key {
	var k Key
	for _, c := range ix.Columns {
		k = append(k, row[colIdx(ts.meta, c)])
	}
	if ix.Type == schema.Secondary {
		for _, c := range ts.meta.PrimaryIndex().Columns {
			k = append(k, row[colIdx(ts.meta, c)])
		}
	}
	return k
}

// primaryKeyOf extracts the primary key of a row.
func (ts *tableStore) primaryKeyOf(row Row) Key {
	var k Key
	for _, c := range ts.meta.PrimaryIndex().Columns {
		k = append(k, row[colIdx(ts.meta, c)])
	}
	return k
}
