// Package minidb is an in-memory SQL database engine with InnoDB-style
// locking. It stands in for MySQL 5.7 in the paper's evaluation: it
// executes the Fig. 6 statement subset over B-tree indexes, acquires
// record, gap, next-key, and insert-intention locks during index
// traversal, runs strict two-phase locking, and handles deadlocks with
// the detect-and-recover strategy (wait-for-graph cycle detection and
// victim abort) whose performance cost WeSEER exists to eliminate.
package minidb

import (
	"fmt"
	"math/big"
	"strings"

	"weseer/internal/schema"
)

// Kind is a runtime value kind.
type Kind uint8

// Datum kinds.
const (
	KInt Kind = iota
	KReal
	KStr
)

// Datum is a concrete SQL value, possibly NULL.
type Datum struct {
	Null bool
	Kind Kind
	I    int64
	R    *big.Rat
	S    string
}

// NullDatum returns the NULL value of the given kind.
func NullDatum(k Kind) Datum { return Datum{Null: true, Kind: k} }

// I64 returns an integer datum.
func I64(v int64) Datum { return Datum{Kind: KInt, I: v} }

// Str returns a string datum.
func Str(s string) Datum { return Datum{Kind: KStr, S: s} }

// Real returns a decimal datum (r is not copied; callers treat datums as
// immutable).
func Real(r *big.Rat) Datum { return Datum{Kind: KReal, R: r} }

// RealInt returns a decimal datum with an integral value.
func RealInt(v int64) Datum { return Datum{Kind: KReal, R: big.NewRat(v, 1)} }

func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.Kind {
	case KInt:
		return fmt.Sprintf("%d", d.I)
	case KReal:
		return d.R.RatString()
	case KStr:
		return fmt.Sprintf("'%s'", d.S)
	}
	return "<bad datum>"
}

// numeric reports whether the datum is Int or Real.
func (d Datum) numeric() bool { return d.Kind == KInt || d.Kind == KReal }

func (d Datum) rat() *big.Rat {
	if d.Kind == KInt {
		return new(big.Rat).SetInt64(d.I)
	}
	return d.R
}

// Cmp totally orders datums: NULL sorts before everything; numerics
// compare numerically across Int/Real; strings compare bytewise. Kinds
// must otherwise match (schema typing guarantees it).
func (d Datum) Cmp(o Datum) int {
	switch {
	case d.Null && o.Null:
		return 0
	case d.Null:
		return -1
	case o.Null:
		return 1
	}
	if d.numeric() && o.numeric() {
		if d.Kind == KInt && o.Kind == KInt {
			switch {
			case d.I < o.I:
				return -1
			case d.I > o.I:
				return 1
			}
			return 0
		}
		return d.rat().Cmp(o.rat())
	}
	if d.Kind == KStr && o.Kind == KStr {
		return strings.Compare(d.S, o.S)
	}
	panic(fmt.Sprintf("minidb: comparing %v with %v", d.Kind, o.Kind))
}

// Equal reports datum equality under Cmp; NULL equals only NULL.
func (d Datum) Equal(o Datum) bool { return d.Cmp(o) == 0 }

// Key is a composite index key, ordered lexicographically.
type Key []Datum

// Cmp lexicographically orders keys. A shorter key that is a prefix of a
// longer one sorts first, which makes prefix scans natural.
func (k Key) Cmp(o Key) int {
	n := len(k)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := k[i].Cmp(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(k) < len(o):
		return -1
	case len(k) > len(o):
		return 1
	}
	return 0
}

func (k Key) String() string {
	parts := make([]string, len(k))
	for i, d := range k {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// KindOf maps a schema column type to the datum kind.
func KindOf(t schema.ColType) Kind {
	switch t {
	case schema.Int:
		return KInt
	case schema.Decimal:
		return KReal
	case schema.Varchar:
		return KStr
	}
	panic("minidb: unknown column type")
}

// Row is a stored row: values aligned with the table's column order.
type Row []Datum

// clone returns a deep-enough copy (datums are immutable).
func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
