package minidb

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestDatumCmpInts(t *testing.T) {
	f := func(a, b int32) bool {
		c := I64(int64(a)).Cmp(I64(int64(b)))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		}
		return c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDatumCmpStrings(t *testing.T) {
	f := func(a, b string) bool {
		c := Str(a).Cmp(Str(b))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		}
		return c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDatumCmpMixedNumeric(t *testing.T) {
	// Int and Real compare numerically across kinds.
	if I64(2).Cmp(Real(big.NewRat(5, 2))) >= 0 {
		t.Error("2 < 5/2")
	}
	if RealInt(3).Cmp(I64(3)) != 0 {
		t.Error("3 (Real) == 3 (Int)")
	}
	if !I64(4).Equal(Real(big.NewRat(8, 2))) {
		t.Error("4 == 8/2")
	}
}

func TestDatumNullOrdering(t *testing.T) {
	n := NullDatum(KInt)
	if n.Cmp(I64(-1<<62)) >= 0 {
		t.Error("NULL sorts before every value")
	}
	if n.Cmp(NullDatum(KStr)) != 0 {
		t.Error("NULL == NULL regardless of kind")
	}
	if !n.Equal(NullDatum(KInt)) {
		t.Error("NULL equals NULL")
	}
}

// TestKeyCmpLexicographic: composite keys order lexicographically, with
// a proper prefix sorting first.
func TestKeyCmpLexicographic(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		ka := Key{I64(int64(a1)), I64(int64(a2))}
		kb := Key{I64(int64(b1)), I64(int64(b2))}
		c := ka.Cmp(kb)
		want := 0
		switch {
		case a1 != b1:
			want = sign(int64(a1) - int64(b1))
		case a2 != b2:
			want = sign(int64(a2) - int64(b2))
		}
		return sign(int64(c)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Prefix ordering.
	if (Key{I64(1)}).Cmp(Key{I64(1), I64(0)}) >= 0 {
		t.Error("(1) < (1,0)")
	}
	if (Key{I64(1), I64(0)}).Cmp(Key{I64(1)}) <= 0 {
		t.Error("(1,0) > (1)")
	}
}

func sign(v int64) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

// TestKeyCmpTotalOrder: antisymmetry and transitivity over random keys.
func TestKeyCmpTotalOrder(t *testing.T) {
	mk := func(a, b int8) Key { return Key{I64(int64(a)), Str(string(rune('a' + int(b)%26)))} }
	f := func(a1, b1, a2, b2, a3, b3 int8) bool {
		x, y, z := mk(a1, b1), mk(a2, b2), mk(a3, b3)
		if sign(int64(x.Cmp(y))) != -sign(int64(y.Cmp(x))) {
			return false
		}
		if x.Cmp(y) <= 0 && y.Cmp(z) <= 0 && x.Cmp(z) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDatumString(t *testing.T) {
	cases := map[string]Datum{
		"NULL":  NullDatum(KInt),
		"7":     I64(7),
		"3/2":   Real(big.NewRat(3, 2)),
		"'abc'": Str("abc"),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", d, got, want)
		}
	}
}
