package minidb

import (
	"errors"
	"math/big"
	"sync"
	"testing"
	"time"

	"weseer/internal/schema"
	"weseer/internal/sqlast"
)

// Additional executor coverage: NULL handling, decimal columns, delete
// semantics under rollback, upsert undo, gap behavior around deletes,
// and randomized multi-writer consistency.

func decimalSchema() *schema.Schema {
	s := schema.New()
	s.AddTable("Acct").
		Col("ID", schema.Int).
		Col("BAL", schema.Decimal).
		Col("NOTE", schema.Varchar).
		PrimaryKey("ID")
	return s
}

func TestDecimalColumnRoundTrip(t *testing.T) {
	db := Open(decimalSchema(), Config{})
	txn := db.Begin()
	if _, err := txn.Exec(sqlast.MustParse(`INSERT INTO Acct (ID, BAL) VALUES (?, ?)`),
		[]Datum{I64(1), Real(big.NewRat(355, 113))}); err != nil {
		t.Fatal(err)
	}
	rs, err := txn.Exec(sqlast.MustParse(`SELECT a.BAL FROM Acct a WHERE a.ID = ?`), []Datum{I64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].R.Cmp(big.NewRat(355, 113)) != 0 {
		t.Errorf("bal = %v", rs.Rows[0][0])
	}
	txn.Commit()
}

func TestNullColumnsAndIsNull(t *testing.T) {
	db := Open(decimalSchema(), Config{})
	txn := db.Begin()
	// NOTE omitted: stored as NULL.
	if _, err := txn.Exec(sqlast.MustParse(`INSERT INTO Acct (ID, BAL) VALUES (?, ?)`),
		[]Datum{I64(1), RealInt(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec(sqlast.MustParse(`INSERT INTO Acct (ID, BAL, NOTE) VALUES (?, ?, ?)`),
		[]Datum{I64(2), RealInt(6), Str("x")}); err != nil {
		t.Fatal(err)
	}
	rs, err := txn.Exec(sqlast.MustParse(`SELECT a.ID FROM Acct a WHERE a.NOTE IS NULL`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 1 {
		t.Errorf("IS NULL rows = %v", rs.Rows)
	}
	// Comparisons against NULL are not satisfied.
	rs, _ = txn.Exec(sqlast.MustParse(`SELECT a.ID FROM Acct a WHERE a.NOTE = 'x'`), nil)
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 2 {
		t.Errorf("= over NULL rows = %v", rs.Rows)
	}
	txn.Commit()
}

func TestUpsertRollback(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	// Update-arm upsert, then roll back: original value must return.
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?`,
		I64(1), I64(0), I64(0))
	// Insert-arm upsert.
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?`,
		I64(70), I64(7), I64(7))
	txn.Rollback()
	check := db.Begin()
	rs := exec(t, check, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(1))
	if rs.Rows[0][0].I != 100 {
		t.Errorf("upsert-update not rolled back: %v", rs.Rows[0][0])
	}
	if rs := exec(t, check, `SELECT * FROM Product p WHERE p.ID = ?`, I64(70)); len(rs.Rows) != 0 {
		t.Errorf("upsert-insert not rolled back")
	}
	check.Commit()
}

func TestDeleteThenReinsert(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	exec(t, txn, `DELETE FROM Product WHERE ID = ?`, I64(2))
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?)`, I64(2), I64(55))
	txn.Commit()
	check := db.Begin()
	rs := exec(t, check, `SELECT p.QTY FROM Product p WHERE p.ID = ?`, I64(2))
	if rs.Rows[0][0].I != 55 {
		t.Errorf("qty = %v", rs.Rows[0][0])
	}
	check.Commit()
}

func TestDeleteBlocksConcurrentPointRead(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	del := db.Begin()
	exec(t, del, `DELETE FROM Product WHERE ID = ?`, I64(1))
	got := make(chan int, 1)
	go func() {
		r := db.Begin()
		rs, err := r.Exec(sqlast.MustParse(`SELECT * FROM Product p WHERE p.ID = ?`), []Datum{I64(1)})
		if err != nil {
			got <- -1
			return
		}
		r.Commit()
		got <- len(rs.Rows)
	}()
	select {
	case <-got:
		t.Fatal("reader did not block on deleter's X lock")
	case <-time.After(50 * time.Millisecond):
	}
	del.Rollback() // deletion undone: the reader must see the row again
	if n := <-got; n != 1 {
		t.Errorf("post-rollback read rows = %d", n)
	}
}

// TestConcurrentInsertDeleteConsistency: interleaved inserts and deletes
// across goroutines never corrupt index/row agreement.
func TestConcurrentInsertDeleteConsistency(t *testing.T) {
	db := openTest(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(1000 + g*100)
			for i := int64(0); i < 30; i++ {
				id := base + i
				txn := db.Begin()
				if _, err := txn.Exec(sqlast.MustParse(`INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`),
					[]Datum{I64(id), I64(id % 7), I64(id % 5), I64(1)}); err != nil {
					txn.Rollback()
					continue
				}
				if i%3 == 0 {
					if _, err := txn.Exec(sqlast.MustParse(`DELETE FROM OrderItem WHERE ID = ?`), []Datum{I64(id)}); err != nil {
						txn.Rollback()
						continue
					}
				}
				txn.Commit()
			}
		}(g)
	}
	wg.Wait()
	// Every row reachable through the secondary index matches a primary
	// row, and vice versa.
	txn := db.Begin()
	for o := int64(0); o < 7; o++ {
		rs, err := txn.Exec(sqlast.MustParse(`SELECT oi.ID, oi.O_ID FROM OrderItem oi WHERE oi.O_ID = ?`), []Datum{I64(o)})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rs.Rows {
			if row[1].I != o {
				t.Fatalf("index returned row with O_ID %d for lookup %d", row[1].I, o)
			}
			prs, err := txn.Exec(sqlast.MustParse(`SELECT * FROM OrderItem oi WHERE oi.ID = ?`), []Datum{row[0]})
			if err != nil || len(prs.Rows) != 1 {
				t.Fatalf("index entry %v has no primary row (err=%v)", row[0], err)
			}
		}
	}
	txn.Commit()
}

func TestUpdateMissingRowTakesGapLock(t *testing.T) {
	// A point UPDATE of an absent key still protects the gap: a
	// concurrent insert into that gap must wait.
	db := openTest(t)
	seed(t, db)
	u := db.Begin()
	rs := exec(t, u, `UPDATE Product SET QTY = ? WHERE ID = ?`, I64(1), I64(50))
	if rs.Affected != 0 {
		t.Fatalf("affected = %d", rs.Affected)
	}
	ins := db.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := ins.Exec(sqlast.MustParse(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`), []Datum{I64(50), I64(1)})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("insert did not block on the update's gap lock (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	u.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	ins.Commit()
}

func TestStatementDelayCharged(t *testing.T) {
	db := Open(testSchema(), Config{StatementDelay: 20 * time.Millisecond})
	txn := db.Begin()
	start := time.Now()
	exec(t, txn, `INSERT INTO Product (ID, QTY) VALUES (?, ?)`, I64(1), I64(1))
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("statement returned in %v, want >= 20ms", el)
	}
	txn.Commit()
}

func TestExecErrors(t *testing.T) {
	db := openTest(t)
	seed(t, db)
	txn := db.Begin()
	// Unsupported: updating a primary key column.
	if _, err := txn.Exec(sqlast.MustParse(`UPDATE Product SET ID = ? WHERE ID = ?`), []Datum{I64(9), I64(1)}); err == nil {
		t.Error("primary-key update should fail")
	}
	// NULL primary key.
	if _, err := txn.Exec(sqlast.MustParse(`INSERT INTO Product (QTY) VALUES (?)`), []Datum{I64(1)}); err == nil {
		t.Error("NULL primary key should fail")
	}
	txn.Rollback()
	// Duplicate via unique secondary keeps the statement error typed.
	t2 := db.Begin()
	exec(t, t2, `INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`, I64(1), Str("a"))
	_, err := t2.Exec(sqlast.MustParse(`INSERT INTO Users (ID, EMAIL) VALUES (?, ?)`), []Datum{I64(2), Str("a")})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("unique violation err = %v", err)
	}
	t2.Commit()
}
