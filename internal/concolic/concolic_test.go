package concolic

import (
	"strings"
	"testing"
	"time"

	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/trace"
)

func testDB() *minidb.DB {
	s := schema.New()
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID")
	db := minidb.Open(s, minidb.Config{LockWaitTimeout: time.Second})
	txn := db.Begin()
	st, _ := prepare(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`)
	for i := int64(1); i <= 3; i++ {
		if _, err := txn.Exec(st, []minidb.Datum{minidb.I64(i), minidb.I64(10 * i)}); err != nil {
			panic(err)
		}
	}
	txn.Commit()
	return db
}

func TestValueArithmetic(t *testing.T) {
	e := New(ModeConcolic)
	e.StartConcolic("t")
	x := e.MakeSymbolic("x", Int(7))
	y := e.Add(x, Int(1))
	if y.C.I != 8 {
		t.Errorf("concrete = %v", y.C)
	}
	if y.S == nil || y.S.String() != "(x + 1)" {
		t.Errorf("symbolic = %v", y.S)
	}
	z := e.Sub(e.Mul(Int(3), x), y) // 3*7 - 8 = 13
	if z.C.I != 13 {
		t.Errorf("z = %v", z.C)
	}
	// Untracked op stays untracked.
	w := e.Add(Int(1), Int(2))
	if w.S != nil {
		t.Errorf("constant op grew symbolic state: %v", w.S)
	}
}

func TestIfRecordsPathConditions(t *testing.T) {
	// Reproduces the Sec. III example: b = a+1; if (b == 8) else-branch
	// records syma + 1 != 8.
	e := New(ModeConcolic)
	e.StartConcolic("t")
	a := e.MakeSymbolic("syma", Int(1))
	b := e.Add(a, Int(1))
	if e.If(e.Eq(b, Int(8))) {
		t.Fatal("concrete branch must follow concrete value (2 != 8)")
	}
	tr := e.EndConcolic()
	if len(tr.PathConds) != 1 {
		t.Fatalf("path conds = %d", len(tr.PathConds))
	}
	pc := tr.PathConds[0].Cond
	want := smt.Negate(smt.Eq(smt.Add(smt.NewVar("syma", smt.SortInt), smt.Int(1)), smt.Int(8)))
	if pc.String() != want.String() {
		t.Errorf("pc = %s, want %s", pc, want)
	}
	// The condition holds for the concrete execution.
	m := smt.NewModel()
	m.Vars["syma"] = smt.IntValue(1)
	if !smt.Eval(pc, m).B {
		t.Error("recorded PC contradicts concrete run")
	}
}

func TestIfConcreteOnlyNoPC(t *testing.T) {
	e := New(ModeConcolic)
	e.StartConcolic("t")
	if !e.If(e.Lt(Int(1), Int(2))) {
		t.Fatal("1 < 2")
	}
	if tr := e.EndConcolic(); len(tr.PathConds) != 0 {
		t.Errorf("constant branch recorded a PC: %v", tr.PathConds)
	}
}

func TestModeOffNoTracking(t *testing.T) {
	e := New(ModeOff)
	e.StartConcolic("t")
	x := e.MakeSymbolic("x", Int(5))
	if x.S != nil {
		t.Error("ModeOff value became symbolic")
	}
	e.If(e.Gt(x, Int(1)))
	if tr := e.EndConcolic(); tr != nil {
		t.Error("ModeOff produced a trace")
	}
}

func TestSymMapAlg1(t *testing.T) {
	e := New(ModeConcolic)
	e.StartConcolic("t")
	k := e.MakeSymbolic("k", Int(10))
	m := e.NewSymMap("cache", smt.SortInt)

	// Miss records read(arr, k) = false.
	if _, ok := m.Get(k); ok {
		t.Fatal("empty map hit")
	}
	tr := e.Trace()
	if len(tr.PathConds) != 1 || !strings.Contains(tr.PathConds[0].Cond.String(), "read(") {
		t.Fatalf("miss PC = %v", tr.PathConds)
	}

	// Put then hit: records the keyOf equality.
	obj := &struct{ v int }{v: 1}
	m.Put(k, obj)
	got, ok := m.Get(k)
	if !ok || got != obj {
		t.Fatal("lookup after put failed")
	}
	last := tr.PathConds[len(tr.PathConds)-1].Cond
	if _, isCmp := last.(*smt.Cmp); !isCmp {
		t.Errorf("hit PC should be an equality: %v", last)
	}

	// Remove then miss again.
	if !m.Remove(k) {
		t.Fatal("remove missed")
	}
	if _, ok := m.Get(k); ok {
		t.Fatal("hit after remove")
	}
	// The accumulated conditions are consistent with the concrete run.
	var all []smt.Expr
	for _, pc := range tr.PathConds {
		all = append(all, pc.Cond)
	}
	model := smt.NewModel()
	model.Vars["k"] = smt.IntValue(10)
	for i, c := range all {
		if !smt.Eval(c, model).B {
			t.Errorf("PC %d (%s) inconsistent with concrete run", i, c)
		}
	}
}

func TestSymSet(t *testing.T) {
	e := New(ModeConcolic)
	e.StartConcolic("t")
	s := e.NewSymSet("seen", smt.SortString)
	k := e.MakeSymbolic("name", Str("alice"))
	if s.Contains(k) {
		t.Fatal("empty set contains")
	}
	s.Add(k)
	if !s.Contains(k) || s.Len() != 1 {
		t.Fatal("add/contains broken")
	}
	if !s.Remove(k) || s.Len() != 0 {
		t.Fatal("remove broken")
	}
}

func TestLibraryCallPruning(t *testing.T) {
	e := New(ModeConcolic)
	e.StartConcolic("t")
	in := e.MakeSymbolic("s", Str("x"))
	out := e.LibraryCall("String.compareTo", 40, Str("y"))
	_ = in
	tr := e.Trace()
	if tr.Stats.PathConds != 0 || tr.Stats.PrunedConds != 40 {
		t.Errorf("stats = %+v", tr.Stats)
	}
	if out.S == nil {
		t.Error("pruned library output must get a fresh symbolic variable")
	}
	if len(tr.PathConds) != 0 {
		t.Errorf("pruning stored conditions: %d", len(tr.PathConds))
	}
}

func TestLibraryCallNoPruning(t *testing.T) {
	e := New(ModeConcolic, WithoutPruning())
	e.StartConcolic("t")
	e.LibraryCall("BigDecimal.subtract", 25, Int(1))
	tr := e.Trace()
	if tr.Stats.PathConds != 25 || tr.Stats.PrunedConds != 0 {
		t.Errorf("stats = %+v", tr.Stats)
	}
	if len(tr.PathConds) != 25 {
		t.Errorf("stored conds = %d", len(tr.PathConds))
	}
}

func TestLibraryCallStorageCap(t *testing.T) {
	e := New(ModeConcolic, WithoutPruning())
	e.StartConcolic("t")
	e.LibraryCall("driver", 100000, Int(0))
	tr := e.Trace()
	if tr.Stats.PathConds != 100000 {
		t.Errorf("counted = %d", tr.Stats.PathConds)
	}
	if len(tr.PathConds) > e.storedPCCap {
		t.Errorf("stored %d conditions, cap %d", len(tr.PathConds), e.storedPCCap)
	}
}

func TestConnRecordsStatements(t *testing.T) {
	db := testDB()
	e := New(ModeConcolic)
	e.StartConcolic("api")
	c := NewConn(e, db)
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	id := e.MakeSymbolic("product_id", Int(2))
	rows, err := c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{id}, trace.CodeLoc{})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("rows = %d", rows.Len())
	}
	qty := rows.Get(0, "p.QTY")
	if qty.C.I != 20 {
		t.Errorf("qty = %v", qty.C)
	}
	if qty.S == nil || !strings.HasPrefix(qty.S.String(), "res0.row0.p.QTY") {
		t.Errorf("result alias = %v", qty.S)
	}
	// Write back through the driver.
	if _, err := c.Exec(`UPDATE Product SET QTY = ? WHERE ID = ?`, []Value{e.Sub(qty, Int(5)), id}, trace.CodeLoc{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	tr := e.EndConcolic()
	if len(tr.Txns) != 1 || !tr.Txns[0].Committed {
		t.Fatalf("txns = %+v", tr.Txns)
	}
	stmts := tr.Txns[0].Stmts
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	sel, upd := stmts[0], stmts[1]
	if sel.Parsed.Kind().String() != "SELECT" || sel.Res == nil || sel.Res.Empty {
		t.Errorf("select record: %+v", sel)
	}
	if sel.Params[0].Sym.String() != "product_id" {
		t.Errorf("select param sym = %v", sel.Params[0].Sym)
	}
	if !upd.IsWrite() {
		t.Error("update not marked write")
	}
	// The UPDATE's first parameter is res-alias minus 5.
	if !strings.Contains(upd.Params[0].Sym.String(), "res0.row0.p.QTY") {
		t.Errorf("update param sym = %v", upd.Params[0].Sym)
	}
	if upd.Params[0].Concrete.I != 15 {
		t.Errorf("update param concrete = %v", upd.Params[0].Concrete)
	}
}

func TestConnEmptyResult(t *testing.T) {
	db := testDB()
	e := New(ModeConcolic)
	e.StartConcolic("api")
	c := NewConn(e, db)
	c.Begin()
	rows, err := c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{Int(99)}, trace.CodeLoc{})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Empty() {
		t.Fatal("expected empty result")
	}
	c.Commit()
	tr := e.EndConcolic()
	if !tr.Txns[0].Stmts[0].Res.Empty {
		t.Error("empty flag not recorded")
	}
}

func TestConnInterpretMode(t *testing.T) {
	db := testDB()
	e := New(ModeInterpret)
	e.StartConcolic("api")
	c := NewConn(e, db)
	c.Begin()
	rows, err := c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{Int(1)}, trace.CodeLoc{})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Get(0, "p.ID").S != nil {
		t.Error("interpret mode must not create symbolic aliases")
	}
	c.Commit()
	tr := e.EndConcolic()
	if tr.Stats.Statements != 1 {
		t.Errorf("statements = %d", tr.Stats.Statements)
	}
	if tr.Txns[0].Stmts[0].Params[0].Sym != nil {
		t.Error("interpret mode recorded symbolic params")
	}
}

func TestHereFiltersEngineFrames(t *testing.T) {
	// Frames inside the concolic and orm packages (and runtime/testing)
	// must be filtered so trigger-code reports point into application
	// source. This whole test file lives in package concolic, so a
	// correctly filtering Here never reports these functions.
	loc := Here(0)
	for _, f := range loc.Frames {
		if strings.Contains(f.File, "internal/concolic") && !strings.HasSuffix(f.File, "_test.go") {
			t.Errorf("engine frame leaked into trigger location: %v", f)
		}
		if strings.HasPrefix(f.Func, "runtime.") || strings.HasPrefix(f.Func, "testing.") {
			t.Errorf("runtime frame leaked: %v", f)
		}
	}
	if !keepFrame("weseer/internal/apps/broadleaf.(*App).Ship", "weseer/internal/apps/broadleaf/ship.go") {
		t.Error("application frames must be kept")
	}
	if keepFrame("weseer/internal/orm.(*Session).Flush", "weseer/internal/orm/session.go") ||
		keepFrame("", "") {
		t.Error("ORM/empty frames must be filtered")
	}
	if !keepFrame("weseer/internal/orm.TestX", "weseer/internal/orm/orm_test.go") {
		t.Error("test-file frames must be kept (unit tests are the app)")
	}
}

func TestStmtSeqOrdering(t *testing.T) {
	db := testDB()
	e := New(ModeConcolic)
	e.StartConcolic("api")
	c := NewConn(e, db)
	c.Begin()
	c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{Int(1)}, trace.CodeLoc{})
	c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{Int(2)}, trace.CodeLoc{})
	c.Commit()
	c.Begin()
	c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{Int(3)}, trace.CodeLoc{})
	c.Commit()
	tr := e.EndConcolic()
	all := tr.AllStmts()
	if len(all) != 3 {
		t.Fatalf("stmts = %d", len(all))
	}
	for i, s := range all {
		if s.Seq != i {
			t.Errorf("stmt %d seq = %d", i, s.Seq)
		}
	}
	if all[0].TxnID == all[2].TxnID {
		t.Error("transactions share an ID")
	}
}

func TestPathCondAfterStmt(t *testing.T) {
	db := testDB()
	e := New(ModeConcolic)
	e.StartConcolic("api")
	c := NewConn(e, db)
	x := e.MakeSymbolic("x", Int(5))
	e.If(e.Gt(x, Int(0))) // PC before any statement
	c.Begin()
	c.Exec(`SELECT * FROM Product p WHERE p.ID = ?`, []Value{x}, trace.CodeLoc{})
	e.If(e.Lt(x, Int(100))) // PC after statement 0
	c.Commit()
	tr := e.EndConcolic()
	if tr.PathConds[0].AfterStmt != 0 || tr.PathConds[1].AfterStmt != 1 {
		t.Errorf("AfterStmt = %d, %d", tr.PathConds[0].AfterStmt, tr.PathConds[1].AfterStmt)
	}
	before := tr.PathCondsBefore(0)
	if len(before) != 1 {
		t.Errorf("conds before stmt 0 = %d", len(before))
	}
}
