package concolic

import (
	"fmt"
	"sync"

	"weseer/internal/minidb"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Conn intercepts the database driver (Sec. IV-A). The four kinds of
// driver functions the paper instruments map onto: Begin/Commit/Rollback
// (transaction life cycle), the statement cache (statement preparation),
// Exec (submission, which records templates and symbolic parameters), and
// Rows.Get (result retrieval, which hands out symbolic aliases for the
// fetched database state). Driver internals contribute no path conditions
// under pruning — their work is represented by LibraryCall accounting.
type Conn struct {
	e   *Engine
	db  *minidb.DB
	txn *minidb.Txn
	cur *trace.Txn
}

// NewConn wraps a database for one engine session.
func NewConn(e *Engine, db *minidb.DB) *Conn {
	return &Conn{e: e, db: db}
}

// DB returns the underlying database.
func (c *Conn) DB() *minidb.DB { return c.db }

// Engine returns the engine this connection records into.
func (c *Conn) Engine() *Engine { return c.e }

// InTxn reports whether a transaction is open.
func (c *Conn) InTxn() bool { return c.txn != nil }

// Begin starts a database transaction and records its life cycle.
func (c *Conn) Begin() error {
	if c.txn != nil {
		return fmt.Errorf("concolic: transaction already open")
	}
	c.txn = c.db.Begin()
	if c.e.recording() {
		c.e.txnSeq++
		c.cur = &trace.Txn{ID: c.e.txnSeq}
		c.e.tr.Txns = append(c.e.tr.Txns, c.cur)
	}
	return nil
}

// Commit commits the open transaction.
func (c *Conn) Commit() error {
	if c.txn == nil {
		return fmt.Errorf("concolic: no open transaction")
	}
	err := c.txn.Commit()
	if c.cur != nil {
		c.cur.Committed = err == nil
		c.cur = nil
	}
	c.txn = nil
	return err
}

// Rollback aborts the open transaction.
func (c *Conn) Rollback() error {
	if c.txn == nil {
		return fmt.Errorf("concolic: no open transaction")
	}
	err := c.txn.Rollback()
	c.cur = nil
	c.txn = nil
	return err
}

// Aborted reports whether the open transaction was aborted by the engine
// (deadlock victim or lock timeout).
func (c *Conn) Aborted() bool {
	return c.txn != nil && c.txn.State() == minidb.TxnAborted
}

// stmtCache memoizes template parsing — the "statement preparation"
// driver functions of Sec. IV-A. Shared across connections.
var stmtCache sync.Map // sql string → sqlast.Stmt

func prepare(sql string) (sqlast.Stmt, error) {
	if st, ok := stmtCache.Load(sql); ok {
		return st.(sqlast.Stmt), nil
	}
	st, err := sqlast.Parse(sql)
	if err != nil {
		return nil, err
	}
	stmtCache.Store(sql, st)
	return st, nil
}

// Rows is a fetched result set whose cells carry symbolic aliases.
type Rows struct {
	Cols  []string
	Cells [][]Value
}

// Empty reports a zero-row result.
func (r *Rows) Empty() bool { return len(r.Cells) == 0 }

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.Cells) }

// Get returns the cell at (row, "alias.column").
func (r *Rows) Get(row int, col string) Value {
	for i, c := range r.Cols {
		if c == col {
			return r.Cells[row][i]
		}
	}
	panic(fmt.Sprintf("concolic: no column %q in result (%v)", col, r.Cols))
}

// Exec submits one statement template with concolic parameter values.
// trigger is the application code responsible for the statement per the
// Sec. VI ORM-aware mapping; pass a zero CodeLoc to use the call site.
// Outside an open transaction the statement runs in auto-commit mode
// (its own single-statement transaction), as JDBC connections do.
func (c *Conn) Exec(sql string, params []Value, trigger trace.CodeLoc) (*Rows, error) {
	if c.txn == nil {
		if err := c.Begin(); err != nil {
			return nil, err
		}
		rows, err := c.Exec(sql, params, trigger)
		if err != nil {
			c.Rollback()
			return nil, err
		}
		if err := c.Commit(); err != nil {
			return nil, err
		}
		return rows, nil
	}
	st, err := prepare(sql)
	if err != nil {
		return nil, err
	}
	datums := make([]minidb.Datum, len(params))
	for i, p := range params {
		datums[i] = datumOf(p)
	}
	rs, err := c.txn.Exec(st, datums)
	if err != nil {
		return nil, err
	}
	// Driver internals — statement preparation, wire protocol, result
	// parsing — are ignored for concolic execution (Sec. IV-A); their
	// avoided branch count scales with statement and result size.
	c.e.AccountLibrary("driver.exec", 420+len(sql)*3+len(rs.Rows)*160)

	var rows *Rows
	seq := c.e.stmtSeq
	if rs.Cols != nil {
		rows = &Rows{Cols: rs.Cols}
		for ri, row := range rs.Rows {
			cells := make([]Value, len(row))
			for ci, d := range row {
				v := valueOf(d)
				if c.e.concolic() && !d.Null {
					// Symbolic alias for fetched database state, e.g.
					// "res4.row0.p.ID" (Fig. 3).
					v.S = smt.NewVar(fmt.Sprintf("res%d.row%d.%s", seq, ri, rs.Cols[ci]), v.C.S)
				}
				cells[ci] = v
			}
			rows.Cells = append(rows.Cells, cells)
		}
	}

	if c.e.recording() && c.cur != nil {
		if len(trigger.Frames) == 0 {
			trigger = Here(2)
		}
		rec := &trace.Stmt{
			Seq:     seq,
			TxnID:   c.cur.ID,
			SQL:     sql,
			Parsed:  st,
			Trigger: trigger,
			Sent:    Here(2),
		}
		// Record the engine's concrete execution plan (Sec. V-D future
		// work): the analyzer can then model locks on exactly the indexes
		// execution traverses.
		for _, p := range c.db.Explain(st) {
			rec.Plan = append(rec.Plan, trace.PlanStep{Alias: p.Alias, Table: p.Table, Index: p.Index})
		}
		for i, p := range params {
			var sym smt.Expr
			if c.e.concolic() {
				sym = p.Sym()
			}
			rec.Params = append(rec.Params, trace.Param{Sym: sym, Concrete: datums[i]})
		}
		if rows != nil {
			res := &trace.Result{Cols: rows.Cols, Empty: rows.Empty()}
			for _, cells := range rows.Cells {
				var syms []smt.Var
				var concs []minidb.Datum
				for _, v := range cells {
					if sv, ok := v.S.(smt.Var); ok {
						syms = append(syms, sv)
					} else {
						syms = append(syms, smt.Var{}) // NULL cell: no alias
					}
					concs = append(concs, datumOf(v))
				}
				res.Sym = append(res.Sym, syms)
				res.Concrete = append(res.Concrete, concs)
			}
			rec.Res = res
		}
		c.cur.Stmts = append(c.cur.Stmts, rec)
		c.e.tr.Stats.Statements++
		c.e.stmtSeq++
	} else {
		c.e.stmtSeq++
	}
	return rows, nil
}

// datumOf converts a concolic value to a database datum.
func datumOf(v Value) minidb.Datum {
	if v.Null {
		switch v.C.S {
		case smt.SortReal:
			return minidb.NullDatum(minidb.KReal)
		case smt.SortString:
			return minidb.NullDatum(minidb.KStr)
		default:
			return minidb.NullDatum(minidb.KInt)
		}
	}
	switch v.C.S {
	case smt.SortInt:
		return minidb.I64(v.C.I)
	case smt.SortReal:
		return minidb.Real(v.C.R)
	case smt.SortString:
		return minidb.Str(v.C.Str)
	}
	panic(fmt.Sprintf("concolic: cannot convert %s to datum", v))
}

// valueOf converts a database datum to a concolic value.
func valueOf(d minidb.Datum) Value {
	if d.Null {
		switch d.Kind {
		case minidb.KReal:
			return NullValue(smt.SortReal)
		case minidb.KStr:
			return NullValue(smt.SortString)
		default:
			return NullValue(smt.SortInt)
		}
	}
	switch d.Kind {
	case minidb.KInt:
		return Int(d.I)
	case minidb.KReal:
		return Real(d.R)
	case minidb.KStr:
		return Str(d.S)
	}
	panic("concolic: bad datum kind")
}
