// Package concolic implements WeSEER's concolic execution engine. The
// paper builds it into OpenJDK's HotSpot interpreter; here it is a
// library the model web applications are written against: values carry a
// concrete part (driving real execution) and a symbolic part (recording
// data flow), branches are taken concretely while their conditions
// accumulate as path conditions, and the database driver is intercepted
// to record transaction life cycles, statement templates, symbolic
// parameters, and symbolic result aliases (Sec. IV-A).
//
// The engine has three modes mirroring Table III's configurations:
// ModeOff (native execution, no tracking), ModeInterpret (driver
// interception and tracing without symbolic state), and ModeConcolic
// (full symbolic tracking). Pruning of driver/built-in/container path
// conditions (Sec. IV) is controlled independently to reproduce the
// 656K → 2.7K experiment.
package concolic

import (
	"fmt"
	"math/big"
	"runtime"
	"strings"

	"weseer/internal/obs"
	"weseer/internal/smt"
	"weseer/internal/trace"
)

// Mode selects how much the engine tracks.
type Mode uint8

// Engine modes, mirroring Table III's JDK configurations.
const (
	// ModeOff runs the application natively with no tracking.
	ModeOff Mode = iota
	// ModeInterpret records transactions and statements but no symbolic
	// state (the paper's "Interpretive" JDK).
	ModeInterpret
	// ModeConcolic records everything including symbolic values and path
	// conditions (the paper's "Interpretive+Concolic").
	ModeConcolic
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeInterpret:
		return "interpret"
	case ModeConcolic:
		return "concolic"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Engine is one concolic execution session. It is not safe for concurrent
// use: a unit test runs single-threaded, as the paper's collector does.
type Engine struct {
	mode Mode
	// prune enables the Sec. IV simplification: driver, built-in, and
	// container functions execute concretely, producing fresh symbolic
	// outputs instead of path conditions.
	prune bool
	// storedPCCap bounds how many unpruned library conditions are stored
	// (they are always counted); keeps no-pruning runs from exhausting
	// memory, as the 656K-condition Ship trace would.
	storedPCCap int

	active  bool
	tr      *trace.Trace
	stmtSeq int
	txnSeq  int
	symSeq  int

	// obs, when non-nil, receives one "extract" span per
	// StartConcolic/EndConcolic pair plus extraction counters.
	obs  *obs.Observer
	span obs.Span
}

// Option configures an Engine.
type Option func(*Engine)

// WithoutPruning disables the Sec. IV path-condition pruning; used by the
// pruning experiment.
func WithoutPruning() Option { return func(e *Engine) { e.prune = false } }

// WithObserver attaches an observability sink: each unit test's
// extraction (StartConcolic to EndConcolic) becomes an "extract" span,
// and collected traces feed the extraction counters. Observational
// only; nil disables it.
func WithObserver(o *obs.Observer) Option { return func(e *Engine) { e.obs = o } }

// New returns an engine in the given mode with pruning enabled.
func New(mode Mode, opts ...Option) *Engine {
	e := &Engine{mode: mode, prune: true, storedPCCap: 4096}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.mode }

// Pruning reports whether Sec. IV pruning is enabled.
func (e *Engine) Pruning() bool { return e.prune }

func (e *Engine) concolic() bool  { return e.mode == ModeConcolic && e.active }
func (e *Engine) recording() bool { return e.mode != ModeOff && e.active }

// StartConcolic begins trace collection for one API unit test.
func (e *Engine) StartConcolic(api string) {
	e.active = true
	e.tr = &trace.Trace{API: api}
	e.stmtSeq = 0
	e.txnSeq = 0
	e.symSeq = 0
	if e.obs != nil {
		e.span = e.obs.StartSpan(0, "extract",
			obs.String("api", api), obs.String("mode", e.mode.String()))
	}
}

// EndConcolic stops collection and returns the trace (nil in ModeOff).
func (e *Engine) EndConcolic() *trace.Trace {
	e.active = false
	tr := e.tr
	e.tr = nil
	if e.mode == ModeOff {
		tr = nil
	}
	if e.obs != nil {
		stmts, pcs := 0, 0
		if tr != nil {
			stmts, pcs = tr.Stats.Statements, tr.Stats.PathConds
		}
		e.span.End(obs.Int("statements", stmts), obs.Int("path_conds", pcs))
		e.span = obs.Span{}
		if tr != nil {
			m := e.obs.P()
			m.ExtractedTraces.Inc()
			m.ExtractedStmts.Add(int64(stmts))
			m.ExtractedPathConds.Add(int64(pcs))
		}
	}
	return tr
}

// Trace returns the in-progress trace (nil outside a session or in
// ModeOff).
func (e *Engine) Trace() *trace.Trace {
	if e.mode == ModeOff {
		return nil
	}
	return e.tr
}

// freshVar mints an engine-unique symbolic variable.
func (e *Engine) freshVar(hint string, sort smt.Sort) smt.Var {
	e.symSeq++
	return smt.NewVar(fmt.Sprintf("%s#%d", hint, e.symSeq), sort)
}

// ---------------------------------------------------------------------------
// Values

// Value is a concolic value: a concrete part that drives execution and an
// optional symbolic part. A nil Sym means the value is untracked (pure
// concrete); constants fold in as literals when they meet tracked values.
type Value struct {
	Null bool
	C    smt.Value
	S    smt.Expr
}

// Int returns a concrete integer value.
func Int(v int64) Value { return Value{C: smt.IntValue(v)} }

// Str returns a concrete string value.
func Str(s string) Value { return Value{C: smt.StrValue(s)} }

// Real returns a concrete decimal value.
func Real(r *big.Rat) Value { return Value{C: smt.RealValue(r)} }

// Bool returns a concrete Boolean value.
func Bool(b bool) Value { return Value{C: smt.BoolValue(b)} }

// NullValue returns the NULL value of a sort.
func NullValue(sort smt.Sort) Value {
	return Value{Null: true, C: smt.Value{S: sort}}
}

// Sort returns the value's sort.
func (v Value) Sort() smt.Sort { return v.C.S }

// IsSymbolic reports whether the value carries symbolic state.
func (v Value) IsSymbolic() bool { return v.S != nil }

// Sym returns the symbolic expression, materializing a literal for
// untracked values.
func (v Value) Sym() smt.Expr {
	if v.S != nil {
		return v.S
	}
	switch v.C.S {
	case smt.SortBool:
		return smt.Bool(v.C.B)
	case smt.SortInt:
		return smt.Int(v.C.I)
	case smt.SortReal:
		return smt.RealFromRat(v.C.R)
	case smt.SortString:
		return smt.Str(v.C.Str)
	}
	panic("concolic: bad value sort")
}

func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	if v.S != nil {
		return fmt.Sprintf("%s{=%s}", v.S, v.C)
	}
	return v.C.String()
}

// MakeSymbolic marks v as a named symbolic input of the API under test
// and records it in the trace. In non-concolic modes it returns v
// unchanged.
func (e *Engine) MakeSymbolic(name string, v Value) Value {
	if !e.concolic() {
		return v
	}
	v.S = smt.NewVar(name, v.C.S)
	e.tr.Inputs = append(e.tr.Inputs, trace.Input{Name: name, Sort: v.C.S, Concrete: v.C})
	return v
}

// tracked reports whether an operation over these values should build a
// symbolic result.
func (e *Engine) tracked(vs ...Value) bool {
	if !e.concolic() {
		return false
	}
	for _, v := range vs {
		if v.S != nil {
			return true
		}
	}
	return false
}

// Add returns a+b, propagating symbolic state.
func (e *Engine) Add(a, b Value) Value { return e.arith(smt.OpAdd, a, b) }

// Sub returns a-b.
func (e *Engine) Sub(a, b Value) Value { return e.arith(smt.OpSub, a, b) }

// Mul returns a*b; at least one side must be a concrete constant for the
// result to stay in the linear fragment.
func (e *Engine) Mul(a, b Value) Value { return e.arith(smt.OpMul, a, b) }

func (e *Engine) arith(op smt.ArithOp, a, b Value) Value {
	if a.Null || b.Null {
		return NullValue(a.C.S)
	}
	if (a.C.S == smt.SortReal || b.C.S == smt.SortReal) && e.tracked(a, b) {
		// BigDecimal arithmetic internals (Sec. IV-B): modeled as solver
		// reals, their scale/rounding branches never become conditions.
		e.AccountLibrary("BigDecimal.arith", 24)
	}
	ra, rb := a.C.Rat(), b.C.Rat()
	res := new(big.Rat)
	switch op {
	case smt.OpAdd:
		res.Add(ra, rb)
	case smt.OpSub:
		res.Sub(ra, rb)
	case smt.OpMul:
		res.Mul(ra, rb)
	default:
		panic("concolic: bad arith op")
	}
	sort := a.C.S
	if b.C.S == smt.SortReal {
		sort = smt.SortReal
	}
	var c smt.Value
	if sort == smt.SortInt && res.IsInt() {
		c = smt.IntValue(res.Num().Int64())
	} else {
		c = smt.RealValue(res)
		sort = smt.SortReal
	}
	out := Value{C: c}
	if e.tracked(a, b) {
		switch op {
		case smt.OpAdd:
			out.S = smt.Add(a.Sym(), b.Sym())
		case smt.OpSub:
			out.S = smt.Sub(a.Sym(), b.Sym())
		case smt.OpMul:
			out.S = smt.Mul(a.Sym(), b.Sym())
		}
	}
	return out
}

// Cmp returns the Boolean value of (a op b).
func (e *Engine) Cmp(op smt.CmpOp, a, b Value) Value {
	if a.Null || b.Null {
		// SQL-style: comparisons against NULL are not satisfied. The
		// application layer checks nullness explicitly via IsNull.
		return Bool(false)
	}
	var c bool
	if a.C.S == smt.SortString {
		// String.compare internals branch per character (Sec. IV-B);
		// modeling strings as solver-native avoids those conditions.
		if e.tracked(a, b) {
			e.AccountLibrary("String.compare", 2+len(a.C.Str)+len(b.C.Str))
		}
		switch op {
		case smt.EQ:
			c = a.C.Str == b.C.Str
		case smt.NE:
			c = a.C.Str != b.C.Str
		default:
			panic("concolic: strings support only = and !=")
		}
	} else {
		cmp := a.C.Rat().Cmp(b.C.Rat())
		switch op {
		case smt.EQ:
			c = cmp == 0
		case smt.NE:
			c = cmp != 0
		case smt.LT:
			c = cmp < 0
		case smt.LE:
			c = cmp <= 0
		case smt.GT:
			c = cmp > 0
		case smt.GE:
			c = cmp >= 0
		}
	}
	out := Bool(c)
	if e.tracked(a, b) {
		out.S = smt.Compare(op, a.Sym(), b.Sym())
	}
	return out
}

// Eq returns a = b.
func (e *Engine) Eq(a, b Value) Value { return e.Cmp(smt.EQ, a, b) }

// Ne returns a != b.
func (e *Engine) Ne(a, b Value) Value { return e.Cmp(smt.NE, a, b) }

// Lt returns a < b.
func (e *Engine) Lt(a, b Value) Value { return e.Cmp(smt.LT, a, b) }

// Le returns a <= b.
func (e *Engine) Le(a, b Value) Value { return e.Cmp(smt.LE, a, b) }

// Gt returns a > b.
func (e *Engine) Gt(a, b Value) Value { return e.Cmp(smt.GT, a, b) }

// Ge returns a >= b.
func (e *Engine) Ge(a, b Value) Value { return e.Cmp(smt.GE, a, b) }

// And returns a && b over Boolean values.
func (e *Engine) And(a, b Value) Value {
	out := Bool(a.C.B && b.C.B)
	if e.tracked(a, b) {
		out.S = smt.And(a.Sym(), b.Sym())
	}
	return out
}

// Not returns !a.
func (e *Engine) Not(a Value) Value {
	out := Bool(!a.C.B)
	if e.tracked(a) {
		out.S = smt.Negate(a.Sym())
	}
	return out
}

// If takes the branch concretely and records the taken direction as a
// path condition: the core concolic-execution operation.
func (e *Engine) If(cond Value) bool {
	taken := cond.C.B
	if e.concolic() && cond.S != nil && !smt.IsConst(cond.S) {
		c := cond.S
		if !taken {
			c = smt.Negate(c)
		}
		e.appendPC(c, Here(2))
	}
	return taken
}

func (e *Engine) appendPC(c smt.Expr, loc trace.CodeLoc) {
	e.tr.Stats.PathConds++
	if len(e.tr.PathConds) < e.storedPCCap*16 {
		e.tr.PathConds = append(e.tr.PathConds, trace.PathCond{
			AfterStmt: e.stmtSeq,
			Cond:      c,
			Loc:       loc,
		})
	}
}

// ---------------------------------------------------------------------------
// Ignored library functions (Sec. IV)

// AccountLibrary records that a modeled library function (String or
// BigDecimal built-ins per Sec. IV-B, container internals per Sec. IV-C,
// driver internals per Sec. IV-A) would have contributed `branches` path
// conditions under full concolic execution. With pruning the conditions
// are avoided (counted in PrunedConds); without it they are counted as
// real path conditions and stored up to a cap.
func (e *Engine) AccountLibrary(name string, branches int) {
	if !e.concolic() || branches <= 0 {
		return
	}
	if e.prune {
		e.tr.Stats.PrunedConds += branches
		return
	}
	e.tr.Stats.PathConds += branches
	for i := 0; i < branches && len(e.tr.PathConds) < e.storedPCCap; i++ {
		v := e.freshVar("libpc."+name, smt.SortInt)
		e.tr.PathConds = append(e.tr.PathConds, trace.PathCond{
			AfterStmt: e.stmtSeq,
			Cond:      smt.Ne(v, smt.Int(int64(i+1))),
		})
	}
}

// LibraryCall models invoking a library function (database driver
// internals, String/BigDecimal built-ins, container internals) whose body
// would contribute `branches` path conditions under full concolic
// execution. With pruning — the paper's simplification — the call
// executes concretely, contributes no conditions, and its output receives
// a fresh unconstrained symbolic variable. Without pruning the conditions
// are accounted (and stored up to a cap), reproducing the path-condition
// explosion of Sec. IV (656K for Broadleaf's Ship API).
func (e *Engine) LibraryCall(name string, branches int, out Value) Value {
	if !e.concolic() {
		return out
	}
	e.AccountLibrary(name, branches)
	out.S = e.freshVar("lib."+name, out.C.S)
	return out
}

// ---------------------------------------------------------------------------
// Stack capture

// Here captures the current application stack, skipping `skip` frames of
// the caller's own machinery and filtering out engine/ORM internals so
// that reported trigger code points into application source.
func Here(skip int) trace.CodeLoc {
	var pcs [24]uintptr
	n := runtime.Callers(skip+1, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	var loc trace.CodeLoc
	for {
		f, more := frames.Next()
		if keepFrame(f.Function, f.File) {
			loc.Frames = append(loc.Frames, trace.Frame{
				Func: shortFunc(f.Function),
				File: f.File,
				Line: f.Line,
			})
			if len(loc.Frames) >= 6 {
				break
			}
		}
		if !more {
			break
		}
	}
	return loc
}

// keepFrame keeps application frames and drops engine/ORM internals and
// the runtime. Test files inside the filtered packages count as
// application code (unit tests are exactly what the collector runs).
func keepFrame(fn, file string) bool {
	if fn == "" || strings.HasPrefix(fn, "runtime.") || strings.HasPrefix(fn, "testing.") {
		return false
	}
	if strings.HasSuffix(file, "_test.go") {
		return true
	}
	if strings.Contains(file, "internal/concolic/") || strings.Contains(file, "internal/orm/") {
		return false
	}
	return !strings.Contains(fn, "weseer/internal/concolic.") && !strings.Contains(fn, "weseer/internal/orm.")
}

func shortFunc(fn string) string {
	if i := strings.LastIndex(fn, "/"); i >= 0 {
		return fn[i+1:]
	}
	return fn
}
