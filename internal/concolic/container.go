package concolic

import (
	"fmt"

	"weseer/internal/smt"
)

// Symbolic containers implement Alg. 1 of the paper. Containers with
// symbolic keys are not modeled value-by-value (web applications store
// complex objects whose every field would need encoding); instead, the
// one-to-one key↔value mapping is exploited: a Z3-style Boolean array
// records key existence, and the concrete keyOf table recovers the key a
// value was stored under.

// SymMap is a map with a symbolic-existence encoding. Concrete lookups
// use the key's concrete value; path conditions about key existence use
// the symbolic array.
type SymMap struct {
	e   *Engine
	id  string
	arr *smt.Array
	// data holds the concrete map, keyed by the concrete key's rendering.
	data map[string]mapEntry
	// keyOf maps a stored value to the symbolic key it was stored under
	// (Alg. 1's keyOf), keyed by value identity.
	keyOf map[any]smt.Expr
}

type mapEntry struct {
	key Value
	val any
}

// NewSymMap returns an empty symbolic map with the given key sort.
func (e *Engine) NewSymMap(hint string, keySort smt.Sort) *SymMap {
	e.symSeq++
	id := fmt.Sprintf("%s@%d", hint, e.symSeq)
	return &SymMap{
		e:     e,
		id:    id,
		arr:   smt.NewArray(id, keySort),
		data:  map[string]mapEntry{},
		keyOf: map[any]smt.Expr{},
	}
}

// Len returns the number of concrete entries.
func (m *SymMap) Len() int { return len(m.data) }

func (m *SymMap) concKey(key Value) string { return key.C.String() }

// Get looks the key up (Alg. 1 get): on a hit the path condition records
// key = keyOf[retValue]; on a miss it records read(arr, key) = false.
func (m *SymMap) Get(key Value) (any, bool) {
	ent, ok := m.data[m.concKey(key)]
	if !m.e.concolic() || !key.IsSymbolic() {
		if ok {
			return ent.val, true
		}
		return nil, false
	}
	// Container internals (hashing, bucket walks — Sec. IV-C) would add
	// many conditions; the Alg. 1 encoding reduces each access to one.
	m.e.AccountLibrary("HashMap.get", 10+m.Len()/4)
	if ok {
		if prior, has := m.keyOf[ent.val]; has {
			m.e.appendPC(smt.Eq(key.Sym(), prior), Here(2))
		}
		return ent.val, true
	}
	m.e.appendPC(smt.Negate(smt.Read(m.arr, key.Sym())), Here(2))
	return nil, false
}

// Put stores value under key (Alg. 1 put).
func (m *SymMap) Put(key Value, value any) {
	_, existed := m.Get(key)
	if m.e.concolic() && key.IsSymbolic() {
		if existed {
			old := m.data[m.concKey(key)].val
			delete(m.keyOf, old)
		} else {
			m.arr = m.arr.Store(key.Sym(), true)
		}
		m.keyOf[value] = key.Sym()
	}
	m.data[m.concKey(key)] = mapEntry{key: key, val: value}
}

// Remove deletes key (Alg. 1 remove) and reports whether it was present.
func (m *SymMap) Remove(key Value) bool {
	old, existed := m.Get(key)
	if !existed {
		return false
	}
	if m.e.concolic() && key.IsSymbolic() {
		m.arr = m.arr.Store(key.Sym(), false)
		delete(m.keyOf, old)
	}
	delete(m.data, m.concKey(key))
	return true
}

// Each visits entries in unspecified order (concrete iteration only).
func (m *SymMap) Each(fn func(key Value, val any) bool) {
	for _, ent := range m.data {
		if !fn(ent.key, ent.val) {
			return
		}
	}
}

// SymSet is a set with the Alg. 1 encoding: keys are their own values.
type SymSet struct {
	m *SymMap
}

// NewSymSet returns an empty symbolic set.
func (e *Engine) NewSymSet(hint string, keySort smt.Sort) *SymSet {
	return &SymSet{m: e.NewSymMap(hint, keySort)}
}

// Contains tests membership, recording the existence path condition.
func (s *SymSet) Contains(key Value) bool {
	_, ok := s.m.Get(key)
	return ok
}

// Add inserts the key.
func (s *SymSet) Add(key Value) { s.m.Put(key, key.C.String()) }

// Remove deletes the key and reports whether it was present.
func (s *SymSet) Remove(key Value) bool { return s.m.Remove(key) }

// Len returns the number of members.
func (s *SymSet) Len() int { return s.m.Len() }
