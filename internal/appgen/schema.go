package appgen

import (
	"fmt"

	"weseer/internal/schema"
)

// Noun pools give generated tables application-shaped names ("Cart07",
// "Price07A", "Audit07B") instead of opaque T123 identifiers, so vet
// findings and deadlock reports over generated corpora read like the
// model apps' output.
var (
	hubNouns = []string{
		"Account", "Cart", "Order", "Ledger", "Inventory", "Profile",
		"Ticket", "Invoice", "Shipment", "Wallet", "Listing", "Booking",
		"Campaign", "Subscription", "Payout", "Quota",
	}
	readNouns = []string{
		"Catalog", "Price", "Region", "Tax", "Plan", "Sku", "Rate",
		"Zone", "Tier", "Rule",
	}
	insNouns = []string{
		"Event", "Audit", "Note", "Receipt", "Message", "Journal",
		"Alert", "History", "Entry", "Claim",
	}
)

// module is one contention cluster of the generated app: a hot hub table
// every writer template updates, read-only reference satellites, and
// append-only log satellites. Filler templates never reach outside their
// module, mirroring how bounded contexts keep real schemas from being
// one giant conflict clique.
type module struct {
	Name  string   // display name, e.g. "Cart07"
	Hub   string   // hot table: ordered-pair row updates
	Reads []string // read-only satellites (point + range SELECTs)
	Ins   []string // insert-only satellites (immediate INSERTs)
}

// buildModules appends the filler-module tables for cfg to s and returns
// the module layout. Consumes r; call order is part of the deterministic
// stream.
func buildModules(cfg Config, r *rng, s *schema.Schema) []module {
	mods := make([]module, cfg.Modules)
	for m := range mods {
		hub := fmt.Sprintf("%s%02d", hubNouns[r.intn(len(hubNouns))], m)
		s.AddTable(hub).
			Col("ID", schema.Int).
			Col("BALANCE", schema.Int).
			Col("REGION_ID", schema.Int).
			Col("STATE", schema.Varchar).
			PrimaryKey("ID").
			Index(fmt.Sprintf("idx_%s_region", hub), "REGION_ID")

		mod := module{Name: hub, Hub: hub}
		// Satellites split roughly evenly between read-only reference
		// tables and insert-only log tables.
		sats := cfg.TablesPerModule - 1
		nReads := (sats + 1) / 2
		readBase := r.intn(len(readNouns))
		insBase := r.intn(len(insNouns))
		for i := 0; i < sats; i++ {
			suffix := string(rune('A' + i/2))
			if i%2 == 0 && i/2 < nReads {
				name := fmt.Sprintf("%s%02d%s", readNouns[(readBase+i/2)%len(readNouns)], m, suffix)
				s.AddTable(name).
					Col("ID", schema.Int).
					Col("OWNER_ID", schema.Int).
					Col("NAME", schema.Varchar).
					Col("AMOUNT", schema.Decimal).
					PrimaryKey("ID").
					Index(fmt.Sprintf("idx_%s_owner", name), "OWNER_ID").
					ForeignKey([]string{"OWNER_ID"}, hub, []string{"ID"})
				mod.Reads = append(mod.Reads, name)
			} else {
				name := fmt.Sprintf("%s%02d%s", insNouns[(insBase+i/2)%len(insNouns)], m, suffix)
				s.AddTable(name).
					Col("ID", schema.Int).
					Col("HUB_ID", schema.Int).
					Col("SEQ", schema.Int).
					Col("NOTE", schema.Varchar).
					PrimaryKey("ID").
					Index(fmt.Sprintf("idx_%s_hub", name), "HUB_ID").
					ForeignKey([]string{"HUB_ID"}, hub, []string{"ID"})
				mod.Ins = append(mod.Ins, name)
			}
		}
		mods[m] = mod
	}
	return mods
}
