package appgen

import (
	"fmt"
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/orm"
	"weseer/internal/schema"
)

// plantedInstance is one planted anti-pattern: its class, its dedicated
// tables (never shared with fillers or other instances, so its conflict
// edges stay self-contained and classification is a table lookup), and
// the transaction templates that exhibit it.
type plantedInstance struct {
	Class  string
	Idx    int
	Tables []string
	Names  []string // template names, for the manifest
}

// plant appends the schema tables for one instance of class cl and
// returns its metadata; buildPlantedTests later compiles the matching
// unit tests. Each planted shape is the *unfixed* variant of the paper's
// corresponding fix class:
//
//	f1  Merge on an absent key (SELECT gap lock, then INSERT)       — d1
//	f2  check-then-insert of an app-level lock row                  — d2
//	f3  range SELECT on a child index, then Persist a child         — d3
//	f4  write-behind UPDATE reordering vs an eager updater          — d5/d6
//	f5  parent point read + range-SELECT-then-Persist child         — d7
//	f6  two children scanned then persisted in reverse order        — d8
//	f7  emptiness-checked scan-then-insert                          — d10
//	f8  range scan + buffered UPDATE + Persist into one table       — d11
//	f9  shared read upgraded to exclusive UPDATE of the same row    — d14
//	f10 two UPDATEs at unordered symbolic rows                      — d17
//	f11 two-row reader racing a two-row updater                     — d18
func plant(s *schema.Schema, cl string, idx int) plantedInstance {
	p := fmt.Sprintf("%sx%d", strings.ToUpper(cl), idx)
	inst := plantedInstance{Class: cl, Idx: idx}
	kv := func(name string, cols ...string) string {
		t := s.AddTable(name).Col("ID", schema.Int)
		for _, c := range cols {
			t.Col(c, schema.Int)
		}
		t.PrimaryKey("ID")
		inst.Tables = append(inst.Tables, name)
		return name
	}
	child := func(name string) string {
		s.AddTable(name).
			Col("ID", schema.Int).
			Col("OWNER_ID", schema.Int).
			Col("AMOUNT", schema.Int).
			PrimaryKey("ID").
			Index("idx_"+name+"_owner", "OWNER_ID")
		inst.Tables = append(inst.Tables, name)
		return name
	}
	switch cl {
	case "f1":
		kv(p+"Reg", "VAL")
	case "f2":
		kv(p+"Lock", "LOCKED")
	case "f3", "f7":
		child(p + "Item")
	case "f4":
		kv(p+"Offer", "USES")
		kv(p+"Stat", "VIEWS")
	case "f5":
		kv(p+"Head", "TOTAL")
		child(p + "Line")
	case "f6":
		child(p + "Adj")
		child(p + "Det")
	case "f8":
		child(p + "Fee")
	case "f9":
		kv(p+"Prod", "QTY")
	case "f10":
		kv(p+"Inv", "QTY")
	case "f11":
		kv(p+"Cat", "QTY")
	default:
		panic("appgen: unknown class " + cl)
	}
	inst.Names = plantedNames(cl, p)
	return inst
}

// plantedNames lists the template names plantedTests will emit, so the
// manifest can be rendered without building the unit tests.
func plantedNames(cl, p string) []string {
	switch cl {
	case "f1":
		return []string{p + "Merge"}
	case "f2":
		return []string{p + "Acquire"}
	case "f3":
		return []string{p + "AddItem"}
	case "f4":
		return []string{p + "Buffered", p + "Eager"}
	case "f5":
		return []string{p + "Quote"}
	case "f6":
		return []string{p + "Reprice"}
	case "f7":
		return []string{p + "Ensure"}
	case "f8":
		return []string{p + "Surcharge"}
	case "f9":
		return []string{p + "Reserve"}
	case "f10":
		return []string{p + "Commit"}
	case "f11":
		return []string{p + "Scan", p + "Update"}
	}
	panic("appgen: unknown class " + cl)
}

// plantedTests compiles the unit tests for one planted instance. rows is
// cfg.Rows: seeded ids are 1..rows (with OWNER_ID = ID on child tables),
// so "present" inputs stay within [1,rows] and "absent" inputs start at
// rows+1.
func (a *App) plantedTests(inst *plantedInstance, rows int) []appkit.UnitTest {
	p := fmt.Sprintf("%sx%d", strings.ToUpper(inst.Class), inst.Idx)
	sess := func(e *concolic.Engine) *orm.Session {
		return orm.NewSession(a.mapping, concolic.NewConn(e, a.db))
	}
	sym := func(e *concolic.Engine, tmpl, name string, v int64) concolic.Value {
		return e.MakeSymbolic(tmpl+"."+name, concolic.Int(v))
	}
	one := func(name string, run func(e *concolic.Engine) error) []appkit.UnitTest {
		return []appkit.UnitTest{{Name: name, Run: run}}
	}
	absent := int64(rows + 1)

	switch inst.Class {
	case "f1":
		// Merge on an absent key: the point SELECT range-locks the gap,
		// the flush INSERT then collides with a peer's gap lock.
		tab := inst.Tables[0]
		return one(p+"Merge", func(e *concolic.Engine) error {
			s := sess(e)
			id := sym(e, p+"Merge", "id", absent)
			return s.Transactional(func() error {
				en := s.NewEntity(tab)
				s.Set(en, "ID", id)
				s.Set(en, "VAL", concolic.Int(1))
				s.Merge(en)
				return nil
			})
		})
	case "f2":
		// Check-then-insert: existence SELECT on the absent lock row,
		// then a buffered INSERT of it.
		tab := inst.Tables[0]
		return one(p+"Acquire", func(e *concolic.Engine) error {
			s := sess(e)
			id := sym(e, p+"Acquire", "id", absent)
			return s.Transactional(func() error {
				locks := s.Query(fmt.Sprintf(`SELECT * FROM %s l WHERE l.ID = ?`, tab),
					[]concolic.Value{id}, "l")
				if len(locks) == 0 {
					en := s.NewEntity(tab)
					s.Set(en, "ID", id)
					s.Set(en, "LOCKED", concolic.Int(1))
					s.Persist(en)
				} else {
					s.Set(locks[0], "LOCKED", concolic.Int(1))
				}
				return nil
			})
		})
	case "f3":
		// Range SELECT over the owner index, then Persist a new child
		// under the same owner.
		tab := inst.Tables[0]
		return one(p+"AddItem", func(e *concolic.Engine) error {
			s := sess(e)
			owner := sym(e, p+"AddItem", "owner", int64(1+inst.Idx%rows))
			return s.Transactional(func() error {
				s.Query(fmt.Sprintf(`SELECT * FROM %s c WHERE c.OWNER_ID = ?`, tab),
					[]concolic.Value{owner}, "c")
				en := s.NewEntity(tab)
				s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
				s.Set(en, "OWNER_ID", owner)
				s.Set(en, "AMOUNT", concolic.Int(1))
				s.Persist(en)
				return nil
			})
		})
	case "f4":
		// Write-behind reordering: the buffered path touches Offer
		// before Stat but flushes Stat's UPDATE first (first-modification
		// order); the eager path updates Offer then Stat directly.
		offer, stat := inst.Tables[0], inst.Tables[1]
		buf := appkit.UnitTest{Name: p + "Buffered", Run: func(e *concolic.Engine) error {
			s := sess(e)
			o := s.Find(offer, sym(e, p+"Buffered", "offer", 1))
			st := s.Find(stat, sym(e, p+"Buffered", "stat", 2))
			return s.Transactional(func() error {
				s.Set(st, "VIEWS", e.Add(st.Get("VIEWS"), concolic.Int(1)))
				s.Set(o, "USES", e.Add(o.Get("USES"), concolic.Int(1)))
				return nil
			})
		}}
		eager := appkit.UnitTest{Name: p + "Eager", Run: func(e *concolic.Engine) error {
			s := sess(e)
			oid := sym(e, p+"Eager", "offer", 1)
			sid := sym(e, p+"Eager", "stat", 2)
			return s.Transactional(func() error {
				if _, err := s.Exec(fmt.Sprintf(`UPDATE %s SET USES = ? WHERE ID = ?`, offer),
					[]concolic.Value{concolic.Int(7), oid}); err != nil {
					return err
				}
				_, err := s.Exec(fmt.Sprintf(`UPDATE %s SET VIEWS = ? WHERE ID = ?`, stat),
					[]concolic.Value{concolic.Int(7), sid})
				return err
			})
		}}
		return []appkit.UnitTest{buf, eager}
	case "f5":
		// Parent point read (shared lock) followed by a child
		// range-scan-then-Persist under the parent's id.
		head, line := inst.Tables[0], inst.Tables[1]
		return one(p+"Quote", func(e *concolic.Engine) error {
			s := sess(e)
			id := sym(e, p+"Quote", "head", int64(1+inst.Idx%rows))
			return s.Transactional(func() error {
				s.Query(fmt.Sprintf(`SELECT * FROM %s h WHERE h.ID = ?`, head),
					[]concolic.Value{id}, "h")
				s.Query(fmt.Sprintf(`SELECT * FROM %s l WHERE l.OWNER_ID = ?`, line),
					[]concolic.Value{id}, "l")
				en := s.NewEntity(line)
				s.Set(en, "ID", concolic.Int(a.db.NextID(line)))
				s.Set(en, "OWNER_ID", id)
				s.Set(en, "AMOUNT", concolic.Int(2))
				s.Persist(en)
				return nil
			})
		})
	case "f6":
		// Two children scanned Adj→Det but persisted Det→Adj: the flush
		// order crosses the scan order between the two tables.
		adj, det := inst.Tables[0], inst.Tables[1]
		return one(p+"Reprice", func(e *concolic.Engine) error {
			s := sess(e)
			owner := sym(e, p+"Reprice", "owner", int64(1+inst.Idx%rows))
			return s.Transactional(func() error {
				s.Query(fmt.Sprintf(`SELECT * FROM %s a WHERE a.OWNER_ID = ?`, adj),
					[]concolic.Value{owner}, "a")
				s.Query(fmt.Sprintf(`SELECT * FROM %s d WHERE d.OWNER_ID = ?`, det),
					[]concolic.Value{owner}, "d")
				for _, tab := range []string{det, adj} {
					en := s.NewEntity(tab)
					s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
					s.Set(en, "OWNER_ID", owner)
					s.Set(en, "AMOUNT", concolic.Int(3))
					s.Persist(en)
				}
				return nil
			})
		})
	case "f7":
		// Scan-then-insert guarded by emptiness: the concrete owner has
		// no rows, so the INSERT follows the empty range's gap lock.
		tab := inst.Tables[0]
		return one(p+"Ensure", func(e *concolic.Engine) error {
			s := sess(e)
			owner := sym(e, p+"Ensure", "owner", absent)
			return s.Transactional(func() error {
				got := s.Query(fmt.Sprintf(`SELECT * FROM %s c WHERE c.OWNER_ID = ?`, tab),
					[]concolic.Value{owner}, "c")
				if len(got) == 0 {
					en := s.NewEntity(tab)
					s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
					s.Set(en, "OWNER_ID", owner)
					s.Set(en, "AMOUNT", concolic.Int(4))
					s.Persist(en)
				}
				return nil
			})
		})
	case "f8":
		// Range scan, buffered UPDATE of a found row, and a Persist into
		// the same table: INSERT-before-UPDATE flush order vs the scan's
		// shared range lock.
		tab := inst.Tables[0]
		return one(p+"Surcharge", func(e *concolic.Engine) error {
			s := sess(e)
			owner := sym(e, p+"Surcharge", "owner", int64(1+inst.Idx%rows))
			return s.Transactional(func() error {
				got := s.Query(fmt.Sprintf(`SELECT * FROM %s f WHERE f.OWNER_ID = ?`, tab),
					[]concolic.Value{owner}, "f")
				for _, en := range got {
					s.Set(en, "AMOUNT", e.Add(en.Get("AMOUNT"), concolic.Int(1)))
				}
				en := s.NewEntity(tab)
				s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
				s.Set(en, "OWNER_ID", owner)
				s.Set(en, "AMOUNT", concolic.Int(5))
				s.Persist(en)
				return nil
			})
		})
	case "f9":
		// Read-modify-write lock upgrade: shared point SELECT, then an
		// exclusive UPDATE of the same symbolic row.
		tab := inst.Tables[0]
		return one(p+"Reserve", func(e *concolic.Engine) error {
			s := sess(e)
			id := sym(e, p+"Reserve", "id", int64(1+inst.Idx%rows))
			return s.Transactional(func() error {
				got := s.Query(fmt.Sprintf(`SELECT * FROM %s t WHERE t.ID = ?`, tab),
					[]concolic.Value{id}, "t")
				qty := concolic.Int(9)
				if len(got) > 0 {
					qty = e.Sub(got[0].Get("QTY"), concolic.Int(1))
				}
				_, err := s.Exec(fmt.Sprintf(`UPDATE %s SET QTY = ? WHERE ID = ?`, tab),
					[]concolic.Value{qty, id})
				return err
			})
		})
	case "f10":
		// Two exclusive UPDATEs at unconstrained symbolic rows — the
		// inconsistent-order anti-pattern (no lo<hi discipline, unlike
		// the filler hubs).
		tab := inst.Tables[0]
		return one(p+"Commit", func(e *concolic.Engine) error {
			s := sess(e)
			x := sym(e, p+"Commit", "x", 1)
			y := sym(e, p+"Commit", "y", 2)
			return s.Transactional(func() error {
				for _, id := range []concolic.Value{x, y} {
					if _, err := s.Exec(fmt.Sprintf(`UPDATE %s SET QTY = ? WHERE ID = ?`, tab),
						[]concolic.Value{concolic.Int(6), id}); err != nil {
						return err
					}
				}
				return nil
			})
		})
	case "f11":
		// A two-row reader racing a two-row updater over the same table.
		tab := inst.Tables[0]
		scan := appkit.UnitTest{Name: p + "Scan", Run: func(e *concolic.Engine) error {
			s := sess(e)
			x := sym(e, p+"Scan", "x", 1)
			y := sym(e, p+"Scan", "y", 2)
			return s.Transactional(func() error {
				for _, id := range []concolic.Value{x, y} {
					s.Query(fmt.Sprintf(`SELECT * FROM %s t WHERE t.ID = ?`, tab),
						[]concolic.Value{id}, "t")
				}
				return nil
			})
		}}
		upd := appkit.UnitTest{Name: p + "Update", Run: func(e *concolic.Engine) error {
			s := sess(e)
			x := sym(e, p+"Update", "x", 1)
			y := sym(e, p+"Update", "y", 2)
			return s.Transactional(func() error {
				for _, id := range []concolic.Value{x, y} {
					if _, err := s.Exec(fmt.Sprintf(`UPDATE %s SET QTY = ? WHERE ID = ?`, tab),
						[]concolic.Value{concolic.Int(8), id}); err != nil {
						return err
					}
				}
				return nil
			})
		}}
		return []appkit.UnitTest{scan, upd}
	}
	panic("appgen: unknown class " + inst.Class)
}
