package appgen

import (
	"fmt"
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/orm"
	"weseer/internal/schema"
)

// plantedInstance is one planted anti-pattern: its class, its dedicated
// tables (never shared with fillers or other instances, so its conflict
// edges stay self-contained and classification is a table lookup), and
// the transaction templates that exhibit it.
type plantedInstance struct {
	Class  string
	Idx    int
	Tables []string
	Names  []string // template names, for the manifest
}

// plant appends the schema tables for one instance of class cl and
// returns its metadata; plantedTemplates later compiles the matching
// transaction templates. Each planted shape is the *unfixed* variant of
// the paper's corresponding fix class:
//
//	f1  Merge on an absent key (SELECT gap lock, then INSERT)       — d1
//	f2  check-then-insert of an app-level lock row                  — d2
//	f3  range SELECT on a child index, then Persist a child         — d3
//	f4  write-behind UPDATE reordering vs an eager updater          — d5/d6
//	f5  parent point read + range-SELECT-then-Persist child         — d7
//	f6  two children scanned then persisted in reverse order        — d8
//	f7  emptiness-checked scan-then-insert                          — d10
//	f8  range scan + buffered UPDATE + Persist into one table       — d11
//	f9  shared read upgraded to exclusive UPDATE of the same row    — d14
//	f10 two UPDATEs at unordered symbolic rows                      — d17
//	f11 two-row reader racing a two-row updater                     — d18
func plant(s *schema.Schema, cl string, idx int) plantedInstance {
	p := fmt.Sprintf("%sx%d", strings.ToUpper(cl), idx)
	inst := plantedInstance{Class: cl, Idx: idx}
	kv := func(name string, cols ...string) string {
		t := s.AddTable(name).Col("ID", schema.Int)
		for _, c := range cols {
			t.Col(c, schema.Int)
		}
		t.PrimaryKey("ID")
		inst.Tables = append(inst.Tables, name)
		return name
	}
	child := func(name string) string {
		s.AddTable(name).
			Col("ID", schema.Int).
			Col("OWNER_ID", schema.Int).
			Col("AMOUNT", schema.Int).
			PrimaryKey("ID").
			Index("idx_"+name+"_owner", "OWNER_ID")
		inst.Tables = append(inst.Tables, name)
		return name
	}
	switch cl {
	case "f1":
		kv(p+"Reg", "VAL")
	case "f2":
		kv(p+"Lock", "LOCKED")
	case "f3", "f7":
		child(p + "Item")
	case "f4":
		kv(p+"Offer", "USES")
		kv(p+"Stat", "VIEWS")
	case "f5":
		kv(p+"Head", "TOTAL")
		child(p + "Line")
	case "f6":
		child(p + "Adj")
		child(p + "Det")
	case "f8":
		child(p + "Fee")
	case "f9":
		kv(p+"Prod", "QTY")
	case "f10":
		kv(p+"Inv", "QTY")
	case "f11":
		kv(p+"Cat", "QTY")
	default:
		panic("appgen: unknown class " + cl)
	}
	inst.Names = plantedNames(cl, p)
	return inst
}

// plantedNames lists the template names plantedTemplates will emit, so
// the manifest can be rendered without building the unit tests. Fixed
// variants keep the same names: a fix rewrites a template, it does not
// replace the API.
func plantedNames(cl, p string) []string {
	switch cl {
	case "f1":
		return []string{p + "Merge"}
	case "f2":
		return []string{p + "Acquire"}
	case "f3":
		return []string{p + "AddItem"}
	case "f4":
		return []string{p + "Buffered", p + "Eager"}
	case "f5":
		return []string{p + "Quote"}
	case "f6":
		return []string{p + "Reprice"}
	case "f7":
		return []string{p + "Ensure"}
	case "f8":
		return []string{p + "Surcharge"}
	case "f9":
		return []string{p + "Reserve"}
	case "f10":
		return []string{p + "Commit"}
	case "f11":
		return []string{p + "Scan", p + "Update"}
	}
	panic("appgen: unknown class " + cl)
}

// genInput is one template input: its symbolic name, the concrete value
// unit tests collect with, and the inclusive range workload clients draw
// from.
type genInput struct {
	Name   string
	Val    int64
	Lo, Hi int64
}

// genTemplate is one planted transaction template in executable form.
// Run takes one concolic value per input — symbolic under collection,
// rng-drawn concrete values under the workload harness — so the same
// body serves both the diagnosis pipeline and the Fig. 10/11-style
// before/after measurement.
type genTemplate struct {
	Name   string
	Inputs []genInput
	Run    func(e *concolic.Engine, in []concolic.Value) error
}

// unitTest compiles the template to the collection surface, making every
// input symbolic at its unit-test value (name scheme "Template.input",
// matching the fillers).
func (g genTemplate) unitTest() appkit.UnitTest {
	return appkit.UnitTest{Name: g.Name, Run: func(e *concolic.Engine) error {
		in := make([]concolic.Value, len(g.Inputs))
		for i, gi := range g.Inputs {
			in[i] = e.MakeSymbolic(g.Name+"."+gi.Name, concolic.Int(gi.Val))
		}
		return orm.Guard(func() error { return g.Run(e, in) })
	}}
}

// plantedTests compiles the unit tests for one planted instance,
// honoring the app's fixed-class set.
func (a *App) plantedTests(inst *plantedInstance, rows int) []appkit.UnitTest {
	gs := a.plantedTemplates(inst, rows, a.fixed[inst.Class])
	out := make([]appkit.UnitTest, len(gs))
	for i, g := range gs {
		out[i] = g.unitTest()
	}
	return out
}

// plantedTemplates builds the templates for one planted instance. rows
// is cfg.Rows: seeded ids are 1..rows (with OWNER_ID = ID on child
// tables), so "present" inputs stay within [1,rows] and "absent" inputs
// start at rows+1.
//
// When fixed is true each template is the mechanically-fixed variant of
// its class, mirroring the Table II fix column:
//
//	f1/f2   read-then-write → one atomic UPSERT (no gap-lock upgrade)
//	f3/f5/f7 deadlocking SELECTs move to an auto-commit probe session,
//	        leaving a single-statement write transaction
//	f4      buffered modifications reordered to match the eager path's
//	        acquisition order (feedback-edge inversion)
//	f6      probe-read scans + children persisted in scan order
//	f8      probe-read scan + eager UPDATEs before the commit-time
//	        INSERT (flush barrier: write-behind reordering removed)
//	f9      probe point read + single-UPDATE transaction (no S→X
//	        upgrade)
//	f10/f11 row pairs concretely swapped into ascending order with a
//	        strict lo < hi path condition guarding the second access —
//	        any crossing cycle then implies lo1<hi1=lo2<hi2=lo1, which
//	        the solver refutes (the fillers' opOrderedPair discipline)
//
// Each fixed variant preserves the unfixed template's per-statement
// read/write multiset (same statements, regrouped or reordered), except
// f1/f2 whose UPSERT rewrite preserves the net database effect instead;
// the fixapply property suite pins both invariants.
func (a *App) plantedTemplates(inst *plantedInstance, rows int, fixed bool) []genTemplate {
	p := fmt.Sprintf("%sx%d", strings.ToUpper(inst.Class), inst.Idx)
	sess := func(e *concolic.Engine) *orm.Session {
		return orm.NewSession(a.mapping, concolic.NewConn(e, a.db))
	}
	one := func(name string, inputs []genInput, run func(e *concolic.Engine, in []concolic.Value) error) []genTemplate {
		return []genTemplate{{Name: name, Inputs: inputs, Run: run}}
	}
	present := func(name string, v int64) genInput {
		return genInput{Name: name, Val: v, Lo: 1, Hi: int64(rows)}
	}
	absentIn := func(name string) genInput {
		return genInput{Name: name, Val: int64(rows + 1), Lo: int64(rows + 1), Hi: int64(rows + 4)}
	}

	switch inst.Class {
	case "f1":
		// Merge on an absent key: the point SELECT range-locks the gap,
		// the flush INSERT then collides with a peer's gap lock. Fixed:
		// one atomic UPSERT takes the insert path directly.
		tab := inst.Tables[0]
		return one(p+"Merge", []genInput{absentIn("id")}, func(e *concolic.Engine, in []concolic.Value) error {
			s := sess(e)
			return s.Transactional(func() error {
				if fixed {
					_, err := s.Exec(
						fmt.Sprintf(`INSERT INTO %s (ID, VAL) VALUES (?, ?) ON DUPLICATE KEY UPDATE VAL = ?`, tab),
						[]concolic.Value{in[0], concolic.Int(1), concolic.Int(1)})
					return err
				}
				en := s.NewEntity(tab)
				s.Set(en, "ID", in[0])
				s.Set(en, "VAL", concolic.Int(1))
				s.Merge(en)
				return nil
			})
		})
	case "f2":
		// Check-then-insert: existence SELECT on the absent lock row,
		// then a buffered INSERT of it. Fixed: the UPSERT both creates
		// and takes the lock row in one statement.
		tab := inst.Tables[0]
		return one(p+"Acquire", []genInput{absentIn("id")}, func(e *concolic.Engine, in []concolic.Value) error {
			s := sess(e)
			return s.Transactional(func() error {
				if fixed {
					_, err := s.Exec(
						fmt.Sprintf(`INSERT INTO %s (ID, LOCKED) VALUES (?, ?) ON DUPLICATE KEY UPDATE LOCKED = ?`, tab),
						[]concolic.Value{in[0], concolic.Int(1), concolic.Int(1)})
					return err
				}
				locks := s.Query(fmt.Sprintf(`SELECT * FROM %s l WHERE l.ID = ?`, tab),
					[]concolic.Value{in[0]}, "l")
				if len(locks) == 0 {
					en := s.NewEntity(tab)
					s.Set(en, "ID", in[0])
					s.Set(en, "LOCKED", concolic.Int(1))
					s.Persist(en)
				} else {
					s.Set(locks[0], "LOCKED", concolic.Int(1))
				}
				return nil
			})
		})
	case "f3":
		// Range SELECT over the owner index, then Persist a new child
		// under the same owner. Fixed: the scan runs on an auto-commit
		// probe session, so its range lock is gone before the INSERT.
		tab := inst.Tables[0]
		return one(p+"AddItem", []genInput{present("owner", int64(1+inst.Idx%rows))},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				if fixed {
					sess(e).Query(fmt.Sprintf(`SELECT * FROM %s c WHERE c.OWNER_ID = ?`, tab),
						[]concolic.Value{in[0]}, "c")
				}
				return s.Transactional(func() error {
					if !fixed {
						s.Query(fmt.Sprintf(`SELECT * FROM %s c WHERE c.OWNER_ID = ?`, tab),
							[]concolic.Value{in[0]}, "c")
					}
					en := s.NewEntity(tab)
					s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
					s.Set(en, "OWNER_ID", in[0])
					s.Set(en, "AMOUNT", concolic.Int(1))
					s.Persist(en)
					return nil
				})
			})
	case "f4":
		// Write-behind reordering: the buffered path touches Offer
		// before Stat but flushes Stat's UPDATE first (first-modification
		// order); the eager path updates Offer then Stat directly.
		// Fixed: the buffered modifications are reordered so the flush
		// order matches the eager path (Offer first).
		offer, stat := inst.Tables[0], inst.Tables[1]
		buf := genTemplate{
			Name:   p + "Buffered",
			Inputs: []genInput{present("offer", 1), present("stat", 2)},
			Run: func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				o := s.Find(offer, in[0])
				st := s.Find(stat, in[1])
				return s.Transactional(func() error {
					if fixed {
						s.Set(o, "USES", e.Add(o.Get("USES"), concolic.Int(1)))
						s.Set(st, "VIEWS", e.Add(st.Get("VIEWS"), concolic.Int(1)))
						return nil
					}
					s.Set(st, "VIEWS", e.Add(st.Get("VIEWS"), concolic.Int(1)))
					s.Set(o, "USES", e.Add(o.Get("USES"), concolic.Int(1)))
					return nil
				})
			},
		}
		eager := genTemplate{
			Name:   p + "Eager",
			Inputs: []genInput{present("offer", 1), present("stat", 2)},
			Run: func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				return s.Transactional(func() error {
					if _, err := s.Exec(fmt.Sprintf(`UPDATE %s SET USES = ? WHERE ID = ?`, offer),
						[]concolic.Value{concolic.Int(7), in[0]}); err != nil {
						return err
					}
					_, err := s.Exec(fmt.Sprintf(`UPDATE %s SET VIEWS = ? WHERE ID = ?`, stat),
						[]concolic.Value{concolic.Int(7), in[1]})
					return err
				})
			},
		}
		return []genTemplate{buf, eager}
	case "f5":
		// Parent point read (shared lock) followed by a child
		// range-scan-then-Persist under the parent's id. Fixed: both
		// reads probe auto-commit; the transaction is the INSERT alone.
		head, line := inst.Tables[0], inst.Tables[1]
		return one(p+"Quote", []genInput{present("head", int64(1+inst.Idx%rows))},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				reads := func(rs *orm.Session) {
					rs.Query(fmt.Sprintf(`SELECT * FROM %s h WHERE h.ID = ?`, head),
						[]concolic.Value{in[0]}, "h")
					rs.Query(fmt.Sprintf(`SELECT * FROM %s l WHERE l.OWNER_ID = ?`, line),
						[]concolic.Value{in[0]}, "l")
				}
				if fixed {
					reads(sess(e))
				}
				return s.Transactional(func() error {
					if !fixed {
						reads(s)
					}
					en := s.NewEntity(line)
					s.Set(en, "ID", concolic.Int(a.db.NextID(line)))
					s.Set(en, "OWNER_ID", in[0])
					s.Set(en, "AMOUNT", concolic.Int(2))
					s.Persist(en)
					return nil
				})
			})
	case "f6":
		// Two children scanned Adj→Det but persisted Det→Adj: the flush
		// order crosses the scan order between the two tables. Fixed:
		// probe-read scans plus persists in scan order, so every
		// transaction acquires Adj before Det.
		adj, det := inst.Tables[0], inst.Tables[1]
		return one(p+"Reprice", []genInput{present("owner", int64(1+inst.Idx%rows))},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				reads := func(rs *orm.Session) {
					rs.Query(fmt.Sprintf(`SELECT * FROM %s a WHERE a.OWNER_ID = ?`, adj),
						[]concolic.Value{in[0]}, "a")
					rs.Query(fmt.Sprintf(`SELECT * FROM %s d WHERE d.OWNER_ID = ?`, det),
						[]concolic.Value{in[0]}, "d")
				}
				order := []string{det, adj}
				if fixed {
					reads(sess(e))
					order = []string{adj, det}
				}
				return s.Transactional(func() error {
					if !fixed {
						reads(s)
					}
					for _, tab := range order {
						en := s.NewEntity(tab)
						s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
						s.Set(en, "OWNER_ID", in[0])
						s.Set(en, "AMOUNT", concolic.Int(3))
						s.Persist(en)
					}
					return nil
				})
			})
	case "f7":
		// Scan-then-insert guarded by emptiness: the concrete owner has
		// no rows, so the INSERT follows the empty range's gap lock.
		// Fixed: the emptiness probe auto-commits first.
		tab := inst.Tables[0]
		return one(p+"Ensure", []genInput{absentIn("owner")},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				scan := func(rs *orm.Session) []*orm.Entity {
					return rs.Query(fmt.Sprintf(`SELECT * FROM %s c WHERE c.OWNER_ID = ?`, tab),
						[]concolic.Value{in[0]}, "c")
				}
				var got []*orm.Entity
				if fixed {
					got = scan(sess(e))
				}
				return s.Transactional(func() error {
					if !fixed {
						got = scan(s)
					}
					if len(got) == 0 {
						en := s.NewEntity(tab)
						s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
						s.Set(en, "OWNER_ID", in[0])
						s.Set(en, "AMOUNT", concolic.Int(4))
						s.Persist(en)
					}
					return nil
				})
			})
	case "f8":
		// Range scan, buffered UPDATE of a found row, and a Persist into
		// the same table: INSERT-before-UPDATE flush order vs the scan's
		// shared range lock. Fixed: the scan probes auto-commit and the
		// UPDATEs run eagerly before the commit-time INSERT — the flush
		// barrier restores program order.
		tab := inst.Tables[0]
		return one(p+"Surcharge", []genInput{present("owner", int64(1+inst.Idx%rows))},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				scan := func(rs *orm.Session) []*orm.Entity {
					return rs.Query(fmt.Sprintf(`SELECT * FROM %s f WHERE f.OWNER_ID = ?`, tab),
						[]concolic.Value{in[0]}, "f")
				}
				var got []*orm.Entity
				if fixed {
					got = scan(sess(e))
				}
				return s.Transactional(func() error {
					if fixed {
						for _, en := range got {
							if _, err := s.Exec(fmt.Sprintf(`UPDATE %s SET AMOUNT = ? WHERE ID = ?`, tab),
								[]concolic.Value{e.Add(en.Get("AMOUNT"), concolic.Int(1)), en.Get("ID")}); err != nil {
								return err
							}
						}
					} else {
						got = scan(s)
						for _, en := range got {
							s.Set(en, "AMOUNT", e.Add(en.Get("AMOUNT"), concolic.Int(1)))
						}
					}
					en := s.NewEntity(tab)
					s.Set(en, "ID", concolic.Int(a.db.NextID(tab)))
					s.Set(en, "OWNER_ID", in[0])
					s.Set(en, "AMOUNT", concolic.Int(5))
					s.Persist(en)
					return nil
				})
			})
	case "f9":
		// Read-modify-write lock upgrade: shared point SELECT, then an
		// exclusive UPDATE of the same symbolic row. Fixed: the read
		// probes auto-commit, leaving a single-UPDATE transaction.
		tab := inst.Tables[0]
		return one(p+"Reserve", []genInput{present("id", int64(1+inst.Idx%rows))},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				read := func(rs *orm.Session) []*orm.Entity {
					return rs.Query(fmt.Sprintf(`SELECT * FROM %s t WHERE t.ID = ?`, tab),
						[]concolic.Value{in[0]}, "t")
				}
				var got []*orm.Entity
				if fixed {
					got = read(sess(e))
				}
				return s.Transactional(func() error {
					if !fixed {
						got = read(s)
					}
					qty := concolic.Int(9)
					if len(got) > 0 {
						qty = e.Sub(got[0].Get("QTY"), concolic.Int(1))
					}
					_, err := s.Exec(fmt.Sprintf(`UPDATE %s SET QTY = ? WHERE ID = ?`, tab),
						[]concolic.Value{qty, in[0]})
					return err
				})
			})
	case "f10":
		// Two exclusive UPDATEs at unconstrained symbolic rows — the
		// inconsistent-order anti-pattern (no lo<hi discipline, unlike
		// the filler hubs). Fixed: the pair is concretely swapped into
		// ascending order and the second UPDATE runs under a strict
		// lo < hi path condition.
		tab := inst.Tables[0]
		return one(p+"Commit", []genInput{present("x", 1), present("y", 2)},
			func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				upd := func(id concolic.Value) error {
					_, err := s.Exec(fmt.Sprintf(`UPDATE %s SET QTY = ? WHERE ID = ?`, tab),
						[]concolic.Value{concolic.Int(6), id})
					return err
				}
				return s.Transactional(func() error {
					if fixed {
						lo, hi := in[0], in[1]
						if !e.If(e.Lt(lo, hi)) {
							lo, hi = hi, lo
						}
						if err := upd(lo); err != nil {
							return err
						}
						if e.If(e.Lt(lo, hi)) {
							return upd(hi)
						}
						return nil
					}
					for _, id := range []concolic.Value{in[0], in[1]} {
						if err := upd(id); err != nil {
							return err
						}
					}
					return nil
				})
			})
	case "f11":
		// A two-row reader racing a two-row updater over the same table.
		// Fixed: both follow the ascending-order discipline of f10.
		tab := inst.Tables[0]
		orderedPair := func(e *concolic.Engine, in []concolic.Value, op func(id concolic.Value) error) error {
			if fixed {
				lo, hi := in[0], in[1]
				if !e.If(e.Lt(lo, hi)) {
					lo, hi = hi, lo
				}
				if err := op(lo); err != nil {
					return err
				}
				if e.If(e.Lt(lo, hi)) {
					return op(hi)
				}
				return nil
			}
			for _, id := range []concolic.Value{in[0], in[1]} {
				if err := op(id); err != nil {
					return err
				}
			}
			return nil
		}
		scan := genTemplate{
			Name:   p + "Scan",
			Inputs: []genInput{present("x", 1), present("y", 2)},
			Run: func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				return s.Transactional(func() error {
					return orderedPair(e, in, func(id concolic.Value) error {
						s.Query(fmt.Sprintf(`SELECT * FROM %s t WHERE t.ID = ?`, tab),
							[]concolic.Value{id}, "t")
						return nil
					})
				})
			},
		}
		upd := genTemplate{
			Name:   p + "Update",
			Inputs: []genInput{present("x", 1), present("y", 2)},
			Run: func(e *concolic.Engine, in []concolic.Value) error {
				s := sess(e)
				return s.Transactional(func() error {
					return orderedPair(e, in, func(id concolic.Value) error {
						_, err := s.Exec(fmt.Sprintf(`UPDATE %s SET QTY = ? WHERE ID = ?`, tab),
							[]concolic.Value{concolic.Int(8), id})
						return err
					})
				})
			},
		}
		return []genTemplate{scan, upd}
	}
	panic("appgen: unknown class " + inst.Class)
}
