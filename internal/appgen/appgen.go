// Package appgen generates complete synthetic applications — schema,
// seeded database, transaction templates, and a deadlock classifier —
// from a small seeded configuration. A generated app exposes the same
// surface as the hand-written model apps (broadleaf, shopizer), so its
// corpus flows through concolic collection, prescreen, enumeration, and
// the solver unchanged. Generation is fully deterministic: the same spec
// yields a byte-identical manifest and a byte-identical analysis report.
//
// The corpus is built so that its set of satisfiable deadlock cycles is
// exactly the planted anti-pattern instances (classes f1–f11 of the
// paper's Table II fix catalog): filler templates contribute realistic
// lock traffic and genuinely-UNSAT solver work but no diagnosable
// deadlock (see the opKind comment in templates.go for the argument).
package appgen

import (
	"fmt"
	"strings"
	"time"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/orm"
	"weseer/internal/schema"
)

// App is one generated application instance.
type App struct {
	cfg     Config
	spec    string
	scm     *schema.Schema
	db      *minidb.DB
	dbCfg   minidb.Config
	mapping *orm.Mapping
	mods    []module
	fillers []template
	planted []plantedInstance
	classOf map[string]string // planted table → class
	fixed   map[string]bool   // planted classes compiled as their fixed variant
}

// Option adjusts generation beyond the spec.
type Option func(*App)

// WithFixedClasses compiles the named planted classes as their
// mechanically-fixed template variants (see plantedTemplates). Schema,
// seeding, template names, and symbolic input names are unchanged — only
// the template bodies differ — so fixed and unfixed corpora are directly
// comparable. Unknown class names panic via New's validation.
func WithFixedClasses(classes ...string) Option {
	return func(a *App) {
		for _, cl := range classes {
			a.fixed[cl] = true
		}
	}
}

// New generates the application for cfg (normalized first) with a fresh
// seeded database.
func New(cfg Config, dbCfg minidb.Config, opts ...Option) *App {
	cfg = cfg.Normalize()
	if dbCfg.LockWaitTimeout == 0 {
		dbCfg.LockWaitTimeout = 2 * time.Second
	}
	r := newRNG(cfg.Seed)
	scm := schema.New()
	a := &App{
		cfg:     cfg,
		spec:    cfg.Spec(),
		scm:     scm,
		dbCfg:   dbCfg,
		classOf: map[string]string{},
		fixed:   map[string]bool{},
	}
	for _, o := range opts {
		o(a)
	}
	a.mods = buildModules(cfg, r, scm)
	a.fillers = buildTemplates(cfg, r, a.mods)
	planted := map[string]bool{}
	for _, cc := range cfg.Classes {
		planted[cc.Class] = true
		for i := 0; i < cc.N; i++ {
			inst := plant(scm, cc.Class, i)
			for _, tab := range inst.Tables {
				a.classOf[tab] = cc.Class
			}
			a.planted = append(a.planted, inst)
		}
	}
	for cl := range a.fixed {
		if !planted[cl] {
			panic(fmt.Sprintf("appgen: WithFixedClasses(%q): class not planted in %s", cl, a.spec))
		}
	}
	a.db = minidb.Open(scm, dbCfg)
	a.mapping = orm.NewMapping(scm)
	a.seed()
	return a
}

// FromSpec generates the application named "gen:"+spec.
func FromSpec(spec string, dbCfg minidb.Config, opts ...Option) (*App, error) {
	cfg, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(cfg, dbCfg, opts...), nil
}

// Refix regenerates the same application (same spec, same database
// config, fresh seeded database) with exactly the given classes fixed —
// the "apply this fix and rerun" step of the fix-verification loop.
func (a *App) Refix(classes ...string) (*App, error) {
	planted := map[string]bool{}
	for _, cc := range a.cfg.Classes {
		planted[cc.Class] = true
	}
	for _, cl := range classes {
		if !planted[cl] {
			return nil, fmt.Errorf("appgen: Refix(%q): class not planted in %s", cl, a.spec)
		}
	}
	return New(a.cfg, a.dbCfg, WithFixedClasses(classes...)), nil
}

// FixedClasses lists the classes compiled as fixed variants, in catalog
// order.
func (a *App) FixedClasses() []string {
	var out []string
	for _, cc := range a.cfg.Classes {
		if a.fixed[cc.Class] {
			out = append(out, cc.Class)
		}
	}
	return out
}

// seed inserts cfg.Rows rows into every table: ID = 1..Rows, every other
// INT column mirroring the id (so child OWNER_IDs line up with parent
// ids), VARCHARs a short tag. Runs with concolic recording off, exactly
// like the model apps' seeding.
func (a *App) seed() {
	e := concolic.New(concolic.ModeOff)
	s := orm.NewSession(a.mapping, concolic.NewConn(e, a.db))
	err := s.Transactional(func() error {
		for _, t := range a.scm.Tables() {
			for i := 1; i <= a.cfg.Rows; i++ {
				en := s.NewEntity(t.Name)
				for _, c := range t.Columns {
					switch c.Type {
					case schema.Varchar:
						s.Set(en, c.Name, concolic.Str(fmt.Sprintf("r%d", i)))
					default:
						s.Set(en, c.Name, concolic.Int(int64(i)))
					}
				}
				s.Persist(en)
			}
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("appgen: seeding failed: %v", err))
	}
	for _, t := range a.scm.Tables() {
		a.db.BumpID(t.Name, int64(a.cfg.Rows))
	}
}

// Name returns the registry name, "gen:" + the canonical spec.
func (a *App) Name() string { return "gen:" + a.spec }

// Config returns the normalized generation config.
func (a *App) Config() Config { return a.cfg }

// Schema returns the generated schema.
func (a *App) Schema() *schema.Schema { return a.scm }

// DB returns the seeded database.
func (a *App) DB() *minidb.DB { return a.db }

// UnitTests returns one unit test per transaction template: fillers
// first (generation order), then the planted anti-pattern templates.
func (a *App) UnitTests() []appkit.UnitTest {
	out := make([]appkit.UnitTest, 0, len(a.fillers)+2*len(a.planted))
	for _, t := range a.fillers {
		out = append(out, a.unitTest(t))
	}
	for i := range a.planted {
		out = append(out, a.plantedTests(&a.planted[i], a.cfg.Rows)...)
	}
	return out
}

// Classify maps a diagnosed deadlock to the planted anti-pattern class
// whose dedicated tables it cycles over, or "" for a cycle on filler
// tables — which the generator's construction argues cannot be
// satisfiable, so "" flags a generator bug.
func (a *App) Classify(d *core.Deadlock) string {
	if cl, ok := a.classOf[d.Cycle.Table1]; ok {
		return cl
	}
	if cl, ok := a.classOf[d.Cycle.Table2]; ok {
		return cl
	}
	return ""
}

// PlantedClasses lists the distinct planted classes in catalog order.
func (a *App) PlantedClasses() []string {
	var out []string
	for _, cc := range a.cfg.Classes {
		if cc.N > 0 {
			out = append(out, cc.Class)
		}
	}
	return out
}

// Manifest renders the generated application deterministically: spec,
// module layout, planted instances, and every template with its ops.
// Byte-equality of manifests is the determinism contract tested by the
// suite and relied on by the scale bench.
func (a *App) Manifest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "appgen %s\n", a.Name())
	fmt.Fprintf(&b, "tables=%d templates=%d planted=%d\n",
		len(a.scm.Tables()), len(a.fillers), len(a.planted))
	if fc := a.FixedClasses(); len(fc) > 0 {
		fmt.Fprintf(&b, "fixed=%s\n", strings.Join(fc, "+"))
	}
	for _, m := range a.mods {
		fmt.Fprintf(&b, "module %s hub=%s reads=%s ins=%s\n",
			m.Name, m.Hub, strings.Join(m.Reads, "+"), strings.Join(m.Ins, "+"))
	}
	for _, inst := range a.planted {
		fmt.Fprintf(&b, "planted %s#%d tables=%s templates=%s\n",
			inst.Class, inst.Idx, strings.Join(inst.Tables, "+"), strings.Join(inst.Names, "+"))
	}
	for _, t := range a.fillers {
		t.render(&b)
	}
	return b.String()
}
