package appgen

import (
	"math/rand"

	"weseer/internal/concolic"
	"weseer/internal/orm"
	"weseer/internal/workload"
)

// runnable is one template lifted to the workload surface: a name plus a
// runner over rng-drawn concrete inputs.
type runnable struct {
	name string
	run  func(e *concolic.Engine, rng *rand.Rand) error
}

// Flow returns the workload driver for the generated application: every
// client uniformly picks among all templates (fillers first, then the
// planted anti-patterns — the same order as UnitTests) with inputs drawn
// from each input's declared range. Planted "absent" inputs draw from a
// small window above the seeded rows, so concurrent clients collide on
// the same gaps and the planted deadlocks actually fire under load.
// Deterministic given the per-client seeded rng; every step body is
// wrapped in orm.Guard so flush-time aborts surface as retryable errors.
func (a *App) Flow() workload.Flow {
	var rs []runnable
	for _, t := range a.fillers {
		t := t
		rs = append(rs, runnable{name: t.Name, run: func(e *concolic.Engine, rng *rand.Rand) error {
			s := orm.NewSession(a.mapping, concolic.NewConn(e, a.db))
			in := make([]concolic.Value, len(t.Inputs))
			for i := range t.Inputs {
				// Filler inputs are all row ids in [1, Rows].
				in[i] = concolic.Int(1 + rng.Int63n(int64(a.cfg.Rows)))
			}
			return orm.Guard(func() error {
				if err := a.runOps(e, s, t.Warm, in); err != nil {
					return err
				}
				return s.Transactional(func() error {
					return a.runOps(e, s, t.Body, in)
				})
			})
		}})
	}
	for i := range a.planted {
		inst := &a.planted[i]
		for _, g := range a.plantedTemplates(inst, a.cfg.Rows, a.fixed[inst.Class]) {
			g := g
			rs = append(rs, runnable{name: g.Name, run: func(e *concolic.Engine, rng *rand.Rand) error {
				in := make([]concolic.Value, len(g.Inputs))
				for i, gi := range g.Inputs {
					in[i] = concolic.Int(gi.Lo + rng.Int63n(gi.Hi-gi.Lo+1))
				}
				return orm.Guard(func() error { return g.Run(e, in) })
			}})
		}
	}
	return func(clientID int64, rng *rand.Rand) func() workload.Step {
		return func() workload.Step {
			r := rs[rng.Intn(len(rs))]
			return func(e *concolic.Engine) (string, error) {
				return r.name, r.run(e, rng)
			}
		}
	}
}
