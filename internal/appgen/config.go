package appgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Classes is the paper's application-side anti-pattern catalog (the fix
// ids f1–f11 of Table II). Each class names one ORM misuse the generator
// can plant; the planted instance is the *unfixed* shape, so the
// diagnosis pipeline should rediscover it.
var Classes = []string{"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11"}

// ClassCount sets how many independent instances of one anti-pattern
// class the corpus plants. Instances never share tables, so counts scale
// the workload without coupling the planted deadlocks to each other.
type ClassCount struct {
	Class string `json:"class"`
	N     int    `json:"n"`
}

// Config parameterizes one generated application. The zero value of any
// field means "use the default"; Normalize resolves defaults, so two
// Configs that normalize equal generate byte-identical corpora.
type Config struct {
	// Seed drives every random choice. Same seed, same corpus.
	Seed int64 `json:"seed"`
	// Templates is the number of filler transaction templates (planted
	// anti-pattern instances add their own on top).
	Templates int `json:"templates"`
	// Modules is the number of contention clusters. Filler templates only
	// touch tables of their own module, which bounds the surviving
	// phase-1 pairs the way bounded-context schemas do in real apps.
	Modules int `json:"modules"`
	// TablesPerModule is the filler table count per module: one hot "hub"
	// table plus read-only and insert-only satellites.
	TablesPerModule int `json:"tables_per_module"`
	// Rows seeds this many rows into every generated table.
	Rows int `json:"rows"`
	// HotPct is the percentage of filler templates that update their
	// module's hub table — the contention hot-spot skew knob.
	HotPct int `json:"hot_pct"`
	// Nest is the conditional-nesting depth of filler templates: each
	// level adds one input-dependent branch (and so one path condition).
	Nest int `json:"nest"`
	// Classes is the planted anti-pattern distribution. nil means one
	// instance of every class; an empty non-nil slice means none.
	Classes []ClassCount `json:"classes"`
}

// Normalize resolves defaults and orders Classes canonically.
func (c Config) Normalize() Config {
	if c.Templates == 0 {
		c.Templates = 96
	}
	if c.Modules == 0 {
		c.Modules = max(1, c.Templates/12)
	}
	if c.TablesPerModule == 0 {
		c.TablesPerModule = 5
	}
	if c.Rows == 0 {
		c.Rows = 8
	}
	if c.Rows < 2 {
		c.Rows = 2 // planted f4 needs rows 1 and 2 seeded
	}
	if c.HotPct == 0 {
		c.HotPct = 70
	}
	if c.Nest == 0 {
		c.Nest = 2
	}
	if c.Classes == nil {
		for _, cl := range Classes {
			c.Classes = append(c.Classes, ClassCount{Class: cl, N: 1})
		}
	}
	sort.SliceStable(c.Classes, func(i, j int) bool {
		return classOrd(c.Classes[i].Class) < classOrd(c.Classes[j].Class)
	})
	return c
}

func classOrd(cl string) int {
	for i, known := range Classes {
		if known == cl {
			return i
		}
	}
	return len(Classes)
}

// Spec renders the canonical spec string: the part after "gen:" in the
// registry name. ParseSpec(c.Spec()) round-trips to the same normalized
// config, so a corpus is reproducible from its name alone.
func (c Config) Spec() string {
	c = c.Normalize()
	var b strings.Builder
	fmt.Fprintf(&b, "%d,templates=%d,modules=%d,tables=%d,rows=%d,hot=%d,nest=%d",
		c.Seed, c.Templates, c.Modules, c.TablesPerModule, c.Rows, c.HotPct, c.Nest)
	b.WriteString(",classes=")
	if len(c.Classes) == 0 {
		b.WriteString("none")
		return b.String()
	}
	for i, cc := range c.Classes {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s:%d", cc.Class, cc.N)
	}
	return b.String()
}

// ParseSpec parses "<seed>[,key=value...]" — the registry argument of
// "gen:<seed>[,templates=N,...]". Keys: templates, modules, tables
// (per module), rows, hot, nest, classes (e.g. "f1:2+f9:1", "all",
// "none").
func ParseSpec(spec string) (Config, error) {
	var c Config
	parts := strings.Split(spec, ",")
	if len(parts) == 0 || strings.TrimSpace(parts[0]) == "" {
		return c, fmt.Errorf("appgen: empty spec (want \"<seed>[,templates=N,...]\")")
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return c, fmt.Errorf("appgen: bad seed %q: %v", parts[0], err)
	}
	c.Seed = seed
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok {
			return c, fmt.Errorf("appgen: bad option %q (want key=value)", p)
		}
		if k == "classes" {
			cs, err := parseClasses(v)
			if err != nil {
				return c, err
			}
			c.Classes = cs
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return c, fmt.Errorf("appgen: bad value %q for %s", v, k)
		}
		switch k {
		case "templates":
			c.Templates = n
		case "modules":
			c.Modules = n
		case "tables":
			c.TablesPerModule = n
		case "rows":
			c.Rows = n
		case "hot":
			c.HotPct = n
		case "nest":
			c.Nest = n
		default:
			return c, fmt.Errorf("appgen: unknown option %q", k)
		}
	}
	return c, nil
}

func parseClasses(v string) ([]ClassCount, error) {
	switch v {
	case "none":
		return []ClassCount{}, nil
	case "all", "":
		return nil, nil // Normalize fills in one of each
	}
	var out []ClassCount
	for _, item := range strings.Split(v, "+") {
		cl, nStr, ok := strings.Cut(item, ":")
		n := 1
		if ok {
			var err error
			n, err = strconv.Atoi(nStr)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("appgen: bad class count %q", item)
			}
		}
		if classOrd(cl) >= len(Classes) {
			return nil, fmt.Errorf("appgen: unknown anti-pattern class %q (want f1..f11)", cl)
		}
		out = append(out, ClassCount{Class: cl, N: n})
	}
	return out, nil
}
