package appgen

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/core"
	"weseer/internal/minidb"
	"weseer/internal/trace"
)

func TestSpecRoundTrip(t *testing.T) {
	cases := []string{
		"7",
		"7,templates=12,modules=3,tables=4,rows=6,hot=80,nest=1,classes=all",
		"42,classes=f1:2+f9:1",
		"-3,classes=none",
	}
	for _, spec := range cases {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		canon := cfg.Spec()
		cfg2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", canon, err)
		}
		if got := cfg2.Spec(); got != canon {
			t.Errorf("spec %q: canonical form not a fixed point: %q -> %q", spec, canon, got)
		}
	}
	for _, bad := range []string{"", "x", "7,tables", "7,tables=-1", "7,bogus=3", "7,classes=f99"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
}

// collect runs the app's unit tests and returns the traces.
func collect(t *testing.T, a *App) []*trace.Trace {
	t.Helper()
	traces, err := appkit.Collect(a.UnitTests(), concolic.ModeConcolic)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return traces
}

// render produces the canonical report text used for byte-identity
// checks: the timing-free funnel, sorted class counts, and every
// deadlock's rendered form.
func render(a *App, res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "funnel: %+v\n", res.Stats.WithoutTimings())
	counts := map[string]int{}
	for _, d := range res.Deadlocks {
		counts[a.Classify(d)]++
	}
	var classes []string
	for cl := range counts {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		fmt.Fprintf(&b, "class %q: %d report(s)\n", cl, counts[cl])
	}
	for i, d := range res.Deadlocks {
		fmt.Fprintf(&b, "--- deadlock %d class=%q\n%s", i, a.Classify(d), d.Render())
	}
	return b.String()
}

const testSpec = "7,templates=12,modules=3,tables=4,rows=6,hot=80,nest=2,classes=all"

func TestDeterminismAcrossBuildsAndParallelism(t *testing.T) {
	a1, err := FromSpec(testSpec, minidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := FromSpec(testSpec, minidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Manifest() != a2.Manifest() {
		t.Fatalf("same spec produced different manifests")
	}
	if a1.Name() != "gen:"+a1.Config().Spec() {
		t.Fatalf("Name() = %q, want gen:%s", a1.Name(), a1.Config().Spec())
	}
	// The canonical name itself reproduces the corpus.
	a3, err := FromSpec(strings.TrimPrefix(a1.Name(), "gen:"), minidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a3.Manifest() != a1.Manifest() {
		t.Fatalf("canonical name did not reproduce the manifest")
	}

	tr1, tr2 := collect(t, a1), collect(t, a2)
	var reports []string
	for i, par := range []int{1, 4, 16} {
		app, traces := a1, tr1
		if i%2 == 1 { // interleave the two builds: app identity must not matter
			app, traces = a2, tr2
		}
		res := core.NewAnalyzer(app.Schema(), core.WithParallelism(par)).Analyze(traces)
		reports = append(reports, render(app, res))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("report at parallelism %d differs from parallelism 1", []int{1, 4, 16}[i])
		}
	}
}

func TestPlantedClassesAllDiagnosedNoSpurious(t *testing.T) {
	a, err := FromSpec(testSpec, minidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewAnalyzer(a.Schema()).Analyze(collect(t, a))
	if len(res.Deadlocks) == 0 {
		t.Fatal("no deadlocks diagnosed on a corpus with all classes planted")
	}
	got := map[string]int{}
	for _, d := range res.Deadlocks {
		got[a.Classify(d)]++
	}
	for _, cl := range a.PlantedClasses() {
		if got[cl] == 0 {
			t.Errorf("planted class %s: no deadlock diagnosed", cl)
		}
	}
	if n := got[""]; n > 0 {
		for _, d := range res.Deadlocks {
			if a.Classify(d) == "" {
				t.Logf("spurious:\n%s", d.Render())
			}
		}
		t.Errorf("%d deadlock(s) on filler tables — fillers must be inert", n)
	}
}

func TestNoClassesMeansNoDeadlocks(t *testing.T) {
	a, err := FromSpec("11,templates=10,modules=2,tables=4,rows=4,hot=100,nest=1,classes=none", minidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewAnalyzer(a.Schema()).Analyze(collect(t, a))
	if len(res.Deadlocks) != 0 {
		for _, d := range res.Deadlocks {
			t.Logf("unexpected:\n%s", d.Render())
		}
		t.Fatalf("filler-only corpus diagnosed %d deadlock(s), want 0", len(res.Deadlocks))
	}
	if res.Stats.GroupsSolved == 0 {
		t.Error("filler-only corpus produced no solver groups — hubs are not generating work")
	}
}
