package appgen

import (
	"fmt"
	"strings"

	"weseer/internal/apps/appkit"
	"weseer/internal/concolic"
	"weseer/internal/orm"
)

// opKind enumerates the statement shapes filler templates are built
// from. Fillers are designed to be *inert*: they generate realistic lock
// traffic, surviving phase-1 pairs, coarse cycles, and genuine solver
// work — but every cycle formula they produce is unsatisfiable, so a
// corpus's diagnosed deadlocks are exactly its planted anti-patterns.
// The inertness argument, op by op:
//
//   - opPointRead / opRangeRead only touch read-only satellites, which no
//     template ever writes; S–S lock pairs never conflict, so no C-edge
//     can involve them.
//   - opInsertRow inserts exactly one row per insert-only satellite per
//     template, immediately (s.Exec, not Persist — a deferred flush
//     would reorder the INSERT after the hub update and reopen cycles),
//     with tables visited in one module-wide order. A crossing cycle
//     needs the two transactions to visit two tables in opposite orders,
//     which a consistent order makes impossible.
//   - opOrderedPair is the contention hot spot: two UPDATEs on the
//     module's hub at symbolic row ids, concretely swapped into
//     ascending order and guarded by a strict lo < hi path condition.
//     Any hub–hub crossing cycle therefore implies
//     lo1 < hi1 = lo2 < hi2 = lo1 — a contradiction the solver must
//     discover, i.e. real UNSAT work. The pair is always the template's
//     last statement, so insert-vs-hub crossings would need a reversed
//     program order that no template has.
//   - opGuard adds input-dependent branching (path-condition depth)
//     and, when its concrete branch fails, skips a suffix of the body —
//     skipping preserves relative statement order, so the discipline
//     above survives.
type opKind uint8

const (
	opGuard       opKind = iota // if input[A] <= Thr, else skip next Skip ops
	opPointRead                 // SELECT by primary key at input[A]
	opRangeRead                 // SELECT via secondary index at input[A]
	opInsertRow                 // immediate INSERT, fresh concrete id, HUB_ID=input[A]
	opOrderedPair               // two hub UPDATEs at ascending ids input[A], input[B]
)

// op is one statement (or guard) of a template body.
type op struct {
	Kind  opKind
	Table string
	A, B  int   // input indexes
	Thr   int64 // opGuard threshold
	Skip  int   // opGuard: ops skipped when the branch fails
}

// input is one symbolic API input with its concrete unit-test value.
type input struct {
	Name string
	Val  int64
}

// template is one generated transaction template: symbolic inputs, warm
// statements that run before the transaction (auto-commit reads that
// hydrate the ORM cache, as the model apps' APIs do), and the
// transactional body.
type template struct {
	Name   string
	Inputs []input
	Warm   []op
	Body   []op
}

var fillerVerbs = []string{
	"Get", "List", "Sync", "Apply", "Post", "Refresh", "Settle",
	"Reconcile", "Submit", "Renew", "Review", "Close",
}

// buildTemplates generates the cfg.Templates filler templates over the
// module layout. Templates round-robin across modules so every hub sees
// contention.
func buildTemplates(cfg Config, r *rng, mods []module) []template {
	out := make([]template, 0, cfg.Templates)
	for k := 0; k < cfg.Templates; k++ {
		mod := mods[k%len(mods)]
		t := template{
			Name: fmt.Sprintf("%s%s_%d", fillerVerbs[r.intn(len(fillerVerbs))], mod.Name, k),
		}
		// Inputs: two hub row ids (the ordered-pair endpoints; distinct
		// concrete values so the pair update really executes) plus one
		// owner id for satellite lookups.
		a := int64(r.rangeInt(1, cfg.Rows))
		b := int64(r.rangeInt(1, cfg.Rows))
		if a == b {
			b = a%int64(cfg.Rows) + 1
		}
		t.Inputs = []input{
			{Name: "row_a", Val: a},
			{Name: "row_b", Val: b},
			{Name: "owner", Val: int64(r.rangeInt(1, cfg.Rows))},
		}

		// Warm phase: 0–2 reference reads outside the transaction.
		for i, n := 0, r.intn(3); i < n && len(mod.Reads) > 0; i++ {
			t.Warm = append(t.Warm, op{Kind: opPointRead, Table: mod.Reads[r.intn(len(mod.Reads))], A: 2})
		}

		// Body: reads, then ordered inserts, then (for hot templates)
		// the hub pair update.
		var body []op
		for i, n := 0, r.rangeInt(1, 2); i < n && len(mod.Reads) > 0; i++ {
			kind := opPointRead
			if r.pct(50) {
				kind = opRangeRead
			}
			body = append(body, op{Kind: kind, Table: mod.Reads[r.intn(len(mod.Reads))], A: r.intn(3)})
		}
		for i, tab := range mod.Ins {
			// Subset of insert satellites, module order preserved.
			if r.pct(70) {
				body = append(body, op{Kind: opInsertRow, Table: tab, A: i % 2})
			}
		}
		if r.pct(cfg.HotPct) {
			body = append(body, op{Kind: opOrderedPair, Table: mod.Hub, A: 0, B: 1})
		}
		// Nesting: wrap suffixes of the body in input guards, innermost
		// first, so depth-d templates carry d extra path conditions.
		for d := 0; d < cfg.Nest; d++ {
			at := r.intn(len(body) + 1)
			thr := int64(cfg.Rows + 1) // concretely true: inputs are <= Rows
			if r.pct(15) {
				thr = 0 // concretely false: this suffix is dead on this path
			}
			g := op{Kind: opGuard, A: r.intn(3), Thr: thr, Skip: len(body) - at}
			body = append(body[:at:at], append([]op{g}, body[at:]...)...)
		}
		t.Body = body
		out = append(out, t)
	}
	return out
}

// unitTest compiles a template into the appkit.UnitTest surface the
// pipeline consumes.
func (a *App) unitTest(t template) appkit.UnitTest {
	return appkit.UnitTest{Name: t.Name, Run: func(e *concolic.Engine) error {
		s := orm.NewSession(a.mapping, concolic.NewConn(e, a.db))
		in := make([]concolic.Value, len(t.Inputs))
		for i, inp := range t.Inputs {
			in[i] = e.MakeSymbolic(t.Name+"."+inp.Name, concolic.Int(inp.Val))
		}
		if err := a.runOps(e, s, t.Warm, in); err != nil {
			return err
		}
		return s.Transactional(func() error {
			return a.runOps(e, s, t.Body, in)
		})
	}}
}

func (a *App) runOps(e *concolic.Engine, s *orm.Session, ops []op, in []concolic.Value) error {
	for i := 0; i < len(ops); i++ {
		o := ops[i]
		switch o.Kind {
		case opGuard:
			if !e.If(e.Le(in[o.A], concolic.Int(o.Thr))) {
				i += o.Skip
			}
		case opPointRead:
			s.Query(fmt.Sprintf(`SELECT * FROM %s t WHERE t.ID = ?`, o.Table),
				[]concolic.Value{in[o.A]}, "t")
		case opRangeRead:
			s.Query(fmt.Sprintf(`SELECT * FROM %s t WHERE t.OWNER_ID = ?`, o.Table),
				[]concolic.Value{in[o.A]}, "t")
		case opInsertRow:
			id := a.db.NextID(o.Table)
			if _, err := s.Exec(
				fmt.Sprintf(`INSERT INTO %s (ID, HUB_ID, SEQ, NOTE) VALUES (?, ?, ?, ?)`, o.Table),
				[]concolic.Value{concolic.Int(id), in[o.A], concolic.Int(id), concolic.Str("gen")}); err != nil {
				return err
			}
		case opOrderedPair:
			lo, hi := in[o.A], in[o.B]
			if !e.If(e.Lt(lo, hi)) {
				lo, hi = hi, lo
			}
			// Strict lo < hi path condition: a self- or cross-pair
			// crossing cycle then implies lo1<hi1=lo2<hi2=lo1, UNSAT.
			if e.If(e.Lt(lo, hi)) {
				bump := e.Add(lo, concolic.Int(1))
				for _, id := range []concolic.Value{lo, hi} {
					if _, err := s.Exec(
						fmt.Sprintf(`UPDATE %s SET BALANCE = ? WHERE ID = ?`, o.Table),
						[]concolic.Value{bump, id}); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// render writes the template's deterministic manifest form.
func (t template) render(b *strings.Builder) {
	fmt.Fprintf(b, "template %s inputs=[", t.Name)
	for i, in := range t.Inputs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%s=%d", in.Name, in.Val)
	}
	b.WriteString("]\n")
	renderOps(b, "  warm", t.Warm)
	renderOps(b, "  body", t.Body)
}

func renderOps(b *strings.Builder, label string, ops []op) {
	for _, o := range ops {
		switch o.Kind {
		case opGuard:
			fmt.Fprintf(b, "%s guard in%d<=%d skip=%d\n", label, o.A, o.Thr, o.Skip)
		case opPointRead:
			fmt.Fprintf(b, "%s point-read %s id=in%d\n", label, o.Table, o.A)
		case opRangeRead:
			fmt.Fprintf(b, "%s range-read %s owner=in%d\n", label, o.Table, o.A)
		case opInsertRow:
			fmt.Fprintf(b, "%s insert %s hub=in%d\n", label, o.Table, o.A)
		case opOrderedPair:
			fmt.Fprintf(b, "%s ordered-pair %s ids=in%d,in%d\n", label, o.Table, o.A, o.B)
		}
	}
}
