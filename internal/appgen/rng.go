package appgen

// rng is a self-contained splitmix64 generator. The generator's whole
// contract is "same seed ⇒ byte-identical corpus forever", so it cannot
// depend on math/rand's stream (which the Go team reserves the right to
// change between releases, and did in Go 1.20).
type rng struct {
	state uint64
}

func newRNG(seed int64) *rng {
	return &rng{state: uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// pct reports true with probability p percent.
func (r *rng) pct(p int) bool {
	return r.intn(100) < p
}
