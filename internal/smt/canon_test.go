package smt

import (
	"testing"
)

func TestCanonAlphaEquivalence(t *testing.T) {
	// Two copies of the same formula under different instance prefixes
	// must canonicalize to the same key — that is the memoization win.
	mk := func(prefix string) Expr {
		x := NewVar(prefix+"order_id", SortInt)
		p := NewVar(prefix+"res0.row0.p.ID", SortInt)
		r := NewVar(prefix+"rng.lo1", SortInt)
		return And(Ne(x, Int(-1)), Eq(r, p), Le(r, Add(x, Int(3))))
	}
	c1, c2 := Canon(mk("A1.")), Canon(mk("B7!"))
	if c1.Key != c2.Key {
		t.Fatalf("alpha-equivalent formulas got distinct keys:\n%s\n%s", c1.Key, c2.Key)
	}
	if c1.Hash() != c2.Hash() {
		t.Error("equal keys must hash equally")
	}
	if c1.Expr.String() != c1.Key {
		t.Errorf("Key must be the canonical expr's string form")
	}
}

func TestCanonDistinguishesStructure(t *testing.T) {
	x := NewVar("x", SortInt)
	y := NewVar("y", SortInt)
	cases := [][2]Expr{
		// Different operator.
		{Lt(x, y), Le(x, y)},
		// Same shape but one variable repeated vs two distinct ones.
		{Eq(x, x), Eq(x, y)},
		// Different constant *gap* in an order comparison: the uniform
		// shift anchors a component's smallest constant at zero, so a
		// single bound normalizes away, but relative distances between
		// bounds must survive.
		{
			And(Gt(x, Int(0)), Lt(x, Int(1))),
			And(Gt(x, Int(0)), Lt(x, Int(2))),
		},
		// Equality-only formulas whose constant *repetition patterns*
		// differ within one component: with x and y linked by x≠y,
		// x=5 ∧ y=5 is unsatisfiable while x=5 ∧ y=6 is not.
		{
			And(Eq(x, Int(5)), Eq(y, Int(5)), Ne(x, y)),
			And(Eq(x, Int(5)), Eq(y, Int(6)), Ne(x, y)),
		},
		// Different sort of the corresponding variable.
		{Eq(NewVar("a", SortInt), Int(0)), &Cmp{Op: EQ, L: NewVar("a", SortReal), R: Int(0)}},
	}
	for i, c := range cases {
		if Canon(c[0]).Key == Canon(c[1]).Key {
			t.Errorf("case %d: distinct formulas share key %q", i, Canon(c[0]).Key)
		}
	}
}

func TestCanonRenameIsInvertibleBijection(t *testing.T) {
	x := NewVar("A1.x", SortInt)
	y := NewVar("A2.y", SortString)
	arr := NewArray("A1.map3", SortInt).Store(x, true)
	f := And(Ne(y, Str("u")), Read(arr, Add(x, Int(1))))
	c := Canon(f)
	if len(c.Rename) != 3 { // A1.x, A2.y, A1.map3
		t.Fatalf("rename map = %v", c.Rename)
	}
	inv := c.Invert()
	if len(inv) != len(c.Rename) {
		t.Fatalf("rename not injective: %v", c.Rename)
	}
	for orig, canon := range c.Rename {
		if inv[canon] != orig {
			t.Errorf("inverse broken for %s -> %s", orig, canon)
		}
	}
	// Renaming back through the inverse restores the original formula up
	// to commutative reordering: same canonical key, same variables.
	back := Rename(c.Expr, func(n string) string {
		if o, ok := inv[n]; ok {
			return o
		}
		return n
	})
	if Canon(back).Key != c.Key {
		t.Errorf("round trip changed formula:\n%s\n%s", f, back)
	}
	bv, fv := VarSet(back), VarSet(f)
	if len(bv) != len(fv) {
		t.Fatalf("round trip changed variables: %v vs %v", bv, fv)
	}
	for n, s := range fv {
		if bv[n] != s {
			t.Errorf("round trip lost %s:%s", n, s)
		}
	}
}

func TestCanonCommutativeNormalization(t *testing.T) {
	x := NewVar("A1.x", SortInt)
	y := NewVar("A1.y", SortInt)
	a, b := Gt(x, Int(0)), Eq(y, Int(7))

	// Plain operand reordering of a conjunction.
	if Canon(And(a, b)).Key != Canon(And(b, a)).Key {
		t.Error("And(a,b) and And(b,a) should share a key")
	}
	if Canon(Or(a, b)).Key != Canon(Or(b, a)).Key {
		t.Error("Or(a,b) and Or(b,a) should share a key")
	}

	// The mirror-cycle shape: two role-symmetric conjunct groups, listed
	// in opposite role order by the swapped pairing. mk(p, q) stands for
	// the formula the (p=holder, q=waiter) orientation builds.
	mk := func(p, q string) Expr {
		px := NewVar(p+"id", SortInt)
		qx := NewVar(q+"id", SortInt)
		return And(
			Eq(px, qx),
			Gt(px, Int(0)),
			Ne(qx, Int(-1)),
		)
	}
	f1 := And(mk("A1.", "A2."), Lt(NewVar("A1.id", SortInt), Int(100)))
	f2 := And(Lt(NewVar("A2.id", SortInt), Int(100)), mk("A2.", "A1."))
	if Canon(f1).Key != Canon(f2).Key {
		t.Errorf("mirror formulas got distinct keys:\n%s\n%s", Canon(f1).Key, Canon(f2).Key)
	}

	// Sorting must not merge genuinely different formulas.
	if Canon(And(a, b)).Key == Canon(And(a, Negate(b))).Key {
		t.Error("distinct conjunctions share a key")
	}
}

func TestCanonModelTranslation(t *testing.T) {
	// A model for the canonical formula, renamed through the inverse
	// mapping, must satisfy the original formula.
	x := NewVar("A1.qty", SortInt)
	y := NewVar("A2.qty", SortInt)
	f := And(Eq(x, y), Ge(x, Int(5)))
	c := Canon(f)
	inv := c.Invert()

	cm := NewModel()
	for name, sort := range VarSet(c.Expr) {
		if sort != SortInt {
			t.Fatalf("unexpected sort for %s", name)
		}
		cm.Vars[name] = IntValue(5)
	}
	if !Eval(c.Expr, cm).B {
		t.Fatal("canonical model does not satisfy canonical formula")
	}
	om := NewModel()
	for name, v := range cm.Vars {
		om.Vars[inv[name]] = v
	}
	if !Eval(f, om).B {
		t.Fatal("translated model does not satisfy original formula")
	}
}

func TestCanonConstantAbstraction(t *testing.T) {
	x := NewVar("A1.id", SortInt)
	y := NewVar("A1.code", SortString)
	mk := func(n int64, s string) Expr {
		return And(Eq(x, Int(n)), Ne(y, Str(s)), Read(NewArray("A1.rows", SortInt), x))
	}
	c1, c2 := Canon(mk(42, "acct")), Canon(mk(7, "sku"))
	if c1.Key != c2.Key {
		t.Fatalf("pure-equality formulas differing only in constants got distinct keys:\n%s\n%s", c1.Key, c2.Key)
	}
	if len(c1.ints) == 0 || len(c1.strs) == 0 {
		t.Fatal("constant maps should be populated for abstracted components")
	}

	// Any order comparison (or arithmetic, or Real sort) taints the
	// component it touches: there the concrete magnitudes carry meaning.
	for i, f := range []Expr{
		And(Eq(x, Int(42)), Lt(x, Int(100))),
		Eq(x, Add(x, Int(0))),
		&Cmp{Op: EQ, L: NewVar("r", SortReal), R: Int(0)},
	} {
		if c := Canon(f); len(c.ints) != 0 || len(c.strs) != 0 {
			t.Errorf("case %d: no constant should be abstracted in a tainted formula", i)
		}
	}

	// Taint is per component: an order comparison on one variable leaves
	// an unrelated pure-equality component abstractable, even when both
	// mention the same constant value.
	g := func(n int64) Expr {
		return And(Lt(NewVar("qty", SortInt), Int(5)), Eq(x, Int(n)))
	}
	if Canon(g(5)).Key != Canon(g(9)).Key {
		t.Error("constants of an untainted component should abstract despite taint elsewhere")
	}
	// Tainted-component constants keep their relative magnitudes: with the
	// smallest bound already at zero the shift is the identity, so the
	// other bound's value must show in the key.
	h := func(n int64) Expr {
		qty := NewVar("qty", SortInt)
		return And(Gt(qty, Int(0)), Lt(qty, Int(n)), Eq(x, Int(5)))
	}
	if Canon(h(5)).Key == Canon(h(6)).Key {
		t.Error("tainted-component constant gaps must stay observable")
	}
}

func TestCanonShiftNormalization(t *testing.T) {
	// Order comparisons taint a component, but when every atom is
	// offset-invariant the whole component can be shifted uniformly:
	// candidates whose row keys differ by a constant offset share a key.
	mk := func(base int64) Expr {
		id := NewVar("A1.id", SortInt)
		lo := NewVar("A1.rng.lo", SortInt)
		return And(
			Ge(id, Int(base)),
			Le(id, Int(base+4)),
			Eq(lo, Int(base)),
			Lt(lo, Add(id, Int(1))),
			Read(NewArray("A1.rows", SortInt), id),
		)
	}
	c10, c73 := Canon(mk(10)), Canon(mk(73))
	if c10.Key != c73.Key {
		t.Fatalf("offset-equivalent formulas got distinct keys:\n%s\n%s", c10.Key, c73.Key)
	}
	if len(c10.shifted) == 0 {
		t.Fatal("expected a shift-normalized component")
	}

	// Shapes that are not offset-invariant block the shift.
	x := NewVar("x", SortInt)
	y := NewVar("y", SortInt)
	for i, pair := range [][2]Expr{
		{Lt(Mul(x, Int(2)), Int(10)), Lt(Mul(x, Int(2)), Int(14))},
		{Lt(Sub(x, y), Int(3)), Lt(Sub(x, y), Int(8))},
	} {
		if Canon(pair[0]).Key == Canon(pair[1]).Key {
			t.Errorf("case %d: non-offset-invariant formulas share a key", i)
		}
	}
}

func TestCanonShiftModelTranslation(t *testing.T) {
	// A model found for the shift-normalized formula must translate back
	// (values moved by +δ) to a model of the original.
	id := NewVar("A1.id", SortInt)
	f := And(
		Ge(id, Int(100)),
		Lt(id, Int(105)),
		Read(NewArray("A1.rows", SortInt).Store(id, true), Add(id, Int(0))),
	)
	c := Canon(f)
	if len(c.shifted) == 0 {
		t.Fatalf("expected shift normalization to apply: %s", c.Key)
	}

	cid := c.Rename["A1.id"]
	cm := NewModel()
	cm.Vars[cid] = IntValue(2) // satisfies 0 <= id' < 5 in the shifted space
	cm.Arrays[c.Rename["A1.rows"]] = map[string]bool{}
	if !Eval(c.Expr, cm).B {
		t.Fatalf("canonical model does not satisfy canonical formula %s", c.Key)
	}
	om := TranslateModel(cm, c)
	if !Eval(f, om).B {
		t.Fatalf("translated model does not satisfy original formula: %s", om)
	}
	if om.Vars["A1.id"].I != 102 {
		t.Errorf("shifted value not translated back: %s", om)
	}

	// Array entry keys in a shifted component move with the variables.
	cm2 := NewModel()
	cm2.Vars[cid] = IntValue(3)
	cm2.Arrays[c.Rename["A1.rows"]] = map[string]bool{IntValue(3).String(): true}
	om2 := TranslateModel(cm2, c)
	if !om2.Arrays["A1.rows"][IntValue(103).String()] {
		t.Errorf("array entry key not shifted back: %v", om2.Arrays)
	}
}

func TestCanonTranslateModelConstants(t *testing.T) {
	x := NewVar("A1.id", SortInt)
	y := NewVar("A2.id", SortInt)
	s := NewVar("A1.code", SortString)
	f := And(
		Eq(x, Int(42)),
		Ne(y, x),
		Eq(s, Str("acct")),
		Read(NewArray("A1.rows", SortInt), x),
	)
	c := Canon(f)
	if len(c.ints) == 0 {
		t.Fatal("expected constant abstraction to apply")
	}
	canon42 := c.ints[c.abs[c.Rename["A1.id"]]][42]
	canonAcct := c.strs[c.abs[c.Rename["A1.code"]]]["acct"]
	if canon42 == 0 || canonAcct == "" {
		t.Fatalf("constants not mapped in their components: %v %v", c.ints, c.strs)
	}

	// A satisfying model for the canonical formula: x' bound to canonical
	// 42, y' to a value outside the constant map (exercising fresh-value
	// allocation on the way back), s' to canonical "acct", and the array
	// holding x's value.
	cm := NewModel()
	cm.Vars[c.Rename["A1.id"]] = IntValue(canon42)
	cm.Vars[c.Rename["A2.id"]] = IntValue(canon42 + 500)
	cm.Vars[c.Rename["A1.code"]] = StrValue(canonAcct)
	cm.Arrays[c.Rename["A1.rows"]] = map[string]bool{IntValue(canon42).String(): true}
	if !Eval(c.Expr, cm).B {
		t.Fatal("canonical model does not satisfy canonical formula")
	}

	om := TranslateModel(cm, c)
	if !Eval(f, om).B {
		t.Fatalf("translated model does not satisfy original formula: %s", om)
	}
	if om.Vars["A1.id"].I != 42 || om.Vars["A1.code"].Str != "acct" {
		t.Errorf("mapped constants not restored: %s", om)
	}
	if om.Vars["A2.id"].I == 42 {
		t.Error("fresh value collided with an original constant")
	}
	if !om.Arrays["A1.rows"][IntValue(42).String()] {
		t.Errorf("array entry key not translated: %v", om.Arrays)
	}
	if om2 := TranslateModel(cm, c); om.String() != om2.String() {
		t.Error("translation is not deterministic")
	}
}

func TestCanonDeterministicAcrossCalls(t *testing.T) {
	x := NewVar("w", SortInt)
	f := Or(Eq(x, Int(1)), And(Ne(x, Int(2)), Lt(x, NewVar("z", SortInt))))
	k1 := Canon(f).Key
	for i := 0; i < 50; i++ {
		if k := Canon(f).Key; k != k1 {
			t.Fatalf("nondeterministic key on iteration %d:\n%s\n%s", i, k1, k)
		}
	}
}
