package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Value is a concrete value of one of the four sorts.
type Value struct {
	S   Sort
	B   bool
	I   int64
	R   *big.Rat
	Str string
}

// BoolValue returns a Bool-sorted value.
func BoolValue(b bool) Value { return Value{S: SortBool, B: b} }

// IntValue returns an Int-sorted value.
func IntValue(i int64) Value { return Value{S: SortInt, I: i} }

// RealValue returns a Real-sorted value (r is copied).
func RealValue(r *big.Rat) Value { return Value{S: SortReal, R: new(big.Rat).Set(r)} }

// StrValue returns a String-sorted value.
func StrValue(s string) Value { return Value{S: SortString, Str: s} }

func (v Value) String() string {
	switch v.S {
	case SortBool:
		return fmt.Sprintf("%v", v.B)
	case SortInt:
		return fmt.Sprintf("%d", v.I)
	case SortReal:
		return v.R.RatString()
	case SortString:
		return fmt.Sprintf("%q", v.Str)
	}
	return "<invalid>"
}

// Rat returns the numeric value as an exact rational. It panics for
// non-numeric values.
func (v Value) Rat() *big.Rat {
	switch v.S {
	case SortInt:
		return new(big.Rat).SetInt64(v.I)
	case SortReal:
		return new(big.Rat).Set(v.R)
	}
	panic("smt: Rat() on non-numeric value")
}

// Equal reports whether two values are equal. Int and Real values compare
// numerically across sorts.
func (v Value) Equal(o Value) bool {
	if (v.S == SortInt || v.S == SortReal) && (o.S == SortInt || o.S == SortReal) {
		return v.Rat().Cmp(o.Rat()) == 0
	}
	if v.S != o.S {
		return false
	}
	switch v.S {
	case SortBool:
		return v.B == o.B
	case SortString:
		return v.Str == o.Str
	}
	return false
}

// Model maps variable names to concrete values and base arrays to their
// explicit entries. A model is the satisfying assignment an SMT solver
// returns on SAT; WeSEER embeds it in deadlock reports so developers can
// reproduce the deadlock (API inputs and initial database state).
type Model struct {
	Vars map[string]Value
	// Arrays maps a root array ID to its interpretation: explicit entries
	// keyed by the string form of the key value; absent keys are false.
	Arrays map[string]map[string]bool
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{Vars: map[string]Value{}, Arrays: map[string]map[string]bool{}}
}

// Lookup returns the value bound to name. Unbound variables receive a sort
// default (0, 0/1, "", false): any completion of a satisfying partial
// assignment for variables the formula does not constrain.
func (m *Model) Lookup(name string, s Sort) Value {
	if m != nil {
		if v, ok := m.Vars[name]; ok {
			return v
		}
	}
	switch s {
	case SortBool:
		return BoolValue(false)
	case SortInt:
		return IntValue(0)
	case SortReal:
		return RealValue(new(big.Rat))
	case SortString:
		return StrValue("")
	}
	panic("smt: unknown sort")
}

func (m *Model) String() string {
	if m == nil {
		return "<nil model>"
	}
	names := make([]string, 0, len(m.Vars))
	for n := range m.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", n, m.Vars[n])
	}
	return b.String()
}

// Eval evaluates e under model m. Unbound variables take sort defaults,
// and root-array reads of unlisted keys evaluate to false.
func Eval(e Expr, m *Model) Value {
	switch t := e.(type) {
	case BoolConst:
		return BoolValue(t.B)
	case IntConst:
		return IntValue(t.V)
	case RealConst:
		return RealValue(t.V)
	case StrConst:
		return StrValue(t.S)
	case Var:
		return m.Lookup(t.Name, t.S)
	case *Arith:
		l := Eval(t.L, m)
		if t.Op == OpNeg {
			r := l.Rat()
			r.Neg(r)
			return numValue(t.S, r)
		}
		r := Eval(t.R, m)
		res := new(big.Rat)
		switch t.Op {
		case OpAdd:
			res.Add(l.Rat(), r.Rat())
		case OpSub:
			res.Sub(l.Rat(), r.Rat())
		case OpMul:
			res.Mul(l.Rat(), r.Rat())
		default:
			panic("smt: unknown arith op")
		}
		return numValue(t.S, res)
	case *Cmp:
		l, r := Eval(t.L, m), Eval(t.R, m)
		return BoolValue(evalCmp(t.Op, l, r))
	case *NAry:
		for _, x := range t.Xs {
			if Eval(x, m).B != t.Conj {
				return BoolValue(!t.Conj)
			}
		}
		return BoolValue(t.Conj)
	case Not:
		return BoolValue(!Eval(t.X, m).B)
	case *Select:
		key := Eval(t.Key, m)
		return BoolValue(evalSelect(t.Arr, key, m))
	}
	panic(fmt.Sprintf("smt: Eval of unknown node %T", e))
}

func numValue(s Sort, r *big.Rat) Value {
	if s == SortInt {
		if !r.IsInt() {
			return Value{S: SortReal, R: r}
		}
		return IntValue(r.Num().Int64())
	}
	return Value{S: SortReal, R: r}
}

func evalCmp(op CmpOp, l, r Value) bool {
	if l.S == SortString {
		switch op {
		case EQ:
			return l.Str == r.Str
		case NE:
			return l.Str != r.Str
		}
		panic("smt: bad string cmp")
	}
	if l.S == SortBool {
		switch op {
		case EQ:
			return l.B == r.B
		case NE:
			return l.B != r.B
		}
		panic("smt: bad bool cmp")
	}
	c := l.Rat().Cmp(r.Rat())
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	panic("smt: unknown cmp op")
}

func evalSelect(a *Array, key Value, m *Model) bool {
	for cur := a; cur != nil; cur = cur.Parent {
		if cur.Parent == nil {
			if m == nil || m.Arrays == nil {
				return false
			}
			ent, ok := m.Arrays[cur.ID]
			if !ok {
				return false
			}
			return ent[key.String()]
		}
		if Eval(cur.StoreKey, m).Equal(key) {
			return cur.StoreVal
		}
	}
	return false
}
