package smt

// Formula canonicalization for solver-call memoization. Two conflict
// formulas produced for different cycles (or different transaction-
// instance pairings) are frequently identical up to variable naming:
// the same statement templates unify against the same row variables,
// only the instance prefixes ("A1.", "A2.") and fresh range counters
// differ. Canon alpha-renames a formula into a canonical namespace so
// such structurally identical queries share one cache entry, and keeps
// the renaming so a cached model can be translated back into any
// candidate's original variables.
//
// Two further equivalences widen the cache:
//
//   - And/Or are commutative, and mirror-symmetric deadlock cycles (the
//     same pairing with the two transaction roles swapped) emit the same
//     conjuncts in a different order. Canon normalizes connective
//     operand order — first by each operand's role-independent local
//     shape, then by its globally renamed form, iterated to a fixpoint.
//
//   - Satisfiability is invariant under injective remapping of the Int
//     and String constants a formula only ever compares for equality:
//     equality constraints distinguish values by identity alone, and
//     both domains are unbounded. Canon partitions the formula's
//     variables and array roots into components — two share a component
//     when some atom mentions both — and taints every component touched
//     by an order comparison, by arithmetic, or by the dense Real sort,
//     where concrete magnitudes carry meaning. Constant occurrences in
//     atoms of untainted components are folded into the canonical
//     namespace, so candidates differing only in concrete row keys
//     share one entry even when an unrelated part of the formula does
//     arithmetic. Occurrences of the same constant value in different
//     components are independent (no atom relates them), so each
//     component gets its own constant map; within a component the
//     remapping is injective, which preserves the equality pattern the
//     component's atoms observe. The maps are kept so a cached model's
//     values can be mapped back through the inverses (with values
//     outside a component's map sent to fresh values that collide with
//     no original constant of any abstracted component).
//
//   - Tainted components still admit a weaker normalization: v ↦ v+δ is
//     an automorphism of the integers under order, equality, and
//     constant offsets, so when every comparison in a component has the
//     shape (var ± consts | const) OP (var ± consts | const) — one
//     positively-occurring variable or a lone constant per side, no
//     multiplication, negation, or variable differences — shifting
//     every directly-compared constant by a fixed δ preserves
//     satisfiability. Canon shifts each such component so its smallest
//     directly-compared constant becomes zero, merging candidates whose
//     row keys differ by a uniform offset (the common case: the same
//     statement pair hitting different concrete rows under range
//     locks). The δ per component is kept so a cached model's values
//     can be shifted back.
//
// Every step is a pure function of the expression, so Canon is
// deterministic and equivalent inputs converge to one key.

import (
	"hash/fnv"
	"math/big"
	"sort"
	"strconv"
	"sync"
)

// CanonResult is the outcome of Canon.
type CanonResult struct {
	// Expr is the canonicalized copy of the input: every variable and
	// array root renamed to "c<N>:<sort>" in first-occurrence order of a
	// left-to-right depth-first traversal, And/Or operands sorted, and
	// constant occurrences in untainted components replaced by canonical
	// ones. Expr is equivalent to the input up to those transformations:
	// alpha-renaming, commutative reordering, and per-component injective
	// constant remapping.
	Expr Expr
	// Key is Expr's string form — a stable identity usable as a memo
	// key. Equivalent inputs produce equal keys; inputs differing in
	// structure or in any corresponding sort produce distinct keys.
	Key string
	// Rename maps each original variable name and array root ID to its
	// canonical name. The mapping is a bijection on the names occurring
	// in the input, so it can be inverted to translate a model found for
	// Expr back into the input's namespace.
	Rename map[string]string

	// abs maps each canonical variable/array name whose component was
	// abstracted to its component tag; ints and strs hold the
	// per-component original→canonical constant maps under those tags.
	// Canonical constants are globally unique across components, so the
	// per-tag inverses are well-defined. shifted maps each canonical
	// name in a shift-normalized (tainted but offset-invariant)
	// component to that component's δ. Only TranslateModel consumes
	// these.
	abs     map[string]string
	ints    map[string]map[int64]int64
	strs    map[string]map[string]string
	shifted map[string]int64
}

// Hash returns a 64-bit FNV-1a hash of the canonical key, for compact
// fingerprints in stats and logs. Key equality remains the authoritative
// identity; Hash is advisory.
func (c CanonResult) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.Key))
	return h.Sum64()
}

// Invert returns the canonical-to-original name mapping.
func (c CanonResult) Invert() map[string]string {
	inv := make(map[string]string, len(c.Rename))
	for orig, canon := range c.Rename {
		inv[canon] = orig
	}
	return inv
}

// localKeyMemo caches localKey results process-wide, keyed on the Expr
// interface value. The local key of a node is a pure function of its
// structure, and the analyzer shares subtree pointers heavily (path
// conditions repeat across cycles; edge conditions are cached per edge),
// so identical pointers recur across Canon calls and the per-operand
// canonicalization pass becomes a map hit.
var localKeyMemo sync.Map // Expr → string

// localKey canonicalizes x in isolation (including its own component
// analysis) and returns its string form. The key is invariant under any
// renaming of an enclosing formula.
func localKey(x Expr) string {
	if k, ok := localKeyMemo.Load(x); ok {
		return k.(string)
	}
	m := newCanonMaps(analyzeComponents(x))
	canonAssign(x, m)
	k := applyMaps(x, m).String()
	localKeyMemo.Store(x, k)
	return k
}

// Canon canonicalizes e as described in the package comment above.
func Canon(e Expr) CanonResult {
	// Pass 1: order And/Or operands by their local shape — each operand
	// canonicalized in isolation. The local key is invariant under any
	// renaming of the whole formula, so two equivalent inputs sort their
	// operands identically even though their global first-occurrence
	// numberings disagree.
	e = acSort(e, localKey)

	// The component partition is a function of the formula's atoms, so it
	// is unaffected by the operand reordering below — compute it once.
	comp := analyzeComponents(e)

	// Pass 2..n: refine ties with the global numbering. Operands that
	// are locally equivalent (e.g. the same path condition instantiated
	// by each of the two transaction roles) get distinct keys once the
	// whole-formula assignment is applied, and that assignment is
	// equivariant under renamings of the input, so equivalent inputs
	// refine identically. Sort and renumber until a fixpoint (or a small
	// cap — Canon stays a pure function either way).
	for i := 0; i < 4; i++ {
		m := newCanonMaps(comp)
		canonAssign(e, m)
		sorted := acSort(e, func(x Expr) string { return applyMaps(x, m).String() })
		if sorted == e {
			break
		}
		e = sorted
	}

	m := newCanonMaps(comp)
	canonAssign(e, m)
	canon := applyMaps(e, m)
	return CanonResult{Expr: canon, Key: canon.String(), Rename: m.vars,
		abs: m.abs, ints: m.ints, strs: m.strs, shifted: m.shifted}
}

// ---------------------------------------------------------------------------
// Symbol components

func varSym(name string) string { return "v:" + name }

// compInfo aggregates what a component's atoms observe about its values.
type compInfo struct {
	// tainted: some atom observes more than identity (order comparison,
	// arithmetic, Real sort) — rules out injective constant remapping.
	tainted bool
	// noShift: some atom's shape is not offset-invariant (multiplication,
	// negation, variable differences, several variables on one side) —
	// rules out the uniform-shift normalization too.
	noShift bool
	// hasAbs/minAbs track the directly-compared Int constants, whose
	// minimum anchors the shift.
	hasAbs bool
	minAbs int64
}

func (i *compInfo) merge(o *compInfo) {
	i.tainted = i.tainted || o.tainted
	i.noShift = i.noShift || o.noShift
	if o.hasAbs && (!i.hasAbs || o.minAbs < i.minAbs) {
		i.minAbs = o.minAbs
		i.hasAbs = true
	}
}

// components is a union-find over variable and array-root symbols. Two
// symbols share a component when some atom mentions both.
type components struct {
	parent map[string]string
	info   map[string]*compInfo // keyed by root; nil means no observations
}

func (c *components) find(x string) string {
	p, ok := c.parent[x]
	if !ok || p == x {
		c.parent[x] = x
		return x
	}
	r := c.find(p)
	c.parent[x] = r
	return r
}

func (c *components) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	c.parent[ra] = rb
	if ia := c.info[ra]; ia != nil {
		delete(c.info, ra)
		if ib := c.info[rb]; ib != nil {
			ib.merge(ia)
		} else {
			c.info[rb] = ia
		}
	}
}

// link merges all syms into one component and folds the atom's
// observations into it.
func (c *components) link(syms []string, facts compInfo) {
	if len(syms) == 0 {
		return
	}
	for _, s := range syms[1:] {
		c.union(syms[0], s)
	}
	root := c.find(syms[0])
	if i := c.info[root]; i != nil {
		i.merge(&facts)
	} else {
		f := facts
		c.info[root] = &f
	}
}

func (c *components) tainted(root string) bool {
	i := c.info[root]
	return i != nil && i.tainted
}

// delta returns the shift for a tainted but offset-invariant component.
func (c *components) delta(root string) (int64, bool) {
	i := c.info[root]
	if i == nil || !i.tainted || i.noShift || !i.hasAbs || i.minAbs == 0 {
		return 0, false
	}
	return i.minAbs, true
}

// analyzeComponents partitions e's variables by walking its atoms.
func analyzeComponents(e Expr) *components {
	c := &components{parent: map[string]string{}, info: map[string]*compInfo{}}
	walkAtoms(e, c)
	return c
}

func walkAtoms(e Expr, c *components) {
	switch t := e.(type) {
	case BoolConst, Var:
		// A Boolean atom relates no Int/String variables.
	case *NAry:
		for _, x := range t.Xs {
			walkAtoms(x, c)
		}
	case Not:
		walkAtoms(t.X, c)
	case *Cmp:
		if t.L.Sort() == SortBool {
			// (Dis)equality over formulas observes truth values only;
			// each side's own atoms constrain their own components.
			walkAtoms(t.L, c)
			walkAtoms(t.R, c)
			return
		}
		syms, bad := termSyms(t.L, nil)
		syms, bad2 := termSyms(t.R, syms)
		facts := compInfo{tainted: bad || bad2 || (t.Op != EQ && t.Op != NE)}
		sideFacts(t.L, &facts)
		sideFacts(t.R, &facts)
		c.link(syms, facts)
	case *Select:
		syms := []string{varSym(t.Arr.ID)}
		bad := t.Arr.KeySort == SortReal
		// Real-keyed arrays also block the shift: their model entry keys
		// are stored in string form that shiftKeyString cannot move.
		facts := compInfo{noShift: bad}
		for cur := t.Arr; cur != nil; cur = cur.Parent {
			if cur.StoreKey != nil {
				var b bool
				syms, b = termSyms(cur.StoreKey, syms)
				bad = bad || b
				sideFacts(cur.StoreKey, &facts)
			}
		}
		syms, b := termSyms(t.Key, syms)
		sideFacts(t.Key, &facts)
		facts.tainted = facts.tainted || bad || b
		c.link(syms, facts)
	default:
		panic("smt: walkAtoms of unknown node")
	}
}

// sideFacts folds one comparison side (or array key) into the atom's
// facts: a lone Int constant is directly compared (and so shiftable by
// δ); a single positively-occurring variable plus constant offsets is
// offset-invariant; anything else rules the component out of shifting.
func sideFacts(e Expr, f *compInfo) {
	if c, ok := e.(IntConst); ok {
		if !f.hasAbs || c.V < f.minAbs {
			f.minAbs = c.V
		}
		f.hasAbs = true
		return
	}
	if nv, ok := sideShape(e); !ok || nv > 1 {
		f.noShift = true
	}
}

// sideShape reports the number of variable occurrences in a term and
// whether every variable occurs with coefficient +1 (only Add, and Sub
// with a constant subtrahend). Such terms change by exactly δ under the
// shift v ↦ v+δ (or stay fixed when variable-free as a lone constant —
// handled by the caller). Real variables qualify: v ↦ v+δ with integral
// δ is an automorphism of the reals under order, equality, and constant
// offsets just as of the integers. Real *constants* do not — a
// fractional value cannot be folded into the integral δ.
func sideShape(e Expr) (nvars int, ok bool) {
	switch t := e.(type) {
	case IntConst, StrConst:
		return 0, true
	case RealConst:
		return 0, false
	case Var:
		return 1, true
	case *Arith:
		switch t.Op {
		case OpAdd:
			ln, lok := sideShape(t.L)
			rn, rok := sideShape(t.R)
			return ln + rn, lok && rok && ln+rn == 1
		case OpSub:
			ln, lok := sideShape(t.L)
			rn, rok := sideShape(t.R)
			return ln + rn, lok && rok && ln == 1 && rn == 0
		default: // Mul, Neg: not offset-invariant
			return 0, false
		}
	default:
		return 0, false
	}
}

// termSyms appends the variable symbols occurring in the Int/String/Real
// term e to syms and reports whether the term forces its component
// concrete (arithmetic or Real sort). Constants contribute no symbol:
// occurrences of the same value in different atoms are related only
// through the atoms' variables.
func termSyms(e Expr, syms []string) ([]string, bool) {
	switch t := e.(type) {
	case IntConst, StrConst:
		return syms, false
	case RealConst:
		return syms, true
	case Var:
		return append(syms, varSym(t.Name)), t.S == SortReal
	case *Arith:
		syms, _ = termSyms(t.L, syms)
		if t.R != nil {
			syms, _ = termSyms(t.R, syms)
		}
		return syms, true
	default:
		panic("smt: termSyms of unknown node")
	}
}

// ---------------------------------------------------------------------------
// Canonical assignment

// canonMaps accumulates the canonical assignment for one expression:
// variable/array names always, constants per component in the atoms of
// untainted components.
type canonMaps struct {
	vars    map[string]string
	abs     map[string]string          // canonical name -> component tag
	ints    map[string]map[int64]int64 // tag -> original -> canonical
	strs    map[string]map[string]string
	shifted map[string]int64 // canonical name -> component δ
	nextInt int64
	nextStr int
	comp    *components
}

func newCanonMaps(comp *components) *canonMaps {
	return &canonMaps{vars: map[string]string{}, abs: map[string]string{},
		shifted: map[string]int64{}, comp: comp}
}

// atomTag returns the component tag governing an atom's constants: the
// component root of the atom's first variable, or "" (keep constants
// concrete) when the atom has no variable or its component is tainted.
func (m *canonMaps) atomTag(atom Expr) string {
	sym := firstVarSym(atom)
	if sym == "" {
		return ""
	}
	root := m.comp.find(sym)
	if m.comp.tainted(root) {
		return ""
	}
	return root
}

// atomShift returns the δ to subtract from an atom's directly-compared
// constants when its component is shift-normalized.
func (m *canonMaps) atomShift(atom Expr) (int64, bool) {
	sym := firstVarSym(atom)
	if sym == "" {
		return 0, false
	}
	return m.comp.delta(m.comp.find(sym))
}

func firstVarSym(e Expr) string {
	switch t := e.(type) {
	case Var:
		return varSym(t.Name)
	case *Cmp:
		if s := firstVarSym(t.L); s != "" {
			return s
		}
		return firstVarSym(t.R)
	case *Arith:
		if s := firstVarSym(t.L); s != "" {
			return s
		}
		if t.R != nil {
			return firstVarSym(t.R)
		}
		return ""
	case *Select:
		return varSym(t.Arr.ID)
	default:
		return ""
	}
}

// canonAssign walks the formula depth-first, left to right, assigning
// canonical names (and, in untainted components, canonical constants) on
// first occurrence. The walk mirrors applyMaps's node coverage.
func canonAssign(e Expr, m *canonMaps) {
	switch t := e.(type) {
	case BoolConst:
	case Var:
		// A Boolean variable used directly as an atom.
		m.assignVar(t.Name, t.S)
	case *NAry:
		for _, x := range t.Xs {
			canonAssign(x, m)
		}
	case Not:
		canonAssign(t.X, m)
	case *Cmp:
		if t.L.Sort() == SortBool {
			canonAssign(t.L, m)
			canonAssign(t.R, m)
			return
		}
		tag := m.atomTag(t)
		m.assignTerm(t.L, tag)
		m.assignTerm(t.R, tag)
	case *Select:
		tag := m.atomTag(t)
		m.assignVar(t.Arr.ID, t.Arr.KeySort)
		// Store keys newest-version-first, matching Array.String().
		for cur := t.Arr; cur != nil; cur = cur.Parent {
			if cur.StoreKey != nil {
				m.assignTerm(cur.StoreKey, tag)
			}
		}
		m.assignTerm(t.Key, tag)
	default:
		panic("smt: Canon of unknown node")
	}
}

// assignTerm assigns the variables and (under a non-empty tag) the
// constants of one atom's term side.
func (m *canonMaps) assignTerm(e Expr, tag string) {
	switch t := e.(type) {
	case BoolConst, RealConst:
	case IntConst:
		if tag == "" {
			return
		}
		mm := m.ints[tag]
		if mm == nil {
			mm = map[int64]int64{}
			if m.ints == nil {
				m.ints = map[string]map[int64]int64{}
			}
			m.ints[tag] = mm
		}
		if _, ok := mm[t.V]; !ok {
			m.nextInt++
			mm[t.V] = m.nextInt
		}
	case StrConst:
		if tag == "" {
			return
		}
		mm := m.strs[tag]
		if mm == nil {
			mm = map[string]string{}
			if m.strs == nil {
				m.strs = map[string]map[string]string{}
			}
			m.strs[tag] = mm
		}
		if _, ok := mm[t.S]; !ok {
			mm[t.S] = "k" + itoa(m.nextStr)
			m.nextStr++
		}
	case Var:
		m.assignVar(t.Name, t.S)
	case *Arith:
		m.assignTerm(t.L, tag)
		if t.R != nil {
			m.assignTerm(t.R, tag)
		}
	default:
		panic("smt: assignTerm of unknown node")
	}
}

// assignVar gives name a canonical name on first occurrence and records
// its component tag when abstracted (model translation needs that).
func (m *canonMaps) assignVar(name string, s Sort) {
	if _, ok := m.vars[name]; ok {
		return
	}
	// Embedding the index first keeps names short; the sort suffix makes
	// sort mismatches visible in the key.
	canon := "c" + itoa(len(m.vars)) + ":" + s.String()
	m.vars[name] = canon
	if root := m.comp.find(varSym(name)); !m.comp.tainted(root) {
		m.abs[canon] = root
	} else if d, ok := m.comp.delta(root); ok {
		m.shifted[canon] = d
	}
}

// applyMaps rewrites e per the assignment: abstracted constant
// occurrences replaced, then variables and array roots renamed.
// Unassigned names and constants pass through unchanged.
func applyMaps(e Expr, m *canonMaps) Expr {
	if len(m.ints)+len(m.strs)+len(m.shifted) > 0 {
		e = rewriteConsts(e, m, "")
	}
	return Rename(e, func(n string) string {
		if c, ok := m.vars[n]; ok {
			return c
		}
		return n
	})
}

// rewriteConsts replaces constant occurrences per their atom's component
// map. tag is "" at the formula level and set on entering an atom.
func rewriteConsts(e Expr, m *canonMaps, tag string) Expr {
	switch t := e.(type) {
	case BoolConst, RealConst, Var:
		return e
	case IntConst:
		if c, ok := m.ints[tag][t.V]; ok {
			return IntConst{V: c}
		}
		return e
	case StrConst:
		if c, ok := m.strs[tag][t.S]; ok {
			return StrConst{S: c}
		}
		return e
	case *Arith:
		var r Expr
		if t.R != nil {
			r = rewriteConsts(t.R, m, tag)
		}
		return &Arith{Op: t.Op, L: rewriteConsts(t.L, m, tag), R: r, S: t.S}
	case *Cmp:
		if t.L.Sort() != SortBool {
			tag = m.atomTag(t)
			if tag == "" {
				if d, ok := m.atomShift(t); ok {
					return &Cmp{Op: t.Op, L: shiftSide(t.L, d), R: shiftSide(t.R, d)}
				}
			}
		}
		return &Cmp{Op: t.Op, L: rewriteConsts(t.L, m, tag), R: rewriteConsts(t.R, m, tag)}
	case *NAry:
		xs := make([]Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = rewriteConsts(x, m, tag)
		}
		return &NAry{Conj: t.Conj, Xs: xs}
	case Not:
		return Not{X: rewriteConsts(t.X, m, tag)}
	case *Select:
		tag = m.atomTag(t)
		if tag == "" {
			if d, ok := m.atomShift(t); ok {
				return &Select{Arr: shiftArray(t.Arr, d), Key: shiftSide(t.Key, d)}
			}
		}
		return &Select{Arr: rewriteConstsArray(t.Arr, m, tag), Key: rewriteConsts(t.Key, m, tag)}
	default:
		panic("smt: rewriteConsts of unknown node")
	}
}

func rewriteConstsArray(a *Array, m *canonMaps, tag string) *Array {
	if a == nil {
		return nil
	}
	r := &Array{
		ID:       a.ID,
		KeySort:  a.KeySort,
		Version:  a.Version,
		Parent:   rewriteConstsArray(a.Parent, m, tag),
		StoreVal: a.StoreVal,
	}
	if a.StoreKey != nil {
		r.StoreKey = rewriteConsts(a.StoreKey, m, tag)
	}
	return r
}

// shiftSide applies a shift-normalized component's δ to one atom side: a
// lone Int constant is directly compared and moves by −δ; every other
// side shape allowed by sideFacts (a variable plus constant offsets)
// tracks its variable, whose model value moves instead, so the side is
// kept verbatim — in particular the relative constants inside Arith stay
// concrete.
func shiftSide(e Expr, d int64) Expr {
	if c, ok := e.(IntConst); ok {
		return IntConst{V: c.V - d}
	}
	return e
}

func shiftArray(a *Array, d int64) *Array {
	if a == nil {
		return nil
	}
	r := &Array{
		ID:       a.ID,
		KeySort:  a.KeySort,
		Version:  a.Version,
		Parent:   shiftArray(a.Parent, d),
		StoreVal: a.StoreVal,
	}
	if a.StoreKey != nil {
		r.StoreKey = shiftSide(a.StoreKey, d)
	}
	return r
}

// acSort rebuilds e with every And/Or operand list stably sorted by key.
// It returns e itself (interface-equal) when nothing moved, which the
// fixpoint loop in Canon relies on.
func acSort(e Expr, key func(Expr) string) Expr {
	switch t := e.(type) {
	case *NAry:
		xs := make([]Expr, len(t.Xs))
		changed := false
		for i, x := range t.Xs {
			xs[i] = acSort(x, key)
			if xs[i] != x {
				changed = true
			}
		}
		keys := make([]string, len(xs))
		for i, x := range xs {
			keys[i] = key(x)
		}
		if !sort.StringsAreSorted(keys) {
			changed = true
			idx := make([]int, len(xs))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
			sorted := make([]Expr, len(xs))
			for i, j := range idx {
				sorted[i] = xs[j]
			}
			xs = sorted
		}
		if !changed {
			return t
		}
		return &NAry{Conj: t.Conj, Xs: xs}
	case Not:
		if x := acSort(t.X, key); x != t.X {
			return Not{X: x}
		}
		return t
	case *Cmp:
		// Booleans admit =/!= over connectives, so recurse; term-level
		// nodes (Arith, Select keys) cannot contain And/Or.
		l, r := acSort(t.L, key), acSort(t.R, key)
		if l != t.L || r != t.R {
			return &Cmp{Op: t.Op, L: l, R: r}
		}
		return t
	default:
		return e
	}
}

// ---------------------------------------------------------------------------
// Model translation

// TranslateModel maps a model for c.Expr back into the namespace of the
// expression Canon was called on: variable and array names go through
// the inverse renaming, and values of variables in abstracted
// components go through their component's inverse constant map. Model
// values outside the component's map are sent to fresh values that
// collide with no original constant of any abstracted component and
// with no other translated value, preserving the model's equality
// pattern, which is all an abstracted component can observe. Values of
// variables in tainted components pass through unchanged — their
// constants were never remapped. The result satisfies the original
// expression whenever m satisfies c.Expr.
func TranslateModel(m *Model, c CanonResult) *Model {
	if m == nil {
		return nil
	}
	nameInv := c.Invert()
	back := func(n string) string {
		if o, ok := nameInv[n]; ok {
			return o
		}
		return n
	}

	// Per-component inverse constant maps plus deterministic fresh-value
	// allocators (shared across components: a globally injective value
	// translation is in particular injective within each component). All
	// iteration below is in sorted order so the translation is a pure
	// function of (m, c) regardless of map layout.
	intInv := make(map[string]map[int64]int64, len(c.ints))
	var nextInt int64 = 1
	for tag, mm := range c.ints {
		inv := make(map[int64]int64, len(mm))
		for orig, canon := range mm {
			inv[canon] = orig
			if orig >= nextInt {
				nextInt = orig + 1
			}
		}
		intInv[tag] = inv
	}
	strInv := make(map[string]map[string]string, len(c.strs))
	origStrs := map[string]bool{}
	for tag, mm := range c.strs {
		inv := make(map[string]string, len(mm))
		for orig, canon := range mm {
			inv[canon] = orig
			origStrs[orig] = true
		}
		strInv[tag] = inv
	}
	freshInts := map[int64]int64{}
	freshStrs := map[string]string{}
	nFreshStr := 0
	transVal := func(tag string, v Value) Value {
		switch v.S {
		case SortInt:
			if o, ok := intInv[tag][v.I]; ok {
				return IntValue(o)
			}
			if f, ok := freshInts[v.I]; ok {
				return IntValue(f)
			}
			freshInts[v.I] = nextInt
			nextInt++
			return IntValue(freshInts[v.I])
		case SortString:
			if o, ok := strInv[tag][v.Str]; ok {
				return StrValue(o)
			}
			if f, ok := freshStrs[v.Str]; ok {
				return StrValue(f)
			}
			for {
				cand := "v" + itoa(nFreshStr)
				nFreshStr++
				if !origStrs[cand] {
					freshStrs[v.Str] = cand
					break
				}
			}
			return StrValue(freshStrs[v.Str])
		default:
			return v
		}
	}

	out := NewModel()
	for _, n := range sortedKeys(m.Vars) {
		v := m.Vars[n]
		if tag, ok := c.abs[n]; ok {
			v = transVal(tag, v)
		} else if d, ok := c.shifted[n]; ok {
			switch v.S {
			case SortInt:
				v = IntValue(v.I + d)
			case SortReal:
				if v.R != nil {
					v = RealValue(new(big.Rat).Add(v.R, new(big.Rat).SetInt64(d)))
				}
			}
		}
		out.Vars[back(n)] = v
	}
	for _, id := range sortedKeys(m.Arrays) {
		ent := m.Arrays[id]
		tag, abstracted := c.abs[id]
		d, shifted := c.shifted[id]
		cp := make(map[string]bool, len(ent))
		for _, k := range sortedKeys(ent) {
			ck := k
			if abstracted {
				ck = transValueString(k, tag, transVal)
			} else if shifted {
				ck = shiftKeyString(k, d)
			}
			cp[ck] = ent[k]
		}
		out.Arrays[back(id)] = cp
	}
	return out
}

// shiftKeyString shifts an Int array-entry key (stored in decimal string
// form) back by a component's δ; non-Int keys pass through unchanged.
func shiftKeyString(k string, d int64) string {
	if n, err := strconv.ParseInt(k, 10, 64); err == nil {
		return IntValue(n + d).String()
	}
	return k
}

// transValueString translates an array-entry key, which Model stores as
// the string form of the key value: quoted for strings, decimal for
// ints. Unparseable keys (never produced for abstracted components) pass
// through unchanged.
func transValueString(k, tag string, transVal func(string, Value) Value) string {
	if len(k) > 0 && k[0] == '"' {
		if s, err := strconv.Unquote(k); err == nil {
			return transVal(tag, StrValue(s)).String()
		}
		return k
	}
	if n, err := strconv.ParseInt(k, 10, 64); err == nil {
		return transVal(tag, IntValue(n)).String()
	}
	return k
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// itoa formats a small non-negative int; inlined rather than strconv.Itoa
// because it sits on Canon's hot path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
