package smt

import (
	"fmt"
	"testing"
)

// benchExpr builds a formula with repeated structure, the shape Canon
// and Intern see from the analyzer: per-row conjunctions instantiated
// under different prefixes.
func benchExpr(prefix string) Expr {
	var parts []Expr
	for i := 0; i < 8; i++ {
		id := NewVar(fmt.Sprintf("%sr%d.ID", prefix, i), SortInt)
		st := NewVar(fmt.Sprintf("%sr%d.STATUS", prefix, i), SortString)
		parts = append(parts,
			Or(Eq(id, Int(int64(i))), Eq(id, NewVar(prefix+"key", SortInt))),
			Or(Eq(st, Str("ACTIVE")), Ne(st, Str("DELETED"))),
			Ge(id, Int(0)))
	}
	return And(parts...)
}

// BenchmarkCanon measures full canonicalization (the memo-key path) of
// alpha-variant formulas.
func BenchmarkCanon(b *testing.B) {
	f1 := benchExpr("A1.")
	f2 := benchExpr("A2.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1 := Canon(f1)
		c2 := Canon(f2)
		if c1.Key != c2.Key {
			b.Fatal("alpha-variants canonicalized differently")
		}
	}
}

// BenchmarkIntern measures hash-consing a structurally fresh copy of an
// already-interned formula: every node hashes and hits the bucket table
// without inserting.
func BenchmarkIntern(b *testing.B) {
	Intern(benchExpr("A1.")) // warm the table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := benchExpr("A1.") // fresh nodes, equal structure
		if Intern(f) == nil {
			b.Fatal("nil intern")
		}
	}
}

// BenchmarkExprHash measures the cached-hash fast path on an interned
// node.
func BenchmarkExprHash(b *testing.B) {
	f := Intern(benchExpr("A1."))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ExprHash(f) == 0 {
			b.Fatal("zero hash")
		}
	}
}
