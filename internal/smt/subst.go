package smt

// This file provides structural utilities over expressions: variable
// collection, renaming (used to distinguish transaction instances, e.g.
// prefixing every variable of a trace with "A1."), and substitution.

// Vars appends the names of all variables occurring in e to the set.
func Vars(e Expr, set map[string]Sort) {
	switch t := e.(type) {
	case Var:
		set[t.Name] = t.S
	case *Arith:
		Vars(t.L, set)
		if t.R != nil {
			Vars(t.R, set)
		}
	case *Cmp:
		Vars(t.L, set)
		Vars(t.R, set)
	case *NAry:
		for _, x := range t.Xs {
			Vars(x, set)
		}
	case Not:
		Vars(t.X, set)
	case *Select:
		Vars(t.Key, set)
		for cur := t.Arr; cur != nil; cur = cur.Parent {
			if cur.StoreKey != nil {
				Vars(cur.StoreKey, set)
			}
		}
	}
}

// VarSet returns the set of variables occurring in any of the expressions.
func VarSet(es ...Expr) map[string]Sort {
	set := map[string]Sort{}
	for _, e := range es {
		Vars(e, set)
	}
	return set
}

// Rename returns e with every variable name passed through f. Array IDs are
// renamed as well, so two renamed copies of the same trace have independent
// container states.
func Rename(e Expr, f func(string) string) Expr {
	return rename(e, f, map[*Array]*Array{})
}

func rename(e Expr, f func(string) string, arrs map[*Array]*Array) Expr {
	switch t := e.(type) {
	case BoolConst, IntConst, RealConst, StrConst:
		return e
	case Var:
		return Var{Name: f(t.Name), S: t.S}
	case *Arith:
		var r Expr
		if t.R != nil {
			r = rename(t.R, f, arrs)
		}
		return &Arith{Op: t.Op, L: rename(t.L, f, arrs), R: r, S: t.S}
	case *Cmp:
		return &Cmp{Op: t.Op, L: rename(t.L, f, arrs), R: rename(t.R, f, arrs)}
	case *NAry:
		xs := make([]Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = rename(x, f, arrs)
		}
		return &NAry{Conj: t.Conj, Xs: xs}
	case Not:
		return Not{X: rename(t.X, f, arrs)}
	case *Select:
		return &Select{Arr: renameArray(t.Arr, f, arrs), Key: rename(t.Key, f, arrs)}
	}
	panic("smt: Rename of unknown node")
}

func renameArray(a *Array, f func(string) string, arrs map[*Array]*Array) *Array {
	if a == nil {
		return nil
	}
	if r, ok := arrs[a]; ok {
		return r
	}
	r := &Array{
		ID:       f(a.ID),
		KeySort:  a.KeySort,
		Version:  a.Version,
		Parent:   renameArray(a.Parent, f, arrs),
		StoreVal: a.StoreVal,
	}
	if a.StoreKey != nil {
		r.StoreKey = rename(a.StoreKey, f, arrs)
	}
	arrs[a] = r
	return r
}

// Substitute returns e with each variable bound in sub replaced by its
// expression. Unbound variables are left intact.
func Substitute(e Expr, sub map[string]Expr) Expr {
	switch t := e.(type) {
	case BoolConst, IntConst, RealConst, StrConst:
		return e
	case Var:
		if r, ok := sub[t.Name]; ok {
			return r
		}
		return e
	case *Arith:
		var r Expr
		if t.R != nil {
			r = Substitute(t.R, sub)
		}
		return &Arith{Op: t.Op, L: Substitute(t.L, sub), R: r, S: t.S}
	case *Cmp:
		return &Cmp{Op: t.Op, L: Substitute(t.L, sub), R: Substitute(t.R, sub)}
	case *NAry:
		xs := make([]Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = Substitute(x, sub)
		}
		return &NAry{Conj: t.Conj, Xs: xs}
	case Not:
		return Not{X: Substitute(t.X, sub)}
	case *Select:
		return &Select{Arr: substArray(t.Arr, sub), Key: Substitute(t.Key, sub)}
	}
	panic("smt: Substitute of unknown node")
}

func substArray(a *Array, sub map[string]Expr) *Array {
	if a == nil || a.Parent == nil {
		return a
	}
	return &Array{
		ID:       a.ID,
		KeySort:  a.KeySort,
		Version:  a.Version,
		Parent:   substArray(a.Parent, sub),
		StoreKey: Substitute(a.StoreKey, sub),
		StoreVal: a.StoreVal,
	}
}

// IsConst reports whether e contains no variables or array reads.
func IsConst(e Expr) bool {
	switch t := e.(type) {
	case BoolConst, IntConst, RealConst, StrConst:
		return true
	case Var:
		return false
	case *Arith:
		if t.R != nil && !IsConst(t.R) {
			return false
		}
		return IsConst(t.L)
	case *Cmp:
		return IsConst(t.L) && IsConst(t.R)
	case *NAry:
		for _, x := range t.Xs {
			if !IsConst(x) {
				return false
			}
		}
		return true
	case Not:
		return IsConst(t.X)
	case *Select:
		return false
	}
	panic("smt: IsConst of unknown node")
}

// Simplify performs constant folding on e. Boolean structure is already
// flattened by the And/Or constructors; Simplify additionally folds fully
// constant subtrees and prunes constant branches rebuilt after
// substitution.
func Simplify(e Expr) Expr {
	switch t := e.(type) {
	case *Arith:
		var l, r Expr
		l = Simplify(t.L)
		if t.R != nil {
			r = Simplify(t.R)
		}
		n := &Arith{Op: t.Op, L: l, R: r, S: t.S}
		if IsConst(l) && (r == nil || IsConst(r)) {
			return foldConst(n)
		}
		return n
	case *Cmp:
		l, r := Simplify(t.L), Simplify(t.R)
		n := &Cmp{Op: t.Op, L: l, R: r}
		if IsConst(l) && IsConst(r) {
			return foldConst(n)
		}
		return n
	case *NAry:
		xs := make([]Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = Simplify(x)
		}
		return nary(t.Conj, xs)
	case Not:
		return Negate(Simplify(t.X))
	case *Select:
		return &Select{Arr: t.Arr, Key: Simplify(t.Key)}
	}
	return e
}

func foldConst(e Expr) Expr {
	v := Eval(e, nil)
	switch v.S {
	case SortBool:
		return BoolConst{B: v.B}
	case SortInt:
		return IntConst{V: v.I}
	case SortReal:
		return RealConst{V: v.R}
	case SortString:
		return StrConst{S: v.Str}
	}
	panic("smt: bad fold")
}
