// Package smt provides the first-order expression language shared by
// WeSEER's concolic execution engine, lock modeling, and SMT solver.
//
// The language covers exactly the fragment the paper's analyzer emits
// (Figs. 7 and 9 of the ICDE'23 paper): Boolean combinations of linear
// numeric comparisons over Int and Real sorts, string (dis)equality, and
// reads over Boolean arrays used to model containers (Alg. 1).
package smt

import (
	"fmt"
	"math/big"
	"strings"
)

// Sort identifies the type of an expression.
type Sort uint8

// The four sorts of WeSEER's logic. They mirror the paper's use of Z3
// Int, Float (for BigDecimal), String, and Bool.
const (
	SortBool Sort = iota
	SortInt
	SortReal
	SortString
)

func (s Sort) String() string {
	switch s {
	case SortBool:
		return "Bool"
	case SortInt:
		return "Int"
	case SortReal:
		return "Real"
	case SortString:
		return "String"
	default:
		return fmt.Sprintf("Sort(%d)", uint8(s))
	}
}

// CmpOp is a comparison operator in the Fig. 7 grammar.
type CmpOp uint8

// Comparison operators. Strings support only EQ and NE.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the complementary operator: ¬(a op b) == a op.Negate() b.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	panic("smt: unknown CmpOp")
}

// Flip returns the operator with operands swapped: a op b == b op.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// Expr is a symbolic expression node. Expressions are immutable; sharing
// subtrees is safe and encouraged.
type Expr interface {
	Sort() Sort
	String() string
}

// ---------------------------------------------------------------------------
// Constants

// BoolConst is a Boolean literal.
type BoolConst struct{ B bool }

// IntConst is a 64-bit integer literal.
type IntConst struct{ V int64 }

// RealConst is an exact rational literal (models the paper's Z3 floats
// used for Java BigDecimal, but without rounding artifacts).
type RealConst struct{ V *big.Rat }

// StrConst is a string literal.
type StrConst struct{ S string }

// Sort implements Expr.
func (BoolConst) Sort() Sort { return SortBool }

// Sort implements Expr.
func (IntConst) Sort() Sort { return SortInt }

// Sort implements Expr.
func (RealConst) Sort() Sort { return SortReal }

// Sort implements Expr.
func (StrConst) Sort() Sort { return SortString }

func (c BoolConst) String() string { return fmt.Sprintf("%v", c.B) }
func (c IntConst) String() string  { return fmt.Sprintf("%d", c.V) }
func (c RealConst) String() string { return c.V.RatString() }
func (c StrConst) String() string  { return fmt.Sprintf("%q", c.S) }

// True and False are the Boolean constants.
var (
	True  = BoolConst{B: true}
	False = BoolConst{B: false}
)

// Int returns an integer constant expression.
func Int(v int64) Expr { return IntConst{V: v} }

// Real returns a rational constant expression from a numerator/denominator.
func Real(num, den int64) Expr { return RealConst{V: big.NewRat(num, den)} }

// RealFromRat returns a rational constant from a *big.Rat (copied).
func RealFromRat(r *big.Rat) Expr { return RealConst{V: new(big.Rat).Set(r)} }

// Str returns a string constant expression.
func Str(s string) Expr { return StrConst{S: s} }

// Bool returns a Boolean constant expression.
func Bool(b bool) Expr { return BoolConst{B: b} }

// ---------------------------------------------------------------------------
// Variables

// Var is a symbolic variable. Names are globally meaningful: the concolic
// engine uses dotted paths such as "A1.order_id" or "A1.res4.row0.p.ID".
type Var struct {
	Name string
	S    Sort
}

// Sort implements Expr.
func (v Var) Sort() Sort     { return v.S }
func (v Var) String() string { return v.Name }

// NewVar returns a variable expression of the given sort.
func NewVar(name string, s Sort) Var { return Var{Name: name, S: s} }

// ---------------------------------------------------------------------------
// Arithmetic

// ArithOp is an arithmetic operator for numeric expressions.
type ArithOp uint8

// Arithmetic operators. Mul requires at least one constant operand so that
// all numeric expressions remain linear, matching the solvable fragment.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpNeg
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpNeg:
		return "neg"
	default:
		return fmt.Sprintf("ArithOp(%d)", uint8(op))
	}
}

// Arith is a numeric operation node. For OpNeg, R is nil.
type Arith struct {
	Op   ArithOp
	L, R Expr
	S    Sort
}

// Sort implements Expr.
func (a *Arith) Sort() Sort { return a.S }

func (a *Arith) String() string {
	if a.Op == OpNeg {
		return fmt.Sprintf("(- %s)", a.L)
	}
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

func numSort(l, r Expr) Sort {
	if l.Sort() == SortReal || (r != nil && r.Sort() == SortReal) {
		return SortReal
	}
	return SortInt
}

func checkNumeric(e Expr) {
	if e.Sort() != SortInt && e.Sort() != SortReal {
		panic(fmt.Sprintf("smt: non-numeric operand %s of sort %s", e, e.Sort()))
	}
}

// Add returns l + r.
func Add(l, r Expr) Expr {
	checkNumeric(l)
	checkNumeric(r)
	return &Arith{Op: OpAdd, L: l, R: r, S: numSort(l, r)}
}

// Sub returns l - r.
func Sub(l, r Expr) Expr {
	checkNumeric(l)
	checkNumeric(r)
	return &Arith{Op: OpSub, L: l, R: r, S: numSort(l, r)}
}

// Mul returns l * r. At least one operand must be constant to keep the
// expression linear; Mul panics otherwise.
func Mul(l, r Expr) Expr {
	checkNumeric(l)
	checkNumeric(r)
	if !isNumConst(l) && !isNumConst(r) {
		panic("smt: nonlinear multiplication is outside the supported fragment")
	}
	return &Arith{Op: OpMul, L: l, R: r, S: numSort(l, r)}
}

// Neg returns -x.
func Neg(x Expr) Expr {
	checkNumeric(x)
	return &Arith{Op: OpNeg, L: x, S: x.Sort()}
}

func isNumConst(e Expr) bool {
	switch e.(type) {
	case IntConst, RealConst:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Comparisons

// Cmp is a comparison atom between two operands of compatible sorts.
// String operands admit only EQ and NE, per the Fig. 7 grammar.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Sort implements Expr.
func (*Cmp) Sort() Sort { return SortBool }

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// Compare returns the comparison atom (l op r), validating sorts.
func Compare(op CmpOp, l, r Expr) Expr {
	ls, rs := l.Sort(), r.Sort()
	switch {
	case ls == SortString || rs == SortString:
		if ls != SortString || rs != SortString {
			panic("smt: comparing string with non-string")
		}
		if op != EQ && op != NE {
			panic("smt: strings support only = and !=")
		}
	case ls == SortBool || rs == SortBool:
		if ls != SortBool || rs != SortBool {
			panic("smt: comparing bool with non-bool")
		}
		if op != EQ && op != NE {
			panic("smt: bools support only = and !=")
		}
	default:
		checkNumeric(l)
		checkNumeric(r)
	}
	return &Cmp{Op: op, L: l, R: r}
}

// Eq returns l = r.
func Eq(l, r Expr) Expr { return Compare(EQ, l, r) }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return Compare(NE, l, r) }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return Compare(LT, l, r) }

// Le returns l <= r.
func Le(l, r Expr) Expr { return Compare(LE, l, r) }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return Compare(GT, l, r) }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return Compare(GE, l, r) }

// ---------------------------------------------------------------------------
// Boolean connectives

// NAry is an n-ary Boolean connective (conjunction or disjunction).
type NAry struct {
	Conj bool // true: And, false: Or
	Xs   []Expr
}

// Sort implements Expr.
func (*NAry) Sort() Sort { return SortBool }

func (n *NAry) String() string {
	op := "or"
	if n.Conj {
		op = "and"
	}
	parts := make([]string, len(n.Xs))
	for i, x := range n.Xs {
		parts[i] = x.String()
	}
	return fmt.Sprintf("(%s %s)", op, strings.Join(parts, " "))
}

// Not is Boolean negation.
type Not struct{ X Expr }

// Sort implements Expr.
func (Not) Sort() Sort       { return SortBool }
func (n Not) String() string { return fmt.Sprintf("(not %s)", n.X) }

// And returns the conjunction of xs, flattening nested conjunctions and
// folding constants. And() == True.
func And(xs ...Expr) Expr { return nary(true, xs) }

// Or returns the disjunction of xs, flattening nested disjunctions and
// folding constants. Or() == False.
func Or(xs ...Expr) Expr { return nary(false, xs) }

func nary(conj bool, xs []Expr) Expr {
	out := make([]Expr, 0, len(xs))
	for _, x := range xs {
		if x == nil {
			continue
		}
		if x.Sort() != SortBool {
			panic(fmt.Sprintf("smt: non-bool operand %s in connective", x))
		}
		if c, ok := x.(BoolConst); ok {
			if c.B == conj {
				continue // identity element
			}
			return BoolConst{B: !conj} // absorbing element
		}
		if n, ok := x.(*NAry); ok && n.Conj == conj {
			out = append(out, n.Xs...)
			continue
		}
		out = append(out, x)
	}
	switch len(out) {
	case 0:
		return BoolConst{B: conj}
	case 1:
		return out[0]
	}
	return &NAry{Conj: conj, Xs: out}
}

// Negate returns the logical negation of x, folding constants and double
// negations.
func Negate(x Expr) Expr {
	if x.Sort() != SortBool {
		panic("smt: negating non-bool")
	}
	switch t := x.(type) {
	case BoolConst:
		return BoolConst{B: !t.B}
	case Not:
		return t.X
	case *Cmp:
		if t.L.Sort() != SortString && t.L.Sort() != SortBool {
			return &Cmp{Op: t.Op.Negate(), L: t.L, R: t.R}
		}
		if t.Op == EQ {
			return &Cmp{Op: NE, L: t.L, R: t.R}
		}
		return &Cmp{Op: EQ, L: t.L, R: t.R}
	}
	return Not{X: x}
}

// Implies returns (not a) or b.
func Implies(a, b Expr) Expr { return Or(Negate(a), b) }

// Ite returns a Boolean if-then-else as (c and t) or (not c and e).
func Ite(c, t, e Expr) Expr {
	return Or(And(c, t), And(Negate(c), e))
}

// ---------------------------------------------------------------------------
// Array theory (container modeling, Alg. 1)

// Array is a versioned Boolean array term: array<KeySort, Bool>. The zero
// version of an array is a root (Parent == nil) whose contents are
// unconstrained; each Store creates a new version. Arrays model the
// existence sets of symbolic containers per Alg. 1 of the paper.
type Array struct {
	ID      string // unique root id, e.g. "map7"
	KeySort Sort
	Version int
	Parent  *Array // nil for the root version
	// For non-root versions, the single store applied on top of Parent.
	StoreKey Expr
	StoreVal bool
}

// NewArray returns the root version of a fresh Boolean array.
func NewArray(id string, keySort Sort) *Array {
	return &Array{ID: id, KeySort: keySort}
}

// Store returns a new array version with key mapped to val.
func (a *Array) Store(key Expr, val bool) *Array {
	if key.Sort() != a.KeySort {
		panic(fmt.Sprintf("smt: store key sort %s != array key sort %s", key.Sort(), a.KeySort))
	}
	return &Array{
		ID:       a.ID,
		KeySort:  a.KeySort,
		Version:  a.Version + 1,
		Parent:   a,
		StoreKey: key,
		StoreVal: val,
	}
}

func (a *Array) String() string {
	if a.Parent == nil {
		return a.ID
	}
	return fmt.Sprintf("write(%s, %s, %v)", a.Parent, a.StoreKey, a.StoreVal)
}

// Select is the Boolean expression read(Arr, Key).
type Select struct {
	Arr *Array
	Key Expr
}

// Sort implements Expr.
func (*Select) Sort() Sort { return SortBool }

func (s *Select) String() string {
	return fmt.Sprintf("read(%s, %s)", s.Arr, s.Key)
}

// Read returns the Boolean expression read(a, key).
func Read(a *Array, key Expr) Expr {
	if key.Sort() != a.KeySort {
		panic(fmt.Sprintf("smt: read key sort %s != array key sort %s", key.Sort(), a.KeySort))
	}
	return &Select{Arr: a, Key: key}
}
