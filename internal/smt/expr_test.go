package smt

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestSortString(t *testing.T) {
	cases := map[Sort]string{
		SortBool: "Bool", SortInt: "Int", SortReal: "Real", SortString: "String",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Sort %d: got %q, want %q", s, got, want)
		}
	}
}

func TestCmpOpNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("%s.Negate() = %s, want %s", op, got, want)
		}
		if got := op.Negate().Negate(); got != op {
			t.Errorf("double-negate of %s = %s", op, got)
		}
	}
}

func TestCmpOpNegateSemantics(t *testing.T) {
	// ¬(a op b) == (a op.Negate() b) for all int pairs.
	f := func(a, b int16) bool {
		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			l, r := IntValue(int64(a)), IntValue(int64(b))
			if evalCmp(op, l, r) == evalCmp(op.Negate(), l, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpOpFlipSemantics(t *testing.T) {
	f := func(a, b int16) bool {
		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			l, r := IntValue(int64(a)), IntValue(int64(b))
			if evalCmp(op, l, r) != evalCmp(op.Flip(), r, l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndOrFolding(t *testing.T) {
	x := NewVar("x", SortBool)
	if got := And(); got != (BoolConst{B: true}) {
		t.Errorf("And() = %v", got)
	}
	if got := Or(); got != (BoolConst{B: false}) {
		t.Errorf("Or() = %v", got)
	}
	if got := And(True, x); got != Expr(x) {
		t.Errorf("And(true,x) = %v", got)
	}
	if got := And(False, x); got != Expr(False) {
		t.Errorf("And(false,x) = %v", got)
	}
	if got := Or(True, x); got != Expr(True) {
		t.Errorf("Or(true,x) = %v", got)
	}
	if got := Or(False, x); got != Expr(x) {
		t.Errorf("Or(false,x) = %v", got)
	}
}

func TestAndFlattening(t *testing.T) {
	x, y, z := NewVar("x", SortBool), NewVar("y", SortBool), NewVar("z", SortBool)
	e := And(And(x, y), z)
	n, ok := e.(*NAry)
	if !ok || !n.Conj || len(n.Xs) != 3 {
		t.Fatalf("And(And(x,y),z) not flattened: %v", e)
	}
}

func TestNegate(t *testing.T) {
	x := NewVar("x", SortInt)
	e := Lt(x, Int(5))
	neg := Negate(e)
	c, ok := neg.(*Cmp)
	if !ok || c.Op != GE {
		t.Fatalf("Negate(x<5) = %v, want x>=5", neg)
	}
	if got := Negate(Negate(e)); got.String() != e.String() {
		t.Errorf("double negation: %v", got)
	}
	// String NE has no ordering complement.
	s := NewVar("s", SortString)
	se := Eq(s, Str("a"))
	if n, ok := Negate(se).(*Cmp); !ok || n.Op != NE {
		t.Errorf("Negate(s=\"a\") = %v", Negate(se))
	}
}

func TestMulNonlinearPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul(x, y) should panic for two non-constant operands")
		}
	}()
	Mul(NewVar("x", SortInt), NewVar("y", SortInt))
}

func TestEvalArith(t *testing.T) {
	x := NewVar("x", SortInt)
	m := NewModel()
	m.Vars["x"] = IntValue(7)
	e := Add(Mul(Int(3), x), Int(1)) // 3x+1 = 22
	if v := Eval(e, m); v.I != 22 {
		t.Errorf("3*7+1 = %v", v)
	}
	e2 := Sub(Neg(x), Int(2)) // -x-2 = -9
	if v := Eval(e2, m); v.I != -9 {
		t.Errorf("-7-2 = %v", v)
	}
}

func TestEvalRealMixed(t *testing.T) {
	x := NewVar("x", SortReal)
	m := NewModel()
	m.Vars["x"] = RealValue(big.NewRat(1, 2))
	e := Add(x, Int(1))
	if e.Sort() != SortReal {
		t.Fatalf("Int+Real should be Real, got %s", e.Sort())
	}
	if v := Eval(e, m); v.Rat().Cmp(big.NewRat(3, 2)) != 0 {
		t.Errorf("1/2+1 = %v", v)
	}
}

func TestEvalCmpAcrossSorts(t *testing.T) {
	if !IntValue(2).Equal(RealValue(big.NewRat(2, 1))) {
		t.Error("2 (Int) should equal 2 (Real)")
	}
	m := NewModel()
	e := Eq(Int(3), Real(6, 2))
	if !Eval(e, m).B {
		t.Error("3 = 6/2 should hold")
	}
}

func TestEvalBoolStructure(t *testing.T) {
	x, y := NewVar("x", SortInt), NewVar("y", SortInt)
	m := NewModel()
	m.Vars["x"] = IntValue(4)
	m.Vars["y"] = IntValue(9)
	// (x+1 != 8) and (x > 3): paper's Sec. III example with syma=4.
	f := And(Ne(Add(x, Int(1)), Int(8)), Gt(x, Int(3)))
	if !Eval(f, m).B {
		t.Error("example formula should hold under x=4")
	}
	m.Vars["x"] = IntValue(7)
	if Eval(f, m).B {
		t.Error("x=7 violates x+1 != 8")
	}
	f2 := Or(Lt(y, Int(0)), Implies(Gt(y, Int(5)), Eq(y, Int(9))))
	m.Vars["y"] = IntValue(9)
	if !Eval(f2, m).B {
		t.Error("implication should hold")
	}
}

func TestArrayStoreSelect(t *testing.T) {
	a := NewArray("m", SortInt)
	k := NewVar("k", SortInt)
	a1 := a.Store(Int(3), true)
	a2 := a1.Store(Int(5), false)
	m := NewModel()

	m.Vars["k"] = IntValue(3)
	if !Eval(Read(a2, k), m).B {
		t.Error("read after store(3,true) should be true")
	}
	m.Vars["k"] = IntValue(5)
	if Eval(Read(a2, k), m).B {
		t.Error("read after store(5,false) should be false")
	}
	m.Vars["k"] = IntValue(99)
	if Eval(Read(a2, k), m).B {
		t.Error("read of unconstrained root key defaults to false")
	}
	m.Arrays["m"] = map[string]bool{IntValue(99).String(): true}
	if !Eval(Read(a2, k), m).B {
		t.Error("root interpretation should supply key 99")
	}
}

func TestArrayShadowing(t *testing.T) {
	// A later store to the same key shadows the earlier one.
	a := NewArray("m", SortString)
	a1 := a.Store(Str("x"), true).Store(Str("x"), false)
	m := NewModel()
	if Eval(Read(a1, Str("x")), m).B {
		t.Error("latest store should win")
	}
}

func TestVarsCollection(t *testing.T) {
	x, y := NewVar("x", SortInt), NewVar("y", SortString)
	a := NewArray("arr", SortInt).Store(NewVar("z", SortInt), true)
	f := And(Lt(x, Int(3)), Eq(y, Str("s")), Read(a, NewVar("w", SortInt)))
	set := VarSet(f)
	for _, n := range []string{"x", "y", "z", "w"} {
		if _, ok := set[n]; !ok {
			t.Errorf("variable %s not collected", n)
		}
	}
	if len(set) != 4 {
		t.Errorf("collected %d vars, want 4: %v", len(set), set)
	}
}

func TestRename(t *testing.T) {
	x := NewVar("order_id", SortInt)
	a := NewArray("map1", SortInt).Store(x, true)
	f := And(Gt(x, Int(0)), Read(a, x))
	g := Rename(f, func(s string) string { return "A1." + s })
	set := VarSet(g)
	if _, ok := set["A1.order_id"]; !ok {
		t.Fatalf("rename failed: %v", set)
	}
	if _, ok := set["order_id"]; ok {
		t.Fatalf("old name still present: %v", set)
	}
	sel := g.(*NAry).Xs[1].(*Select)
	if sel.Arr.ID != "A1.map1" {
		t.Errorf("array id not renamed: %s", sel.Arr.ID)
	}
	// Original untouched.
	if VarSet(f)["order_id"] != SortInt {
		t.Error("original formula mutated")
	}
}

func TestRenamePreservesSemantics(t *testing.T) {
	f := func(xv, yv int16) bool {
		x, y := NewVar("x", SortInt), NewVar("y", SortInt)
		e := Or(Lt(x, y), Eq(Add(x, Int(2)), y))
		m := NewModel()
		m.Vars["x"] = IntValue(int64(xv))
		m.Vars["y"] = IntValue(int64(yv))
		m2 := NewModel()
		m2.Vars["p.x"] = IntValue(int64(xv))
		m2.Vars["p.y"] = IntValue(int64(yv))
		r := Rename(e, func(s string) string { return "p." + s })
		return Eval(e, m).B == Eval(r, m2).B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubstitute(t *testing.T) {
	x, y := NewVar("x", SortInt), NewVar("y", SortInt)
	f := Lt(Add(x, Int(1)), y)
	g := Substitute(f, map[string]Expr{"x": Int(4)})
	m := NewModel()
	m.Vars["y"] = IntValue(6)
	if !Eval(g, m).B {
		t.Errorf("4+1 < 6 should hold after substitution: %v", g)
	}
}

func TestSimplifyConstFold(t *testing.T) {
	e := And(Lt(Int(1), Int(2)), Gt(Add(Int(2), Int(2)), Int(3)))
	if got := Simplify(e); got != Expr(True) {
		t.Errorf("Simplify = %v, want true", got)
	}
	e2 := Or(Eq(Str("a"), Str("b")), Eq(NewVar("s", SortString), Str("c")))
	s := Simplify(e2)
	if c, ok := s.(*Cmp); !ok || c.Op != EQ {
		t.Errorf("Simplify should strip false disjunct: %v", s)
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	f := func(xv int16, b bool) bool {
		x := NewVar("x", SortInt)
		p := NewVar("p", SortBool)
		e := Or(And(Gt(Add(x, Int(3)), Int(10)), p), And(Le(x, Int(7)), Eq(Int(1), Int(1))))
		m := NewModel()
		m.Vars["x"] = IntValue(int64(xv))
		m.Vars["p"] = BoolValue(b)
		return Eval(e, m).B == Eval(Simplify(e), m).B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIte(t *testing.T) {
	c := NewVar("c", SortBool)
	e := Ite(c, Eq(Int(1), Int(1)), Eq(Int(1), Int(2)))
	m := NewModel()
	m.Vars["c"] = BoolValue(true)
	if !Eval(e, m).B {
		t.Error("ite(true, T, F) should be true")
	}
	m.Vars["c"] = BoolValue(false)
	if Eval(e, m).B {
		t.Error("ite(false, T, F) should be false")
	}
}

func TestModelLookupDefaults(t *testing.T) {
	m := NewModel()
	if v := m.Lookup("missing", SortInt); v.I != 0 {
		t.Errorf("default int = %v", v)
	}
	if v := m.Lookup("missing", SortString); v.Str != "" {
		t.Errorf("default string = %v", v)
	}
	var nilModel *Model
	if v := nilModel.Lookup("x", SortBool); v.B {
		t.Errorf("nil model default bool = %v", v)
	}
}

func TestIsConst(t *testing.T) {
	if !IsConst(Add(Int(1), Int(2))) {
		t.Error("1+2 is const")
	}
	if IsConst(Add(Int(1), NewVar("x", SortInt))) {
		t.Error("1+x is not const")
	}
}
