package smt

// Hash-consing for expressions. Intern maps any expression to a canonical
// representative: two structurally equal expressions intern to the same
// Go interface value, so equality after interning is a pointer/interface
// compare and a 64-bit structural hash is computed once per distinct
// node. The solver's select-atom interning, the core memo table, and the
// canonicalization caches key on interned nodes instead of rebuilding
// key strings.
//
// The interner is per-process and safe for concurrent use (the parallel
// discharge stage interns from several workers). Expressions are
// immutable by contract, so sharing interned subtrees is safe.

import (
	"math/big"
	"sync"
)

type interner struct {
	mu sync.Mutex
	// buckets maps a structural hash to the interned expressions bearing
	// it; collisions are resolved by shallow comparison (children are
	// already interned, so child equality is interface equality).
	buckets map[uint64][]Expr
	// hashes caches the structural hash of every interned node.
	hashes map[Expr]uint64
	// fast is a lock-free read path for nodes Intern/ExprHash have seen
	// before: original expression → its canonical node and hash. The
	// parallel discharge stage interns from several workers, and interned
	// subtrees recur heavily (cached edge conditions, shared path
	// conditions, solver atom keys), so most calls resolve here without
	// touching mu. Entries are write-once, so a racing Store after a miss
	// is benign — both writers store the same value.
	fast sync.Map // Expr → internHit
}

type internHit struct {
	canon Expr
	h     uint64
}

var globalInterner = &interner{
	buckets: map[uint64][]Expr{},
	hashes:  map[Expr]uint64{},
}

// Intern returns the canonical representative of e: structurally equal
// expressions intern to interface-equal values. The result is equivalent
// to e (same structure, same sorts).
func Intern(e Expr) Expr {
	if v, ok := globalInterner.fast.Load(e); ok {
		return v.(internHit).canon
	}
	globalInterner.mu.Lock()
	out, h := globalInterner.intern(e)
	globalInterner.mu.Unlock()
	globalInterner.fast.Store(e, internHit{canon: out, h: h})
	return out
}

// ExprHash returns a 64-bit structural hash of e: structurally equal
// expressions hash equal. The expression is interned as a side effect so
// repeated hashing is a map lookup.
func ExprHash(e Expr) uint64 {
	if v, ok := globalInterner.fast.Load(e); ok {
		return v.(internHit).h
	}
	globalInterner.mu.Lock()
	out, h := globalInterner.intern(e)
	globalInterner.mu.Unlock()
	globalInterner.fast.Store(e, internHit{canon: out, h: h})
	return h
}

// intern returns the canonical node for e and its hash. Callers hold mu.
func (in *interner) intern(e Expr) (Expr, uint64) {
	if h, ok := in.hashes[e]; ok {
		return e, h
	}
	var canon Expr
	var h uint64
	switch t := e.(type) {
	case BoolConst, IntConst, StrConst, Var:
		// Comparable value types are their own canonical representative.
		canon, h = e, in.scalarHash(e)
	case RealConst:
		// RealConst holds a *big.Rat, so interface equality is pointer
		// equality on the rat: bucket by value instead.
		h = hashCombine(hashSeed('R'), hashString(t.V.RatString()))
		canon = in.lookup(h, func(x Expr) bool {
			c, ok := x.(RealConst)
			return ok && c.V.Cmp(t.V) == 0
		})
		if canon == nil {
			canon = RealConst{V: new(big.Rat).Set(t.V)}
			in.buckets[h] = append(in.buckets[h], canon)
		}
	case Not:
		x, xh := in.intern(t.X)
		canon = Not{X: x}
		if h, ok := in.hashes[canon]; ok {
			return canon, h
		}
		h = hashCombine(hashSeed('!'), xh)
	case *Arith:
		l, lh := in.intern(t.L)
		h = hashCombine(hashCombine(hashSeed('A'), uint64(t.Op)<<8|uint64(t.S)), lh)
		var r Expr
		if t.R != nil {
			var rh uint64
			r, rh = in.intern(t.R)
			h = hashCombine(h, rh)
		}
		canon = in.lookup(h, func(x Expr) bool {
			c, ok := x.(*Arith)
			return ok && c.Op == t.Op && c.S == t.S && c.L == l && c.R == r
		})
		if canon == nil {
			canon = &Arith{Op: t.Op, L: l, R: r, S: t.S}
			in.buckets[h] = append(in.buckets[h], canon)
		}
	case *Cmp:
		l, lh := in.intern(t.L)
		r, rh := in.intern(t.R)
		h = hashCombine(hashCombine(hashCombine(hashSeed('C'), uint64(t.Op)), lh), rh)
		canon = in.lookup(h, func(x Expr) bool {
			c, ok := x.(*Cmp)
			return ok && c.Op == t.Op && c.L == l && c.R == r
		})
		if canon == nil {
			canon = &Cmp{Op: t.Op, L: l, R: r}
			in.buckets[h] = append(in.buckets[h], canon)
		}
	case *NAry:
		xs := make([]Expr, len(t.Xs))
		h = hashSeed('N')
		if t.Conj {
			h = hashCombine(h, 1)
		}
		for i, x := range t.Xs {
			var xh uint64
			xs[i], xh = in.intern(x)
			h = hashCombine(h, xh)
		}
		canon = in.lookup(h, func(x Expr) bool {
			c, ok := x.(*NAry)
			if !ok || c.Conj != t.Conj || len(c.Xs) != len(xs) {
				return false
			}
			for i := range xs {
				if c.Xs[i] != xs[i] {
					return false
				}
			}
			return true
		})
		if canon == nil {
			canon = &NAry{Conj: t.Conj, Xs: xs}
			in.buckets[h] = append(in.buckets[h], canon)
		}
	case *Select:
		arr, ah := in.internArray(t.Arr)
		key, kh := in.intern(t.Key)
		h = hashCombine(hashCombine(hashSeed('S'), ah), kh)
		canon = in.lookup(h, func(x Expr) bool {
			c, ok := x.(*Select)
			return ok && c.Arr == arr && c.Key == key
		})
		if canon == nil {
			canon = &Select{Arr: arr, Key: key}
			in.buckets[h] = append(in.buckets[h], canon)
		}
	default:
		// Unknown node kind: leave it alone, hashed by identity.
		canon, h = e, hashSeed('?')
	}
	in.hashes[canon] = h
	if canon != e {
		// Remember the original too, so re-interning it is a single
		// lookup. Value-typed nodes are their own canon and skip this.
		in.hashes[e] = h
	}
	return canon, h
}

// internArray canonicalizes an array version chain. Arrays are not Exprs
// themselves, so they get their own bucket space via a wrapper key.
func (in *interner) internArray(a *Array) (*Array, uint64) {
	h := hashCombine(hashSeed('V'), hashString(a.ID))
	h = hashCombine(h, uint64(a.KeySort))
	h = hashCombine(h, uint64(a.Version))
	var parent *Array
	var storeKey Expr
	if a.Parent != nil {
		var ph, kh uint64
		parent, ph = in.internArray(a.Parent)
		storeKey, kh = in.intern(a.StoreKey)
		h = hashCombine(h, ph)
		h = hashCombine(h, kh)
		if a.StoreVal {
			h = hashCombine(h, 1)
		}
	}
	found := in.lookup(h, func(x Expr) bool {
		w, ok := x.(arrayRef)
		if !ok {
			return false
		}
		c := w.a
		return c.ID == a.ID && c.KeySort == a.KeySort && c.Version == a.Version &&
			c.Parent == parent && c.StoreKey == storeKey && c.StoreVal == a.StoreVal
	})
	if found != nil {
		return found.(arrayRef).a, h
	}
	canon := a
	if a.Parent != nil && (a.Parent != parent || a.StoreKey != storeKey) {
		canon = &Array{ID: a.ID, KeySort: a.KeySort, Version: a.Version,
			Parent: parent, StoreKey: storeKey, StoreVal: a.StoreVal}
	}
	in.buckets[h] = append(in.buckets[h], arrayRef{a: canon})
	return canon, h
}

// arrayRef lets array versions share the expression bucket table.
type arrayRef struct{ a *Array }

// Sort implements Expr (never used as a real expression).
func (arrayRef) Sort() Sort       { return SortBool }
func (r arrayRef) String() string { return r.a.String() }

// lookup scans a hash bucket for a node matching eq; on miss it returns
// nil and the caller appends the freshly built canonical node.
func (in *interner) lookup(h uint64, eq func(Expr) bool) Expr {
	for _, x := range in.buckets[h] {
		if eq(x) {
			return x
		}
	}
	return nil
}

// scalarHash hashes a comparable leaf node. Leaves need no bucket entry:
// value types are canonical by Go interface equality already.
func (in *interner) scalarHash(e Expr) uint64 {
	var h uint64
	switch t := e.(type) {
	case BoolConst:
		h = hashSeed('b')
		if t.B {
			h = hashCombine(h, 1)
		}
	case IntConst:
		h = hashCombine(hashSeed('i'), uint64(t.V))
	case StrConst:
		h = hashCombine(hashSeed('s'), hashString(t.S))
	case Var:
		h = hashCombine(hashCombine(hashSeed('v'), hashString(t.Name)), uint64(t.S))
	}
	return h
}

// FNV-1a primitives, combined per field so hashes are order-sensitive.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashSeed(tag byte) uint64 {
	return (uint64(fnvOffset) ^ uint64(tag)) * fnvPrime
}

func hashCombine(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}
