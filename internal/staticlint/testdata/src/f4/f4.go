// Package f4 exhibits the write-behind flush reordering behind
// Broadleaf's fix f4 (the d5/d6 class): a buffered counter update whose
// UPDATE is deferred to commit, past the stat-row read that follows it
// in program order.
package f4

func deferredCounter(s *session, id int64) {
	offer := s.Find("Offer", id)
	s.Set(offer, "USES", bump(offer))
	s.Query(`SELECT * FROM OfferStat st WHERE st.ID = ?`, id, "st")
}
