// Package repeat pins context-scoped summary dedup (the complement of
// the diamond fixture): lockOne's single acquisition site is reached
// once before any loop and then per element inside two separate loops.
// Leaf-identity dedup alone would let the pre-loop call swallow both
// in-loop acquisitions and silence the unordered-locks hazard on the
// loops; scoping the dedup per call-site context keeps one event in
// each loop while twice() still collapses its two same-context calls.
package repeat

type session struct{}

func (s *session) Exec(sql string, args ...any) {}

func lockOne(s *session, id int64) {
	s.Exec(`UPDATE Product SET POPULARITY = ? WHERE ID = ?`, id)
}

// Handler locks a pivot row up front, then the rows of two unsorted
// collections: the hazard lives on both loops, not on the first call.
func Handler(s *session, ids, more []int64) {
	lockOne(s, 1)
	for _, id := range ids {
		lockOne(s, id)
	}
	for _, id := range more {
		lockOne(s, id)
	}
}

// twice reaches the same leaf twice from one (top-level) context: the
// two occurrences still dedupe to a single event and template.
func twice(s *session) {
	lockOne(s, 1)
	lockOne(s, 2)
}
