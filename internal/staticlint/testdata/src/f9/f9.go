// Package f9 exhibits the unordered multi-entity lock acquisition
// behind Shopizer's fixes f9–f11 (d14–d18): per-element row updates and
// mutex locks over collections with no proven order, so two concurrent
// callers acquire in different orders and deadlock.
package f9

func priceAll(s *session, ids []int64) {
	for _, id := range ids {
		s.Exec(`UPDATE Product SET POPULARITY = ? WHERE ID = ?`, id)
	}
}

func lockAll(a *app, ids []int64) {
	for _, id := range ids {
		a.mu[id].Lock()
	}
}
