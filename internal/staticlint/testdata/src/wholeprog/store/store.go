// Package store gives the handler layer an interface with one safe and
// one locking implementation: whether a call through Store takes a
// database lock is a devirtualization question.
package store

import "wholeprog/dao"

// Store abstracts persistence for the handler layer.
type Store interface {
	Save(s *dao.Session, id int64)
}

// MemStore buffers rows in memory: no database locks.
type MemStore struct {
	rows map[int64]bool
}

func (m *MemStore) Save(s *dao.Session, id int64) {
	m.rows[id] = true
}

// DBStore writes through: each Save locks the product row. The
// receiver is deliberately unnamed — the pre-callgraph heuristic
// dropped such methods from summary resolution entirely.
type DBStore struct{}

func (DBStore) Save(s *dao.Session, id int64) {
	dao.LockProduct(s, id)
}
