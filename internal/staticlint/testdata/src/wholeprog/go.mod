module wholeprog

go 1.22
