// Package dao wraps the ORM session for the wholeprog fixture corpus.
// Unlike the single-package lint fixtures, this module type-checks, so
// the whole-program scan resolves its callees with go/types instead of
// the receiver-name heuristic.
package dao

// Session mimics the ORM session surface the analyzers model.
type Session struct{}

func (s *Session) Query(sql string, args ...any) []any { return nil }

func (s *Session) Find(table string, id int64) any { return nil }

func (s *Session) Exec(sql string, args ...any) {}

func (s *Session) Set(ent any, col string, v any) {}

func (s *Session) Persist(ent any) {}

func (s *Session) Flush() error { return nil }

// LockProduct takes the exclusive row lock on one product. Callers in
// other packages reach this lock two hops down — invisible to the
// per-package heuristic.
func LockProduct(s *Session, id int64) {
	s.Exec(`UPDATE Product SET POPULARITY = ? WHERE ID = ?`, id)
}
