// Package handler holds the request handlers whose lock behaviour only
// whole-program analysis can see: the acquisitions happen in callees
// across package boundaries, behind an interface, and through a
// recursive cycle.
package handler

import (
	"wholeprog/dao"
	"wholeprog/store"
)

// PriceAll reprices every product in request order; the row lock is
// taken one call down in another package (cross-package miss for the
// name heuristic).
func PriceAll(s *dao.Session, ids []int64) {
	for _, id := range ids {
		dao.LockProduct(s, id)
	}
}

// ProcessAll persists through the Store interface; whether the loop
// locks depends on the implementation behind it (interface-dispatch
// miss — CHA finds DBStore.Save).
func ProcessAll(s *dao.Session, st store.Store, ids []int64) {
	for _, id := range ids {
		st.Save(s, id)
	}
}

// drainTree and drainKids form a recursive SCC: the lock in drainTree
// is reachable from drainKids' loop only around the cycle (recursion
// miss for the one-level heuristic).
func drainTree(s *dao.Session, id int64, kids map[int64][]int64) {
	dao.LockProduct(s, id)
	drainKids(s, kids[id], kids)
}

func drainKids(s *dao.Session, ids []int64, kids map[int64][]int64) {
	for _, id := range ids {
		drainTree(s, id, kids)
	}
}
