// Package clean holds the fixed counterparts of the f2/f4/f9 fixtures;
// both analyzers must report nothing here.
package clean

import "sort"

// upsertRow replaces check-then-insert with a single UPSERT (fix f2).
func upsertRow(s *session, id int64) {
	s.Exec(`INSERT INTO AppLock (ID, LOCKED) VALUES (?, ?) ON DUPLICATE KEY UPDATE LOCKED = ?`, id)
}

// flushedCounter flushes the buffered write before the read, restoring
// program order (fix f4).
func flushedCounter(s *session, id int64) {
	offer := s.Find("Offer", id)
	s.Set(offer, "USES", bump(offer))
	if err := s.Flush(); err != nil {
		return
	}
	s.Query(`SELECT * FROM OfferStat st WHERE st.ID = ?`, id, "st")
}

// priceAllSorted acquires the per-row locks in ascending order (fix
// f9/f10).
func priceAllSorted(s *session, ids []int64) {
	sort.Ints(ids)
	for _, id := range ids {
		s.Exec(`UPDATE Product SET POPULARITY = ? WHERE ID = ?`, id)
	}
}

// insertAll only creates rows: the INSERT locks are on fresh keys, not
// shared pre-existing entities.
func insertAll(s *session, rows []int64) {
	for _, r := range rows {
		en := s.NewEntity("AuditLog")
		s.Set(en, "ROW", r)
		s.Persist(en)
	}
}
