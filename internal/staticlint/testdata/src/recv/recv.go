// Package recv is the regression fixture for receiver extraction:
// unnamed receivers and multi-name receiver lists used to be dropped
// from summary resolution entirely, which both hid their bodies from
// method-call resolution and let a plain call wrongly bind to an
// unnamed-receiver method of the same name.
package recv

type session struct{}

func (s *session) Exec(sql string, args ...any) {}

type box struct{}

// lockOne's receiver is unnamed: the method must still register as a
// method, so the plain call in freeCall below must NOT bind to it.
func (box) lockOne(s *session, id int64) {
	s.Exec(`UPDATE Product SET POPULARITY = ? WHERE ID = ?`, id)
}

// lockMany declares two receiver names — illegal Go, but parseable —
// and the first name now binds for heuristic resolution.
func (b, c box) lockMany(s *session, id int64) {
	s.Exec(`UPDATE Offer SET USES = ? WHERE ID = ?`, id)
}

// useMany's loop locks through the multi-name-receiver method: the old
// scan missed it, so the unordered-locks hazard went unreported.
func useMany(b box, s *session, ids []int64) {
	for _, id := range ids {
		b.lockMany(s, id)
	}
}

// freeCall must stay clean: there is no plain function lockOne, only
// the unnamed-receiver method (the old scan bound the call and
// reported a false positive here).
func freeCall(s *session, ids []int64) {
	for _, id := range ids {
		lockOne(id)
	}
}
