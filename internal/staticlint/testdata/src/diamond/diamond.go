// Package diamond pins summary-event dedup: top reaches lockShared's
// single Exec through two call paths (left and right), and the one
// acquisition must be counted once in top's events and templates.
package diamond

type session struct{}

func (s *session) Exec(sql string, args ...any) {}

func lockShared(s *session, id int64) {
	s.Exec(`UPDATE Product SET POPULARITY = ? WHERE ID = ?`, id)
}

func left(s *session, id int64) { lockShared(s, id) }

func right(s *session, id int64) { lockShared(s, id) }

func top(s *session, id int64) {
	left(s, id)
	right(s, id)
}
