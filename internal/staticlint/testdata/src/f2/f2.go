// Package f2 exhibits the check-then-insert anti-patterns behind
// Broadleaf's fixes f1/f2 (Table II): an existence query range-locks the
// absent key and the buffered INSERT then collides with a concurrent
// peer's range lock, and Merge issues the same SELECT-then-INSERT
// internally.
package f2

func checkThenInsert(s *session, id int64) {
	locks := s.Query(`SELECT * FROM AppLock al WHERE al.ID = ?`, id, "al")
	if len(locks) == 0 {
		l := s.NewEntity("AppLock")
		s.Set(l, "ID", id)
		s.Set(l, "LOCKED", one)
		s.Persist(l)
	}
}

func mergeNewRow(s *session, c *entity) {
	s.Merge(c)
}
